/**
 * @file
 * A compressed "month of production": a large data-parallel job trains
 * for several simulated days under a Poisson fault campaign at the
 * paper's June-2023 rates while the full C4 stack (C4D detection +
 * steering + C4P traffic engineering) keeps it alive. The example
 * prints a running operations log and a final utilization report.
 *
 *   $ ./examples/training_month
 */

#include <cstdio>

#include "core/cluster.h"
#include "train/model.h"

using namespace c4;
using namespace c4::core;

int
main()
{
    const Duration span = hours(12); // compressed campaign window

    ClusterConfig cc;
    cc.topology = productionPod(32);
    cc.enableC4d = true;
    cc.enableC4p = true;
    cc.c4d.evaluatePeriod = seconds(5);
    cc.c4d.hangThreshold = seconds(30);
    cc.steering.isolationDelay = minutes(2);
    Cluster cluster(cc);
    cluster.provisionBackupNodes(4); // warm spares, as in the paper
    cluster.startRuntime();

    train::JobConfig jc;
    jc.id = 1;
    jc.name = "prod-llm";
    jc.model = train::gpt22b();
    jc.parallel = {.tp = 8, .pp = 1, .dp = 24};
    jc.parallel.gradientAccumulation = 8; // long iterations: faster sim
    jc.microBatch = 4;
    jc.initTime = minutes(3);
    jc.checkpointIntervalIters = 100;
    jc.checkpointCost = seconds(2);
    jc.dpGroupsSimulated = 2;
    auto &job = cluster.addJob(jc);

    cluster.c4dMaster()->onEvent([&](const c4d::C4dEvent &ev) {
        std::printf("[%7.2f h] c4d: %s\n",
                    toHours(cluster.sim().now()), ev.str().c_str());
    });
    cluster.faults().addObserver([&](const fault::FaultEvent &ev) {
        std::printf("[%7.2f h] fault: %s\n",
                    toHours(cluster.sim().now()), ev.str().c_str());
    });

    // Accelerated June-2023 fault rates (x300 so a 12-hour window on a
    // small pod sees a hyperscale month's worth of trouble).
    const auto rates = fault::FaultRates::paperJune2023().scaled(300.0);
    const auto scheduled = cluster.faults().startCampaign(
        rates, job.nodes(), 8, cluster.topology().gpusPerNode(),
        cluster.topology().numLeaves() * cluster.topology().numSpines(),
        span);
    std::printf("campaign: %zu fault events over %.0f h on %zu "
                "nodes\n\n",
                scheduled, toHours(span), job.nodes().size());

    job.start();
    cluster.run(span);

    const double samples =
        static_cast<double>(job.iterationsCompleted()) *
        static_cast<double>(jc.samplesPerIteration());
    std::printf("\n=== report after %.0f h ===\n", toHours(span));
    std::printf("iterations completed : %llu (%.0f samples)\n",
                (unsigned long long)job.iterationsCompleted(), samples);
    std::printf("job state            : %s\n", job.stateName());
    std::printf("restarts issued      : %llu\n",
                (unsigned long long)cluster.steering()->restartsIssued());
    std::printf("nodes isolated       : %zu (backups left: %zu)\n",
                cluster.steering()->isolatedNodes().size(),
                cluster.steering()->backupsAvailable());
    std::printf("c4d events emitted   : %llu\n",
                (unsigned long long)cluster.c4dMaster()->eventsEmitted());

    // Effective utilization: productive iteration time vs wall clock.
    const double productive =
        job.iterationSeconds().sum();
    std::printf("productive fraction  : %.1f%% of wall clock\n",
                100.0 * productive / toSeconds(span));
    return 0;
}
