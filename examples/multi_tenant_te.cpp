/**
 * @file
 * Multi-tenant traffic engineering: eight co-located 2-node collective
 * benchmarks contend for the spine fabric (the Fig. 10a scenario).
 * Without coordination, ECMP hash collisions let some tasks starve;
 * C4P's cluster-level path allocation restores every task to the
 * NVLink-limited ceiling.
 *
 *   $ ./examples/multi_tenant_te
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "core/experiment.h"

using namespace c4;
using namespace c4::core;

namespace {

std::vector<double>
run(bool enable_c4p)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4p = enable_c4p;
    Cluster cluster(cc);

    const auto placements = crossSegmentPairs(cluster.topology(), 8);
    std::vector<std::unique_ptr<AllreduceTask>> tasks;
    for (std::size_t i = 0; i < placements.size(); ++i) {
        AllreduceTaskConfig tc;
        tc.job = static_cast<JobId>(i + 1);
        tc.nodes = placements[i];
        tc.bytes = mib(256);
        tc.iterations = 30;
        tasks.push_back(std::make_unique<AllreduceTask>(cluster, tc));
    }
    for (auto &t : tasks)
        t->start();
    cluster.run();

    std::vector<double> out;
    for (auto &t : tasks)
        out.push_back(t->busBwGbps().mean());
    return out;
}

} // namespace

int
main()
{
    std::printf("8 concurrent 2-node allreduce tenants, 1:1 fat-tree\n\n");
    const auto base = run(false);
    const auto c4p = run(true);

    std::printf("%-8s %18s %18s\n", "task", "ECMP (Gbps)", "C4P (Gbps)");
    double base_sum = 0, c4p_sum = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::printf("task%-4zu %18.2f %18.2f\n", i + 1, base[i],
                    c4p[i]);
        base_sum += base[i];
        c4p_sum += c4p[i];
    }
    std::printf("%-8s %18.2f %18.2f  (+%.1f%%)\n", "mean",
                base_sum / 8.0, c4p_sum / 8.0,
                (c4p_sum / base_sum - 1.0) * 100.0);
    std::printf("\npaper Fig. 10a: baseline 171.93-263.27 Gbps, C4P "
                "353.86-360.57 (+70.3%%)\n");
    return 0;
}
