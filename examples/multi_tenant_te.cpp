/**
 * @file
 * Multi-tenant traffic engineering: eight co-located 2-node collective
 * benchmarks contend for the spine fabric (the Fig. 10a scenario).
 * Without coordination, ECMP hash collisions let some tasks starve;
 * C4P's cluster-level path allocation restores every task to the
 * NVLink-limited ceiling. Runs through the scenario engine with both
 * a stdout table and a CSV stream, as a CSV-sink usage example.
 *
 *   $ ./examples/multi_tenant_te
 */

#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "scenario/runner.h"

using namespace c4;
using namespace c4::scenario;

namespace {

ScenarioSpec
tenants(bool enableC4p)
{
    ScenarioSpec spec;
    spec.variant = enableC4p ? "c4p" : "ecmp";
    spec.features.c4p = enableC4p;

    AllreduceGroupSpec g;
    g.tasks = 8;
    g.placement = AllreduceGroupSpec::Placement::CrossSegmentPairs;
    g.bytes = mib(256);
    g.iterations = 30;
    spec.allreduces.push_back(g);
    return spec;
}

} // namespace

int
main()
{
    std::printf(
        "8 concurrent 2-node allreduce tenants, 1:1 fat-tree\n\n");

    Scenario sc;
    sc.name = "multi_tenant_te";
    sc.title = "Multi-tenant TE: per-task allreduce busbw";
    sc.notes = "paper Fig. 10a: baseline 171.93-263.27 Gbps, C4P "
               "353.86-360.57 (+70.3%)";
    sc.variants = [](const RunOptions &) {
        return std::vector<ScenarioSpec>{tenants(false),
                                         tenants(true)};
    };

    TableSink table(std::cout);
    std::ostringstream csv;
    CsvSink csvSink(csv);
    ScenarioRunner runner;
    runner.addSink(table);
    runner.addSink(csvSink);
    const int rc = runner.run(sc);

    std::printf("\nper-trial rows the CSV sink captured (head):\n");
    std::istringstream lines(csv.str());
    std::string line;
    for (int i = 0; i < 4 && std::getline(lines, line); ++i)
        std::printf("  %s\n", line.c_str());
    return rc;
}
