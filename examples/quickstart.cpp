/**
 * @file
 * Quickstart: build the paper's 16-node testbed and run an
 * nccl-test-style allreduce benchmark twice — once with stock ECMP
 * routing and once with C4P traffic engineering — through the scenario
 * engine. Shows the engine used as a library: declare two variant
 * specs, run them with a table sink, and read the busbw gap.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "net/topology.h"
#include "scenario/runner.h"
#include "scenario/workload.h"

using namespace c4;
using namespace c4::scenario;

namespace {

ScenarioSpec
allreduce(bool enableC4p)
{
    ScenarioSpec spec;
    spec.variant = enableC4p ? "c4p_te" : "ecmp";
    spec.features.c4p = enableC4p;

    // Four nodes under different leaf pairs: traffic crosses the
    // spines and every ring boundary is a dual-port collision
    // opportunity.
    AllreduceGroupSpec g;
    g.tasks = 1;
    g.placement = AllreduceGroupSpec::Placement::Explicit;
    g.explicitNodes = {{0, 4, 8, 12}};
    g.bytes = mib(256);
    g.iterations = 20;
    spec.allreduces.push_back(g);
    return spec;
}

} // namespace

int
main()
{
    std::printf("C4 quickstart: 32-GPU ring allreduce, 256 MiB\n");
    std::printf("  topology : %s\n",
                net::Topology(core::paperTestbed()).summary().c_str());

    Scenario sc;
    sc.name = "quickstart";
    sc.title = "Quickstart: ring allreduce busbw, ECMP vs C4P";
    sc.variants = [](const RunOptions &) {
        return std::vector<ScenarioSpec>{allreduce(false),
                                         allreduce(true)};
    };
    sc.summarize = [](const std::vector<TrialResult> &results) {
        auto busbw = variantMetricMeans(results, "busbw_mean");
        char buf[96];
        std::snprintf(buf, sizeof(buf), "improvement: %+.1f%%",
                      (busbw["c4p_te"] / busbw["ecmp"] - 1.0) * 100.0);
        return std::string(buf);
    };

    TableSink table(std::cout);
    ScenarioRunner runner;
    runner.addSink(table);
    const int rc = runner.run(sc);

    std::printf("\nThe NVLink fabric caps busbw at 362 Gbps (paper "
                "Section IV-B); the gap\nto the baseline comes from "
                "dual-port RX imbalance and spine collisions.\n");
    return rc;
}
