/**
 * @file
 * Quickstart: build the paper's 16-node testbed, run an nccl-test-style
 * allreduce benchmark twice — once with stock ECMP routing and once with
 * C4P traffic engineering — and print the measured bus bandwidth.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "core/cluster.h"
#include "core/experiment.h"

using namespace c4;
using namespace c4::core;

namespace {

double
runOnce(bool enable_c4p)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4p = enable_c4p;
    Cluster cluster(cc);

    // Four nodes under different leaf pairs: traffic crosses the spines
    // and every ring boundary is a dual-port collision opportunity.
    AllreduceTaskConfig tc;
    tc.nodes = {0, 4, 8, 12};
    tc.bytes = mib(256);
    tc.iterations = 20;
    AllreduceTask task(cluster, tc);
    task.start();
    cluster.run();

    return task.busBwGbps().mean();
}

} // namespace

int
main()
{
    std::printf("C4 quickstart: 32-GPU ring allreduce, 256 MiB\n");
    std::printf("  topology : %s\n",
                net::Topology(paperTestbed()).summary().c_str());

    const double baseline = runOnce(false);
    const double c4p = runOnce(true);

    std::printf("  baseline (ECMP)            : %7.2f Gbps busbw\n",
                baseline);
    std::printf("  C4P traffic engineering    : %7.2f Gbps busbw\n", c4p);
    std::printf("  improvement                : %+6.1f%%\n",
                (c4p / baseline - 1.0) * 100.0);
    std::printf("\nThe NVLink fabric caps busbw at 362 Gbps (paper "
                "Section IV-B); the gap\nto the baseline comes from "
                "dual-port RX imbalance and spine collisions.\n");
    return 0;
}
