/**
 * @file
 * Spec workbench: drive the specio subsystem as a library. A workload
 * is authored as a spec *document* (here, an embedded string; pass a
 * path to load your own file), parsed with full validation, run
 * through the scenario engine, and serialized back out — the same
 * parse/dump pipeline behind `c4bench --spec` / `--dump-spec`.
 *
 *   $ ./examples/spec_workbench                # embedded example
 *   $ ./examples/spec_workbench my_spec.json   # your spec file
 */

#include <cstdio>
#include <iostream>

#include "scenario/runner.h"
#include "specio/specio.h"

namespace {

// A complete workload, no C++ required: two cross-segment allreduce
// tenant groups, ECMP vs C4P, on the paper's testbed.
const char *kEmbeddedSpec = R"({
  "scenario": "workbench_demo",
  "title": "Spec workbench: 4 cross-leaf tenants, ECMP vs C4P",
  "seed": "0xDEC1",
  "variants": [
    {
      "variant": "ecmp",
      "allreduces": [{"tasks": 4, "iterations": 10}]
    },
    {
      "variant": "c4p",
      "features": {"c4p": true},
      "allreduces": [{"tasks": 4, "iterations": 10}]
    }
  ]
}
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace c4;

    specio::SpecFile file;
    try {
        file = argc > 1 ? specio::loadSpecFile(argv[1])
                        : specio::parseSpecFile(kEmbeddedSpec);
    } catch (const specio::SpecError &e) {
        std::fprintf(stderr, "spec error: %s\n", e.what());
        return 2;
    }
    std::printf("loaded scenario '%s' with %zu variant(s)\n\n",
                file.name.c_str(), file.variants.size());

    const scenario::Scenario sc = specio::scenarioFromSpec(file);
    scenario::TableSink table(std::cout);
    scenario::ScenarioRunner runner;
    runner.addSink(table);
    const int rc = runner.run(sc);

    // The writer is the other half of the pipeline: what you ran is
    // exactly what a --dump-spec of it would say.
    std::printf("\ncanonical spec file for this run:\n%s",
                specio::writeSpecFile(file).c_str());
    return rc;
}
