/**
 * @file
 * Fault-localization walkthrough: a data-parallel training job runs on
 * four nodes while three faults are injected one after another — a
 * straggler (slow compute), a degraded NIC receive path, and finally a
 * fatal GPU error. The C4D pipeline (ACCL telemetry -> C4 agent -> C4D
 * master -> analyzer) detects and localizes each one; the steering
 * service isolates the dead node and restarts the job from a backup.
 *
 *   $ ./examples/fault_localization
 */

#include <cstdio>

#include "core/cluster.h"
#include "train/model.h"

using namespace c4;
using namespace c4::core;

int
main()
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4d = true;
    cc.c4d.evaluatePeriod = seconds(2);
    cc.c4d.hangThreshold = seconds(20);
    cc.c4d.analyzer.minWaitForSlow = milliseconds(20);
    cc.steering.isolationDelay = minutes(1);
    Cluster cluster(cc);
    cluster.provisionBackupNodes(6);
    cluster.startRuntime();

    cluster.c4dMaster()->onEvent([&](const c4d::C4dEvent &ev) {
        std::printf("[%8.1f s] C4D event: %s\n",
                    toSeconds(cluster.sim().now()), ev.str().c_str());
    });

    train::JobConfig jc;
    jc.id = 1;
    jc.name = "demo";
    jc.model = train::llama7b();
    jc.model.microbatchCompute = milliseconds(800);
    jc.parallel = {.tp = 8, .pp = 1, .dp = 4};
    jc.initTime = seconds(10);
    jc.dpGroupsSimulated = 1;
    auto &job = cluster.addJob(jc);
    job.start();
    cluster.run(minutes(1));
    std::printf("[%8.1f s] job running: %llu iterations, %.1f "
                "samples/s\n",
                toSeconds(cluster.sim().now()),
                (unsigned long long)job.iterationsCompleted(),
                job.meanSamplesPerSec());

    // --- Fault 1: a straggler node (e.g. PCIe downgrade, DVFS).
    std::printf("\n>> injecting: node %d compute degraded to 50%%\n",
                job.nodes()[2]);
    fault::FaultEvent straggler;
    straggler.type = fault::FaultType::SlowNode;
    straggler.node = job.nodes()[2];
    straggler.severity = 0.5;
    cluster.faults().injectNow(straggler);
    cluster.run(cluster.sim().now() + minutes(5));

    // --- Fault 2: a degraded NIC receive path on another node.
    // (The steering service may have already swapped the straggler
    // out; pick whatever currently serves the job.)
    const NodeId rx_victim = job.nodes()[1];
    std::printf("\n>> injecting: node %d NIC Rx degraded to 20%%\n",
                rx_victim);
    for (int nic = 0; nic < 8; ++nic) {
        fault::FaultEvent ev;
        ev.type = fault::FaultType::SlowNicRx;
        ev.node = rx_victim;
        ev.nic = nic;
        ev.severity = 0.2;
        cluster.faults().injectNow(ev);
    }
    cluster.run(cluster.sim().now() + minutes(5));

    // --- Fault 3: a fatal ECC error.
    const NodeId dead = job.nodes()[0];
    std::printf("\n>> injecting: fatal ECC error on node %d\n", dead);
    fault::FaultEvent ecc;
    ecc.type = fault::FaultType::EccError;
    ecc.node = dead;
    cluster.faults().injectNow(ecc);
    cluster.run(cluster.sim().now() + minutes(10));

    std::printf("\nfinal state: %s, %llu iterations, nodes [",
                job.stateName(),
                (unsigned long long)job.iterationsCompleted());
    for (NodeId n : job.nodes())
        std::printf(" %d", n);
    std::printf(" ]\n");
    std::printf("isolated nodes: %zu, restarts: %llu, C4D events: "
                "%llu\n",
                cluster.steering()->isolatedNodes().size(),
                (unsigned long long)cluster.steering()->restartsIssued(),
                (unsigned long long)cluster.c4dMaster()->eventsEmitted());
    return 0;
}
