# Multi-host collection + forensics gate, run as `cmake -P` from
# CTest, in two campaigns:
#
# Campaign A (clean round-trip): plan a two-scenario campaign, copy it
# to two "host" directories, execute a disjoint `--only` half on each,
# `collect` both back into the primary, and `merge` — the merged CSV
# must be byte-identical to a single-process `c4bench --threads 1`
# run, exactly as if the campaign had never been split.
#
# Campaign B (forensics): a probe spec (tests/sweep/forensics_probe.
# json) whose trial 1 deterministically aborts mid-run after a trunk
# goes down, split across two host copies. The failing shard exhausts
# its attempt budget, the executor cuts a `forensics/<shard.id>/`
# bundle with the failure trace attached, `status --watch` surfaces
# the bundle, the bundled trace replays byte-identically twice through
# c4replay, and `collect --report` pulls the bundle back and scores it
# through the incident analyzer — the report must carry the
# link_failure verdict. The report is saved to
# ${WORK_DIR}/forensics_report.txt for the CI artifact.
#
# Inputs: BENCH (c4bench), SWEEP (c4sweep), REPLAY_TOOL (c4replay),
# SPEC (clean spec file), PROBE (failing probe spec), WORK_DIR.

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# ---- Campaign A: two-host split, collect, merge, byte-compare -------

set(primary "${WORK_DIR}/primary")
execute_process(
    COMMAND "${SWEEP}" plan --out "${primary}" --shards 2
            --smoke --trials 4 fig9_dualport "${SPEC}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "c4sweep plan (campaign A) exited with ${rc}")
endif()

get_filename_component(spec_name "${SPEC}" NAME_WE)
file(COPY "${primary}" DESTINATION "${WORK_DIR}/h1")
file(COPY "${primary}" DESTINATION "${WORK_DIR}/h2")
set(host1 "${WORK_DIR}/h1/primary")
set(host2 "${WORK_DIR}/h2/primary")

execute_process(
    COMMAND "${SWEEP}" run "${host1}" --bench "${BENCH}"
            --only fig9_dualport.s0,${spec_name}.s0
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "host 1 c4sweep run exited with ${rc}")
endif()
execute_process(
    COMMAND "${SWEEP}" run "${host2}" --bench "${BENCH}"
            --only fig9_dualport.s1,${spec_name}.s1
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "host 2 c4sweep run exited with ${rc}")
endif()

# Merging before collection must still be refused: the primary's own
# journal has every shard pending.
execute_process(
    COMMAND "${SWEEP}" merge "${primary}"
    RESULT_VARIABLE rc
    ERROR_QUIET OUTPUT_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR
        "c4sweep merge succeeded before the host results were "
        "collected")
endif()

execute_process(
    COMMAND "${SWEEP}" collect "${primary}" "${host1}" "${host2}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE collect_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "c4sweep collect exited with ${rc}:\n${collect_out}")
endif()
if(NOT collect_out MATCHES "4 adopted")
    message(FATAL_ERROR
        "collect should have adopted all 4 shards:\n${collect_out}")
endif()

# Collecting again is a no-op (every shard identical on both sides
# now deduplicates against the primary's own done state).
execute_process(
    COMMAND "${SWEEP}" collect "${primary}" "${host1}" "${host2}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE collect_again)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "repeat c4sweep collect exited with ${rc}")
endif()
if(NOT collect_again MATCHES "0 adopted")
    message(FATAL_ERROR
        "repeat collect re-adopted shards:\n${collect_again}")
endif()

set(merged "${WORK_DIR}/merged.csv")
execute_process(
    COMMAND "${SWEEP}" merge "${primary}" --csv "${merged}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "c4sweep merge exited with ${rc}")
endif()

set(reference "${WORK_DIR}/reference.csv")
execute_process(
    COMMAND "${BENCH}" fig9_dualport --spec "${SPEC}"
            --smoke --trials 4 --threads 1 --csv "${reference}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "reference c4bench run exited with ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${merged}"
            "${reference}"
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    execute_process(COMMAND diff -u "${reference}" "${merged}")
    message(FATAL_ERROR
        "two-host collected+merged CSV differs from the "
        "single-process --threads 1 run — collection broke the "
        "determinism guarantee")
endif()

# ---- Campaign B: deterministic failing shard + scored forensics -----

set(probe "${WORK_DIR}/probe")
execute_process(
    COMMAND "${SWEEP}" plan --out "${probe}" --shards 2 --smoke
            "${PROBE}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "c4sweep plan (campaign B) exited with ${rc}")
endif()
file(COPY "${probe}" DESTINATION "${WORK_DIR}/p1")
file(COPY "${probe}" DESTINATION "${WORK_DIR}/p2")
set(phost1 "${WORK_DIR}/p1/probe")
set(phost2 "${WORK_DIR}/p2/probe")

execute_process(
    COMMAND "${SWEEP}" run "${phost1}" --bench "${BENCH}"
            --only forensics_probe.s0
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "probe host 1 run exited with ${rc}")
endif()

# Host 2 owns the shard that aborts deterministically: the run must
# report the failure (exit 1) and cut the forensics bundle.
execute_process(
    COMMAND "${SWEEP}" run "${phost2}" --bench "${BENCH}"
            --only forensics_probe.s1 --retries 0
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE probe_out)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "probe host 2 run should exit 1 (failed shard), got ${rc}:\n"
        "${probe_out}")
endif()
if(NOT probe_out MATCHES "failure bundle")
    message(FATAL_ERROR
        "run did not report the forensics bundle:\n${probe_out}")
endif()
set(bundle "${phost2}/forensics/forensics_probe.s1")
if(NOT EXISTS "${bundle}/bundle.json")
    message(FATAL_ERROR "no bundle manifest at ${bundle}/bundle.json")
endif()

# The dashboard surfaces the bundle (pure reader, exit 1 incomplete
# on this host because s0 is not selected here and still pending).
execute_process(
    COMMAND "${SWEEP}" status "${phost2}" --watch
            --interval 0 --max-ticks 1
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE watch_out)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "status --watch on the failed probe host should exit 1, got "
        "${rc}:\n${watch_out}")
endif()
if(NOT watch_out MATCHES "forensic")
    message(FATAL_ERROR
        "status --watch shows no forensic column:\n${watch_out}")
endif()
if(NOT watch_out MATCHES "forensics_probe.s1")
    message(FATAL_ERROR
        "status --watch lost the failed shard:\n${watch_out}")
endif()
if(NOT watch_out MATCHES "bundle")
    message(FATAL_ERROR
        "status --watch does not surface the bundle:\n${watch_out}")
endif()

# The bundled failure trace replays deterministically: two c4replay
# passes over the same trace must emit byte-identical verdicts.
file(GLOB_RECURSE bundle_traces "${bundle}/trace/*.jsonl")
list(LENGTH bundle_traces trace_count)
if(trace_count EQUAL 0)
    message(FATAL_ERROR "the bundle captured no failure trace")
endif()
list(GET bundle_traces 0 failure_trace)
execute_process(
    COMMAND "${REPLAY_TOOL}" run "${failure_trace}"
    RESULT_VARIABLE rc
    OUTPUT_FILE "${WORK_DIR}/replay_once.txt")
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "c4replay run exited with ${rc}")
endif()
execute_process(
    COMMAND "${REPLAY_TOOL}" run "${failure_trace}"
    RESULT_VARIABLE rc
    OUTPUT_FILE "${WORK_DIR}/replay_twice.txt")
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "second c4replay run exited with ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/replay_once.txt" "${WORK_DIR}/replay_twice.txt"
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "replaying the bundled failure trace twice produced "
        "different verdicts — determinism broke")
endif()

# Collect both probe hosts back and score the bundle in one step: the
# report must name the shard and carry the link_failure verdict the
# probe's trunk-down plants in the failure trace.
execute_process(
    COMMAND "${SWEEP}" collect "${probe}" "${phost1}" "${phost2}"
            --report
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE report_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "c4sweep collect --report exited with ${rc}:\n${report_out}")
endif()
file(WRITE "${WORK_DIR}/forensics_report.txt" "${report_out}")
if(NOT report_out MATCHES "1 forensics bundle")
    message(FATAL_ERROR
        "collect did not pull the bundle back:\n${report_out}")
endif()
if(NOT report_out MATCHES "== forensics_probe.s1")
    message(FATAL_ERROR
        "the report does not cover the failed shard:\n${report_out}")
endif()
if(NOT report_out MATCHES "\"kind\":\"link_failure\"")
    message(FATAL_ERROR
        "the report carries no link_failure verdict for the "
        "trunk-down the probe injects:\n${report_out}")
endif()

# The standalone scorer sees the collected bundle too.
execute_process(
    COMMAND "${SWEEP}" forensics "${probe}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE forensics_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "c4sweep forensics exited with ${rc}")
endif()
if(NOT forensics_out MATCHES "link_failure")
    message(FATAL_ERROR
        "c4sweep forensics lost the verdict:\n${forensics_out}")
endif()
