# Spec-file round-trip gate, run as `cmake -P` from CTest: dump one
# built-in scenario as a spec file, load that file back (it replaces
# the built-in), dump again, and byte-compare the two dumps.
#
# Inputs: BENCH (c4bench path), SCENARIO, WORK_DIR (scratch dir).

file(MAKE_DIRECTORY "${WORK_DIR}")
set(first "${WORK_DIR}/${SCENARIO}.json")
set(second "${WORK_DIR}/${SCENARIO}.redump.json")

execute_process(
    COMMAND "${BENCH}" --smoke --dump-spec "${SCENARIO}"
    OUTPUT_FILE "${first}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${SCENARIO}: --dump-spec exited with ${rc}")
endif()

execute_process(
    COMMAND "${BENCH}" --smoke --spec "${first}"
            --dump-spec "${SCENARIO}"
    OUTPUT_FILE "${second}"
    ERROR_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "${SCENARIO}: --spec reload + --dump-spec exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${first}" "${second}"
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    execute_process(COMMAND diff -u "${first}" "${second}")
    message(FATAL_ERROR
        "${SCENARIO}: spec file is not byte-stable under "
        "dump -> parse -> re-dump")
endif()
