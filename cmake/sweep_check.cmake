# Distributed-sweep gate, run as `cmake -P` from CTest: plan a
# 4-shard-per-scenario campaign over three scenarios (two built-ins
# plus one loaded from specs/), execute it twice through real child
# processes — the first `run` is budget-limited to 3 shards to model
# an interrupted campaign, the second resumes and must not re-execute
# them — then merge and byte-compare against the CSV a single
# `c4bench --threads 1` process writes (the ISSUE 4 acceptance
# criterion). Both runs pass `--metrics`, and `status --watch` must
# render the dashboard against the interrupted and the resumed
# campaign with the matching exit codes (1 = incomplete, 0 =
# complete).
#
# Inputs: BENCH (c4bench path), SWEEP (c4sweep path), SPEC (spec file
# to include in the campaign), WORK_DIR (scratch dir).

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(campaign "${WORK_DIR}/campaign")
set(reference "${WORK_DIR}/reference.csv")
set(merged "${WORK_DIR}/merged.csv")

# The campaign: every scenario sharded 4 ways over a 4-trial sweep.
execute_process(
    COMMAND "${SWEEP}" plan --out "${campaign}" --shards 4
            --smoke --trials 4 fig9_dualport fig11_cnp "${SPEC}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "c4sweep plan exited with ${rc}")
endif()

# Merging an unfinished campaign must be refused, not half-done.
execute_process(
    COMMAND "${SWEEP}" merge "${campaign}"
    RESULT_VARIABLE rc
    ERROR_VARIABLE merge_err)
if(rc EQUAL 0)
    message(FATAL_ERROR
        "c4sweep merge succeeded on an unexecuted campaign")
endif()

# First run: interrupted after 3 shards (deterministic stand-in for a
# mid-campaign kill; the journal-level kill recovery is unit-tested in
# test_sweep.cc).
execute_process(
    COMMAND "${SWEEP}" run "${campaign}" --bench "${BENCH}"
            --max-shards 3 --metrics
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE first_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "first c4sweep run exited with ${rc}")
endif()
if(NOT first_out MATCHES "3 executed")
    message(FATAL_ERROR
        "first run should have executed exactly 3 shards:\n"
        "${first_out}")
endif()

# Watching the interrupted campaign: one tick, exit 1 (incomplete),
# and the dashboard must show the executed shards' snapshots.
execute_process(
    COMMAND "${SWEEP}" status "${campaign}" --watch
            --interval 0 --max-ticks 1
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE watch_out)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "status --watch on an interrupted campaign should exit 1, "
        "got ${rc}:\n${watch_out}")
endif()
if(NOT watch_out MATCHES "retry budget burned")
    message(FATAL_ERROR
        "status --watch rendered no dashboard:\n${watch_out}")
endif()
if(NOT watch_out MATCHES "samp/s")
    message(FATAL_ERROR
        "status --watch shows no per-shard metric highlights even "
        "though the run passed --metrics:\n${watch_out}")
endif()

# Resume: completes the campaign, re-executing nothing.
execute_process(
    COMMAND "${SWEEP}" run "${campaign}" --bench "${BENCH}"
            --metrics
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE second_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resumed c4sweep run exited with ${rc}")
endif()
if(NOT second_out MATCHES "3 skipped")
    message(FATAL_ERROR
        "resumed run re-executed already-done shards:\n${second_out}")
endif()

# Watching the finished campaign: exits 0 on the first tick and says
# so.
execute_process(
    COMMAND "${SWEEP}" status "${campaign}" --watch
            --interval 0 --max-ticks 1
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE watch_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "status --watch on a finished campaign should exit 0, got "
        "${rc}:\n${watch_out}")
endif()
if(NOT watch_out MATCHES "campaign complete")
    message(FATAL_ERROR
        "status --watch did not report completion:\n${watch_out}")
endif()

execute_process(
    COMMAND "${SWEEP}" status "${campaign}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "c4sweep status reports an incomplete campaign (${rc})")
endif()

execute_process(
    COMMAND "${SWEEP}" merge "${campaign}" --csv "${merged}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "c4sweep merge exited with ${rc}")
endif()

# The single-process reference: same scenarios, same order, one
# worker thread.
execute_process(
    COMMAND "${BENCH}" fig9_dualport fig11_cnp --spec "${SPEC}"
            --smoke --trials 4 --threads 1 --csv "${reference}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "reference c4bench run exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${merged}"
            "${reference}"
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    execute_process(COMMAND diff -u "${reference}" "${merged}")
    message(FATAL_ERROR
        "merged campaign CSV differs from the single-process "
        "--threads 1 run — the shard/merge pipeline broke the "
        "determinism guarantee")
endif()
