# Event-trace gate, run as `cmake -P` from CTest.
#
# Proves, end to end through the real binaries:
#   1. `c4bench --trace` writes per-trial JSONL traces that are
#      byte-identical between --threads 1 and --threads 4;
#   2. the golden smoke CSV is unchanged with tracing enabled;
#   3. `c4trace summary`, `timeline`, and `diff` all work on the
#      output, and `diff` flags an injected divergence.
#
# Inputs: BENCH (c4bench path), TRACE_TOOL (c4trace path), SCENARIO,
# GOLDEN (committed CSV), WORK_DIR (scratch).

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_or_die label)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${label}: exited with ${rc}")
    endif()
endfunction()

# --- 1. thread-count byte-equality -----------------------------------
run_or_die("trace run (--threads 1)"
    "${BENCH}" "${SCENARIO}" --smoke --trials 2 --threads 1
    --trace "${WORK_DIR}/t1")
run_or_die("trace run (--threads 4)"
    "${BENCH}" "${SCENARIO}" --smoke --trials 2 --threads 4
    --trace "${WORK_DIR}/t4")

file(GLOB_RECURSE t1_files RELATIVE "${WORK_DIR}/t1"
    "${WORK_DIR}/t1/*.jsonl")
list(SORT t1_files)
if(NOT t1_files)
    message(FATAL_ERROR "no JSONL traces under ${WORK_DIR}/t1")
endif()
set(total_bytes 0)
foreach(rel IN LISTS t1_files)
    if(NOT EXISTS "${WORK_DIR}/t4/${rel}")
        message(FATAL_ERROR
            "--threads 4 run is missing trace file ${rel}")
    endif()
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/t1/${rel}" "${WORK_DIR}/t4/${rel}"
        RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
        message(FATAL_ERROR
            "trace ${rel} differs between --threads 1 and "
            "--threads 4 — the determinism contract is broken")
    endif()
    file(SIZE "${WORK_DIR}/t1/${rel}" sz)
    math(EXPR total_bytes "${total_bytes} + ${sz}")
endforeach()
if(total_bytes EQUAL 0)
    message(FATAL_ERROR
        "every ${SCENARIO} trace is empty; instrumentation lost")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        "${WORK_DIR}/t1/${SCENARIO}.trace.json"
        "${WORK_DIR}/t4/${SCENARIO}.trace.json"
    RESULT_VARIABLE chrome_rc)
if(NOT chrome_rc EQUAL 0)
    message(FATAL_ERROR "Chrome trace differs between thread counts")
endif()

# --- 2. golden CSV unchanged with tracing enabled --------------------
run_or_die("traced golden run"
    "${BENCH}" "${SCENARIO}" --smoke --trials 1
    --trace "${WORK_DIR}/tg" --csv "${WORK_DIR}/with_trace.csv")
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        "${WORK_DIR}/with_trace.csv" "${GOLDEN}"
    RESULT_VARIABLE golden_rc)
if(NOT golden_rc EQUAL 0)
    execute_process(COMMAND diff -u "${GOLDEN}"
        "${WORK_DIR}/with_trace.csv")
    message(FATAL_ERROR
        "${SCENARIO}: smoke CSV changed when tracing was enabled")
endif()

# --- 3. c4trace summary / timeline / diff ----------------------------
execute_process(
    COMMAND "${TRACE_TOOL}" summary "${WORK_DIR}/t1"
    RESULT_VARIABLE rc OUTPUT_VARIABLE summary_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "c4trace summary: exited with ${rc}")
endif()
if(NOT summary_out MATCHES "event")
    message(FATAL_ERROR
        "c4trace summary output looks empty:\n${summary_out}")
endif()

list(GET t1_files 0 first_rel)
run_or_die("c4trace timeline"
    "${TRACE_TOOL}" timeline "${WORK_DIR}/t1/${first_rel}")

run_or_die("c4trace diff (identical)"
    "${TRACE_TOOL}" diff
    "${WORK_DIR}/t1/${first_rel}" "${WORK_DIR}/t4/${first_rel}")

# Mutate a copy; diff must exit 1 and nothing else.
configure_file("${WORK_DIR}/t1/${first_rel}"
    "${WORK_DIR}/mutated.jsonl" COPYONLY)
file(APPEND "${WORK_DIR}/mutated.jsonl"
    "{\"t\":1,\"k\":\"fault_injected\",\"d\":\"injected-divergence\"}\n")
execute_process(
    COMMAND "${TRACE_TOOL}" diff
        "${WORK_DIR}/t1/${first_rel}" "${WORK_DIR}/mutated.jsonl"
    RESULT_VARIABLE diff_rc OUTPUT_QUIET)
if(NOT diff_rc EQUAL 1)
    message(FATAL_ERROR
        "c4trace diff missed an injected divergence (exit "
        "${diff_rc}, expected 1)")
endif()
