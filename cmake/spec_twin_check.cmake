# Spec-twin gate, run as `cmake -P` from CTest: a spec file that
# recreates a built-in scenario must produce a byte-identical smoke
# CSV when loaded from disk (ISSUE 3 acceptance criterion).
#
# Inputs: BENCH (c4bench path), SCENARIO (built-in name), SPEC
# (spec-file path), WORK_DIR (scratch dir).

file(MAKE_DIRECTORY "${WORK_DIR}")
set(builtin_csv "${WORK_DIR}/${SCENARIO}.builtin.csv")
set(spec_csv "${WORK_DIR}/${SCENARIO}.spec.csv")

execute_process(
    COMMAND "${BENCH}" "${SCENARIO}" --smoke --trials 1
            --csv "${builtin_csv}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${SCENARIO}: built-in run exited with ${rc}")
endif()

execute_process(
    COMMAND "${BENCH}" --spec "${SPEC}" --smoke --trials 1
            --csv "${spec_csv}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET
    ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${SPEC}: spec-file run exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${builtin_csv}"
            "${spec_csv}"
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    execute_process(COMMAND diff -u "${builtin_csv}" "${spec_csv}")
    message(FATAL_ERROR
        "${SPEC}: smoke CSV differs from the built-in '${SCENARIO}' "
        "run — re-dump the built-in (c4bench --smoke --dump-spec "
        "${SCENARIO}) or update the spec file")
endif()
