# Offline-replay gate, run as `cmake -P` from CTest.
#
# Proves, through the real c4replay binary, that the committed incident
# corpus still diagnoses correctly:
#   1. `score` over tests/incidents/ passes the precision/recall floors
#      (both 0.9) AND byte-matches the committed golden verdicts;
#   2. scoring is reproducible: a second run writes byte-identical
#      verdicts (replay-same-incident-twice, via --write-golden);
#   3. a mutated golden makes `score --golden` fail (the gate can
#      actually catch a detector change);
#   4. `summary` and `run --label` work on the corpus.
#
# Inputs: REPLAY_TOOL (c4replay path), CORPUS (tests/incidents),
# WORK_DIR (scratch).

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_or_die label)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${label}: exited with ${rc}")
    endif()
endfunction()

# --- 1. score against floors + committed golden ----------------------
execute_process(
    COMMAND "${REPLAY_TOOL}" score "${CORPUS}"
        --min-precision 0.9 --min-recall 0.9
        --golden "${CORPUS}/golden_verdicts.jsonl"
        --report "${WORK_DIR}/score_report.txt"
        --write-golden "${WORK_DIR}/verdicts_a.jsonl"
    RESULT_VARIABLE rc OUTPUT_VARIABLE score_out
    ERROR_VARIABLE score_err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "c4replay score failed (exit ${rc}):\n"
        "${score_out}${score_err}")
endif()
if(NOT score_out MATCHES "aggregate: ")
    message(FATAL_ERROR
        "score output is missing the aggregate line:\n${score_out}")
endif()

# --- 2. second run is byte-identical ---------------------------------
run_or_die("c4replay score (rerun)"
    "${REPLAY_TOOL}" score "${CORPUS}"
    --write-golden "${WORK_DIR}/verdicts_b.jsonl")
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        "${WORK_DIR}/verdicts_a.jsonl" "${WORK_DIR}/verdicts_b.jsonl"
    RESULT_VARIABLE same_rc)
if(NOT same_rc EQUAL 0)
    message(FATAL_ERROR
        "two replays of the same corpus produced different verdicts — "
        "the analyzer is not deterministic")
endif()

# --- 3. a mutated golden must be flagged -----------------------------
configure_file("${CORPUS}/golden_verdicts.jsonl"
    "${WORK_DIR}/mutated_golden.jsonl" COPYONLY)
file(APPEND "${WORK_DIR}/mutated_golden.jsonl"
    "{\"incident\":\"injected\",\"verdicts\":0}\n")
execute_process(
    COMMAND "${REPLAY_TOOL}" score "${CORPUS}"
        --golden "${WORK_DIR}/mutated_golden.jsonl"
    RESULT_VARIABLE mut_rc OUTPUT_QUIET ERROR_QUIET)
if(NOT mut_rc EQUAL 1)
    message(FATAL_ERROR
        "score --golden missed a mutated golden (exit ${mut_rc}, "
        "expected 1)")
endif()

# --- 4. summary + single-incident run --------------------------------
execute_process(
    COMMAND "${REPLAY_TOOL}" summary "${CORPUS}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE summary_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "c4replay summary: exited with ${rc}")
endif()
if(NOT summary_out MATCHES "link_failure_single")
    message(FATAL_ERROR
        "summary does not list the corpus:\n${summary_out}")
endif()

run_or_die("c4replay run (labeled)"
    "${REPLAY_TOOL}" run
    "${CORPUS}/link_failure_single.trace.jsonl"
    --label "${CORPUS}/link_failure_single.label.json")
