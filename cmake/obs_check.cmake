# Live-metrics gate, run as `cmake -P` from CTest.
#
# Proves, end to end through the real binaries:
#   1. `c4bench --metrics` writes per-trial c4metrics/1 snapshots that
#      are byte-identical between --threads 1 and --threads 4;
#   2. the golden smoke CSV is unchanged with metrics enabled, and the
#      trial-0 snapshot is byte-identical to the committed golden
#      (regenerate with tests/golden/update.sh after an intentional
#      instrumentation change);
#   3. `c4stat summary`, `tail`, and `diff` all work on the output,
#      and `diff` flags an injected divergence with exit 1.
#
# Inputs: BENCH (c4bench path), STAT_TOOL (c4stat path), SCENARIO,
# GOLDEN (committed CSV), GOLDEN_METRICS (committed snapshot),
# WORK_DIR (scratch).

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_or_die label)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${label}: exited with ${rc}")
    endif()
endfunction()

# --- 1. thread-count byte-equality -----------------------------------
run_or_die("metrics run (--threads 1)"
    "${BENCH}" "${SCENARIO}" --smoke --trials 2 --threads 1
    --metrics "${WORK_DIR}/m1")
run_or_die("metrics run (--threads 4)"
    "${BENCH}" "${SCENARIO}" --smoke --trials 2 --threads 4
    --metrics "${WORK_DIR}/m4")

file(GLOB_RECURSE m1_files RELATIVE "${WORK_DIR}/m1"
    "${WORK_DIR}/m1/*.jsonl")
list(SORT m1_files)
if(NOT m1_files)
    message(FATAL_ERROR "no JSONL snapshots under ${WORK_DIR}/m1")
endif()
set(total_bytes 0)
foreach(rel IN LISTS m1_files)
    if(NOT EXISTS "${WORK_DIR}/m4/${rel}")
        message(FATAL_ERROR
            "--threads 4 run is missing snapshot file ${rel}")
    endif()
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/m1/${rel}" "${WORK_DIR}/m4/${rel}"
        RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
        message(FATAL_ERROR
            "snapshot ${rel} differs between --threads 1 and "
            "--threads 4 — the determinism contract is broken")
    endif()
    file(SIZE "${WORK_DIR}/m1/${rel}" sz)
    math(EXPR total_bytes "${total_bytes} + ${sz}")
endforeach()
if(total_bytes EQUAL 0)
    message(FATAL_ERROR
        "every ${SCENARIO} snapshot is empty; instrumentation lost")
endif()

# --- 2. golden CSV + golden snapshot with metrics enabled ------------
run_or_die("metered golden run"
    "${BENCH}" "${SCENARIO}" --smoke --trials 1
    --metrics "${WORK_DIR}/mg" --csv "${WORK_DIR}/with_metrics.csv")
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        "${WORK_DIR}/with_metrics.csv" "${GOLDEN}"
    RESULT_VARIABLE golden_rc)
if(NOT golden_rc EQUAL 0)
    execute_process(COMMAND diff -u "${GOLDEN}"
        "${WORK_DIR}/with_metrics.csv")
    message(FATAL_ERROR
        "${SCENARIO}: smoke CSV changed when metrics were enabled")
endif()

file(GLOB_RECURSE mg_files "${WORK_DIR}/mg/*.jsonl")
list(SORT mg_files)
list(GET mg_files 0 first_snapshot)
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        "${first_snapshot}" "${GOLDEN_METRICS}"
    RESULT_VARIABLE snap_rc)
if(NOT snap_rc EQUAL 0)
    execute_process(COMMAND diff -u "${GOLDEN_METRICS}"
        "${first_snapshot}")
    message(FATAL_ERROR
        "${SCENARIO}: trial-0 metric snapshot differs from the "
        "committed golden ${GOLDEN_METRICS} — regenerate with "
        "tests/golden/update.sh if the instrumentation change is "
        "intentional")
endif()

# --- 3. c4stat summary / tail / diff ---------------------------------
execute_process(
    COMMAND "${STAT_TOOL}" summary "${WORK_DIR}/m1"
    RESULT_VARIABLE rc OUTPUT_VARIABLE summary_out)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "c4stat summary: exited with ${rc}")
endif()
if(NOT summary_out MATCHES "metric")
    message(FATAL_ERROR
        "c4stat summary output looks empty:\n${summary_out}")
endif()

list(GET m1_files 0 first_rel)
run_or_die("c4stat tail"
    "${STAT_TOOL}" tail "${WORK_DIR}/m1/${first_rel}" --ticks 3)

run_or_die("c4stat diff (identical)"
    "${STAT_TOOL}" diff
    "${WORK_DIR}/m1/${first_rel}" "${WORK_DIR}/m4/${first_rel}")

# Mutate a copy; diff must exit 1 and nothing else.
configure_file("${WORK_DIR}/m1/${first_rel}"
    "${WORK_DIR}/mutated.jsonl" COPYONLY)
file(APPEND "${WORK_DIR}/mutated.jsonl"
    "{\"t\":1,\"n\":\"injected.metric\",\"k\":\"counter\",\"c\":1}\n")
execute_process(
    COMMAND "${STAT_TOOL}" diff
        "${WORK_DIR}/m1/${first_rel}" "${WORK_DIR}/mutated.jsonl"
    RESULT_VARIABLE diff_rc OUTPUT_QUIET)
if(NOT diff_rc EQUAL 1)
    message(FATAL_ERROR
        "c4stat diff missed an injected divergence (exit "
        "${diff_rc}, expected 1)")
endif()
