# perf-smoke gate, run as `cmake -P` from CTest: run the wall-clock
# harness in 1-rep smoke mode and check the JSON report parses at the
# schema level (schema tag, every workload block, the kernel ratios).
# The *numbers* are machine-dependent and deliberately not checked —
# the golden gate pins values, this gate pins that the harness and its
# report format keep working in every build type (Debug/Release/ASan).
#
# Inputs: BENCH (c4bench path), OUT (scratch JSON to write).

get_filename_component(out_dir "${OUT}" DIRECTORY)
file(MAKE_DIRECTORY "${out_dir}")

execute_process(
    COMMAND "${BENCH}" --perf --smoke --perf-reps 1 --perf-warmup 0
            --perf-json "${OUT}"
    RESULT_VARIABLE run_rc
    OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "c4bench --perf exited with ${run_rc}")
endif()

if(NOT EXISTS "${OUT}")
    message(FATAL_ERROR "c4bench --perf wrote no JSON at ${OUT}")
endif()
file(READ "${OUT}" report)

foreach(needle
        "\"schema\": \"c4perf/2\""
        "\"mode\": \"smoke\""
        "\"workloads\""
        "\"ratios\""
        "\"kernel_sched_fire_pooled\""
        "\"kernel_sched_fire_legacy\""
        "\"kernel_cancel_churn_pooled\""
        "\"kernel_cancel_churn_legacy\""
        "\"kernel_burst_drain_pooled\""
        "\"kernel_burst_drain_legacy\""
        "\"scenario_fabric_recompute\""
        "\"scenario_churn_multijob_smoke\""
        "\"median_ns\""
        "\"items_per_sec_median\""
        "\"alloc_count\""
        "\"alloc_bytes\""
        "\"peak_rss_kb\""
        "\"pooled_vs_legacy_median\"")
    string(FIND "${report}" "${needle}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
            "perf JSON at ${OUT} is missing ${needle} — the c4perf/2 "
            "schema changed; update cmake/perf_check.cmake and the "
            "README schema table together")
    endif()
endforeach()
