# Golden-CSV gate, run as `cmake -P` from CTest: re-run one scenario
# in smoke mode and byte-compare its CSV against the committed golden.
#
# Inputs: BENCH (c4bench path), SCENARIO, GOLDEN (committed CSV),
# OUT (scratch CSV to write).

get_filename_component(out_dir "${OUT}" DIRECTORY)
file(MAKE_DIRECTORY "${out_dir}")

execute_process(
    COMMAND "${BENCH}" "${SCENARIO}" --smoke --trials 1 --csv "${OUT}"
    RESULT_VARIABLE run_rc
    OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "${SCENARIO}: c4bench exited with ${run_rc}")
endif()

if(NOT EXISTS "${GOLDEN}")
    message(FATAL_ERROR
        "${SCENARIO}: no golden CSV at ${GOLDEN}; run "
        "tests/golden/update.sh and commit the result")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${OUT}" "${GOLDEN}"
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    execute_process(COMMAND diff -u "${GOLDEN}" "${OUT}")
    message(FATAL_ERROR
        "${SCENARIO}: smoke CSV differs from ${GOLDEN} — a metric "
        "regression, or an intentional change that needs "
        "tests/golden/update.sh re-run")
endif()
