/**
 * @file
 * Seed-determinism regression tests: the whole Simulator/Accl stack is
 * seeded, so two runs of the same scenario with the same seed must
 * produce byte-identical stats, and different seeds must diverge. This
 * is what makes every figure in the paper reproduction — and every
 * failing test — replayable.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "accl/accl.h"
#include "common/csv.h"
#include "fault/injector.h"
#include "testutil/testutil.h"

namespace c4 {
namespace {

using accl::CollOp;
using accl::CollectiveResult;

/**
 * Run a congested multi-collective scenario and serialize every piece
 * of telemetry it produced (connection records and collective results)
 * into one exact, integer-typed CSV string.
 */
std::string
runScenario(std::uint64_t seed)
{
    // Default fabric config: congestion jitter on, so the run exercises
    // the fabric's own (fixed-seed) RNG alongside ACCL's.
    testutil::AcclHarness h(testutil::flatConfig(4),
                            net::FabricConfig{}, accl::AcclConfig{},
                            seed);

    const CommId comm = h.fullComm(4);
    std::vector<CollectiveResult> results;
    for (CollOp op : {CollOp::AllReduce, CollOp::AllGather,
                      CollOp::ReduceScatter, CollOp::AllToAll}) {
        h.lib.postCollective(comm, op, mib(64),
                             [&results](const CollectiveResult &r) {
                                 results.push_back(r);
                             });
    }
    h.sim.run();

    std::ostringstream os;
    CsvWriter csv(os);
    for (const CollectiveResult &r : results) {
        csv.cell(static_cast<std::int64_t>(r.comm))
            .cell(static_cast<std::int64_t>(r.seq))
            .cell(static_cast<std::int32_t>(r.op))
            .cell(r.bytes)
            .cell(static_cast<std::int64_t>(r.nranks))
            .cell(r.postTime)
            .cell(r.startTime)
            .cell(r.endTime);
        csv.endRow();
    }
    for (const accl::ConnRecord &rec : h.lib.monitor().drainConn()) {
        csv.cell(static_cast<std::int64_t>(rec.comm))
            .cell(static_cast<std::int64_t>(rec.seq))
            .cell(static_cast<std::int64_t>(rec.channel))
            .cell(static_cast<std::int64_t>(rec.qpIndex))
            .cell(static_cast<std::int64_t>(rec.srcRank))
            .cell(static_cast<std::int64_t>(rec.dstRank))
            .cell(static_cast<std::int64_t>(rec.srcNode))
            .cell(static_cast<std::int64_t>(rec.dstNode))
            .cell(static_cast<std::int64_t>(net::planeIndex(rec.txPlane)))
            .cell(static_cast<std::int64_t>(rec.spine))
            .cell(static_cast<std::int64_t>(rec.rxPlane))
            .cell(rec.bytes)
            .cell(rec.startTime)
            .cell(rec.endTime);
        csv.endRow();
    }
    return os.str();
}

TEST(Determinism, SameSeedIsByteIdentical)
{
    const std::string a = runScenario(0xD5EEDull);
    const std::string b = runScenario(0xD5EEDull);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    const std::string a = runScenario(1);
    const std::string b = runScenario(2);
    EXPECT_NE(a, b);
}

/** The fault campaign's Poisson draws are a separate seeded stream. */
std::string
runFaultCampaign(std::uint64_t seed)
{
    Simulator sim;
    fault::FaultInjector injector(sim, seed);
    std::vector<NodeId> nodes;
    for (NodeId n = 0; n < 64; ++n)
        nodes.push_back(n);
    injector.startCampaign(fault::FaultRates::paperJune2023(), nodes,
                           /*nicsPerNode=*/8, /*gpusPerNode=*/8,
                           /*numTrunks=*/0, days(30));
    sim.run();

    std::ostringstream os;
    CsvWriter csv(os);
    for (const fault::FaultEvent &ev : injector.history()) {
        csv.cell(static_cast<std::int32_t>(ev.type))
            .cell(static_cast<std::int64_t>(ev.node))
            .cell(ev.when);
        csv.endRow();
    }
    return os.str();
}

TEST(Determinism, FaultCampaignReplaysExactly)
{
    const std::string a = runFaultCampaign(42);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, runFaultCampaign(42));
    EXPECT_NE(a, runFaultCampaign(43));
}

} // namespace
} // namespace c4
