#!/usr/bin/env bash
# Regenerate the golden smoke CSVs (tests/golden/<scenario>.csv) from
# a built c4bench. Run after an INTENTIONAL metric change, eyeball the
# diff, and commit the result; `ctest -L golden` byte-compares against
# these files.
#
# usage: tests/golden/update.sh [path/to/c4bench]
set -euo pipefail
bench=${1:-build/bench/c4bench}
if [ ! -x "$bench" ]; then
    echo "error: no executable c4bench at '$bench'" >&2
    echo "build it first (cmake --build build) or pass the path:" >&2
    echo "  tests/golden/update.sh path/to/c4bench" >&2
    exit 1
fi
dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
"$bench" --list | while read -r name _; do
    case $name in
    micro_core)
        # Wall-clock timing metrics; never reproducible.
        continue ;;
    esac
    "$bench" "$name" --smoke --trials 1 --csv "$dir/$name.csv" \
        > /dev/null
    echo "updated tests/golden/$name.csv"
done

# The fig9 metric-snapshot golden (ctest -L obs byte-compares the
# trial-0 snapshot against it; test_obs prefix-fuzzes its parser).
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
"$bench" fig9_dualport --smoke --trials 1 --threads 1 \
    --metrics "$tmp" > /dev/null
snapshot=$(find "$tmp" -name '*.jsonl' | sort | head -n 1)
cp "$snapshot" "$dir/fig9_dualport_metrics.jsonl"
echo "updated tests/golden/fig9_dualport_metrics.jsonl"
