/**
 * @file
 * Tests for the cluster runtime facade: wiring, node pool, fault
 * routing, and the experiment helpers.
 */

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/experiment.h"

namespace c4::core {
namespace {

TEST(Cluster, LayersWiredAccordingToConfig)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    Cluster plain(cc);
    EXPECT_EQ(plain.c4dMaster(), nullptr);
    EXPECT_EQ(plain.c4pMaster(), nullptr);

    cc.enableC4d = true;
    cc.enableC4p = true;
    Cluster full(cc);
    EXPECT_NE(full.c4dMaster(), nullptr);
    EXPECT_NE(full.steering(), nullptr);
    EXPECT_NE(full.agent(), nullptr);
    EXPECT_NE(full.c4pMaster(), nullptr);
}

TEST(Cluster, PaperTestbedShape)
{
    const net::TopologyConfig tc = paperTestbed();
    net::Topology topo(tc);
    EXPECT_EQ(topo.numNodes(), 16);
    EXPECT_EQ(topo.numGpus(), 128);
    EXPECT_EQ(topo.numLeaves(), 8);
    EXPECT_EQ(topo.numSpines(), 8);
    EXPECT_DOUBLE_EQ(tc.nvlinkBusBandwidth, gbps(362));

    const net::TopologyConfig two = paperTestbed(2.0);
    net::Topology congested(two);
    EXPECT_DOUBLE_EQ(
        congested.link(congested.trunkUplink(0, 0)).capacity, gbps(100));
}

TEST(Cluster, NodePoolAllocation)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    Cluster cluster(cc);
    EXPECT_EQ(cluster.freeNodes(), 16);

    const auto a = cluster.allocateNodes(4);
    EXPECT_EQ(a.size(), 4u);
    EXPECT_EQ(cluster.freeNodes(), 12);

    const auto b = cluster.allocateNodes(12);
    EXPECT_EQ(cluster.freeNodes(), 0);
    for (NodeId n : b)
        EXPECT_EQ(std::count(a.begin(), a.end(), n), 0);

    EXPECT_THROW(cluster.allocateNodes(1), std::runtime_error);
}

TEST(Cluster, AddJobAutoAllocatesNodes)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    Cluster cluster(cc);

    train::JobConfig jc;
    jc.id = 1;
    jc.model = train::llama7b();
    jc.model.microbatchCompute = milliseconds(300);
    jc.parallel = {.tp = 8, .pp = 1, .dp = 4};
    jc.initTime = seconds(5);
    auto &job = cluster.addJob(jc);
    EXPECT_EQ(job.nodes().size(), 4u);
    EXPECT_EQ(cluster.freeNodes(), 12);
    EXPECT_EQ(cluster.job(1), &job);
    EXPECT_EQ(cluster.job(99), nullptr);
    EXPECT_THROW(cluster.addJob(jc), std::invalid_argument);
}

TEST(Cluster, FatalFaultRoutesIntoJob)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    Cluster cluster(cc);

    train::JobConfig jc;
    jc.id = 1;
    jc.model = train::llama7b();
    jc.model.microbatchCompute = milliseconds(300);
    jc.parallel = {.tp = 8, .pp = 1, .dp = 2};
    jc.initTime = seconds(5);
    jc.hangWatchdogTimeout = minutes(5);
    auto &job = cluster.addJob(jc);
    job.start();
    cluster.run(minutes(1));
    const auto iters = job.iterationsCompleted();
    ASSERT_GT(iters, 0u);

    fault::FaultEvent ev;
    ev.type = fault::FaultType::EccError;
    ev.node = job.nodes().front();
    cluster.faults().injectNow(ev);

    cluster.run(minutes(3));
    EXPECT_EQ(job.iterationsCompleted(), iters); // hung
}

TEST(Cluster, SlowNicFaultDegradesLinks)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    Cluster cluster(cc);

    fault::FaultEvent ev;
    ev.type = fault::FaultType::SlowNicRx;
    ev.node = 3;
    ev.nic = 2;
    ev.severity = 0.25;
    cluster.faults().injectNow(ev);

    const auto &link = cluster.topology().link(
        cluster.topology().hostDownlink(3, 2, net::Plane::Left));
    EXPECT_DOUBLE_EQ(link.capacityScale, 0.25);
}

TEST(Cluster, LinkDownFaultKillsTrunkBothWays)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    Cluster cluster(cc);

    fault::FaultEvent ev;
    ev.type = fault::FaultType::LinkDown;
    ev.link = 2 * 8 + 5; // leaf 2, spine 5
    cluster.faults().injectNow(ev);

    EXPECT_FALSE(
        cluster.topology().link(cluster.topology().trunkUplink(2, 5)).up);
    EXPECT_FALSE(cluster.topology()
                     .link(cluster.topology().trunkDownlink(5, 2))
                     .up);
}

TEST(Cluster, BackupProvisioningNeedsC4d)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    Cluster plain(cc);
    EXPECT_THROW(plain.provisionBackupNodes(2), std::runtime_error);

    cc.enableC4d = true;
    Cluster with(cc);
    with.provisionBackupNodes(2);
    EXPECT_EQ(with.steering()->backupsAvailable(), 2u);
    EXPECT_EQ(with.freeNodes(), 14);
}

TEST(Cluster, RemoveJobRefillsBackupPool)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4d = true;
    cc.steering.isolationDelay = seconds(1);
    Cluster cluster(cc);
    cluster.provisionBackupNodes(2);
    EXPECT_EQ(cluster.backupReserve(), 2);
    ASSERT_EQ(cluster.steering()->backupsAvailable(), 2u);

    train::JobConfig jc;
    jc.id = 7;
    jc.model = train::llama7b();
    jc.model.microbatchCompute = milliseconds(300);
    jc.parallel = {.tp = 8, .pp = 1, .dp = 2};
    jc.initTime = seconds(5);
    auto &job = cluster.addJob(jc);
    job.start();
    cluster.run(seconds(10));

    // A fatal C4D event against the job's first node: steering
    // isolates it and swaps in a warm backup.
    c4d::C4dEvent ev;
    ev.when = cluster.sim().now();
    ev.kind = c4d::C4dEventKind::CommHang;
    ev.job = jc.id;
    ev.suspectNodes = {job.nodes().front()};
    cluster.steering()->handleEvent(ev);
    cluster.run(cluster.sim().now() + seconds(30));
    ASSERT_EQ(cluster.steering()->backupsAvailable(), 1u);
    ASSERT_EQ(cluster.steering()->isolatedNodes().size(), 1u);

    const int freeBefore = cluster.freeNodes();
    EXPECT_TRUE(cluster.removeJob(jc.id));
    // Of the two freed healthy nodes, one refills the warm-standby
    // queue back to the reserve of 2 and stays out of the general
    // pool; the other is freed. The isolated node stays out entirely.
    EXPECT_EQ(cluster.steering()->backupsAvailable(), 2u);
    EXPECT_EQ(cluster.freeNodes(), freeBefore + 1);
    EXPECT_EQ(cluster.jobCount(), 0u);
}

TEST(Experiment, AllreduceTaskRunsToCompletion)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4p = true;
    Cluster cluster(cc);

    AllreduceTaskConfig tc;
    tc.nodes = {0, 4};
    tc.iterations = 10;
    tc.bytes = mib(64);
    AllreduceTask task(cluster, tc);
    int seen = 0;
    task.onIteration([&](int iter, double bw) {
        EXPECT_EQ(iter, seen + 1);
        ++seen;
        EXPECT_GT(bw, 0.0);
    });
    task.start();
    cluster.run();
    EXPECT_TRUE(task.finished());
    EXPECT_EQ(task.iterationsCompleted(), 10);
    EXPECT_EQ(task.series().size(), 10u);
    EXPECT_NEAR(task.busBwGbps().mean(), 362.0, 5.0);
}

TEST(Experiment, CrossSegmentPairsAreCrossSegment)
{
    net::Topology topo(paperTestbed());
    const auto tasks = crossSegmentPairs(topo, 8);
    ASSERT_EQ(tasks.size(), 8u);
    std::set<NodeId> all;
    for (const auto &pair : tasks) {
        ASSERT_EQ(pair.size(), 2u);
        EXPECT_NE(topo.segmentOf(pair[0]), topo.segmentOf(pair[1]));
        all.insert(pair[0]);
        all.insert(pair[1]);
    }
    EXPECT_EQ(all.size(), 16u); // no node reused
}

TEST(Experiment, CrossSegmentPairsRejectsTooMany)
{
    net::Topology topo(paperTestbed());
    EXPECT_THROW(crossSegmentPairs(topo, 64), std::invalid_argument);
}

} // namespace
} // namespace c4::core
