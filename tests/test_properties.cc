/**
 * @file
 * Property-based suites: invariants that must hold across randomized
 * workloads and parameter sweeps.
 *
 * - Fabric: capacity feasibility (no link over-allocated), work
 *   conservation (every flow is bottlenecked at some saturated link),
 *   and conservation of bytes (completion time x rate accounts for the
 *   payload).
 * - ACCL: collective traffic accounting (transport bytes match the
 *   algorithm's expected inter-node volume) and busbw bounds.
 * - Downtime model: monotonicity in fault rate.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "accl/accl.h"
#include "c4d/downtime.h"
#include "common/random.h"
#include "net/fabric.h"
#include "testutil/testutil.h"

namespace c4 {
namespace {

using net::PathRequest;
using net::Plane;

/** Sweep over seeds: each instantiation runs a random flow pattern. */
class FabricInvariants : public ::testing::TestWithParam<int>
{
};

TEST_P(FabricInvariants, FeasibilityAndWorkConservation)
{
    // Jitter-free fabric: exact fair share for the invariants.
    testutil::FabricHarness h;
    net::Fabric &fabric = h.fabric;
    const net::Topology &topo = h.topo;
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);

    // Random flow soup: 40 flows between random cross-node endpoints,
    // some pinned, some hashed.
    std::vector<FlowId> flows;
    for (int i = 0; i < 40; ++i) {
        PathRequest req;
        req.srcNode = static_cast<NodeId>(rng.uniformInt(0, 15));
        do {
            req.dstNode = static_cast<NodeId>(rng.uniformInt(0, 15));
        } while (req.dstNode == req.srcNode);
        req.srcNic = static_cast<NicId>(rng.uniformInt(0, 7));
        req.dstNic = static_cast<NicId>(rng.uniformInt(0, 7));
        req.txPlane = rng.chance(0.5) ? Plane::Left : Plane::Right;
        if (rng.chance(0.3))
            req.spine = static_cast<std::int32_t>(rng.uniformInt(0, 7));
        req.flowLabel = static_cast<std::uint32_t>(rng());
        flows.push_back(fabric.startFlow(req, gib(64), nullptr));
    }

    // Invariant 1: no link carries more than its capacity.
    for (const auto &link : topo.links()) {
        EXPECT_LE(fabric.linkThroughput(link.id),
                  link.effectiveCapacity() * (1.0 + 1e-9))
            << link.name;
    }

    // Invariant 2 (work conservation / max-min): every flow crosses at
    // least one (nearly) saturated link — otherwise it could go faster.
    for (FlowId f : flows) {
        const net::Route *route = fabric.flowRoute(f);
        ASSERT_NE(route, nullptr);
        if (!route->valid())
            continue; // stalled flows are exempt
        bool bottlenecked = false;
        for (LinkId l : route->links) {
            if (fabric.linkThroughput(l) >=
                topo.link(l).effectiveCapacity() * 0.999) {
                bottlenecked = true;
            }
        }
        EXPECT_TRUE(bottlenecked) << "flow " << f << " is not "
                                  << "bottlenecked anywhere";
        EXPECT_GT(fabric.flowRate(f), 0.0);
    }
}

TEST_P(FabricInvariants, ByteConservationAtCompletion)
{
    testutil::FabricHarness h;
    net::Fabric &fabric = h.fabric;
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);

    int done = 0;
    for (int i = 0; i < 12; ++i) {
        PathRequest req;
        req.srcNode = static_cast<NodeId>(rng.uniformInt(0, 7));
        req.dstNode = static_cast<NodeId>(rng.uniformInt(8, 15));
        req.srcNic = static_cast<NicId>(i % 8);
        req.dstNic = req.srcNic;
        req.flowLabel = static_cast<std::uint32_t>(rng());
        const Bytes bytes = mib(rng.uniformInt(16, 128));
        fabric.startFlow(req, bytes,
                         [&done, bytes](const net::FlowEnd &end) {
                             ++done;
                             EXPECT_EQ(end.bytes, bytes);
                             // No flow can beat its 200 Gbps port.
                             EXPECT_GE(end.duration() + microseconds(1),
                                       transferTime(bytes, gbps(200)));
                             // And none should be infinitely slow
                             // here (12 flows, ample capacity).
                             EXPECT_LE(end.duration(),
                                       transferTime(bytes, gbps(10)));
                         });
    }
    h.sim.run();
    EXPECT_EQ(done, 12);
    EXPECT_EQ(fabric.activeFlowCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricInvariants,
                         ::testing::Range(0, 8));

/** Collective traffic accounting across ops and sizes. */
struct CollCase
{
    accl::CollOp op;
    int nodes;
};

class CollectiveAccounting
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CollectiveAccounting, TransportBytesMatchAlgorithm)
{
    const auto [op_idx, nodes] = GetParam();
    const auto op = static_cast<accl::CollOp>(op_idx);

    testutil::AcclHarness h(nodes);
    accl::Accl &lib = h.lib;
    const CommId comm = h.fullComm(nodes);

    const Bytes payload = mib(96);
    bool done = false;
    accl::CollectiveResult res;
    lib.postCollective(comm, op, payload,
                       [&](const accl::CollectiveResult &r) {
                           done = true;
                           res = r;
                       });
    h.sim.run();
    ASSERT_TRUE(done);

    // busbw can never exceed the NVLink ceiling.
    EXPECT_LE(toGbps(res.busBw()), 362.0 + 1.0);

    // Inter-node transport volume: the ring moves busFactor * payload
    // per boundary-crossing rank; with our node-level rings, expect
    // per-boundary bytes ~= busFactor * payload (ring ops). AllToAll
    // moves payload*(n-1)/n total per rank pair group.
    Bytes transport = 0;
    for (const auto &rec : lib.monitor().drainConn())
        transport += rec.bytes;

    const int n = nodes * 8;
    const double factor = accl::busFactor(op, n);
    double expected = 0.0;
    if (op == accl::CollOp::AllToAll) {
        // Sum over cross-node ordered pairs of per-pair volume.
        const double per_pair =
            static_cast<double>(payload) / n * 8; // 8 ranks per node
        expected = per_pair * nodes * (nodes - 1) * 8;
    } else {
        // Ring: `nodes` boundaries each moving factor * payload.
        expected = factor * static_cast<double>(payload) * nodes;
    }
    EXPECT_NEAR(static_cast<double>(transport), expected,
                expected * 0.05 + 1024.0);
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndSizes, CollectiveAccounting,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(accl::CollOp::AllReduce),
                          static_cast<int>(accl::CollOp::AllGather),
                          static_cast<int>(accl::CollOp::ReduceScatter),
                          static_cast<int>(accl::CollOp::AllToAll)),
        ::testing::Values(2, 4)));

/** Downtime monotonicity: more faults, more downtime. */
class DowntimeMonotonicity : public ::testing::TestWithParam<double>
{
};

TEST_P(DowntimeMonotonicity, ScalesWithFaultRate)
{
    const double scale = GetParam();
    const auto base_rates = fault::FaultRates::paperJune2023();
    c4d::DowntimeModel base(c4d::RecoveryPolicy::june2023(), base_rates,
                            2400, days(30), 11);
    c4d::DowntimeModel scaled(c4d::RecoveryPolicy::june2023(),
                              base_rates.scaled(scale), 2400, days(30),
                              11);
    const double b = base.run(48).total();
    const double s = scaled.run(48).total();
    if (scale > 1.0)
        EXPECT_GT(s, b);
    else
        EXPECT_LT(s, b);
}

INSTANTIATE_TEST_SUITE_P(Scales, DowntimeMonotonicity,
                         ::testing::Values(0.25, 0.5, 2.0, 4.0));

} // namespace
} // namespace c4
