/**
 * @file
 * Integration-level tests of the ACCL engine over the fabric: busbw
 * physics (NVLink cap, dual-port imbalance), algorithm variants,
 * point-to-point, ordering, straggler skew, and crash semantics.
 */

#include <gtest/gtest.h>

#include "accl/accl.h"
#include "net/fabric.h"
#include "testutil/testutil.h"

namespace c4::accl {
namespace {

using net::Plane;

using Harness = testutil::AcclHarness;

/** Pins rx plane to tx plane and spreads spines: an ideal-path policy. */
class PinnedPolicy : public PathPolicy
{
  public:
    PathDecision
    decide(const ConnContext &ctx) override
    {
        PathDecision d;
        d.txPlane = net::planeFromIndex((ctx.channel + ctx.qpIndex) % 2);
        d.rxPlane = net::planeIndex(d.txPlane);
        d.spine = next_++ % 8;
        d.flowLabel = next_;
        return d;
    }

  private:
    std::uint32_t next_ = 0;
};

TEST(Accl, SingleNodeAllReduceHitsNvlinkBw)
{
    Harness h(1);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0}));
    double busbw = 0.0;
    h.lib.postCollective(comm, CollOp::AllReduce, mib(256),
                         [&](const CollectiveResult &r) {
                             busbw = toGbps(r.busBw());
                         });
    h.sim.run();
    EXPECT_NEAR(busbw, 362.0, 1.0);
}

TEST(Accl, CrossNodeAllReduceCappedByNvlinkWithPinnedPaths)
{
    Harness h(2);
    PinnedPolicy policy;
    h.lib.setPathPolicy(&policy);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0, 1}));
    double busbw = 0.0;
    h.lib.postCollective(comm, CollOp::AllReduce, mib(256),
                         [&](const CollectiveResult &r) {
                             busbw = toGbps(r.busBw());
                         });
    h.sim.run();
    EXPECT_NEAR(busbw, 362.0, 2.0);
}

TEST(Accl, DualPortCollisionHalvesBusBw)
{
    // Force both channels' flows onto the same landing plane: the two
    // bonded RX ports become one 200 Gbps port (paper Fig. 9 syndrome).
    class CollidingPolicy : public PathPolicy
    {
      public:
        PathDecision
        decide(const ConnContext &ctx) override
        {
            PathDecision d;
            d.txPlane =
                net::planeFromIndex((ctx.channel + ctx.qpIndex) % 2);
            d.rxPlane = net::planeIndex(Plane::Left); // all on left
            d.spine = next_++ % 8;
            return d;
        }
        std::uint32_t next_ = 0;
    };

    Harness h(2);
    CollidingPolicy policy;
    h.lib.setPathPolicy(&policy);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0, 1}));
    double busbw = 0.0;
    h.lib.postCollective(comm, CollOp::AllReduce, mib(256),
                         [&](const CollectiveResult &r) {
                             busbw = toGbps(r.busBw());
                         });
    h.sim.run();
    EXPECT_NEAR(busbw, 200.0, 5.0);
}

TEST(Accl, AllGatherAndReduceScatterComplete)
{
    Harness h(2);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0, 1}));
    int done = 0;
    h.lib.postCollective(comm, CollOp::AllGather, mib(64),
                         [&](const CollectiveResult &r) {
                             ++done;
                             EXPECT_EQ(r.op, CollOp::AllGather);
                             EXPECT_GT(r.busBw(), 0.0);
                         });
    h.lib.postCollective(comm, CollOp::ReduceScatter, mib(64),
                         [&](const CollectiveResult &r) {
                             ++done;
                             EXPECT_EQ(r.op, CollOp::ReduceScatter);
                         });
    h.lib.postCollective(comm, CollOp::Broadcast, mib(64),
                         [&](const CollectiveResult &r) {
                             ++done;
                             EXPECT_EQ(r.op, CollOp::Broadcast);
                         });
    h.sim.run();
    EXPECT_EQ(done, 3);
}

TEST(Accl, TreeAlgorithmCompletesAndIsSlowerOrEqual)
{
    Harness h(4);
    PinnedPolicy policy;
    h.lib.setPathPolicy(&policy);
    CommId comm =
        h.lib.createCommunicator(1, h.fullNodes({0, 1, 2, 3}));
    Duration ring_time = 0, tree_time = 0;
    h.lib.postCollective(
        comm, CollOp::AllReduce, mib(128),
        [&](const CollectiveResult &r) { ring_time = r.commDuration(); },
        {}, AlgoKind::Ring);
    h.lib.postCollective(
        comm, CollOp::AllReduce, mib(128),
        [&](const CollectiveResult &r) { tree_time = r.commDuration(); },
        {}, AlgoKind::Tree);
    h.sim.run();
    EXPECT_GT(ring_time, 0);
    EXPECT_GT(tree_time, 0);
    // The tree moves ~2x bytes per rank at large n; never faster here.
    EXPECT_GE(tree_time, ring_time);
}

TEST(Accl, OpsOnOneCommExecuteFifo)
{
    Harness h(2);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0, 1}));
    std::vector<CollSeq> order;
    for (int i = 0; i < 4; ++i) {
        h.lib.postCollective(comm, CollOp::AllReduce, mib(16),
                             [&](const CollectiveResult &r) {
                                 order.push_back(r.seq);
                             });
    }
    h.sim.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    EXPECT_EQ(h.lib.collectivesCompleted(), 4u);
}

TEST(Accl, StragglerDelayGatesStart)
{
    Harness h(2);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0, 1}));
    std::vector<Duration> delays(16, 0);
    delays[5] = seconds(1); // rank 5 is late
    CollectiveResult res;
    h.lib.postCollective(
        comm, CollOp::AllReduce, mib(64),
        [&](const CollectiveResult &r) { res = r; }, delays);
    h.sim.run();
    EXPECT_EQ(res.startTime, seconds(1));
    EXPECT_GE(res.totalDuration(), seconds(1));
    EXPECT_LT(res.commDuration(), seconds(1));
}

TEST(Accl, SendRecvCrossNodeAtPortRate)
{
    Harness h(2);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0, 1}));
    Duration dur = 0;
    h.lib.sendRecv(comm, 0, 8, mib(100),
                   [&](const CollectiveResult &r) {
                       dur = r.commDuration();
                   });
    h.sim.run();
    // 100 MiB at 200 Gbps ~= 4.19 ms.
    EXPECT_NEAR(toMilliseconds(dur), 4.19, 0.3);
}

TEST(Accl, SendRecvSameNodeUsesNvlink)
{
    Harness h(1);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0}));
    Duration dur = 0;
    h.lib.sendRecv(comm, 0, 1, mib(100),
                   [&](const CollectiveResult &r) {
                       dur = r.commDuration();
                   });
    h.sim.run();
    // 100 MiB at 362 Gbps ~= 2.3 ms.
    EXPECT_NEAR(toMilliseconds(dur), 2.32, 0.2);
}

TEST(Accl, CrashBeforePostMeansOpNeverStarts)
{
    Harness h(2);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0, 1}));
    h.lib.crashRank(comm, 3);
    EXPECT_TRUE(h.lib.rankCrashed(comm, 3));

    bool fired = false;
    h.lib.postCollective(comm, CollOp::AllReduce, mib(64),
                         [&](const CollectiveResult &) { fired = true; });
    h.sim.run(minutes(10));
    EXPECT_FALSE(fired);

    const OpProgress *op = h.lib.monitor().currentOp(comm);
    ASSERT_NE(op, nullptr);
    EXPECT_TRUE(op->posted());
    EXPECT_FALSE(op->started());
}

TEST(Accl, CrashMidOperationStallsProgress)
{
    Harness h(2);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0, 1}));
    bool fired = false;
    h.lib.postCollective(comm, CollOp::AllReduce, gib(4),
                         [&](const CollectiveResult &) { fired = true; });
    // Let a few rounds complete, then kill rank 0's node mid-flight.
    h.sim.run(milliseconds(50));
    h.lib.crashRank(comm, 0);
    h.sim.run(minutes(10));
    EXPECT_FALSE(fired);

    const OpProgress *op = h.lib.monitor().currentOp(comm);
    ASSERT_NE(op, nullptr);
    EXPECT_TRUE(op->started());
    EXPECT_FALSE(op->finished());
}

TEST(Accl, DestroyCommunicatorAbortsInFlight)
{
    Harness h(2);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0, 1}));
    bool fired = false;
    h.lib.postCollective(comm, CollOp::AllReduce, gib(8),
                         [&](const CollectiveResult &) { fired = true; });
    h.sim.run(milliseconds(10));
    h.lib.destroyCommunicator(comm);
    EXPECT_FALSE(h.lib.hasCommunicator(comm));
    h.sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(h.fabric.activeFlowCount(), 0u);
}

TEST(Accl, ResultBookkeepingConsistent)
{
    Harness h(2);
    CommId comm = h.lib.createCommunicator(1, h.fullNodes({0, 1}));
    CollectiveResult res;
    h.lib.postCollective(comm, CollOp::AllReduce, mib(128),
                         [&](const CollectiveResult &r) { res = r; });
    h.sim.run();
    EXPECT_EQ(res.comm, comm);
    EXPECT_EQ(res.nranks, 16);
    EXPECT_EQ(res.bytes, mib(128));
    EXPECT_GE(res.startTime, res.postTime);
    EXPECT_GT(res.endTime, res.startTime);
    EXPECT_NEAR(toGbps(res.busBw()),
                toGbps(res.algBw()) * busFactor(CollOp::AllReduce, 16),
                0.01);
}

TEST(Accl, PolicyRebalanceWeightsRespected)
{
    // A policy that puts all weight on QP 0 of a 2-QP connection: QP 1
    // must carry (almost) nothing.
    class LopsidedPolicy : public PathPolicy
    {
      public:
        PathDecision
        decide(const ConnContext &ctx) override
        {
            PathDecision d;
            d.txPlane = net::planeFromIndex(ctx.qpIndex % 2);
            d.rxPlane = net::planeIndex(d.txPlane);
            d.spine = ctx.qpIndex;
            return d;
        }
        bool
        rebalance(const std::vector<ConnContext> &,
                  std::vector<PathDecision> &,
                  std::vector<double> &weights) override
        {
            if (weights.size() == 2) {
                weights[0] = 1.0;
                weights[1] = 0.0;
                return true;
            }
            return false;
        }
    };

    AcclConfig ac;
    ac.qpsPerConnection = 2;
    Harness h(testutil::flatConfig(2), testutil::quietFabricConfig(),
              ac);
    Accl &lib = h.lib;

    LopsidedPolicy policy;
    lib.setPathPolicy(&policy);

    CommId comm = lib.createCommunicator(1, h.fullNodes({0, 1}));

    bool fired = false;
    lib.postCollective(comm, CollOp::AllReduce, mib(64),
                       [&](const CollectiveResult &) { fired = true; });
    h.sim.run();
    EXPECT_TRUE(fired);

    // QP 1 carries traffic only in each connection's first round (the
    // rebalance fires between rounds): 2 boundaries x 2 channels = 4
    // messages; QP 0 carries all 8 simulated rounds.
    int qp0_msgs = 0, qp1_msgs = 0;
    for (const auto &rec : lib.monitor().drainConn()) {
        if (rec.qpIndex == 0)
            ++qp0_msgs;
        else
            ++qp1_msgs;
    }
    EXPECT_EQ(qp1_msgs, 4);
    EXPECT_EQ(qp0_msgs, 2 * 2 * 8);
}

} // namespace
} // namespace c4::accl
