#!/usr/bin/env python3
"""Perf trend gate over committed c4perf/1 baselines.

Compares the two most recent ``BENCH_<n>.json`` files in the repo root
(or the paths given on the command line) and fails when any pooled-
kernel workload's ``pooled_vs_legacy_median`` speedup regressed by more
than 25% against the previous baseline.

The ratio is machine-independent where the raw ns numbers are not:
pooled and legacy run the same workload on the same machine in the same
process, so a collapsing ratio means the pooled kernel itself got
slower, not that CI moved to different hardware.

Usage:
    tests/perf_trend.py                 # auto-pick latest two in repo
    tests/perf_trend.py OLD.json NEW.json
"""

import json
import re
import sys
from pathlib import Path

REGRESSION_FACTOR = 1.25  # fail when new ratio < old ratio / this


def find_baselines(root):
    """Return the two highest-numbered BENCH_<n>.json paths, old first."""
    found = []
    for path in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if m:
            found.append((int(m.group(1)), path))
    found.sort()
    if len(found) < 2:
        print(
            "perf_trend: only %d committed baseline(s); nothing to "
            "compare (need two)" % len(found)
        )
        sys.exit(0)
    return found[-2][1], found[-1][1]


def load_ratios(path):
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != "c4perf/1":
        sys.exit("perf_trend: %s: unexpected schema %r" % (path, doc.get("schema")))
    return {r["name"]: r["pooled_vs_legacy_median"] for r in doc["ratios"]}


def main(argv):
    if len(argv) == 3:
        old_path, new_path = Path(argv[1]), Path(argv[2])
    elif len(argv) == 1:
        old_path, new_path = find_baselines(Path(__file__).resolve().parent.parent)
    else:
        sys.exit("usage: perf_trend.py [OLD.json NEW.json]")

    old, new = load_ratios(old_path), load_ratios(new_path)
    missing = sorted(set(old) - set(new))
    if missing:
        sys.exit(
            "perf_trend: %s dropped workload(s) present in %s: %s"
            % (new_path.name, old_path.name, ", ".join(missing))
        )

    failed = False
    print("perf trend: %s -> %s" % (old_path.name, new_path.name))
    for name in sorted(new):
        if name not in old:
            print("  %-24s NEW   ratio %.3f" % (name, new[name]))
            continue
        floor = old[name] / REGRESSION_FACTOR
        verdict = "ok" if new[name] >= floor else "REGRESSED"
        failed |= new[name] < floor
        print(
            "  %-24s %-5s ratio %.3f -> %.3f (floor %.3f)"
            % (name, verdict, old[name], new[name], floor)
        )
    if failed:
        sys.exit(
            "perf_trend: pooled-kernel speedup regressed by more than "
            "%d%%" % round((REGRESSION_FACTOR - 1) * 100)
        )
    print("perf trend: ok")


if __name__ == "__main__":
    main(sys.argv)
