#!/usr/bin/env python3
"""Perf trend gate over committed c4perf baselines (v1 or v2).

Compares the two most recent ``BENCH_<n>.json`` files in the repo root
(or the paths given on the command line) and fails when any pooled-
kernel workload's ``pooled_vs_legacy_median`` speedup regressed by more
than 25% against the previous baseline, or — when both baselines carry
the c4perf/2 memory columns — when a workload's ``alloc_count`` grew by
more than 25%.

The ratio is machine-independent where the raw ns numbers are not:
pooled and legacy run the same workload on the same machine in the same
process, so a collapsing ratio means the pooled kernel itself got
slower, not that CI moved to different hardware. Allocation counts are
similarly deterministic per workload, unlike raw ns or RSS.

Usage:
    tests/perf_trend.py                 # auto-pick latest two in repo
    tests/perf_trend.py OLD.json NEW.json
"""

import json
import re
import sys
from pathlib import Path

REGRESSION_FACTOR = 1.25  # fail when new ratio < old ratio / this


def find_baselines(root):
    """Return the two highest-numbered BENCH_<n>.json paths, old first."""
    found = []
    for path in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if m:
            found.append((int(m.group(1)), path))
    found.sort()
    if len(found) < 2:
        print(
            "perf_trend: only %d committed baseline(s); nothing to "
            "compare (need two)" % len(found)
        )
        sys.exit(0)
    return found[-2][1], found[-1][1]


def load_report(path):
    """Return (ratios, allocs); allocs is None for a c4perf/1 file."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") not in ("c4perf/1", "c4perf/2"):
        sys.exit("perf_trend: %s: unexpected schema %r" % (path, doc.get("schema")))
    ratios = {r["name"]: r["pooled_vs_legacy_median"] for r in doc["ratios"]}
    allocs = None
    if doc["schema"] == "c4perf/2":
        allocs = {w["name"]: w["alloc_count"] for w in doc["workloads"]}
    return ratios, allocs


def main(argv):
    if len(argv) == 3:
        old_path, new_path = Path(argv[1]), Path(argv[2])
    elif len(argv) == 1:
        old_path, new_path = find_baselines(Path(__file__).resolve().parent.parent)
    else:
        sys.exit("usage: perf_trend.py [OLD.json NEW.json]")

    (old, old_allocs), (new, new_allocs) = (
        load_report(old_path),
        load_report(new_path),
    )
    missing = sorted(set(old) - set(new))
    if missing:
        sys.exit(
            "perf_trend: %s dropped workload(s) present in %s: %s"
            % (new_path.name, old_path.name, ", ".join(missing))
        )

    failed = False
    print("perf trend: %s -> %s" % (old_path.name, new_path.name))
    for name in sorted(new):
        if name not in old:
            print("  %-24s NEW   ratio %.3f" % (name, new[name]))
            continue
        floor = old[name] / REGRESSION_FACTOR
        verdict = "ok" if new[name] >= floor else "REGRESSED"
        failed |= new[name] < floor
        print(
            "  %-24s %-5s ratio %.3f -> %.3f (floor %.3f)"
            % (name, verdict, old[name], new[name], floor)
        )
    # Memory trend: only when both baselines carry the c4perf/2
    # columns — a v1 -> v2 transition has nothing to compare against.
    if old_allocs is not None and new_allocs is not None:
        for name in sorted(set(old_allocs) & set(new_allocs)):
            if old_allocs[name] == 0:
                continue
            ceiling = old_allocs[name] * REGRESSION_FACTOR
            verdict = "ok" if new_allocs[name] <= ceiling else "REGRESSED"
            failed |= new_allocs[name] > ceiling
            print(
                "  %-24s %-5s allocs %d -> %d (ceiling %d)"
                % (name, verdict, old_allocs[name], new_allocs[name], ceiling)
            )

    if failed:
        sys.exit(
            "perf_trend: pooled-kernel speedup or allocation count "
            "regressed by more than %d%%"
            % round((REGRESSION_FACTOR - 1) * 100)
        )
    print("perf trend: ok")


if __name__ == "__main__":
    main(sys.argv)
