/**
 * @file
 * Unit tests for the fault taxonomy and injector.
 */

#include <gtest/gtest.h>

#include <map>

#include "fault/injector.h"

namespace c4::fault {
namespace {

TEST(FaultTypes, FatalityClassification)
{
    EXPECT_TRUE(faultIsFatal(FaultType::CudaError));
    EXPECT_TRUE(faultIsFatal(FaultType::EccError));
    EXPECT_TRUE(faultIsFatal(FaultType::NvlinkError));
    EXPECT_TRUE(faultIsFatal(FaultType::NcclTimeout));
    EXPECT_TRUE(faultIsFatal(FaultType::AckTimeout));
    EXPECT_FALSE(faultIsFatal(FaultType::SlowNode));
    EXPECT_FALSE(faultIsFatal(FaultType::SlowNicTx));
    EXPECT_FALSE(faultIsFatal(FaultType::LinkDown));
    EXPECT_FALSE(faultIsFatal(FaultType::NetworkOther));
}

TEST(FaultTypes, UserVisibleErrorMatchesTableI)
{
    // The paper's Table I: nearly everything looks like "NCCL Error".
    EXPECT_STREQ(userVisibleError(FaultType::CudaError), "NCCL Error");
    EXPECT_STREQ(userVisibleError(FaultType::EccError), "NCCL Error");
    EXPECT_STREQ(userVisibleError(FaultType::AckTimeout), "NCCL Error");
    EXPECT_STREQ(userVisibleError(FaultType::NetworkOther),
                 "Network Error");
}

TEST(FaultTypes, LocalityPriorsMatchTableI)
{
    EXPECT_DOUBLE_EQ(faultLocalityPrior(FaultType::CudaError), 1.0);
    EXPECT_DOUBLE_EQ(faultLocalityPrior(FaultType::NcclTimeout), 0.75);
    EXPECT_NEAR(faultLocalityPrior(FaultType::AckTimeout), 0.818, 1e-9);
    EXPECT_DOUBLE_EQ(faultLocalityPrior(FaultType::NetworkOther), 0.40);
}

TEST(FaultRates, PaperJuneTotalsFortyPerMonthAt4096Gpus)
{
    const FaultRates r = FaultRates::paperJune2023();
    double fatal = 0.0;
    for (FaultType t :
         {FaultType::CudaError, FaultType::EccError,
          FaultType::NvlinkError, FaultType::NcclTimeout,
          FaultType::AckTimeout, FaultType::NetworkOther}) {
        fatal += r[t];
    }
    // 4096 GPUs = 4.096 "per-1000" units.
    EXPECT_NEAR(fatal * 4.096, 40.0, 0.5);
}

TEST(FaultRates, DecemberIsHardened)
{
    const FaultRates june = FaultRates::paperJune2023();
    const FaultRates dec = FaultRates::paperDecember2023();
    EXPECT_NEAR(june[FaultType::EccError] / dec[FaultType::EccError],
                3.33, 0.01);
    EXPECT_LT(dec.total(), june.total());
}

TEST(FaultRates, ScaledMultipliesEveryCategory)
{
    const FaultRates r = FaultRates::paperJune2023().scaled(2.0);
    EXPECT_DOUBLE_EQ(r.total(),
                     FaultRates::paperJune2023().total() * 2.0);
}

TEST(Injector, InjectAtFiresAtTime)
{
    Simulator sim;
    FaultInjector inj(sim);
    std::vector<Time> fired;
    inj.setApplier(
        [&](const FaultEvent &ev) { fired.push_back(ev.when); });

    FaultEvent ev;
    ev.type = FaultType::CudaError;
    ev.node = 3;
    inj.injectAt(seconds(5), ev);
    inj.injectAt(seconds(2), ev);
    sim.run();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], seconds(2));
    EXPECT_EQ(fired[1], seconds(5));
    EXPECT_EQ(inj.history().size(), 2u);
}

TEST(Injector, ObserversSeeEveryEvent)
{
    Simulator sim;
    FaultInjector inj(sim);
    int applied = 0, observed_a = 0, observed_b = 0;
    inj.setApplier([&](const FaultEvent &) { ++applied; });
    inj.addObserver([&](const FaultEvent &) { ++observed_a; });
    inj.addObserver([&](const FaultEvent &) { ++observed_b; });
    inj.injectNow(FaultEvent{});
    EXPECT_EQ(applied, 1);
    EXPECT_EQ(observed_a, 1);
    EXPECT_EQ(observed_b, 1);
}

TEST(Injector, CampaignCountsScaleWithPopulationAndDuration)
{
    Simulator sim;
    FaultInjector inj(sim, 99);
    std::vector<NodeId> nodes;
    for (NodeId n = 0; n < 512; ++n)
        nodes.push_back(n);

    FaultRates rates;
    rates[FaultType::CudaError] = 10.0; // 10 per 1000 GPUs per month
    const auto scheduled = inj.startCampaign(rates, nodes, 8, 8, 0,
                                             days(30));
    // Expectation: 10 * 4.096 ~= 41 events; Poisson spread.
    EXPECT_GT(scheduled, 20u);
    EXPECT_LT(scheduled, 70u);

    sim.run();
    EXPECT_EQ(inj.history().size(), scheduled);
    for (const auto &ev : inj.history()) {
        EXPECT_EQ(ev.type, FaultType::CudaError);
        EXPECT_GE(ev.node, 0);
        EXPECT_LT(ev.node, 512);
        EXPECT_GE(ev.when, 0);
        EXPECT_LE(ev.when, days(30));
    }
}

TEST(Injector, CampaignSeveritiesInRange)
{
    Simulator sim;
    FaultInjector inj(sim, 7);
    std::vector<NodeId> nodes{0, 1, 2, 3};
    FaultRates rates;
    rates[FaultType::SlowNode] = 2000.0;
    rates[FaultType::SlowNicRx] = 2000.0;
    inj.startCampaign(rates, nodes, 8, 8, 0, days(30));
    sim.run();
    ASSERT_GT(inj.history().size(), 10u);
    for (const auto &ev : inj.history()) {
        if (ev.type == FaultType::SlowNode) {
            EXPECT_GE(ev.severity, 0.60);
            EXPECT_LE(ev.severity, 0.95);
        } else {
            EXPECT_GE(ev.severity, 0.25);
            EXPECT_LE(ev.severity, 0.70);
        }
    }
}

TEST(Injector, LinkDownSamplesTrunkIndex)
{
    Simulator sim;
    FaultInjector inj(sim, 21);
    std::vector<NodeId> nodes{0, 1};
    FaultRates rates;
    rates[FaultType::LinkDown] = 5000.0;
    inj.startCampaign(rates, nodes, 8, 8, /*numTrunks=*/64, days(30));
    sim.run();
    ASSERT_FALSE(inj.history().empty());
    for (const auto &ev : inj.history()) {
        EXPECT_GE(ev.link, 0);
        EXPECT_LT(ev.link, 64);
        EXPECT_FALSE(ev.isLocal); // link faults are never node-local
    }
}

TEST(Injector, LocalitySampledFromPrior)
{
    Simulator sim;
    FaultInjector inj(sim, 31);
    std::vector<NodeId> nodes{0};
    FaultRates rates;
    rates[FaultType::NcclTimeout] = 50000.0; // lots of samples
    inj.startCampaign(rates, nodes, 8, 8, 0, days(30));
    sim.run();
    int local = 0;
    for (const auto &ev : inj.history())
        local += ev.isLocal ? 1 : 0;
    const double frac =
        static_cast<double>(local) / inj.history().size();
    EXPECT_NEAR(frac, 0.75, 0.08);
}

TEST(FaultEvent, StringRendering)
{
    FaultEvent ev;
    ev.type = FaultType::SlowNicRx;
    ev.node = 4;
    ev.nic = 2;
    ev.severity = 0.5;
    const std::string s = ev.str();
    EXPECT_NE(s.find("slow-nic-rx"), std::string::npos);
    EXPECT_NE(s.find("node=4"), std::string::npos);
}

} // namespace
} // namespace c4::fault
