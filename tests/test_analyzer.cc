/**
 * @file
 * Unit tests for the C4D analyzer (delay matrix, wait chain, hang
 * classification) on synthetic telemetry, including the three Fig. 7
 * patterns: single hot cell, hot row (Tx), hot column (Rx).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "c4d/analyzer.h"

namespace c4::c4d {
namespace {

using accl::ConnRecord;
using accl::OpProgress;
using accl::RankWaitRecord;

/** Ring telemetry: rank i -> i+1, `per_byte` seconds per byte. */
std::vector<ConnRecord>
ringRecords(int n, double per_byte,
            const std::function<double(Rank, Rank)> &scale)
{
    std::vector<ConnRecord> records;
    for (int repeat = 0; repeat < 4; ++repeat) {
        for (Rank s = 0; s < n; ++s) {
            const Rank d = static_cast<Rank>((s + 1) % n);
            ConnRecord r;
            r.comm = 1;
            r.srcRank = s;
            r.dstRank = d;
            r.bytes = mib(8);
            r.startTime = seconds(repeat);
            r.endTime =
                r.startTime +
                static_cast<Duration>(per_byte * scale(s, d) *
                                      static_cast<double>(r.bytes) * 1e9);
            records.push_back(r);
        }
    }
    return records;
}

constexpr double kPerByte = 4e-11; // ~200 Gbps in seconds/byte

TEST(DelayMatrix, BuildAndQuery)
{
    const auto records =
        ringRecords(8, kPerByte, [](Rank, Rank) { return 1.0; });
    const DelayMatrix m = DelayMatrix::build(8, records);
    EXPECT_EQ(m.size(), 8);
    EXPECT_NEAR(m.at(0, 1), kPerByte, kPerByte * 0.01);
    EXPECT_LT(m.at(0, 2), 0.0); // no samples off the ring
    EXPECT_EQ(m.samples(0, 1), 4);
    EXPECT_GT(m.medianDelay(), 0.0);
    EXPECT_FALSE(m.str().empty());
}

TEST(DelayMatrix, IgnoresDegenerateRecords)
{
    DelayMatrix m(4);
    m.add(0, 1, 0, seconds(1));   // zero bytes
    m.add(0, 1, mib(1), 0);       // zero duration
    EXPECT_EQ(m.samples(0, 1), 0);
    EXPECT_LT(m.medianDelay(), 0.0);
}

TEST(AnalyzeCommSlow, CleanMatrixIsQuiet)
{
    const auto records =
        ringRecords(8, kPerByte, [](Rank, Rank) { return 1.0; });
    const auto finding =
        analyzeCommSlow(DelayMatrix::build(8, records));
    EXPECT_FALSE(finding.found());
    EXPECT_EQ(finding.kind, CommSlowKind::None);
}

TEST(AnalyzeCommSlow, SingleHotCellIsConnection)
{
    // Paper Fig. 7 left: one congested link between ranks 3 and 4.
    const auto records = ringRecords(8, kPerByte, [](Rank s, Rank d) {
        return (s == 3 && d == 4) ? 5.0 : 1.0;
    });
    const auto finding =
        analyzeCommSlow(DelayMatrix::build(8, records));
    ASSERT_TRUE(finding.found());
    EXPECT_EQ(finding.kind, CommSlowKind::Connection);
    EXPECT_EQ(finding.src, 3);
    EXPECT_EQ(finding.dst, 4);
    EXPECT_NEAR(finding.ratio, 5.0, 0.5);
}

TEST(AnalyzeCommSlow, HotRowIsSourceTx)
{
    // Fig. 7 middle: rank 3's NIC Tx is congested — everything rank 3
    // sends is slow. Give rank 3 two outgoing connections so the row
    // has >= 2 cells (ring + an extra alltoall-ish link).
    auto records = ringRecords(8, kPerByte, [](Rank s, Rank) {
        return s == 3 ? 4.0 : 1.0;
    });
    ConnRecord extra;
    extra.comm = 1;
    extra.srcRank = 3;
    extra.dstRank = 6;
    extra.bytes = mib(8);
    extra.startTime = 0;
    extra.endTime = static_cast<Duration>(
        kPerByte * 4.0 * static_cast<double>(extra.bytes) * 1e9);
    records.push_back(extra);
    records.push_back(extra);

    const auto finding =
        analyzeCommSlow(DelayMatrix::build(8, records));
    ASSERT_TRUE(finding.found());
    EXPECT_EQ(finding.kind, CommSlowKind::SourceTx);
    EXPECT_EQ(finding.src, 3);
}

TEST(AnalyzeCommSlow, HotColumnIsDestRx)
{
    // Fig. 7 right: rank 4's NIC Rx is congested.
    auto records = ringRecords(8, kPerByte, [](Rank, Rank d) {
        return d == 4 ? 4.0 : 1.0;
    });
    ConnRecord extra;
    extra.comm = 1;
    extra.srcRank = 1;
    extra.dstRank = 4;
    extra.bytes = mib(8);
    extra.startTime = 0;
    extra.endTime = static_cast<Duration>(
        kPerByte * 4.0 * static_cast<double>(extra.bytes) * 1e9);
    records.push_back(extra);
    records.push_back(extra);

    const auto finding =
        analyzeCommSlow(DelayMatrix::build(8, records));
    ASSERT_TRUE(finding.found());
    EXPECT_EQ(finding.kind, CommSlowKind::DestRx);
    EXPECT_EQ(finding.dst, 4);
}

TEST(AnalyzeCommSlow, RespectsMinSamples)
{
    AnalyzerConfig cfg;
    cfg.minSamplesPerCell = 10; // our cells only have 4-6 samples
    const auto records = ringRecords(8, kPerByte, [](Rank s, Rank d) {
        return (s == 3 && d == 4) ? 5.0 : 1.0;
    });
    const auto finding =
        analyzeCommSlow(DelayMatrix::build(8, records), cfg);
    EXPECT_FALSE(finding.found());
}

std::vector<RankWaitRecord>
waits(int n, const std::function<Duration(Rank)> &wait_of, int ops = 3)
{
    std::vector<RankWaitRecord> out;
    for (int op = 0; op < ops; ++op) {
        for (Rank r = 0; r < n; ++r) {
            RankWaitRecord w;
            w.comm = 1;
            w.seq = static_cast<accl::CollSeq>(op);
            w.rank = r;
            w.recvWait = wait_of(r);
            out.push_back(w);
        }
    }
    return out;
}

TEST(AnalyzeNonCommSlow, FindsTheStraggler)
{
    // Everybody waits ~800 ms for rank 5; rank 5 waits ~nothing.
    const auto records = waits(8, [](Rank r) {
        return r == 5 ? milliseconds(2) : milliseconds(800);
    });
    const auto finding = analyzeNonCommSlow(8, records);
    ASSERT_TRUE(finding.found);
    EXPECT_EQ(finding.rank, 5);
    EXPECT_GT(finding.medianWait, milliseconds(500));
    EXPECT_LT(finding.stragglerWait, milliseconds(10));
}

TEST(AnalyzeNonCommSlow, QuietWhenWaitsAreSmall)
{
    const auto records = waits(8, [](Rank r) {
        return r == 5 ? microseconds(10) : milliseconds(5);
    });
    // Median 5 ms < minWaitForSlow 100 ms: normal jitter.
    EXPECT_FALSE(analyzeNonCommSlow(8, records).found);
}

TEST(AnalyzeNonCommSlow, QuietWhenNoRankStandsOut)
{
    const auto records =
        waits(8, [](Rank) { return milliseconds(500); });
    EXPECT_FALSE(analyzeNonCommSlow(8, records).found);
}

TEST(AnalyzeNonCommSlow, NeedsFullCoverage)
{
    auto records = waits(8, [](Rank r) {
        return r == 5 ? milliseconds(1) : milliseconds(800);
    });
    // Remove every record of rank 7: cannot judge.
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [](const RankWaitRecord &w) {
                                     return w.rank == 7;
                                 }),
                  records.end());
    EXPECT_FALSE(analyzeNonCommSlow(8, records).found);
}

OpProgress
makeOp(Time posted, Time started, Time finished)
{
    OpProgress op;
    op.comm = 1;
    op.seq = 9;
    op.postTime = posted;
    op.startTime = started;
    op.endTime = finished;
    return op;
}

TEST(AnalyzeHang, FinishedOpIsHealthy)
{
    const auto op = makeOp(seconds(1), seconds(2), seconds(3));
    const auto f =
        analyzeHang(op, {seconds(3), seconds(3)}, minutes(10),
                    seconds(30));
    EXPECT_FALSE(f.found());
}

TEST(AnalyzeHang, PostedNeverStartedIsNonCommHang)
{
    const auto op = makeOp(seconds(1), kTimeNever, kTimeNever);
    // Rank 2 never heartbeat; others did at post time.
    std::vector<Time> hb = {seconds(1), seconds(1), kTimeNever,
                            seconds(1)};
    const auto f = analyzeHang(op, hb, minutes(5), seconds(30));
    ASSERT_TRUE(f.found());
    EXPECT_EQ(f.kind, HangKind::NonCommHang);
    ASSERT_EQ(f.suspects.size(), 1u);
    EXPECT_EQ(f.suspects[0], 2);
}

TEST(AnalyzeHang, StartedThenSilentIsCommHang)
{
    const auto op = makeOp(seconds(1), seconds(2), kTimeNever);
    // Rank 1 stalled first (oldest heartbeat).
    std::vector<Time> hb = {seconds(10), seconds(8), seconds(10),
                            seconds(10)};
    const auto f = analyzeHang(op, hb, minutes(5), seconds(30));
    ASSERT_TRUE(f.found());
    EXPECT_EQ(f.kind, HangKind::CommHang);
    ASSERT_EQ(f.suspects.size(), 1u);
    EXPECT_EQ(f.suspects[0], 1);
}

TEST(AnalyzeHang, RespectsThreshold)
{
    const auto op = makeOp(seconds(1), seconds(2), kTimeNever);
    std::vector<Time> hb = {seconds(10), seconds(10)};
    EXPECT_FALSE(
        analyzeHang(op, hb, seconds(15), seconds(30)).found());
    EXPECT_TRUE(
        analyzeHang(op, hb, seconds(50), seconds(30)).found());
}

TEST(AnalyzeHang, UnpostedOpIsQuiet)
{
    OpProgress op;
    EXPECT_FALSE(
        analyzeHang(op, {seconds(1)}, minutes(10), seconds(30))
            .found());
}

TEST(Names, AllEnumNamesRender)
{
    EXPECT_STREQ(commSlowKindName(CommSlowKind::SourceTx),
                 "source-tx-slow");
    EXPECT_STREQ(hangKindName(HangKind::CommHang), "comm-hang");
    CommSlowFinding f;
    f.kind = CommSlowKind::Connection;
    f.src = 3;
    f.dst = 4;
    EXPECT_NE(f.str().find("connection-slow"), std::string::npos);
    NonCommSlowFinding n;
    n.rank = 5;
    EXPECT_NE(n.str().find("rank=5"), std::string::npos);
}

} // namespace
} // namespace c4::c4d
