/**
 * @file
 * Tests for the spec-file subsystem: JSON parsing errors carry
 * line/column and survive fuzz-ish inputs, the binder catches typos
 * and type mistakes, dump -> parse -> re-dump is byte-identical for
 * every registered scenario (this binary links the full c4bench
 * registration set), and a file-loaded spec produces CSV output
 * byte-identical to its built-in twin.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "scenario/runner.h"
#include "scenario/sink.h"
#include "specio/specio.h"

namespace c4::specio {
namespace {

using scenario::Registry;
using scenario::RunOptions;
using scenario::Scenario;
using scenario::ScenarioRunner;

/** Smallest document the binder accepts. */
std::string
minimalSpec(const std::string &variantBody = "\"variant\": \"v\"")
{
    return "{\"scenario\": \"t\", \"variants\": [{" + variantBody +
           "}]}";
}

// --- JSON layer -------------------------------------------------------

TEST(Json, ReportsLineAndColumn)
{
    try {
        parseJson("{\n  \"a\": 1,\n  \"b\": }\n");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_EQ(e.line(), 3);
        EXPECT_EQ(e.column(), 8);
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(Json, RejectsDuplicateKeys)
{
    try {
        parseJson("{\"tasks\": 1,\n \"tasks\": 2}");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate key"),
                  std::string::npos);
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(Json, RejectsOutOfRangeNumbers)
{
    EXPECT_THROW(parseJson("{\"x\": 1e999}"), SpecError);
    EXPECT_THROW(parseJson("{\"x\": -1e999}"), SpecError);
    EXPECT_THROW(formatJsonDouble(
                     std::numeric_limits<double>::infinity()),
                 SpecError);
}

TEST(Json, StrictAboutLeadingZerosAndControlCharacters)
{
    EXPECT_THROW(parseJson("{\"x\": 01}"), SpecError);
    EXPECT_THROW(parseJson("{\"x\": -01.5}"), SpecError);
    EXPECT_EQ(parseJson("{\"x\": 0.5}").find("x")->value.number, 0.5);
    EXPECT_EQ(parseJson("{\"x\": 0}").find("x")->value.integer, 0);
    EXPECT_THROW(parseJson("{\"x\": \"a\tb\"}"), SpecError);
    EXPECT_EQ(parseJson("{\"x\": \"a\\tb\"}").find("x")->value.string,
              "a\tb");
}

TEST(Json, RejectsTrailingContent)
{
    EXPECT_THROW(parseJson("{} {}"), SpecError);
    EXPECT_THROW(parseJson("null null"), SpecError);
}

TEST(Json, ParsesEscapesAndNumbers)
{
    const Json doc = parseJson(
        "{\"s\": \"a\\n\\u0041\", \"i\": -42, \"d\": 2.5e2}");
    EXPECT_EQ(doc.find("s")->value.string, "a\nA");
    EXPECT_EQ(doc.find("i")->value.integer, -42);
    EXPECT_DOUBLE_EQ(doc.find("d")->value.number, 250.0);
}

TEST(Json, WriterIsStableUnderReparse)
{
    const std::string text = writeJson(parseJson(
        "{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": true}, "
        "\"d\": null}"));
    EXPECT_EQ(writeJson(parseJson(text)), text);
}

// --- binder errors ----------------------------------------------------

TEST(SpecParse, UnknownKeySuggestsNearest)
{
    try {
        parseSpecFile(minimalSpec(
            "\"variant\": \"v\", \"topology\": "
            "{\"oversubscripton\": 2.0}"));
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("unknown key \"oversubscripton\""),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("did you mean \"oversubscription\"?"),
                  std::string::npos)
            << what;
        EXPECT_GT(e.line(), 0);
    }
}

TEST(SpecParse, UnknownKeyWithoutNeighborGetsNoSuggestion)
{
    try {
        parseSpecFile(
            minimalSpec("\"variant\": \"v\", \"zzz_qqq\": 1"));
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("unknown key \"zzz_qqq\""),
                  std::string::npos);
        EXPECT_EQ(what.find("did you mean"), std::string::npos)
            << what;
    }
}

TEST(SpecParse, WrongTypeNamesBothKinds)
{
    try {
        parseSpecFile(minimalSpec(
            "\"variant\": \"v\", \"allreduces\": "
            "[{\"tasks\": \"three\"}]"));
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("\"tasks\" must be a integer"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("not string"), std::string::npos) << what;
    }
}

TEST(SpecParse, BadEnumListsAllowedValues)
{
    try {
        parseSpecFile(minimalSpec(
            "\"variant\": \"v\", \"topology\": "
            "{\"kind\": \"mesh\"}"));
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("\"mesh\""), std::string::npos);
        EXPECT_NE(what.find("\"testbed\""), std::string::npos) << what;
        EXPECT_NE(what.find("\"pod\""), std::string::npos) << what;
    }
}

TEST(SpecParse, RequiresScenarioNameAndVariants)
{
    EXPECT_THROW(parseSpecFile("{\"variants\": [{}]}"), SpecError);
    EXPECT_THROW(parseSpecFile("{\"scenario\": \"x\"}"), SpecError);
    EXPECT_THROW(
        parseSpecFile("{\"scenario\": \"x\", \"variants\": []}"),
        SpecError);
    EXPECT_THROW(
        parseSpecFile("{\"scenario\": \"no spaces\", "
                      "\"variants\": [{}]}"),
        SpecError);
}

TEST(SpecParse, DuplicateVariantLabelsRejected)
{
    try {
        parseSpecFile("{\"scenario\": \"t\", \"variants\": "
                      "[{\"variant\": \"v\"},\n"
                      "{\"variant\": \"v\"}]}");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("duplicate variant label \"v\""),
                  std::string::npos);
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(SpecParse, SeedAcceptsHexStringAndInteger)
{
    const std::string base = "{\"scenario\": \"t\", \"seed\": ";
    const std::string tail = ", \"variants\": [{}]}";
    EXPECT_EQ(parseSpecFile(base + "\"0xAB\"" + tail).seed, 0xABu);
    EXPECT_EQ(parseSpecFile(base + "77" + tail).seed, 77u);
    // Decimal, never octal — and no whitespace/sign sneaking past.
    EXPECT_EQ(parseSpecFile(base + "\"077\"" + tail).seed, 77u);
    EXPECT_THROW(parseSpecFile(base + "\" 5\"" + tail), SpecError);
    EXPECT_THROW(parseSpecFile(base + "\"-5\"" + tail), SpecError);
    EXPECT_THROW(parseSpecFile(base + "\"wat\"" + tail), SpecError);
    EXPECT_THROW(parseSpecFile(base + "-1" + tail), SpecError);
}

TEST(SpecParse, InvalidWorkloadFailsValidation)
{
    // Binder-clean but semantically invalid: campaign without a span.
    try {
        parseSpecFile(minimalSpec(
            "\"variant\": \"v\", \"campaign\": "
            "{\"enabled\": true}"));
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("span"),
                  std::string::npos);
    }
}

TEST(SpecParse, ExactSecondsSurviveTheDecimalEncoding)
{
    const SpecFile file = parseSpecFile(minimalSpec(
        "\"variant\": \"v\", \"horizon_s\": 0.123456789, "
        "\"metrics\": {\"split_at_s\": 1e-3}"));
    EXPECT_EQ(file.variants[0].horizon, 123456789);
    EXPECT_EQ(file.variants[0].metrics.splitAt, milliseconds(1));
}

TEST(SpecParse, TruncatedDocumentsAlwaysErrorCleanly)
{
    // A document exercising every section of the schema.
    const std::string text = writeSpecFile(parseSpecFile(
        "{\"scenario\": \"fuzz\", \"title\": \"t\", "
        "\"full_trials\": 3, \"seed\": \"0xF00\", \"variants\": [{"
        "\"variant\": \"v\", "
        "\"topology\": {\"kind\": \"pod\", \"num_nodes\": 32}, "
        "\"features\": {\"c4p\": true, \"c4d\": true, "
        "\"evaluate_period_s\": 2.5}, "
        "\"jobs\": [{\"id\": 3, \"model\": \"gpt22b\", "
        "\"parallel\": {\"tp\": 8, \"dp\": 4}, \"nodes\": [0, 1, 2, "
        "3]}], "
        "\"allreduces\": [{\"tasks\": 2, \"bytes\": 1048576}], "
        "\"link_events\": [{\"at_s\": 1, \"plane\": \"right\"}], "
        "\"faults\": [{\"at_s\": 2, \"type\": \"slow_node\", "
        "\"node\": 5, \"severity\": 4.0}], "
        "\"campaign\": {\"enabled\": true, \"span_s\": 60}, "
        "\"metrics\": {\"steering_counters\": true}, "
        "\"horizon_s\": 120}]}"));
    // Every proper prefix (up to the final '}') must throw SpecError —
    // never crash, never silently succeed.
    for (std::size_t len = 0; len + 1 < text.size(); ++len) {
        EXPECT_THROW(parseSpecFile(text.substr(0, len)), SpecError)
            << "prefix length " << len;
    }
}

// --- shard trial-range keys (trial_begin / trial_count) ---------------

TEST(SpecParse, TrialRangeKeysBindAndRoundTripByteStably)
{
    const std::string text = writeSpecFile(parseSpecFile(
        "{\"scenario\": \"t\", \"full_trials\": 8, "
        "\"smoke_trials\": 8, \"trial_begin\": 2, "
        "\"trial_count\": 3, \"variants\": [{\"variant\": \"v\"}]}"));
    const SpecFile file = parseSpecFile(text);
    EXPECT_EQ(file.trialBegin, 2);
    EXPECT_EQ(file.trialCount, 3);
    // Canonical dump carries the keys and is stable under re-parse.
    EXPECT_NE(text.find("\"trial_begin\": 2"), std::string::npos);
    EXPECT_NE(text.find("\"trial_count\": 3"), std::string::npos);
    EXPECT_EQ(text, writeSpecFile(parseSpecFile(text)));
    // The bound scenario carries the range into the runner.
    const Scenario s = scenarioFromSpec(file);
    EXPECT_EQ(s.trialBegin, 2);
    EXPECT_EQ(s.trialCount, 3);
}

TEST(SpecParse, UnshardedSpecsOmitTrialRangeKeys)
{
    const SpecFile file = parseSpecFile(minimalSpec());
    EXPECT_EQ(file.trialBegin, 0);
    EXPECT_EQ(file.trialCount, 0);
    const std::string text = writeSpecFile(file);
    EXPECT_EQ(text.find("trial_begin"), std::string::npos);
    EXPECT_EQ(text.find("trial_count"), std::string::npos);
}

TEST(SpecParse, NegativeTrialRangeRejected)
{
    const std::string head = "{\"scenario\": \"t\", "
                             "\"full_trials\": 8, ";
    const std::string tail = "\"variants\": [{}]}";
    try {
        parseSpecFile(head + "\"trial_begin\": -1, " + tail);
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("trial_begin must be >= 0"),
                  std::string::npos);
    }
    try {
        parseSpecFile(head + "\"trial_count\": -2, " + tail);
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("trial_count must not be negative"),
                  std::string::npos);
    }
}

TEST(SpecParse, TrialRangeBeginPastSweepEndRejected)
{
    // trial_begin at (or past) the sweep width: out of range even
    // with no count.
    try {
        parseSpecFile("{\"scenario\": \"t\", \"full_trials\": 4, "
                      "\"trial_begin\": 4, \"variants\": [{}]}");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("out of range"),
                  std::string::npos);
    }
}

TEST(SpecParse, TrialRangeOverlappingSweepEndRejected)
{
    // A count reaching past the last trial would overlap trials the
    // sweep does not have.
    try {
        parseSpecFile("{\"scenario\": \"t\", \"full_trials\": 4, "
                      "\"trial_begin\": 2, \"trial_count\": 3, "
                      "\"variants\": [{}]}");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("overflows"),
                  std::string::npos);
    }
    // The range is validated against the wider of the two trial
    // counts, so a shard planned for the full sweep still loads when
    // smoke_trials is smaller (the runner re-checks at run time).
    EXPECT_NO_THROW(parseSpecFile(
        "{\"scenario\": \"t\", \"full_trials\": 8, "
        "\"smoke_trials\": 2, \"trial_begin\": 4, "
        "\"trial_count\": 4, \"variants\": [{}]}"));
}

TEST(SpecParse, CustomVariantLoadsButRefusesToRun)
{
    const SpecFile file = parseSpecFile(
        minimalSpec("\"variant\": \"v\", \"custom\": true"));
    ASSERT_TRUE(static_cast<bool>(file.variants[0].custom));
    RunOptions opt;
    scenario::TrialContext ctx(opt, 1, 0);
    EXPECT_THROW(file.variants[0].custom(ctx), std::runtime_error);
}

// --- round-trip over the full registration set ------------------------
// These need the c4bench registrations linked in (the
// c4bench_scenarios object library, C4_HAVE_BENCH_SCENARIOS).

#ifdef C4_HAVE_BENCH_SCENARIOS

TEST(SpecRoundTrip, EveryRegisteredScenarioIsByteStable)
{
    const auto all = Registry::instance().all();
    ASSERT_GE(all.size(), 14u);
    for (bool smoke : {true, false}) {
        RunOptions opt;
        opt.smoke = smoke;
        for (const Scenario *s : all) {
            opt.trials = smoke ? s->smokeTrials : s->fullTrials;
            opt.seed = s->seed;
            opt.seedSet = true;
            const std::string once =
                writeSpecFile(specFromScenario(*s, opt));
            SpecFile reloaded;
            ASSERT_NO_THROW(reloaded = parseSpecFile(once))
                << s->name;
            const std::string twice = writeSpecFile(
                specFromScenario(scenarioFromSpec(reloaded), opt));
            EXPECT_EQ(once, twice)
                << s->name << (smoke ? " (smoke)" : " (full)");
        }
    }
}

// --- file-loaded twin produces identical CSV --------------------------

TEST(SpecRoundTrip, LoadedSpecCsvMatchesBuiltinByteForByte)
{
    const Scenario *builtin =
        Registry::instance().find("fig9_dualport");
    ASSERT_NE(builtin, nullptr);

    RunOptions opt;
    opt.smoke = true;
    opt.trials = 1;
    opt.threads = 1;

    const Scenario loaded = scenarioFromSpec(parseSpecFile(
        writeSpecFile(specFromScenario(*builtin, opt))));

    auto runCsv = [&](const Scenario &s) {
        std::ostringstream out;
        scenario::CsvSink sink(out);
        ScenarioRunner runner(opt);
        runner.addSink(sink);
        EXPECT_EQ(runner.run(s), 0);
        return out.str();
    };
    const std::string builtinCsv = runCsv(*builtin);
    const std::string loadedCsv = runCsv(loaded);
    EXPECT_FALSE(builtinCsv.empty());
    EXPECT_EQ(builtinCsv, loadedCsv);
}

#endif // C4_HAVE_BENCH_SCENARIOS

} // namespace
} // namespace c4::specio
