/**
 * @file
 * Distributed-sweep subsystem: shard trial ranges through the runner
 * (absolute trial indices, byte-identical rows), manifest journaling
 * round-trips, the planner's balanced partitions, the process
 * executor's retry/resume state machine (driven through a fake bench
 * script), the merger's determinism and refusal paths, the c4bundle/1
 * failure-bundle manifest (round-trip, strictness, prefix fuzz), and
 * multi-host journal reconciliation (`c4sweep collect`). The
 * end-to-end gates over the real c4bench binary live in
 * cmake/sweep_check.cmake (ctest -L sweep) and
 * cmake/collect_check.cmake (ctest -L collect).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "specio/specio.h"
#include "sweep/collect.h"
#include "sweep/exec.h"
#include "sweep/forensics.h"
#include "sweep/manifest.h"
#include "sweep/merge.h"
#include "sweep/plan.h"

namespace c4::sweep {
namespace {

namespace fs = std::filesystem;

using scenario::RunOptions;
using scenario::Scenario;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;

/** Fresh per-test scratch directory under the system temp dir. */
fs::path
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::temp_directory_path() / ("c4_sweep_test_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

void
writeFile(const fs::path &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** A cheap two-variant allreduce scenario (same shape as the one in
 * test_scenario.cc). */
Scenario
tinyScenario(const char *name)
{
    auto variant = [](const char *label, bool c4p) {
        ScenarioSpec spec;
        spec.variant = label;
        spec.features.c4p = c4p;
        scenario::AllreduceGroupSpec g;
        g.tasks = 2;
        g.bytes = mib(16);
        g.iterations = 2;
        spec.allreduces.push_back(g);
        return spec;
    };
    Scenario sc;
    sc.name = name;
    sc.title = "tiny";
    sc.fullTrials = 8;
    sc.smokeTrials = 4;
    sc.variants = [variant](const RunOptions &) {
        return std::vector<ScenarioSpec>{variant("ecmp", false),
                                         variant("c4p", true)};
    };
    return sc;
}

std::string
runCsv(const Scenario &s, const RunOptions &opt)
{
    std::ostringstream out;
    scenario::CsvSink sink(out);
    ScenarioRunner runner(opt);
    runner.addSink(sink);
    EXPECT_EQ(runner.run(s), 0);
    return out.str();
}

// --- trial ranges through the runner ----------------------------------

TEST(TrialRange, Validation)
{
    using scenario::validateTrialRange;
    EXPECT_EQ(validateTrialRange(0, 0, 4), "");
    EXPECT_EQ(validateTrialRange(3, 1, 4), "");
    EXPECT_EQ(validateTrialRange(1, 0, 4), ""); // to the end
    EXPECT_NE(validateTrialRange(-1, 0, 4).find("trial_begin"),
              std::string::npos);
    EXPECT_NE(validateTrialRange(0, -1, 4).find("trial_count"),
              std::string::npos);
    EXPECT_NE(validateTrialRange(4, 0, 4).find("out of range"),
              std::string::npos);
    EXPECT_NE(validateTrialRange(2, 3, 4).find("overflows"),
              std::string::npos);
}

TEST(TrialRange, ShardRowsAreByteIdenticalToTheFullRunsRows)
{
    const Scenario full = tinyScenario("shard_t");
    RunOptions opt;
    opt.trials = 4;
    opt.threads = 1;
    const std::string fullCsv = runCsv(full, opt);

    Scenario shard = full;
    shard.trialBegin = 1;
    shard.trialCount = 2;
    const std::string shardCsv = runCsv(shard, opt);

    // The shard emits exactly the full run's rows for trials 1..2 —
    // absolute trial indices, same derived seeds, same order.
    std::string expected;
    std::istringstream lines(fullCsv);
    std::string line;
    std::getline(lines, line); // header
    expected = line + "\n";
    while (std::getline(lines, line)) {
        const auto fields = parseCsv(line);
        ASSERT_EQ(fields.size(), 1u);
        const int trial = std::atoi(fields[0][2].c_str());
        if (trial >= 1 && trial < 3)
            expected += line + "\n";
    }
    EXPECT_EQ(shardCsv, expected);
}

TEST(TrialRange, RunnerRejectsARangeOutsideTheSweep)
{
    Scenario shard = tinyScenario("shard_bad");
    shard.trialBegin = 4;
    RunOptions opt;
    opt.trials = 4;
    ScenarioRunner runner(opt);
    EXPECT_EQ(runner.run(shard), 1);

    shard.trialBegin = 2;
    shard.trialCount = 3;
    EXPECT_EQ(ScenarioRunner(opt).run(shard), 1);
}

// --- manifest ---------------------------------------------------------

Manifest
sampleManifest()
{
    Manifest m;
    m.smoke = true;
    m.scenarios.push_back({"t", 4});
    for (int k = 0; k < 2; ++k) {
        Shard s;
        s.id = "t.s" + std::to_string(k);
        s.scenario = "t";
        s.spec = "shards/" + s.id + ".json";
        s.csv = "csv/" + s.id + ".csv";
        s.log = "logs/" + s.id + ".log";
        s.trialBegin = k * 2;
        s.trialCount = 2;
        m.shards.push_back(s);
    }
    return m;
}

TEST(Manifest, RoundTripsByteStably)
{
    Manifest m = sampleManifest();
    m.shards[0].status = ShardStatus::Done;
    m.shards[0].attempts = 2;
    m.shards[0].exitCode = 0;
    const std::string once = writeManifest(m);
    const Manifest reloaded = parseManifest(once);
    EXPECT_EQ(writeManifest(reloaded), once);
    EXPECT_EQ(reloaded.shards[0].status, ShardStatus::Done);
    EXPECT_EQ(reloaded.shards[0].attempts, 2);
    EXPECT_EQ(reloaded.shards[1].status, ShardStatus::Pending);
    EXPECT_TRUE(reloaded.smoke);
    ASSERT_EQ(reloaded.scenarios.size(), 1u);
    EXPECT_EQ(reloaded.scenarios[0].trials, 4);
}

TEST(Manifest, RejectsMalformedDocuments)
{
    EXPECT_THROW(parseManifest("[]"), std::runtime_error);
    EXPECT_THROW(parseManifest("{\"version\": 2, \"smoke\": false, "
                               "\"scenarios\": [], \"shards\": []}"),
                 std::runtime_error);
    std::string bad = writeManifest(sampleManifest());
    bad.replace(bad.find("pending"), 7, "paused!");
    EXPECT_THROW(parseManifest(bad), std::runtime_error);
}

TEST(Manifest, SaveIsAtomicAndLoadable)
{
    const fs::path dir = scratchDir("manifest");
    saveManifest(dir.string(), sampleManifest());
    EXPECT_FALSE(fs::exists(dir / "manifest.json.tmp"));
    const Manifest loaded = loadManifest(dir.string());
    EXPECT_EQ(loaded.shards.size(), 2u);
    EXPECT_THROW(loadManifest((dir / "nope").string()),
                 std::runtime_error);
}

// --- planner ----------------------------------------------------------

TEST(Plan, BalancedPartitionAndPinnedTrialCounts)
{
    scenario::Registry::instance().addOrReplace(
        tinyScenario("sweep_plan_t"));
    const fs::path dir = scratchDir("plan");
    fs::remove_all(dir); // planner creates it

    PlanRequest request;
    request.targets = {"sweep_plan_t"};
    request.dir = dir.string();
    request.shards = 3;
    request.opt.trials = 8;
    std::ostringstream diag;
    ASSERT_EQ(planCampaign(request, diag), "");

    const Manifest m = loadManifest(dir.string());
    ASSERT_EQ(m.scenarios.size(), 1u);
    EXPECT_EQ(m.scenarios[0].trials, 8);
    ASSERT_EQ(m.shards.size(), 3u);
    // 8 trials over 3 shards: 3, 3, 2 — balanced, contiguous.
    EXPECT_EQ(m.shards[0].trialCount, 3);
    EXPECT_EQ(m.shards[1].trialCount, 3);
    EXPECT_EQ(m.shards[2].trialCount, 2);
    int cursor = 0;
    for (const Shard &s : m.shards) {
        EXPECT_EQ(s.trialBegin, cursor);
        cursor += s.trialCount;
        // Each shard spec reloads cleanly with the range bound and
        // both trial counts pinned to the sweep width.
        const specio::SpecFile file = specio::loadSpecFile(
            campaignPath(dir.string(), s.spec));
        EXPECT_EQ(file.trialBegin, s.trialBegin);
        EXPECT_EQ(file.trialCount, s.trialCount);
        EXPECT_EQ(file.fullTrials, 8);
        EXPECT_EQ(file.smokeTrials, 8);
    }
    EXPECT_EQ(cursor, 8);

    // Re-planning over a journaled campaign is refused.
    EXPECT_NE(planCampaign(request, diag).find("refusing"),
              std::string::npos);
}

TEST(Plan, RejectsCustomExecutorScenarios)
{
    Scenario custom = tinyScenario("sweep_plan_custom");
    custom.variants = [](const RunOptions &) {
        ScenarioSpec spec;
        spec.variant = "code";
        spec.custom = [](scenario::TrialContext &) {};
        return std::vector<ScenarioSpec>{spec};
    };
    scenario::Registry::instance().addOrReplace(custom);

    PlanRequest request;
    request.targets = {"sweep_plan_custom"};
    request.dir = scratchDir("plan_custom").string();
    fs::remove_all(request.dir);
    std::ostringstream diag;
    EXPECT_NE(planCampaign(request, diag).find("custom"),
              std::string::npos);
}

TEST(Plan, RejectsUnknownScenario)
{
    PlanRequest request;
    request.targets = {"no_such_scenario"};
    request.dir = scratchDir("plan_unknown").string();
    fs::remove_all(request.dir);
    std::ostringstream diag;
    EXPECT_NE(planCampaign(request, diag).find("unknown scenario"),
              std::string::npos);
}

// --- executor (through a fake bench script) ---------------------------

/**
 * A stand-in c4bench: fails its first execution per shard (exit 3),
 * then emits a one-row CSV. Exercises retry accounting without
 * simulating anything.
 */
fs::path
writeFakeBench(const fs::path &dir, bool failFirst)
{
    const fs::path script = dir / "fake_bench.sh";
    std::string body = "#!/bin/sh\nspec=$2\n";
    if (failFirst) {
        body += "if [ ! -f \"$spec.mark\" ]; then\n"
                "  touch \"$spec.mark\"\n"
                "  echo 'injected failure' >&2\n"
                "  exit 3\nfi\n";
    }
    body += "echo 'scenario,variant,trial,seed,metric,value'\n"
            "echo \"t,v,0,1,m,1\"\n";
    writeFile(script, body);
    fs::permissions(script, fs::perms::owner_all |
                                fs::perms::group_read |
                                fs::perms::others_read);
    return script;
}

fs::path
executorCampaign(const std::string &name)
{
    const fs::path dir = scratchDir(name);
    fs::create_directories(dir / "shards");
    fs::create_directories(dir / "csv");
    fs::create_directories(dir / "logs");
    Manifest m = sampleManifest();
    for (const Shard &s : m.shards)
        writeFile(dir / s.spec, "{}"); // fake bench never reads it
    saveManifest(dir.string(), m);
    return dir;
}

TEST(Exec, RetriesFailuresJournalsAndResumes)
{
    const fs::path dir = executorCampaign("exec");
    const fs::path bench = writeFakeBench(dir, /*failFirst=*/true);

    ExecRequest request;
    request.dir = dir.string();
    request.bench = bench.string();
    request.workers = 2;
    request.maxAttempts = 2;
    ExecStats stats;
    std::ostringstream diag;
    ASSERT_EQ(runCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.executed, 2);
    EXPECT_EQ(stats.failed, 0);

    Manifest m = loadManifest(dir.string());
    for (const Shard &s : m.shards) {
        EXPECT_EQ(s.status, ShardStatus::Done);
        EXPECT_EQ(s.attempts, 2); // one failure + one success each
        EXPECT_EQ(s.exitCode, 0);
        // The child's streams landed in the journaled locations.
        EXPECT_NE(readFile(dir / s.csv).find("t,v,0,1,m,1"),
                  std::string::npos);
    }

    // Resume: nothing pending, nothing re-executed.
    ExecStats again;
    std::ostringstream diag2;
    ASSERT_EQ(runCampaign(request, again, diag2), "");
    EXPECT_EQ(again.executed, 0);
    EXPECT_EQ(again.skipped, 2);
}

TEST(Exec, AttemptBudgetParksShardsAsFailed)
{
    const fs::path dir = executorCampaign("exec_fail");
    const fs::path bench = writeFakeBench(dir, /*failFirst=*/true);

    ExecRequest request;
    request.dir = dir.string();
    request.bench = bench.string();
    request.maxAttempts = 1; // no retries
    ExecStats stats;
    std::ostringstream diag;
    ASSERT_EQ(runCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.executed, 0);
    EXPECT_EQ(stats.failed, 2);
    Manifest m = loadManifest(dir.string());
    EXPECT_EQ(m.shards[0].status, ShardStatus::Failed);
    EXPECT_EQ(m.shards[0].exitCode, 3);
    EXPECT_NE(readFile(dir / m.shards[0].log).find("injected"),
              std::string::npos);

    // A raised attempt budget re-opens the parked shards.
    request.maxAttempts = 2;
    ExecStats retry;
    std::ostringstream diag2;
    ASSERT_EQ(runCampaign(request, retry, diag2), "");
    EXPECT_EQ(retry.executed, 2);
    EXPECT_TRUE(campaignComplete(loadManifest(dir.string())));
}

TEST(Exec, MaxShardsLimitsThisInvocation)
{
    const fs::path dir = executorCampaign("exec_partial");
    const fs::path bench = writeFakeBench(dir, /*failFirst=*/false);

    ExecRequest request;
    request.dir = dir.string();
    request.bench = bench.string();
    request.maxShards = 1;
    ExecStats stats;
    std::ostringstream diag;
    ASSERT_EQ(runCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.executed, 1);
    EXPECT_EQ(stats.remaining, 1);

    // An interrupted campaign journals `running`; a fresh executor
    // re-queues it without burning an attempt.
    Manifest m = loadManifest(dir.string());
    m.shards[1].status = ShardStatus::Running;
    saveManifest(dir.string(), m);
    request.maxShards = 0;
    ExecStats resume;
    std::ostringstream diag2;
    ASSERT_EQ(runCampaign(request, resume, diag2), "");
    EXPECT_EQ(resume.executed, 1);
    EXPECT_EQ(resume.skipped, 1);
    EXPECT_TRUE(campaignComplete(loadManifest(dir.string())));
    EXPECT_EQ(loadManifest(dir.string()).shards[1].attempts, 1);
}

TEST(Exec, OnlyFilterRunsExactlyTheNamedShards)
{
    const fs::path dir = executorCampaign("exec_only");
    const fs::path bench = writeFakeBench(dir, /*failFirst=*/false);

    ExecRequest request;
    request.dir = dir.string();
    request.bench = bench.string();
    request.only = {"t.s1"};
    ExecStats stats;
    std::ostringstream diag;
    ASSERT_EQ(runCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.executed, 1);
    EXPECT_EQ(stats.remaining, 1); // the non-selected shard

    Manifest m = loadManifest(dir.string());
    EXPECT_EQ(m.shards[0].status, ShardStatus::Pending);
    EXPECT_EQ(m.shards[0].attempts, 0);
    EXPECT_EQ(m.shards[1].status, ShardStatus::Done);

    // The other host's slice: a second run with the complementary
    // --only set finishes the campaign.
    request.only = {"t.s0"};
    ExecStats rest;
    std::ostringstream diag2;
    ASSERT_EQ(runCampaign(request, rest, diag2), "");
    EXPECT_EQ(rest.executed, 1);
    EXPECT_EQ(rest.skipped, 1);
    EXPECT_TRUE(campaignComplete(loadManifest(dir.string())));
}

TEST(Exec, OnlyFilterLeavesNonSelectedJournalStateAlone)
{
    const fs::path dir = executorCampaign("exec_only_state");
    const fs::path bench = writeFakeBench(dir, /*failFirst=*/false);

    // A peer host owns shard 0 and is mid-flight (`running`); this
    // host must not "recover" it.
    Manifest m = loadManifest(dir.string());
    m.shards[0].status = ShardStatus::Running;
    saveManifest(dir.string(), m);

    ExecRequest request;
    request.dir = dir.string();
    request.bench = bench.string();
    request.only = {"t.s1"};
    ExecStats stats;
    std::ostringstream diag;
    ASSERT_EQ(runCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.executed, 1);
    EXPECT_EQ(loadManifest(dir.string()).shards[0].status,
              ShardStatus::Running);
}

TEST(Exec, OnlyFilterRejectsUnknownShardIds)
{
    const fs::path dir = executorCampaign("exec_only_bad");
    const fs::path bench = writeFakeBench(dir, /*failFirst=*/false);

    ExecRequest request;
    request.dir = dir.string();
    request.bench = bench.string();
    request.only = {"t.s1", "t.s9"};
    ExecStats stats;
    std::ostringstream diag;
    const std::string error = runCampaign(request, stats, diag);
    EXPECT_NE(error.find("unknown shard id 't.s9'"),
              std::string::npos);
    // Hard error: nothing ran, nothing was journaled.
    EXPECT_EQ(stats.executed, 0);
    EXPECT_EQ(loadManifest(dir.string()).shards[1].status,
              ShardStatus::Pending);
}

TEST(Exec, MissingBenchIsAnInfrastructureError)
{
    const fs::path dir = executorCampaign("exec_nobench");
    ExecRequest request;
    request.dir = dir.string();
    request.bench = (dir / "no_such_bench").string();
    ExecStats stats;
    std::ostringstream diag;
    EXPECT_NE(runCampaign(request, stats, diag)
                  .find("cannot execute bench"),
              std::string::npos);
}

TEST(Exec, DistinguishesChildSetupFailuresFromBenchFailures)
{
    // Setup failure: the shard CSV points into a directory that does
    // not exist, so the child's open() fails before exec (exit 126).
    const fs::path dir = executorCampaign("exec_setup");
    const fs::path bench = writeFakeBench(dir, /*failFirst=*/false);
    Manifest m = loadManifest(dir.string());
    m.shards[0].csv = "csv/no_such_dir/t.s0.csv";
    saveManifest(dir.string(), m);

    ExecRequest request;
    request.dir = dir.string();
    request.bench = bench.string();
    request.maxAttempts = 1;
    request.forensics = false;
    ExecStats stats;
    std::ostringstream diag;
    ASSERT_EQ(runCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.failed, 1);
    EXPECT_EQ(loadManifest(dir.string()).shards[0].exitCode, 126);
    EXPECT_NE(diag.str().find("child setup failed"),
              std::string::npos);

    // Exec failure: an executable file that is not actually runnable
    // (no shebang, not an ELF) makes execv fail (exit 127) — distinct
    // from the bench itself exiting non-zero.
    const fs::path dir2 = executorCampaign("exec_noexec");
    const fs::path junk = dir2 / "junk_bench";
    writeFile(junk, "this is not a program\n");
    fs::permissions(junk, fs::perms::owner_all);
    request.dir = dir2.string();
    request.bench = junk.string();
    ExecStats stats2;
    std::ostringstream diag2;
    ASSERT_EQ(runCampaign(request, stats2, diag2), "");
    EXPECT_EQ(stats2.failed, 2);
    EXPECT_EQ(loadManifest(dir2.string()).shards[0].exitCode, 127);
    EXPECT_NE(diag2.str().find("cannot exec the bench binary"),
              std::string::npos);
}

// --- failure bundles (c4bundle/1) -------------------------------------

BundleManifest
sampleBundle()
{
    BundleManifest b;
    b.shard = "t.s1";
    b.scenario = "t";
    b.trialBegin = 2;
    b.trialCount = 2;
    b.attempts = 2;
    b.exitCode = 1;
    b.forensicExit = 1;
    b.traces = {"trace/t/v0_a.t2.jsonl", "trace/t/v0_a.t3.jsonl"};
    b.metrics = {"metrics/t/v0_a.t2.jsonl"};
    return b;
}

TEST(Bundle, RoundTripsByteStably)
{
    const std::string once = writeBundleManifest(sampleBundle());
    EXPECT_NE(once.find("\"schema\": \"c4bundle/1\""),
              std::string::npos);
    const BundleManifest reloaded = parseBundleManifest(once);
    EXPECT_EQ(writeBundleManifest(reloaded), once);
    EXPECT_EQ(reloaded.shard, "t.s1");
    EXPECT_EQ(reloaded.trialBegin, 2);
    EXPECT_EQ(reloaded.forensicExit, 1);
    ASSERT_EQ(reloaded.traces.size(), 2u);
    EXPECT_EQ(reloaded.traces[1], "trace/t/v0_a.t3.jsonl");
}

TEST(Bundle, ParserIsStrict)
{
    const std::string good = writeBundleManifest(sampleBundle());

    // Unknown keys are rejected, not ignored.
    std::string extra = good;
    extra.insert(extra.find("\"shard\""), "\"surprise\": 1,\n  ");
    EXPECT_THROW(parseBundleManifest(extra), std::runtime_error);

    // Wrong schema tag.
    std::string wrong = good;
    wrong.replace(wrong.find("c4bundle/1"), 10, "c4bundle/9");
    EXPECT_THROW(parseBundleManifest(wrong), std::runtime_error);

    // Missing keys and type confusion.
    EXPECT_THROW(parseBundleManifest("{}"), std::runtime_error);
    EXPECT_THROW(parseBundleManifest("[]"), std::runtime_error);
    std::string mistyped = good;
    mistyped.replace(mistyped.find("\"attempts\": 2"), 13,
                     "\"attempts\": \"2\"");
    EXPECT_THROW(parseBundleManifest(mistyped), std::runtime_error);
}

TEST(Bundle, EveryBytePrefixParsesOrThrowsWithALineNumber)
{
    // A truncated bundle.json (torn copy, dying disk) must always be
    // a diagnosable error: for every proper byte prefix the parser
    // either reports the malformed JSON with its line number, or — if
    // the prefix happens to be complete JSON (the document minus
    // trailing whitespace) — yields the same bundle back.
    const std::string full = writeBundleManifest(sampleBundle());
    for (std::size_t n = 0; n < full.size(); ++n) {
        const std::string prefix = full.substr(0, n);
        try {
            const BundleManifest b = parseBundleManifest(prefix);
            EXPECT_EQ(writeBundleManifest(b), full)
                << "prefix of " << n << " bytes parsed differently";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("line"),
                      std::string::npos)
                << "prefix of " << n
                << " bytes threw without a line number: " << e.what();
        }
    }
}

TEST(Bundle, ExecutorCutsABundleWhenTheBudgetIsExhausted)
{
    const fs::path dir = executorCampaign("bundle_cut");
    // A bench that fails every time, so the forensic re-run records
    // the same failure (exit 3) the campaign parked the shard for.
    const fs::path bench = dir / "fail_bench.sh";
    writeFile(bench, "#!/bin/sh\necho boom >&2\nexit 3\n");
    fs::permissions(bench, fs::perms::owner_all |
                               fs::perms::group_read |
                               fs::perms::others_read);

    ExecRequest request;
    request.dir = dir.string();
    request.bench = bench.string();
    request.maxAttempts = 1;
    ExecStats stats;
    std::ostringstream diag;
    ASSERT_EQ(runCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.failed, 2);
    EXPECT_EQ(stats.bundles, 2);

    ASSERT_TRUE(bundleExists(dir.string(), "t.s0"));
    const BundleManifest b = loadBundleManifest(
        campaignPath(dir.string(), bundleDir("t.s0") + "/bundle.json"));
    EXPECT_EQ(b.shard, "t.s0");
    EXPECT_EQ(b.scenario, "t");
    EXPECT_EQ(b.attempts, 1);
    EXPECT_EQ(b.exitCode, 3);
    EXPECT_EQ(b.forensicExit, 3);
    EXPECT_TRUE(b.traces.empty()); // the fake bench writes no traces
    EXPECT_NE(readFile(dir / bundleDir("t.s0") / "stderr.log")
                  .find("boom"),
              std::string::npos);
    // The spec traveled into the bundle.
    EXPECT_TRUE(fs::exists(dir / bundleDir("t.s0") / "shard.json"));

    // The report renders the bundle (no traces -> no verdict lines).
    std::ostringstream report;
    ASSERT_EQ(forensicsReport(dir.string(),
                              loadManifest(dir.string()), report),
              "");
    EXPECT_NE(report.str().find("== t.s0"), std::string::npos);
    EXPECT_NE(report.str().find("no traces captured"),
              std::string::npos);
}

TEST(Bundle, NoForensicsOptsOut)
{
    const fs::path dir = executorCampaign("bundle_off");
    const fs::path bench = dir / "fail_bench.sh";
    writeFile(bench, "#!/bin/sh\nexit 3\n");
    fs::permissions(bench, fs::perms::owner_all);

    ExecRequest request;
    request.dir = dir.string();
    request.bench = bench.string();
    request.maxAttempts = 1;
    request.forensics = false;
    ExecStats stats;
    std::ostringstream diag;
    ASSERT_EQ(runCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.failed, 2);
    EXPECT_EQ(stats.bundles, 0);
    EXPECT_FALSE(fs::exists(dir / "forensics"));

    std::ostringstream report;
    ASSERT_EQ(forensicsReport(dir.string(),
                              loadManifest(dir.string()), report),
              "");
    EXPECT_NE(report.str().find("no failure bundles"),
              std::string::npos);
}

// --- multi-host collection --------------------------------------------

/** Copy a whole campaign directory, as `cp -r` to a host would. */
fs::path
copyCampaign(const fs::path &from, const std::string &name)
{
    const fs::path to = scratchDir(name);
    fs::remove_all(to);
    fs::copy(from, to, fs::copy_options::recursive);
    return to;
}

/** Mark one shard done in @p dir's journal and write its CSV. */
void
finishShard(const fs::path &dir, std::size_t index,
            const std::string &csv, int attempts = 1)
{
    Manifest m = loadManifest(dir.string());
    m.shards[index].status = ShardStatus::Done;
    m.shards[index].attempts = attempts;
    m.shards[index].exitCode = 0;
    saveManifest(dir.string(), m);
    writeFile(dir / m.shards[index].csv, csv);
    writeFile(dir / m.shards[index].log, "finished\n");
}

TEST(Collect, DisjointOnlySetsUnionCleanly)
{
    const fs::path primary = executorCampaign("collect_union");
    const fs::path hostA = copyCampaign(primary, "collect_union_a");
    const fs::path hostB = copyCampaign(primary, "collect_union_b");
    finishShard(hostA, 0, "h,h\na,0\n");
    finishShard(hostB, 1, "h,h\nb,1\n");

    CollectRequest request;
    request.dir = primary.string();
    request.hosts = {hostA.string(), hostB.string()};
    CollectStats stats;
    std::ostringstream diag;
    ASSERT_EQ(collectCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.adopted, 2);
    EXPECT_EQ(stats.deduped, 0);
    EXPECT_EQ(stats.failures, 0);

    const Manifest m = loadManifest(primary.string());
    EXPECT_EQ(m.shards[0].status, ShardStatus::Done);
    EXPECT_EQ(m.shards[1].status, ShardStatus::Done);
    EXPECT_EQ(readFile(primary / m.shards[0].csv), "h,h\na,0\n");
    EXPECT_EQ(readFile(primary / m.shards[1].csv), "h,h\nb,1\n");
    EXPECT_TRUE(campaignComplete(m));
}

TEST(Collect, IdenticalDoneOnBothHostsDedupes)
{
    const fs::path primary = executorCampaign("collect_dedup");
    const fs::path hostA = copyCampaign(primary, "collect_dedup_a");
    const fs::path hostB = copyCampaign(primary, "collect_dedup_b");
    finishShard(hostA, 0, "h,h\nsame,0\n");
    finishShard(hostB, 0, "h,h\nsame,0\n"); // identical bytes
    finishShard(hostB, 1, "h,h\nb,1\n");

    CollectRequest request;
    request.dir = primary.string();
    request.hosts = {hostA.string(), hostB.string()};
    CollectStats stats;
    std::ostringstream diag;
    ASSERT_EQ(collectCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.adopted, 2); // s0 from A, s1 from B
    EXPECT_EQ(stats.deduped, 1); // s0 on B matched byte-for-byte
    EXPECT_TRUE(campaignComplete(loadManifest(primary.string())));
}

TEST(Collect, DivergentDoneBytesAreAHardError)
{
    const fs::path primary = executorCampaign("collect_diverge");
    const fs::path hostA = copyCampaign(primary, "collect_diverge_a");
    const fs::path hostB = copyCampaign(primary, "collect_diverge_b");
    finishShard(hostA, 0, "h,h\nversion,1\n");
    finishShard(hostB, 0, "h,h\nversion,2\n");

    CollectRequest request;
    request.dir = primary.string();
    request.hosts = {hostA.string(), hostB.string()};
    CollectStats stats;
    std::ostringstream diag;
    const std::string error = collectCampaign(request, stats, diag);
    EXPECT_NE(error.find("t.s0"), std::string::npos);
    EXPECT_NE(error.find("divergent"), std::string::npos);
    // Hard error: the primary journal and files are untouched.
    const Manifest m = loadManifest(primary.string());
    EXPECT_EQ(m.shards[0].status, ShardStatus::Pending);
    EXPECT_FALSE(fs::exists(primary / m.shards[0].csv));
}

TEST(Collect, RunningHostIsRefusedWithAResumeHint)
{
    const fs::path primary = executorCampaign("collect_running");
    const fs::path hostA = copyCampaign(primary, "collect_running_a");
    finishShard(hostA, 0, "h,h\na,0\n");
    Manifest m = loadManifest(hostA.string());
    m.shards[1].status = ShardStatus::Running;
    saveManifest(hostA.string(), m);

    CollectRequest request;
    request.dir = primary.string();
    request.hosts = {hostA.string()};
    CollectStats stats;
    std::ostringstream diag;
    const std::string error = collectCampaign(request, stats, diag);
    EXPECT_NE(error.find("t.s1"), std::string::npos);
    EXPECT_NE(error.find("running"), std::string::npos);
    EXPECT_NE(error.find(hostA.string()), std::string::npos);
    EXPECT_NE(error.find("resume"), std::string::npos);
    // Nothing was adopted, s0 included.
    EXPECT_EQ(loadManifest(primary.string()).shards[0].status,
              ShardStatus::Pending);

    // The primary being mid-run is refused the same way.
    Manifest p = loadManifest(primary.string());
    p.shards[0].status = ShardStatus::Running;
    saveManifest(primary.string(), p);
    m.shards[1].status = ShardStatus::Pending;
    saveManifest(hostA.string(), m);
    CollectStats stats2;
    const std::string error2 = collectCampaign(request, stats2, diag);
    EXPECT_NE(error2.find("primary"), std::string::npos);
    EXPECT_NE(error2.find("resume"), std::string::npos);
}

TEST(Collect, FailedBeatsPendingAndCarriesTheBundle)
{
    const fs::path primary = executorCampaign("collect_failed");
    const fs::path hostA = copyCampaign(primary, "collect_failed_a");
    Manifest m = loadManifest(hostA.string());
    m.shards[0].status = ShardStatus::Failed;
    m.shards[0].attempts = 2;
    m.shards[0].exitCode = 3;
    saveManifest(hostA.string(), m);
    writeFile(hostA / m.shards[0].log, "boom\n");
    // The host's executor cut a bundle when it parked the shard.
    fs::create_directories(hostA / bundleDir("t.s0"));
    BundleManifest b;
    b.shard = "t.s0";
    b.scenario = "t";
    b.trialBegin = 0;
    b.trialCount = 2;
    b.attempts = 2;
    b.exitCode = 3;
    b.forensicExit = 3;
    writeFile(hostA / bundleDir("t.s0") / "bundle.json",
              writeBundleManifest(b));

    CollectRequest request;
    request.dir = primary.string();
    request.hosts = {hostA.string()};
    CollectStats stats;
    std::ostringstream diag;
    ASSERT_EQ(collectCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.adopted, 1);
    EXPECT_EQ(stats.failures, 1);
    EXPECT_EQ(stats.bundles, 1);
    const Manifest merged = loadManifest(primary.string());
    EXPECT_EQ(merged.shards[0].status, ShardStatus::Failed);
    EXPECT_EQ(merged.shards[0].attempts, 2);
    EXPECT_EQ(merged.shards[0].exitCode, 3);
    EXPECT_TRUE(bundleExists(primary.string(), "t.s0"));
    EXPECT_NE(readFile(primary / merged.shards[0].log).find("boom"),
              std::string::npos);
}

TEST(Collect, OnlyRestrictsAndValidatesShardIds)
{
    const fs::path primary = executorCampaign("collect_only");
    const fs::path hostA = copyCampaign(primary, "collect_only_a");
    finishShard(hostA, 0, "h,h\na,0\n");
    finishShard(hostA, 1, "h,h\nb,1\n");

    CollectRequest request;
    request.dir = primary.string();
    request.hosts = {hostA.string()};
    request.only = {"t.s0"};
    CollectStats stats;
    std::ostringstream diag;
    ASSERT_EQ(collectCampaign(request, stats, diag), "");
    EXPECT_EQ(stats.adopted, 1);
    EXPECT_EQ(stats.untouched, 1);
    const Manifest m = loadManifest(primary.string());
    EXPECT_EQ(m.shards[0].status, ShardStatus::Done);
    EXPECT_EQ(m.shards[1].status, ShardStatus::Pending);

    request.only = {"t.s9"};
    CollectStats stats2;
    EXPECT_NE(collectCampaign(request, stats2, diag)
                  .find("unknown shard id 't.s9'"),
              std::string::npos);
}

TEST(Collect, RejectsAStructurallyDifferentCampaign)
{
    const fs::path primary = executorCampaign("collect_mismatch");
    const fs::path hostA =
        copyCampaign(primary, "collect_mismatch_a");
    Manifest m = loadManifest(hostA.string());
    m.shards[1].trialBegin = 3; // not the same planned campaign
    saveManifest(hostA.string(), m);

    CollectRequest request;
    request.dir = primary.string();
    request.hosts = {hostA.string()};
    CollectStats stats;
    std::ostringstream diag;
    const std::string error = collectCampaign(request, stats, diag);
    EXPECT_NE(error.find("not a copy"), std::string::npos);
    EXPECT_NE(error.find("t.s1"), std::string::npos);
}

// --- merger -----------------------------------------------------------

/** A hand-built two-shard campaign whose merge result is known. */
fs::path
mergeCampaignDir(const std::string &name)
{
    const fs::path dir = scratchDir(name);
    fs::create_directories(dir / "shards");
    fs::create_directories(dir / "csv");
    fs::create_directories(dir / "logs");

    Manifest m = sampleManifest();
    for (Shard &s : m.shards) {
        s.status = ShardStatus::Done;
        s.attempts = 1;
    }
    saveManifest(dir.string(), m);

    // Shard specs carry the variant order ("a" then "b").
    specio::SpecFile file;
    file.name = "t";
    file.fullTrials = 4;
    file.smokeTrials = 4;
    ScenarioSpec a, b;
    a.variant = "a";
    b.variant = "b";
    file.variants = {a, b};
    file.trialBegin = 0;
    file.trialCount = 2;
    writeFile(dir / "shards/t.s0.json", specio::writeSpecFile(file));
    file.trialBegin = 2;
    writeFile(dir / "shards/t.s1.json", specio::writeSpecFile(file));

    const std::string header =
        "scenario,variant,trial,seed,metric,value\n";
    writeFile(dir / "csv/t.s0.csv", header +
                                        "t,a,0,9,m,1\n"
                                        "t,a,1,9,m,2\n"
                                        "t,b,0,9,m,3\n"
                                        "t,b,1,9,m,4\n");
    writeFile(dir / "csv/t.s1.csv", header +
                                        "t,a,2,9,m,5\n"
                                        "t,a,3,9,m,6\n"
                                        "t,b,2,9,m,7\n"
                                        "t,b,3,9,m,8\n");
    return dir;
}

TEST(Merge, InterleavesVariantMajorAcrossShards)
{
    const fs::path dir = mergeCampaignDir("merge");
    const fs::path out = dir / "merged.csv";
    std::ostringstream diag;
    ASSERT_EQ(mergeCampaign(dir.string(), out.string(), diag), "");
    EXPECT_EQ(readFile(out),
              "scenario,variant,trial,seed,metric,value\n"
              "t,a,0,9,m,1\n"
              "t,a,1,9,m,2\n"
              "t,a,2,9,m,5\n"
              "t,a,3,9,m,6\n"
              "t,b,0,9,m,3\n"
              "t,b,1,9,m,4\n"
              "t,b,2,9,m,7\n"
              "t,b,3,9,m,8\n");
}

TEST(Merge, RefusesIncompleteOverlappingOrMismatchedShards)
{
    std::ostringstream diag;

    // A shard still pending.
    fs::path dir = mergeCampaignDir("merge_pending");
    Manifest m = loadManifest(dir.string());
    m.shards[1].status = ShardStatus::Pending;
    saveManifest(dir.string(), m);
    EXPECT_NE(mergeCampaign(dir.string(), "-", diag)
                  .find("is pending"),
              std::string::npos);

    // Overlapping trial ranges.
    dir = mergeCampaignDir("merge_overlap");
    m = loadManifest(dir.string());
    m.shards[1].trialBegin = 1;
    saveManifest(dir.string(), m);
    EXPECT_NE(mergeCampaign(dir.string(), "-", diag).find("overlap"),
              std::string::npos);

    // A gap in coverage.
    dir = mergeCampaignDir("merge_gap");
    m = loadManifest(dir.string());
    m.shards[1].trialBegin = 3;
    m.shards[1].trialCount = 1;
    saveManifest(dir.string(), m);
    EXPECT_NE(mergeCampaign(dir.string(), "-", diag).find("covers"),
              std::string::npos);

    // Header drift between shards.
    dir = mergeCampaignDir("merge_header");
    writeFile(dir / "csv/t.s1.csv",
              "scenario,variant,trial,metric,value\nt,a,2,m,5\n");
    EXPECT_NE(
        mergeCampaign(dir.string(), "-", diag).find("header"),
        std::string::npos);

    // A row naming a variant the spec does not know.
    dir = mergeCampaignDir("merge_variant");
    writeFile(dir / "csv/t.s1.csv",
              "scenario,variant,trial,seed,metric,value\n"
              "t,zzz,2,9,m,5\n");
    EXPECT_NE(mergeCampaign(dir.string(), "-", diag)
                  .find("unknown variant"),
              std::string::npos);
}

} // namespace
} // namespace c4::sweep
