/**
 * @file
 * End-to-end integration tests: the full C4 loop (fault -> syndrome ->
 * C4D detection -> steering isolation -> restart -> training resumes)
 * and the C4P effect on contended multi-tenant traffic.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/cluster.h"
#include "core/experiment.h"

namespace c4::core {
namespace {

ClusterConfig
c4Config(bool c4d, bool c4p, double oversub = 1.0)
{
    ClusterConfig cc;
    cc.topology = paperTestbed(oversub);
    cc.enableC4d = c4d;
    cc.enableC4p = c4p;
    cc.c4d.evaluatePeriod = seconds(2);
    cc.c4d.hangThreshold = seconds(20);
    // The integration jobs have ~50 ms compute phases; stragglers show
    // up as tens-of-ms waits, so lower the slow-wait floor accordingly.
    cc.c4d.analyzer.minWaitForSlow = milliseconds(20);
    cc.steering.isolationDelay = minutes(1);
    return cc;
}

train::JobConfig
smallJob(JobId id = 1)
{
    train::JobConfig jc;
    jc.id = id;
    jc.name = "itest";
    jc.model = train::llama7b();
    jc.model.microbatchCompute = milliseconds(400);
    jc.parallel = {.tp = 8, .pp = 1, .dp = 4};
    jc.initTime = seconds(10);
    jc.dpGroupsSimulated = 1;
    jc.hangWatchdogTimeout = minutes(30);
    return jc;
}

TEST(Integration, FullRecoveryLoopAfterGpuFault)
{
    Cluster cluster(c4Config(true, true));
    cluster.provisionBackupNodes(2);
    cluster.startRuntime();

    auto &job = cluster.addJob(smallJob());
    job.start();
    cluster.run(minutes(2));
    ASSERT_EQ(job.state(), train::TrainingJob::State::Running);
    const auto iters_before = job.iterationsCompleted();
    ASSERT_GT(iters_before, 0u);

    // An ECC error kills a worker mid-training.
    const NodeId victim = job.nodes()[2];
    fault::FaultEvent ev;
    ev.type = fault::FaultType::EccError;
    ev.node = victim;
    cluster.faults().injectNow(ev);
    const Time fault_time = cluster.sim().now();

    cluster.run(minutes(20));

    // C4D detected, steering isolated the victim and restarted; the
    // job is iterating again on a backup node.
    EXPECT_EQ(job.state(), train::TrainingJob::State::Running);
    EXPECT_GT(job.iterationsCompleted(), iters_before);
    EXPECT_TRUE(cluster.steering()->isolatedNodes().count(victim));
    const auto &nodes = job.nodes();
    EXPECT_EQ(std::count(nodes.begin(), nodes.end(), victim), 0);

    ASSERT_EQ(cluster.steering()->recoveries().size(), 1u);
    const auto &rec = cluster.steering()->recoveries().front();
    EXPECT_TRUE(rec.viaC4d);
    // Detection + isolation in minutes, not the 30-minute watchdog +
    // hours of manual diagnosis.
    EXPECT_LT(rec.restartTime - fault_time, minutes(5));
    EXPECT_GE(cluster.c4dMaster()->eventsEmitted(), 1u);
}

TEST(Integration, WithoutC4dRecoveryTakesFarLonger)
{
    // Same fault, no C4D: only the watchdog path exists and nobody
    // restarts the job (no steering), so it stays Failed.
    Cluster cluster(c4Config(false, false));
    auto &job = cluster.addJob(smallJob());
    job.start();
    cluster.run(minutes(2));
    const auto iters_before = job.iterationsCompleted();

    fault::FaultEvent ev;
    ev.type = fault::FaultType::EccError;
    ev.node = job.nodes()[2];
    cluster.faults().injectNow(ev);

    cluster.run(minutes(20));
    // Still hung (the watchdog fires ~30 min after the last arm). The
    // iteration in flight at fault time may drain before the stall.
    EXPECT_LE(job.iterationsCompleted(), iters_before + 2);
    EXPECT_EQ(job.state(), train::TrainingJob::State::Running);

    cluster.run(minutes(45));
    EXPECT_EQ(job.state(), train::TrainingJob::State::Failed);
}

TEST(Integration, C4dLocalizesInjectedSlowNic)
{
    Cluster cluster(c4Config(true, false));
    cluster.c4dMaster()->start();
    cluster.agent()->start();

    auto &job = cluster.addJob(smallJob());
    job.start();
    cluster.run(minutes(1));

    // Degrade one node's NIC receive path.
    const NodeId victim = job.nodes()[1];
    fault::FaultEvent ev;
    ev.type = fault::FaultType::SlowNicRx;
    ev.node = victim;
    ev.nic = 0;
    ev.severity = 0.25;
    // Degrade all NICs of the node so the DP ring sees it regardless of
    // which rail the boundary uses.
    for (int nic = 0; nic < 8; ++nic) {
        ev.nic = nic;
        cluster.faults().injectNow(ev);
    }

    cluster.run(minutes(5));
    bool localized = false;
    for (const auto &event : cluster.c4dMaster()->eventLog()) {
        if (event.kind == c4d::C4dEventKind::CommSlow) {
            for (NodeId n : event.suspectNodes)
                localized |= n == victim;
        }
    }
    EXPECT_TRUE(localized);
}

TEST(Integration, C4dLocalizesStragglerNode)
{
    Cluster cluster(c4Config(true, false));
    ClusterConfig cc;
    cluster.startRuntime();

    auto &job = cluster.addJob(smallJob());
    job.start();
    cluster.run(minutes(1));

    const NodeId victim = job.nodes()[3];
    fault::FaultEvent ev;
    ev.type = fault::FaultType::SlowNode;
    ev.node = victim;
    ev.severity = 0.5; // half-speed compute
    cluster.faults().injectNow(ev);

    cluster.run(minutes(6));
    bool localized = false;
    for (const auto &event : cluster.c4dMaster()->eventLog()) {
        if (event.kind == c4d::C4dEventKind::NonCommSlow) {
            for (NodeId n : event.suspectNodes)
                localized |= n == victim;
        }
    }
    EXPECT_TRUE(localized);
}

TEST(Integration, C4pLiftsContendedMultiJobThroughput)
{
    // 8 concurrent 2-node allreduce tasks across segments (the Fig. 10a
    // setup): baseline ECMP collides, C4P does not.
    auto run_once = [](bool c4p) {
        Cluster cluster(c4Config(false, c4p));
        const auto placements =
            crossSegmentPairs(cluster.topology(), 8);
        std::vector<std::unique_ptr<AllreduceTask>> tasks;
        for (std::size_t i = 0; i < placements.size(); ++i) {
            AllreduceTaskConfig tc;
            tc.job = static_cast<JobId>(i + 1);
            tc.nodes = placements[i];
            tc.iterations = 30;
            tc.bytes = mib(128);
            tasks.push_back(
                std::make_unique<AllreduceTask>(cluster, tc));
        }
        for (auto &t : tasks)
            t->start();
        cluster.run();
        double total = 0.0;
        for (auto &t : tasks) {
            EXPECT_TRUE(t->finished());
            total += t->busBwGbps().mean();
        }
        return total / static_cast<double>(tasks.size());
    };

    const double baseline = run_once(false);
    const double c4p = run_once(true);
    EXPECT_NEAR(c4p, 362.0, 5.0);       // all tasks at the NVLink cap
    EXPECT_LT(baseline, c4p * 0.8);     // collisions cost >20%
    EXPECT_GT(c4p / baseline - 1.0, 0.3);
}

TEST(Integration, TrainingThroughputImprovesWithC4p)
{
    auto run_once = [](bool c4p) {
        ClusterConfig cc = c4Config(false, c4p);
        Cluster cluster(cc);
        // Two co-tenant DP jobs spanning segments.
        std::vector<double> thr;
        train::JobConfig j1 = smallJob(1);
        j1.nodes = {0, 4, 8, 12};
        train::JobConfig j2 = smallJob(2);
        j2.nodes = {1, 5, 9, 13};
        auto &a = cluster.addJob(j1);
        auto &b = cluster.addJob(j2);
        a.start();
        b.start();
        cluster.run(minutes(5));
        return a.meanSamplesPerSec() + b.meanSamplesPerSec();
    };
    const double baseline = run_once(false);
    const double with_c4p = run_once(true);
    EXPECT_GT(with_c4p, baseline * 1.02);
}

} // namespace
} // namespace c4::core
