/**
 * @file
 * Unit tests for the training substrate: model presets, parallel layout,
 * and the TrainingJob iteration machine (throughput, checkpoints,
 * stragglers, crashes, watchdog, restart).
 */

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "train/job.h"
#include "train/model.h"
#include "train/parallel.h"

namespace c4::train {
namespace {

TEST(Model, PresetsAreSane)
{
    for (const ModelConfig &m :
         {gpt22b(), gpt175b(), llama7b(), llama13b()}) {
        EXPECT_GT(m.params, 1e9);
        EXPECT_GT(m.microbatchCompute, 0);
        EXPECT_GT(m.activationBytes, 0);
        EXPECT_GT(m.gradientBytes(), 0);
    }
    EXPECT_EQ(gpt22b().gradientBytes(), static_cast<Bytes>(22e9) * 2);
}

TEST(Model, ComputeScalesWithParallelism)
{
    const ModelConfig m = gpt22b();
    const Duration full = microbatchComputeTime(m, 1, 1);
    const Duration tp8 = microbatchComputeTime(m, 8, 1);
    const Duration tp8pp8 = microbatchComputeTime(m, 8, 8);
    EXPECT_NEAR(static_cast<double>(full) / tp8, 8.0, 0.01);
    EXPECT_NEAR(static_cast<double>(full) / tp8pp8, 64.0, 0.1);
}

TEST(Parallel, SpecValidation)
{
    ParallelismSpec spec{.tp = 8, .pp = 1, .dp = 2};
    EXPECT_TRUE(spec.validate(8, 2).empty());
    EXPECT_FALSE(spec.validate(8, 1).empty()); // not enough nodes
    spec.tp = 16;
    EXPECT_FALSE(spec.validate(8, 100).empty()); // tp > gpusPerNode
    spec = {.tp = 3, .pp = 1, .dp = 1};
    EXPECT_FALSE(spec.validate(8, 1).empty()); // tp doesn't divide 8
}

TEST(Parallel, DeviceMappingIsNodePacked)
{
    ParallelismSpec spec{.tp = 8, .pp = 1, .dp = 2};
    ParallelLayout layout(spec, {10, 20}, 8);
    EXPECT_EQ(layout.worldSize(), 16);
    EXPECT_EQ(layout.deviceOf(0).node, 10);
    EXPECT_EQ(layout.deviceOf(7).node, 10);
    EXPECT_EQ(layout.deviceOf(8).node, 20);
    EXPECT_EQ(layout.deviceOf(0).gpu, 0);
    EXPECT_EQ(layout.deviceOf(9).gpu, 1);
    EXPECT_EQ(layout.deviceOf(9).nic, 1);
}

TEST(Parallel, GroupShapes)
{
    ParallelismSpec spec{.tp = 4, .pp = 2, .dp = 2};
    std::vector<NodeId> nodes = {0, 1};
    ParallelLayout layout(spec, nodes, 8);

    const auto tp = layout.tpGroups();
    ASSERT_EQ(tp.size(), 4u); // dp*pp
    for (const auto &g : tp) {
        ASSERT_EQ(g.size(), 4u);
        // TP groups must be node-local (consecutive ranks).
        const NodeId n0 = layout.deviceOf(g.front()).node;
        for (int r : g)
            EXPECT_EQ(layout.deviceOf(r).node, n0);
    }

    const auto dp = layout.dpGroups();
    ASSERT_EQ(dp.size(), 8u); // tp*pp
    for (const auto &g : dp)
        ASSERT_EQ(g.size(), 2u);

    const auto pp = layout.ppGroups();
    ASSERT_EQ(pp.size(), 8u); // tp*dp
    for (const auto &g : pp)
        ASSERT_EQ(g.size(), 2u);
}

TEST(Parallel, IndexDecompositionRoundTrips)
{
    ParallelismSpec spec{.tp = 2, .pp = 2, .dp = 4};
    std::vector<NodeId> nodes = {0, 1};
    ParallelLayout layout(spec, nodes, 8);
    for (int r = 0; r < layout.worldSize(); ++r) {
        const int rebuilt =
            (layout.dpIndex(r) * spec.pp + layout.ppIndex(r)) * spec.tp +
            layout.tpIndex(r);
        EXPECT_EQ(rebuilt, r);
    }
}

struct JobHarness
{
    Simulator sim;
    net::Topology topo;
    net::Fabric fabric;
    accl::Accl lib;

    JobHarness()
        : topo(topoConfig()), fabric(sim, topo, fabricConfig()),
          lib(sim, fabric)
    {
    }

    static net::TopologyConfig
    topoConfig()
    {
        net::TopologyConfig tc;
        tc.numNodes = 4;
        tc.nodesPerSegment = 1;
        tc.numSpines = 8;
        return tc;
    }

    static net::FabricConfig
    fabricConfig()
    {
        net::FabricConfig fc;
        fc.congestionJitter = false;
        return fc;
    }

    JobConfig
    smallJob()
    {
        JobConfig jc;
        jc.id = 1;
        jc.model = llama7b();
        jc.model.microbatchCompute = milliseconds(400);
        jc.parallel = {.tp = 8, .pp = 1, .dp = 2};
        jc.nodes = {0, 1};
        jc.initTime = seconds(10);
        jc.computeJitterCv = 0.0;
        jc.dpGroupsSimulated = 1;
        return jc;
    }
};

TEST(TrainingJob, RunsIterationsAndReportsThroughput)
{
    JobHarness h;
    TrainingJob job(h.sim, h.lib, h.smallJob());
    EXPECT_EQ(job.state(), TrainingJob::State::Idle);
    job.start();
    h.sim.run(minutes(2));
    EXPECT_EQ(job.state(), TrainingJob::State::Running);
    EXPECT_GT(job.iterationsCompleted(), 10u);
    EXPECT_GT(job.meanSamplesPerSec(), 0.0);
    EXPECT_GT(job.dpBusBwGbps().mean(), 50.0);
}

TEST(TrainingJob, IterationCallbackSeesMonotoneIndices)
{
    JobHarness h;
    TrainingJob job(h.sim, h.lib, h.smallJob());
    std::uint64_t last = 0;
    job.onIteration([&](const IterationStats &st) {
        EXPECT_EQ(st.index, last + 1);
        last = st.index;
        EXPECT_GT(st.end, st.start);
        EXPECT_GT(st.commDuration, 0);
        EXPECT_GT(st.samplesPerSec, 0.0);
    });
    job.start();
    h.sim.run(minutes(1));
    EXPECT_GT(last, 0u);
}

TEST(TrainingJob, CheckpointCadenceCostsTime)
{
    JobHarness h;
    JobConfig slow = h.smallJob();
    slow.checkpointIntervalIters = 5;
    slow.checkpointCost = seconds(30);
    TrainingJob with_ckpt(h.sim, h.lib, slow);
    with_ckpt.start();
    h.sim.run(minutes(5));
    const auto iters_with = with_ckpt.iterationsCompleted();
    EXPECT_GT(with_ckpt.lastCheckpointIteration(), 0u);
    EXPECT_GT(with_ckpt.lastCheckpointTime(), 0);
    with_ckpt.stop();

    JobHarness h2;
    TrainingJob without(h2.sim, h2.lib, h2.smallJob());
    without.start();
    h2.sim.run(minutes(5));
    EXPECT_GT(without.iterationsCompleted(), iters_with);
}

TEST(TrainingJob, StragglerSlowsIterationsAndSkewsWaits)
{
    JobHarness h;
    TrainingJob job(h.sim, h.lib, h.smallJob());
    job.start();
    h.sim.run(minutes(1));
    const double clean_iter = job.iterationSeconds().mean();

    job.setNodeComputeScale(1, 3.0);
    h.sim.run(minutes(3));
    // Iterations now wait ~2x the compute phase for node 1's ranks.
    EXPECT_GT(job.iterationSeconds().max(), clean_iter * 1.25);
}

TEST(TrainingJob, CrashNodeHangsThenWatchdogFires)
{
    JobHarness h;
    JobConfig jc = h.smallJob();
    jc.hangWatchdogTimeout = minutes(5);
    TrainingJob job(h.sim, h.lib, jc);
    bool killed = false;
    job.onWatchdogKill([&] { killed = true; });
    job.start();
    h.sim.run(minutes(1));
    const auto iters = job.iterationsCompleted();
    ASSERT_GT(iters, 0u);

    job.crashNode(1);
    h.sim.run(minutes(2));
    EXPECT_EQ(job.iterationsCompleted(), iters); // no more progress
    EXPECT_FALSE(killed);

    h.sim.run(minutes(10));
    EXPECT_TRUE(killed);
    EXPECT_EQ(job.state(), TrainingJob::State::Failed);
}

TEST(TrainingJob, RestartOnNewNodesResumes)
{
    JobHarness h;
    TrainingJob job(h.sim, h.lib, h.smallJob());
    job.start();
    h.sim.run(minutes(1));
    const auto iters = job.iterationsCompleted();
    ASSERT_GT(iters, 0u);

    job.restart({2, 3});
    EXPECT_EQ(job.state(), TrainingJob::State::Initializing);
    h.sim.run(minutes(2));
    EXPECT_EQ(job.state(), TrainingJob::State::Running);
    EXPECT_GT(job.iterationsCompleted(), iters);
    EXPECT_EQ(job.nodes(), (std::vector<NodeId>{2, 3}));
}

TEST(TrainingJob, StopTearsDownComms)
{
    JobHarness h;
    TrainingJob job(h.sim, h.lib, h.smallJob());
    job.start();
    h.sim.run(minutes(1));
    EXPECT_FALSE(job.dpComms().empty());
    const CommId dp = job.dpComms().front();
    job.stop();
    EXPECT_EQ(job.state(), TrainingJob::State::Stopped);
    EXPECT_FALSE(h.lib.hasCommunicator(dp));
    h.sim.run(minutes(1)); // nothing further happens
}

TEST(TrainingJob, PipelineJobRunsSendRecvChain)
{
    JobHarness h;
    JobConfig jc = h.smallJob();
    jc.parallel = {.tp = 8, .pp = 2, .dp = 2};
    jc.nodes = {0, 1, 2, 3};
    TrainingJob job(h.sim, h.lib, jc);
    job.start();
    h.sim.run(minutes(2));
    EXPECT_GT(job.iterationsCompleted(), 5u);
    EXPECT_NE(job.ppComm(), kInvalidId);
}

TEST(TrainingJob, GradientAccumulationReducesCommShare)
{
    JobHarness h;
    JobConfig ga1 = h.smallJob();
    TrainingJob job1(h.sim, h.lib, ga1);
    job1.start();
    h.sim.run(minutes(2));
    double comm_share_1 = 0.0;
    std::uint64_t n1 = 0;
    job1.onIteration([](const IterationStats &) {});
    job1.stop();

    JobHarness h2;
    JobConfig ga8 = ga1;
    ga8.parallel.gradientAccumulation = 8;
    TrainingJob job8(h2.sim, h2.lib, ga8);
    double share1_sum = 0, share8_sum = 0;
    int count8 = 0;
    job8.onIteration([&](const IterationStats &st) {
        share8_sum += toSeconds(st.commDuration) /
                      toSeconds(st.end - st.start);
        ++count8;
    });
    job8.start();
    h2.sim.run(minutes(5));
    ASSERT_GT(count8, 0);

    JobHarness h3;
    TrainingJob job1b(h3.sim, h3.lib, ga1);
    int count1 = 0;
    job1b.onIteration([&](const IterationStats &st) {
        share1_sum += toSeconds(st.commDuration) /
                      toSeconds(st.end - st.start);
        ++count1;
    });
    job1b.start();
    h3.sim.run(minutes(5));
    ASSERT_GT(count1, 0);

    (void)comm_share_1;
    (void)n1;
    // GA=8 amortizes the DP allreduce over 8x compute: much smaller
    // communication share (the paper's Job3 explanation, Fig. 14).
    EXPECT_LT(share8_sum / count8, 0.5 * share1_sum / count1);
}

TEST(TrainingJob, RejectsInvalidConfig)
{
    JobHarness h;
    JobConfig jc = h.smallJob();
    jc.parallel.tp = 16; // > gpusPerNode
    EXPECT_THROW(TrainingJob(h.sim, h.lib, jc), std::invalid_argument);
}

} // namespace
} // namespace c4::train
