/**
 * @file
 * C4D subsystem tests: agent collection, master evaluation over live
 * ACCL telemetry, and the steering service's isolate-and-restart flow.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "accl/accl.h"
#include "c4d/agent.h"
#include "c4d/master.h"
#include "c4d/steering.h"
#include "net/fabric.h"
#include "testutil/testutil.h"
#include "train/job.h"

namespace c4::c4d {
namespace {

using accl::Accl;
using accl::CollOp;
using accl::DeviceInfo;

using Harness = testutil::C4dHarness;

TEST(C4dAgent, RegistersAndDeregistersComms)
{
    Harness h;
    const CommId comm = h.fullComm({0, 1});
    h.agent.collectOnce();
    EXPECT_EQ(h.master.liveComms(), 1u);

    h.lib.destroyCommunicator(comm);
    h.agent.collectOnce();
    EXPECT_EQ(h.master.liveComms(), 0u);
}

TEST(C4dMaster, HealthyTrafficEmitsNothing)
{
    Harness h;
    const CommId comm = h.fullComm({0, 1});
    h.pump(comm, mib(64), 20);
    h.sim.run(minutes(2));
    EXPECT_GT(h.master.evaluations(), 10u);
    EXPECT_EQ(h.master.eventsEmitted(), 0u);
}

TEST(C4dMaster, DetectsNonCommHangWithinSeconds)
{
    Harness h;
    const CommId comm = h.fullComm({0, 1});
    h.pump(comm, mib(64), 1000000);
    h.sim.run(seconds(30));

    // Kill node 1's ranks before the next op posts: it never arrives.
    Time crash_time = h.sim.now();
    for (Rank r : h.lib.communicator(comm).ranksOnNode(1))
        h.lib.crashRank(comm, r);

    C4dEvent event;
    bool got = false;
    h.master.onEvent([&](const C4dEvent &ev) {
        if (!got) {
            got = true;
            event = ev;
        }
    });
    h.sim.run(minutes(5));
    ASSERT_TRUE(got);
    EXPECT_TRUE(event.kind == C4dEventKind::NonCommHang ||
                event.kind == C4dEventKind::CommHang);
    ASSERT_FALSE(event.suspectNodes.empty());
    EXPECT_EQ(event.suspectNodes[0], 1);
    // Detection latency: hang threshold + one evaluation period, i.e.
    // "tens of seconds", not the 30-minute watchdog.
    EXPECT_LT(event.when - crash_time, seconds(60));
}

TEST(C4dMaster, DetectsCommSlowFromRxDegradation)
{
    Harness h;
    const CommId comm = h.fullComm({0, 1, 2});
    h.pump(comm, mib(64), 1000000);
    h.sim.run(seconds(20));

    // Degrade node 1's NIC receive side to 20%: messages into node 1
    // slow down -> hot column in the delay matrix.
    for (int g = 0; g < h.topo.nicsPerNode(); ++g) {
        for (int p = 0; p < net::kNumPlanes; ++p) {
            h.fabric.setLinkCapacityScale(
                h.topo.hostDownlink(1, g, net::planeFromIndex(p)), 0.2);
        }
    }

    bool got = false;
    C4dEvent event;
    h.master.onEvent([&](const C4dEvent &ev) {
        if (!got && ev.kind == C4dEventKind::CommSlow) {
            got = true;
            event = ev;
        }
    });
    h.sim.run(minutes(3));
    ASSERT_TRUE(got);
    // Ring telemetry has a single connection into node 1, so the matrix
    // can localize to the connection (src on node 0, dst on node 1);
    // the victim node must be among the suspects.
    ASSERT_FALSE(event.suspectNodes.empty());
    EXPECT_NE(std::find(event.suspectNodes.begin(),
                        event.suspectNodes.end(), 1),
              event.suspectNodes.end());
}

TEST(C4dMaster, DetectsNonCommSlowStraggler)
{
    Harness h;
    const CommId comm = h.fullComm({0, 1, 2, 3});
    // Ranks on node 2 post late every iteration (straggler compute):
    // everyone else's recv wait is large, node 2's is ~zero.
    std::vector<Duration> delays(
        static_cast<std::size_t>(h.lib.communicator(comm).size()), 0);
    for (Rank r : h.lib.communicator(comm).ranksOnNode(2))
        delays[static_cast<std::size_t>(r)] = milliseconds(400);
    // Everyone EXCEPT node 2 gets zero delay; recv wait of node-2 ranks
    // is zero, others wait 400 ms.
    h.pump(comm, mib(64), 1000000, delays);

    bool got = false;
    C4dEvent event;
    h.master.onEvent([&](const C4dEvent &ev) {
        if (!got && ev.kind == C4dEventKind::NonCommSlow) {
            got = true;
            event = ev;
        }
    });
    h.sim.run(minutes(3));
    ASSERT_TRUE(got);
    ASSERT_FALSE(event.suspectNodes.empty());
    EXPECT_EQ(event.suspectNodes[0], 2);
}

TEST(C4dMaster, CooldownSuppressesDuplicateSlowFindings)
{
    Harness h;
    const CommId comm = h.fullComm({0, 1, 2, 3});
    std::vector<Duration> delays(
        static_cast<std::size_t>(h.lib.communicator(comm).size()), 0);
    for (Rank r : h.lib.communicator(comm).ranksOnNode(2))
        delays[static_cast<std::size_t>(r)] = milliseconds(400);
    h.pump(comm, mib(64), 1000000, delays);

    int slow_events = 0;
    h.master.onEvent([&](const C4dEvent &ev) {
        if (ev.kind == C4dEventKind::NonCommSlow)
            ++slow_events;
    });
    h.sim.run(minutes(3));
    // Cooldown is 2 minutes: at most 2 findings in a 3-minute window.
    EXPECT_GE(slow_events, 1);
    EXPECT_LE(slow_events, 2);
}

TEST(Steering, IsolatesAndRestartsOnFatalEvent)
{
    testutil::AcclHarness h;
    Simulator &sim = h.sim;

    train::TrainingJob job(sim, h.lib, testutil::smallJobConfig(7));

    SteeringConfig sc;
    sc.isolationDelay = minutes(1);
    JobSteeringService steering(sim, sc);
    steering.manageJob(job);
    steering.addBackupNodes({2, 3});
    EXPECT_EQ(steering.backupsAvailable(), 2u);

    job.start();
    sim.run(minutes(1));
    ASSERT_EQ(job.state(), train::TrainingJob::State::Running);

    C4dEvent ev;
    ev.kind = C4dEventKind::CommHang;
    ev.job = 7;
    ev.when = sim.now();
    ev.suspectNodes = {1};
    steering.handleEvent(ev);

    sim.run(minutes(5));
    EXPECT_EQ(job.state(), train::TrainingJob::State::Running);
    EXPECT_EQ(steering.restartsIssued(), 1u);
    EXPECT_EQ(steering.backupsAvailable(), 1u);
    EXPECT_TRUE(steering.isolatedNodes().count(1));
    // Node 1 swapped out for backup node 2.
    EXPECT_EQ(job.nodes(), (std::vector<NodeId>{0, 2}));
    ASSERT_EQ(steering.recoveries().size(), 1u);
    EXPECT_TRUE(steering.recoveries()[0].viaC4d);
}

TEST(Steering, WatchdogPathUsesManualRecovery)
{
    testutil::AcclHarness h;
    Simulator &sim = h.sim;

    // The watchdog timeout and the manual-diagnosis distribution are
    // both configurable, so the test compresses them: production-like
    // values (30-min watchdog, hours-median diagnosis) force ~30
    // simulated hours of training iterations — minutes of wall clock
    // — to cover the lognormal tail, for no extra coverage.
    train::JobConfig jc = testutil::smallJobConfig(3);
    jc.hangWatchdogTimeout = seconds(30);
    train::TrainingJob job(sim, h.lib, jc);

    SteeringConfig sc;
    sc.manualDiagnosisMedian = minutes(5);
    JobSteeringService steering(sim, sc, /*seed=*/1);
    steering.manageJob(job);

    job.start();
    sim.run(minutes(1));
    job.crashNode(0); // no C4D in this setup: only the watchdog fires

    sim.run(hours(1));
    ASSERT_EQ(steering.recoveries().size(), 1u);
    EXPECT_FALSE(steering.recoveries()[0].viaC4d);
    // Manual diagnosis is heavy tailed around the configured median —
    // far slower than the seconds-scale C4D/steering path.
    EXPECT_GT(steering.recoveries()[0].recoveryLatency(), minutes(1));
    EXPECT_EQ(job.state(), train::TrainingJob::State::Running);
}

TEST(Steering, BackupExhaustionKeepsPlacement)
{
    testutil::AcclHarness h;
    Simulator &sim = h.sim;

    train::TrainingJob job(sim, h.lib, testutil::smallJobConfig());

    JobSteeringService steering(sim, SteeringConfig{});
    steering.manageJob(job); // no backups provisioned

    job.start();
    sim.run(minutes(1));

    C4dEvent ev;
    ev.kind = C4dEventKind::CommHang;
    ev.job = 1;
    ev.suspectNodes = {1};
    steering.handleEvent(ev);
    sim.run(minutes(10));
    // Restarted on the same nodes (nothing to swap in).
    EXPECT_EQ(job.nodes(), (std::vector<NodeId>{0, 1}));
    EXPECT_EQ(job.state(), train::TrainingJob::State::Running);
}

TEST(C4dEvent, Rendering)
{
    C4dEvent ev;
    ev.kind = C4dEventKind::CommSlow;
    ev.job = 3;
    ev.comm = 9;
    ev.suspectNodes = {1, 2};
    const std::string s = ev.str();
    EXPECT_NE(s.find("comm-slow"), std::string::npos);
    EXPECT_NE(s.find("job=3"), std::string::npos);
    EXPECT_NE(s.find("1,2"), std::string::npos);
    EXPECT_TRUE(c4dEventIsFatal(C4dEventKind::NonCommHang));
    EXPECT_FALSE(c4dEventIsFatal(C4dEventKind::CommSlow));
}

} // namespace
} // namespace c4::c4d
