/**
 * @file
 * C4P subsystem tests: path probing, the master's three allocation rules
 * (fault elimination, dual-port balance, spine balance), and dynamic
 * load balance re-pinning.
 */

#include <gtest/gtest.h>

#include <map>

#include "c4p/master.h"
#include "c4p/prober.h"
#include "net/fabric.h"
#include "testutil/testutil.h"

namespace c4::c4p {
namespace {

using accl::ConnContext;
using accl::PathDecision;
using testutil::makeConnContext;
using testutil::podConfig;

TEST(Prober, AllHealthyCatalog)
{
    Simulator sim;
    net::Topology topo(podConfig());
    net::Fabric fabric(sim, topo);
    PathProber prober(sim, fabric);

    bool done = false;
    prober.probe([&](const ProbeCatalog &catalog) {
        done = true;
        EXPECT_EQ(catalog.numLeaves, 8);
        EXPECT_EQ(catalog.numSpines, 8);
        EXPECT_EQ(catalog.healthyUplinkCount(), 64u);
        EXPECT_EQ(catalog.healthySpines(0, 2).size(), 8u);
    });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(prober.probesSent(), 64u);
}

TEST(Prober, DetectsDeadTrunk)
{
    Simulator sim;
    net::Topology topo(podConfig());
    net::Fabric fabric(sim, topo);
    fabric.setLinkUp(topo.trunkUplink(0, 3), false);

    PathProber prober(sim, fabric);
    bool done = false;
    prober.probe([&](const ProbeCatalog &catalog) {
        done = true;
        EXPECT_FALSE(catalog.uplink(0, 3));
        EXPECT_TRUE(catalog.uplink(0, 2));
        EXPECT_TRUE(catalog.uplink(1, 3));
        const auto healthy = catalog.healthySpines(0, 2);
        EXPECT_EQ(healthy.size(), 7u);
    });
    sim.run();
    EXPECT_TRUE(done);
}

TEST(Prober, ManagementViewMatchesTopology)
{
    Simulator sim;
    net::Topology topo(podConfig());
    net::Fabric fabric(sim, topo);
    topo.setLinkUp(topo.trunkDownlink(5, 2), false);
    const ProbeCatalog catalog =
        PathProber(sim, fabric).managementView();
    EXPECT_FALSE(catalog.downlink(5, 2));
    EXPECT_TRUE(catalog.downlink(5, 3));
}

TEST(C4pMaster, DualPortRulePinsRxPlane)
{
    Simulator sim;
    net::Topology topo(podConfig());
    C4pMaster master(sim, topo);

    for (int channel = 0; channel < 2; ++channel) {
        const PathDecision d =
            master.decide(makeConnContext(channel, 0));
        ASSERT_NE(d.rxPlane, kInvalidId);
        EXPECT_EQ(d.rxPlane, net::planeIndex(d.txPlane));
    }
}

TEST(C4pMaster, DualPortRuleCanBeDisabled)
{
    Simulator sim;
    net::Topology topo(podConfig());
    C4pConfig cfg;
    cfg.balanceDualPort = false;
    C4pMaster master(sim, topo, cfg);
    EXPECT_EQ(master.decide(makeConnContext()).rxPlane, kInvalidId);
}

TEST(C4pMaster, SpineBalanceSpreadsQps)
{
    Simulator sim;
    net::Topology topo(podConfig());
    C4pMaster master(sim, topo);

    // 16 QPs from segment 0 to segment 1, all on the left plane
    // (channel 0): must spread 2-per-spine across the 8 spines.
    std::map<int, int> spine_counts;
    for (int i = 0; i < 16; ++i) {
        ConnContext ctx = makeConnContext(0, 0, /*src=*/0, /*dst=*/4);
        ctx.comm = i; // distinct QP identities
        const PathDecision d = master.decide(ctx);
        ASSERT_NE(d.spine, kInvalidId);
        ++spine_counts[d.spine];
    }
    EXPECT_EQ(spine_counts.size(), 8u);
    for (const auto &[spine, count] : spine_counts)
        EXPECT_EQ(count, 2);
    EXPECT_EQ(master.allocations(), 16u);
}

TEST(C4pMaster, LoadAccountingReleases)
{
    Simulator sim;
    net::Topology topo(podConfig());
    C4pMaster master(sim, topo);

    ConnContext ctx = makeConnContext();
    const PathDecision d = master.decide(ctx);
    const int tx_leaf = topo.leafIndex(0, d.txPlane);
    EXPECT_EQ(master.uplinkLoad(tx_leaf, d.spine), 1);
    master.release(ctx, d);
    EXPECT_EQ(master.uplinkLoad(tx_leaf, d.spine), 0);
    EXPECT_EQ(master.releases(), 1u);
}

TEST(C4pMaster, AvoidsFaultyTrunksAtAllocation)
{
    Simulator sim;
    net::Topology topo(podConfig());
    C4pMaster master(sim, topo);

    // Kill spine 0 and 1 uplinks from segment 0's left leaf.
    const int tx_leaf = topo.leafIndex(0, net::Plane::Left);
    topo.setLinkUp(topo.trunkUplink(tx_leaf, 0), false);
    topo.setLinkUp(topo.trunkUplink(tx_leaf, 1), false);

    for (int i = 0; i < 12; ++i) {
        ConnContext ctx = makeConnContext(0, 0);
        ctx.comm = i;
        const PathDecision d = master.decide(ctx);
        // Channel 0 departs the left plane from segment 0.
        EXPECT_NE(d.spine, 0);
        EXPECT_NE(d.spine, 1);
    }
}

TEST(C4pMaster, IntraSegmentNeedsNoSpine)
{
    Simulator sim;
    net::Topology topo(podConfig());
    C4pMaster master(sim, topo);
    const PathDecision d =
        master.decide(makeConnContext(0, 0, /*src=*/0, /*dst=*/1));
    EXPECT_EQ(d.spine, kInvalidId); // same segment: leaf-local
    EXPECT_NE(d.rxPlane, kInvalidId);
}

TEST(C4pMaster, DynamicRebalanceRepinsDeadSpine)
{
    Simulator sim;
    net::Topology topo(podConfig());
    C4pConfig cfg;
    cfg.dynamicLoadBalance = true;
    cfg.rebalanceCooldown = 0;
    C4pMaster master(sim, topo, cfg);

    std::vector<ConnContext> ctxs = {makeConnContext(0, 0)};
    std::vector<PathDecision> decisions = {master.decide(ctxs[0])};
    std::vector<double> weights = {1.0};
    const int original = decisions[0].spine;
    ASSERT_NE(original, kInvalidId);

    // Feed some rate so the rebalance has data, then kill the trunk.
    accl::PathFeedback fb;
    fb.achievedRate = gbps(200);
    fb.bytes = mib(8);
    fb.duration = milliseconds(1);
    master.feedback(ctxs[0], decisions[0], fb);

    const int tx_leaf = topo.leafIndex(0, decisions[0].txPlane);
    topo.setLinkUp(topo.trunkUplink(tx_leaf, original), false);

    EXPECT_TRUE(master.rebalance(ctxs, decisions, weights));
    EXPECT_NE(decisions[0].spine, original);
    EXPECT_GE(master.repins(), 1u);
}

TEST(C4pMaster, DynamicRebalanceMovesSlowQp)
{
    Simulator sim;
    net::Topology topo(podConfig());
    C4pConfig cfg;
    cfg.dynamicLoadBalance = true;
    cfg.rebalanceCooldown = 0;
    cfg.rebalanceRatio = 1.3;
    C4pMaster master(sim, topo, cfg);

    std::vector<ConnContext> ctxs = {makeConnContext(0, 0),
                                     makeConnContext(0, 1)};
    std::vector<PathDecision> decisions = {master.decide(ctxs[0]),
                                           master.decide(ctxs[1])};
    std::vector<double> weights = {1.0, 1.0};

    accl::PathFeedback fast;
    fast.achievedRate = gbps(200);
    accl::PathFeedback slow;
    slow.achievedRate = gbps(60);
    master.feedback(ctxs[0], decisions[0], fast);
    master.feedback(ctxs[1], decisions[1], slow);

    const int slow_spine = decisions[1].spine;
    EXPECT_TRUE(master.rebalance(ctxs, decisions, weights));
    EXPECT_NE(decisions[1].spine, slow_spine);
    // Weights shift toward the faster QP.
    EXPECT_GT(weights[0], weights[1]);
}

TEST(C4pMaster, RebalanceQuietWithoutDynamicMode)
{
    Simulator sim;
    net::Topology topo(podConfig());
    C4pMaster master(sim, topo); // dynamicLoadBalance = false

    std::vector<ConnContext> ctxs = {makeConnContext(0, 0)};
    std::vector<PathDecision> decisions = {master.decide(ctxs[0])};
    std::vector<double> weights = {1.0};
    EXPECT_FALSE(master.rebalance(ctxs, decisions, weights));
}

TEST(C4pMaster, CooldownThrottlesRepins)
{
    Simulator sim;
    net::Topology topo(podConfig());
    C4pConfig cfg;
    cfg.dynamicLoadBalance = true;
    cfg.rebalanceCooldown = seconds(10);
    C4pMaster master(sim, topo, cfg);

    std::vector<ConnContext> ctxs = {makeConnContext(0, 0)};
    std::vector<PathDecision> decisions = {master.decide(ctxs[0])};
    std::vector<double> weights = {1.0};

    accl::PathFeedback fb;
    fb.achievedRate = gbps(100);
    master.feedback(ctxs[0], decisions[0], fb);

    const int tx_leaf = topo.leafIndex(0, decisions[0].txPlane);
    topo.setLinkUp(topo.trunkUplink(tx_leaf, decisions[0].spine),
                   false);
    EXPECT_TRUE(master.rebalance(ctxs, decisions, weights));
    const auto after_first = master.repins();

    // Immediately kill the new trunk too: cooldown forbids a repin.
    topo.setLinkUp(topo.trunkUplink(tx_leaf, decisions[0].spine),
                   false);
    master.rebalance(ctxs, decisions, weights);
    EXPECT_EQ(master.repins(), after_first);
}

} // namespace
} // namespace c4::c4p
