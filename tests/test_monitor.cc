/**
 * @file
 * Unit tests for ACCL's monitoring layers (the paper's four telemetry
 * streams, heartbeats, and operation progress).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "accl/monitor.h"
#include "common/csv.h"

namespace c4::accl {
namespace {

ConnRecord
makeConn(CommId comm, Rank src, Rank dst, Bytes bytes, Duration dur)
{
    ConnRecord r;
    r.comm = comm;
    r.srcRank = src;
    r.dstRank = dst;
    r.bytes = bytes;
    r.startTime = seconds(1);
    r.endTime = seconds(1) + dur;
    return r;
}

TEST(Monitor, RecordsAndDrains)
{
    AcclMonitor mon;
    mon.record(makeConn(1, 0, 1, mib(1), milliseconds(1)));
    mon.record(makeConn(1, 1, 2, mib(1), milliseconds(2)));
    EXPECT_EQ(mon.totalConnRecords(), 2u);

    auto drained = mon.drainConn();
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_TRUE(mon.drainConn().empty()); // draining consumes
    EXPECT_EQ(mon.totalConnRecords(), 2u); // lifetime counter persists
}

TEST(Monitor, DisabledDropsEverything)
{
    AcclMonitor mon(false);
    mon.record(makeConn(1, 0, 1, mib(1), milliseconds(1)));
    mon.heartbeat(1, 0, seconds(5));
    mon.opPosted(1, 1, CollOp::AllReduce, mib(1), seconds(1));
    EXPECT_TRUE(mon.drainConn().empty());
    EXPECT_EQ(mon.lastHeartbeat(1, 0), kTimeNever);
    EXPECT_EQ(mon.currentOp(1), nullptr);
}

TEST(Monitor, CapacityBoundsRetention)
{
    AcclMonitor mon(true, 4);
    for (int i = 0; i < 10; ++i)
        mon.record(makeConn(1, 0, 1, mib(1), milliseconds(i + 1)));
    EXPECT_EQ(mon.drainConn().size(), 4u);
    EXPECT_EQ(mon.droppedRecords(), 6u);
}

TEST(Monitor, HeartbeatsTrackLatest)
{
    AcclMonitor mon;
    EXPECT_EQ(mon.lastHeartbeat(1, 0), kTimeNever);
    mon.heartbeat(1, 0, seconds(1));
    mon.heartbeat(1, 0, seconds(2));
    mon.heartbeat(1, 1, seconds(3));
    EXPECT_EQ(mon.lastHeartbeat(1, 0), seconds(2));
    EXPECT_EQ(mon.lastHeartbeat(1, 1), seconds(3));
    EXPECT_EQ(mon.lastHeartbeat(2, 0), kTimeNever);
}

TEST(Monitor, OpProgressLifecycle)
{
    AcclMonitor mon;
    EXPECT_EQ(mon.currentOp(7), nullptr);

    mon.opPosted(7, 3, CollOp::AllReduce, mib(64), seconds(1));
    const OpProgress *op = mon.currentOp(7);
    ASSERT_NE(op, nullptr);
    EXPECT_TRUE(op->posted());
    EXPECT_FALSE(op->started());
    EXPECT_FALSE(op->finished());
    EXPECT_EQ(op->seq, 3u);

    mon.opStarted(7, 3, seconds(2));
    EXPECT_TRUE(mon.currentOp(7)->started());

    mon.opFinished(7, 3, seconds(3));
    EXPECT_TRUE(mon.currentOp(7)->finished());
}

TEST(Monitor, OpProgressIgnoresStaleSeq)
{
    AcclMonitor mon;
    mon.opPosted(7, 3, CollOp::AllReduce, mib(64), seconds(1));
    mon.opPosted(7, 4, CollOp::AllReduce, mib(64), seconds(2));
    mon.opStarted(7, 3, seconds(3)); // stale seq: ignored
    EXPECT_FALSE(mon.currentOp(7)->started());
    EXPECT_EQ(mon.currentOp(7)->seq, 4u);
}

TEST(Monitor, CommClosedClearsState)
{
    AcclMonitor mon;
    mon.opPosted(7, 1, CollOp::AllReduce, mib(1), seconds(1));
    mon.heartbeat(7, 0, seconds(1));
    mon.heartbeat(8, 0, seconds(1));
    mon.commClosed(7);
    EXPECT_EQ(mon.currentOp(7), nullptr);
    EXPECT_EQ(mon.lastHeartbeat(7, 0), kTimeNever);
    EXPECT_EQ(mon.lastHeartbeat(8, 0), seconds(1)); // untouched
}

TEST(Monitor, CsvDumpsParse)
{
    AcclMonitor mon;
    CommRecord cr;
    cr.when = seconds(1);
    cr.comm = 1;
    cr.job = 2;
    cr.nranks = 16;
    cr.channels = 2;
    mon.record(cr);

    CollRecord col;
    col.comm = 1;
    col.seq = 5;
    col.rank = 3;
    col.bytes = mib(64);
    col.postTime = seconds(1);
    col.startTime = seconds(2);
    col.endTime = seconds(3);
    mon.record(col);

    RankWaitRecord w;
    w.comm = 1;
    w.seq = 5;
    w.rank = 3;
    w.recvWait = milliseconds(10);
    mon.record(w);

    mon.record(makeConn(1, 0, 1, mib(1), milliseconds(1)));

    std::ostringstream comm_csv, coll_csv, rank_csv, conn_csv;
    mon.dumpCommCsv(comm_csv);
    mon.dumpCollCsv(coll_csv);
    mon.dumpRankCsv(rank_csv);
    mon.dumpConnCsv(conn_csv);

    EXPECT_EQ(parseCsv(comm_csv.str()).size(), 2u);  // header + row
    EXPECT_EQ(parseCsv(coll_csv.str()).size(), 2u);
    EXPECT_EQ(parseCsv(rank_csv.str()).size(), 2u);
    const auto conn_rows = parseCsv(conn_csv.str());
    ASSERT_EQ(conn_rows.size(), 2u);
    EXPECT_EQ(conn_rows[0][0], "comm");
    EXPECT_EQ(conn_rows[1][5], "0"); // src_rank
}

TEST(Monitor, ConnRecordDerivedMetrics)
{
    ConnRecord r = makeConn(1, 0, 1, mib(100), milliseconds(4));
    EXPECT_EQ(r.duration(), milliseconds(4));
    // 100 MiB in 4 ms ~= 209.7 Gbps
    EXPECT_NEAR(toGbps(r.achievedRate()), 209.7, 0.5);
}

} // namespace
} // namespace c4::accl
