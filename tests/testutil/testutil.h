/**
 * @file
 * Shared test fixtures: seeded, deterministic factories for topologies,
 * fabrics, ACCL instances, and the C4D stack. Every suite composes
 * these instead of defining private `Harness` boilerplate.
 */

#ifndef C4_TESTS_TESTUTIL_TESTUTIL_H
#define C4_TESTS_TESTUTIL_TESTUTIL_H

#include <cstdint>
#include <utility>
#include <vector>

#include "accl/accl.h"
#include "c4d/agent.h"
#include "c4d/master.h"
#include "net/fabric.h"
#include "train/job.h"

namespace c4::testutil {

/** @name Deterministic config factories @{ */

/** The paper's testbed pod: 16 nodes, 4 per segment, 8 spines. */
net::TopologyConfig podConfig(int numNodes = 16, int nodesPerSegment = 4,
                              int numSpines = 8);

/**
 * Flat pod: one node per segment, so every node pair crosses the
 * spines. This is the shape the ACCL/C4D suites stress.
 */
net::TopologyConfig flatConfig(int numNodes, int numSpines = 8);

/** Congestion jitter disabled: exact fair-share rates for assertions. */
net::FabricConfig quietFabricConfig();

/** C4D master config tightened for short simulated test runs. */
c4d::C4dConfig fastC4dConfig();

/**
 * A llama7b job on two nodes (tp=8, dp=2) with fast 300 ms
 * microbatches, sized so minutes of simulated time complete many
 * iterations.
 */
train::JobConfig smallJobConfig(JobId id = 1,
                                std::vector<NodeId> nodes = {0, 1});

/** @} */

/** @name Request / context / device builders @{ */

/**
 * A path request departing NIC 0 on the left plane; spine/rxPlane stay
 * unpinned unless given.
 */
net::PathRequest makePathRequest(NodeId src, NodeId dst,
                                 std::uint32_t label = 1,
                                 int spine = kInvalidId,
                                 int rxPlane = kInvalidId);

/** A cross-segment ACCL connection context for path-policy tests. */
accl::ConnContext makeConnContext(int channel = 0, int qp = 0,
                                  NodeId src = 0, NodeId dst = 4);

/** One DeviceInfo per GPU of each listed node; NIC g serves GPU g. */
std::vector<accl::DeviceInfo>
fullNodeDevices(const net::Topology &topo,
                const std::vector<NodeId> &nodes);

/** @} */

/**
 * Simulator + topology + fabric. Defaults to the paper pod over a
 * quiet (jitter-free) fabric so rate assertions are exact.
 */
struct FabricHarness
{
    Simulator sim;
    net::Topology topo;
    net::Fabric fabric;

    explicit FabricHarness(net::TopologyConfig tc = podConfig(),
                           net::FabricConfig fc = quietFabricConfig());

    /** @see makePathRequest */
    net::PathRequest request(NodeId src, NodeId dst,
                             std::uint32_t label = 1,
                             int spine = kInvalidId,
                             int rxPlane = kInvalidId) const;
};

/** FabricHarness plus an ACCL instance and communicator helpers. */
struct AcclHarness : FabricHarness
{
    accl::Accl lib;

    /**
     * `nodes` nodes in a flat pod (every pair crosses the spines).
     * The seed default matches Accl's own, so harnessed suites see the
     * same RNG stream as a hand-rolled `Accl(sim, fabric)`.
     */
    explicit AcclHarness(int nodes = 4,
                         std::uint64_t seed = 0xACC1ACC1ull,
                         accl::AcclConfig cfg = {});

    /** Arbitrary topology/fabric shape. */
    AcclHarness(net::TopologyConfig tc, net::FabricConfig fc,
                accl::AcclConfig cfg = {},
                std::uint64_t seed = 0xACC1ACC1ull);

    /** All-GPU device list for the given nodes. */
    std::vector<accl::DeviceInfo> fullNodes(std::vector<NodeId> nodes) const;

    /** Communicator over every GPU of the given nodes. */
    CommId fullComm(const std::vector<NodeId> &nodes, JobId job = 1);

    /** Communicator over every GPU of nodes [0, nodes). */
    CommId fullComm(int nodes, JobId job = 1);
};

/** AcclHarness plus a started C4D master + collection agent. */
struct C4dHarness : AcclHarness
{
    c4d::C4dMaster master;
    c4d::C4Agent agent;

    explicit C4dHarness(c4d::C4dConfig cfg = fastC4dConfig(),
                        int nodes = 4,
                        Duration collectPeriod = seconds(1));

    /** Drive `remaining` back-to-back allreduces on a comm. */
    void pump(CommId comm, Bytes bytes, int remaining,
              std::vector<Duration> delays = {});
};

} // namespace c4::testutil

#endif // C4_TESTS_TESTUTIL_TESTUTIL_H
