#include "testutil/testutil.h"

namespace c4::testutil {

net::TopologyConfig
podConfig(int numNodes, int nodesPerSegment, int numSpines)
{
    net::TopologyConfig tc;
    tc.numNodes = numNodes;
    tc.nodesPerSegment = nodesPerSegment;
    tc.numSpines = numSpines;
    return tc;
}

net::TopologyConfig
flatConfig(int numNodes, int numSpines)
{
    return podConfig(numNodes, /*nodesPerSegment=*/1, numSpines);
}

net::FabricConfig
quietFabricConfig()
{
    net::FabricConfig fc;
    fc.congestionJitter = false;
    return fc;
}

c4d::C4dConfig
fastC4dConfig()
{
    c4d::C4dConfig cfg;
    cfg.evaluatePeriod = seconds(2);
    cfg.hangThreshold = seconds(20);
    return cfg;
}

train::JobConfig
smallJobConfig(JobId id, std::vector<NodeId> nodes)
{
    train::JobConfig jc;
    jc.id = id;
    jc.model = train::llama7b();
    jc.model.microbatchCompute = milliseconds(300);
    jc.parallel = {.tp = 8, .pp = 1, .dp = 2};
    jc.nodes = std::move(nodes);
    jc.initTime = seconds(5);
    jc.dpGroupsSimulated = 1;
    return jc;
}

net::PathRequest
makePathRequest(NodeId src, NodeId dst, std::uint32_t label, int spine,
                int rxPlane)
{
    net::PathRequest req;
    req.srcNode = src;
    req.srcNic = 0;
    req.dstNode = dst;
    req.dstNic = 0;
    req.txPlane = net::Plane::Left;
    req.spine = spine;
    req.rxPlane = rxPlane;
    req.flowLabel = label;
    return req;
}

accl::ConnContext
makeConnContext(int channel, int qp, NodeId src, NodeId dst)
{
    accl::ConnContext ctx;
    ctx.job = 1;
    ctx.comm = 1;
    ctx.channel = channel;
    ctx.qpIndex = qp;
    ctx.srcNode = src;
    ctx.srcNic = 0;
    ctx.dstNode = dst;
    ctx.dstNic = 0;
    return ctx;
}

std::vector<accl::DeviceInfo>
fullNodeDevices(const net::Topology &topo,
                const std::vector<NodeId> &nodes)
{
    std::vector<accl::DeviceInfo> devices;
    for (NodeId n : nodes) {
        for (int g = 0; g < topo.gpusPerNode(); ++g)
            devices.push_back(
                {n, static_cast<GpuId>(g), static_cast<NicId>(g)});
    }
    return devices;
}

FabricHarness::FabricHarness(net::TopologyConfig tc, net::FabricConfig fc)
    : topo(tc), fabric(sim, topo, fc)
{
}

net::PathRequest
FabricHarness::request(NodeId src, NodeId dst, std::uint32_t label,
                       int spine, int rxPlane) const
{
    return makePathRequest(src, dst, label, spine, rxPlane);
}

AcclHarness::AcclHarness(int nodes, std::uint64_t seed,
                         accl::AcclConfig cfg)
    : AcclHarness(flatConfig(nodes), quietFabricConfig(),
                  std::move(cfg), seed)
{
}

AcclHarness::AcclHarness(net::TopologyConfig tc, net::FabricConfig fc,
                         accl::AcclConfig cfg, std::uint64_t seed)
    : FabricHarness(tc, fc), lib(sim, fabric, std::move(cfg), seed)
{
}

std::vector<accl::DeviceInfo>
AcclHarness::fullNodes(std::vector<NodeId> nodes) const
{
    return fullNodeDevices(topo, nodes);
}

CommId
AcclHarness::fullComm(const std::vector<NodeId> &nodes, JobId job)
{
    return lib.createCommunicator(job, fullNodeDevices(topo, nodes));
}

CommId
AcclHarness::fullComm(int nodes, JobId job)
{
    std::vector<NodeId> ids;
    for (NodeId n = 0; n < nodes; ++n)
        ids.push_back(n);
    return fullComm(ids, job);
}

C4dHarness::C4dHarness(c4d::C4dConfig cfg, int nodes,
                       Duration collectPeriod)
    : AcclHarness(nodes), master(sim, cfg),
      agent(sim, lib.monitor(), master, collectPeriod)
{
    master.start();
    agent.start();
}

void
C4dHarness::pump(CommId comm, Bytes bytes, int remaining,
                 std::vector<Duration> delays)
{
    if (remaining <= 0)
        return;
    lib.postCollective(
        comm, accl::CollOp::AllReduce, bytes,
        [this, comm, bytes, remaining,
         delays](const accl::CollectiveResult &) {
            pump(comm, bytes, remaining - 1, delays);
        },
        delays);
}

} // namespace c4::testutil
