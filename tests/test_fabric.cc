/**
 * @file
 * Unit tests for the fluid fabric: max-min fair sharing, completions,
 * stalls, link failures with ECMP reroute, and the congestion overlay.
 */

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "testutil/testutil.h"

namespace c4::net {
namespace {

using Harness = testutil::FabricHarness;
using testutil::podConfig;

TEST(Fabric, SingleFlowRunsAtPortRate)
{
    Harness h;
    Time end_time = 0;
    h.fabric.startFlow(h.request(0, 4), mib(250),
                       [&](const FlowEnd &end) {
                           end_time = end.endTime;
                           // 250 MiB at 200 Gbps ~= 10.49 ms
                           EXPECT_NEAR(toGbps(end.achievedRate()), 200.0,
                                       1.0);
                       });
    h.sim.run();
    EXPECT_GT(end_time, 0);
    EXPECT_EQ(h.fabric.totalFlowsCompleted(), 1u);
}

TEST(Fabric, TwoFlowsOnSamePortSplitFairly)
{
    Harness h;
    int done = 0;
    // Same source NIC/plane -> share the 200 Gbps host uplink.
    for (std::uint32_t i = 0; i < 2; ++i) {
        h.fabric.startFlow(h.request(0, 4 + static_cast<NodeId>(i), i),
                           mib(100), [&](const FlowEnd &end) {
                               ++done;
                               EXPECT_NEAR(toGbps(end.achievedRate()),
                                           100.0, 2.0);
                           });
    }
    h.sim.run();
    EXPECT_EQ(done, 2);
}

TEST(Fabric, FlowRateQueryMatchesAllocation)
{
    Harness h;
    const FlowId f = h.fabric.startFlow(h.request(0, 4), gib(1), nullptr);
    EXPECT_NEAR(toGbps(h.fabric.flowRate(f)), 200.0, 0.1);
    EXPECT_EQ(h.fabric.activeFlowCount(), 1u);
}

TEST(Fabric, UnequalShareWhenOneFlowIsElsewhereBottlenecked)
{
    Harness h;
    // Flow A: node0 -> node4 via spine 0. Flow B: node1 -> node4 via
    // spine 0 as well, but B's host uplink is degraded to 50 Gbps.
    h.fabric.setLinkCapacityScale(
        h.topo.hostUplink(1, 0, Plane::Left), 0.25);
    const FlowId a = h.fabric.startFlow(
        h.request(0, 4, 1, /*spine=*/0, planeIndex(Plane::Left)),
        gib(1), nullptr);
    const FlowId b = h.fabric.startFlow(
        h.request(1, 4, 2, /*spine=*/0, planeIndex(Plane::Left)),
        gib(1), nullptr);
    // Max-min: B gets 50, A picks up the remaining 150 of the trunk...
    // but both land on node4's single 200 Gbps downlink, so A gets 150.
    EXPECT_NEAR(toGbps(h.fabric.flowRate(b)), 50.0, 1.0);
    EXPECT_NEAR(toGbps(h.fabric.flowRate(a)), 150.0, 1.0);
}

TEST(Fabric, CompletionTimesAreBandwidthAccurate)
{
    Harness h;
    Time done_at = 0;
    h.fabric.startFlow(h.request(0, 4), mib(100),
                       [&](const FlowEnd &end) { done_at = end.endTime; });
    h.sim.run();
    // 100 MiB * 8 / 200 Gbps = 4.194 ms
    EXPECT_NEAR(toMilliseconds(done_at), 4.194, 0.05);
}

TEST(Fabric, AbortSuppressesCallback)
{
    Harness h;
    bool fired = false;
    const FlowId f = h.fabric.startFlow(h.request(0, 4), mib(10),
                                        [&](const FlowEnd &) {
                                            fired = true;
                                        });
    EXPECT_TRUE(h.fabric.abortFlow(f));
    EXPECT_FALSE(h.fabric.abortFlow(f));
    h.sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(h.fabric.totalFlowsCompleted(), 0u);
}

TEST(Fabric, StallAndResume)
{
    Harness h;
    bool fired = false;
    const FlowId f = h.fabric.startFlow(h.request(0, 4), mib(10),
                                        [&](const FlowEnd &) {
                                            fired = true;
                                        });
    h.fabric.stallFlow(f);
    h.sim.run(seconds(10));
    EXPECT_FALSE(fired);
    EXPECT_DOUBLE_EQ(h.fabric.flowRate(f), 0.0);

    h.fabric.resumeFlow(f);
    h.sim.run();
    EXPECT_TRUE(fired);
}

TEST(Fabric, ProgressPreservedAcrossReallocation)
{
    Harness h;
    Time done_at = 0;
    // One flow alone for 2 ms, then a competitor arrives.
    h.fabric.startFlow(h.request(0, 4, 1), mib(100),
                       [&](const FlowEnd &end) { done_at = end.endTime; });
    h.sim.scheduleAt(milliseconds(2), [&] {
        h.fabric.startFlow(h.request(0, 5, 2), mib(100), nullptr);
    });
    h.sim.run();
    // First 2 ms at 200 Gbps moves ~47.7 MiB; remaining ~52.3 MiB at
    // 100 Gbps takes ~4.39 ms -> total ~6.39 ms.
    EXPECT_NEAR(toMilliseconds(done_at), 6.39, 0.1);
}

TEST(Fabric, LinkDownStallsWhenNoAlternative)
{
    Harness h;
    bool fired = false;
    const FlowId f = h.fabric.startFlow(h.request(0, 4), mib(10),
                                        [&](const FlowEnd &) {
                                            fired = true;
                                        });
    h.fabric.setLinkUp(h.topo.hostUplink(0, 0, Plane::Left), false);
    h.sim.run(seconds(1));
    EXPECT_FALSE(fired);
    EXPECT_DOUBLE_EQ(h.fabric.flowRate(f), 0.0);

    // Restoration re-resolves the route and the flow completes.
    h.fabric.setLinkUp(h.topo.hostUplink(0, 0, Plane::Left), true);
    h.sim.run();
    EXPECT_TRUE(fired);
}

TEST(Fabric, TrunkFailureReroutesViaSurvivingSpines)
{
    Harness h;
    bool fired = false;
    const FlowId f =
        h.fabric.startFlow(h.request(0, 4), gib(1),
                           [&](const FlowEnd &) { fired = true; });
    const Route *route = h.fabric.flowRoute(f);
    ASSERT_NE(route, nullptr);
    const int original_spine = route->spine;
    ASSERT_GE(original_spine, 0);

    const int tx_leaf = h.topo.leafIndex(0, Plane::Left);
    h.fabric.setLinkUp(h.topo.trunkUplink(tx_leaf, original_spine),
                       false);
    route = h.fabric.flowRoute(f);
    ASSERT_NE(route, nullptr);
    ASSERT_TRUE(route->valid());
    EXPECT_NE(route->spine, original_spine);

    h.sim.run();
    EXPECT_TRUE(fired);
}

TEST(Fabric, LinkThroughputTracksAllocations)
{
    Harness h;
    const LinkId up = h.topo.hostUplink(0, 0, Plane::Left);
    EXPECT_DOUBLE_EQ(h.fabric.linkThroughput(up), 0.0);
    h.fabric.startFlow(h.request(0, 4), gib(10), nullptr);
    EXPECT_NEAR(toGbps(h.fabric.linkThroughput(up)), 200.0, 0.1);
    EXPECT_TRUE(h.fabric.linkCongested(up));
}

TEST(Fabric, DemandRatioReflectsOverload)
{
    Harness h;
    // Two full-rate flows forced onto one spine trunk.
    h.fabric.startFlow(h.request(0, 4, 1, 0, planeIndex(Plane::Left)),
                       gib(1), nullptr);
    h.fabric.startFlow(h.request(1, 5, 2, 0, planeIndex(Plane::Left)),
                       gib(1), nullptr);
    const int tx_leaf = h.topo.leafIndex(0, Plane::Left);
    const LinkId trunk = h.topo.trunkUplink(tx_leaf, 0);
    EXPECT_NEAR(h.fabric.linkDemandRatio(trunk), 2.0, 0.01);
    EXPECT_TRUE(h.fabric.linkCongested(trunk));
}

TEST(Fabric, CnpRateAppearsUnderCongestion)
{
    FabricConfig fc;
    fc.congestionJitter = true;
    fc.cnpRatePerOverload = 15000.0;
    Harness h(podConfig(), fc);
    // Two flows from the same NIC pinned through one trunk: demand 2x.
    h.fabric.startFlow(h.request(0, 4, 1, 0, planeIndex(Plane::Left)),
                       gib(10), nullptr);
    h.fabric.startFlow(h.request(0, 5, 2, 0, planeIndex(Plane::Left)),
                       gib(10), nullptr);
    const double cnp = h.fabric.nicCnpRate(0, 0);
    EXPECT_GT(cnp, 5000.0);
    EXPECT_LT(cnp, 50000.0);
}

TEST(Fabric, NoCnpWithoutCongestion)
{
    Harness h;
    h.fabric.startFlow(h.request(0, 4), gib(1), nullptr);
    // A single flow on its own path saturates links but demand == 1.
    EXPECT_DOUBLE_EQ(h.fabric.nicCnpRate(0, 0), 0.0);
}

TEST(Fabric, JitterReducesRatesSlightly)
{
    FabricConfig fc;
    fc.congestionJitter = true;
    fc.jitterMax = 0.06;
    Harness h(podConfig(), fc);
    const FlowId a = h.fabric.startFlow(
        h.request(0, 4, 1, 0, planeIndex(Plane::Left)), gib(1), nullptr);
    h.fabric.startFlow(h.request(1, 5, 2, 0, planeIndex(Plane::Left)),
                       gib(1), nullptr);
    const double rate = toGbps(h.fabric.flowRate(a));
    EXPECT_LE(rate, 100.0 + 1e-9);
    EXPECT_GE(rate, 100.0 * (1.0 - fc.jitterMax) - 1e-9);
}

TEST(Fabric, ManyFlowsAllComplete)
{
    Harness h;
    int done = 0;
    std::uint32_t label = 0;
    for (NodeId src = 0; src < 8; ++src) {
        for (int i = 0; i < 4; ++i) {
            PathRequest req = h.request(src, 8 + (src + i) % 8, ++label);
            req.srcNic = i % h.topo.nicsPerNode();
            h.fabric.startFlow(req, mib(64),
                               [&](const FlowEnd &) { ++done; });
        }
    }
    h.sim.run();
    EXPECT_EQ(done, 32);
    EXPECT_EQ(h.fabric.activeFlowCount(), 0u);
}

TEST(Fabric, ZeroAndTinyFlows)
{
    Harness h;
    int done = 0;
    h.fabric.startFlow(h.request(0, 4), 1, [&](const FlowEnd &end) {
        ++done;
        EXPECT_EQ(end.bytes, 1);
    });
    h.fabric.startFlow(h.request(0, 5, 2), 100,
                       [&](const FlowEnd &) { ++done; });
    h.sim.run();
    EXPECT_EQ(done, 2);
}

} // namespace
} // namespace c4::net
