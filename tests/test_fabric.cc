/**
 * @file
 * Unit tests for the fluid fabric: max-min fair sharing, completions,
 * stalls, link failures with ECMP reroute, and the congestion overlay.
 */

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "testutil/testutil.h"

namespace c4::net {
namespace {

using Harness = testutil::FabricHarness;
using testutil::podConfig;

TEST(Fabric, SingleFlowRunsAtPortRate)
{
    Harness h;
    Time end_time = 0;
    h.fabric.startFlow(h.request(0, 4), mib(250),
                       [&](const FlowEnd &end) {
                           end_time = end.endTime;
                           // 250 MiB at 200 Gbps ~= 10.49 ms
                           EXPECT_NEAR(toGbps(end.achievedRate()), 200.0,
                                       1.0);
                       });
    h.sim.run();
    EXPECT_GT(end_time, 0);
    EXPECT_EQ(h.fabric.totalFlowsCompleted(), 1u);
}

TEST(Fabric, TwoFlowsOnSamePortSplitFairly)
{
    Harness h;
    int done = 0;
    // Same source NIC/plane -> share the 200 Gbps host uplink.
    for (std::uint32_t i = 0; i < 2; ++i) {
        h.fabric.startFlow(h.request(0, 4 + static_cast<NodeId>(i), i),
                           mib(100), [&](const FlowEnd &end) {
                               ++done;
                               EXPECT_NEAR(toGbps(end.achievedRate()),
                                           100.0, 2.0);
                           });
    }
    h.sim.run();
    EXPECT_EQ(done, 2);
}

TEST(Fabric, FlowRateQueryMatchesAllocation)
{
    Harness h;
    const FlowId f = h.fabric.startFlow(h.request(0, 4), gib(1), nullptr);
    EXPECT_NEAR(toGbps(h.fabric.flowRate(f)), 200.0, 0.1);
    EXPECT_EQ(h.fabric.activeFlowCount(), 1u);
}

TEST(Fabric, UnequalShareWhenOneFlowIsElsewhereBottlenecked)
{
    Harness h;
    // Flow A: node0 -> node4 via spine 0. Flow B: node1 -> node4 via
    // spine 0 as well, but B's host uplink is degraded to 50 Gbps.
    h.fabric.setLinkCapacityScale(
        h.topo.hostUplink(1, 0, Plane::Left), 0.25);
    const FlowId a = h.fabric.startFlow(
        h.request(0, 4, 1, /*spine=*/0, planeIndex(Plane::Left)),
        gib(1), nullptr);
    const FlowId b = h.fabric.startFlow(
        h.request(1, 4, 2, /*spine=*/0, planeIndex(Plane::Left)),
        gib(1), nullptr);
    // Max-min: B gets 50, A picks up the remaining 150 of the trunk...
    // but both land on node4's single 200 Gbps downlink, so A gets 150.
    EXPECT_NEAR(toGbps(h.fabric.flowRate(b)), 50.0, 1.0);
    EXPECT_NEAR(toGbps(h.fabric.flowRate(a)), 150.0, 1.0);
}

TEST(Fabric, CompletionTimesAreBandwidthAccurate)
{
    Harness h;
    Time done_at = 0;
    h.fabric.startFlow(h.request(0, 4), mib(100),
                       [&](const FlowEnd &end) { done_at = end.endTime; });
    h.sim.run();
    // 100 MiB * 8 / 200 Gbps = 4.194 ms
    EXPECT_NEAR(toMilliseconds(done_at), 4.194, 0.05);
}

TEST(Fabric, AbortSuppressesCallback)
{
    Harness h;
    bool fired = false;
    const FlowId f = h.fabric.startFlow(h.request(0, 4), mib(10),
                                        [&](const FlowEnd &) {
                                            fired = true;
                                        });
    EXPECT_TRUE(h.fabric.abortFlow(f));
    EXPECT_FALSE(h.fabric.abortFlow(f));
    h.sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(h.fabric.totalFlowsCompleted(), 0u);
}

TEST(Fabric, StallAndResume)
{
    Harness h;
    bool fired = false;
    const FlowId f = h.fabric.startFlow(h.request(0, 4), mib(10),
                                        [&](const FlowEnd &) {
                                            fired = true;
                                        });
    h.fabric.stallFlow(f);
    h.sim.run(seconds(10));
    EXPECT_FALSE(fired);
    EXPECT_DOUBLE_EQ(h.fabric.flowRate(f), 0.0);

    h.fabric.resumeFlow(f);
    h.sim.run();
    EXPECT_TRUE(fired);
}

TEST(Fabric, ProgressPreservedAcrossReallocation)
{
    Harness h;
    Time done_at = 0;
    // One flow alone for 2 ms, then a competitor arrives.
    h.fabric.startFlow(h.request(0, 4, 1), mib(100),
                       [&](const FlowEnd &end) { done_at = end.endTime; });
    h.sim.scheduleAt(milliseconds(2), [&] {
        h.fabric.startFlow(h.request(0, 5, 2), mib(100), nullptr);
    });
    h.sim.run();
    // First 2 ms at 200 Gbps moves ~47.7 MiB; remaining ~52.3 MiB at
    // 100 Gbps takes ~4.39 ms -> total ~6.39 ms.
    EXPECT_NEAR(toMilliseconds(done_at), 6.39, 0.1);
}

TEST(Fabric, LinkDownStallsWhenNoAlternative)
{
    Harness h;
    bool fired = false;
    const FlowId f = h.fabric.startFlow(h.request(0, 4), mib(10),
                                        [&](const FlowEnd &) {
                                            fired = true;
                                        });
    h.fabric.setLinkUp(h.topo.hostUplink(0, 0, Plane::Left), false);
    h.sim.run(seconds(1));
    EXPECT_FALSE(fired);
    EXPECT_DOUBLE_EQ(h.fabric.flowRate(f), 0.0);

    // Restoration re-resolves the route and the flow completes.
    h.fabric.setLinkUp(h.topo.hostUplink(0, 0, Plane::Left), true);
    h.sim.run();
    EXPECT_TRUE(fired);
}

TEST(Fabric, TrunkFailureReroutesViaSurvivingSpines)
{
    Harness h;
    bool fired = false;
    const FlowId f =
        h.fabric.startFlow(h.request(0, 4), gib(1),
                           [&](const FlowEnd &) { fired = true; });
    const Route *route = h.fabric.flowRoute(f);
    ASSERT_NE(route, nullptr);
    const int original_spine = route->spine;
    ASSERT_GE(original_spine, 0);

    const int tx_leaf = h.topo.leafIndex(0, Plane::Left);
    h.fabric.setLinkUp(h.topo.trunkUplink(tx_leaf, original_spine),
                       false);
    route = h.fabric.flowRoute(f);
    ASSERT_NE(route, nullptr);
    ASSERT_TRUE(route->valid());
    EXPECT_NE(route->spine, original_spine);

    h.sim.run();
    EXPECT_TRUE(fired);
}

TEST(Fabric, LinkThroughputTracksAllocations)
{
    Harness h;
    const LinkId up = h.topo.hostUplink(0, 0, Plane::Left);
    EXPECT_DOUBLE_EQ(h.fabric.linkThroughput(up), 0.0);
    h.fabric.startFlow(h.request(0, 4), gib(10), nullptr);
    EXPECT_NEAR(toGbps(h.fabric.linkThroughput(up)), 200.0, 0.1);
    EXPECT_TRUE(h.fabric.linkCongested(up));
}

TEST(Fabric, DemandRatioReflectsOverload)
{
    Harness h;
    // Two full-rate flows forced onto one spine trunk.
    h.fabric.startFlow(h.request(0, 4, 1, 0, planeIndex(Plane::Left)),
                       gib(1), nullptr);
    h.fabric.startFlow(h.request(1, 5, 2, 0, planeIndex(Plane::Left)),
                       gib(1), nullptr);
    const int tx_leaf = h.topo.leafIndex(0, Plane::Left);
    const LinkId trunk = h.topo.trunkUplink(tx_leaf, 0);
    EXPECT_NEAR(h.fabric.linkDemandRatio(trunk), 2.0, 0.01);
    EXPECT_TRUE(h.fabric.linkCongested(trunk));
}

TEST(Fabric, CnpRateAppearsUnderCongestion)
{
    FabricConfig fc;
    fc.congestionJitter = true;
    fc.cnpRatePerOverload = 15000.0;
    Harness h(podConfig(), fc);
    // Two flows from the same NIC pinned through one trunk: demand 2x.
    h.fabric.startFlow(h.request(0, 4, 1, 0, planeIndex(Plane::Left)),
                       gib(10), nullptr);
    h.fabric.startFlow(h.request(0, 5, 2, 0, planeIndex(Plane::Left)),
                       gib(10), nullptr);
    const double cnp = h.fabric.nicCnpRate(0, 0);
    EXPECT_GT(cnp, 5000.0);
    EXPECT_LT(cnp, 50000.0);
}

TEST(Fabric, NoCnpWithoutCongestion)
{
    Harness h;
    h.fabric.startFlow(h.request(0, 4), gib(1), nullptr);
    // A single flow on its own path saturates links but demand == 1.
    EXPECT_DOUBLE_EQ(h.fabric.nicCnpRate(0, 0), 0.0);
}

TEST(Fabric, JitterReducesRatesSlightly)
{
    FabricConfig fc;
    fc.congestionJitter = true;
    fc.jitterMax = 0.06;
    Harness h(podConfig(), fc);
    const FlowId a = h.fabric.startFlow(
        h.request(0, 4, 1, 0, planeIndex(Plane::Left)), gib(1), nullptr);
    h.fabric.startFlow(h.request(1, 5, 2, 0, planeIndex(Plane::Left)),
                       gib(1), nullptr);
    const double rate = toGbps(h.fabric.flowRate(a));
    EXPECT_LE(rate, 100.0 + 1e-9);
    EXPECT_GE(rate, 100.0 * (1.0 - fc.jitterMax) - 1e-9);
}

TEST(Fabric, ManyFlowsAllComplete)
{
    Harness h;
    int done = 0;
    std::uint32_t label = 0;
    for (NodeId src = 0; src < 8; ++src) {
        for (int i = 0; i < 4; ++i) {
            PathRequest req = h.request(src, 8 + (src + i) % 8, ++label);
            req.srcNic = i % h.topo.nicsPerNode();
            h.fabric.startFlow(req, mib(64),
                               [&](const FlowEnd &) { ++done; });
        }
    }
    h.sim.run();
    EXPECT_EQ(done, 32);
    EXPECT_EQ(h.fabric.activeFlowCount(), 0u);
}

TEST(Fabric, ZeroAndTinyFlows)
{
    Harness h;
    int done = 0;
    h.fabric.startFlow(h.request(0, 4), 1, [&](const FlowEnd &end) {
        ++done;
        EXPECT_EQ(end.bytes, 1);
    });
    h.fabric.startFlow(h.request(0, 5, 2), 100,
                       [&](const FlowEnd &) { ++done; });
    h.sim.run();
    EXPECT_EQ(done, 2);
}

// ---------------------------------------------------------------------
// Incremental recompute: shadow equivalence against the full rebuild
// ---------------------------------------------------------------------

/**
 * Two fabrics over identical topologies: one incremental (the
 * default), one forced to rebuild every flow (the historical
 * allocator). Every mutation is applied to both; equal() then
 * compares the complete observable state. Both draw their stochastic
 * overlay from the same global-order RNG pass, so the comparison is
 * exact, not approximate.
 */
struct ShadowPair
{
    Simulator simA, simB;
    Topology topoA, topoB;
    Fabric incr, full;
    std::vector<FlowId> ids; // admission order; identical in both
    Time now = 0;

    explicit ShadowPair(FabricConfig fc = testutil::quietFabricConfig(),
                        TopologyConfig tc = podConfig())
        : topoA(tc), topoB(tc),
          incr(simA, topoA, withIncremental(fc, true)),
          full(simB, topoB, withIncremental(fc, false))
    {
    }

    static FabricConfig
    withIncremental(FabricConfig fc, bool on)
    {
        fc.incrementalRecompute = on;
        return fc;
    }

    FlowId
    start(const PathRequest &req, Bytes bytes)
    {
        const FlowId a = incr.startFlow(req, bytes, nullptr);
        const FlowId b = full.startFlow(req, bytes, nullptr);
        EXPECT_EQ(a, b);
        ids.push_back(a);
        return a;
    }

    void
    startExplicit(Route route, Bytes bytes)
    {
        Route copy = route;
        const FlowId a =
            incr.startFlowOnRoute(std::move(route), bytes, nullptr);
        const FlowId b =
            full.startFlowOnRoute(std::move(copy), bytes, nullptr);
        EXPECT_EQ(a, b);
        ids.push_back(a);
    }

    void
    advance(Duration dt)
    {
        now += dt;
        simA.run(now);
        simB.run(now);
    }

    /** Compare every observable: flow rates and remaining bytes, link
     * throughput/congestion/demand, per-NIC CNP aggregates. */
    void
    equal()
    {
        ASSERT_EQ(incr.activeFlowCount(), full.activeFlowCount());
        for (FlowId id : ids) {
            ASSERT_EQ(incr.flowActive(id), full.flowActive(id))
                << "flow " << id;
            if (!incr.flowActive(id))
                continue;
            EXPECT_DOUBLE_EQ(incr.flowRate(id), full.flowRate(id))
                << "flow " << id;
            EXPECT_EQ(incr.flowRemaining(id), full.flowRemaining(id))
                << "flow " << id;
        }
        for (std::size_t l = 0; l < topoA.numLinks(); ++l) {
            const LinkId id = static_cast<LinkId>(l);
            EXPECT_DOUBLE_EQ(incr.linkThroughput(id),
                             full.linkThroughput(id))
                << "link " << id;
            EXPECT_EQ(incr.linkCongested(id), full.linkCongested(id))
                << "link " << id;
            EXPECT_DOUBLE_EQ(incr.linkDemandRatio(id),
                             full.linkDemandRatio(id))
                << "link " << id;
        }
        for (NodeId n = 0; n < topoA.numNodes(); ++n)
            for (NicId k = 0; k < topoA.nicsPerNode(); ++k)
                EXPECT_DOUBLE_EQ(incr.nicCnpRate(n, k),
                                 full.nicCnpRate(n, k))
                    << "nic " << n << "/" << k;
    }
};

/** Randomized event soup driving both allocators in lockstep. */
void
runShadowEquivalence(std::uint64_t seed, FabricConfig fc)
{
    ShadowPair p(fc);
    Rng ev(seed);
    PathSelector sel(p.topoA);
    std::uint32_t label = 0;

    const int trunks = p.topoA.numLeaves() * p.topoA.numSpines();
    auto randomTrunk = [&] {
        const int leaf =
            static_cast<int>(ev.uniformInt(0, p.topoA.numLeaves() - 1));
        const int spine =
            static_cast<int>(ev.uniformInt(0, p.topoA.numSpines() - 1));
        return p.topoA.trunkUplink(leaf, spine);
    };
    (void)trunks;

    for (int step = 0; step < 150; ++step) {
        const double roll = ev.uniform();
        if (roll < 0.35) {
            PathRequest req;
            req.srcNode = static_cast<NodeId>(
                ev.uniformInt(0, p.topoA.numNodes() / 2 - 1));
            req.dstNode = static_cast<NodeId>(ev.uniformInt(
                p.topoA.numNodes() / 2, p.topoA.numNodes() - 1));
            req.srcNic = static_cast<NicId>(
                ev.uniformInt(0, p.topoA.nicsPerNode() - 1));
            req.dstNic = req.srcNic;
            req.flowLabel = ++label;
            p.start(req, mib(static_cast<Bytes>(
                             ev.uniformInt(1, 512))));
        } else if (roll < 0.45 && !p.ids.empty()) {
            const FlowId id = p.ids[static_cast<std::size_t>(
                ev.uniformInt(0, static_cast<std::int64_t>(
                                     p.ids.size() - 1)))];
            EXPECT_EQ(p.incr.abortFlow(id), p.full.abortFlow(id));
        } else if (roll < 0.55 && !p.ids.empty()) {
            const FlowId id = p.ids[static_cast<std::size_t>(
                ev.uniformInt(0, static_cast<std::int64_t>(
                                     p.ids.size() - 1)))];
            if (ev.chance(0.5)) {
                p.incr.stallFlow(id);
                p.full.stallFlow(id);
            } else {
                p.incr.resumeFlow(id);
                p.full.resumeFlow(id);
            }
        } else if (roll < 0.7) {
            const LinkId id = randomTrunk();
            const bool up = !p.topoA.link(id).up;
            p.incr.setLinkUp(id, up);
            p.full.setLinkUp(id, up);
        } else if (roll < 0.8) {
            const LinkId id = randomTrunk();
            const double scale = ev.uniform(0.3, 1.0);
            p.incr.setLinkCapacityScale(id, scale);
            p.full.setLinkCapacityScale(id, scale);
        } else if (roll < 0.87) {
            // An explicit-route (prober-style) flow on whatever path
            // is currently healthy for a random pair. The NICs must be
            // real ones: PathSelector::select indexes host links by
            // (node, nic) and asserts on kInvalidId.
            PathRequest req;
            req.srcNode = 0;
            req.dstNode = static_cast<NodeId>(
                ev.uniformInt(4, p.topoA.numNodes() - 1));
            req.srcNic = static_cast<NicId>(
                ev.uniformInt(0, p.topoA.nicsPerNode() - 1));
            req.dstNic = req.srcNic;
            req.flowLabel = ++label;
            p.startExplicit(sel.select(req),
                            mib(static_cast<Bytes>(
                                ev.uniformInt(1, 64))));
        } else {
            p.advance(microseconds(ev.uniformInt(10, 2000)));
        }
        p.equal();
    }
    // Drain: restore all trunks and let the survivors finish.
    for (int leaf = 0; leaf < p.topoA.numLeaves(); ++leaf)
        for (int s = 0; s < p.topoA.numSpines(); ++s) {
            const LinkId id = p.topoA.trunkUplink(leaf, s);
            if (!p.topoA.link(id).up) {
                p.incr.setLinkUp(id, true);
                p.full.setLinkUp(id, true);
            }
        }
    p.advance(seconds(60));
    p.equal();
    EXPECT_EQ(p.incr.totalFlowsCompleted(),
              p.full.totalFlowsCompleted());
}

TEST(FabricIncremental, MatchesFullRebuildQuietSeed1)
{
    runShadowEquivalence(0xA11CE001, testutil::quietFabricConfig());
}

TEST(FabricIncremental, MatchesFullRebuildQuietSeed2)
{
    runShadowEquivalence(0xA11CE002, testutil::quietFabricConfig());
}

TEST(FabricIncremental, MatchesFullRebuildWithJitterAndCnpNoise)
{
    // Jitter + CNP noise on: the stochastic overlay must consume the
    // RNG stream in the same order in both modes, so even the noisy
    // state compares exactly.
    runShadowEquivalence(0xA11CE003, FabricConfig{});
}

TEST(FabricIncremental, RefillIsAtLeastFiveTimesCheaperThanRebuild)
{
    // The bench/golden locks exact counts; this is the in-tree floor.
    auto run = [](bool incremental) {
        net::TopologyConfig tc;
        tc.numNodes = 64;
        tc.nodesPerSegment = 4;
        Topology topo(tc);
        Simulator sim;
        FabricConfig fc = testutil::quietFabricConfig();
        fc.incrementalRecompute = incremental;
        Fabric fabric(sim, topo, fc);
        std::uint32_t label = 0;
        for (int i = 0; i < 256; ++i) {
            PathRequest req;
            req.srcNode = i % 32;
            req.srcNic = i % 8;
            req.dstNode = 32 + (i % 32);
            req.dstNic = i % 8;
            req.flowLabel = ++label;
            fabric.startFlow(req, gib(100), nullptr);
        }
        (void)fabric.flowRate(1);
        const std::uint64_t before = fabric.recomputeOpsTotal();
        for (int r = 0; r < 20; ++r) {
            fabric.setLinkUp(topo.trunkUplink(0, 0), false);
            (void)fabric.linkThroughput(0);
            fabric.setLinkUp(topo.trunkUplink(0, 0), true);
            (void)fabric.linkThroughput(0);
        }
        return fabric.recomputeOpsTotal() - before;
    };
    const std::uint64_t full = run(false);
    const std::uint64_t incr = run(true);
    EXPECT_GE(full, 5 * incr)
        << "full=" << full << " incr=" << incr;
}

TEST(FabricIncremental, CoalesceWindowBatchesLinkEvents)
{
    net::FabricConfig fc = testutil::quietFabricConfig();
    fc.coalesceWindow = milliseconds(1);
    Harness h(podConfig(), fc);
    std::uint32_t label = 0;
    for (NodeId src = 0; src < 4; ++src)
        h.fabric.startFlow(h.request(src, 8 + src, ++label), gib(10),
                           nullptr);
    (void)h.fabric.flowRate(1); // settle admission
    const std::uint64_t before = h.fabric.reallocationCount();

    // A storm of six link events at the same instant: one deferred
    // recompute, not six.
    for (int s = 0; s < 3; ++s)
        h.fabric.setLinkUp(h.topo.trunkUplink(0, s), false);
    for (int s = 0; s < 3; ++s)
        h.fabric.setLinkUp(h.topo.trunkUplink(1, s), false);
    h.sim.run(h.sim.now() + milliseconds(2));
    EXPECT_EQ(h.fabric.reallocationCount(), before + 1);

    // Queries force consistency even inside the window.
    h.fabric.setLinkUp(h.topo.trunkUplink(0, 0), true);
    EXPECT_GE(h.fabric.flowRate(1), 0.0);
    EXPECT_EQ(h.fabric.reallocationCount(), before + 2);
}

// ---------------------------------------------------------------------
// Regressions: recovery rebalance, overflow clamp, jitter bias, bounds
// ---------------------------------------------------------------------

TEST(Fabric, LinkRestoreRebalancesFlowsReroutedDuringOutage)
{
    Harness h;
    // Enough flows from one segment that several hash across spine 0.
    std::vector<FlowId> flows;
    std::uint32_t label = 0;
    for (int i = 0; i < 16; ++i) {
        PathRequest req = h.request(i % 4, 8 + i % 4, ++label);
        req.srcNic = i % h.topo.nicsPerNode();
        req.dstNic = req.srcNic;
        flows.push_back(h.fabric.startFlow(req, gib(100), nullptr));
    }
    (void)h.fabric.flowRate(flows.front());
    std::vector<std::vector<LinkId>> before;
    for (FlowId f : flows)
        before.push_back(h.fabric.flowRoute(f)->links);

    // Outage moves everything off spine 0; recovery must rebalance
    // every request-backed flow to its deterministic pre-outage path,
    // not only the ones that lost their route entirely.
    const LinkId trunk = h.topo.trunkUplink(0, 0);
    h.fabric.setLinkUp(trunk, false);
    h.fabric.setLinkUp(trunk, true);
    for (std::size_t i = 0; i < flows.size(); ++i)
        EXPECT_EQ(h.fabric.flowRoute(flows[i])->links, before[i])
            << "flow " << flows[i];
}

TEST(Fabric, NearZeroRateDoesNotOverflowCompletionTime)
{
    // A capacity so small the completion lands beyond the int64
    // nanosecond horizon: the old code cast (secs * 1e9) to Duration,
    // which was UB and in practice scheduled completion at now + 1.
    net::TopologyConfig tc = podConfig();
    tc.portBandwidth = 1e-3; // 1 millibit/s
    Harness h(tc);
    bool fired = false;
    const FlowId f = h.fabric.startFlow(
        h.request(0, 4), gib(1), [&](const FlowEnd &) { fired = true; });
    EXPECT_GT(h.fabric.flowRate(f), 0.0);
    h.sim.run(seconds(3600));
    EXPECT_FALSE(fired); // effectively stalled, not instantly done
    EXPECT_TRUE(h.fabric.flowActive(f));
    EXPECT_EQ(h.fabric.flowRemaining(f), gib(1));
}

TEST(Fabric, ExplicitRouteFlowsCarryDistinctJitterBias)
{
    // Two probers on the same congested uplink. Their DCQCN bias must
    // derive from the flow id (they share flowLabel == 0), so their
    // *mean* rates over many re-allocations separate; with the old
    // shared bias the means coincide to within RNG noise.
    net::FabricConfig fc; // jitter ON
    Harness h(podConfig(), fc);
    PathSelector sel(h.topo);
    const Route route = sel.select(h.request(0, 4));
    const FlowId f1 =
        h.fabric.startFlowOnRoute(route, gib(1000), nullptr); // id 1
    h.fabric.startFlow(h.request(1, 5, 7), gib(1000), nullptr); // id 2
    const FlowId f3 =
        h.fabric.startFlowOnRoute(route, gib(1000), nullptr); // id 3

    const int rounds = 400;
    double m1 = 0.0, m3 = 0.0;
    const LinkId far = h.topo.trunkUplink(7, 7); // unrelated trunk
    for (int r = 0; r < rounds; ++r) {
        h.fabric.setLinkUp(far, r % 2 == 0 ? false : true);
        m1 += h.fabric.flowRate(f1);
        m3 += h.fabric.flowRate(f3);
    }
    m1 /= rounds;
    m3 /= rounds;
    // Expected separation: 0.5 * jitterMax * |bias1 - bias3| * base,
    // with base = 100 Gbps and bias values ~0.35 vs ~0.72 for flow
    // ids 1 and 3 — about 1.1 Gbps. Mean RNG noise over 400 rounds is
    // ~0.05 Gbps, so a 0.5 Gbps floor is a safe discriminator.
    EXPECT_GT(m1 - m3, gbps(0.5))
        << "mean rates: " << toGbps(m1) << " vs " << toGbps(m3);
}

TEST(Fabric, OutOfRangeLinkQueriesAreSafe)
{
    Harness h;
    h.fabric.startFlow(h.request(0, 4), gib(1), nullptr);
    const LinkId past =
        static_cast<LinkId>(h.topo.numLinks());
    EXPECT_DOUBLE_EQ(h.fabric.linkThroughput(-1), 0.0);
    EXPECT_DOUBLE_EQ(h.fabric.linkThroughput(past), 0.0);
    EXPECT_FALSE(h.fabric.linkCongested(-1));
    EXPECT_FALSE(h.fabric.linkCongested(past + 1000));
    EXPECT_DOUBLE_EQ(h.fabric.linkDemandRatio(-5), 0.0);
    EXPECT_DOUBLE_EQ(h.fabric.linkDemandRatio(past), 0.0);
}

} // namespace
} // namespace c4::net
