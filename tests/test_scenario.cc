/**
 * @file
 * Scenario engine: spec validation, registry lookup, runner
 * resolution, sink output, and — the load-bearing property — that the
 * same spec + seed produces byte-identical CSV whether the trial sweep
 * runs on one worker thread or several.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "scenario/workload.h"

using namespace c4;
using namespace c4::scenario;

namespace {

/** A cheap allreduce-only spec (seconds-scale, fully declarative). */
ScenarioSpec
tinyAllreduce(const char *variant, bool c4p)
{
    ScenarioSpec spec;
    spec.variant = variant;
    spec.features.c4p = c4p;
    AllreduceGroupSpec g;
    g.tasks = 4;
    g.placement = AllreduceGroupSpec::Placement::CrossSegmentPairs;
    g.bytes = mib(32);
    g.iterations = 3;
    spec.allreduces.push_back(g);
    return spec;
}

Scenario
tinyScenario(const char *name)
{
    Scenario sc;
    sc.name = name;
    sc.title = "tiny";
    sc.variants = [](const RunOptions &) {
        return std::vector<ScenarioSpec>{tinyAllreduce("ecmp", false),
                                         tinyAllreduce("c4p", true)};
    };
    return sc;
}

// --- spec validation --------------------------------------------------

TEST(SpecValidation, GoodSpecPasses)
{
    EXPECT_EQ(validateSpec(tinyAllreduce("ok", false)), "");
}

TEST(SpecValidation, PodNeedsNodeCount)
{
    ScenarioSpec spec = tinyAllreduce("bad", false);
    spec.topology.kind = TopologySpec::Kind::Pod;
    EXPECT_NE(validateSpec(spec).find("numNodes"), std::string::npos);
}

TEST(SpecValidation, UnknownModelRejected)
{
    ScenarioSpec spec;
    spec.variant = "bad";
    JobSpec job;
    job.model = "gpt9000b";
    spec.jobs.push_back(job);
    spec.horizon = seconds(10);
    EXPECT_NE(validateSpec(spec).find("unknown model"),
              std::string::npos);
}

TEST(SpecValidation, JobsNeedHorizon)
{
    ScenarioSpec spec;
    spec.variant = "bad";
    spec.jobs.push_back(JobSpec{});
    EXPECT_NE(validateSpec(spec).find("horizon"), std::string::npos);
}

TEST(SpecValidation, DuplicateJobIdsRejected)
{
    ScenarioSpec spec;
    spec.variant = "bad";
    spec.jobs.push_back(JobSpec{});
    spec.jobs.push_back(JobSpec{});
    spec.horizon = seconds(10);
    EXPECT_NE(validateSpec(spec).find("duplicate job id"),
              std::string::npos);
}

TEST(SpecValidation, SpreadPlacementSingleTaskOnly)
{
    ScenarioSpec spec = tinyAllreduce("bad", false);
    spec.allreduces[0].placement =
        AllreduceGroupSpec::Placement::SpreadAcrossSegments;
    spec.allreduces[0].nodesPerTask = 4;
    EXPECT_NE(validateSpec(spec).find("exactly one task"),
              std::string::npos);
}

TEST(SpecValidation, ExplicitPlacementNeedsNodeListPerTask)
{
    ScenarioSpec spec = tinyAllreduce("bad", false);
    spec.allreduces[0].placement =
        AllreduceGroupSpec::Placement::Explicit;
    spec.allreduces[0].explicitNodes = {{0, 1}}; // 1 list, 4 tasks
    EXPECT_NE(validateSpec(spec).find("one node list per task"),
              std::string::npos);
}

TEST(SpecValidation, DetectionNeedsC4d)
{
    ScenarioSpec spec = tinyAllreduce("bad", false);
    spec.metrics.detection = true;
    FaultSpec f;
    f.node = 1;
    spec.faults.push_back(f);
    EXPECT_NE(validateSpec(spec).find("C4D"), std::string::npos);
}

TEST(SpecValidation, CustomExecutorSkipsWorkloadChecks)
{
    ScenarioSpec spec;
    spec.variant = "custom";
    spec.topology.kind = TopologySpec::Kind::Pod; // would be invalid
    spec.custom = [](TrialContext &) {};
    EXPECT_EQ(validateSpec(spec), "");
}

TEST(SpecValidation, RunSpecTrialThrowsOnInvalidSpec)
{
    ScenarioSpec spec;
    spec.variant = "bad";
    spec.topology.kind = TopologySpec::Kind::Pod;
    RunOptions opt;
    TrialContext ctx(opt, 1, 0);
    EXPECT_THROW(runSpecTrial(spec, ctx), std::invalid_argument);
}

TEST(SpecValidation, RunnerRejectsInvalidVariant)
{
    Scenario sc;
    sc.name = "test_invalid_variant";
    sc.variants = [](const RunOptions &) {
        ScenarioSpec spec;
        spec.variant = "bad";
        spec.topology.oversubscription = -1.0;
        return std::vector<ScenarioSpec>{spec};
    };
    ScenarioRunner runner;
    EXPECT_EQ(runner.run(sc), 1);
}

// --- registry ---------------------------------------------------------

TEST(Registry, LookupAndEnumeration)
{
    Registry &registry = Registry::instance();
    const std::size_t before = registry.size();
    registry.add(tinyScenario("test_registry_entry"));
    EXPECT_EQ(registry.size(), before + 1);

    const Scenario *found = registry.find("test_registry_entry");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->title, "tiny");
    EXPECT_EQ(registry.find("no_such_scenario"), nullptr);

    // all() is sorted by name.
    const auto all = registry.all();
    ASSERT_EQ(all.size(), before + 1);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1]->name, all[i]->name);
}

TEST(Registry, DuplicateAndAnonymousNamesRejected)
{
    Registry &registry = Registry::instance();
    registry.add(tinyScenario("test_registry_dup"));
    EXPECT_THROW(registry.add(tinyScenario("test_registry_dup")),
                 std::invalid_argument);
    EXPECT_THROW(registry.add(tinyScenario("")),
                 std::invalid_argument);
    Scenario noVariants;
    noVariants.name = "test_registry_novariants";
    EXPECT_THROW(registry.add(noVariants), std::invalid_argument);
}

TEST(Registry, AddOrReplaceShadowsExistingRegistration)
{
    Registry &registry = Registry::instance();
    EXPECT_FALSE(
        registry.addOrReplace(tinyScenario("test_registry_shadow")));
    const std::size_t count = registry.size();

    Scenario replacement = tinyScenario("test_registry_shadow");
    replacement.title = "replaced";
    EXPECT_TRUE(registry.addOrReplace(replacement));
    EXPECT_EQ(registry.size(), count); // replaced, not appended

    const Scenario *found = registry.find("test_registry_shadow");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->title, "replaced");

    Scenario noVariants;
    noVariants.name = "test_registry_shadow";
    EXPECT_THROW(registry.addOrReplace(noVariants),
                 std::invalid_argument);
}

// --- runner resolution ------------------------------------------------

TEST(Runner, ResolvesTrialsAndSeedFromScenario)
{
    Scenario sc = tinyScenario("test_resolution");
    sc.fullTrials = 7;
    sc.smokeTrials = 2;
    sc.seed = 0xABCD;

    ScenarioRunner full;
    EXPECT_EQ(full.resolved(sc).trials, 7);
    EXPECT_EQ(full.resolved(sc).seed, 0xABCDull);

    RunOptions opt;
    opt.smoke = true;
    ScenarioRunner smoke(opt);
    EXPECT_EQ(smoke.resolved(sc).trials, 2);

    opt.trials = 3;
    opt.seed = 42;
    opt.seedSet = true;
    ScenarioRunner overridden(opt);
    EXPECT_EQ(overridden.resolved(sc).trials, 3);
    EXPECT_EQ(overridden.resolved(sc).seed, 42ull);
}

TEST(Runner, TrialSeedsAreDistinctAndStable)
{
    EXPECT_EQ(trialSeed(1, 0), trialSeed(1, 0));
    EXPECT_NE(trialSeed(1, 0), trialSeed(1, 1));
    EXPECT_NE(trialSeed(1, 0), trialSeed(2, 0));
}

// --- determinism across thread counts ---------------------------------

std::string
runCsv(const Scenario &sc, int threads)
{
    RunOptions opt;
    opt.trials = 4;
    opt.threads = threads;
    std::ostringstream csv;
    CsvSink sink(csv);
    ScenarioRunner runner(opt);
    runner.addSink(sink);
    EXPECT_EQ(runner.run(sc), 0);
    return csv.str();
}

TEST(Determinism, CsvIdenticalAcrossThreadCounts)
{
    const Scenario sc = tinyScenario("test_determinism");
    const std::string single = runCsv(sc, 1);
    const std::string fourWay = runCsv(sc, 4);
    EXPECT_FALSE(single.empty());
    EXPECT_EQ(single, fourWay);

    // Sanity on the content: both variants, all four trials.
    EXPECT_NE(single.find("test_determinism,ecmp,0,"),
              std::string::npos);
    EXPECT_NE(single.find("test_determinism,c4p,3,"),
              std::string::npos);
    EXPECT_NE(single.find("busbw_mean"), std::string::npos);
}

TEST(Determinism, CustomExecutorSweepIsOrderIndependent)
{
    // A custom scenario whose metric depends only on (seed, trial):
    // the emitted order must be variant-major regardless of which
    // worker finishes first.
    Scenario sc;
    sc.name = "test_custom_det";
    sc.variants = [](const RunOptions &) {
        ScenarioSpec a;
        a.variant = "a";
        a.custom = [](TrialContext &ctx) {
            ctx.metric("seed_lo",
                       static_cast<double>(ctx.seed % 1000));
        };
        ScenarioSpec b = a;
        b.variant = "b";
        return std::vector<ScenarioSpec>{a, b};
    };
    EXPECT_EQ(runCsv(sc, 1), runCsv(sc, 3));
}

// --- sinks ------------------------------------------------------------

TEST(Sinks, TableAggregatesMeansPerVariant)
{
    Scenario sc;
    sc.name = "test_table";
    sc.title = "table test";
    sc.notes = "note line";
    sc.variants = [](const RunOptions &) {
        ScenarioSpec spec;
        spec.variant = "only";
        spec.custom = [](TrialContext &ctx) {
            ctx.metric("value", ctx.trial == 0 ? 1.0 : 3.0);
        };
        return std::vector<ScenarioSpec>{spec};
    };

    RunOptions opt;
    opt.trials = 2;
    opt.threads = 1;
    std::ostringstream out;
    TableSink sink(out);
    ScenarioRunner runner(opt);
    runner.addSink(sink);
    ASSERT_EQ(runner.run(sc), 0);

    // mean of {1, 3} = 2.
    EXPECT_NE(out.str().find("2.00"), std::string::npos);
    EXPECT_NE(out.str().find("table test"), std::string::npos);
    EXPECT_NE(out.str().find("note line"), std::string::npos);
}

TEST(Sinks, JsonIsWellFormedEnough)
{
    Scenario sc = tinyScenario("test_json");
    RunOptions opt;
    opt.trials = 1;
    opt.threads = 1;
    std::string text;
    {
        std::ostringstream out;
        JsonSink sink(out);
        ScenarioRunner runner(opt);
        runner.addSink(sink);
        ASSERT_EQ(runner.run(sc), 0);
        text = out.str();
    }
    EXPECT_NE(text.find("\"scenario\": \"test_json\""),
              std::string::npos);
    EXPECT_NE(text.find("\"variant\": \"ecmp\""), std::string::npos);
    EXPECT_NE(text.find("busbw_mean"), std::string::npos);
}

// --- workload interpreter --------------------------------------------

TEST(Workload, ClusterConfigReflectsSpec)
{
    ScenarioSpec spec;
    spec.variant = "cfg";
    spec.topology.kind = TopologySpec::Kind::Pod;
    spec.topology.numNodes = 32;
    spec.topology.oversubscription = 2.0;
    spec.topology.nodesPerSegment = 8;
    spec.features.c4p = true;
    spec.features.dynamicLoadBalance = true;
    spec.features.qpsPerConnection = 2;
    spec.features.c4d = true;
    spec.features.evaluatePeriod = seconds(3);

    const core::ClusterConfig cc = toClusterConfig(spec, 99);
    EXPECT_EQ(cc.topology.numNodes, 32);
    EXPECT_EQ(cc.topology.nodesPerSegment, 8);
    EXPECT_DOUBLE_EQ(cc.topology.oversubscription, 2.0);
    EXPECT_TRUE(cc.enableC4p);
    EXPECT_TRUE(cc.c4p.dynamicLoadBalance);
    EXPECT_EQ(cc.accl.qpsPerConnection, 2);
    EXPECT_TRUE(cc.enableC4d);
    EXPECT_EQ(cc.c4d.evaluatePeriod, seconds(3));
    EXPECT_EQ(cc.seed, 99ull);
}

TEST(Workload, JobWorkloadProducesThroughputMetric)
{
    ScenarioSpec spec;
    spec.variant = "job";
    JobSpec job;
    job.model = "llama7b";
    job.parallel = {.tp = 8, .pp = 1, .dp = 2};
    spec.jobs.push_back(job);
    spec.horizon = seconds(30);

    RunOptions opt;
    TrialContext ctx(opt, 7, 0);
    runSpecTrial(spec, ctx);
    ASSERT_EQ(ctx.metrics().size(), 1u);
    EXPECT_EQ(ctx.metrics()[0].name, "samples_per_sec");
    EXPECT_GT(ctx.metrics()[0].value, 0.0);
}

} // namespace
