/**
 * @file
 * Edge-case coverage for src/common beyond test_common.cc: RFC-4180
 * CSV quoting and empty fields, Summary percentiles on degenerate
 * inputs, and AsciiTable alignment under ragged/rule-bearing rows.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"

namespace c4 {
namespace {

// ---------------------------------------------------------------- CSV

TEST(CsvEdge, QuotesFieldsWithSeparatorsAndQuotes)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.row({"a,b", "say \"hi\"", "line1\nline2", "plain"});
    EXPECT_EQ(os.str(),
              "\"a,b\",\"say \"\"hi\"\"\",\"line1\nline2\",plain\n");

    const auto rows = parseCsv(os.str());
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].size(), 4u);
    EXPECT_EQ(rows[0][0], "a,b");
    EXPECT_EQ(rows[0][1], "say \"hi\"");
    EXPECT_EQ(rows[0][2], "line1\nline2");
    EXPECT_EQ(rows[0][3], "plain");
}

TEST(CsvEdge, EmptyFieldsRoundTrip)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.row({"", "mid", ""});
    w.row({"", "", ""});
    EXPECT_EQ(os.str(), ",mid,\n,,\n");

    const auto rows = parseCsv(os.str());
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"", "mid", ""}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvEdge, ParsesCrlfAndMissingTrailingNewline)
{
    const auto rows = parseCsv("a,b\r\nc,d");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvEdge, QuotedFieldSpansNewlinesAndEscapedQuotes)
{
    const auto rows = parseCsv("\"x\ny\",\"a\"\"b\"\nnext,row\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"x\ny", "a\"b"}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"next", "row"}));
}

TEST(CsvEdge, QuotedEmptyFieldIsPreserved)
{
    const auto rows = parseCsv("\"\",x\n");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"", "x"}));
}

TEST(CsvEdge, NumericCellsAndRowAccounting)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.header({"t", "v"});
    w.cell(static_cast<std::int64_t>(-7)).cell(0.5);
    w.endRow();
    w.cell(static_cast<std::uint64_t>(1u << 20)).cell(1e-9);
    w.endRow();
    EXPECT_EQ(w.rowsWritten(), 3u); // header counts as a row
    const auto rows = parseCsv(os.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[1][0], "-7");
    EXPECT_EQ(rows[1][1], "0.5");
    EXPECT_EQ(rows[2][0], "1048576");
    EXPECT_EQ(rows[2][1], "1e-09");
}

// -------------------------------------------------------------- stats

TEST(SummaryEdge, EmptyInputAnswersZeroEverywhere)
{
    // The documented empty() contract: 0.0 is a sentinel, not a
    // statistic — callers either check empty() or use percentileOr.
    const Summary s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentileOr(50, -1.0), -1.0);
}

TEST(SummaryEdge, PercentileOrFallsThroughOnceNonEmpty)
{
    Summary s;
    s.add(7.0);
    EXPECT_FALSE(s.empty());
    EXPECT_DOUBLE_EQ(s.percentileOr(50, -1.0), 7.0);
}

TEST(HistogramEdge, EmptyHistogramReportsEmpty)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_TRUE(h.empty());
    h.add(3.0);
    EXPECT_FALSE(h.empty());
}

TEST(WindowedQuantileEdge, EmptyWindowAnswersTheSentinel)
{
    const WindowedQuantile w;
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.count(), 0u);
    EXPECT_EQ(w.size(), 0u);
    EXPECT_DOUBLE_EQ(w.min(), 0.0);
    EXPECT_DOUBLE_EQ(w.max(), 0.0);
    EXPECT_DOUBLE_EQ(w.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(w.percentileOr(50, -1.0), -1.0);
}

TEST(WindowedQuantileEdge, SingleSampleIsEveryPercentile)
{
    WindowedQuantile w;
    w.add(42.5);
    EXPECT_FALSE(w.empty());
    EXPECT_DOUBLE_EQ(w.percentile(0), 42.5);
    EXPECT_DOUBLE_EQ(w.percentile(37.3), 42.5);
    EXPECT_DOUBLE_EQ(w.percentile(100), 42.5);
    EXPECT_DOUBLE_EQ(w.percentileOr(50, -1.0), 42.5);
}

TEST(WindowedQuantileEdge, PercentileClampsAndInterpolates)
{
    WindowedQuantile w;
    w.add(3.0);
    w.add(1.0); // unsorted insertion order must not matter
    EXPECT_DOUBLE_EQ(w.percentile(-20.0), 1.0);
    EXPECT_DOUBLE_EQ(w.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(w.percentile(50), 2.0);
    EXPECT_DOUBLE_EQ(w.percentile(500.0), 3.0);
}

TEST(WindowedQuantileEdge, RingEvictsOldestBeyondCapacity)
{
    WindowedQuantile w(4);
    for (int i = 1; i <= 10; ++i)
        w.add(static_cast<double>(i));
    // Window holds {7, 8, 9, 10}; count still remembers all adds.
    EXPECT_EQ(w.count(), 10u);
    EXPECT_EQ(w.size(), 4u);
    EXPECT_EQ(w.capacity(), 4u);
    EXPECT_DOUBLE_EQ(w.min(), 7.0);
    EXPECT_DOUBLE_EQ(w.max(), 10.0);
    EXPECT_DOUBLE_EQ(w.percentile(50), 8.5);

    w.clear();
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.count(), 0u);
    EXPECT_DOUBLE_EQ(w.percentile(50), 0.0);
}

TEST(WindowedQuantileEdge, ZeroCapacityClampsToOne)
{
    WindowedQuantile w(0);
    EXPECT_EQ(w.capacity(), 1u);
    w.add(1.0);
    w.add(2.0);
    EXPECT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w.percentile(50), 2.0); // only the newest survives
}

TEST(SummaryEdge, SingleElementIsEveryPercentile)
{
    Summary s;
    s.add(42.5);
    EXPECT_DOUBLE_EQ(s.percentile(0), 42.5);
    EXPECT_DOUBLE_EQ(s.percentile(37.3), 42.5);
    EXPECT_DOUBLE_EQ(s.percentile(50), 42.5);
    EXPECT_DOUBLE_EQ(s.percentile(100), 42.5);
    EXPECT_DOUBLE_EQ(s.min(), 42.5);
    EXPECT_DOUBLE_EQ(s.max(), 42.5);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0); // n-1 denominator guard
}

TEST(SummaryEdge, PercentileClampsOutOfRangeP)
{
    Summary s;
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.percentile(-20.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(500.0), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 2.0); // interpolated midpoint
}

TEST(SummaryEdge, CvGuardsZeroMean)
{
    Summary s;
    s.add(-1.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0); // no division by zero
}

TEST(SummaryEdge, MergeWithEmptyAndClear)
{
    Summary a, b;
    a.add(1.0);
    a.merge(b); // merging an empty summary is a no-op
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    a.clear();
    EXPECT_TRUE(a.empty());
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

// -------------------------------------------------------------- table

/** Split a rendering into lines, dropping the trailing newline. */
std::vector<std::string>
lines(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    for (std::string line; std::getline(is, line);)
        out.push_back(line);
    return out;
}

TEST(TableEdge, ColumnsAlignToWidestCell)
{
    AsciiTable t({"A", "LongHeader"});
    t.addRow({"much-longer-cell", "x"});
    t.addRow({"y", "z"});
    const auto ls = lines(t.str());
    // +-border, header, +-border, 2 rows, +-border.
    ASSERT_EQ(ls.size(), 6u);
    for (const auto &l : ls)
        EXPECT_EQ(l.size(), ls[0].size()) << l;
    // Every border line is identical, and '|' in rows lines up with
    // '+' in borders.
    EXPECT_EQ(ls[0], ls[2]);
    EXPECT_EQ(ls[0], ls[5]);
    for (std::size_t i = 0; i < ls[0].size(); ++i) {
        if (ls[0][i] == '+') {
            EXPECT_EQ(ls[1][i], '|');
            EXPECT_EQ(ls[3][i], '|');
        }
    }
}

TEST(TableEdge, ShortRowsArePaddedToHeaderArity)
{
    AsciiTable t({"a", "b", "c"});
    t.addRow({"only-one"});
    const auto ls = lines(t.str());
    ASSERT_EQ(ls.size(), 5u);
    EXPECT_EQ(ls[3].size(), ls[0].size());
}

TEST(TableEdge, RuleRendersFullWidthSeparator)
{
    AsciiTable t({"h"});
    t.addRow({"v1"});
    t.addRule();
    t.addRow({"total"});
    const auto ls = lines(t.str("Title"));
    // Title, border, header, border, row, rule, row, border.
    ASSERT_EQ(ls.size(), 8u);
    EXPECT_EQ(ls[0], "Title");
    EXPECT_EQ(ls[5], ls[1]); // the rule equals the border lines
    EXPECT_EQ(t.rowCount(), 3u);
}

TEST(TableEdge, EmptyTitleOmitsTitleLine)
{
    AsciiTable t({"h"});
    t.addRow({"v"});
    const auto ls = lines(t.str());
    ASSERT_FALSE(ls.empty());
    EXPECT_EQ(ls[0][0], '+');
}

} // namespace
} // namespace c4
