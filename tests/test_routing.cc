/**
 * @file
 * Unit tests for ECMP hashing and path selection.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/routing.h"
#include "testutil/testutil.h"

namespace c4::net {
namespace {

using testutil::podConfig;

/** 0 -> 4 crosses from segment 0 into segment 1. */
PathRequest
crossSegment(std::uint32_t label = 1)
{
    return testutil::makePathRequest(0, 4, label);
}

TEST(EcmpHash, DeterministicAndLabelSensitive)
{
    const PathRequest a = crossSegment(7);
    EXPECT_EQ(ecmpHash(a), ecmpHash(a));
    const PathRequest b = crossSegment(8);
    EXPECT_NE(ecmpHash(a), ecmpHash(b));
    EXPECT_NE(ecmpHash(a, 1), ecmpHash(a, 2));
}

TEST(EcmpHash, SpreadsAcrossLabels)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    std::map<int, int> spine_counts;
    for (std::uint32_t label = 0; label < 512; ++label) {
        const Route r = sel.select(crossSegment(label));
        ASSERT_TRUE(r.valid());
        ++spine_counts[r.spine];
    }
    // All 8 spines should receive a reasonable share.
    EXPECT_EQ(spine_counts.size(), 8u);
    for (const auto &[spine, count] : spine_counts)
        EXPECT_GT(count, 20);
}

TEST(PathSelector, SameSegmentSamePlaneTurnsAtLeaf)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    PathRequest req = crossSegment();
    req.dstNode = 1; // same segment as node 0
    req.rxPlane = planeIndex(Plane::Left);
    const Route r = sel.select(req);
    ASSERT_TRUE(r.valid());
    EXPECT_EQ(r.links.size(), 2u);
    EXPECT_EQ(r.spine, kInvalidId);
    EXPECT_EQ(r.rxPlane, Plane::Left);
}

TEST(PathSelector, CrossSegmentTransitsSpine)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    const Route r = sel.select(crossSegment());
    ASSERT_TRUE(r.valid());
    ASSERT_EQ(r.links.size(), 4u);
    EXPECT_EQ(topo.link(r.links[0]).kind, LinkKind::HostUp);
    EXPECT_EQ(topo.link(r.links[1]).kind, LinkKind::TrunkUp);
    EXPECT_EQ(topo.link(r.links[2]).kind, LinkKind::TrunkDown);
    EXPECT_EQ(topo.link(r.links[3]).kind, LinkKind::HostDown);
    EXPECT_GE(r.spine, 0);
}

TEST(PathSelector, PinnedSpineHonored)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    for (int spine = 0; spine < 8; ++spine) {
        PathRequest req = crossSegment();
        req.spine = spine;
        const Route r = sel.select(req);
        ASSERT_TRUE(r.valid());
        EXPECT_EQ(r.spine, spine);
    }
}

TEST(PathSelector, PinnedRxPlaneHonored)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    PathRequest req = crossSegment();
    req.rxPlane = planeIndex(Plane::Right);
    const Route r = sel.select(req);
    ASSERT_TRUE(r.valid());
    EXPECT_EQ(r.rxPlane, Plane::Right);
    EXPECT_EQ(topo.link(r.links.back()).plane, Plane::Right);
}

TEST(PathSelector, DeadPinnedSpineFallsBackToHash)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    PathRequest req = crossSegment();
    req.spine = 3;
    const int tx_leaf = topo.leafIndex(0, Plane::Left);
    topo.setLinkUp(topo.trunkUplink(tx_leaf, 3), false);
    const Route r = sel.select(req);
    ASSERT_TRUE(r.valid());
    EXPECT_NE(r.spine, 3);
}

TEST(PathSelector, AvoidsDeadSpines)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    const int tx_leaf = topo.leafIndex(0, Plane::Left);
    // Kill all but spine 6 (for left-plane destinations).
    for (int s = 0; s < 8; ++s) {
        if (s != 6)
            topo.setLinkUp(topo.trunkUplink(tx_leaf, s), false);
    }
    for (std::uint32_t label = 0; label < 32; ++label) {
        PathRequest req = crossSegment(label);
        req.rxPlane = planeIndex(Plane::Left); // stay on the tx leaf
        const Route r = sel.select(req);
        ASSERT_TRUE(r.valid());
        EXPECT_EQ(r.spine, 6);
    }
}

TEST(PathSelector, UnroutableWhenAllSpinesDead)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    const int tx_leaf = topo.leafIndex(0, Plane::Left);
    for (int s = 0; s < 8; ++s)
        topo.setLinkUp(topo.trunkUplink(tx_leaf, s), false);
    PathRequest req = crossSegment();
    req.rxPlane = planeIndex(Plane::Left);
    EXPECT_FALSE(sel.select(req).valid());
}

TEST(PathSelector, DeadHostUplinkIsUnroutable)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    topo.setLinkUp(topo.hostUplink(0, 0, Plane::Left), false);
    EXPECT_FALSE(sel.select(crossSegment()).valid());
}

TEST(PathSelector, CrossPlaneSameSegmentTransitsSpine)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    PathRequest req = crossSegment();
    req.dstNode = 1; // same segment
    req.txPlane = Plane::Left;
    req.rxPlane = planeIndex(Plane::Right);
    const Route r = sel.select(req);
    ASSERT_TRUE(r.valid());
    EXPECT_EQ(r.links.size(), 4u); // must go via a spine to cross planes
}

TEST(PathSelector, RxPlaneHashIsRoughlyBalanced)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    int left = 0;
    for (std::uint32_t label = 0; label < 400; ++label) {
        const Route r = sel.select(crossSegment(label));
        ASSERT_TRUE(r.valid());
        left += r.rxPlane == Plane::Left ? 1 : 0;
    }
    EXPECT_GT(left, 120);
    EXPECT_LT(left, 280);
}

TEST(PathSelector, CandidateSpinesMatchesTopology)
{
    Topology topo(podConfig());
    PathSelector sel(topo);
    const int tx = topo.leafIndex(0, Plane::Left);
    const int rx = topo.leafIndex(2, Plane::Left);
    EXPECT_EQ(sel.candidateSpines(tx, rx).size(), 8u);
    topo.setLinkUp(topo.trunkDownlink(1, rx), false);
    EXPECT_EQ(sel.candidateSpines(tx, rx).size(), 7u);
}

} // namespace
} // namespace c4::net
