/**
 * @file
 * Unit tests for the dual-plane fat-tree topology.
 */

#include <gtest/gtest.h>

#include <set>

#include "net/topology.h"
#include "testutil/testutil.h"

namespace c4::net {
namespace {

using testutil::podConfig;

TEST(TopologyConfig, ValidationCatchesBadConfigs)
{
    TopologyConfig tc = podConfig();
    EXPECT_TRUE(tc.validate().empty());

    tc.numNodes = 0;
    EXPECT_FALSE(tc.validate().empty());

    tc = podConfig();
    tc.oversubscription = 0.5;
    EXPECT_FALSE(tc.validate().empty());

    tc = podConfig();
    tc.nicsPerNode = 3; // gpusPerNode=8 not a multiple
    EXPECT_FALSE(tc.validate().empty());

    EXPECT_THROW(Topology(TopologyConfig{.numNodes = -1}),
                 std::invalid_argument);
}

TEST(Topology, Dimensions)
{
    Topology topo(podConfig());
    EXPECT_EQ(topo.numNodes(), 16);
    EXPECT_EQ(topo.numGpus(), 128);
    EXPECT_EQ(topo.numSegments(), 4);
    EXPECT_EQ(topo.numLeaves(), 8);
    EXPECT_EQ(topo.numSpines(), 8);
    // host links: 16 nodes * 8 nics * 2 planes * 2 directions = 512
    // trunks: 8 leaves * 8 spines * 2 directions = 128
    EXPECT_EQ(topo.numLinks(), 512u + 128u);
}

TEST(Topology, SegmentAndLeafIndexing)
{
    Topology topo(podConfig());
    EXPECT_EQ(topo.segmentOf(0), 0);
    EXPECT_EQ(topo.segmentOf(3), 0);
    EXPECT_EQ(topo.segmentOf(4), 1);
    EXPECT_EQ(topo.segmentOf(15), 3);

    for (int seg = 0; seg < topo.numSegments(); ++seg) {
        for (int p = 0; p < kNumPlanes; ++p) {
            const int leaf = topo.leafIndex(seg, planeFromIndex(p));
            EXPECT_EQ(topo.leafSegment(leaf), seg);
            EXPECT_EQ(topo.leafPlane(leaf), planeFromIndex(p));
        }
    }
}

TEST(Topology, HostLinksWireToTheRightLeaf)
{
    Topology topo(podConfig());
    const LinkId up = topo.hostUplink(5, 3, Plane::Right);
    const Link &l = topo.link(up);
    EXPECT_EQ(l.kind, LinkKind::HostUp);
    EXPECT_EQ(l.node, 5);
    EXPECT_EQ(l.nic, 3);
    EXPECT_EQ(l.plane, Plane::Right);
    EXPECT_EQ(l.leaf, topo.leafIndex(topo.segmentOf(5), Plane::Right));
    EXPECT_DOUBLE_EQ(l.capacity, gbps(200));

    const LinkId down = topo.hostDownlink(5, 3, Plane::Right);
    EXPECT_EQ(topo.link(down).kind, LinkKind::HostDown);
    EXPECT_NE(up, down);
}

TEST(Topology, AllLinkIdsDistinct)
{
    Topology topo(podConfig());
    std::set<LinkId> ids;
    for (const auto &l : topo.links())
        ids.insert(l.id);
    EXPECT_EQ(ids.size(), topo.numLinks());
}

TEST(Topology, TrunkCapacityFollowsOversubscription)
{
    Topology one_to_one(podConfig());
    EXPECT_DOUBLE_EQ(one_to_one.link(one_to_one.trunkUplink(0, 0))
                         .capacity,
                     gbps(200));

    TopologyConfig tc = podConfig();
    tc.oversubscription = 2.0;
    Topology two_to_one(tc);
    EXPECT_DOUBLE_EQ(two_to_one.link(two_to_one.trunkUplink(0, 0))
                         .capacity,
                     gbps(100));
}

TEST(Topology, LinkUpDownAndCapacityScale)
{
    Topology topo(podConfig());
    const LinkId t = topo.trunkUplink(2, 5);
    EXPECT_TRUE(topo.link(t).up);
    EXPECT_DOUBLE_EQ(topo.link(t).effectiveCapacity(), gbps(200));

    topo.setLinkUp(t, false);
    EXPECT_DOUBLE_EQ(topo.link(t).effectiveCapacity(), 0.0);

    topo.setLinkUp(t, true);
    topo.setLinkCapacityScale(t, 0.5);
    EXPECT_DOUBLE_EQ(topo.link(t).effectiveCapacity(), gbps(100));
}

TEST(Topology, HealthySpinesExcludesDeadTrunks)
{
    Topology topo(podConfig());
    const int tx_leaf = topo.leafIndex(0, Plane::Left);
    const int rx_leaf = topo.leafIndex(1, Plane::Left);

    EXPECT_EQ(topo.healthySpines(tx_leaf, rx_leaf).size(), 8u);

    topo.setLinkUp(topo.trunkUplink(tx_leaf, 3), false);
    auto healthy = topo.healthySpines(tx_leaf, rx_leaf);
    EXPECT_EQ(healthy.size(), 7u);
    for (int s : healthy)
        EXPECT_NE(s, 3);

    // A dead downlink on the rx side removes another spine.
    topo.setLinkUp(topo.trunkDownlink(5, rx_leaf), false);
    EXPECT_EQ(topo.healthySpines(tx_leaf, rx_leaf).size(), 6u);
    // ...but not for other destinations.
    const int other_rx = topo.leafIndex(2, Plane::Left);
    EXPECT_EQ(topo.healthySpines(tx_leaf, other_rx).size(), 7u);
}

TEST(Topology, SummaryMentionsShape)
{
    Topology topo(podConfig());
    const std::string s = topo.summary();
    EXPECT_NE(s.find("16 nodes"), std::string::npos);
    EXPECT_NE(s.find("8 spines"), std::string::npos);
}

TEST(Topology, UnevenLastSegment)
{
    TopologyConfig tc = podConfig();
    tc.numNodes = 10; // 2 full segments + one partial
    Topology topo(tc);
    EXPECT_EQ(topo.numSegments(), 3);
    EXPECT_EQ(topo.segmentOf(9), 2);
}

class TopologyPlaneParam : public ::testing::TestWithParam<int>
{
};

TEST_P(TopologyPlaneParam, EveryNicHasBothPlanesWired)
{
    Topology topo(podConfig());
    const Plane plane = planeFromIndex(GetParam());
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        for (NicId k = 0; k < topo.nicsPerNode(); ++k) {
            const LinkId up = topo.hostUplink(n, k, plane);
            const LinkId down = topo.hostDownlink(n, k, plane);
            ASSERT_NE(up, kInvalidId);
            ASSERT_NE(down, kInvalidId);
            EXPECT_EQ(topo.link(up).plane, plane);
            EXPECT_EQ(topo.link(down).plane, plane);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(BothPlanes, TopologyPlaneParam,
                         ::testing::Values(0, 1));

} // namespace
} // namespace c4::net
