/**
 * @file
 * Unit tests for collective math and communicator group structure.
 */

#include <gtest/gtest.h>

#include "accl/collective.h"
#include "accl/communicator.h"

namespace c4::accl {
namespace {

TEST(Collective, BusFactorAllReduce)
{
    EXPECT_DOUBLE_EQ(busFactor(CollOp::AllReduce, 2), 1.0);
    EXPECT_DOUBLE_EQ(busFactor(CollOp::AllReduce, 4), 1.5);
    EXPECT_DOUBLE_EQ(busFactor(CollOp::AllReduce, 16), 2.0 * 15 / 16);
    EXPECT_DOUBLE_EQ(busFactor(CollOp::AllReduce, 1), 0.0);
}

TEST(Collective, BusFactorOthers)
{
    EXPECT_DOUBLE_EQ(busFactor(CollOp::AllGather, 8), 7.0 / 8);
    EXPECT_DOUBLE_EQ(busFactor(CollOp::ReduceScatter, 8), 7.0 / 8);
    EXPECT_DOUBLE_EQ(busFactor(CollOp::Broadcast, 8), 1.0);
    EXPECT_DOUBLE_EQ(busFactor(CollOp::SendRecv, 2), 1.0);
}

TEST(Collective, RingRounds)
{
    EXPECT_EQ(ringRounds(CollOp::AllReduce, 16), 30);
    EXPECT_EQ(ringRounds(CollOp::AllGather, 16), 15);
    EXPECT_EQ(ringRounds(CollOp::ReduceScatter, 8), 7);
    EXPECT_EQ(ringRounds(CollOp::Broadcast, 8), 7);
    EXPECT_EQ(ringRounds(CollOp::SendRecv, 2), 1);
    EXPECT_EQ(ringRounds(CollOp::AllReduce, 1), 0);
}

TEST(Collective, Bandwidths)
{
    // 1 GiB allreduce over 16 ranks in 50 ms.
    const Bytes bytes = gib(1);
    const Duration t = milliseconds(50);
    const Bandwidth alg = algBandwidth(bytes, t);
    EXPECT_NEAR(toGbps(alg), 171.8, 0.1);
    const Bandwidth bus = busBandwidth(CollOp::AllReduce, 16, bytes, t);
    EXPECT_NEAR(toGbps(bus), 171.8 * 2 * 15 / 16, 0.2);
    EXPECT_DOUBLE_EQ(algBandwidth(bytes, 0), 0.0);
}

TEST(Collective, Names)
{
    EXPECT_STREQ(collOpName(CollOp::AllReduce), "allreduce");
    EXPECT_STREQ(collOpName(CollOp::SendRecv), "sendrecv");
    EXPECT_STREQ(algoKindName(AlgoKind::Ring), "ring");
    EXPECT_STREQ(algoKindName(AlgoKind::Tree), "tree");
}

std::vector<DeviceInfo>
twoNodeDevices()
{
    std::vector<DeviceInfo> devices;
    for (NodeId n = 0; n < 2; ++n) {
        for (int g = 0; g < 8; ++g)
            devices.push_back(
                {n, static_cast<GpuId>(g), static_cast<NicId>(g)});
    }
    return devices;
}

TEST(Communicator, BasicProperties)
{
    Communicator comm(1, 5, twoNodeDevices(), 2);
    EXPECT_EQ(comm.id(), 1);
    EXPECT_EQ(comm.job(), 5);
    EXPECT_EQ(comm.size(), 16);
    EXPECT_EQ(comm.channels(), 2);
    EXPECT_FALSE(comm.singleNode());
    EXPECT_EQ(comm.nodes().size(), 2u);
    EXPECT_EQ(comm.maxRanksPerNode(), 8);
}

TEST(Communicator, RingNeighbors)
{
    Communicator comm(1, 1, twoNodeDevices(), 2);
    EXPECT_EQ(comm.nextRank(0), 1);
    EXPECT_EQ(comm.nextRank(15), 0);
    EXPECT_EQ(comm.prevRank(0), 15);
    EXPECT_EQ(comm.prevRank(8), 7);
}

TEST(Communicator, BoundariesAtNodeCrossings)
{
    Communicator comm(1, 1, twoNodeDevices(), 2);
    const auto &b = comm.boundaries();
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b[0].src, 7);
    EXPECT_EQ(b[0].dst, 8);
    EXPECT_EQ(b[1].src, 15);
    EXPECT_EQ(b[1].dst, 0);
}

TEST(Communicator, SingleNodeHasNoBoundaries)
{
    std::vector<DeviceInfo> devices;
    for (int g = 0; g < 8; ++g)
        devices.push_back(
            {0, static_cast<GpuId>(g), static_cast<NicId>(g)});
    Communicator comm(2, 1, devices, 2);
    EXPECT_TRUE(comm.singleNode());
    EXPECT_TRUE(comm.boundaries().empty());
}

TEST(Communicator, OneRankPerNodeIsAllBoundaries)
{
    std::vector<DeviceInfo> devices;
    for (NodeId n = 0; n < 4; ++n)
        devices.push_back({n, 0, 0});
    Communicator comm(3, 1, devices, 2);
    EXPECT_EQ(comm.boundaries().size(), 4u);
    EXPECT_EQ(comm.maxRanksPerNode(), 1);
}

TEST(Communicator, RanksOnNode)
{
    Communicator comm(1, 1, twoNodeDevices(), 2);
    const auto on0 = comm.ranksOnNode(0);
    ASSERT_EQ(on0.size(), 8u);
    EXPECT_EQ(on0.front(), 0);
    EXPECT_EQ(on0.back(), 7);
    EXPECT_TRUE(comm.ranksOnNode(99).empty());
}

TEST(Communicator, RejectsBadArguments)
{
    EXPECT_THROW(Communicator(1, 1, {}, 2), std::invalid_argument);
    EXPECT_THROW(Communicator(1, 1, twoNodeDevices(), 0),
                 std::invalid_argument);
}

class BusFactorScaling : public ::testing::TestWithParam<int>
{
};

TEST_P(BusFactorScaling, AllReduceFactorApproachesTwo)
{
    const int n = GetParam();
    const double f = busFactor(CollOp::AllReduce, n);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 2.0);
    if (n >= 64) {
        EXPECT_GT(f, 1.9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BusFactorScaling,
                         ::testing::Values(2, 4, 8, 16, 64, 512));

} // namespace
} // namespace c4::accl
