/**
 * @file
 * Unit tests for src/common: typed units, RNG, statistics, CSV, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/csv.h"
#include "common/log.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace c4 {
namespace {

TEST(Types, DurationConstructors)
{
    EXPECT_EQ(seconds(1), 1'000'000'000);
    EXPECT_EQ(milliseconds(1.5), 1'500'000);
    EXPECT_EQ(microseconds(2), 2'000);
    EXPECT_EQ(minutes(1), seconds(60));
    EXPECT_EQ(hours(2), minutes(120));
    EXPECT_EQ(days(1), hours(24));
}

TEST(Types, DurationConverters)
{
    EXPECT_DOUBLE_EQ(toSeconds(seconds(2.5)), 2.5);
    EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(10)), 10.0);
    EXPECT_DOUBLE_EQ(toHours(hours(3)), 3.0);
}

TEST(Types, BandwidthAndBytes)
{
    EXPECT_DOUBLE_EQ(gbps(200), 200e9);
    EXPECT_DOUBLE_EQ(toGbps(gbps(362)), 362.0);
    EXPECT_EQ(kib(1), 1024);
    EXPECT_EQ(mib(1), 1024 * 1024);
    EXPECT_EQ(gib(1), 1024ll * 1024 * 1024);
}

TEST(Types, TransferTime)
{
    // 1 GiB at 8 Gbps = 1.073741824 seconds.
    const Duration t = transferTime(gib(1), gbps(8));
    EXPECT_NEAR(toSeconds(t), 1.073741824, 1e-6);
    EXPECT_EQ(transferTime(mib(1), 0.0), kTimeNever);
}

TEST(Types, Formatters)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_NE(formatBytes(mib(3)).find("MiB"), std::string::npos);
    EXPECT_NE(formatBandwidth(gbps(1.5)).find("Gbps"), std::string::npos);
    EXPECT_NE(formatDuration(seconds(2)).find("s"), std::string::npos);
    EXPECT_EQ(formatDuration(kTimeNever), "never");
}

TEST(Rng, Determinism)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(5.0, 6.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 6.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(0, 7);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 7);
        saw_lo |= v == 0;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, PoissonMean)
{
    Rng rng(17);
    double small_sum = 0.0, large_sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        small_sum += static_cast<double>(rng.poisson(2.5));
        large_sum += static_cast<double>(rng.poisson(100.0));
    }
    EXPECT_NEAR(small_sum / n, 2.5, 0.1);
    EXPECT_NEAR(large_sum / n, 100.0, 1.0);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(19);
    std::vector<double> v;
    for (int i = 0; i < 10001; ++i)
        v.push_back(rng.lognormal(5.0, 1.0));
    std::sort(v.begin(), v.end());
    EXPECT_NEAR(v[v.size() / 2], 5.0, 0.3);
}

TEST(Rng, WeightedIndex)
{
    Rng rng(23);
    std::vector<double> weights = {0.0, 1.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 10000; ++i) {
        const auto idx = rng.weightedIndex(weights);
        ASSERT_GE(idx, 1);
        ASSERT_LE(idx, 2);
        ++counts[idx];
    }
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
    EXPECT_EQ(rng.weightedIndex({0.0, 0.0}), kInvalidId);
}

TEST(Rng, ChanceEdges)
{
    Rng rng(29);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ForkIndependence)
{
    Rng a(31);
    Rng b = a.fork();
    // Forked stream should not track the parent.
    EXPECT_NE(a(), b());
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.add(v);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Summary, Percentiles)
{
    Summary s;
    for (int i = 0; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(99), 99.0, 1e-9);
}

TEST(Summary, EmptyIsSafe)
{
    Summary s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, MergeAndClear)
{
    Summary a, b;
    a.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    a.clear();
    EXPECT_TRUE(a.empty());
}

TEST(Summary, UnsortedInsertStillSortsForPercentiles)
{
    Summary s;
    s.add(5.0);
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(42.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.bucketLo(5), 5.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(5), 6.0);
    EXPECT_FALSE(h.str().empty());
}

TEST(Ewma, ConvergesToConstant)
{
    Ewma e(0.5);
    EXPECT_TRUE(e.empty());
    for (int i = 0; i < 32; ++i)
        e.add(7.0);
    EXPECT_DOUBLE_EQ(e.value(), 7.0);
    e.reset();
    EXPECT_TRUE(e.empty());
}

TEST(Ewma, FirstSampleDominates)
{
    Ewma e(0.25);
    e.add(100.0);
    EXPECT_DOUBLE_EQ(e.value(), 100.0);
    e.add(0.0);
    EXPECT_DOUBLE_EQ(e.value(), 75.0);
}

TEST(Csv, RoundTrip)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.header({"a", "b", "c"});
    w.cell("plain").cell(1.5).cell(std::int64_t{-7});
    w.endRow();
    w.cell("with,comma").cell("with\"quote").cell("multi\nline");
    w.endRow();
    EXPECT_EQ(w.rowsWritten(), 3u);

    const auto rows = parseCsv(os.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(rows[1][0], "plain");
    EXPECT_EQ(rows[1][1], "1.5");
    EXPECT_EQ(rows[1][2], "-7");
    EXPECT_EQ(rows[2][0], "with,comma");
    EXPECT_EQ(rows[2][1], "with\"quote");
    EXPECT_EQ(rows[2][2], "multi\nline");
}

TEST(Csv, EmptyInput)
{
    EXPECT_TRUE(parseCsv("").empty());
}

TEST(Table, RendersAligned)
{
    AsciiTable t({"Task", "Gbps"});
    t.addRow({"Task1", AsciiTable::num(171.93)});
    t.addRule();
    t.addRow({"Task2", AsciiTable::num(360.57)});
    const std::string s = t.str("Fig. 10a");
    EXPECT_NE(s.find("Fig. 10a"), std::string::npos);
    EXPECT_NE(s.find("171.93"), std::string::npos);
    EXPECT_NE(s.find("360.57"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 3u); // includes the rule
}

TEST(Table, Helpers)
{
    EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(AsciiTable::percent(0.3119), "31.19%");
    EXPECT_EQ(AsciiTable::integer(42), "42");
}


TEST(Log, SinkCapturesAboveLevel)
{
    std::vector<std::string> captured;
    setLogSink([&](LogLevel level, const std::string &tag,
                   const std::string &message) {
        captured.push_back(std::string(logLevelName(level)) + "|" + tag +
                           "|" + message);
    });
    setLogLevel(LogLevel::Info);

    logDebug("t", "dropped %d", 1);
    logInfo("t", "kept %d", 2);
    logError("t", "kept %s", "too");

    setLogSink(nullptr);
    setLogLevel(LogLevel::Warn); // restore defaults

    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0], "INFO|t|kept 2");
    EXPECT_EQ(captured[1], "ERROR|t|kept too");
}

TEST(Log, OffLevelSilencesEverything)
{
    int count = 0;
    setLogSink([&](LogLevel, const std::string &, const std::string &) {
        ++count;
    });
    setLogLevel(LogLevel::Off);
    logError("t", "nope");
    setLogSink(nullptr);
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(count, 0);
}

TEST(Log, LevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Trace), "TRACE");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "WARN");
    EXPECT_STREQ(logLevelName(LogLevel::Off), "OFF");
}

} // namespace
} // namespace c4
