/**
 * @file
 * Offline-replay unit tests: corpus I/O, the replay adapter, scoring,
 * and the two byte-identity properties the subsystem is built around —
 * replaying one trace twice is byte-identical, and a fresh live
 * capture yields verdicts byte-identical to replaying the committed
 * trace file.
 *
 * C4_INCIDENT_CORPUS_DIR points at the committed tests/incidents/.
 */

#include <filesystem>
#include <stdexcept>

#include <gtest/gtest.h>

#include "c4d/incident.h"
#include "common/json.h"
#include "replay/capture.h"
#include "replay/corpus.h"
#include "replay/replay.h"
#include "replay/score.h"
#include "trace/export.h"

namespace c4::replay {
namespace {

const std::string kCorpusDir = C4_INCIDENT_CORPUS_DIR;

std::vector<trace::Event>
loadTrace(const std::string &path)
{
    return trace::parseJsonl(readFileOrThrow(path));
}

// --- corpus I/O ------------------------------------------------------

TEST(ReplayCorpus, CollectsCommittedIncidents)
{
    const std::vector<Incident> incidents = collectIncidents(kCorpusDir);
    ASSERT_GE(incidents.size(), 8u);
    // Sorted by name, labels attached, traces present.
    for (std::size_t i = 1; i < incidents.size(); ++i)
        EXPECT_LT(incidents[i - 1].name, incidents[i].name);
    for (const Incident &inc : incidents) {
        EXPECT_EQ(inc.label.name, inc.name);
        EXPECT_TRUE(std::filesystem::exists(inc.tracePath)) << inc.name;
    }
}

TEST(ReplayCorpus, CollectRejectsUnpairedFiles)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "c4_replay_unpaired_corpus";
    fs::remove_all(dir);
    fs::create_directories(dir);
    writeFileOrThrow((dir / "orphan.trace.jsonl").string(), "");
    EXPECT_THROW(collectIncidents(dir.string()), std::runtime_error);
    fs::remove_all(dir);
}

TEST(ReplayCorpus, LabelJsonRoundTripsEveryCommittedLabel)
{
    for (const Incident &inc : collectIncidents(kCorpusDir)) {
        const std::string path =
            kCorpusDir + "/" + inc.name + ".label.json";
        const std::string text = readFileOrThrow(path);
        EXPECT_EQ(writeLabelJson(labelFromJson(text)), text) << path;
    }
}

TEST(ReplayCorpus, LabelValidationRejectsSchemaDrift)
{
    const std::string good = readFileOrThrow(
        kCorpusDir + "/link_failure_single.label.json");
    EXPECT_NO_THROW(labelFromJson(good));
    EXPECT_THROW(labelFromJson("{"), SpecError);
    // Unknown incident kind names must not pass as ground truth.
    std::string bad = good;
    bad.replace(bad.find("link_failure\""), 12, "cable_gremlin");
    EXPECT_THROW(labelFromJson(bad), SpecError);
    // Unknown keys are schema drift, not extension points.
    std::string extra = good;
    extra.insert(extra.rfind('}'), ",\n  \"bogus\": 1\n");
    EXPECT_THROW(labelFromJson(extra), SpecError);
}

TEST(ReplayCorpus, TraceJsonlRoundTripsEveryCommittedTrace)
{
    for (const Incident &inc : collectIncidents(kCorpusDir)) {
        const std::string text = readFileOrThrow(inc.tracePath);
        EXPECT_EQ(trace::writeJsonl(trace::parseJsonl(text)), text)
            << inc.tracePath;
    }
}

// --- the replay adapter ----------------------------------------------

TEST(ReplayAdapter, ClockRejectsTimeRegression)
{
    std::vector<trace::Event> events(2);
    events[0].when = seconds(10);
    events[0].kind = trace::EventKind::CnpSample;
    events[1].when = seconds(5);
    events[1].kind = trace::EventKind::CnpSample;
    c4d::TelemetrySink sink;
    try {
        feedTrace(events, sink);
        FAIL() << "regressing trace accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("2"), std::string::npos)
            << "error does not name the offending record: "
            << e.what();
    }
}

TEST(ReplayAdapter, RejectsUnknownPathReallocDetail)
{
    trace::Event ev;
    ev.kind = trace::EventKind::PathRealloc;
    ev.detail = "teleport";
    c4d::TelemetrySink sink;
    EXPECT_THROW(dispatchEvent(ev, sink), std::runtime_error);
}

// --- byte-identity properties ----------------------------------------

TEST(ReplayIdentity, ReplaySameIncidentTwiceIsByteIdentical)
{
    for (const Incident &inc : collectIncidents(kCorpusDir)) {
        const std::vector<trace::Event> events =
            loadTrace(inc.tracePath);
        const std::string first =
            verdictsToJsonl(inc.name, replayTrace(events));
        const std::string second =
            verdictsToJsonl(inc.name, replayTrace(events));
        EXPECT_EQ(first, second) << inc.name;
    }
}

/**
 * Live-vs-replay: simulate the incident fresh (the live run, with the
 * analyzer's telemetry recorded as it happens), then replay the
 * committed trace file; trace bytes, label bytes, and verdict bytes
 * must all match. Two incidents from different detector families.
 */
TEST(ReplayIdentity, LiveCaptureMatchesCommittedReplay)
{
    for (const char *name :
         {"link_failure_single", "node_crash_ecc"}) {
        const CaptureResult live = captureIncident(name);
        const std::string tracePath =
            kCorpusDir + "/" + std::string(name) + ".trace.jsonl";
        const std::string labelPath =
            kCorpusDir + "/" + std::string(name) + ".label.json";
        EXPECT_EQ(trace::writeJsonl(live.events),
                  readFileOrThrow(tracePath))
            << name;
        EXPECT_EQ(writeLabelJson(live.label),
                  readFileOrThrow(labelPath))
            << name;
        EXPECT_EQ(verdictsToJsonl(name, replayTrace(live.events)),
                  verdictsToJsonl(name,
                                  replayTrace(loadTrace(tracePath))))
            << name;
    }
}

TEST(ReplayIdentity, CaptureRejectsUnknownIncident)
{
    EXPECT_THROW(captureIncident("no_such_incident"),
                 std::invalid_argument);
}

// --- the incident analyzer on synthetic telemetry --------------------

TEST(ReplayAnalyzer, GroupsBothDirectionsOfOneCut)
{
    c4d::IncidentAnalyzer an;
    c4d::LinkEventRecord down;
    down.when = seconds(10);
    down.link = 518;
    down.flowsRerouted = 2;
    an.onLinkEvent(down);
    down.link = 519;
    down.flowsRerouted = 0;
    an.onLinkEvent(down);
    const std::vector<c4d::IncidentVerdict> vs = an.finish();
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].kind, c4d::IncidentKind::LinkFailure);
    EXPECT_EQ(vs[0].link, 518);
    EXPECT_EQ(vs[0].detectedAt, seconds(10));
}

TEST(ReplayAnalyzer, StormCollapsesSpreadOutCuts)
{
    c4d::IncidentAnalyzer an;
    c4d::LinkEventRecord down;
    down.flowsRerouted = 1;
    for (int i = 0; i < 4; ++i) {
        down.when = seconds(10 + 2 * i); // beyond linkGroupWindow
        down.link = 100 + i;
        an.onLinkEvent(down);
    }
    const std::vector<c4d::IncidentVerdict> vs = an.finish();
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].kind, c4d::IncidentKind::FaultStorm);
    // Detected when the stormMinLinks-th group arrived, not at finish.
    EXPECT_EQ(vs[0].detectedAt, seconds(14));
}

// --- scoring ---------------------------------------------------------

Incident
labeledIncident(const std::string &kind, NodeId node, Time tInject)
{
    Incident inc;
    inc.name = "synthetic";
    inc.label.name = "synthetic";
    inc.label.rootCause = kind;
    inc.label.culpritNode = node;
    inc.label.tInject = tInject;
    return inc;
}

c4d::IncidentVerdict
verdictOf(c4d::IncidentKind kind, NodeId node, Time at)
{
    c4d::IncidentVerdict v;
    v.kind = kind;
    v.node = node;
    v.detectedAt = at;
    return v;
}

TEST(ReplayScore, NodeScopedMatchYieldsTtd)
{
    const Incident inc =
        labeledIncident("node_crash", 5, seconds(10));
    const IncidentScore s = scoreIncident(
        inc,
        {verdictOf(c4d::IncidentKind::NodeCrash, 5, seconds(52))});
    EXPECT_TRUE(s.truePositive);
    EXPECT_FALSE(s.falseNegative);
    EXPECT_EQ(s.falsePositives, 0);
    EXPECT_DOUBLE_EQ(s.ttdSeconds, 42.0);
    EXPECT_EQ(s.outcome, "detected");
}

TEST(ReplayScore, WrongNodeIsMissPlusFalsePositive)
{
    const Incident inc =
        labeledIncident("node_crash", 5, seconds(10));
    const IncidentScore s = scoreIncident(
        inc,
        {verdictOf(c4d::IncidentKind::NodeCrash, 4, seconds(52))});
    EXPECT_FALSE(s.truePositive);
    EXPECT_TRUE(s.falseNegative);
    EXPECT_EQ(s.falsePositives, 1);
    EXPECT_EQ(s.outcome, "missed");
}

TEST(ReplayScore, DetectionBeforeInjectionDoesNotCount)
{
    const Incident inc =
        labeledIncident("node_crash", 5, seconds(10));
    const IncidentScore s = scoreIncident(
        inc,
        {verdictOf(c4d::IncidentKind::NodeCrash, 5, seconds(9))});
    EXPECT_FALSE(s.truePositive);
    EXPECT_EQ(s.falsePositives, 1);
}

TEST(ReplayScore, LinkScopedMatchUsesMembership)
{
    Incident inc = labeledIncident("link_failure", kInvalidId, 0);
    inc.label.culpritLinks = {518, 519};
    c4d::IncidentVerdict hit =
        verdictOf(c4d::IncidentKind::LinkFailure, kInvalidId, seconds(1));
    hit.link = 519;
    EXPECT_TRUE(scoreIncident(inc, {hit}).truePositive);
    hit.link = 7;
    EXPECT_FALSE(scoreIncident(inc, {hit}).truePositive);
}

TEST(ReplayScore, NoneLabelMakesEveryVerdictNoise)
{
    Incident inc = labeledIncident("none", kInvalidId, 0);
    EXPECT_EQ(scoreIncident(inc, {}).outcome, "clean");
    const IncidentScore noisy = scoreIncident(
        inc,
        {verdictOf(c4d::IncidentKind::LinkFailure, kInvalidId,
                   seconds(1))});
    EXPECT_EQ(noisy.outcome, "noisy");
    EXPECT_EQ(noisy.falsePositives, 1);
}

TEST(ReplayScore, AggregateRollsUpPrecisionRecallAndTtd)
{
    IncidentScore tp;
    tp.truePositive = true;
    tp.ttdSeconds = 10.0;
    IncidentScore tp2 = tp;
    tp2.ttdSeconds = 30.0;
    tp2.falsePositives = 1;
    IncidentScore fn;
    fn.falseNegative = true;
    const ScoreReport r = aggregateScores({tp, tp2, fn});
    EXPECT_EQ(r.tp, 2);
    EXPECT_EQ(r.fp, 1);
    EXPECT_EQ(r.fn, 1);
    EXPECT_DOUBLE_EQ(r.precision, 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(r.recall, 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(r.meanTtdSeconds, 20.0);
    EXPECT_DOUBLE_EQ(r.maxTtdSeconds, 30.0);
}

TEST(ReplayScore, EmptyCorpusScoresPerfect)
{
    const ScoreReport r = aggregateScores({});
    EXPECT_DOUBLE_EQ(r.precision, 1.0);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(ReplayScore, CommittedCorpusClearsTheGateFloors)
{
    std::vector<IncidentScore> scores;
    for (const Incident &inc : collectIncidents(kCorpusDir))
        scores.push_back(
            scoreIncident(inc, replayTrace(loadTrace(inc.tracePath))));
    const ScoreReport r = aggregateScores(std::move(scores));
    EXPECT_GE(r.precision, 0.9);
    EXPECT_GE(r.recall, 0.9);
}

} // namespace
} // namespace c4::replay
