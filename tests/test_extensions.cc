/**
 * @file
 * Tests for the paper's Section-V extensions: alltoall / expert
 * parallelism (load imbalance vs persistent stragglers), the
 * halving-doubling algorithm, the background root-cause analyzer, and
 * topology-aware placement.
 */

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <utility>

#include "c4d/rca.h"
#include "core/cluster.h"
#include "core/placement.h"
#include "testutil/testutil.h"
#include "train/job.h"
#include "train/model.h"

namespace c4 {
namespace {

using accl::AlgoKind;
using accl::CollOp;
using accl::CollectiveResult;
using accl::DeviceInfo;

using Harness = testutil::AcclHarness;

TEST(AllToAll, CompletesWithCorrectBookkeeping)
{
    Harness h(4);
    const CommId comm = h.fullComm(4);
    CollectiveResult res;
    h.lib.postCollective(comm, CollOp::AllToAll, mib(64),
                         [&](const CollectiveResult &r) { res = r; });
    h.sim.run();
    EXPECT_EQ(res.op, CollOp::AllToAll);
    EXPECT_GT(res.endTime, res.startTime);
    EXPECT_GT(toGbps(res.busBw()), 10.0);
}

TEST(AllToAll, MovesTrafficBetweenEveryNodePair)
{
    Harness h(3);
    const CommId comm = h.fullComm(3);
    bool done = false;
    h.lib.postCollective(comm, CollOp::AllToAll, mib(32),
                         [&](const CollectiveResult &) { done = true; });
    h.sim.run();
    ASSERT_TRUE(done);

    std::set<std::pair<NodeId, NodeId>> pairs;
    for (const auto &rec : h.lib.monitor().drainConn())
        pairs.insert({rec.srcNode, rec.dstNode});
    // Every ordered cross-node pair must have carried messages.
    EXPECT_EQ(pairs.size(), 6u);
}

TEST(AllToAll, SingleRankDegenerates)
{
    Harness h(1);
    std::vector<DeviceInfo> d = {{0, 0, 0}};
    const CommId comm = h.lib.createCommunicator(1, d);
    bool done = false;
    h.lib.postCollective(comm, CollOp::AllToAll, mib(1),
                         [&](const CollectiveResult &) { done = true; });
    h.sim.run();
    EXPECT_TRUE(done);
}

TEST(HalvingDoubling, CompletesOnPowerOfTwo)
{
    Harness h(4);
    const CommId comm = h.fullComm(4); // 32 ranks (power of 2)
    CollectiveResult res;
    h.lib.postCollective(
        comm, CollOp::AllReduce, mib(64),
        [&](const CollectiveResult &r) { res = r; }, {},
        AlgoKind::HalvingDoubling);
    h.sim.run();
    EXPECT_EQ(res.algo, AlgoKind::HalvingDoubling);
    EXPECT_GT(toGbps(res.busBw()), 10.0);
}

TEST(HalvingDoubling, FallsBackToRingOffPowerOfTwo)
{
    Harness h(3);
    const CommId comm = h.fullComm(3); // 24 ranks
    bool done = false;
    h.lib.postCollective(
        comm, CollOp::AllReduce, mib(16),
        [&](const CollectiveResult &) { done = true; }, {},
        AlgoKind::HalvingDoubling);
    h.sim.run();
    EXPECT_TRUE(done);
}

struct MoeScenario : testutil::AcclHarness
{
    train::JobConfig
    moeJob()
    {
        train::JobConfig jc;
        jc.id = 1;
        jc.model = train::llama7b();
        jc.model.microbatchCompute = milliseconds(400);
        jc.model.epBytesPerMicrobatch = mib(32);
        jc.parallel = {.tp = 8, .pp = 1, .dp = 4, .ep = 4};
        jc.nodes = {0, 1, 2, 3};
        jc.initTime = seconds(5);
        jc.dpGroupsSimulated = 1;
        return jc;
    }
};

TEST(ExpertParallel, SpecValidation)
{
    train::ParallelismSpec spec{.tp = 8, .pp = 1, .dp = 4, .ep = 2};
    EXPECT_FALSE(spec.validate(8, 4).empty()); // ep != dp
    spec.ep = 4;
    EXPECT_TRUE(spec.validate(8, 4).empty());
}

TEST(ExpertParallel, JobRunsAllToAllsPerIteration)
{
    MoeScenario h;
    train::TrainingJob job(h.sim, h.lib, h.moeJob());
    job.start();
    h.sim.run(minutes(2));
    EXPECT_GT(job.iterationsCompleted(), 5u);
    EXPECT_NE(job.epComm(), kInvalidId);

    int alltoalls = 0;
    for (const auto &rec : h.lib.monitor().drainColl()) {
        if (rec.op == CollOp::AllToAll && rec.rank == 0)
            ++alltoalls;
    }
    // Dispatch + combine per iteration.
    EXPECT_GE(alltoalls,
              2 * static_cast<int>(job.iterationsCompleted()) - 2);
}

TEST(ExpertParallel, TransientImbalanceDoesNotTriggerC4d)
{
    // The paper (Section V): EP load imbalance "can be mitigated by
    // averaging collected data over a predefined period to smooth out
    // random variations". The rotating skew must not be blamed on any
    // single rank.
    MoeScenario h;
    c4d::C4dConfig cfg;
    cfg.evaluatePeriod = seconds(2);
    cfg.analyzer.minWaitForSlow = milliseconds(20);
    c4d::C4dMaster master(h.sim, cfg);
    c4d::C4Agent agent(h.sim, h.lib.monitor(), master, seconds(1));
    master.start();
    agent.start();

    train::JobConfig jc = h.moeJob();
    jc.epLoadImbalanceCv = 0.5; // heavy but rotating skew
    train::TrainingJob job(h.sim, h.lib, jc);
    job.start();
    h.sim.run(minutes(5));

    for (const auto &ev : master.eventLog())
        EXPECT_NE(ev.kind, c4d::C4dEventKind::NonCommSlow)
            << "transient EP imbalance misclassified: " << ev.str();
}

TEST(ExpertParallel, PersistentStragglerStillDetected)
{
    MoeScenario h;
    c4d::C4dConfig cfg;
    cfg.evaluatePeriod = seconds(2);
    cfg.analyzer.minWaitForSlow = milliseconds(20);
    c4d::C4dMaster master(h.sim, cfg);
    c4d::C4Agent agent(h.sim, h.lib.monitor(), master, seconds(1));
    master.start();
    agent.start();

    train::JobConfig jc = h.moeJob();
    jc.epLoadImbalanceCv = 0.3;
    train::TrainingJob job(h.sim, h.lib, jc);
    job.start();
    h.sim.run(minutes(1));
    job.setNodeComputeScale(2, 3.0); // persistent straggler on node 2
    h.sim.run(minutes(6));

    bool localized = false;
    for (const auto &ev : master.eventLog()) {
        if (ev.kind == c4d::C4dEventKind::NonCommSlow) {
            for (NodeId n : ev.suspectNodes)
                localized |= n == 2;
        }
    }
    EXPECT_TRUE(localized);
}

TEST(Rca, HardwareCorroborationWins)
{
    c4d::RootCauseAnalyzer rca;
    c4d::HardwareLogEntry hw;
    hw.when = minutes(9);
    hw.node = 5;
    hw.type = fault::FaultType::EccError;
    rca.ingestHardwareEvent(hw);

    c4d::C4dEvent ev;
    ev.when = minutes(10);
    ev.kind = c4d::C4dEventKind::CommHang;
    ev.suspectNodes = {5};
    const auto report = rca.analyze(ev);
    EXPECT_TRUE(report.corroborated);
    EXPECT_EQ(report.probableCause, fault::FaultType::EccError);
    EXPECT_GT(report.confidence, 0.9);
}

TEST(Rca, WindowAndNodeGating)
{
    c4d::RootCauseAnalyzer rca;
    c4d::HardwareLogEntry hw;
    hw.when = minutes(9);
    hw.node = 5;
    hw.type = fault::FaultType::NvlinkError;
    rca.ingestHardwareEvent(hw);

    c4d::C4dEvent ev;
    ev.kind = c4d::C4dEventKind::CommHang;
    ev.suspectNodes = {7}; // different node
    ev.when = minutes(10);
    EXPECT_FALSE(rca.analyze(ev).corroborated);

    ev.suspectNodes = {5};
    ev.when = hours(2); // outside the correlation window
    EXPECT_FALSE(rca.analyze(ev).corroborated);
}

TEST(Rca, SyndromePriors)
{
    c4d::RootCauseAnalyzer rca;
    c4d::C4dEvent ev;
    ev.kind = c4d::C4dEventKind::NonCommHang;
    EXPECT_EQ(rca.analyze(ev).probableCause,
              fault::FaultType::CudaError);

    ev.kind = c4d::C4dEventKind::CommHang;
    EXPECT_EQ(rca.analyze(ev).probableCause,
              fault::FaultType::AckTimeout);

    ev.kind = c4d::C4dEventKind::NonCommSlow;
    EXPECT_EQ(rca.analyze(ev).probableCause,
              fault::FaultType::SlowNode);

    ev.kind = c4d::C4dEventKind::CommSlow;
    ev.detail = "source-tx-slow src=3";
    EXPECT_EQ(rca.analyze(ev).probableCause,
              fault::FaultType::SlowNicTx);
    ev.detail = "dest-rx-slow dst=4";
    EXPECT_EQ(rca.analyze(ev).probableCause,
              fault::FaultType::SlowNicRx);
}

TEST(Rca, HistogramAggregates)
{
    std::vector<c4d::RootCauseReport> reports(3);
    reports[0].probableCause = fault::FaultType::EccError;
    reports[1].probableCause = fault::FaultType::EccError;
    reports[2].probableCause = fault::FaultType::SlowNode;
    const auto hist = c4d::RootCauseAnalyzer::histogram(reports);
    EXPECT_EQ(hist.at(fault::FaultType::EccError), 2);
    EXPECT_EQ(hist.at(fault::FaultType::SlowNode), 1);
}

TEST(Rca, HardwareVisibility)
{
    using fault::FaultType;
    EXPECT_TRUE(c4d::faultVisibleInHardwareLogs(FaultType::EccError));
    EXPECT_TRUE(c4d::faultVisibleInHardwareLogs(FaultType::LinkDown));
    EXPECT_FALSE(c4d::faultVisibleInHardwareLogs(FaultType::CudaError));
    EXPECT_FALSE(
        c4d::faultVisibleInHardwareLogs(FaultType::NcclTimeout));
}

TEST(Rca, ClusterWiresHardwareMonitors)
{
    core::ClusterConfig cc;
    cc.topology = core::paperTestbed();
    cc.enableC4d = true;
    core::Cluster cluster(cc);
    ASSERT_NE(cluster.rca(), nullptr);

    fault::FaultEvent ecc;
    ecc.type = fault::FaultType::EccError;
    ecc.node = 3;
    cluster.faults().injectNow(ecc);

    fault::FaultEvent cuda; // no hardware trace
    cuda.type = fault::FaultType::CudaError;
    cuda.node = 4;
    cluster.faults().injectNow(cuda);

    EXPECT_EQ(cluster.rca()->logSize(), 1u);
}

TEST(Placement, PackedMinimizesSegments)
{
    net::Topology topo(core::paperTestbed()); // 4 segments of 4
    std::vector<bool> used(16, false);
    const auto packed = core::choosePlacement(
        topo, used, 4, core::PlacementStrategy::Packed);
    ASSERT_EQ(packed.size(), 4u);
    EXPECT_EQ(core::segmentsSpanned(topo, packed), 1);

    const auto scattered = core::choosePlacement(
        topo, used, 4, core::PlacementStrategy::Scattered);
    ASSERT_EQ(scattered.size(), 4u);
    EXPECT_EQ(core::segmentsSpanned(topo, scattered), 4);
}

TEST(Placement, PackedPrefersEmptiestSegments)
{
    net::Topology topo(core::paperTestbed());
    std::vector<bool> used(16, false);
    used[0] = used[1] = true; // segment 0 half full
    const auto packed = core::choosePlacement(
        topo, used, 4, core::PlacementStrategy::Packed);
    ASSERT_EQ(packed.size(), 4u);
    // Fits entirely into a fully-free segment instead of spanning two.
    EXPECT_EQ(core::segmentsSpanned(topo, packed), 1);
    EXPECT_NE(topo.segmentOf(packed.front()), 0);
}

TEST(Placement, AllOrNothingOnShortPool)
{
    net::Topology topo(core::paperTestbed());
    std::vector<bool> used(16, true);
    used[3] = false;
    EXPECT_TRUE(core::choosePlacement(topo, used, 2,
                                      core::PlacementStrategy::Packed)
                    .empty());
}

TEST(Placement, ClusterStrategyParameter)
{
    core::ClusterConfig cc;
    cc.topology = core::paperTestbed();
    core::Cluster cluster(cc);
    const auto scattered = cluster.allocateNodes(
        4, core::PlacementStrategy::Scattered);
    EXPECT_EQ(core::segmentsSpanned(cluster.topology(), scattered), 4);
    // Each segment now has 3 free nodes, so 4 packed nodes must span
    // exactly 2 segments (3 + 1) — still the minimum possible.
    const auto packed = cluster.allocateNodes(4);
    EXPECT_EQ(core::segmentsSpanned(cluster.topology(), packed), 2);
    EXPECT_EQ(cluster.freeNodes(), 8);
}


TEST(StartupFailure, BrokenNodeFailsInitAndManualPathRecovers)
{
    core::ClusterConfig cc;
    cc.topology = core::paperTestbed();
    cc.enableC4d = true;
    cc.steering.manualDiagnosisMedian = minutes(30);
    cc.steering.manualDiagnosisSigma = 0.2;
    core::Cluster cluster(cc);
    cluster.provisionBackupNodes(2);
    cluster.startRuntime();

    // Break a node before the job ever starts (e.g. an NVLink defect
    // from the previous tenant).
    fault::FaultEvent ev;
    ev.type = fault::FaultType::NvlinkError;
    ev.node = 2;
    cluster.faults().injectNow(ev);
    EXPECT_TRUE(cluster.isNodeBroken(2));

    train::JobConfig jc;
    jc.id = 1;
    jc.model = train::llama7b();
    jc.model.microbatchCompute = milliseconds(400);
    jc.parallel = {.tp = 8, .pp = 1, .dp = 4};
    jc.nodes = {0, 1, 2, 3}; // includes the broken node
    jc.initTime = seconds(30);
    jc.dpGroupsSimulated = 1;
    auto &job = cluster.addJob(jc);
    job.start();

    // Init fails: start failure, invisible to C4D.
    cluster.run(minutes(2));
    EXPECT_GE(job.startFailures(), 1u);
    EXPECT_EQ(cluster.c4dMaster()->eventsEmitted(), 0u);

    // Manual diagnosis finds the broken node, isolates it, restarts.
    cluster.run(hours(4));
    EXPECT_EQ(job.state(), train::TrainingJob::State::Running);
    EXPECT_GT(job.iterationsCompleted(), 0u);
    EXPECT_EQ(std::count(job.nodes().begin(), job.nodes().end(), 2), 0);
    ASSERT_FALSE(cluster.steering()->recoveries().empty());
    EXPECT_FALSE(cluster.steering()->recoveries().front().viaC4d);
}

TEST(StartupFailure, CleanNodesPassValidation)
{
    core::ClusterConfig cc;
    cc.topology = core::paperTestbed();
    cc.enableC4d = true;
    core::Cluster cluster(cc);
    cluster.startRuntime();

    train::JobConfig jc;
    jc.id = 1;
    jc.model = train::llama7b();
    jc.model.microbatchCompute = milliseconds(400);
    jc.parallel = {.tp = 8, .pp = 1, .dp = 2};
    jc.initTime = seconds(10);
    jc.dpGroupsSimulated = 1;
    auto &job = cluster.addJob(jc);
    job.start();
    cluster.run(minutes(1));
    EXPECT_EQ(job.startFailures(), 0u);
    EXPECT_EQ(job.state(), train::TrainingJob::State::Running);
}

TEST(StartupFailure, RepairClearsBrokenState)
{
    core::ClusterConfig cc;
    cc.topology = core::paperTestbed();
    core::Cluster cluster(cc);
    fault::FaultEvent ev;
    ev.type = fault::FaultType::EccError;
    ev.node = 7;
    cluster.faults().injectNow(ev);
    EXPECT_TRUE(cluster.isNodeBroken(7));
    cluster.repairNode(7);
    EXPECT_FALSE(cluster.isNodeBroken(7));
    EXPECT_EQ(cluster.brokenNodeCount(), 0u);
}

TEST(StartupFailure, TransientFaultsDoNotBreakNodes)
{
    core::ClusterConfig cc;
    cc.topology = core::paperTestbed();
    core::Cluster cluster(cc);
    fault::FaultEvent ev;
    ev.type = fault::FaultType::NcclTimeout; // software/stack: transient
    ev.node = 5;
    cluster.faults().injectNow(ev);
    EXPECT_FALSE(cluster.isNodeBroken(5));
}


TEST(PacketSpray, ReRollsPathsPerMessage)
{
    Harness h(2);
    accl::SprayPathPolicy spray;
    h.lib.setPathPolicy(&spray);
    const CommId comm = h.fullComm(2);
    bool done = false;
    h.lib.postCollective(comm, CollOp::AllReduce, mib(64),
                         [&](const CollectiveResult &) { done = true; });
    h.sim.run();
    ASSERT_TRUE(done);

    // The same QP must have used more than one spine across rounds.
    std::map<int, std::set<std::int32_t>> spines_per_qp;
    for (const auto &rec : h.lib.monitor().drainConn()) {
        if (rec.spine != kInvalidId)
            spines_per_qp[rec.channel * 100 + rec.qpIndex +
                          1000 * rec.srcRank]
                .insert(rec.spine);
    }
    bool varied = false;
    for (const auto &[qp, spines] : spines_per_qp)
        varied |= spines.size() > 1;
    EXPECT_TRUE(varied);
}

TEST(PacketSpray, AveragesOutButDoesNotEliminateCollisions)
{
    // Spraying beats a badly-drawn static ECMP layout on average, but
    // cannot reach C4P's planned 362 Gbps ceiling — individual rounds
    // still collide (paper Section V's argument against relying on
    // adaptive routing alone).
    auto run = [](accl::PathPolicy *policy) {
        Harness h(4);
        if (policy != nullptr)
            h.lib.setPathPolicy(policy);
        const CommId comm = h.fullComm(4);
        Summary bw;
        std::function<void(int)> post = [&](int remaining) {
            if (remaining == 0)
                return;
            h.lib.postCollective(comm, CollOp::AllReduce, mib(64),
                                 [&, remaining](
                                     const CollectiveResult &r) {
                                     bw.add(toGbps(r.busBw()));
                                     post(remaining - 1);
                                 });
        };
        post(20);
        h.sim.run();
        return bw.mean();
    };

    accl::SprayPathPolicy spray;
    const double sprayed = run(&spray);
    EXPECT_GT(sprayed, 150.0);
    EXPECT_LT(sprayed, 361.0); // below the planned-path ceiling
}

TEST(StragglerConsistency, RotatingMinimumSuppressed)
{
    // Synthetic waits: heavy skew whose minimum-wait rank rotates.
    std::vector<accl::RankWaitRecord> waits;
    for (int op = 0; op < 12; ++op) {
        for (Rank r = 0; r < 4; ++r) {
            accl::RankWaitRecord w;
            w.comm = 1;
            w.seq = static_cast<accl::CollSeq>(op);
            w.rank = r;
            w.recvWait = (r == op % 4) ? milliseconds(1)
                                       : milliseconds(600);
            waits.push_back(w);
        }
    }
    const auto finding = c4d::analyzeNonCommSlow(4, waits);
    EXPECT_FALSE(finding.found);
}

TEST(StragglerConsistency, StableMinimumStillDetected)
{
    std::vector<accl::RankWaitRecord> waits;
    for (int op = 0; op < 12; ++op) {
        for (Rank r = 0; r < 4; ++r) {
            accl::RankWaitRecord w;
            w.comm = 1;
            w.seq = static_cast<accl::CollSeq>(op);
            w.rank = r;
            w.recvWait =
                (r == 2) ? milliseconds(1) : milliseconds(600);
            waits.push_back(w);
        }
    }
    const auto finding = c4d::analyzeNonCommSlow(4, waits);
    ASSERT_TRUE(finding.found);
    EXPECT_EQ(finding.rank, 2);
}

} // namespace
} // namespace c4
