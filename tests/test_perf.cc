/**
 * @file
 * Tests for the wall-clock perf harness (`c4bench --perf`): the
 * harness runs end to end, the c4perf/2 JSON schema holds, and the
 * preserved legacy kernel is behaviorally equivalent to the pooled
 * one (same fire order, clock, and live counts through randomized
 * schedule/cancel/run soups — the property the speedup claim rests
 * on; a faster kernel that fires in a different order measures
 * nothing).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/json.h"
#include "perf/legacy_kernel.h"
#include "perf/perf.h"
#include "sim/simulator.h"

namespace c4::perf {
namespace {

PerfOptions
smokeOptions()
{
    PerfOptions opt;
    opt.smoke = true;
    opt.reps = 1;
    opt.warmup = 0;
    return opt;
}

TEST(PerfHarness, RunsEveryWorkloadOnce)
{
    const PerfReport report = runPerf(smokeOptions());
    ASSERT_EQ(report.workloads.size(), 8u);
    std::map<std::string, int> names;
    for (const WorkloadResult &r : report.workloads) {
        ++names[r.name];
        EXPECT_EQ(r.reps, 1) << r.name;
        EXPECT_GT(r.itemsPerRep, 0u) << r.name;
        EXPECT_GT(r.medianNs, 0u) << r.name;
        EXPECT_EQ(r.medianNs, r.minNs) << r.name; // one rep
        EXPECT_GT(r.itemsPerSecMedian, 0.0) << r.name;
    }
    for (const auto &[name, count] : names)
        EXPECT_EQ(count, 1) << name << " measured twice";
    // One ratio per pooled/legacy pair.
    ASSERT_EQ(report.ratios.size(), 3u);
    for (const KernelRatio &r : report.ratios) {
        EXPECT_GT(r.speedupMedian, 0.0) << r.name;
        EXPECT_GT(r.speedupBest, 0.0) << r.name;
    }
}

TEST(PerfHarness, OnlyFilterSelectsSubset)
{
    PerfOptions opt = smokeOptions();
    opt.only = "kernel_burst_drain";
    const PerfReport report = runPerf(opt);
    ASSERT_EQ(report.workloads.size(), 2u);
    EXPECT_EQ(report.workloads[0].name, "kernel_burst_drain_pooled");
    EXPECT_EQ(report.workloads[1].name, "kernel_burst_drain_legacy");
    ASSERT_EQ(report.ratios.size(), 1u);
    EXPECT_EQ(report.ratios[0].name, "kernel_burst_drain");
}

TEST(PerfHarness, JsonReportMatchesSchema)
{
    PerfOptions opt = smokeOptions();
    opt.only = "kernel_cancel_churn";
    const PerfReport report = runPerf(opt);
    const Json root = parseJson(perfReportJson(report, opt));
    ASSERT_EQ(root.kind, Json::Kind::Object);

    const Json::Member *schema = root.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->value.string, "c4perf/2");
    const Json::Member *mode = root.find("mode");
    ASSERT_NE(mode, nullptr);
    EXPECT_EQ(mode->value.string, "smoke");

    const Json::Member *workloads = root.find("workloads");
    ASSERT_NE(workloads, nullptr);
    ASSERT_EQ(workloads->value.kind, Json::Kind::Array);
    ASSERT_EQ(workloads->value.array.size(), 2u);
    for (const Json &w : workloads->value.array) {
        for (const char *key :
             {"name", "reps", "warmup", "items_per_rep", "median_ns",
              "min_ns", "items_per_sec_median", "items_per_sec_best"})
            EXPECT_NE(w.find(key), nullptr) << key;
    }

    const Json::Member *ratios = root.find("ratios");
    ASSERT_NE(ratios, nullptr);
    ASSERT_EQ(ratios->value.kind, Json::Kind::Array);
    ASSERT_EQ(ratios->value.array.size(), 1u);
    const Json &ratio = ratios->value.array.front();
    EXPECT_EQ(ratio.find("name")->value.string, "kernel_cancel_churn");
    EXPECT_NE(ratio.find("pooled_vs_legacy_median"), nullptr);
    EXPECT_NE(ratio.find("pooled_vs_legacy_best"), nullptr);
}

// Pooled-vs-legacy equivalence: drive both kernels through identical
// randomized soups and require identical observable behavior.
struct Lcg
{
    std::uint64_t s;

    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s >> 33;
    }
};

void
soup(std::uint64_t seed)
{
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    Simulator pooled;
    LegacySimulator legacy;
    std::vector<int> pooledFired, legacyFired;
    std::map<int, std::pair<EventId, LegacyEventId>> live;
    Lcg rng{seed};
    int nextTag = 0;

    for (int step = 0; step < 10000; ++step) {
        switch (rng.next() % 8) {
        case 0:
        case 1:
        case 2:
        case 3:
        case 4: { // schedule the same event in both kernels
            const std::uint64_t r = rng.next();
            Duration d;
            if ((r & 3) == 0)
                d = static_cast<Duration>(r % 7); // ties
            else if ((r & 3) == 1)
                d = static_cast<Duration>(r % 100000000); // far
            else
                d = static_cast<Duration>(r % 5000); // near
            const int tag = nextTag++;
            live[tag] = {
                pooled.scheduleAfter(
                    d, [tag, &pooledFired] { pooledFired.push_back(tag); }),
                legacy.scheduleAfter(
                    d,
                    [tag, &legacyFired] { legacyFired.push_back(tag); })};
            break;
        }
        case 5: { // cancel a pseudo-random (possibly fired) tag
            if (live.empty())
                break;
            auto it = live.begin();
            std::advance(it, static_cast<std::ptrdiff_t>(
                                 rng.next() % live.size()));
            EXPECT_EQ(pooled.cancel(it->second.first),
                      legacy.cancel(it->second.second));
            live.erase(it);
            break;
        }
        default: { // identical sliced run
            const Time until = pooled.now() +
                               static_cast<Duration>(rng.next() % 20000);
            pooled.run(until);
            legacy.run(until);
            ASSERT_EQ(pooled.now(), legacy.now());
            ASSERT_EQ(pooled.pendingCount(), legacy.pendingCount());
            break;
        }
        }
    }
    pooled.run();
    legacy.run();
    EXPECT_EQ(pooledFired, legacyFired);
    EXPECT_EQ(pooled.now(), legacy.now());
    EXPECT_EQ(pooled.executedCount(), legacy.executedCount());
    EXPECT_EQ(pooled.pendingCount(), legacy.pendingCount());
}

TEST(PooledLegacyEquivalence, RandomSoupSeed1)
{
    soup(0x2545f4914f6cdd1dull);
}

TEST(PooledLegacyEquivalence, RandomSoupSeed2)
{
    soup(0x853c49e6748fea9bull);
}

TEST(PooledLegacyEquivalence, RandomSoupSeed3)
{
    soup(0xda942042e4dd58b5ull);
}

} // namespace
} // namespace c4::perf
