/**
 * @file
 * Tests for the Table III downtime model: component arithmetic, policy
 * presets, and the June-vs-December contrast (~30x downtime reduction).
 */

#include <gtest/gtest.h>

#include "c4d/downtime.h"

namespace c4::c4d {
namespace {

using fault::FaultRates;
using fault::FaultType;

TEST(CauseGroups, MappingMatchesTableIII)
{
    EXPECT_EQ(causeGroupOf(FaultType::EccError), CauseGroup::EccNvlink);
    EXPECT_EQ(causeGroupOf(FaultType::NvlinkError),
              CauseGroup::EccNvlink);
    EXPECT_EQ(causeGroupOf(FaultType::CudaError), CauseGroup::Cuda);
    EXPECT_EQ(causeGroupOf(FaultType::NcclTimeout),
              CauseGroup::CclTimeout);
    EXPECT_EQ(causeGroupOf(FaultType::AckTimeout),
              CauseGroup::AckTimeout);
    EXPECT_EQ(causeGroupOf(FaultType::NetworkOther),
              CauseGroup::Unknown);
    EXPECT_STREQ(causeGroupName(CauseGroup::EccNvlink),
                 "ECC/NVLink Error");
}

TEST(DowntimeBreakdown, TotalsAreSums)
{
    DowntimeBreakdown b;
    b.postCheckpoint = 0.07;
    b.detection = 0.03;
    b.diagnosisByCause[0] = 0.08;
    b.diagnosisByCause[1] = 0.04;
    b.reinit = 0.01;
    EXPECT_DOUBLE_EQ(b.diagnosisTotal(), 0.12);
    EXPECT_DOUBLE_EQ(b.total(), 0.23);
}

TEST(DowntimeModel, JuneReproducesPaperScale)
{
    DowntimeModel model(RecoveryPolicy::june2023(),
                        FaultRates::paperJune2023(), /*gpus=*/2400,
                        days(30), /*seed=*/1);
    const DowntimeBreakdown b = model.run(128);

    // Paper Table III, June 2023: total 31.19%, diagnosis 19.65%,
    // post-checkpoint 7.53%, detection 3.41%, re-init 0.6%.
    EXPECT_NEAR(b.total(), 0.3119, 0.10);
    EXPECT_NEAR(b.diagnosisTotal(), 0.1965, 0.08);
    EXPECT_NEAR(b.postCheckpoint, 0.0753, 0.03);
    EXPECT_NEAR(b.detection, 0.0341, 0.02);
    EXPECT_NEAR(b.reinit, 0.006, 0.004);

    // ~23 crashes/month at 2400 GPUs (40 at 4096).
    EXPECT_NEAR(b.totalEvents(), 23.4, 3.0);
}

TEST(DowntimeModel, DecemberReproducesPaperScale)
{
    DowntimeModel model(RecoveryPolicy::december2023(),
                        FaultRates::paperDecember2023(), /*gpus=*/2400,
                        days(30), /*seed=*/2);
    const DowntimeBreakdown b = model.run(128);

    // Paper Table III, December 2023: total 1.16%.
    EXPECT_NEAR(b.total(), 0.0116, 0.012);
    EXPECT_LT(b.detection, 0.005);
    EXPECT_LT(b.postCheckpoint, 0.01);
}

TEST(DowntimeModel, DeploymentGivesOrderOfMagnitudeReduction)
{
    DowntimeModel june(RecoveryPolicy::june2023(),
                       FaultRates::paperJune2023(), 2400, days(30), 3);
    DowntimeModel dec(RecoveryPolicy::december2023(),
                      FaultRates::paperDecember2023(), 2400, days(30),
                      4);
    const double ratio =
        june.run(64).total() / std::max(1e-9, dec.run(64).total());
    // Paper: 31.19 / 1.16 ~= 27x. Accept a wide band around it.
    EXPECT_GT(ratio, 12.0);
    EXPECT_LT(ratio, 60.0);
}

TEST(DowntimeModel, C4dAloneCutsDiagnosis)
{
    // Ablation: C4D with June-era checkpoints and hardware isolates the
    // detection+diagnosis effect.
    RecoveryPolicy c4d_only = RecoveryPolicy::june2023();
    c4d_only.c4dEnabled = true;
    c4d_only.c4dCoverage = 0.92;

    DowntimeModel base(RecoveryPolicy::june2023(),
                       FaultRates::paperJune2023(), 2400, days(30), 5);
    DowntimeModel with(c4d_only, FaultRates::paperJune2023(), 2400,
                       days(30), 6);
    const auto b0 = base.run(64);
    const auto b1 = with.run(64);
    EXPECT_LT(b1.diagnosisTotal(), b0.diagnosisTotal() * 0.5);
    EXPECT_LT(b1.detection, b0.detection * 0.5);
    // Post-checkpoint loss unchanged: same sparse checkpoints.
    EXPECT_NEAR(b1.postCheckpoint, b0.postCheckpoint, 0.03);
}

TEST(DowntimeModel, CheckpointIntervalTradeoff)
{
    // Sweeping the interval shows the post-checkpoint U-shape: too
    // sparse loses work, too frequent pays save overhead.
    RecoveryPolicy sparse = RecoveryPolicy::december2023();
    sparse.checkpointInterval = hours(8);
    RecoveryPolicy frequent = RecoveryPolicy::december2023();
    frequent.checkpointInterval = minutes(10);
    RecoveryPolicy manic = RecoveryPolicy::december2023();
    manic.checkpointInterval = seconds(20);

    const FaultRates rates = FaultRates::paperDecember2023();
    const double s =
        DowntimeModel(sparse, rates, 2400, days(30), 7).run(64)
            .postCheckpoint;
    const double f =
        DowntimeModel(frequent, rates, 2400, days(30), 8).run(64)
            .postCheckpoint;
    const double m =
        DowntimeModel(manic, rates, 2400, days(30), 9).run(64)
            .postCheckpoint;
    EXPECT_LT(f, s);
    EXPECT_LT(f, m);
}

TEST(DowntimeModel, ScalesWithGpuCount)
{
    const auto small =
        DowntimeModel(RecoveryPolicy::june2023(),
                      FaultRates::paperJune2023(), 512, days(30), 10)
            .run(64);
    const auto large =
        DowntimeModel(RecoveryPolicy::june2023(),
                      FaultRates::paperJune2023(), 4096, days(30), 11)
            .run(64);
    EXPECT_GT(large.totalEvents(), small.totalEvents() * 4.0);
    EXPECT_GT(large.total(), small.total() * 2.0);
}

class CoverageSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CoverageSweep, HigherCoverageNeverHurts)
{
    RecoveryPolicy p = RecoveryPolicy::december2023();
    p.c4dCoverage = GetParam();
    DowntimeModel model(p, FaultRates::paperDecember2023(), 2400,
                        days(30), 42);
    const auto b = model.run(64);
    // Sanity: totals stay bounded and decrease-ish in coverage. The
    // strict monotonicity is asserted across the sweep by the bench;
    // here each point must just be a valid fraction.
    EXPECT_GE(b.total(), 0.0);
    EXPECT_LT(b.total(), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Coverage, CoverageSweep,
                         ::testing::Values(0.0, 0.5, 0.9, 1.0));

} // namespace
} // namespace c4::c4d
