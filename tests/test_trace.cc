/**
 * @file
 * Event-trace subsystem: the zero-overhead detached path, recording
 * filters, byte-stable JSONL round-trips, fabric recompute
 * instrumentation and its deterministic ops counters, trace-file
 * byte-equality across runner thread counts, CSV invariance under
 * tracing, and divergence detection in the diff analyzer. The
 * end-to-end gate over the real c4bench/c4trace binaries lives in
 * cmake/trace_check.cmake (ctest -L trace).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "testutil/testutil.h"
#include "trace/analyze.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace c4::trace {
namespace {

namespace fs = std::filesystem;

/** Fresh per-test scratch directory under the system temp dir. */
fs::path
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::temp_directory_path() / ("c4_trace_test_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

Event
makeEvent(EventKind kind, Time when)
{
    Event ev;
    ev.kind = kind;
    ev.when = when;
    return ev;
}

// --- recorder / scope -------------------------------------------------

TEST(Scope, DetachedScopeRecordsNothingAndWantsNothing)
{
    TraceScope scope; // the zero-overhead default everywhere
    EXPECT_FALSE(scope.attached());
    for (int k = 0; k < kNumEventKinds; ++k)
        EXPECT_FALSE(scope.wants(static_cast<EventKind>(k)));
    scope.record(makeEvent(EventKind::FaultInjected, 1)); // no-op
}

TEST(Scope, FilterRestrictsWhatTheRecorderKeeps)
{
    TraceRecorder recorder(kindBit(EventKind::FaultInjected) |
                           kindBit(EventKind::JobArrival));
    TraceScope scope(&recorder);
    EXPECT_TRUE(scope.attached());
    EXPECT_TRUE(scope.wants(EventKind::FaultInjected));
    EXPECT_FALSE(scope.wants(EventKind::RecomputeEnd));

    scope.record(makeEvent(EventKind::FaultInjected, 1));
    scope.record(makeEvent(EventKind::RecomputeEnd, 2)); // filtered
    scope.record(makeEvent(EventKind::JobArrival, 3));
    ASSERT_EQ(recorder.size(), 2u);
    EXPECT_EQ(recorder.events()[0].kind, EventKind::FaultInjected);
    EXPECT_EQ(recorder.events()[1].kind, EventKind::JobArrival);
}

TEST(KindNames, RoundTripAndFilterParsing)
{
    for (int k = 0; k < kNumEventKinds; ++k) {
        const auto kind = static_cast<EventKind>(k);
        EventKind back;
        ASSERT_TRUE(eventKindFromName(eventKindName(kind), back));
        EXPECT_EQ(back, kind);
    }

    KindMask mask = 0;
    EXPECT_EQ(parseKindFilter("fault_injected,recompute_end", mask),
              "");
    EXPECT_EQ(mask, kindBit(EventKind::FaultInjected) |
                        kindBit(EventKind::RecomputeEnd));
    EXPECT_NE(parseKindFilter("fault_injected,bogus", mask).find(
                  "unknown trace event kind 'bogus'"),
              std::string::npos);
    EXPECT_NE(parseKindFilter(",,", mask).find("empty trace filter"),
              std::string::npos);
}

// --- JSONL round-trip -------------------------------------------------

TEST(Jsonl, RoundTripsEveryFieldByteStably)
{
    std::vector<Event> events;
    Event full;
    full.when = 1234567890123;
    full.kind = EventKind::SteeringDecision;
    full.job = 7;
    full.node = 42;
    full.a = -3;
    full.b = 1;
    full.value = 0.125;
    full.detail = "restart \"quoted\"\nnewline";
    events.push_back(full);
    events.push_back(makeEvent(EventKind::RecomputeBegin, 0));

    const std::string text = writeJsonl(events);
    const std::vector<Event> reloaded = parseJsonl(text);
    ASSERT_EQ(reloaded.size(), events.size());
    EXPECT_EQ(reloaded[0], events[0]);
    EXPECT_EQ(reloaded[1], events[1]);
    // Byte-stable: write -> parse -> write is the identity.
    EXPECT_EQ(writeJsonl(reloaded), text);
}

TEST(Jsonl, DefaultFieldsAreOmittedFromTheRecord)
{
    const std::string line =
        eventToJsonLine(makeEvent(EventKind::RecomputeBegin, 5));
    EXPECT_EQ(line, "{\"t\":5,\"k\":\"recompute_begin\"}");
}

TEST(Jsonl, RejectsMalformedAndUnknownRecords)
{
    EXPECT_THROW(parseJsonl("{\"t\":1}\n"), SpecError); // missing k
    EXPECT_THROW(parseJsonl("{\"t\":1,\"k\":\"nope\"}\n"), SpecError);
    EXPECT_THROW(
        parseJsonl("{\"t\":1,\"k\":\"job_arrival\",\"x\":2}\n"),
        SpecError);
    EXPECT_THROW(parseJsonl("not json\n"), SpecError);
    try {
        parseJsonl("{\"t\":1,\"k\":\"job_arrival\"}\nbroken\n");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(Export, SanitizedComponentsCannotTraverseDirectories)
{
    EXPECT_EQ(sanitizeFileComponent("fig9_dualport"),
              "fig9_dualport");
    EXPECT_EQ(sanitizeFileComponent("2:1 oversub"), "2_1_oversub");
    EXPECT_EQ(sanitizeFileComponent(""), "_");
    EXPECT_EQ(sanitizeFileComponent("."), "_");
    EXPECT_EQ(sanitizeFileComponent(".."), "__");
    EXPECT_EQ(sanitizeFileComponent("../evil"), ".._evil");
}

TEST(Export, ChromeTraceDowngradesUnpairedRecomputeSlices)
{
    // A filter that keeps only recompute_end must not emit unbalanced
    // "E" duration events (Chrome/Perfetto discard them).
    std::vector<Event> onlyEnds = {
        makeEvent(EventKind::RecomputeEnd, 10),
        makeEvent(EventKind::RecomputeEnd, 20)};
    ChromeTrack track;
    track.processName = "v";
    track.threadName = "trial 0";
    track.events = &onlyEnds;
    const std::string lone = writeChromeTrace({track});
    EXPECT_EQ(lone.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_EQ(lone.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(lone.find("\"ph\":\"i\""), std::string::npos);

    std::vector<Event> both = {
        makeEvent(EventKind::RecomputeBegin, 10),
        makeEvent(EventKind::RecomputeEnd, 20)};
    track.events = &both;
    const std::string paired = writeChromeTrace({track});
    EXPECT_NE(paired.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(paired.find("\"ph\":\"E\""), std::string::npos);
}

// --- fabric instrumentation ------------------------------------------

TEST(Fabric, RecomputeEventsCarryTheDeterministicOpsCounter)
{
    TraceRecorder recorder;
    testutil::FabricHarness h;
    h.sim.setTracer(TraceScope(&recorder));

    h.fabric.startFlow(h.request(0, 4, 1), mib(64), nullptr);
    h.fabric.startFlow(h.request(1, 5, 2), mib(64), nullptr);
    h.sim.run();

    EXPECT_GT(h.fabric.reallocationCount(), 0u);
    EXPECT_GT(h.fabric.recomputeOpsTotal(), 0u);

    std::uint64_t begins = 0, ends = 0;
    double lastOps = -1.0;
    for (const Event &ev : recorder.events()) {
        if (ev.kind == EventKind::RecomputeBegin)
            ++begins;
        if (ev.kind == EventKind::RecomputeEnd) {
            ++ends;
            lastOps = ev.value;
        }
    }
    EXPECT_EQ(begins, ends);
    EXPECT_EQ(begins, h.fabric.reallocationCount());
    // The last end event's cost matches the introspection counter.
    EXPECT_EQ(lastOps,
              static_cast<double>(h.fabric.recomputeOpsLast()));
}

TEST(Fabric, LinkStateChangesEmitPathReallocEvents)
{
    TraceRecorder recorder;
    testutil::FabricHarness h;
    h.sim.setTracer(TraceScope(&recorder));

    h.fabric.startFlow(h.request(0, 4, 1), gib(4), nullptr);
    (void)h.fabric.flowRate(1);
    const LinkId trunk = h.topo.trunkUplink(0, 0);
    h.fabric.setLinkUp(trunk, false);
    h.fabric.setLinkUp(trunk, true);

    std::vector<std::string> details;
    for (const Event &ev : recorder.events()) {
        if (ev.kind == EventKind::PathRealloc) {
            EXPECT_EQ(ev.a, trunk);
            details.push_back(ev.detail);
        }
    }
    ASSERT_EQ(details.size(), 2u);
    EXPECT_EQ(details[0], "link_down");
    EXPECT_EQ(details[1], "link_up");
}

TEST(Fabric, CapacityScalingEmitsLinkScalePathRealloc)
{
    TraceRecorder recorder;
    testutil::FabricHarness h;
    h.sim.setTracer(TraceScope(&recorder));

    h.fabric.startFlow(h.request(0, 4, 1), gib(4), nullptr);
    (void)h.fabric.flowRate(1);
    const LinkId uplink =
        h.topo.hostUplink(0, 0, net::Plane::Left);
    const bool used =
        h.fabric.flowRoute(1) != nullptr &&
        !h.fabric.flowRoute(1)->links.empty() &&
        h.fabric.flowRoute(1)->links.front() == uplink;
    h.fabric.setLinkCapacityScale(uplink, 0.5);
    (void)h.fabric.flowRate(1);

    const Event *scale = nullptr;
    for (const Event &ev : recorder.events())
        if (ev.kind == EventKind::PathRealloc &&
            ev.detail == "link_scale")
            scale = &ev;
    ASSERT_NE(scale, nullptr);
    EXPECT_EQ(scale->a, uplink);
    EXPECT_DOUBLE_EQ(scale->value, 0.5);
    if (used)
        EXPECT_EQ(scale->b, 1); // one flow routed over the link
}

TEST(Fabric, RecomputeBeginReportsDirtyLinkSeeds)
{
    TraceRecorder recorder;
    testutil::FabricHarness h;
    h.sim.setTracer(TraceScope(&recorder));

    h.fabric.startFlow(h.request(0, 4, 1), gib(4), nullptr);
    (void)h.fabric.flowRate(1);
    const std::size_t priorBegins = [&] {
        std::size_t n = 0;
        for (const Event &ev : recorder.events())
            n += ev.kind == EventKind::RecomputeBegin;
        return n;
    }();

    // A pure link event dirties exactly one link.
    h.fabric.setLinkCapacityScale(h.topo.trunkUplink(7, 7), 0.9);
    (void)h.fabric.flowRate(1);

    std::vector<const Event *> begins;
    for (const Event &ev : recorder.events())
        if (ev.kind == EventKind::RecomputeBegin)
            begins.push_back(&ev);
    ASSERT_EQ(begins.size(), priorBegins + 1);
    EXPECT_EQ(begins.back()->b, 1); // one dirty seed link
}

// --- runner integration ----------------------------------------------

/** A tiny traced workload: seed-paired ECMP/C4P allreduces plus one
 * scheduled NIC degradation, so fault, path, and recompute events all
 * appear. */
scenario::Scenario
tracedScenario(const char *name)
{
    auto variant = [](const char *label, bool c4p) {
        scenario::ScenarioSpec spec;
        spec.variant = label;
        spec.features.c4p = c4p;
        scenario::AllreduceGroupSpec g;
        g.tasks = 2;
        g.bytes = mib(16);
        g.iterations = 3;
        spec.allreduces.push_back(g);
        scenario::FaultSpec f;
        f.at = milliseconds(50);
        f.type = fault::FaultType::SlowNicTx;
        f.node = 0;
        f.nic = 0;
        f.severity = 0.5;
        spec.faults.push_back(f);
        return spec;
    };
    scenario::Scenario sc;
    sc.name = name;
    sc.title = "traced tiny";
    sc.fullTrials = 4;
    sc.smokeTrials = 4;
    sc.variants = [variant](const scenario::RunOptions &) {
        return std::vector<scenario::ScenarioSpec>{
            variant("ecmp", false), variant("c4p", true)};
    };
    return sc;
}

/** relative path -> file bytes for every file under @p root. */
std::map<std::string, std::string>
snapshotTree(const fs::path &root)
{
    std::map<std::string, std::string> out;
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file()) {
            out[fs::relative(entry.path(), root).string()] =
                readFile(entry.path());
        }
    }
    return out;
}

scenario::RunOptions
tracedOptions(const fs::path &dir, int threads)
{
    scenario::RunOptions opt;
    opt.trials = 4;
    opt.threads = threads;
    opt.seed = 0xC4;
    opt.seedSet = true;
    opt.traceDir = dir.string();
    return opt;
}

TEST(Runner, TracesAreByteIdenticalAcrossThreadCounts)
{
    const scenario::Scenario sc = tracedScenario("trace_tiny");
    const fs::path d1 = scratchDir("threads1");
    const fs::path d4 = scratchDir("threads4");

    scenario::ScenarioRunner one(tracedOptions(d1, 1));
    ASSERT_EQ(one.run(sc), 0);
    scenario::ScenarioRunner four(tracedOptions(d4, 4));
    ASSERT_EQ(four.run(sc), 0);

    const auto t1 = snapshotTree(d1);
    const auto t4 = snapshotTree(d4);
    ASSERT_EQ(t1.size(), t4.size());
    // 2 variants x 4 trials of JSONL plus the Chrome trace.
    EXPECT_EQ(t1.size(), 9u);
    std::size_t bytes = 0;
    for (const auto &[rel, text] : t1) {
        auto it = t4.find(rel);
        ASSERT_NE(it, t4.end()) << rel;
        EXPECT_EQ(text, it->second) << rel;
        bytes += text.size();
    }
    EXPECT_GT(bytes, 0u);

    // The traces really carry the expected kinds.
    const TraceFile tf = loadTraceFile(
        (d1 / "trace_tiny" / "v1_c4p.t0.jsonl").string());
    bool sawFault = false, sawRecompute = false, sawAlloc = false;
    for (const Event &ev : tf.events) {
        sawFault |= ev.kind == EventKind::FaultInjected;
        sawRecompute |= ev.kind == EventKind::RecomputeEnd;
        sawAlloc |= ev.kind == EventKind::PathRealloc;
    }
    EXPECT_TRUE(sawFault);
    EXPECT_TRUE(sawRecompute);
    EXPECT_TRUE(sawAlloc);
}

TEST(Runner, CsvOutputIsUnchangedByTracing)
{
    const scenario::Scenario sc = tracedScenario("trace_tiny_csv");

    auto runCsv = [&](scenario::RunOptions opt) {
        std::ostringstream out;
        scenario::CsvSink sink(out);
        scenario::ScenarioRunner runner(opt);
        runner.addSink(sink);
        EXPECT_EQ(runner.run(sc), 0);
        return out.str();
    };

    scenario::RunOptions plain;
    plain.trials = 2;
    plain.threads = 1;
    plain.seed = 0xC4;
    plain.seedSet = true;
    scenario::RunOptions traced = plain;
    traced.traceDir = scratchDir("csv_invariance").string();

    const std::string without = runCsv(plain);
    EXPECT_EQ(runCsv(traced), without);
    EXPECT_FALSE(without.empty());
}

TEST(Runner, TraceFilterPrunesRecordedKinds)
{
    const scenario::Scenario sc = tracedScenario("trace_tiny_filter");
    const fs::path dir = scratchDir("filtered");
    scenario::RunOptions opt = tracedOptions(dir, 1);
    opt.trials = 1;
    opt.traceFilter = kindBit(EventKind::FaultInjected);
    scenario::ScenarioRunner runner(opt);
    ASSERT_EQ(runner.run(sc), 0);

    const TraceFile tf = loadTraceFile(
        (dir / "trace_tiny_filter" / "v0_ecmp.t0.jsonl").string());
    ASSERT_FALSE(tf.events.empty());
    for (const Event &ev : tf.events)
        EXPECT_EQ(ev.kind, EventKind::FaultInjected);
}

// --- diff analyzer ----------------------------------------------------

TEST(Diff, ReportsIdenticalTracesAndInjectedDivergences)
{
    const fs::path dir = scratchDir("diff");
    std::vector<Event> a;
    for (int i = 0; i < 10; ++i) {
        Event ev = makeEvent(EventKind::RecomputeEnd, i * 100);
        ev.value = static_cast<double>(i);
        a.push_back(ev);
    }
    std::vector<Event> b = a;
    b[6].value = 99.0; // the injected divergence

    auto write = [&](const char *name,
                     const std::vector<Event> &events) {
        std::ofstream out(dir / name, std::ios::binary);
        out << writeJsonl(events);
        return (dir / name).string();
    };
    const std::string pa = write("a.jsonl", a);
    const std::string pb = write("b.jsonl", b);
    const std::string pa2 = write("a_again.jsonl", a);

    std::ostringstream same;
    EXPECT_EQ(diffTraces(pa, pa2, same), 0);
    EXPECT_NE(same.str().find("identical"), std::string::npos);

    std::ostringstream diverged;
    EXPECT_EQ(diffTraces(pa, pb, diverged), 1);
    EXPECT_NE(diverged.str().find("diverge at line 7"),
              std::string::npos);
    // Both sides of the divergence are shown.
    EXPECT_NE(diverged.str().find("\"v\":6.0"), std::string::npos);
    EXPECT_NE(diverged.str().find("\"v\":99.0"), std::string::npos);

    // A truncated trace diverges at its end.
    std::vector<Event> shorter(a.begin(), a.begin() + 4);
    const std::string ps = write("short.jsonl", shorter);
    std::ostringstream truncated;
    EXPECT_EQ(diffTraces(pa, ps, truncated), 1);
    EXPECT_NE(truncated.str().find("diverge at line 5"),
              std::string::npos);
}

TEST(Jsonl, EveryPrefixOfARealIncidentTraceParsesOrThrows)
{
    // Harden the reader against truncated writes: for a real corpus
    // file (the replay subsystem's input), every byte-prefix must
    // either parse cleanly (prefix ends on a record boundary) or throw
    // a line-numbered SpecError — never crash, never silently return a
    // short-read record.
    std::ifstream in(std::string(C4_INCIDENT_CORPUS_DIR) +
                     "/port_degradation_tx.trace.jsonl");
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    ASSERT_GT(text.size(), 1000u);

    const std::size_t fullCount = parseJsonl(text).size();
    std::size_t parsed = 0;
    for (std::size_t len = 0; len <= text.size(); ++len) {
        const std::string prefix = text.substr(0, len);
        const bool atBoundary =
            len == 0 || text[len - 1] == '\n';
        try {
            const std::vector<Event> events = parseJsonl(prefix);
            ++parsed;
            EXPECT_TRUE(atBoundary)
                << "mid-line prefix of length " << len
                << " parsed as " << events.size() << " records";
        } catch (const SpecError &e) {
            EXPECT_FALSE(atBoundary)
                << "boundary prefix of length " << len
                << " rejected: " << e.what();
            EXPECT_NE(std::string(e.what()).find("line"),
                      std::string::npos)
                << "error at length " << len
                << " carries no line number: " << e.what();
        }
    }
    // Exactly the record boundaries parse: one per line, plus the
    // empty prefix; everything mid-line throws.
    EXPECT_EQ(parsed, fullCount + 1);
}

} // namespace
} // namespace c4::trace
