/**
 * @file
 * Unit tests for the discrete-event engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace c4 {
namespace {

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
    EXPECT_EQ(sim.pendingCount(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.scheduleAt(seconds(3), [&] { order.push_back(3); });
    sim.scheduleAt(seconds(1), [&] { order.push_back(1); });
    sim.scheduleAt(seconds(2), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), seconds(3));
}

TEST(Simulator, FifoAmongEqualTimes)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.scheduleAt(seconds(1), [&order, i] { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterAddsToNow)
{
    Simulator sim;
    Time fired = -1;
    sim.scheduleAfter(seconds(1), [&] {
        sim.scheduleAfter(seconds(2), [&] { fired = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(fired, seconds(3));
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool fired = false;
    const EventId id = sim.scheduleAt(seconds(1), [&] { fired = true; });
    EXPECT_TRUE(sim.pending(id));
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.pending(id));
    EXPECT_FALSE(sim.cancel(id)); // double-cancel is a no-op
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(seconds(1), [&] { ++fired; });
    sim.scheduleAt(seconds(10), [&] { ++fired; });
    const auto n = sim.run(seconds(5));
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), seconds(5));
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), seconds(10));
}

TEST(Simulator, EventExactlyAtUntilRuns)
{
    Simulator sim;
    bool fired = false;
    sim.scheduleAt(seconds(5), [&] { fired = true; });
    sim.run(seconds(5));
    EXPECT_TRUE(fired);
}

TEST(Simulator, StepExecutesExactlyOne)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(1, [&] { ++fired; });
    sim.scheduleAt(2, [&] { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, PastEventsClampToNow)
{
    Simulator sim;
    sim.scheduleAt(seconds(2), [] {});
    sim.run();
    Time fired = -1;
    sim.scheduleAt(seconds(1), [&] { fired = sim.now(); }); // in the past
    sim.run();
    EXPECT_EQ(fired, seconds(2));
}

TEST(Simulator, EventsScheduledDuringRunExecute)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 10)
            sim.scheduleAfter(seconds(1), recurse);
    };
    sim.scheduleAfter(seconds(1), recurse);
    sim.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(sim.now(), seconds(10));
}

TEST(Simulator, ClearDropsPending)
{
    Simulator sim;
    bool fired = false;
    sim.scheduleAt(1, [&] { fired = true; });
    sim.clear();
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, ExecutedCount)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.scheduleAt(i, [] {});
    sim.run();
    EXPECT_EQ(sim.executedCount(), 7u);
}

TEST(Simulator, HugeDelaySaturates)
{
    Simulator sim;
    sim.scheduleAt(seconds(1), [] {});
    const EventId id = sim.scheduleAfter(kTimeNever, [] {});
    EXPECT_TRUE(sim.pending(id));
    sim.run(seconds(2)); // must not overflow or fire the forever event
    EXPECT_TRUE(sim.pending(id));
}

TEST(PeriodicTask, FiresAtPeriod)
{
    Simulator sim;
    int count = 0;
    PeriodicTask task(sim, seconds(10), [&] { ++count; });
    task.start();
    sim.run(seconds(35));
    EXPECT_EQ(count, 3);
    EXPECT_EQ(task.invocations(), 3u);
}

TEST(PeriodicTask, StopHalts)
{
    Simulator sim;
    int count = 0;
    PeriodicTask task(sim, seconds(10), [&] { ++count; });
    task.start();
    sim.scheduleAt(seconds(25), [&] { task.stop(); });
    sim.run(seconds(100));
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, RestartResumesFromNow)
{
    Simulator sim;
    int count = 0;
    PeriodicTask task(sim, seconds(10), [&] { ++count; });
    task.start();
    sim.run(seconds(15));
    task.stop();
    task.start();
    sim.run(seconds(24)); // next firing at t=25
    EXPECT_EQ(count, 1);
    sim.run(seconds(26));
    EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, SelfStopInsideCallback)
{
    Simulator sim;
    int count = 0;
    PeriodicTask *ptr = nullptr;
    PeriodicTask task(sim, seconds(1), [&] {
        if (++count == 3)
            ptr->stop();
    });
    ptr = &task;
    task.start();
    sim.run(seconds(100));
    EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, DoubleStartIsNoop)
{
    Simulator sim;
    int count = 0;
    PeriodicTask task(sim, seconds(1), [&] { ++count; });
    task.start();
    task.start();
    sim.run(seconds(1));
    EXPECT_EQ(count, 1);
}

} // namespace
} // namespace c4
