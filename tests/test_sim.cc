/**
 * @file
 * Unit tests for the discrete-event engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace c4 {
namespace {

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
    EXPECT_EQ(sim.pendingCount(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.scheduleAt(seconds(3), [&] { order.push_back(3); });
    sim.scheduleAt(seconds(1), [&] { order.push_back(1); });
    sim.scheduleAt(seconds(2), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), seconds(3));
}

TEST(Simulator, FifoAmongEqualTimes)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.scheduleAt(seconds(1), [&order, i] { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterAddsToNow)
{
    Simulator sim;
    Time fired = -1;
    sim.scheduleAfter(seconds(1), [&] {
        sim.scheduleAfter(seconds(2), [&] { fired = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(fired, seconds(3));
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool fired = false;
    const EventId id = sim.scheduleAt(seconds(1), [&] { fired = true; });
    EXPECT_TRUE(sim.pending(id));
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.pending(id));
    EXPECT_FALSE(sim.cancel(id)); // double-cancel is a no-op
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(seconds(1), [&] { ++fired; });
    sim.scheduleAt(seconds(10), [&] { ++fired; });
    const auto n = sim.run(seconds(5));
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), seconds(5));
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), seconds(10));
}

TEST(Simulator, EventExactlyAtUntilRuns)
{
    Simulator sim;
    bool fired = false;
    sim.scheduleAt(seconds(5), [&] { fired = true; });
    sim.run(seconds(5));
    EXPECT_TRUE(fired);
}

TEST(Simulator, StepExecutesExactlyOne)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(1, [&] { ++fired; });
    sim.scheduleAt(2, [&] { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, PastEventsClampToNow)
{
    Simulator sim;
    sim.scheduleAt(seconds(2), [] {});
    sim.run();
    Time fired = -1;
    sim.scheduleAt(seconds(1), [&] { fired = sim.now(); }); // in the past
    sim.run();
    EXPECT_EQ(fired, seconds(2));
}

TEST(Simulator, EventsScheduledDuringRunExecute)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 10)
            sim.scheduleAfter(seconds(1), recurse);
    };
    sim.scheduleAfter(seconds(1), recurse);
    sim.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(sim.now(), seconds(10));
}

TEST(Simulator, ClearDropsPending)
{
    Simulator sim;
    bool fired = false;
    sim.scheduleAt(1, [&] { fired = true; });
    sim.clear();
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, ExecutedCount)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.scheduleAt(i, [] {});
    sim.run();
    EXPECT_EQ(sim.executedCount(), 7u);
}

TEST(Simulator, HugeDelaySaturates)
{
    Simulator sim;
    sim.scheduleAt(seconds(1), [] {});
    const EventId id = sim.scheduleAfter(kTimeNever, [] {});
    EXPECT_TRUE(sim.pending(id));
    sim.run(seconds(2)); // must not overflow or fire the forever event
    EXPECT_TRUE(sim.pending(id));
}

TEST(PeriodicTask, FiresAtPeriod)
{
    Simulator sim;
    int count = 0;
    PeriodicTask task(sim, seconds(10), [&] { ++count; });
    task.start();
    sim.run(seconds(35));
    EXPECT_EQ(count, 3);
    EXPECT_EQ(task.invocations(), 3u);
}

TEST(PeriodicTask, StopHalts)
{
    Simulator sim;
    int count = 0;
    PeriodicTask task(sim, seconds(10), [&] { ++count; });
    task.start();
    sim.scheduleAt(seconds(25), [&] { task.stop(); });
    sim.run(seconds(100));
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, RestartResumesFromNow)
{
    Simulator sim;
    int count = 0;
    PeriodicTask task(sim, seconds(10), [&] { ++count; });
    task.start();
    sim.run(seconds(15));
    task.stop();
    task.start();
    sim.run(seconds(24)); // next firing at t=25
    EXPECT_EQ(count, 1);
    sim.run(seconds(26));
    EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, SelfStopInsideCallback)
{
    Simulator sim;
    int count = 0;
    PeriodicTask *ptr = nullptr;
    PeriodicTask task(sim, seconds(1), [&] {
        if (++count == 3)
            ptr->stop();
    });
    ptr = &task;
    task.start();
    sim.run(seconds(100));
    EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, DoubleStartIsNoop)
{
    Simulator sim;
    int count = 0;
    PeriodicTask task(sim, seconds(1), [&] { ++count; });
    task.start();
    task.start();
    sim.run(seconds(1));
    EXPECT_EQ(count, 1);
}

TEST(PeriodicTask, RestartAfterStopDoesNotDrift)
{
    // Stop mid-period, restart mid-period: the next firing must be a
    // full period after the restart (not the old phase, not sooner).
    Simulator sim;
    std::vector<Time> fires;
    PeriodicTask task(sim, 10, [&] { fires.push_back(sim.now()); });
    task.start();
    sim.scheduleAt(23, [&] { task.stop(); });
    sim.scheduleAt(27, [&] { task.start(); });
    sim.run(60);
    EXPECT_EQ(fires, (std::vector<Time>{10, 20, 37, 47, 57}));
}

TEST(PeriodicTask, SelfStopLeavesNothingPending)
{
    Simulator sim;
    int count = 0;
    PeriodicTask *ptr = nullptr;
    PeriodicTask task(sim, seconds(1), [&] {
        if (++count == 2)
            ptr->stop();
    });
    ptr = &task;
    task.start();
    sim.run();
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(task.running());
    EXPECT_EQ(sim.pendingCount(), 0u); // no orphaned reschedule
}

// ---------------------------------------------------------------------
// Pooled-kernel internals exercised through the public surface: slot
// reuse, tombstone compaction in both bands, clear() semantics, the
// heap-fallback callback path, and a randomized equivalence sweep
// against a naive reference model.
// ---------------------------------------------------------------------

TEST(Simulator, StaleIdCannotCancelSlotSuccessor)
{
    Simulator sim;
    const EventId a = sim.scheduleAt(1, [] {});
    EXPECT_TRUE(sim.cancel(a));
    // The freed slot is reused by the very next schedule; the stale
    // handle must not be able to reach the successor.
    bool fired = false;
    const EventId b = sim.scheduleAt(2, [&] { fired = true; });
    EXPECT_NE(a, b);
    EXPECT_FALSE(sim.pending(a));
    EXPECT_FALSE(sim.cancel(a));
    EXPECT_TRUE(sim.pending(b));
    sim.run();
    EXPECT_TRUE(fired);
}

TEST(Simulator, CancelStormFarBandCompactsAndPreservesOrder)
{
    // 10k not-yet-due events, 99% cancelled before any run: the storm
    // lands entirely in the far band (nothing has been promoted yet)
    // and drives repeated far compaction; the survivors must still
    // fire in exact (when, seq) order.
    Simulator sim;
    constexpr int kEvents = 10000;
    std::vector<EventId> ids;
    ids.reserve(kEvents);
    std::vector<int> fired;
    for (int i = 0; i < kEvents; ++i) {
        ids.push_back(sim.scheduleAt((i * 7919) % 100000 + 1,
                                     [i, &fired] { fired.push_back(i); }));
    }
    for (int i = 0; i < kEvents; ++i) {
        if (i % 100 != 0) {
            EXPECT_TRUE(sim.cancel(ids[i]));
        }
    }
    EXPECT_EQ(sim.pendingCount(), 100u);
    sim.run();
    EXPECT_EQ(sim.executedCount(), 100u);

    std::vector<int> expected;
    for (int i = 0; i < kEvents; i += 100)
        expected.push_back(i);
    std::stable_sort(expected.begin(), expected.end(),
                     [](int a, int b) {
                         return (a * 7919) % 100000 < (b * 7919) % 100000;
                     });
    EXPECT_EQ(fired, expected);
}

TEST(Simulator, CancelStormNearHeapCompactsAndPreservesOrder)
{
    // Same storm, but fire one event first: the initial band width
    // exceeds the whole time spread, so that single step() promotes
    // the entire population into the near heap, and the cancel storm
    // now drives the heap's tombstone compaction instead.
    Simulator sim;
    constexpr int kEvents = 10000;
    std::vector<EventId> ids;
    ids.reserve(kEvents);
    std::vector<int> fired;
    for (int i = 0; i < kEvents; ++i) {
        ids.push_back(sim.scheduleAt((i * 7919) % 100000 + 1,
                                     [i, &fired] { fired.push_back(i); }));
    }
    ASSERT_TRUE(sim.step());
    ASSERT_EQ(fired.size(), 1u);
    const int first = fired.front();
    for (int i = 0; i < kEvents; ++i) {
        if (i % 100 != 0) {
            EXPECT_EQ(sim.cancel(ids[i]), i != first);
        }
    }
    sim.run();

    std::vector<int> expected;
    for (int i = 0; i < kEvents; ++i) {
        if (i % 100 == 0 || i == first)
            expected.push_back(i);
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](int a, int b) {
                         return (a * 7919) % 100000 < (b * 7919) % 100000;
                     });
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(sim.pendingCount(), 0u);
}

TEST(Simulator, CancelEntireFarBandThenRun)
{
    // Cancelling every far-future event must not disturb the near one
    // and must leave nothing to promote.
    Simulator sim;
    std::vector<EventId> ids;
    for (int i = 0; i < 1000; ++i)
        ids.push_back(sim.scheduleAt(seconds(10) + i, [] {}));
    bool nearFired = false;
    sim.scheduleAt(seconds(1), [&] { nearFired = true; });
    for (const EventId id : ids)
        EXPECT_TRUE(sim.cancel(id));
    EXPECT_EQ(sim.pendingCount(), 1u);
    sim.run();
    EXPECT_TRUE(nearFired);
    EXPECT_EQ(sim.executedCount(), 1u);
    EXPECT_EQ(sim.pendingCount(), 0u);
}

TEST(Simulator, SlicedRunsWithFarFutureEvents)
{
    // The watchdog pattern: thousands of tiny run(until) slices while
    // every pending event is far in the future. Nothing may fire
    // early, and the final drain must still be in time order.
    Simulator sim;
    std::vector<Time> fired;
    for (int i = 0; i < 100; ++i)
        sim.scheduleAt(seconds(100) + i,
                       [&fired, &sim] { fired.push_back(sim.now()); });
    for (Time t = seconds(1); t < seconds(100); t += seconds(1)) {
        sim.run(t);
        EXPECT_EQ(sim.now(), t);
    }
    EXPECT_TRUE(fired.empty());
    sim.run();
    ASSERT_EQ(fired.size(), 100u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(Simulator, ClearPreservesClockAndExecutedCount)
{
    // clear() drops pending work only; now(), executedCount() and the
    // schedule sequence survive (see the header contract).
    Simulator sim;
    sim.scheduleAt(seconds(1), [] {});
    sim.run();
    sim.scheduleAt(seconds(5), [] {});
    sim.scheduleAt(seconds(400), [] {}); // lands in the far band
    sim.clear();
    EXPECT_EQ(sim.now(), seconds(1));
    EXPECT_EQ(sim.executedCount(), 1u);
    EXPECT_EQ(sim.pendingCount(), 0u);
}

TEST(Simulator, ScheduleAfterClearIsDeterministic)
{
    // A fresh schedule sequence after clear() fires in exactly the
    // order a fresh simulator would produce: (when, FIFO-among-ties).
    auto soup = [](bool preload) {
        Simulator sim;
        if (preload) {
            sim.scheduleAt(3, [] {});
            sim.scheduleAt(seconds(300), [] {});
            sim.clear();
        }
        std::vector<int> order;
        for (int i = 0; i < 50; ++i)
            sim.scheduleAt((i * 13) % 7,
                           [i, &order] { order.push_back(i); });
        sim.run();
        return order;
    };
    EXPECT_EQ(soup(true), soup(false));
}

TEST(Simulator, ClearFromInsideCallback)
{
    Simulator sim;
    int firedAfter = 0;
    sim.scheduleAt(1, [&] { sim.clear(); });
    sim.scheduleAt(2, [&] { ++firedAfter; });
    sim.scheduleAt(seconds(400), [&] { ++firedAfter; });
    sim.run();
    EXPECT_EQ(firedAfter, 0);
    EXPECT_EQ(sim.now(), 1);
    EXPECT_EQ(sim.executedCount(), 1u);
    // The engine stays usable afterwards.
    bool again = false;
    sim.scheduleAfter(1, [&] { again = true; });
    sim.run();
    EXPECT_TRUE(again);
}

TEST(Simulator, LargeCaptureUsesHeapFallback)
{
    // A capture past the inline budget must still fire and, when
    // cancelled, still destroy (ASan would flag a leak here).
    Simulator sim;
    std::array<std::uint64_t, 16> payload{}; // 128 B > inline budget
    payload[15] = 42;
    std::uint64_t got = 0;
    sim.scheduleAt(1, [payload, &got] { got = payload[15]; });
    const EventId id =
        sim.scheduleAt(2, [payload, &got] { got = 0; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_EQ(got, 42u);
}

TEST(Simulator, CallbackDestructorsRunOnCancelAndClear)
{
    const auto token = std::make_shared<int>(7);
    Simulator sim;
    const EventId id = sim.scheduleAt(1, [token] {});
    sim.scheduleAt(2, [token] {});
    sim.scheduleAt(seconds(400), [token] {}); // far band
    EXPECT_EQ(token.use_count(), 4);
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_EQ(token.use_count(), 3);
    sim.clear();
    EXPECT_EQ(token.use_count(), 1);
}

// Randomized equivalence: the pooled kernel against a naive reference
// model (a flat vector scanned for the (when, seq) minimum), through
// schedule / cancel / sliced-run soups. Any divergence in fire order,
// clock, or live count fails.
namespace equivalence {

struct RefEvent
{
    Time when;
    std::uint64_t seq;
    int tag;
};

struct RefModel
{
    Time now = 0;
    std::uint64_t seq = 1;
    std::uint64_t executed = 0;
    std::vector<RefEvent> pending;
    std::vector<int> fired;

    void
    schedule(Time when, int tag)
    {
        if (when < now)
            when = now;
        pending.push_back({when, seq++, tag});
    }

    bool
    cancel(int tag)
    {
        for (auto it = pending.begin(); it != pending.end(); ++it) {
            if (it->tag == tag) {
                pending.erase(it);
                return true;
            }
        }
        return false;
    }

    void
    run(Time until)
    {
        for (;;) {
            std::size_t best = pending.size();
            for (std::size_t i = 0; i < pending.size(); ++i) {
                if (best == pending.size() ||
                    pending[i].when < pending[best].when ||
                    (pending[i].when == pending[best].when &&
                     pending[i].seq < pending[best].seq))
                    best = i;
            }
            if (best == pending.size() || pending[best].when > until)
                break;
            now = pending[best].when;
            ++executed;
            fired.push_back(pending[best].tag);
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(best));
        }
        if (until != kTimeNever && now < until)
            now = until;
    }
};

struct Lcg
{
    std::uint64_t s;

    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s >> 33;
    }
};

void
soup(std::uint64_t seed)
{
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    Simulator sim;
    RefModel ref;
    std::vector<int> simFired;
    std::map<int, EventId> live; // ordered: deterministic pick
    Lcg rng{seed};
    int nextTag = 0;

    for (int step = 0; step < 10000; ++step) {
        switch (rng.next() % 8) {
        case 0:
        case 1:
        case 2:
        case 3:
        case 4: { // schedule; mixed near/far/tie-heavy delays
            const std::uint64_t r = rng.next();
            Duration d;
            if ((r & 3) == 0)
                d = static_cast<Duration>(r % 7); // ties
            else if ((r & 3) == 1)
                d = static_cast<Duration>(r % 100000000); // far
            else
                d = static_cast<Duration>(r % 5000); // near
            const int tag = nextTag++;
            live[tag] = sim.scheduleAfter(
                d, [tag, &simFired] { simFired.push_back(tag); });
            ref.schedule(ref.now + d, tag);
            break;
        }
        case 5: { // cancel a pseudo-random (possibly fired) tag
            if (live.empty())
                break;
            auto it = live.begin();
            std::advance(it, static_cast<std::ptrdiff_t>(
                                 rng.next() % live.size()));
            EXPECT_EQ(sim.cancel(it->second), ref.cancel(it->first));
            live.erase(it);
            break;
        }
        default: { // sliced run
            const Time until =
                sim.now() + static_cast<Duration>(rng.next() % 20000);
            sim.run(until);
            ref.run(until);
            ASSERT_EQ(sim.now(), ref.now);
            ASSERT_EQ(sim.pendingCount(), ref.pending.size());
            break;
        }
        }
    }
    sim.run();
    ref.run(kTimeNever);
    EXPECT_EQ(simFired, ref.fired);
    EXPECT_EQ(sim.now(), ref.now);
    EXPECT_EQ(sim.executedCount(), ref.executed);
    EXPECT_EQ(sim.pendingCount(), ref.pending.size());
}

} // namespace equivalence

TEST(SimulatorBatch, MatchesSingleCallFireOrder)
{
    // One scheduleBatchAfter must fire byte-identically to N
    // scheduleAfter calls in the same order — including ties, which
    // resolve by sequence number. Delays span both bands (the +400 s
    // entries land in the unsorted far band).
    const std::vector<Duration> delays = {
        seconds(3),  seconds(1),   seconds(1),  0,
        seconds(2),  seconds(1),   seconds(400), seconds(401),
        seconds(2),  0,            seconds(400), seconds(7)};

    std::vector<int> single, batched;
    Simulator a;
    for (std::size_t i = 0; i < delays.size(); ++i) {
        a.scheduleAfter(delays[i],
                        [&single, i] { single.push_back(static_cast<int>(i)); });
    }
    a.run();

    Simulator b;
    std::vector<std::pair<Duration, std::function<void()>>> items;
    for (std::size_t i = 0; i < delays.size(); ++i) {
        items.emplace_back(delays[i], [&batched, i] {
            batched.push_back(static_cast<int>(i));
        });
    }
    const std::vector<EventId> ids =
        b.scheduleBatchAfter(std::move(items));
    EXPECT_EQ(ids.size(), delays.size());
    b.run();

    EXPECT_EQ(batched, single);
    EXPECT_EQ(a.now(), b.now());
}

TEST(SimulatorBatch, InterleavesWithSinglesBySequence)
{
    // Ties across a batch boundary keep global FIFO order: singles
    // scheduled before the batch fire first, batch entries next (in
    // array order), singles after the batch last.
    Simulator sim;
    std::vector<int> order;
    sim.scheduleAfter(seconds(1), [&] { order.push_back(0); });
    std::vector<std::pair<Duration, std::function<void()>>> items;
    for (int i = 1; i <= 3; ++i)
        items.emplace_back(seconds(1), [&order, i] { order.push_back(i); });
    sim.scheduleBatchAfter(std::move(items));
    sim.scheduleAfter(seconds(1), [&] { order.push_back(4); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorBatch, IdsCancelIndividually)
{
    Simulator sim;
    std::vector<int> fired;
    std::vector<std::pair<Duration, std::function<void()>>> items;
    for (int i = 0; i < 6; ++i) {
        const Duration d = i < 3 ? seconds(i + 1) : seconds(500 + i);
        items.emplace_back(d, [&fired, i] { fired.push_back(i); });
    }
    const std::vector<EventId> ids =
        sim.scheduleBatchAfter(std::move(items));
    ASSERT_EQ(ids.size(), 6u);
    EXPECT_TRUE(sim.cancel(ids[1])); // near band
    EXPECT_TRUE(sim.cancel(ids[4])); // far band
    EXPECT_FALSE(sim.cancel(ids[1]));
    sim.run();
    EXPECT_EQ(fired, (std::vector<int>{0, 2, 3, 5}));
}

TEST(SimulatorBatch, EmptyBatchIsNoop)
{
    Simulator sim;
    std::vector<std::pair<Duration, std::function<void()>>> none;
    EXPECT_TRUE(sim.scheduleBatchAfter(std::move(none)).empty());
    EXPECT_EQ(sim.pendingCount(), 0u);
    sim.run();
    EXPECT_EQ(sim.now(), 0);
}

TEST(SimulatorBatch, LargeTiedBatchKeepsArrayOrder)
{
    // Heapify must not be able to reorder ties: 512 entries at one
    // timestamp fire exactly in input order.
    Simulator sim;
    std::vector<int> order;
    std::vector<std::pair<Duration, std::function<void()>>> items;
    for (int i = 0; i < 512; ++i)
        items.emplace_back(seconds(1), [&order, i] { order.push_back(i); });
    sim.scheduleBatchAfter(std::move(items));
    sim.run();
    ASSERT_EQ(order.size(), 512u);
    for (int i = 0; i < 512; ++i)
        ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorEquivalence, RandomSoupSeed1)
{
    equivalence::soup(0x9e3779b97f4a7c15ull);
}

TEST(SimulatorEquivalence, RandomSoupSeed2)
{
    equivalence::soup(0xd1b54a32d192ed03ull);
}

TEST(SimulatorEquivalence, RandomSoupSeed3)
{
    equivalence::soup(0x94d049bb133111ebull);
}

} // namespace
} // namespace c4
