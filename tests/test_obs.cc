/**
 * @file
 * Live-metrics subsystem: the zero-overhead detached scope, registry
 * kind discipline and registration-order determinism, byte-stable
 * c4metrics/1 snapshot round-trips, prefix-fuzz hardening of the
 * parser over the committed golden, snapshot byte-equality across
 * runner thread counts, CSV invariance with metrics enabled, and
 * divergence detection in the diff analyzer. The end-to-end gate over
 * the real c4bench/c4stat binaries lives in cmake/obs_check.cmake
 * (ctest -L obs).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/analyze.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "scenario/runner.h"
#include "scenario/sink.h"

namespace c4::obs {
namespace {

namespace fs = std::filesystem;

/** Fresh per-test scratch directory under the system temp dir. */
fs::path
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::temp_directory_path() / ("c4_obs_test_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

// --- registry / scope -------------------------------------------------

TEST(Scope, DetachedScopeIsANoOp)
{
    MetricsScope scope; // the zero-overhead default everywhere
    EXPECT_FALSE(scope.attached());
    scope.count("a");
    scope.set("b", 7);
    scope.gauge("c", 1.5);
    scope.observe("d", 2.5);
    EXPECT_EQ(scope.registry(), nullptr);
}

TEST(Registry, SamplesCarryEachKindsStateInRegistrationOrder)
{
    MetricRegistry reg;
    MetricsScope scope(&reg);
    ASSERT_TRUE(scope.attached());

    scope.count("events", 3);
    scope.gauge("pending", 12.0);
    for (int i = 1; i <= 4; ++i)
        scope.observe("depth", static_cast<double>(i));
    scope.count("events"); // default delta 1
    reg.snapshot(1000);

    ASSERT_EQ(reg.metricCount(), 3u);
    const std::vector<Sample> &s = reg.samples();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0].name, "events");
    EXPECT_EQ(s[0].kind, MetricKind::Counter);
    EXPECT_EQ(s[0].count, 4);
    EXPECT_EQ(s[1].name, "pending");
    EXPECT_EQ(s[1].kind, MetricKind::Gauge);
    EXPECT_DOUBLE_EQ(s[1].value, 12.0);
    EXPECT_EQ(s[2].name, "depth");
    EXPECT_EQ(s[2].kind, MetricKind::Window);
    EXPECT_EQ(s[2].count, 4);
    EXPECT_DOUBLE_EQ(s[2].min, 1.0);
    EXPECT_DOUBLE_EQ(s[2].max, 4.0);
    for (const Sample &sample : s)
        EXPECT_EQ(sample.when, 1000);

    // setCounter overrides the accumulated total.
    scope.set("events", 100);
    reg.snapshot(2000);
    ASSERT_EQ(reg.samples().size(), 6u);
    EXPECT_EQ(reg.samples()[3].count, 100);
}

TEST(Registry, ReusingANameWithADifferentKindThrows)
{
    MetricRegistry reg;
    reg.addCounter("x");
    EXPECT_THROW(reg.setGauge("x", 1.0), std::logic_error);
    EXPECT_THROW(reg.observe("x", 1.0), std::logic_error);
    reg.addCounter("x"); // same kind stays fine
}

TEST(KindNames, RoundTrip)
{
    for (MetricKind kind : {MetricKind::Counter, MetricKind::Gauge,
                            MetricKind::Window}) {
        MetricKind back;
        ASSERT_TRUE(kindFromName(kindName(kind), back));
        EXPECT_EQ(back, kind);
    }
    MetricKind out;
    EXPECT_FALSE(kindFromName("bogus", out));
}

// --- JSONL round-trip -------------------------------------------------

std::vector<Sample>
mixedSamples()
{
    std::vector<Sample> samples;
    Sample counter;
    counter.when = 1000000000;
    counter.name = "fabric.recomputes";
    counter.kind = MetricKind::Counter;
    counter.count = 42;
    samples.push_back(counter);
    Sample gauge;
    gauge.when = 1000000000;
    gauge.name = "sim.pending";
    gauge.kind = MetricKind::Gauge;
    gauge.value = 17.25;
    samples.push_back(gauge);
    Sample window;
    window.when = 2000000000;
    window.name = "sim.depth";
    window.kind = MetricKind::Window;
    window.count = 9;
    window.min = 0.5;
    window.p50 = 2.0;
    window.p90 = 4.5;
    window.p99 = 4.9;
    window.max = 5.0;
    samples.push_back(window);
    return samples;
}

TEST(Jsonl, RoundTripsEveryFieldByteStably)
{
    SnapshotMeta meta;
    meta.scenario = "fig9_dualport";
    meta.variant = "2:1 oversub";
    meta.trial = 3;
    meta.periodNs = 1000000000;

    const std::string text = writeSnapshot(meta, mixedSamples());
    SnapshotMeta meta2;
    std::vector<Sample> samples2;
    parseSnapshot(text, meta2, samples2);
    EXPECT_EQ(meta2, meta);
    ASSERT_EQ(samples2.size(), 3u);
    EXPECT_EQ(samples2, mixedSamples());
    // Byte-stable: write -> parse -> write is the identity.
    EXPECT_EQ(writeSnapshot(meta2, samples2), text);
}

TEST(Jsonl, ZeroFieldsAreOmittedFromTheRecord)
{
    Sample s;
    s.when = 5;
    s.name = "a";
    s.kind = MetricKind::Counter;
    EXPECT_EQ(sampleToJsonLine(s),
              "{\"t\":5,\"n\":\"a\",\"k\":\"counter\"}");
}

TEST(Jsonl, RejectsMalformedAndUnknownRecords)
{
    SnapshotMeta meta;
    std::vector<Sample> samples;
    const std::string header =
        metaToJsonLine(SnapshotMeta{}) + "\n";

    // Empty text is an empty snapshot; non-empty needs the header.
    parseSnapshot("", meta, samples);
    EXPECT_TRUE(samples.empty());
    EXPECT_THROW(
        parseSnapshot("{\"t\":1,\"n\":\"a\",\"k\":\"counter\"}\n",
                      meta, samples),
        SpecError);

    // Unknown schema tag.
    EXPECT_THROW(parseSnapshot("{\"schema\":\"c4metrics/9\"}\n", meta,
                               samples),
                 SpecError);
    // Missing required keys, unknown kind, unknown key, non-JSON.
    EXPECT_THROW(parseSnapshot(header + "{\"t\":1}\n", meta, samples),
                 SpecError);
    EXPECT_THROW(
        parseSnapshot(header +
                          "{\"t\":1,\"n\":\"a\",\"k\":\"nope\"}\n",
                      meta, samples),
        SpecError);
    EXPECT_THROW(
        parseSnapshot(
            header +
                "{\"t\":1,\"n\":\"a\",\"k\":\"counter\",\"x\":2}\n",
            meta, samples),
        SpecError);
    EXPECT_THROW(parseSnapshot(header + "not json\n", meta, samples),
                 SpecError);
    // Truncated final line (no terminating newline).
    EXPECT_THROW(
        parseSnapshot(header +
                          "{\"t\":1,\"n\":\"a\",\"k\":\"counter\"}",
                      meta, samples),
        SpecError);
    // Errors carry the 1-based line number.
    try {
        parseSnapshot(header + "broken\n", meta, samples);
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(Snapshot, SanitizedComponentsCannotTraverseDirectories)
{
    EXPECT_EQ(sanitizeFileComponent("fig9_dualport"),
              "fig9_dualport");
    EXPECT_EQ(sanitizeFileComponent("2:1 oversub"), "2_1_oversub");
    EXPECT_EQ(sanitizeFileComponent(""), "_");
    EXPECT_EQ(sanitizeFileComponent("."), "_");
    EXPECT_EQ(sanitizeFileComponent(".."), "__");
    EXPECT_EQ(sanitizeFileComponent("../evil"), ".._evil");
}

TEST(Jsonl, EveryPrefixOfTheCommittedGoldenParsesOrThrows)
{
    // Harden the reader against truncated writes: for the committed
    // fig9 golden snapshot, every byte-prefix must either parse
    // cleanly (prefix ends on a record boundary) or throw a
    // line-numbered SpecError — never crash, never silently return a
    // short-read record.
    const std::string text = readFile(C4_METRICS_GOLDEN);
    ASSERT_GT(text.size(), 500u);

    SnapshotMeta meta;
    std::vector<Sample> samples;
    parseSnapshot(text, meta, samples);
    const std::size_t fullCount = samples.size();
    ASSERT_GT(fullCount, 0u);

    std::size_t parsed = 0;
    for (std::size_t len = 0; len <= text.size(); ++len) {
        const std::string prefix = text.substr(0, len);
        const bool atBoundary = len == 0 || text[len - 1] == '\n';
        try {
            SnapshotMeta m;
            std::vector<Sample> s;
            parseSnapshot(prefix, m, s);
            ++parsed;
            EXPECT_TRUE(atBoundary)
                << "mid-line prefix of length " << len
                << " parsed as " << s.size() << " records";
        } catch (const SpecError &e) {
            EXPECT_FALSE(atBoundary)
                << "boundary prefix of length " << len
                << " rejected: " << e.what();
            EXPECT_NE(std::string(e.what()).find("line"),
                      std::string::npos)
                << "error at length " << len
                << " carries no line number: " << e.what();
        }
    }
    // Exactly the record boundaries parse: one per sample line, plus
    // the header line and the empty prefix.
    EXPECT_EQ(parsed, fullCount + 2);
}

// --- runner integration ----------------------------------------------

/** A tiny metered workload: seed-paired ECMP/C4P allreduces plus one
 * scheduled NIC degradation, so kernel, fabric, job, and c4d metrics
 * all appear. */
scenario::Scenario
meteredScenario(const char *name)
{
    auto variant = [](const char *label, bool c4p) {
        scenario::ScenarioSpec spec;
        spec.variant = label;
        spec.features.c4p = c4p;
        scenario::AllreduceGroupSpec g;
        g.tasks = 2;
        g.bytes = mib(16);
        g.iterations = 3;
        spec.allreduces.push_back(g);
        scenario::FaultSpec f;
        f.at = milliseconds(50);
        f.type = fault::FaultType::SlowNicTx;
        f.node = 0;
        f.nic = 0;
        f.severity = 0.5;
        spec.faults.push_back(f);
        return spec;
    };
    scenario::Scenario sc;
    sc.name = name;
    sc.title = "metered tiny";
    sc.fullTrials = 4;
    sc.smokeTrials = 4;
    sc.variants = [variant](const scenario::RunOptions &) {
        return std::vector<scenario::ScenarioSpec>{
            variant("ecmp", false), variant("c4p", true)};
    };
    return sc;
}

/** relative path -> file bytes for every file under @p root. */
std::map<std::string, std::string>
snapshotTree(const fs::path &root)
{
    std::map<std::string, std::string> out;
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file()) {
            out[fs::relative(entry.path(), root).string()] =
                readFile(entry.path());
        }
    }
    return out;
}

scenario::RunOptions
meteredOptions(const fs::path &dir, int threads)
{
    scenario::RunOptions opt;
    opt.trials = 4;
    opt.threads = threads;
    opt.seed = 0xC4;
    opt.seedSet = true;
    opt.metricsDir = dir.string();
    // Well under the workload's simulated duration so several pump
    // ticks land before the final end-of-run sample.
    opt.metricsPeriod = milliseconds(10);
    return opt;
}

TEST(Runner, SnapshotsAreByteIdenticalAcrossThreadCounts)
{
    const scenario::Scenario sc = meteredScenario("obs_tiny");
    const fs::path d1 = scratchDir("threads1");
    const fs::path d4 = scratchDir("threads4");

    scenario::ScenarioRunner one(meteredOptions(d1, 1));
    ASSERT_EQ(one.run(sc), 0);
    scenario::ScenarioRunner four(meteredOptions(d4, 4));
    ASSERT_EQ(four.run(sc), 0);

    const auto t1 = snapshotTree(d1);
    const auto t4 = snapshotTree(d4);
    ASSERT_EQ(t1.size(), t4.size());
    // 2 variants x 4 trials of JSONL.
    EXPECT_EQ(t1.size(), 8u);
    std::size_t bytes = 0;
    for (const auto &[rel, text] : t1) {
        auto it = t4.find(rel);
        ASSERT_NE(it, t4.end()) << rel;
        EXPECT_EQ(text, it->second) << rel;
        bytes += text.size();
    }
    EXPECT_GT(bytes, 0u);

    // The snapshots really carry the expected instrumentation.
    const SnapshotFile sf = loadSnapshotFile(
        (d1 / "obs_tiny" / "v1_c4p.t0.jsonl").string());
    EXPECT_EQ(sf.meta.scenario, "obs_tiny");
    EXPECT_EQ(sf.meta.variant, "c4p");
    EXPECT_EQ(sf.meta.periodNs, milliseconds(10));
    bool sawKernel = false, sawFabric = false, sawJobs = false,
         sawWindow = false;
    for (const Sample &s : sf.samples) {
        sawKernel |= s.name == "sim.executed";
        sawFabric |= s.name == "fabric.recomputes";
        sawJobs |= s.name == "jobs.samples_per_sec";
        sawWindow |= s.kind == MetricKind::Window;
    }
    EXPECT_TRUE(sawKernel);
    EXPECT_TRUE(sawFabric);
    EXPECT_TRUE(sawJobs);
    EXPECT_TRUE(sawWindow);
    // More than one sampling tick fired over the run.
    EXPECT_GT(sf.samples.size(), 0u);
    EXPECT_NE(sf.samples.front().when, sf.samples.back().when);
}

TEST(Runner, CsvOutputIsUnchangedByMetrics)
{
    const scenario::Scenario sc = meteredScenario("obs_tiny_csv");

    auto runCsv = [&](scenario::RunOptions opt) {
        std::ostringstream out;
        scenario::CsvSink sink(out);
        scenario::ScenarioRunner runner(opt);
        runner.addSink(sink);
        EXPECT_EQ(runner.run(sc), 0);
        return out.str();
    };

    scenario::RunOptions plain;
    plain.trials = 2;
    plain.threads = 1;
    plain.seed = 0xC4;
    plain.seedSet = true;
    scenario::RunOptions metered = plain;
    metered.metricsDir = scratchDir("csv_invariance").string();

    const std::string without = runCsv(plain);
    EXPECT_EQ(runCsv(metered), without);
    EXPECT_FALSE(without.empty());
}

// --- analyzers --------------------------------------------------------

TEST(Analyze, SummaryAndTailRenderTheRollup)
{
    const fs::path dir = scratchDir("analyze");
    SnapshotMeta meta;
    meta.scenario = "s";
    meta.variant = "v";
    {
        std::ofstream out(dir / "a.jsonl", std::ios::binary);
        out << writeSnapshot(meta, mixedSamples());
    }
    const std::vector<std::string> files =
        collectSnapshotFiles(dir.string());
    ASSERT_EQ(files.size(), 1u);
    std::vector<SnapshotFile> loaded;
    loaded.push_back(loadSnapshotFile(files[0]));

    std::ostringstream summary;
    printSummary(loaded, summary);
    EXPECT_NE(summary.str().find("fabric.recomputes"),
              std::string::npos);
    EXPECT_NE(summary.str().find("window"), std::string::npos);

    std::ostringstream tail;
    printTail(loaded, 1, tail);
    // Only the newest tick (t=2s) appears.
    EXPECT_NE(tail.str().find("sim.depth"), std::string::npos);
    EXPECT_EQ(tail.str().find("sim.pending"), std::string::npos);

    EXPECT_THROW(collectSnapshotFiles((dir / "missing").string()),
                 std::runtime_error);
}

TEST(Diff, ReportsIdenticalSnapshotsAndInjectedDivergences)
{
    const fs::path dir = scratchDir("diff");
    SnapshotMeta meta;
    meta.scenario = "s";
    meta.variant = "v";
    std::vector<Sample> a = mixedSamples();
    std::vector<Sample> b = a;
    b[1].value = 99.0; // the injected divergence

    auto write = [&](const char *name,
                     const std::vector<Sample> &samples) {
        std::ofstream out(dir / name, std::ios::binary);
        out << writeSnapshot(meta, samples);
        return (dir / name).string();
    };
    const std::string pa = write("a.jsonl", a);
    const std::string pb = write("b.jsonl", b);
    const std::string pa2 = write("a_again.jsonl", a);

    std::ostringstream same;
    EXPECT_EQ(diffSnapshots(pa, pa2, same), 0);
    EXPECT_NE(same.str().find("identical"), std::string::npos);

    std::ostringstream diverged;
    EXPECT_EQ(diffSnapshots(pa, pb, diverged), 1);
    EXPECT_NE(diverged.str().find("diverge at line 3"),
              std::string::npos);
}

} // namespace
} // namespace c4::obs
