/**
 * @file
 * Reproduces Fig. 13: per-switch-port (leaf uplink trunk) bandwidth
 * around the Fig. 12 link failure, with and without C4P dynamic load
 * balance.
 *
 * Paper shape: before the failure all uplinks run near-optimal. After
 * it, without dynamic LB only the ports that inherited the rerouted
 * flows rise (ECMP rehash concentrates them) while others lose traffic;
 * with dynamic LB the load spreads back across the healthy uplinks.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/cluster.h"
#include "core/experiment.h"

using namespace c4;
using namespace c4::core;

namespace {

struct PortSeries
{
    // [spine] -> mean Gbps before / after failure on the watched leaf.
    std::vector<Summary> before, after;
    double cvAfter = 0.0; ///< imbalance across surviving uplinks
};

PortSeries
run(const bench::Options &opt, bool dynamic_lb)
{
    ClusterConfig cc;
    // Fully-loaded leaves, as in the Fig. 12 run (see that bench).
    cc.topology = paperTestbed();
    cc.topology.nodesPerSegment = 8;
    cc.topology.nvlinkBusBandwidth = gbps(450); // network-bound regime
    cc.enableC4p = true;
    cc.c4p.dynamicLoadBalance = dynamic_lb;
    cc.accl.qpsPerConnection = 2;
    Cluster cluster(cc);

    const auto placements = crossSegmentPairs(cluster.topology(), 8);
    std::vector<std::unique_ptr<AllreduceTask>> tasks;
    for (std::size_t i = 0; i < placements.size(); ++i) {
        AllreduceTaskConfig tc;
        tc.job = static_cast<JobId>(i + 1);
        tc.nodes = placements[i];
        tc.bytes = mib(256);
        tc.iterations = opt.pick(2600, 100);
        tasks.push_back(std::make_unique<AllreduceTask>(cluster, tc));
    }
    for (auto &t : tasks)
        t->start();

    const int leaf = cluster.topology().leafIndex(0, net::Plane::Left);
    const Time fail_at = seconds(8);
    cluster.sim().scheduleAt(fail_at, [&cluster, leaf] {
        cluster.fabric().setLinkUp(
            cluster.topology().trunkUplink(leaf, 0), false);
        cluster.fabric().setLinkUp(
            cluster.topology().trunkDownlink(0, leaf), false);
    });

    PortSeries series;
    series.before.resize(8);
    series.after.resize(8);
    PeriodicTask sampler(cluster.sim(), milliseconds(500), [&] {
        for (int s = 0; s < 8; ++s) {
            const double gbps = toGbps(cluster.fabric().linkThroughput(
                cluster.topology().trunkUplink(leaf, s)));
            if (cluster.sim().now() < fail_at)
                series.before[static_cast<std::size_t>(s)].add(gbps);
            else
                series.after[static_cast<std::size_t>(s)].add(gbps);
        }
    });
    sampler.start();
    cluster.run(opt.pick(seconds(30), seconds(12)));
    sampler.stop();

    Summary surviving;
    for (int s = 1; s < 8; ++s)
        surviving.add(series.after[static_cast<std::size_t>(s)].mean());
    series.cvAfter = surviving.cv();
    return series;
}

void
print(const char *title, const PortSeries &s)
{
    AsciiTable t({"Uplink", "Before failure (Gbps)",
                  "After failure (Gbps)"});
    for (int spine = 0; spine < 8; ++spine) {
        char name[24];
        std::snprintf(name, sizeof(name), "leaf0->spine%d%s", spine,
                      spine == 0 ? " (failed)" : "");
        t.addRow({name,
                  AsciiTable::num(
                      s.before[static_cast<std::size_t>(spine)].mean()),
                  AsciiTable::num(
                      s.after[static_cast<std::size_t>(spine)].mean())});
    }
    std::printf("%s\n", t.str(title).c_str());
    std::printf("  imbalance across surviving uplinks (cv): %.3f\n\n",
                s.cvAfter);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    const PortSeries stat = run(opt, false);
    const PortSeries dyn = run(opt, true);
    print("Fig. 13a: leaf uplink bandwidth, C4P static traffic "
          "engineering",
          stat);
    print("Fig. 13b: leaf uplink bandwidth, C4P dynamic load balance",
          dyn);
    std::printf("Paper shape: static TE concentrates rerouted flows on "
                "a few ports\n(higher imbalance); dynamic LB spreads "
                "them across the survivors.\n");
    return 0;
}
