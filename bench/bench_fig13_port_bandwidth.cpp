/**
 * @file
 * Scenario `fig13_port_bandwidth` — Fig. 13: per-switch-port (leaf
 * uplink trunk) bandwidth around the Fig. 12 link failure, with and
 * without C4P dynamic load balance. Without dynamic LB only the ports
 * that inherited the rerouted flows rise (ECMP rehash concentrates
 * them); with it the load spreads back across the healthy uplinks.
 */

#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

ScenarioSpec
workload(const RunOptions &opt, bool dynamicLb)
{
    ScenarioSpec spec;
    spec.variant = dynamicLb ? "dynamic_lb" : "static_te";
    // Fully-loaded leaves in the network-bound regime, as in Fig. 12.
    spec.topology.nodesPerSegment = 8;
    spec.topology.nvlinkBusBandwidth = gbps(450);
    spec.features.c4p = true;
    spec.features.dynamicLoadBalance = dynamicLb;
    spec.features.qpsPerConnection = 2;

    AllreduceGroupSpec g;
    g.tasks = 8;
    g.placement = AllreduceGroupSpec::Placement::CrossSegmentPairs;
    g.bytes = mib(256);
    g.iterations = opt.pick(2600, 100);
    spec.allreduces.push_back(g);

    LinkEventSpec fail;
    fail.at = seconds(8);
    fail.segment = 0;
    fail.plane = net::Plane::Left;
    fail.spine = 0;
    fail.up = false;
    spec.linkEvents.push_back(fail);

    spec.metrics.taskBusBw = false; // the uplinks are the story here
    spec.metrics.splitAt = fail.at;
    spec.metrics.uplinkSamplePeriod = milliseconds(500);
    spec.metrics.uplinkSegment = 0;
    spec.metrics.uplinkPlane = net::Plane::Left;
    spec.horizon = opt.pick(seconds(30), seconds(12));
    return spec;
}

const Register reg{{
    .name = "fig13_port_bandwidth",
    .title = "Fig. 13: leaf uplink bandwidth around a trunk failure",
    .description =
        "Per-uplink throughput on the failed leaf before/after the "
        "Fig. 12 trunk failure; uplink0 is the failed trunk.",
    .notes = "Paper shape: static TE concentrates rerouted flows on a "
             "few ports (higher surviving-uplink cv); dynamic LB "
             "spreads them across the survivors.",
    .fullTrials = 1,
    .smokeTrials = 1,
    .seed = 0xF16B01,
    .variants =
        [](const RunOptions &opt) {
            return std::vector<ScenarioSpec>{workload(opt, false),
                                             workload(opt, true)};
        },
    .summarize = {},
}};

} // namespace
