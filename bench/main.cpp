/**
 * @file
 * The unified bench binary: every paper figure, table, ablation, and
 * extra workload is a scenario registered by the translation units
 * linked alongside this main. `c4bench --list` enumerates them;
 * `c4bench <name> --smoke` is what CTest runs under the bench-smoke
 * label. Spec-file support (--spec / --dump-spec) comes from specio.
 *
 * `c4bench --perf` bypasses the scenario CLI entirely and runs the
 * wall-clock performance harness (see perf/perf.h).
 */

#include <cstring>

#include "perf/perf.h"
#include "scenario/cli.h"
#include "specio/specio.h"

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--perf") == 0)
            return c4::perf::perfMain(argc, argv);
    }
    c4::specio::installSpecCliHooks();
    return c4::scenario::scenarioMain(argc, argv);
}
