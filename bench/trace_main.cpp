/**
 * @file
 * c4trace — inspect the deterministic event traces written by
 * `c4bench --trace DIR`.
 *
 *   c4trace summary PATH...        per-kind counts, value stats, and
 *                                  the costliest fabric recomputes;
 *                                  PATH is a .jsonl file or a
 *                                  directory searched recursively
 *   c4trace timeline PATH...       human-readable log; several trial
 *                                  traces interleave by simulated time
 *   c4trace diff A.jsonl B.jsonl [--context N]
 *                                  byte-compare two trial traces and
 *                                  report the first divergence with
 *                                  context — exit 0 identical, 1
 *                                  divergent
 *
 * Because a trial's trace is byte-identical across thread counts and
 * reruns with the same seed, `diff` pinpoints exactly where a
 * nondeterministic change first bites — long before it surfaces (or
 * hides) in an end-of-run CSV aggregate.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "trace/analyze.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s summary PATH...\n"
        "       %s timeline PATH...\n"
        "       %s diff A.jsonl B.jsonl [--context N]\n"
        "\n"
        "PATH is a .jsonl trace file, or a directory (every *.jsonl\n"
        "under it, recursively). `c4bench <scenario> --trace DIR`\n"
        "writes them.\n",
        argv0, argv0, argv0);
}

/** Expand each argument and load the traces it names. */
int
loadAll(int argc, char **argv, std::vector<c4::trace::TraceFile> &out)
{
    for (int i = 0; i < argc; ++i) {
        try {
            for (const std::string &file :
                 c4::trace::collectTraceFiles(argv[i])) {
                out.push_back(c4::trace::loadTraceFile(file));
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }
    return 0;
}

int
mainSummary(int argc, char **argv, const char *argv0)
{
    if (argc < 1) {
        usage(argv0);
        return 2;
    }
    std::vector<c4::trace::TraceFile> traces;
    const int rc = loadAll(argc, argv, traces);
    if (rc != 0)
        return rc;
    c4::trace::printSummary(traces, std::cout);
    return 0;
}

int
mainTimeline(int argc, char **argv, const char *argv0)
{
    if (argc < 1) {
        usage(argv0);
        return 2;
    }
    std::vector<c4::trace::TraceFile> traces;
    const int rc = loadAll(argc, argv, traces);
    if (rc != 0)
        return rc;
    c4::trace::printTimeline(traces, std::cout);
    return 0;
}

int
mainDiff(int argc, char **argv, const char *argv0)
{
    std::vector<std::string> paths;
    int context = 3;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--context") == 0) {
            char *end = nullptr;
            const long v = i + 1 < argc
                               ? std::strtol(argv[++i], &end, 10)
                               : -1;
            if (!end || *end != '\0' || v < 0 || v > 100) {
                usage(argv0);
                return 2;
            }
            context = static_cast<int>(v);
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(argv0);
            return 2;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.size() != 2) {
        usage(argv0);
        return 2;
    }
    try {
        return c4::trace::diffTraces(paths[0], paths[1], std::cout,
                                     context);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string command = argv[1];
    if (command == "--help" || command == "-h") {
        usage(argv[0]);
        return 0;
    }
    if (command == "summary")
        return mainSummary(argc - 2, argv + 2, argv[0]);
    if (command == "timeline")
        return mainTimeline(argc - 2, argv + 2, argv[0]);
    if (command == "diff")
        return mainDiff(argc - 2, argv + 2, argv[0]);
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    usage(argv[0]);
    return 2;
}
