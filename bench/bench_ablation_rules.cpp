/**
 * @file
 * Scenario `ablation_rules` — Ablation A1: which of C4P's allocation
 * rules buys what? The Fig. 10a workload (8 concurrent cross-leaf
 * allreduce jobs, 1:1) runs under baseline ECMP, packet spraying,
 * each C4P rule alone, and full C4P. The dual-port rule removes the
 * 2x RX-port collapse; the spine rule removes trunk collisions; only
 * together do they reach the NVLink ceiling consistently.
 */

#include <string>
#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

ScenarioSpec
policy(const RunOptions &opt, const char *label, bool c4p, bool dual,
       bool spine, bool spray)
{
    ScenarioSpec spec;
    spec.variant = label;
    spec.features.c4p = c4p;
    spec.features.dualPortRule = dual;
    spec.features.spineRule = spine;
    spec.features.sprayPaths = spray;

    AllreduceGroupSpec g;
    g.tasks = 8;
    g.placement = AllreduceGroupSpec::Placement::CrossSegmentPairs;
    g.bytes = mib(256);
    g.iterations = opt.pick(30, 4);
    spec.allreduces.push_back(g);
    spec.metrics.perTask = false;
    return spec;
}

const Register reg{{
    .name = "ablation_rules",
    .title = "Ablation A1: C4P allocation rules (Fig. 10a workload)",
    .description =
        "Baseline ECMP, packet spraying, dual-port rule only, "
        "spine-balance rule only, and full C4P on the Fig. 10a "
        "8-tenant workload.",
    .notes = "Full C4P (both rules) should dominate; each rule alone "
             "removes only one collision class (DESIGN Section 4).",
    .fullTrials = 6,
    .smokeTrials = 1,
    .seed = 0xAB1A,
    .variants =
        [](const RunOptions &opt) {
            return std::vector<ScenarioSpec>{
                policy(opt, "ecmp", false, false, false, false),
                policy(opt, "spray", false, false, false, true),
                policy(opt, "dual_port_only", true, true, false,
                       false),
                policy(opt, "spine_only", true, false, true, false),
                policy(opt, "full_c4p", true, true, true, false),
            };
        },
    .summarize = {},
}};

} // namespace
