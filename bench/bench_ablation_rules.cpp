/**
 * @file
 * Ablation A1: which of C4P's allocation rules buys what?
 *
 * The Fig. 10a workload (8 concurrent cross-leaf allreduce jobs, 1:1)
 * is run under four policies:
 *   1. baseline ECMP (no rules),
 *   2. dual-port balance only (rx plane pinned, spines hashed),
 *   3. spine balance only (least-loaded spines, rx plane hashed),
 *   4. full C4P (both rules).
 *
 * DESIGN.md Section 4 calls this out: the dual-port rule removes the
 * 2x RX-port collapse; the spine rule removes trunk collisions; only
 * together do they reach the NVLink ceiling consistently.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "accl/path_policy.h"
#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/cluster.h"
#include "core/experiment.h"

using namespace c4;
using namespace c4::core;

namespace {

Summary
runPolicy(const bench::Options &opt, bool dual_port, bool spines,
          bool enable_c4p, std::uint64_t seed, bool spray = false)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4p = enable_c4p;
    cc.c4p.balanceDualPort = dual_port;
    cc.c4p.balanceSpines = spines;
    cc.seed = seed;
    Cluster cluster(cc);
    accl::SprayPathPolicy spray_policy(seed);
    if (spray)
        cluster.accl().setPathPolicy(&spray_policy);

    const auto placements = crossSegmentPairs(cluster.topology(), 8);
    std::vector<std::unique_ptr<AllreduceTask>> tasks;
    for (std::size_t i = 0; i < placements.size(); ++i) {
        AllreduceTaskConfig tc;
        tc.job = static_cast<JobId>(i + 1);
        tc.nodes = placements[i];
        tc.bytes = mib(256);
        tc.iterations = opt.pick(30, 4);
        tasks.push_back(std::make_unique<AllreduceTask>(cluster, tc));
    }
    for (auto &t : tasks)
        t->start();
    cluster.run();

    Summary out;
    for (auto &t : tasks)
        out.add(t->busBwGbps().mean());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    struct Config
    {
        const char *name;
        bool c4p, dual, spine, spray;
    };
    const std::vector<Config> configs = {
        {"baseline (ECMP)", false, false, false, false},
        {"packet spraying", false, false, false, true},
        {"dual-port rule only", true, true, false, false},
        {"spine-balance rule only", true, false, true, false},
        {"full C4P (both rules)", true, true, true, false},
    };

    const int kTrials = opt.pick(6, 1);
    AsciiTable t({"Policy", "Mean busbw (Gbps)", "Min task", "Max task"});
    for (const auto &cfg : configs) {
        Summary mean, mn, mx;
        for (int trial = 0; trial < kTrials; ++trial) {
            const Summary s = runPolicy(opt, cfg.dual, cfg.spine,
                                        cfg.c4p, 0xAB1A + 977u * trial,
                                        cfg.spray);
            mean.add(s.mean());
            mn.add(s.min());
            mx.add(s.max());
        }
        t.addRow({cfg.name, AsciiTable::num(mean.mean()),
                  AsciiTable::num(mn.mean()), AsciiTable::num(mx.mean())});
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Ablation A1: C4P allocation rules "
                  "(Fig. 10a workload, mean of %d trials)",
                  kTrials);
    std::printf("%s\n", t.str(title).c_str());
    return 0;
}
