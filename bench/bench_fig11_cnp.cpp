/**
 * @file
 * Reproduces Fig. 11: the CNP (Congestion Notification Packet) rate
 * received per bonded NIC port while the Fig. 10b workload (8 jobs, 2:1
 * oversubscription, C4P enabled) runs. Paper shape: ~15 kp/s per port,
 * fluctuating between 12.5 and 17.5 kp/s.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/cluster.h"
#include "core/experiment.h"

using namespace c4;
using namespace c4::core;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    ClusterConfig cc;
    cc.topology = paperTestbed(2.0); // congested 2:1 network
    cc.enableC4p = true;
    Cluster cluster(cc);

    const auto placements = crossSegmentPairs(cluster.topology(), 8);
    std::vector<std::unique_ptr<AllreduceTask>> tasks;
    for (std::size_t i = 0; i < placements.size(); ++i) {
        AllreduceTaskConfig tc;
        tc.job = static_cast<JobId>(i + 1);
        tc.nodes = placements[i];
        tc.bytes = mib(256);
        tc.iterations = opt.pick(1200, 30);
        tasks.push_back(std::make_unique<AllreduceTask>(cluster, tc));
    }
    for (auto &t : tasks)
        t->start();

    // Sample each active sender NIC's CNP rate once a second. The ring
    // boundary NICs are nic 7 (Tx side); sample every node's nic 7.
    Summary per_port;
    std::vector<Summary> series; // one bucket per 10 s for the table
    PeriodicTask sampler(cluster.sim(), seconds(1), [&] {
        for (NodeId n = 0; n < cluster.topology().numNodes(); ++n) {
            const double kps =
                cluster.fabric().nicCnpRate(n, 7) / 1000.0;
            if (kps <= 0.0)
                continue;
            per_port.add(kps);
            const auto bucket = static_cast<std::size_t>(
                toSeconds(cluster.sim().now()) / 10.0);
            if (series.size() <= bucket)
                series.resize(bucket + 1);
            series[bucket].add(kps);
        }
    });
    sampler.start();
    cluster.run(opt.pick(seconds(120), seconds(10)));
    sampler.stop();

    AsciiTable t({"t (s)", "mean (kp/s)", "min", "max"});
    for (std::size_t b = 0; b < series.size(); ++b) {
        if (series[b].empty())
            continue;
        char when[16];
        std::snprintf(when, sizeof(when), "%zu-%zu", b * 10,
                      b * 10 + 10);
        t.addRow({when, AsciiTable::num(series[b].mean(), 1),
                  AsciiTable::num(series[b].min(), 1),
                  AsciiTable::num(series[b].max(), 1)});
    }
    std::printf("%s\n",
                t.str("Fig. 11: CNP count per bonded port, 2:1 "
                      "oversubscription (C4P on)")
                    .c_str());
    std::printf("overall: mean %.1f kp/s, p5 %.1f, p95 %.1f "
                "(paper: ~15 kp/s, fluctuating 12.5-17.5)\n",
                per_port.mean(), per_port.percentile(5),
                per_port.percentile(95));
    return 0;
}
