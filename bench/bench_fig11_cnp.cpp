/**
 * @file
 * Scenario `fig11_cnp` — Fig. 11: the CNP (Congestion Notification
 * Packet) rate received per bonded NIC port while the Fig. 10b
 * workload (8 jobs, 2:1 oversubscription, C4P enabled) runs. The ring
 * boundary senders are NIC 7; every node's NIC 7 is sampled once a
 * second.
 */

#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

const Register reg{{
    .name = "fig11_cnp",
    .title = "Fig. 11: CNP count per bonded port, 2:1 "
             "oversubscription (C4P on)",
    .description =
        "Per-port CNP rate under the Fig. 10b workload; the paper "
        "band is 12.5-17.5 kp/s around ~15 kp/s.",
    .notes = "Paper shape: ~15 kp/s per port, fluctuating between "
             "12.5 and 17.5 kp/s.",
    .fullTrials = 1,
    .smokeTrials = 1,
    .seed = 0xC4C10C4D,
    .variants =
        [](const RunOptions &opt) {
            ScenarioSpec spec;
            spec.variant = "2to1_c4p";
            spec.topology.oversubscription = 2.0; // congested network
            spec.features.c4p = true;

            AllreduceGroupSpec g;
            g.tasks = 8;
            g.placement =
                AllreduceGroupSpec::Placement::CrossSegmentPairs;
            g.bytes = mib(256);
            g.iterations = opt.pick(1200, 30);
            spec.allreduces.push_back(g);

            spec.metrics.perTask = false;
            spec.metrics.cnpSamplePeriod = seconds(1);
            spec.metrics.cnpNic = 7;
            spec.horizon = opt.pick(seconds(120), seconds(10));
            return std::vector<ScenarioSpec>{spec};
        },
    .summarize = {},
}};

} // namespace
