/**
 * @file
 * Reproduces Fig. 12: instantaneous allreduce bus bandwidth of 8
 * concurrent tasks when a leaf-spine uplink fails mid-run, comparing
 * (a) C4P static traffic engineering (paths planned once; failures fall
 *     back to ECMP rehash) against
 * (b) C4P dynamic load balance (message-completion-time feedback
 *     re-pins QPs onto the least-loaded healthy paths).
 *
 * Paper shape: static TE degrades to ~185 Gbps average; dynamic load
 * balance recovers to ~301 Gbps, near the 7/8-capacity ideal of 315.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/cluster.h"
#include "core/experiment.h"

using namespace c4;
using namespace c4::core;

namespace {

struct RunResult
{
    Summary before; ///< busbw samples before the failure
    Summary after;  ///< busbw samples after the failure
    std::vector<double> taskAfterMean;
};

RunResult
run(const bench::Options &opt, bool dynamic_lb, std::uint64_t seed)
{
    ClusterConfig cc;
    // Same 16-node testbed, but grouped as 2 segments of 8 so that
    // each leaf carries 8 concurrent uplink flows on its 8 trunks —
    // the fully-loaded regime the paper's failure experiment probes.
    cc.topology = paperTestbed();
    cc.topology.nodesPerSegment = 8;
    // In this experiment the paper's fabric is the binding resource
    // (post-failure ideal = 7/8 of capacity). Lift the NVLink ceiling
    // above the bonded-NIC rate so network capacity binds here too.
    cc.topology.nvlinkBusBandwidth = gbps(450);
    cc.enableC4p = true;
    cc.c4p.dynamicLoadBalance = dynamic_lb;
    cc.accl.qpsPerConnection = 2; // chunk split C4P can re-weight
    cc.seed = seed;
    Cluster cluster(cc);

    const auto placements = crossSegmentPairs(cluster.topology(), 8);
    const Time fail_at = seconds(8);

    RunResult result;
    std::vector<Summary> after_per_task(8);
    std::vector<std::unique_ptr<AllreduceTask>> tasks;
    for (std::size_t i = 0; i < placements.size(); ++i) {
        AllreduceTaskConfig tc;
        tc.job = static_cast<JobId>(i + 1);
        tc.nodes = placements[i];
        tc.bytes = mib(256);
        tc.iterations = opt.pick(1500, 100);
        auto task = std::make_unique<AllreduceTask>(cluster, tc);
        task->onIteration([&, i, fail_at](int, double bw) {
            if (cluster.sim().now() < fail_at)
                result.before.add(bw);
            else {
                result.after.add(bw);
                after_per_task[i].add(bw);
            }
        });
        tasks.push_back(std::move(task));
    }
    for (auto &t : tasks)
        t->start();

    // Fail one of the 8 uplinks of segment 0's left leaf mid-run (a
    // cable failure kills both directions).
    cluster.sim().scheduleAt(fail_at, [&cluster] {
        const int leaf =
            cluster.topology().leafIndex(0, net::Plane::Left);
        cluster.fabric().setLinkUp(
            cluster.topology().trunkUplink(leaf, 0), false);
        cluster.fabric().setLinkUp(
            cluster.topology().trunkDownlink(0, leaf), false);
    });

    cluster.run(opt.pick(seconds(40), seconds(12)));
    for (auto &s : after_per_task)
        result.taskAfterMean.push_back(s.empty() ? 0.0 : s.mean());
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    const RunResult stat = run(opt, false, 0xF16B01);
    const RunResult dyn = run(opt, true, 0xF16B01);

    AsciiTable t({"Task", "Static TE, after failure (Gbps)",
                  "Dynamic LB, after failure (Gbps)"});
    for (std::size_t i = 0; i < stat.taskAfterMean.size(); ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "task%zu", i + 1);
        t.addRow({name, AsciiTable::num(stat.taskAfterMean[i]),
                  AsciiTable::num(dyn.taskAfterMean[i])});
    }
    std::printf("%s\n",
                t.str("Fig. 12: allreduce busbw around a mid-run "
                      "uplink failure")
                    .c_str());

    std::printf("before failure: static %.2f, dynamic %.2f Gbps "
                "(both fully planned)\n",
                stat.before.mean(), dyn.before.mean());
    std::printf("after failure : static %.2f Gbps (paper: 185.76), "
                "dynamic %.2f Gbps (paper: 301.46)\n",
                stat.after.mean(), dyn.after.mean());
    std::printf("dynamic-vs-static gain: %.1f%% (paper: +62.3%%)\n",
                (dyn.after.mean() / stat.after.mean() - 1.0) * 100.0);
    std::printf("post-failure ideal (one of 8 uplinks lost): ~%.0f "
                "Gbps (paper: 315)\n",
                400.0 * 7.0 / 8.0);
    return 0;
}
