/**
 * @file
 * Scenario `fig12_link_failure` — Fig. 12: instantaneous allreduce bus
 * bandwidth of 8 concurrent tasks when a leaf-spine uplink fails
 * mid-run, comparing C4P static traffic engineering (failures fall
 * back to ECMP rehash) against C4P dynamic load balance
 * (message-completion-time feedback re-pins QPs onto the least-loaded
 * healthy paths).
 */

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

ScenarioSpec
workload(const RunOptions &opt, bool dynamicLb)
{
    ScenarioSpec spec;
    spec.variant = dynamicLb ? "dynamic_lb" : "static_te";
    // Same 16-node testbed, but grouped as 2 segments of 8 so each
    // leaf carries 8 concurrent uplink flows on its 8 trunks — the
    // fully-loaded regime the paper's failure experiment probes. The
    // NVLink ceiling is lifted above the bonded-NIC rate so network
    // capacity binds (post-failure ideal = 7/8 of capacity).
    spec.topology.nodesPerSegment = 8;
    spec.topology.nvlinkBusBandwidth = gbps(450);
    spec.features.c4p = true;
    spec.features.dynamicLoadBalance = dynamicLb;
    spec.features.qpsPerConnection = 2; // chunk split C4P re-weights

    AllreduceGroupSpec g;
    g.tasks = 8;
    g.placement = AllreduceGroupSpec::Placement::CrossSegmentPairs;
    g.bytes = mib(256);
    g.iterations = opt.pick(1500, 100);
    spec.allreduces.push_back(g);

    // Fail one of the 8 uplinks of segment 0's left leaf mid-run (a
    // cable failure kills both directions).
    LinkEventSpec fail;
    fail.at = seconds(8);
    fail.segment = 0;
    fail.plane = net::Plane::Left;
    fail.spine = 0;
    fail.up = false;
    spec.linkEvents.push_back(fail);

    spec.metrics.splitAt = fail.at;
    spec.horizon = opt.pick(seconds(40), seconds(12));
    return spec;
}

const Register reg{{
    .name = "fig12_link_failure",
    .title = "Fig. 12: allreduce busbw around a mid-run uplink "
             "failure",
    .description =
        "8 concurrent allreduce tasks; one leaf-spine trunk fails at "
        "t=8s. C4P static TE vs dynamic load balance.",
    .notes = "Paper shape: static TE degrades to ~185 Gbps average; "
             "dynamic LB recovers to ~301, near the 7/8-capacity "
             "ideal of 315.",
    .fullTrials = 1,
    .smokeTrials = 1,
    .seed = 0xF16B01,
    .variants =
        [](const RunOptions &opt) {
            return std::vector<ScenarioSpec>{workload(opt, false),
                                             workload(opt, true)};
        },
    .summarize =
        [](const std::vector<TrialResult> &results) {
            const auto after =
                variantMetricMeans(results, "busbw_after");
            auto mean = [&](const char *v) {
                auto it = after.find(v);
                return it == after.end() ? 0.0 : it->second;
            };
            const double stat = mean("static_te");
            const double dyn = mean("dynamic_lb");
            if (stat <= 0.0)
                return std::string();
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "dynamic-vs-static gain after failure: "
                          "%+.1f%% (paper: +62.3%%)",
                          (dyn / stat - 1.0) * 100.0);
            return std::string(buf);
        },
}};

} // namespace
