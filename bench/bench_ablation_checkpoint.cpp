/**
 * @file
 * Scenario `ablation_checkpoint` — Ablation A3: checkpoint-interval
 * sweep against total downtime — why the paper's production fleet
 * settled on ~10-minute checkpoints after C4D shipped (Section
 * IV-B.1). Sparse checkpoints lose work at every crash; manic
 * checkpointing pays the save cost continuously.
 */

#include <string>
#include <vector>

#include "c4d/downtime.h"
#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::c4d;
using namespace c4::scenario;

ScenarioSpec
atInterval(const char *label, Duration interval)
{
    ScenarioSpec spec;
    spec.variant = label;
    spec.custom = [interval](TrialContext &ctx) {
        RecoveryPolicy policy = RecoveryPolicy::december2023();
        policy.checkpointInterval = interval;
        DowntimeModel model(policy,
                            fault::FaultRates::paperDecember2023(),
                            2400, days(30), ctx.seed);
        const DowntimeBreakdown b = model.run(ctx.pick(64, 8));
        ctx.metric("post_checkpoint", b.postCheckpoint);
        ctx.metric("total", b.total());
    };
    return spec;
}

const Register reg{{
    .name = "ablation_checkpoint",
    .title = "Ablation A3: checkpoint cadence vs downtime (C4D-era "
             "cluster, 2400 GPUs)",
    .description =
        "Total downtime fraction as the checkpoint interval sweeps "
        "from 8 h to 30 s under the December-2023 recovery regime.",
    .notes = "U-shape: losing work (sparse) vs paying save cost "
             "(manic); ~10 min is near the knee — the production "
             "choice (Dec 2023).",
    .fullTrials = 4,
    .smokeTrials = 1,
    .seed = 0xC4C4,
    .variants =
        [](const RunOptions &) {
            return std::vector<ScenarioSpec>{
                atInterval("8h", hours(8)),
                atInterval("4.5h", hours(4.5)),
                atInterval("1h", hours(1)),
                atInterval("30min", minutes(30)),
                atInterval("10min", minutes(10)),
                atInterval("2min", minutes(2)),
                atInterval("30s", seconds(30)),
            };
        },
    .summarize = {},
}};

} // namespace
