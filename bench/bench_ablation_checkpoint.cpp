/**
 * @file
 * Ablation A3: checkpoint-interval sweep against total downtime — why
 * the paper's production fleet settled on ~10-minute checkpoints after
 * C4D shipped (Section IV-B.1). Sparse checkpoints lose work at every
 * crash; manic checkpointing pays the save cost continuously.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "c4d/downtime.h"
#include "common/table.h"

using namespace c4;
using namespace c4::c4d;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    const std::vector<std::pair<const char *, Duration>> intervals = {
        {"8 h", hours(8)},       {"4.5 h", hours(4.5)},
        {"1 h", hours(1)},       {"30 min", minutes(30)},
        {"10 min", minutes(10)}, {"2 min", minutes(2)},
        {"30 s", seconds(30)},
    };

    AsciiTable t({"Checkpoint interval", "Post-ckpt downtime",
                  "Total downtime", "Paper note"});
    for (const auto &[label, interval] : intervals) {
        RecoveryPolicy p = RecoveryPolicy::december2023();
        p.checkpointInterval = interval;
        DowntimeModel model(p, fault::FaultRates::paperDecember2023(),
                            2400, days(30), 0xC4C4);
        const DowntimeBreakdown b = model.run(opt.pick(256, 8));
        t.addRow({label, AsciiTable::percent(b.postCheckpoint, 3),
                  AsciiTable::percent(b.total(), 3),
                  std::string(label) == "10 min"
                      ? "production choice (Dec 2023)"
                      : ""});
    }
    std::printf("%s\n",
                t.str("Ablation A3: checkpoint cadence vs downtime "
                      "(C4D-era cluster, 2400 GPUs)")
                    .c_str());
    std::printf("U-shape: losing work (sparse) vs paying save cost "
                "(manic); ~10 min is near the knee.\n");
    return 0;
}
