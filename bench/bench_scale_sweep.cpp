/**
 * @file
 * Scenario `scale_sweep` — a topology-scale sweep the old per-driver
 * structure made awkward: the same 8-tenant cross-segment allreduce
 * workload runs on the paper testbed and on production pods of
 * increasing size (32 -> 128 nodes), with and without C4P, showing
 * that the traffic-engineering win survives (and grows with) scale.
 */

#include <string>
#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

ScenarioSpec
atScale(const RunOptions &opt, const char *label, int podNodes,
        bool c4p)
{
    ScenarioSpec spec;
    spec.variant = std::string(label) + (c4p ? "_c4p" : "_ecmp");
    if (podNodes > 0) {
        spec.topology.kind = TopologySpec::Kind::Pod;
        spec.topology.numNodes = podNodes;
    }
    spec.features.c4p = c4p;

    AllreduceGroupSpec g;
    g.tasks = 8;
    g.placement = AllreduceGroupSpec::Placement::CrossSegmentPairs;
    g.bytes = mib(256);
    g.iterations = opt.pick(20, 3);
    spec.allreduces.push_back(g);
    spec.metrics.perTask = false;
    return spec;
}

const Register reg{{
    .name = "scale_sweep",
    .title = "Scale sweep: 8-tenant allreduce, testbed -> multi-pod "
             "fat-tree",
    .description =
        "The Fig. 10a tenant workload on the 16-node testbed and on "
        "32/64/128-node pods, ECMP vs C4P, to check the TE win "
        "survives scale.",
    .notes = "New workload (not a paper figure): busbw_min is the "
             "interesting row — ECMP's worst tenant collapses as the "
             "pod grows while C4P stays near the NVLink ceiling.",
    .fullTrials = 3,
    .smokeTrials = 1,
    .seed = 0x5CA1E,
    .variants =
        [](const RunOptions &opt) {
            std::vector<ScenarioSpec> specs;
            struct Scale
            {
                const char *label;
                int podNodes; ///< 0 = paper testbed
            };
            const std::vector<Scale> scales = opt.pick(
                std::vector<Scale>{{"testbed16", 0},
                                   {"pod32", 32},
                                   {"pod64", 64},
                                   {"pod128", 128},
                                   {"pod512", 512}},
                std::vector<Scale>{{"testbed16", 0},
                                   {"pod32", 32},
                                   {"pod512", 512}});
            for (const Scale &s : scales) {
                specs.push_back(
                    atScale(opt, s.label, s.podNodes, false));
                specs.push_back(
                    atScale(opt, s.label, s.podNodes, true));
            }
            return specs;
        },
    .summarize = {},
}};

} // namespace
