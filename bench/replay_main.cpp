/**
 * @file
 * c4replay — feed recorded event traces back through the C4D incident
 * analyzer, with no live simulator, and score the verdicts against
 * ground-truth labels.
 *
 *   c4replay run TRACE [--label F]    replay one trace; print its
 *                                     verdicts as canonical JSONL (and
 *                                     score them when a label is given)
 *   c4replay summary DIR              corpus table: per incident, the
 *                                     label, trace size, verdict count
 *   c4replay score DIR [options]      replay + score every incident:
 *       --min-precision P             fail (exit 1) below P
 *       --min-recall R                fail (exit 1) below R
 *       --golden F                    byte-compare the verdict JSONL
 *                                     against F; divergence fails
 *       --write-golden F              write the verdict JSONL to F
 *       --report F                    write the score table to F
 *   c4replay capture OUTDIR [--only a,b]
 *                                     re-simulate the built-in incident
 *                                     scenarios and (re)write OUTDIR's
 *                                     traces, labels, and golden
 *
 * The committed corpus lives in tests/incidents/; `ctest -L replay`
 * drives `score` with the precision/recall floors and the golden diff.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "replay/capture.h"
#include "replay/replay.h"
#include "replay/score.h"
#include "trace/export.h"

namespace {

using namespace c4;

constexpr const char *kGoldenName = "golden_verdicts.jsonl";

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s run TRACE.jsonl [--label FILE.json]\n"
        "       %s summary DIR\n"
        "       %s score DIR [--min-precision P] [--min-recall R]\n"
        "                    [--golden FILE] [--write-golden FILE]\n"
        "                    [--report FILE]\n"
        "       %s capture OUTDIR [--only name,name...]\n"
        "\n"
        "DIR holds <name>.trace.jsonl + <name>.label.json pairs\n"
        "(tests/incidents/ is the committed corpus).\n",
        argv0, argv0, argv0, argv0);
}

std::string
incidentNameOf(const std::string &path)
{
    std::string stem = std::filesystem::path(path).filename().string();
    const std::string suffix = ".trace.jsonl";
    if (stem.size() > suffix.size() && stem.ends_with(suffix))
        return stem.substr(0, stem.size() - suffix.size());
    return std::filesystem::path(path).stem().string();
}

std::vector<trace::Event>
loadTrace(const std::string &path)
{
    try {
        return trace::parseJsonl(replay::readFileOrThrow(path));
    } catch (const SpecError &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

int
mainRun(int argc, char **argv, const char *argv0)
{
    std::string tracePath, labelPath;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
            labelPath = argv[++i];
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(argv0);
            return 2;
        } else if (tracePath.empty()) {
            tracePath = argv[i];
        } else {
            usage(argv0);
            return 2;
        }
    }
    if (tracePath.empty()) {
        usage(argv0);
        return 2;
    }

    const std::string name = incidentNameOf(tracePath);
    const std::vector<c4d::IncidentVerdict> verdicts =
        replay::replayTrace(loadTrace(tracePath));
    std::fputs(replay::verdictsToJsonl(name, verdicts).c_str(), stdout);

    if (!labelPath.empty()) {
        replay::Incident inc;
        inc.name = name;
        inc.tracePath = tracePath;
        inc.label =
            replay::labelFromJson(replay::readFileOrThrow(labelPath));
        const replay::IncidentScore s =
            replay::scoreIncident(inc, verdicts);
        std::printf("# outcome=%s", s.outcome.c_str());
        if (s.truePositive)
            std::printf(" ttd_s=%.3f", s.ttdSeconds);
        std::printf("\n");
        if (s.outcome != "detected" && s.outcome != "clean")
            return 1;
    }
    return 0;
}

int
mainSummary(const std::string &dir)
{
    const std::vector<replay::Incident> incidents =
        replay::collectIncidents(dir);
    std::printf("%-32s %-18s %8s %8s\n", "incident", "label", "events",
                "verdicts");
    for (const replay::Incident &inc : incidents) {
        const std::vector<trace::Event> events =
            loadTrace(inc.tracePath);
        const std::vector<c4d::IncidentVerdict> verdicts =
            replay::replayTrace(events);
        std::printf("%-32s %-18s %8zu %8zu\n", inc.name.c_str(),
                    inc.label.rootCause.c_str(), events.size(),
                    verdicts.size());
    }
    return 0;
}

int
mainScore(int argc, char **argv, const char *argv0)
{
    std::string dir, goldenPath, writeGoldenPath, reportPath;
    double minPrecision = -1.0, minRecall = -1.0;
    for (int i = 0; i < argc; ++i) {
        const auto optValue = [&](const char *flag,
                                  std::string &out) {
            if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc)
                return false;
            out = argv[++i];
            return true;
        };
        std::string num;
        if (optValue("--golden", goldenPath) ||
            optValue("--write-golden", writeGoldenPath) ||
            optValue("--report", reportPath)) {
            continue;
        }
        if (optValue("--min-precision", num)) {
            minPrecision = std::atof(num.c_str());
        } else if (optValue("--min-recall", num)) {
            minRecall = std::atof(num.c_str());
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(argv0);
            return 2;
        } else if (dir.empty()) {
            dir = argv[i];
        } else {
            usage(argv0);
            return 2;
        }
    }
    if (dir.empty()) {
        usage(argv0);
        return 2;
    }

    const std::vector<replay::Incident> incidents =
        replay::collectIncidents(dir);
    std::vector<replay::IncidentScore> scores;
    std::string goldenText;
    for (const replay::Incident &inc : incidents) {
        const std::vector<c4d::IncidentVerdict> verdicts =
            replay::replayTrace(loadTrace(inc.tracePath));
        goldenText += replay::verdictsToJsonl(inc.name, verdicts);
        scores.push_back(replay::scoreIncident(inc, verdicts));
    }
    const replay::ScoreReport report =
        replay::aggregateScores(std::move(scores));
    const std::string table = replay::formatScoreReport(report);
    std::fputs(table.c_str(), stdout);
    if (!reportPath.empty())
        replay::writeFileOrThrow(reportPath, table);
    if (!writeGoldenPath.empty())
        replay::writeFileOrThrow(writeGoldenPath, goldenText);

    int rc = 0;
    if (!goldenPath.empty()) {
        const std::string want = replay::readFileOrThrow(goldenPath);
        if (want != goldenText) {
            std::fprintf(stderr,
                         "FAIL: verdicts diverge from golden %s "
                         "(%zu vs %zu bytes); rerun with "
                         "--write-golden after an intentional "
                         "detector change\n",
                         goldenPath.c_str(), goldenText.size(),
                         want.size());
            rc = 1;
        }
    }
    if (minPrecision >= 0.0 && report.precision < minPrecision) {
        std::fprintf(stderr, "FAIL: precision %.3f < %.3f\n",
                     report.precision, minPrecision);
        rc = 1;
    }
    if (minRecall >= 0.0 && report.recall < minRecall) {
        std::fprintf(stderr, "FAIL: recall %.3f < %.3f\n",
                     report.recall, minRecall);
        rc = 1;
    }
    return rc;
}

int
mainCapture(int argc, char **argv, const char *argv0)
{
    std::string outDir, only;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
            only = argv[++i];
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(argv0);
            return 2;
        } else if (outDir.empty()) {
            outDir = argv[i];
        } else {
            usage(argv0);
            return 2;
        }
    }
    if (outDir.empty()) {
        usage(argv0);
        return 2;
    }

    std::vector<std::string> names;
    if (only.empty()) {
        names = replay::captureIncidentNames();
    } else {
        std::string token;
        for (const char c : only + ",") {
            if (c == ',') {
                if (!token.empty())
                    names.push_back(token);
                token.clear();
            } else {
                token.push_back(c);
            }
        }
    }

    std::filesystem::create_directories(outDir);
    std::string goldenText;
    for (const std::string &name : names) {
        const replay::CaptureResult cap =
            replay::captureIncident(name);
        const std::filesystem::path base(outDir);
        replay::writeFileOrThrow((base / (name + ".trace.jsonl"))
                                     .string(),
                                 trace::writeJsonl(cap.events));
        replay::writeFileOrThrow((base / (name + ".label.json"))
                                     .string(),
                                 replay::writeLabelJson(cap.label));
        const std::vector<c4d::IncidentVerdict> verdicts =
            replay::replayTrace(cap.events);
        goldenText += replay::verdictsToJsonl(name, verdicts);
        std::printf("%-32s %6zu events %3zu verdicts\n", name.c_str(),
                    cap.events.size(), verdicts.size());
    }
    // Goldens only make sense for the complete corpus: a partial
    // capture would byte-diff against a truncated file.
    if (only.empty()) {
        replay::writeFileOrThrow(
            (std::filesystem::path(outDir) / kGoldenName).string(),
            goldenText);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string command = argv[1];
    if (command == "--help" || command == "-h") {
        usage(argv[0]);
        return 0;
    }
    try {
        if (command == "run")
            return mainRun(argc - 2, argv + 2, argv[0]);
        if (command == "summary" && argc == 3)
            return mainSummary(argv[2]);
        if (command == "score")
            return mainScore(argc - 2, argv + 2, argv[0]);
        if (command == "capture")
            return mainCapture(argc - 2, argv + 2, argv[0]);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    usage(argv[0]);
    return 2;
}
