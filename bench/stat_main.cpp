/**
 * @file
 * c4stat — inspect the deterministic metric snapshots written by
 * `c4bench --metrics DIR`.
 *
 *   c4stat summary PATH...         per-metric rollup (kind, ticks,
 *                                  last value, window percentiles);
 *                                  PATH is a .jsonl snapshot file or
 *                                  a directory searched recursively
 *   c4stat tail PATH... [--ticks N]
 *                                  the last N sampling ticks of each
 *                                  snapshot, one line per sample
 *   c4stat diff A.jsonl B.jsonl [--context N]
 *                                  byte-compare two snapshots and
 *                                  report the first divergence with
 *                                  context — exit 0 identical, 1
 *                                  divergent
 *
 * Because a trial's snapshot is byte-identical across thread counts
 * and reruns with the same seed, `diff` pinpoints exactly where a
 * nondeterministic change first bites — long before it surfaces (or
 * hides) in an end-of-run CSV aggregate.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "obs/analyze.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s summary PATH...\n"
        "       %s tail PATH... [--ticks N]\n"
        "       %s diff A.jsonl B.jsonl [--context N]\n"
        "\n"
        "PATH is a .jsonl metric snapshot, or a directory (every\n"
        "*.jsonl under it, recursively). `c4bench <scenario>\n"
        "--metrics DIR` writes them.\n",
        argv0, argv0, argv0);
}

/** Expand each argument and load the snapshots it names. */
int
loadAll(const std::vector<std::string> &paths,
        std::vector<c4::obs::SnapshotFile> &out)
{
    for (const std::string &path : paths) {
        try {
            for (const std::string &file :
                 c4::obs::collectSnapshotFiles(path)) {
                out.push_back(c4::obs::loadSnapshotFile(file));
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }
    return 0;
}

int
mainSummary(int argc, char **argv, const char *argv0)
{
    if (argc < 1) {
        usage(argv0);
        return 2;
    }
    std::vector<std::string> paths(argv, argv + argc);
    std::vector<c4::obs::SnapshotFile> files;
    const int rc = loadAll(paths, files);
    if (rc != 0)
        return rc;
    c4::obs::printSummary(files, std::cout);
    return 0;
}

int
mainTail(int argc, char **argv, const char *argv0)
{
    std::vector<std::string> paths;
    int ticks = 5;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ticks") == 0) {
            char *end = nullptr;
            const long v = i + 1 < argc
                               ? std::strtol(argv[++i], &end, 10)
                               : -1;
            if (!end || *end != '\0' || v < 1 || v > 100000) {
                usage(argv0);
                return 2;
            }
            ticks = static_cast<int>(v);
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(argv0);
            return 2;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.empty()) {
        usage(argv0);
        return 2;
    }
    std::vector<c4::obs::SnapshotFile> files;
    const int rc = loadAll(paths, files);
    if (rc != 0)
        return rc;
    c4::obs::printTail(files, ticks, std::cout);
    return 0;
}

int
mainDiff(int argc, char **argv, const char *argv0)
{
    std::vector<std::string> paths;
    int context = 3;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--context") == 0) {
            char *end = nullptr;
            const long v = i + 1 < argc
                               ? std::strtol(argv[++i], &end, 10)
                               : -1;
            if (!end || *end != '\0' || v < 0 || v > 100) {
                usage(argv0);
                return 2;
            }
            context = static_cast<int>(v);
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(argv0);
            return 2;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.size() != 2) {
        usage(argv0);
        return 2;
    }
    try {
        return c4::obs::diffSnapshots(paths[0], paths[1], std::cout,
                                      context);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string command = argv[1];
    if (command == "--help" || command == "-h") {
        usage(argv[0]);
        return 0;
    }
    if (command == "summary")
        return mainSummary(argc - 2, argv + 2, argv[0]);
    if (command == "tail")
        return mainTail(argc - 2, argv + 2, argv[0]);
    if (command == "diff")
        return mainDiff(argc - 2, argv + 2, argv[0]);
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    usage(argv[0]);
    return 2;
}
