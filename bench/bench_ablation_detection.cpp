/**
 * @file
 * Scenario `ablation_detection` — Ablation A2: C4D localization
 * accuracy and latency vs fault severity.
 *
 * For each degradation severity (how much NIC Rx bandwidth remains)
 * and for straggler slowdowns, a fault is injected into a running job
 * and the metrics record whether C4D localizes the right node and how
 * fast. The paper claims detection in "tens of seconds" for clear
 * faults; mild degradations sit below the analyzer's thresholds by
 * design (they are within normal jitter).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

ScenarioSpec
base(const RunOptions &opt, Duration minWaitForSlow)
{
    ScenarioSpec spec;
    spec.features.c4d = true;
    spec.features.evaluatePeriod = seconds(2);
    spec.features.minWaitForSlow = minWaitForSlow;
    spec.features.isolateOnSlow = false; // observe without restarts

    JobSpec job;
    job.model = "llama7b";
    job.microbatchCompute = milliseconds(800);
    job.parallel = {.tp = 8, .pp = 1, .dp = 4};
    job.initTime = seconds(5);
    job.dpGroupsSimulated = 1;
    spec.jobs.push_back(job);

    spec.metrics.jobThroughput = false;
    spec.metrics.detection = true;
    spec.horizon = minutes(1) + opt.pick(minutes(8), minutes(2));
    return spec;
}

/** Degraded NIC receive path: all NICs of job node 1. */
ScenarioSpec
nicFault(const RunOptions &opt, double severity)
{
    ScenarioSpec spec = base(opt, milliseconds(20));
    char label[24];
    std::snprintf(label, sizeof(label), "nic_rx_%.0f%%",
                  severity * 100);
    spec.variant = label;

    FaultSpec f;
    f.at = minutes(1); // after the job reached steady state
    f.type = fault::FaultType::SlowNicRx;
    f.job = 1;
    f.jobNodeIndex = 1;
    f.allNics = true;
    f.severity = severity;
    spec.faults.push_back(f);

    spec.metrics.detectionKind = c4d::C4dEventKind::CommSlow;
    return spec;
}

/** Straggler: job node 2's compute slowed by `scale`. */
ScenarioSpec
straggler(const RunOptions &opt, double scale)
{
    ScenarioSpec spec = base(opt, milliseconds(50));
    char label[24];
    std::snprintf(label, sizeof(label), "straggler_%.2fx", scale);
    spec.variant = label;

    FaultSpec f;
    f.at = minutes(1);
    f.type = fault::FaultType::SlowNode;
    f.job = 1;
    f.jobNodeIndex = 2;
    f.severity = 1.0 / scale; // applier slows compute by 1/severity
    spec.faults.push_back(f);

    spec.metrics.detectionKind = c4d::C4dEventKind::NonCommSlow;
    return spec;
}

const Register reg{{
    .name = "ablation_detection",
    .title = "Ablation A2: C4D localization vs fault severity",
    .description =
        "Detection / localization / latency for NIC-Rx degradations "
        "and compute stragglers of increasing severity.",
    .notes = "Mild degradations (within normal jitter) are "
             "intentionally below threshold; clear faults localize "
             "within tens of seconds (paper Section IV-B.1).",
    .fullTrials = 1,
    .smokeTrials = 1,
    .seed = 0xDE7E,
    .variants =
        [](const RunOptions &opt) {
            std::vector<ScenarioSpec> specs;
            for (double severity :
                 opt.pick(std::vector<double>{0.9, 0.7, 0.5, 0.3, 0.1},
                          std::vector<double>{0.1})) {
                specs.push_back(nicFault(opt, severity));
            }
            for (double scale :
                 opt.pick(std::vector<double>{1.05, 1.2, 1.5, 2.0, 3.0},
                          std::vector<double>{3.0})) {
                specs.push_back(straggler(opt, scale));
            }
            return specs;
        },
    .summarize = {},
}};

} // namespace
