/**
 * @file
 * Ablation A2: C4D localization accuracy and latency vs fault severity.
 *
 * For each degradation severity (how much NIC Rx bandwidth remains) and
 * for straggler slowdowns, a fault is injected into a running job and
 * we record whether C4D localizes the right node and how fast. The
 * paper claims detection in "tens of seconds" for clear faults; mild
 * degradations sit below the analyzer's thresholds by design (they are
 * within normal jitter).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/cluster.h"
#include "train/job.h"
#include "train/model.h"

using namespace c4;
using namespace c4::core;

namespace {

struct Outcome
{
    bool detected = false;
    bool correct = false;
    double latencySec = 0.0;
};

Outcome
runNicFault(const bench::Options &opt, double severity,
            std::uint64_t seed)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4d = true;
    cc.c4d.evaluatePeriod = seconds(2);
    cc.c4d.analyzer.minWaitForSlow = milliseconds(20);
    cc.steering.isolateOnSlow = false; // observe without restarts
    cc.seed = seed;
    Cluster cluster(cc);
    cluster.startRuntime();

    train::JobConfig jc;
    jc.id = 1;
    jc.model = train::llama7b();
    jc.model.microbatchCompute = milliseconds(800);
    jc.parallel = {.tp = 8, .pp = 1, .dp = 4};
    jc.initTime = seconds(5);
    jc.dpGroupsSimulated = 1;
    auto &job = cluster.addJob(jc);
    job.start();
    cluster.run(minutes(1));

    const NodeId victim = job.nodes()[1];
    for (int nic = 0; nic < 8; ++nic) {
        fault::FaultEvent ev;
        ev.type = fault::FaultType::SlowNicRx;
        ev.node = victim;
        ev.nic = nic;
        ev.severity = severity;
        cluster.faults().injectNow(ev);
    }
    const Time fault_time = cluster.sim().now();

    cluster.run(opt.pick(minutes(8), minutes(2)));
    Outcome out;
    for (const auto &ev : cluster.c4dMaster()->eventLog()) {
        if (ev.when < fault_time ||
            ev.kind != c4d::C4dEventKind::CommSlow)
            continue;
        out.detected = true;
        out.latencySec = toSeconds(ev.when - fault_time);
        for (NodeId n : ev.suspectNodes)
            out.correct |= n == victim;
        break;
    }
    return out;
}

Outcome
runStraggler(const bench::Options &opt, double compute_scale,
             std::uint64_t seed)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4d = true;
    cc.c4d.evaluatePeriod = seconds(2);
    cc.c4d.analyzer.minWaitForSlow = milliseconds(50);
    cc.steering.isolateOnSlow = false;
    cc.seed = seed;
    Cluster cluster(cc);
    cluster.startRuntime();

    train::JobConfig jc;
    jc.id = 1;
    jc.model = train::llama7b();
    jc.model.microbatchCompute = milliseconds(800);
    jc.parallel = {.tp = 8, .pp = 1, .dp = 4};
    jc.initTime = seconds(5);
    jc.dpGroupsSimulated = 1;
    auto &job = cluster.addJob(jc);
    job.start();
    cluster.run(minutes(1));

    const NodeId victim = job.nodes()[2];
    job.setNodeComputeScale(victim, compute_scale);
    const Time fault_time = cluster.sim().now();

    cluster.run(opt.pick(minutes(8), minutes(2)));
    Outcome out;
    for (const auto &ev : cluster.c4dMaster()->eventLog()) {
        if (ev.when < fault_time ||
            ev.kind != c4d::C4dEventKind::NonCommSlow)
            continue;
        out.detected = true;
        out.latencySec = toSeconds(ev.when - fault_time);
        for (NodeId n : ev.suspectNodes)
            out.correct |= n == victim;
        break;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    AsciiTable nic({"NIC Rx capacity left", "Detected", "Localized",
                    "Latency (s)"});
    const std::vector<double> severities =
        opt.pick(std::vector<double>{0.9, 0.7, 0.5, 0.3, 0.1},
                 std::vector<double>{0.1});
    for (double severity : severities) {
        const Outcome o = runNicFault(opt, severity, 0xDE7E);
        char label[16];
        std::snprintf(label, sizeof(label), "%.0f%%", severity * 100);
        nic.addRow({label, o.detected ? "yes" : "no",
                    o.correct ? "yes" : "-",
                    o.detected ? AsciiTable::num(o.latencySec, 1)
                               : "-"});
    }
    std::printf("%s\n",
                nic.str("Ablation A2a: comm-slow localization vs NIC "
                        "degradation severity")
                    .c_str());

    AsciiTable strag({"Straggler compute factor", "Detected",
                      "Localized", "Latency (s)"});
    const std::vector<double> scales =
        opt.pick(std::vector<double>{1.05, 1.2, 1.5, 2.0, 3.0},
                 std::vector<double>{3.0});
    for (double scale : scales) {
        const Outcome o = runStraggler(opt, scale, 0xDE7F);
        char label[16];
        std::snprintf(label, sizeof(label), "%.2fx", scale);
        strag.addRow({label, o.detected ? "yes" : "no",
                      o.correct ? "yes" : "-",
                      o.detected ? AsciiTable::num(o.latencySec, 1)
                                 : "-"});
    }
    std::printf("%s\n",
                strag
                    .str("Ablation A2b: non-comm-slow localization vs "
                         "straggler severity")
                    .c_str());
    std::printf("Mild degradations (within normal jitter) are "
                "intentionally below threshold;\nclear faults localize "
                "within tens of seconds (paper Section IV-B.1).\n");
    return 0;
}
