/**
 * @file
 * Scenario `fabric_recompute_ops` — deterministic cost accounting of
 * the fabric's incremental fair-share allocator.
 *
 * Every metric is a seed-stable filling-ops counter (never wall
 * clock), so the CSV is golden-checked: the full-rebuild vs
 * incremental delta — the allocator's asymptotic win — is locked in
 * byte-for-byte. Variants:
 *
 *  - full_64n / incr_64n: the same 64-node / 256-flow link-toggle
 *    loop with the incremental component search disabled/enabled.
 *    incr re-fills only the toggled trunk's component.
 *  - storm_64n / storm_coalesce_64n: a FaultInjector-driven burst of
 *    trunk failures (then staggered recoveries) without and with a
 *    re-allocation coalesce window; the window folds each burst into
 *    a single component re-fill.
 *  - incr_pod512: the link-toggle loop on a 512-node pod, where the
 *    full rebuild would scan ~10k flows per event.
 */

#include <cstdio>
#include <vector>

#include "fault/injector.h"
#include "net/fabric.h"
#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

struct OpsParams
{
    int numNodes = 64;
    int flows = 256;
    bool incremental = true;
    Duration coalesceWindow = 0;
    bool storm = false;
};

net::TopologyConfig
podTopology(int numNodes)
{
    net::TopologyConfig tc;
    tc.numNodes = numNodes;
    tc.nodesPerSegment = 4;
    return tc;
}

/** Cross-segment flow population: node i -> its pair in the far half. */
void
startFlows(net::Fabric &fabric, const OpsParams &p)
{
    const int half = p.numNodes / 2;
    std::uint32_t label = 0;
    for (int i = 0; i < p.flows; ++i) {
        net::PathRequest req;
        req.srcNode = i % half;
        req.srcNic = i % 8;
        req.dstNode = half + (i % half);
        req.dstNic = i % 8;
        req.flowLabel = ++label;
        fabric.startFlow(req, gib(100), nullptr);
    }
}

void
emitOps(TrialContext &ctx, net::Fabric &fabric)
{
    const double reallocs =
        static_cast<double>(fabric.reallocationCount());
    const double ops = static_cast<double>(fabric.recomputeOpsTotal());
    ctx.metric("reallocs", reallocs);
    ctx.metric("filling_ops_total", ops);
    ctx.metric("filling_ops_per_realloc",
               reallocs > 0.0 ? ops / reallocs : 0.0);
    ctx.metric("filling_ops_last",
               static_cast<double>(fabric.recomputeOpsLast()));
}

/** The micro_core link-toggle loop: down/query/up/query per rep. */
void
runToggleLoop(TrialContext &ctx, const OpsParams &p)
{
    net::Topology topo(podTopology(p.numNodes));
    Simulator sim;
    sim.setTracer(trace::TraceScope(ctx.tracer));
    net::FabricConfig fc;
    fc.congestionJitter = false;
    fc.incrementalRecompute = p.incremental;
    net::Fabric fabric(sim, topo, fc);

    startFlows(fabric, p);
    (void)fabric.flowRate(1); // force one consistent allocation

    const int reps = ctx.pick(50, 10);
    for (int r = 0; r < reps; ++r) {
        fabric.setLinkUp(topo.trunkUplink(0, 0), false);
        (void)fabric.linkThroughput(0);
        fabric.setLinkUp(topo.trunkUplink(0, 0), true);
        (void)fabric.linkThroughput(0);
    }
    emitOps(ctx, fabric);
}

/**
 * A fault storm: the injector fires a burst of trunk LinkDown events
 * microseconds apart (a leaf switch rebooting takes out all its
 * uplinks nearly at once), then the links heal staggered. With a
 * coalesce window >= the burst spacing, each burst costs one re-fill.
 */
void
runStorm(TrialContext &ctx, const OpsParams &p)
{
    net::Topology topo(podTopology(p.numNodes));
    Simulator sim;
    sim.setTracer(trace::TraceScope(ctx.tracer));
    net::FabricConfig fc;
    fc.congestionJitter = false;
    fc.incrementalRecompute = p.incremental;
    fc.coalesceWindow = p.coalesceWindow;
    net::Fabric fabric(sim, topo, fc);

    startFlows(fabric, p);

    fault::FaultInjector injector(sim, ctx.seed);
    injector.setApplier([&](const fault::FaultEvent &ev) {
        if (ev.type == fault::FaultType::LinkDown)
            fabric.setLinkUp(ev.link, false);
    });

    // 8 bursts; each takes down one leaf's 8 spine uplinks 10 us
    // apart, healed one second later with the same stagger.
    const int bursts = ctx.pick(8, 4);
    const int numSpines = topo.numSpines();
    for (int b = 0; b < bursts; ++b) {
        const int leaf = (b * 2) % topo.numLeaves();
        const Time t0 = seconds(1) + b * seconds(2);
        for (int s = 0; s < numSpines; ++s) {
            const LinkId id = topo.trunkUplink(leaf, s);
            fault::FaultEvent ev;
            ev.type = fault::FaultType::LinkDown;
            ev.link = id;
            injector.injectAt(t0 + s * microseconds(10), ev);
            sim.scheduleAt(t0 + seconds(1) + s * microseconds(10),
                           [&fabric, id] {
                               fabric.setLinkUp(id, true);
                           });
        }
    }
    sim.run(seconds(1) + bursts * seconds(2));
    fabric.flowRate(1); // settle the final coalesced recompute
    emitOps(ctx, fabric);
}

const Register reg{{
    .name = "fabric_recompute_ops",
    .title = "Fabric allocator cost: full rebuild vs incremental "
             "component re-fill",
    .description =
        "Deterministic filling-ops counters for Fabric::recompute "
        "under link toggles and injector-driven fault storms, with "
        "the incremental component search on/off and with a link-"
        "event coalesce window.",
    .notes = "Seed-stable by construction (no wall clock); the golden "
             "CSV locks the incremental-vs-full ops ratio. Compare "
             "filling_ops_per_realloc across full_64n/incr_64n, and "
             "reallocs across storm_64n/storm_coalesce_64n.",
    .fullTrials = 1,
    .smokeTrials = 1,
    .seed = 0xC40B5,
    .variants =
        [](const RunOptions &opt) {
            auto toggle = [](const char *label, int nodes, int flows,
                             bool incremental) {
                ScenarioSpec spec;
                spec.variant = label;
                OpsParams p;
                p.numNodes = nodes;
                p.flows = flows;
                p.incremental = incremental;
                spec.custom = [p](TrialContext &ctx) {
                    runToggleLoop(ctx, p);
                };
                return spec;
            };
            auto storm = [](const char *label, Duration window) {
                ScenarioSpec spec;
                spec.variant = label;
                OpsParams p;
                p.storm = true;
                p.coalesceWindow = window;
                spec.custom = [p](TrialContext &ctx) {
                    runStorm(ctx, p);
                };
                return spec;
            };
            (void)opt;
            return std::vector<ScenarioSpec>{
                toggle("full_64n", 64, 256, false),
                toggle("incr_64n", 64, 256, true),
                storm("storm_64n", 0),
                storm("storm_coalesce_64n", milliseconds(1)),
                toggle("incr_pod512", 512, 4096, true),
            };
        },
    .summarize =
        [](const std::vector<TrialResult> &results) {
            const auto perRealloc = variantMetricMeans(
                results, "filling_ops_per_realloc");
            const auto reallocs =
                variantMetricMeans(results, "reallocs");
            std::string out;
            const auto full = perRealloc.find("full_64n");
            const auto incr = perRealloc.find("incr_64n");
            if (full != perRealloc.end() &&
                incr != perRealloc.end() && incr->second > 0.0) {
                char buf[128];
                std::snprintf(
                    buf, sizeof(buf),
                    "incremental re-fill: %.1fx fewer filling ops "
                    "per re-allocation than a full rebuild\n",
                    full->second / incr->second);
                out += buf;
            }
            const auto imm = reallocs.find("storm_64n");
            const auto coal = reallocs.find("storm_coalesce_64n");
            if (imm != reallocs.end() && coal != reallocs.end() &&
                coal->second > 0.0) {
                char buf[128];
                std::snprintf(
                    buf, sizeof(buf),
                    "1 ms coalesce window: %.0f -> %.0f "
                    "re-allocations across the fault storms\n",
                    imm->second, coal->second);
                out += buf;
            }
            return out;
        },
}};

} // namespace
