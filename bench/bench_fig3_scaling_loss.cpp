/**
 * @file
 * Scenario `fig3_scaling_loss` — Fig. 3: actual vs ideal training
 * throughput of a GPT-22B model as the job scales from 16 to 512 GPUs.
 * The gap is caused by traffic collisions, whose extent grows with
 * scale (more ring boundaries, more ECMP draws that can land badly).
 *
 * "Ideal" is linear scaling of the smallest configuration's per-GPU
 * throughput on a collision-free (C4P) network, as in the paper.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

ScenarioSpec
atScale(const RunOptions &opt, int nodes, bool cleanNetwork)
{
    ScenarioSpec spec;
    spec.variant = cleanNetwork ? "ideal_base_n2"
                                : "n" + std::to_string(nodes);
    spec.topology.kind = TopologySpec::Kind::Pod;
    spec.topology.numNodes = std::max(4, nodes);
    spec.features.c4p = cleanNetwork; // "ideal" = collision-free paths

    JobSpec job;
    job.model = "gpt22b";
    job.parallel = {.tp = 8, .pp = 1, .dp = nodes};
    job.microBatch = 4;
    spec.jobs.push_back(job);

    spec.horizon =
        opt.pick(minutes(nodes >= 32 ? 3 : 8), seconds(40));
    return spec;
}

const Register reg{{
    .name = "fig3_scaling_loss",
    .title = "Fig. 3: GPT-22B throughput vs ideal linear scaling "
             "(ECMP baseline)",
    .description =
        "Actual vs ideal throughput of a GPT-22B job scaling from 16 "
        "to 512 GPUs; the collision-induced gap widens with scale. "
        "An extrapolated 512-node (4096-GPU) point rides along in "
        "full runs.",
    .notes = "Paper shape: the actual/ideal gap widens with scale, "
             "reaching ~70% at 512 GPUs.",
    .fullTrials = 2,
    .smokeTrials = 1,
    .seed = 0x516F,
    .variants =
        [](const RunOptions &opt) {
            std::vector<ScenarioSpec> specs;
            specs.push_back(atScale(opt, 2, /*cleanNetwork=*/true));
            const std::vector<int> nodeCounts = opt.pick(
                std::vector<int>{2, 4, 8, 16, 32, 64, 512},
                std::vector<int>{2, 4});
            for (int nodes : nodeCounts)
                specs.push_back(
                    atScale(opt, nodes, /*cleanNetwork=*/false));
            return specs;
        },
    .summarize =
        [](const std::vector<TrialResult> &results) {
            const auto means =
                variantMetricMeans(results, "samples_per_sec");
            const auto base = means.find("ideal_base_n2");
            if (base == means.end() || base->second <= 0.0)
                return std::string();
            const double perNode = base->second / 2.0;
            std::string out = "actual/ideal:";
            for (const auto &[variant, mean] : means) {
                if (variant == "ideal_base_n2")
                    continue;
                const int nodes = std::atoi(variant.c_str() + 1);
                char buf[64];
                std::snprintf(buf, sizeof(buf), " %dGPU %.0f%%",
                              nodes * 8,
                              100.0 * mean / (perNode * nodes));
                out += buf;
            }
            return out;
        },
}};

} // namespace
