/**
 * @file
 * Reproduces Fig. 3: actual vs ideal training throughput of a GPT-22B
 * model as the job scales from 16 to 512 GPUs. The gap is caused by
 * traffic collisions, whose extent grows with scale (more ring
 * boundaries, more ECMP draws that can land badly).
 *
 * "Ideal" is linear scaling of the smallest configuration's per-GPU
 * throughput, as in the paper. Paper shape: actual falls to ~70% of
 * ideal at 512 GPUs.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/cluster.h"
#include "train/job.h"
#include "train/model.h"

using namespace c4;
using namespace c4::core;
using namespace c4::train;

namespace {

double
runScale(const bench::Options &opt, int num_nodes, std::uint64_t seed,
         bool clean_network = false)
{
    ClusterConfig cc;
    cc.topology = productionPod(std::max(4, num_nodes));
    cc.enableC4p = clean_network; // "ideal" = collision-free paths
    cc.seed = seed;
    Cluster cluster(cc);

    JobConfig jc;
    jc.id = 1;
    jc.model = gpt22b();
    jc.parallel = {.tp = 8, .pp = 1, .dp = num_nodes};
    jc.microBatch = 4;
    jc.initTime = seconds(1);
    jc.dpGroupsSimulated = 2;
    auto &job = cluster.addJob(jc);
    job.start();
    cluster.run(opt.pick(minutes(num_nodes >= 32 ? 3 : 8),
                         seconds(40)));
    return job.meanSamplesPerSec();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    const std::vector<int> node_counts = opt.pick(
        std::vector<int>{2, 4, 8, 16, 32, 64}, std::vector<int>{2, 4});
    const int kTrials = opt.pick(2, 1);

    // Per-GPU ideal: linear scaling of the smallest configuration on a
    // collision-free network.
    double base_thr = 0.0;
    for (int trial = 0; trial < kTrials; ++trial)
        base_thr += runScale(opt, 2, 0x516F + 131u * trial,
                             /*clean_network=*/true);
    base_thr /= kTrials;
    const double ideal_per_node = base_thr / 2.0;

    AsciiTable t({"GPUs", "Actual (samples/s)", "Ideal (samples/s)",
                  "Actual/Ideal"});
    for (int nodes : node_counts) {
        double actual = 0.0;
        for (int trial = 0; trial < kTrials; ++trial)
            actual += runScale(opt, nodes, 0x516F + 131u * trial);
        actual /= kTrials;
        const double ideal = ideal_per_node * nodes;
        char gpus[16];
        std::snprintf(gpus, sizeof(gpus), "%d", nodes * 8);
        t.addRow({gpus, AsciiTable::num(actual, 1),
                  AsciiTable::num(ideal, 1),
                  AsciiTable::percent(actual / ideal, 1)});
    }
    std::printf("%s\n",
                t.str("Fig. 3: GPT-22B throughput vs ideal linear "
                      "scaling (ECMP baseline)")
                    .c_str());
    std::printf("Paper shape: the actual/ideal gap widens with scale, "
                "reaching ~70%% at 512 GPUs.\n");
    return 0;
}
