/**
 * @file
 * Ablation A4: topology-aware placement (paper Section III-B: "utilize
 * topology-aware scheduling techniques to ensure that the two ranks
 * needing to communicate are as close as possible").
 *
 * Two 4-node DP training jobs share the testbed under stock ECMP.
 * Packed placement keeps each job's ring under one leaf pair (spine
 * traffic: none); scattered placement round-robins nodes across
 * segments, pushing every ring boundary over the spines where the jobs
 * collide with each other. C4P recovers most of the scattered loss —
 * which is the paper's point that placement alone is "effective for
 * small-scale jobs" while larger clusters need traffic engineering.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/cluster.h"
#include "core/placement.h"
#include "train/job.h"
#include "train/model.h"

using namespace c4;
using namespace c4::core;

namespace {

struct Result
{
    double samplesPerSec = 0.0;
    int segments = 0;
};

Result
run(const bench::Options &opt, PlacementStrategy strategy, bool c4p,
    std::uint64_t seed)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4p = c4p;
    cc.seed = seed;
    Cluster cluster(cc);

    Result result;
    std::vector<train::TrainingJob *> jobs;
    for (JobId id = 1; id <= 2; ++id) {
        train::JobConfig jc;
        jc.id = id;
        jc.model = train::llama13b();
        jc.parallel = {.tp = 8, .pp = 1, .dp = 4};
        jc.microBatch = 4;
        jc.initTime = seconds(1);
        jc.dpGroupsSimulated = 2;
        jc.nodes = cluster.allocateNodes(4, strategy);
        result.segments =
            segmentsSpanned(cluster.topology(), jc.nodes);
        jobs.push_back(&cluster.addJob(jc));
    }
    for (auto *j : jobs)
        j->start();
    cluster.run(opt.pick(minutes(10), seconds(40)));
    for (auto *j : jobs)
        result.samplesPerSec += j->meanSamplesPerSec();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    const Result packed =
        run(opt, PlacementStrategy::Packed, false, 0xA41);
    const Result packed_c4p =
        run(opt, PlacementStrategy::Packed, true, 0xA41);
    const Result scattered =
        run(opt, PlacementStrategy::Scattered, false, 0xA41);
    const Result scattered_c4p =
        run(opt, PlacementStrategy::Scattered, true, 0xA41);

    AsciiTable t({"Placement", "Segments/job", "Total samples/s",
                  "vs packed"});
    t.addRow({"packed (topology-aware)",
              AsciiTable::integer(packed.segments),
              AsciiTable::num(packed.samplesPerSec, 1), "-"});
    t.addRow({"scattered, ECMP",
              AsciiTable::integer(scattered.segments),
              AsciiTable::num(scattered.samplesPerSec, 1),
              AsciiTable::percent(
                  scattered.samplesPerSec / packed.samplesPerSec - 1.0,
                  1)});
    t.addRow({"scattered, C4P",
              AsciiTable::integer(scattered_c4p.segments),
              AsciiTable::num(scattered_c4p.samplesPerSec, 1),
              AsciiTable::percent(scattered_c4p.samplesPerSec /
                                          packed.samplesPerSec -
                                      1.0,
                                  1)});
    t.addRow({"packed, C4P",
              AsciiTable::integer(packed_c4p.segments),
              AsciiTable::num(packed_c4p.samplesPerSec, 1),
              AsciiTable::percent(packed_c4p.samplesPerSec /
                                          packed.samplesPerSec -
                                      1.0,
                                  1)});
    std::printf("%s\n",
                t.str("Ablation A4: topology-aware placement vs "
                      "traffic engineering (2 DP jobs)")
                    .c_str());
    std::printf("Placement alone cannot remove the dual-port RX "
                "collisions (they are leaf-local);\nit bounds spine "
                "exposure. C4P dominates either placement — the paper's "
                "point that\ntopology-aware scheduling is necessary "
                "but not sufficient (Section III-B).\n");
    return 0;
}
