/**
 * @file
 * Scenario `ablation_placement` — Ablation A4: topology-aware
 * placement (paper Section III-B) vs traffic engineering. Two 4-node
 * DP training jobs share the testbed; packed placement keeps each
 * job's ring under one leaf pair, scattered placement round-robins
 * nodes across segments, pushing every ring boundary over the spines
 * where the jobs collide. C4P recovers most of the scattered loss.
 */

#include <string>
#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

ScenarioSpec
workload(const RunOptions &opt, core::PlacementStrategy strategy,
         bool c4p)
{
    ScenarioSpec spec;
    spec.variant =
        std::string(strategy == core::PlacementStrategy::Packed
                        ? "packed"
                        : "scattered") +
        (c4p ? "_c4p" : "_ecmp");
    spec.features.c4p = c4p;

    for (JobId id = 1; id <= 2; ++id) {
        JobSpec job;
        job.id = id;
        job.model = "llama13b";
        job.parallel = {.tp = 8, .pp = 1, .dp = 4};
        job.microBatch = 4;
        job.placement = strategy;
        spec.jobs.push_back(job);
    }
    spec.metrics.jobSegments = true;
    spec.horizon = opt.pick(minutes(10), seconds(40));
    return spec;
}

const Register reg{{
    .name = "ablation_placement",
    .title = "Ablation A4: topology-aware placement vs traffic "
             "engineering (2 DP jobs)",
    .description =
        "Two 4-node DP jobs under packed vs scattered placement, "
        "with and without C4P.",
    .notes =
        "Placement alone cannot remove the dual-port RX collisions "
        "(they are leaf-local); it bounds spine exposure. C4P "
        "dominates either placement — topology-aware scheduling is "
        "necessary but not sufficient (Section III-B).",
    .fullTrials = 1,
    .smokeTrials = 1,
    .seed = 0xA41,
    .variants =
        [](const RunOptions &opt) {
            using core::PlacementStrategy;
            return std::vector<ScenarioSpec>{
                workload(opt, PlacementStrategy::Packed, false),
                workload(opt, PlacementStrategy::Scattered, false),
                workload(opt, PlacementStrategy::Scattered, true),
                workload(opt, PlacementStrategy::Packed, true),
            };
        },
    .summarize = {},
}};

} // namespace
