/**
 * @file
 * Scenario `table3_downtime` — Table III: error-induced downtime of a
 * 2400-GPU GPT-175B job over one month, before (June 2023) and after
 * (December 2023) C4D deployment. Each trial is an independent batch
 * of Monte-Carlo months through DowntimeModel; the runner's trial
 * sweep replaces the old in-driver trial loop (and parallelizes it).
 */

#include <cctype>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "c4d/downtime.h"
#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::c4d;
using namespace c4::scenario;

constexpr int kGpus = 2400; // the paper's month-long study job

void
emitBreakdown(TrialContext &ctx, const DowntimeBreakdown &b)
{
    ctx.metric("post_checkpoint", b.postCheckpoint);
    ctx.metric("detection", b.detection);
    ctx.metric("diagnosis_total", b.diagnosisTotal());
    for (int g = 0; g < kNumCauseGroups; ++g) {
        std::string name = causeGroupName(static_cast<CauseGroup>(g));
        for (char &c : name) {
            c = c == ' ' || c == '/'
                    ? '_'
                    : static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c)));
        }
        ctx.metric("diag_" + name,
                   b.diagnosisByCause[static_cast<std::size_t>(g)]);
    }
    ctx.metric("reinit", b.reinit);
    ctx.metric("total", b.total());
    ctx.metric("events_per_month", b.totalEvents());
}

void
runRegime(TrialContext &ctx, bool december)
{
    DowntimeModel model(
        december ? RecoveryPolicy::december2023()
                 : RecoveryPolicy::june2023(),
        december ? fault::FaultRates::paperDecember2023()
                 : fault::FaultRates::paperJune2023(),
        kGpus, days(30), ctx.seed);
    emitBreakdown(ctx, model.run(ctx.pick(32, 4)));
}

const Register reg{{
    .name = "table3_downtime",
    .title = "Table III: error-induced downtime, Jun 2023 (pre-C4D) "
             "vs Dec 2023 (C4D)",
    .description =
        "Monte-Carlo months of a 2400-GPU job under the June-2023 and "
        "December-2023 recovery regimes; downtime fractions by "
        "component.",
    .notes = "Paper totals: 31.19% (Jun) vs 1.16% (Dec) — a 26.9x "
             "reduction.",
    .fullTrials = 8,
    .smokeTrials = 2,
    .seed = 0x7AB1E3,
    .variants =
        [](const RunOptions &) {
            ScenarioSpec june;
            june.variant = "june2023";
            june.custom = [](TrialContext &ctx) {
                runRegime(ctx, false);
            };
            ScenarioSpec dec;
            dec.variant = "december2023";
            dec.custom = [](TrialContext &ctx) {
                runRegime(ctx, true);
            };
            return std::vector<ScenarioSpec>{june, dec};
        },
    .summarize =
        [](const std::vector<TrialResult> &results) {
            const auto totals = variantMetricMeans(results, "total");
            auto mean = [&](const char *v) {
                auto it = totals.find(v);
                return it == totals.end() ? 0.0 : it->second;
            };
            const double june = mean("june2023");
            const double dec = mean("december2023");
            if (dec <= 0.0)
                return std::string();
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "downtime reduction: %.1fx (paper: %.1fx)",
                          june / dec, 0.3119 / 0.0116);
            return std::string(buf);
        },
}};

} // namespace
