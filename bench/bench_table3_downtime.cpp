/**
 * @file
 * Reproduces Table III: error-induced downtime of a 2400-GPU GPT-175B
 * job over one month, before (June 2023) and after (December 2023) C4D
 * deployment. A Monte-Carlo month is run under each recovery policy;
 * the table prints our measured fractions next to the paper's.
 */

#include <cstdio>

#include "bench_util.h"
#include "c4d/downtime.h"
#include "common/table.h"
#include "common/types.h"

using namespace c4;
using namespace c4::c4d;

namespace {

struct PaperColumn
{
    double postCkpt, detection, diagTotal;
    double diag[kNumCauseGroups]; // Ecc/NVLink, Cuda, Ccl, Ack, Unknown
    double reinit, total;
};

constexpr PaperColumn kPaperJune = {
    0.0753, 0.0341, 0.1965, {0.0834, 0.0419, 0.03, 0.018, 0.0229},
    0.006, 0.3119};
constexpr PaperColumn kPaperDec = {
    0.0023, 0.0005, 0.0073, {0.002, 0.001, 0.0023, 0.001, 0.001},
    0.0015, 0.0116};

void
printColumn(const char *title, const DowntimeBreakdown &b,
            const PaperColumn &paper)
{
    AsciiTable t({"Component", "Measured", "Paper"});
    t.addRow({"Post-Checkpoint", AsciiTable::percent(b.postCheckpoint),
              AsciiTable::percent(paper.postCkpt)});
    t.addRow({"Detection", AsciiTable::percent(b.detection),
              AsciiTable::percent(paper.detection)});
    t.addRow({"Diagnosis & Isolation",
              AsciiTable::percent(b.diagnosisTotal()),
              AsciiTable::percent(paper.diagTotal)});
    for (int g = 0; g < kNumCauseGroups; ++g) {
        t.addRow({std::string("  ") +
                      causeGroupName(static_cast<CauseGroup>(g)),
                  AsciiTable::percent(b.diagnosisByCause[g]),
                  AsciiTable::percent(paper.diag[g])});
    }
    t.addRow({"Re-Initialization", AsciiTable::percent(b.reinit),
              AsciiTable::percent(paper.reinit)});
    t.addRule();
    t.addRow({"Total", AsciiTable::percent(b.total()),
              AsciiTable::percent(paper.total)});
    std::printf("%s\n", t.str(title).c_str());
    std::printf("  crash events/month (mean): %.1f\n\n",
                b.totalEvents());
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    constexpr int kGpus = 2400; // the paper's month-long study job
    const int kTrials = opt.pick(256, 8);

    DowntimeModel june(RecoveryPolicy::june2023(),
                       fault::FaultRates::paperJune2023(), kGpus,
                       days(30), /*seed=*/0x7AB1E3);
    const DowntimeBreakdown jb = june.run(kTrials);
    printColumn("Table III (a): Error-induced downtime, Jun 2023 "
                "(pre-C4D)",
                jb, kPaperJune);

    DowntimeModel dec(RecoveryPolicy::december2023(),
                      fault::FaultRates::paperDecember2023(), kGpus,
                      days(30), /*seed=*/0x7AB1E4);
    const DowntimeBreakdown db = dec.run(kTrials);
    printColumn("Table III (b): Error-induced downtime, Dec 2023 "
                "(C4D deployed)",
                db, kPaperDec);

    std::printf("Downtime reduction: %.1fx (paper: %.1fx)\n",
                jb.total() / db.total(), 0.3119 / 0.0116);
    return 0;
}
