/**
 * @file
 * Scenario `fig10_multijob` — Fig. 10: eight concurrent 2-server
 * allreduce jobs placed across distinct leaf groups, baseline ECMP vs
 * C4P global traffic engineering, in (a) a 1:1 and (b) a 2:1
 * oversubscribed fat-tree.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

ScenarioSpec
workload(const RunOptions &opt, double oversub, bool c4p)
{
    ScenarioSpec spec;
    spec.variant = std::string(oversub > 1.0 ? "2to1_" : "1to1_") +
                   (c4p ? "c4p" : "ecmp");
    spec.topology.oversubscription = oversub;
    spec.features.c4p = c4p;

    AllreduceGroupSpec g;
    g.tasks = 8;
    g.placement = AllreduceGroupSpec::Placement::CrossSegmentPairs;
    g.bytes = mib(256);
    g.iterations = opt.pick(40, 4);
    spec.allreduces.push_back(g);
    return spec;
}

const Register reg{{
    .name = "fig10_multijob",
    .title = "Fig. 10: 8 concurrent allreduce jobs, ECMP vs C4P "
             "global TE",
    .description =
        "Eight 2-server cross-leaf allreduce tenants at 1:1 and 2:1 "
        "oversubscription, baseline ECMP vs C4P path allocation.",
    .notes =
        "Paper shape: (a) 1:1 baseline 171.93-263.27 Gbps, C4P "
        "353.86-360.57 (+70.3%); (b) 2:1 C4P spread 11.27 Gbps "
        "(+65.55%).",
    .fullTrials = 1,
    .smokeTrials = 1,
    .seed = 0xF16A01,
    .variants =
        [](const RunOptions &opt) {
            return std::vector<ScenarioSpec>{
                workload(opt, 1.0, false),
                workload(opt, 1.0, true),
                workload(opt, 2.0, false),
                workload(opt, 2.0, true),
            };
        },
    .summarize =
        [](const std::vector<TrialResult> &results) {
            // Mean busbw per variant -> improvement per oversub level.
            const auto means =
                variantMetricMeans(results, "busbw_mean");
            auto mean = [&](const std::string &v) {
                auto it = means.find(v);
                return it == means.end() ? 0.0 : it->second;
            };
            std::string out;
            for (const char *level : {"1to1", "2to1"}) {
                const double base =
                    mean(std::string(level) + "_ecmp");
                const double c4p = mean(std::string(level) + "_c4p");
                if (base <= 0.0)
                    continue;
                char buf[96];
                std::snprintf(buf, sizeof(buf),
                              "%s improvement: %+.1f%%\n", level,
                              (c4p / base - 1.0) * 100.0);
                out += buf;
            }
            if (!out.empty())
                out.pop_back();
            return out;
        },
}};

} // namespace
