/**
 * @file
 * Reproduces Fig. 10: eight concurrent 2-server allreduce jobs placed
 * across distinct leaf groups, baseline ECMP vs C4P global traffic
 * engineering, in (a) a 1:1 and (b) a 2:1 oversubscribed fat-tree.
 *
 * Paper shape:
 *   (a) baseline 171.93-263.27 Gbps; C4P 353.86-360.57 (+70.3%)
 *   (b) baseline spread; C4P within 11.27 Gbps, +65.55%
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/cluster.h"
#include "core/experiment.h"

using namespace c4;
using namespace c4::core;

namespace {

std::vector<double>
runTasks(const bench::Options &opt, double oversub, bool c4p,
         std::uint64_t seed)
{
    ClusterConfig cc;
    cc.topology = paperTestbed(oversub);
    cc.enableC4p = c4p;
    cc.seed = seed;
    Cluster cluster(cc);

    const auto placements = crossSegmentPairs(cluster.topology(), 8);
    std::vector<std::unique_ptr<AllreduceTask>> tasks;
    for (std::size_t i = 0; i < placements.size(); ++i) {
        AllreduceTaskConfig tc;
        tc.job = static_cast<JobId>(i + 1);
        tc.nodes = placements[i];
        tc.bytes = mib(256);
        tc.iterations = opt.pick(40, 4);
        tasks.push_back(std::make_unique<AllreduceTask>(cluster, tc));
    }
    for (auto &t : tasks)
        t->start();
    cluster.run();

    std::vector<double> means;
    for (auto &t : tasks)
        means.push_back(t->busBwGbps().mean());
    return means;
}

void
runOne(const bench::Options &opt, double oversub, const char *title,
       const char *paper_base, const char *paper_c4p)
{
    const auto base = runTasks(opt, oversub, false, 0xF16A01);
    const auto c4p = runTasks(opt, oversub, true, 0xF16A01);

    AsciiTable t({"Task", "Baseline (Gbps)", "C4P-GTE (Gbps)"});
    double base_total = 0, c4p_total = 0;
    double base_min = 1e18, base_max = 0, c4p_min = 1e18, c4p_max = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "Task%zu", i + 1);
        t.addRow({name, AsciiTable::num(base[i]),
                  AsciiTable::num(c4p[i])});
        base_total += base[i];
        c4p_total += c4p[i];
        base_min = std::min(base_min, base[i]);
        base_max = std::max(base_max, base[i]);
        c4p_min = std::min(c4p_min, c4p[i]);
        c4p_max = std::max(c4p_max, c4p[i]);
    }
    t.addRule();
    t.addRow({"mean", AsciiTable::num(base_total / 8.0),
              AsciiTable::num(c4p_total / 8.0)});
    std::printf("%s\n", t.str(title).c_str());
    std::printf("  baseline range: %.2f - %.2f Gbps (paper: %s)\n",
                base_min, base_max, paper_base);
    std::printf("  C4P range     : %.2f - %.2f Gbps, spread %.2f "
                "(paper: %s)\n",
                c4p_min, c4p_max, c4p_max - c4p_min, paper_c4p);
    std::printf("  throughput improvement: %.1f%%\n\n",
                (c4p_total / base_total - 1.0) * 100.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    runOne(opt, 1.0,
           "Fig. 10a: 8 concurrent allreduce jobs, 1:1 oversubscription",
           "171.93 - 263.27", "353.86 - 360.57 (+70.3%)");
    runOne(opt, 2.0,
           "Fig. 10b: 8 concurrent allreduce jobs, 2:1 oversubscription",
           "(degraded, wide spread)", "spread 11.27 Gbps (+65.55%)");
    return 0;
}
