/**
 * @file
 * Shared driver plumbing for the paper-figure benches. Every driver
 * accepts `--smoke`: a seconds-scale run that exercises the full code
 * path with slashed trial counts, iteration budgets, and simulated
 * horizons. CTest registers each driver with `--smoke` under the
 * `bench-smoke` label (ctest -L bench-smoke) so the figure code cannot
 * silently rot. Numbers printed in smoke mode are NOT
 * paper-comparable.
 */

#ifndef C4_BENCH_BENCH_UTIL_H
#define C4_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace c4::bench {

struct Options
{
    bool smoke = false;

    /** The full-fidelity value, or the slashed one in smoke mode. */
    template <typename T>
    T
    pick(T full, T tiny) const
    {
        return smoke ? tiny : full;
    }
};

inline Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opt.smoke = true;
        } else {
            std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
            std::exit(2);
        }
    }
    if (opt.smoke)
        std::printf("[smoke] reduced trials/iterations/horizons; "
                    "numbers are not paper-comparable\n");
    return opt;
}

} // namespace c4::bench

#endif // C4_BENCH_BENCH_UTIL_H
