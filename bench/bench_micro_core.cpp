/**
 * @file
 * Scenario `micro_core` — microbenchmarks for the simulator's hot
 * kernels: event-queue throughput, max-min fair re-allocation,
 * delay-matrix analysis, and end-to-end allreduce simulation cost.
 * These bound how large an experiment the harness can sweep.
 *
 * Unlike every other scenario, the metrics are wall-clock timings
 * (items/s), so they are inherently machine- and run-dependent — the
 * one scenario whose CSV is not expected to be reproducible.
 */

#include <chrono>
#include <vector>

#include "accl/accl.h"
#include "c4d/analyzer.h"
#include "core/cluster.h"
#include "net/fabric.h"
#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

using Clock = std::chrono::steady_clock;

/** Time `reps` invocations of `fn(rep)`; emits ms/op and items/s. */
template <typename Fn>
void
timeKernel(TrialContext &ctx, int reps, double itemsPerRep, Fn fn)
{
    const auto start = Clock::now();
    for (int r = 0; r < reps; ++r)
        fn(r);
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    ctx.metric("ms_per_op", secs * 1e3 / reps);
    ctx.metric("items_per_sec",
               secs > 0.0 ? itemsPerRep * reps / secs : 0.0);
}

void
eventQueue(TrialContext &ctx)
{
    const std::size_t n = 100000;
    timeKernel(ctx, ctx.pick(10, 1), static_cast<double>(n),
               [n](int) {
                   Simulator sim;
                   for (std::size_t i = 0; i < n; ++i)
                       sim.scheduleAt(
                           static_cast<Time>(i * 7 % 1000), [] {});
                   sim.run();
               });
}

void
fabricReallocation(TrialContext &ctx)
{
    const int flows = 256;
    net::TopologyConfig tc;
    tc.numNodes = 64;
    tc.nodesPerSegment = 4;
    net::Topology topo(tc);
    Simulator sim;
    net::FabricConfig fc;
    fc.congestionJitter = false;
    net::Fabric fabric(sim, topo, fc);

    std::uint32_t label = 0;
    for (int i = 0; i < flows; ++i) {
        net::PathRequest req;
        req.srcNode = i % 32;
        req.srcNic = i % 8;
        req.dstNode = 32 + (i % 32);
        req.dstNic = i % 8;
        req.flowLabel = ++label;
        fabric.startFlow(req, gib(100), nullptr);
    }
    // Force one consistent allocation first.
    (void)fabric.flowRate(1);

    // Toggling a link forces rerouting + full re-allocation.
    timeKernel(ctx, ctx.pick(200, 10), 2.0 * flows,
               [&fabric, &topo](int) {
                   fabric.setLinkUp(topo.trunkUplink(0, 0), false);
                   (void)fabric.linkThroughput(0);
                   fabric.setLinkUp(topo.trunkUplink(0, 0), true);
                   (void)fabric.linkThroughput(0);
               });
}

/**
 * Deterministic cost counters for Fabric::recompute under a 64-node
 * pod — the seed of the ROADMAP's Fig. 3 profiling item. Unlike the
 * wall-clock variants, these metrics are seed-stable: the filling-ops
 * counter measures algorithmic work, not machine speed, so a fair-
 * share-allocator change shows up as an exact ops delta. The same
 * numbers flow out as recompute_begin/recompute_end trace events when
 * a recorder is attached (`c4bench micro_core --trace DIR`).
 */
void
fabricRecomputeOps(TrialContext &ctx)
{
    const int flows = 256;
    net::TopologyConfig tc;
    tc.numNodes = 64;
    tc.nodesPerSegment = 4;
    net::Topology topo(tc);
    Simulator sim;
    sim.setTracer(trace::TraceScope(ctx.tracer));
    net::FabricConfig fc;
    fc.congestionJitter = false;
    net::Fabric fabric(sim, topo, fc);

    std::uint32_t label = 0;
    for (int i = 0; i < flows; ++i) {
        net::PathRequest req;
        req.srcNode = i % 32;
        req.srcNic = i % 8;
        req.dstNode = 32 + (i % 32);
        req.dstNic = i % 8;
        req.flowLabel = ++label;
        fabric.startFlow(req, gib(100), nullptr);
    }
    (void)fabric.flowRate(1); // force one consistent allocation

    const int reps = ctx.pick(200, 10);
    for (int r = 0; r < reps; ++r) {
        fabric.setLinkUp(topo.trunkUplink(0, 0), false);
        (void)fabric.linkThroughput(0);
        fabric.setLinkUp(topo.trunkUplink(0, 0), true);
        (void)fabric.linkThroughput(0);
    }
    const double reallocs =
        static_cast<double>(fabric.reallocationCount());
    const double ops = static_cast<double>(fabric.recomputeOpsTotal());
    ctx.metric("reallocs", reallocs);
    ctx.metric("filling_ops_total", ops);
    ctx.metric("filling_ops_per_realloc",
               reallocs > 0.0 ? ops / reallocs : 0.0);
    ctx.metric("filling_ops_last",
               static_cast<double>(fabric.recomputeOpsLast()));
}

void
delayMatrix(TrialContext &ctx)
{
    const int n = 64;
    std::vector<accl::ConnRecord> records;
    for (int rep = 0; rep < 8; ++rep) {
        for (Rank s = 0; s < n; ++s) {
            accl::ConnRecord r;
            r.srcRank = s;
            r.dstRank = (s + 1) % n;
            r.bytes = mib(8);
            r.startTime = 0;
            r.endTime = milliseconds(1 + s % 3);
            records.push_back(r);
        }
    }
    timeKernel(ctx, ctx.pick(500, 20),
               static_cast<double>(records.size()),
               [n, &records](int) {
                   const auto matrix =
                       c4d::DelayMatrix::build(n, records);
                   const auto finding = c4d::analyzeCommSlow(matrix);
                   (void)finding;
               });
}

void
allreduceSimulation(TrialContext &ctx)
{
    const int nodes = 16;
    timeKernel(ctx, ctx.pick(4, 1), 10.0, [nodes](int) {
        core::ClusterConfig cc;
        cc.topology = core::productionPod(nodes);
        cc.enableC4p = true;
        core::Cluster cluster(cc);
        std::vector<accl::DeviceInfo> devices;
        for (NodeId n = 0; n < nodes; ++n)
            for (int g = 0; g < 8; ++g)
                devices.push_back({n, static_cast<GpuId>(g),
                                   static_cast<NicId>(g)});
        const CommId comm =
            cluster.accl().createCommunicator(1, std::move(devices));
        int done = 0;
        for (int i = 0; i < 10; ++i) {
            cluster.accl().postCollective(
                comm, accl::CollOp::AllReduce, mib(256),
                [&](const accl::CollectiveResult &) { ++done; });
        }
        cluster.run();
        (void)done;
    });
}

const Register reg{{
    .name = "micro_core",
    .title = "Microbenchmarks: simulator hot kernels (wall clock)",
    .description =
        "Event-queue throughput, fabric re-allocation (wall clock and "
        "deterministic filling-ops counters), delay-matrix analysis, "
        "and end-to-end allreduce simulation cost.",
    .notes = "Wall-clock timings are machine-dependent by nature; "
             "fabric_recompute_ops_64n is seed-stable.",
    .fullTrials = 1,
    .smokeTrials = 1,
    .serialTrials = true, // wall-clock timings: no concurrent trials
    .seed = 0xC4C10C4D,
    .variants =
        [](const RunOptions &) {
            auto make = [](const char *label,
                           void (*fn)(TrialContext &)) {
                ScenarioSpec spec;
                spec.variant = label;
                spec.custom = fn;
                return spec;
            };
            return std::vector<ScenarioSpec>{
                make("event_queue_100k", eventQueue),
                make("fabric_realloc_256f", fabricReallocation),
                make("fabric_recompute_ops_64n", fabricRecomputeOps),
                make("delay_matrix_64r", delayMatrix),
                make("allreduce_sim_16n", allreduceSimulation),
            };
        },
    .summarize = {},
}};

} // namespace
