/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot kernels:
 * event-queue throughput, max-min fair re-allocation, delay-matrix
 * analysis, and end-to-end allreduce simulation cost. These bound how
 * large an experiment the harness can sweep.
 */

#include <benchmark/benchmark.h>

#include "accl/accl.h"
#include "c4d/analyzer.h"
#include "core/cluster.h"
#include "net/fabric.h"

using namespace c4;

namespace {

void
BM_EventQueue(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        for (std::size_t i = 0; i < n; ++i)
            sim.scheduleAt(static_cast<Time>(i * 7 % 1000), [] {});
        sim.run();
        benchmark::DoNotOptimize(sim.executedCount());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(10000)->Arg(100000);

void
BM_FabricReallocation(benchmark::State &state)
{
    const int flows = static_cast<int>(state.range(0));
    net::TopologyConfig tc;
    tc.numNodes = 64;
    tc.nodesPerSegment = 4;
    net::Topology topo(tc);
    Simulator sim;
    net::FabricConfig fc;
    fc.congestionJitter = false;
    net::Fabric fabric(sim, topo, fc);

    std::uint32_t label = 0;
    for (int i = 0; i < flows; ++i) {
        net::PathRequest req;
        req.srcNode = i % 32;
        req.srcNic = i % 8;
        req.dstNode = 32 + (i % 32);
        req.dstNic = i % 8;
        req.flowLabel = ++label;
        fabric.startFlow(req, gib(100), nullptr);
    }
    // Force one consistent allocation first.
    benchmark::DoNotOptimize(fabric.flowRate(1));

    for (auto _ : state) {
        // Toggling a link forces rerouting + full re-allocation.
        fabric.setLinkUp(topo.trunkUplink(0, 0), false);
        benchmark::DoNotOptimize(fabric.linkThroughput(0));
        fabric.setLinkUp(topo.trunkUplink(0, 0), true);
        benchmark::DoNotOptimize(fabric.linkThroughput(0));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2 * flows);
}
BENCHMARK(BM_FabricReallocation)->Arg(64)->Arg(256)->Arg(1024);

void
BM_DelayMatrixAnalysis(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    std::vector<accl::ConnRecord> records;
    for (int rep = 0; rep < 8; ++rep) {
        for (Rank s = 0; s < n; ++s) {
            accl::ConnRecord r;
            r.srcRank = s;
            r.dstRank = (s + 1) % n;
            r.bytes = mib(8);
            r.startTime = 0;
            r.endTime = milliseconds(1 + s % 3);
            records.push_back(r);
        }
    }
    for (auto _ : state) {
        const auto matrix = c4d::DelayMatrix::build(n, records);
        const auto finding = c4d::analyzeCommSlow(matrix);
        benchmark::DoNotOptimize(finding.kind);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_DelayMatrixAnalysis)->Arg(16)->Arg(64)->Arg(256);

void
BM_AllreduceSimulation(benchmark::State &state)
{
    const int nodes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        core::ClusterConfig cc;
        cc.topology = core::productionPod(nodes);
        cc.enableC4p = true;
        core::Cluster cluster(cc);
        std::vector<accl::DeviceInfo> devices;
        for (NodeId n = 0; n < nodes; ++n)
            for (int g = 0; g < 8; ++g)
                devices.push_back({n, static_cast<GpuId>(g),
                                   static_cast<NicId>(g)});
        const CommId comm =
            cluster.accl().createCommunicator(1, std::move(devices));
        int done = 0;
        for (int i = 0; i < 10; ++i) {
            cluster.accl().postCollective(
                comm, accl::CollOp::AllReduce, mib(256),
                [&](const accl::CollectiveResult &) { ++done; });
        }
        cluster.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_AllreduceSimulation)->Arg(4)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
