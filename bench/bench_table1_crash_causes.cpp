/**
 * @file
 * Scenario `table1_crash_causes` — Table I: the distribution of crash
 * causes recorded over one month for a representative 4096-GPU job.
 *
 * A Poisson fault campaign runs against a 512-node population at the
 * paper's calibrated June-2023 rates; each crash is classified by what
 * the *user* sees (almost always "NCCL Error") and whether the root
 * cause was confined to a node/device. This scenario needs no cluster
 * — only the sampled event stream — so it installs a custom executor.
 */

#include <iterator>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "scenario/registry.h"
#include "sim/simulator.h"

namespace {

using namespace c4;
using namespace c4::fault;
using namespace c4::scenario;

struct Group
{
    const char *metric; ///< metric-name stem
    const char *paper;  ///< paper proportion / locality
    bool (*matches)(FaultType);
};

const Group kGroups[] = {
    {"cuda", "12.5% / 100%",
     [](FaultType t) { return t == FaultType::CudaError; }},
    {"ecc_nvlink", "27.5% / 100%",
     [](FaultType t) {
         return t == FaultType::EccError ||
                t == FaultType::NvlinkError;
     }},
    {"nccl_timeout", "20% / 75%",
     [](FaultType t) { return t == FaultType::NcclTimeout; }},
    {"ack_timeout", "27.5% / 81.8%",
     [](FaultType t) { return t == FaultType::AckTimeout; }},
    {"network_other", "12.5% / 40%",
     [](FaultType t) { return t == FaultType::NetworkOther; }},
};

void
runTrial(TrialContext &ctx)
{
    constexpr int kNodes = 512; // 4096 GPUs
    // Aggregate several months for stability (one in smoke mode).
    const int months = ctx.pick(12, 1);

    Simulator sim;
    FaultInjector injector(sim, ctx.seed);

    std::vector<NodeId> nodes;
    for (NodeId n = 0; n < kNodes; ++n)
        nodes.push_back(n);
    injector.startCampaign(FaultRates::paperJune2023(), nodes,
                           /*nicsPerNode=*/8, /*gpusPerNode=*/8,
                           /*numTrunks=*/0, days(30.0 * months));
    sim.run();

    int crashes = 0;
    int counts[std::size(kGroups)] = {};
    int local[std::size(kGroups)] = {};
    for (const FaultEvent &ev : injector.history()) {
        if (!faultIsFatal(ev.type) &&
            ev.type != FaultType::NetworkOther) {
            continue;
        }
        for (std::size_t g = 0; g < std::size(kGroups); ++g) {
            if (kGroups[g].matches(ev.type)) {
                ++counts[g];
                local[g] += ev.isLocal ? 1 : 0;
            }
        }
        ++crashes;
    }

    for (std::size_t g = 0; g < std::size(kGroups); ++g) {
        const std::string stem = kGroups[g].metric;
        ctx.metric("p_" + stem,
                   crashes > 0 ? static_cast<double>(counts[g]) /
                                     crashes
                               : 0.0);
        ctx.metric("local_" + stem,
                   counts[g] > 0 ? static_cast<double>(local[g]) /
                                       counts[g]
                                 : 0.0);
    }
    ctx.metric("crashes_per_month",
               static_cast<double>(crashes) / months);
}

const Register reg{{
    .name = "table1_crash_causes",
    .title = "Table I: crash-cause distribution (4096 GPUs, "
             "simulated months)",
    .description =
        "Poisson fault campaign at the June-2023 rates over 512 "
        "nodes; crashes classified by user-visible error and root "
        "cause.",
    .notes = "Paper: CUDA 12.5%/100% local, ECC/NVLink 27.5%/100%, "
             "NCCL timeout 20%/75%, ACK timeout 27.5%/81.8%, other "
             "network 12.5%/40%; ~40 crashes per month.",
    .fullTrials = 1,
    .smokeTrials = 1,
    .seed = 20240406,
    .variants =
        [](const RunOptions &) {
            ScenarioSpec spec;
            spec.variant = "june2023";
            spec.custom = runTrial;
            return std::vector<ScenarioSpec>{spec};
        },
    .summarize = {},
}};

} // namespace
