/**
 * @file
 * Reproduces Table I: the distribution of crash causes recorded over one
 * month for a representative 4096-GPU job.
 *
 * A Poisson fault campaign runs against a 512-node population at the
 * paper's calibrated June-2023 rates; each crash is classified by what
 * the *user* sees (almost always "NCCL Error") and whether the root
 * cause was confined to a node/device. Paper reference values:
 *
 *   NCCL Error / CUDA Error        12.5%  (100% local)
 *   NCCL Error / ECC-NVLink Error  27.5%  (100% local)
 *   NCCL Error / NCCL timeout      20.0%  ( 75% local)
 *   NCCL Error / ACK timeout       27.5%  (81.8% local)
 *   Network Error / Others         12.5%  ( 40% local)
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "common/types.h"
#include "fault/injector.h"
#include "sim/simulator.h"

using namespace c4;
using namespace c4::fault;

namespace {

/** Table I groups fault categories by their user-visible label. */
std::string
rootCauseLabel(FaultType t)
{
    switch (t) {
      case FaultType::CudaError:    return "CUDA Error";
      case FaultType::EccError:
      case FaultType::NvlinkError:  return "ECC/NVLink Error";
      case FaultType::NcclTimeout:  return "NCCL timeout";
      case FaultType::AckTimeout:   return "ACK timeout";
      case FaultType::NetworkOther: return "Others";
      default:                      return "(non-crash)";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    constexpr int kNodes = 512; // 4096 GPUs
    // Aggregate several months for stability (one in smoke mode).
    const int kMonths = opt.pick(12, 1);

    Simulator sim;
    FaultInjector injector(sim, /*seed=*/20240406);

    std::vector<NodeId> nodes;
    for (NodeId n = 0; n < kNodes; ++n)
        nodes.push_back(n);

    injector.startCampaign(FaultRates::paperJune2023(), nodes,
                           /*nicsPerNode=*/8, /*gpusPerNode=*/8,
                           /*numTrunks=*/0, days(30.0 * kMonths));
    sim.run();

    struct Row
    {
        int count = 0;
        int local = 0;
    };
    std::map<std::string, Row> rows;
    int crashes = 0;
    for (const FaultEvent &ev : injector.history()) {
        if (!faultIsFatal(ev.type) && ev.type != FaultType::NetworkOther)
            continue;
        Row &row = rows[std::string(userVisibleError(ev.type)) + "|" +
                        rootCauseLabel(ev.type)];
        ++row.count;
        row.local += ev.isLocal ? 1 : 0;
        ++crashes;
    }

    AsciiTable table({"Users' View", "Root Causes", "Proportion",
                      "Local", "Paper: Proportion / Local"});
    const std::map<std::string, std::string> paper = {
        {"NCCL Error|CUDA Error", "12.5% / 100%"},
        {"NCCL Error|ECC/NVLink Error", "27.5% / 100%"},
        {"NCCL Error|NCCL timeout", "20% / 75%"},
        {"NCCL Error|ACK timeout", "27.5% / 81.8%"},
        {"Network Error|Others", "12.5% / 40%"},
    };
    for (const auto &[key, row] : rows) {
        const auto bar = key.find('|');
        const auto paper_it = paper.find(key);
        table.addRow({
            key.substr(0, bar),
            key.substr(bar + 1),
            AsciiTable::percent(static_cast<double>(row.count) / crashes,
                                1),
            AsciiTable::percent(
                row.count > 0
                    ? static_cast<double>(row.local) / row.count
                    : 0.0,
                1),
            paper_it != paper.end() ? paper_it->second : "-",
        });
    }
    std::printf("%s\n",
                table
                    .str("Table I: crash-cause distribution "
                         "(4096 GPUs, " +
                         std::to_string(kMonths) +
                         " simulated months, " +
                         std::to_string(crashes) + " crashes)")
                    .c_str());

    const double per_month =
        static_cast<double>(crashes) / kMonths;
    std::printf("Crash rate: %.1f per month (paper: 40 per month)\n",
                per_month);
    return 0;
}
