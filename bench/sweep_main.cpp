/**
 * @file
 * c4sweep — the distributed-sweep driver over the scenario engine.
 *
 *   c4sweep plan --out DIR [opts] <scenario|spec.json>...
 *       split each target's trial sweep into per-shard spec files
 *       plus a journaled manifest (the work-item list)
 *   c4sweep run DIR [--bench PATH] [--workers N] [--retries N]
 *       execute pending shards as child `c4bench --spec ... --csv -`
 *       processes; finished shards are never re-run (resume)
 *   c4sweep merge DIR [--csv FILE]
 *       stitch the shard CSVs into output byte-identical to a
 *       single-process `c4bench --threads 1 --csv` run
 *   c4sweep status DIR [--watch]
 *       show the campaign journal, or keep polling it as a live
 *       dashboard (shard states, retry budget burned, forensics
 *       bundles, and — for `run --metrics` campaigns — per-scenario
 *       throughput pulled from the shard metric snapshots)
 *   c4sweep collect DIR HOST_DIR... [--report]
 *       pull shard results back from per-host campaign copies and
 *       reconcile the journals (`done` beats `pending`/`failed`;
 *       divergent `done` CSVs are a hard error), so `merge` then
 *       produces the byte-identical single-process CSV
 *   c4sweep forensics DIR
 *       score every failure bundle's trace through the offline
 *       incident analyzer and print the verdicts
 *
 * The same scenario registrations as c4bench are linked in, so `plan`
 * can shard any built-in scenario as well as spec files from disk.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/cli.h"
#include "sweep/collect.h"
#include "sweep/exec.h"
#include "sweep/forensics.h"
#include "sweep/manifest.h"
#include "sweep/merge.h"
#include "sweep/plan.h"
#include "sweep/watch.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s plan --out DIR [--shards N | --trials-per-shard N]\n"
        "               [--smoke] [--trials N] [--seed S]\n"
        "               <scenario|spec.json>...\n"
        "       %s run DIR [--bench PATH] [--workers N]\n"
        "               [--retries N] [--max-shards N] [--metrics]\n"
        "               [--no-forensics]\n"
        "               [--only id1,id2]   (shard ids from `status`;\n"
        "               unknown ids are an error — hand each host a\n"
        "               disjoint --only set for multi-host campaigns)\n"
        "       %s merge DIR [--csv FILE]   (FILE '-' = stdout)\n"
        "       %s status DIR [--watch] [--interval S] [--max-ticks N]\n"
        "       %s collect DIR HOST_DIR... [--only id1,id2] [--report]\n"
        "       %s forensics DIR\n"
        "\n"
        "A campaign directory holds shards/*.json (one spec file per\n"
        "trial-range shard), csv/ and logs/ (per-shard results),\n"
        "manifest.json (the journal `run` resumes from), and — after\n"
        "a shard exhausts its attempt budget — forensics/<shard.id>/\n"
        "failure bundles (`run` re-runs the shard once with --trace\n"
        "and --metrics; `collect --report` or `forensics` scores the\n"
        "bundled traces through the offline incident analyzer).\n",
        argv0, argv0, argv0, argv0, argv0, argv0);
}

// Value grammar shared with c4bench (scenario/cli.h), so a --trials
// or --seed copied between the two command lines means the same run.
using c4::scenario::parseCliInt;
using c4::scenario::parseCliSeed;

int
mainPlan(int argc, char **argv, const char *argv0)
{
    c4::sweep::PlanRequest request;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--out") {
            const char *v = value();
            if (!v) {
                usage(argv0);
                return 2;
            }
            request.dir = v;
        } else if (arg == "--shards") {
            const char *v = value();
            if (!v || !parseCliInt(v, request.shards)) {
                usage(argv0);
                return 2;
            }
        } else if (arg == "--trials-per-shard") {
            const char *v = value();
            if (!v || !parseCliInt(v, request.trialsPerShard)) {
                usage(argv0);
                return 2;
            }
        } else if (arg == "--smoke") {
            request.opt.smoke = true;
        } else if (arg == "--trials") {
            const char *v = value();
            if (!v || !parseCliInt(v, request.opt.trials)) {
                usage(argv0);
                return 2;
            }
        } else if (arg == "--seed") {
            const char *v = value();
            if (!v || !parseCliSeed(v, request.opt.seed)) {
                usage(argv0);
                return 2;
            }
            request.opt.seedSet = true;
        } else if (arg.size() > 1 && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv0);
            return 2;
        } else {
            request.targets.push_back(arg);
        }
    }
    if (request.dir.empty()) {
        std::fprintf(stderr, "plan needs --out DIR\n");
        usage(argv0);
        return 2;
    }
    const std::string error =
        c4::sweep::planCampaign(request, std::cout);
    if (!error.empty()) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    return 0;
}

int
mainRun(int argc, char **argv, const char *argv0)
{
    c4::sweep::ExecRequest request;
    int retries = 1;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--bench") {
            const char *v = value();
            if (!v) {
                usage(argv0);
                return 2;
            }
            request.bench = v;
        } else if (arg == "--workers") {
            const char *v = value();
            if (!v || !parseCliInt(v, request.workers)) {
                usage(argv0);
                return 2;
            }
        } else if (arg == "--retries") {
            const char *v = value();
            char *end = nullptr;
            const long r = v ? std::strtol(v, &end, 10) : -1;
            if (!v || end == v || *end != '\0' || r < 0 || r > 100) {
                usage(argv0);
                return 2;
            }
            retries = static_cast<int>(r);
        } else if (arg == "--max-shards") {
            const char *v = value();
            if (!v || !parseCliInt(v, request.maxShards)) {
                usage(argv0);
                return 2;
            }
        } else if (arg == "--metrics") {
            request.metrics = true;
        } else if (arg == "--no-forensics") {
            request.forensics = false;
        } else if (arg == "--only") {
            const char *v = value();
            if (!v) {
                usage(argv0);
                return 2;
            }
            c4::scenario::splitCommaList(v, request.only);
            if (request.only.empty()) {
                std::fprintf(stderr, "--only needs shard ids\n");
                return 2;
            }
        } else if (arg.size() > 1 && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv0);
            return 2;
        } else if (request.dir.empty()) {
            request.dir = arg;
        } else {
            usage(argv0);
            return 2;
        }
    }
    if (request.dir.empty()) {
        std::fprintf(stderr, "run needs the campaign DIR\n");
        usage(argv0);
        return 2;
    }
    request.maxAttempts = retries + 1;
    c4::sweep::ExecStats stats;
    const std::string error =
        c4::sweep::runCampaign(request, stats, std::cout);
    if (!error.empty()) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    return stats.failed > 0 ? 1 : 0;
}

int
mainMerge(int argc, char **argv, const char *argv0)
{
    std::string dir, out;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
            if (i + 1 >= argc) {
                usage(argv0);
                return 2;
            }
            out = argv[++i];
        } else if (arg.size() > 1 && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv0);
            return 2;
        } else if (dir.empty()) {
            dir = arg;
        } else {
            usage(argv0);
            return 2;
        }
    }
    if (dir.empty()) {
        std::fprintf(stderr, "merge needs the campaign DIR\n");
        usage(argv0);
        return 2;
    }
    if (out.empty())
        out = c4::sweep::campaignPath(dir, "merged.csv");
    // Diagnostics to stderr so `--csv -` pipes a clean CSV stream.
    const std::string error =
        c4::sweep::mergeCampaign(dir, out, std::cerr);
    if (!error.empty()) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    return 0;
}

int
mainStatus(int argc, char **argv, const char *argv0)
{
    std::string dir;
    bool watch = false;
    c4::sweep::WatchOptions opt;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--watch") {
            watch = true;
        } else if (arg == "--interval") {
            const char *v = value();
            char *end = nullptr;
            const double sec = v ? std::strtod(v, &end) : -1.0;
            if (!v || end == v || *end != '\0' || sec < 0 ||
                sec > 3600) {
                usage(argv0);
                return 2;
            }
            opt.intervalSeconds = sec;
        } else if (arg == "--max-ticks") {
            const char *v = value();
            if (!v || !parseCliInt(v, opt.maxTicks)) {
                usage(argv0);
                return 2;
            }
        } else if (arg.size() > 1 && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv0);
            return 2;
        } else if (dir.empty()) {
            dir = arg;
        } else {
            usage(argv0);
            return 2;
        }
    }
    if (dir.empty()) {
        std::fprintf(stderr, "status needs the campaign DIR\n");
        usage(argv0);
        return 2;
    }
    if (watch)
        return c4::sweep::watchCampaign(dir, opt, std::cout);
    try {
        const c4::sweep::Manifest manifest =
            c4::sweep::loadManifest(dir);
        c4::sweep::printStatus(manifest, std::cout);
        return c4::sweep::campaignComplete(manifest) ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}

int
mainForensics(int argc, char **argv, const char *argv0)
{
    std::string dir;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.size() > 1 && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv0);
            return 2;
        } else if (dir.empty()) {
            dir = arg;
        } else {
            usage(argv0);
            return 2;
        }
    }
    if (dir.empty()) {
        std::fprintf(stderr, "forensics needs the campaign DIR\n");
        usage(argv0);
        return 2;
    }
    try {
        const c4::sweep::Manifest manifest =
            c4::sweep::loadManifest(dir);
        const std::string error =
            c4::sweep::forensicsReport(dir, manifest, std::cout);
        if (!error.empty()) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 1;
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}

int
mainCollect(int argc, char **argv, const char *argv0)
{
    c4::sweep::CollectRequest request;
    bool report = false;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--report") {
            report = true;
        } else if (arg == "--only") {
            const char *v = value();
            if (!v) {
                usage(argv0);
                return 2;
            }
            c4::scenario::splitCommaList(v, request.only);
            if (request.only.empty()) {
                std::fprintf(stderr, "--only needs shard ids\n");
                return 2;
            }
        } else if (arg.size() > 1 && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv0);
            return 2;
        } else if (request.dir.empty()) {
            request.dir = arg;
        } else {
            request.hosts.push_back(arg);
        }
    }
    if (request.dir.empty() || request.hosts.empty()) {
        std::fprintf(
            stderr,
            "collect needs the primary DIR and >= 1 HOST_DIR\n");
        usage(argv0);
        return 2;
    }
    c4::sweep::CollectStats stats;
    const std::string error =
        c4::sweep::collectCampaign(request, stats, std::cout);
    if (!error.empty()) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    if (report) {
        try {
            const c4::sweep::Manifest manifest =
                c4::sweep::loadManifest(request.dir);
            const std::string reportError = c4::sweep::forensicsReport(
                request.dir, manifest, std::cout);
            if (!reportError.empty()) {
                std::fprintf(stderr, "%s\n", reportError.c_str());
                return 1;
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string command = argv[1];
    if (command == "--help" || command == "-h") {
        usage(argv[0]);
        return 0;
    }
    if (command == "plan")
        return mainPlan(argc - 2, argv + 2, argv[0]);
    if (command == "run")
        return mainRun(argc - 2, argv + 2, argv[0]);
    if (command == "merge")
        return mainMerge(argc - 2, argv + 2, argv[0]);
    if (command == "status")
        return mainStatus(argc - 2, argv + 2, argv[0]);
    if (command == "collect")
        return mainCollect(argc - 2, argv + 2, argv[0]);
    if (command == "forensics")
        return mainForensics(argc - 2, argv + 2, argv[0]);
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    usage(argv[0]);
    return 2;
}
