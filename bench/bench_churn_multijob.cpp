/**
 * @file
 * Scenario `churn_multijob` — a randomized multi-job churn workload
 * the old per-driver structure made awkward: training jobs of random
 * size arrive and depart on a production pod while a compressed fault
 * campaign fires, with the full C4 stack (C4D detection + steering +
 * C4P traffic engineering) keeping the survivors alive. Exercises the
 * allocator / steering / removeJob paths under continuous churn.
 */

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "core/cluster.h"
#include "scenario/registry.h"
#include "train/job.h"

namespace {

using namespace c4;
using namespace c4::scenario;

struct ChurnState
{
    core::Cluster *cluster = nullptr;
    Rng rng;
    Time horizon = 0;
    Duration meanInterarrival = 0;
    JobId nextId = 1;
    int started = 0;
    int completed = 0; ///< departed after a full residency
    int rejected = 0;  ///< pool too empty at arrival time
    double iterations = 0.0;

    explicit ChurnState(std::uint64_t seed) : rng(seed) {}

    void
    scheduleNextArrival()
    {
        const Duration gap = static_cast<Duration>(
            rng.exponential(static_cast<double>(meanInterarrival)));
        const Time at = cluster->sim().now() + std::max<Duration>(
                                                   gap, seconds(1));
        if (at >= horizon)
            return;
        cluster->sim().scheduleAt(at, [this] {
            arrive();
            scheduleNextArrival();
        });
    }

    void
    arrive()
    {
        // 1, 2 or 4 nodes (TP8 within the node, DP across).
        const int sizes[] = {1, 2, 4};
        const int nodes =
            sizes[static_cast<std::size_t>(rng.uniformInt(0, 2))];
        if (cluster->freeNodes() < nodes) {
            ++rejected;
            return;
        }
        train::JobConfig jc;
        const JobId id = nextId++;
        jc.id = id;
        jc.name = "churn" + std::to_string(id);
        jc.model = train::llama7b();
        jc.model.microbatchCompute = milliseconds(400);
        jc.parallel = {.tp = 8, .pp = 1, .dp = nodes};
        jc.microBatch = 4;
        jc.initTime = seconds(20);
        jc.dpGroupsSimulated = 1;
        jc.seed = rng();
        train::TrainingJob &job = cluster->addJob(jc);
        job.start();
        ++started;

        const Duration residency = static_cast<Duration>(
            rng.uniform(0.25, 1.0) *
            static_cast<double>(meanInterarrival) * 6.0);
        cluster->sim().scheduleAfter(residency, [this, id] {
            depart(id);
        });
    }

    void
    depart(JobId id)
    {
        train::TrainingJob *job = cluster->job(id);
        if (!job)
            return;
        iterations +=
            static_cast<double>(job->iterationsCompleted());
        cluster->removeJob(id);
        ++completed;
    }
};

void
runTrial(TrialContext &ctx)
{
    core::ClusterConfig cc;
    cc.topology = core::productionPod(32);
    cc.enableC4d = true;
    cc.enableC4p = true;
    cc.c4d.evaluatePeriod = seconds(5);
    cc.c4d.hangThreshold = seconds(30);
    cc.steering.isolationDelay = minutes(1);
    cc.seed = ctx.seed;
    core::Cluster cluster(cc);
    cluster.provisionBackupNodes(4);
    cluster.startRuntime();

    ChurnState churn(ctx.seed ^ 0xC0FFEEull);
    churn.cluster = &cluster;
    churn.horizon = ctx.pick(hours(4), minutes(8));
    churn.meanInterarrival = ctx.pick(minutes(10), minutes(1));

    // Compressed June-2023 fault rates so even a short window sees a
    // hyperscale month's worth of trouble (the 256-GPU pod's base
    // rate is only ~2.5 crashes per month).
    std::vector<NodeId> population;
    for (NodeId n = 0; n < cluster.topology().numNodes(); ++n)
        population.push_back(n);
    cluster.faults().startCampaign(
        fault::FaultRates::paperJune2023().scaled(
            ctx.pick(500.0, 20000.0)),
        population, cluster.topology().config().nicsPerNode,
        cluster.topology().gpusPerNode(),
        cluster.topology().numLeaves() *
            cluster.topology().numSpines(),
        churn.horizon);

    // Seed the pod with two initial jobs, then let churn run.
    churn.arrive();
    churn.arrive();
    churn.scheduleNextArrival();
    cluster.run(churn.horizon);

    // Jobs still resident at the horizon count their work too.
    double residentIters = 0.0;
    for (JobId id = 1; id < churn.nextId; ++id) {
        if (train::TrainingJob *job = cluster.job(id))
            residentIters +=
                static_cast<double>(job->iterationsCompleted());
    }

    ctx.metric("jobs_started", churn.started);
    ctx.metric("jobs_completed", churn.completed);
    ctx.metric("jobs_rejected", churn.rejected);
    ctx.metric("iterations_total",
               churn.iterations + residentIters);
    ctx.metric("restarts",
               static_cast<double>(
                   cluster.steering()->restartsIssued()));
    ctx.metric("isolated_nodes",
               static_cast<double>(
                   cluster.steering()->isolatedNodes().size()));
    ctx.metric("c4d_events",
               static_cast<double>(
                   cluster.c4dMaster()->eventsEmitted()));
    ctx.metric("broken_nodes",
               static_cast<double>(cluster.brokenNodeCount()));
}

const Register reg{{
    .name = "churn_multijob",
    .title = "Churn: random job arrivals/departures under a fault "
             "campaign (C4 stack on)",
    .description =
        "Jobs of random size arrive and depart on a 32-node pod while "
        "compressed June-2023 faults fire; C4D+steering+C4P keep the "
        "survivors alive. Exercises allocator and steering churn.",
    .notes = "New workload (not a paper figure): sanity metrics are "
             "jobs completed vs started and restarts vs isolations.",
    .fullTrials = 3,
    .smokeTrials = 1,
    .seed = 0xC0C4C0C4,
    .variants =
        [](const RunOptions &) {
            ScenarioSpec spec;
            spec.variant = "pod32";
            spec.custom = runTrial;
            return std::vector<ScenarioSpec>{spec};
        },
    .summarize = {},
}};

} // namespace
