/**
 * @file
 * Scenario `fig14_real_jobs` — Fig. 14: throughput of three
 * representative production training jobs with and without C4P.
 *
 *   job1: GPT-22B,  Megatron, TP=8,  DP=16          (paper: +15.95%)
 *   job2: Llama-7B, DeepSpeed ZeRO, DP only         (paper: +14.1%)
 *   job3: GPT-175B, Megatron, TP=8, PP=8, GA=16     (paper: ~0%)
 *
 * Job3's gradient-accumulation factor of 16 shrinks the communication
 * share of each iteration, which is exactly why C4P cannot help it —
 * the crossover the paper calls out.
 */

#include <string>
#include <utility>
#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

JobSpec
job1()
{
    JobSpec js;
    js.id = 1;
    js.name = "Job1 GPT-22B TP8/DP16";
    js.model = "gpt22b";
    js.parallel = {.tp = 8, .pp = 1, .dp = 16};
    js.parallel.gradientAccumulation = 2; // calibrates comm share ~30%
    js.microBatch = 4;
    return js;
}

JobSpec
job2()
{
    JobSpec js;
    js.id = 1;
    js.name = "Job2 Llama-7B ZeRO/DP32";
    js.model = "llama7b";
    js.parallel = {.tp = 1, .pp = 1, .dp = 32};
    js.parallel.zeroStage = 1;
    js.parallel.gradientAccumulation = 2; // calibrates comm share ~30%
    js.microBatch = 10;
    return js;
}

JobSpec
job3()
{
    JobSpec js;
    js.id = 1;
    js.name = "Job3 GPT-175B TP8/PP8/GA16";
    js.model = "gpt175b";
    js.parallel = {.tp = 8, .pp = 8, .dp = 2};
    js.parallel.gradientAccumulation = 16;
    js.microBatch = 4;
    return js;
}

ScenarioSpec
workload(const RunOptions &opt, const char *label, const JobSpec &job,
         bool c4p)
{
    ScenarioSpec spec;
    spec.variant = std::string(label) + (c4p ? "_c4p" : "_ecmp");
    spec.features.c4p = c4p;
    spec.jobs.push_back(job);
    spec.metrics.jobCommShare = true;
    spec.horizon = opt.pick(minutes(30), seconds(40));
    return spec;
}

const Register reg{{
    .name = "fig14_real_jobs",
    .title = "Fig. 14: real-job throughput, baseline vs C4P",
    .description =
        "Three representative production jobs (GPT-22B, Llama-7B "
        "ZeRO, GPT-175B GA=16), baseline ECMP vs C4P.",
    .notes =
        "Paper: job1 +15.95%, job2 +14.1%, job3 ~0%. Jobs 1-2 spend "
        ">30% of each iteration communicating; job3's GA=16 amortizes "
        "the DP allreduce over 16x compute, so traffic engineering "
        "cannot help it.",
    .fullTrials = 1,
    .smokeTrials = 1,
    .seed = 0xC4C10C4D,
    .variants =
        [](const RunOptions &opt) {
            std::vector<ScenarioSpec> specs;
            const std::vector<std::pair<const char *, JobSpec>> jobs =
                {{"job1", job1()}, {"job2", job2()}, {"job3", job3()}};
            for (const auto &[label, job] : jobs) {
                specs.push_back(workload(opt, label, job, false));
                specs.push_back(workload(opt, label, job, true));
            }
            return specs;
        },
    .summarize = {},
}};

} // namespace
