/**
 * @file
 * Reproduces Fig. 14: throughput of three representative production
 * training jobs with and without C4P.
 *
 *   Job1: GPT-22B,  Megatron, TP=8,  DP=16          (paper: +15.95%)
 *   Job2: Llama-7B, DeepSpeed ZeRO, DP only         (paper: +14.1%)
 *   Job3: GPT-175B, Megatron, TP=8, PP=8, GA=16     (paper: ~0%)
 *
 * Job3's gradient-accumulation factor of 16 shrinks the communication
 * share of each iteration, which is exactly why C4P cannot help it —
 * the crossover the paper calls out.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/cluster.h"
#include "train/job.h"
#include "train/model.h"

using namespace c4;
using namespace c4::core;
using namespace c4::train;

namespace {

JobConfig
job1()
{
    JobConfig jc;
    jc.id = 1;
    jc.name = "Job1 GPT-22B TP8/DP16";
    jc.model = gpt22b();
    jc.parallel = {.tp = 8, .pp = 1, .dp = 16};
    jc.parallel.gradientAccumulation = 2; // calibrates comm share ~30%
    jc.microBatch = 4;
    jc.initTime = seconds(1);
    jc.dpGroupsSimulated = 2;
    return jc;
}

JobConfig
job2()
{
    JobConfig jc;
    jc.id = 2;
    jc.name = "Job2 Llama-7B ZeRO/DP32";
    jc.model = llama7b();
    jc.parallel = {.tp = 1, .pp = 1, .dp = 32};
    jc.parallel.zeroStage = 1;
    jc.parallel.gradientAccumulation = 2; // calibrates comm share ~30%
    jc.microBatch = 10;
    jc.initTime = seconds(1);
    jc.dpGroupsSimulated = 2;
    return jc;
}

JobConfig
job3()
{
    JobConfig jc;
    jc.id = 3;
    jc.name = "Job3 GPT-175B TP8/PP8/GA16";
    jc.model = gpt175b();
    jc.parallel = {.tp = 8, .pp = 8, .dp = 2};
    jc.parallel.gradientAccumulation = 16;
    jc.microBatch = 4;
    jc.initTime = seconds(1);
    jc.dpGroupsSimulated = 2;
    return jc;
}

struct Measured
{
    double samplesPerSec = 0.0;
    double commShare = 0.0;
};

Measured
run(const bench::Options &opt, const JobConfig &base, bool c4p)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4p = c4p;
    Cluster cluster(cc);

    JobConfig jc = base;
    auto &job = cluster.addJob(jc);

    double comm = 0.0, total = 0.0;
    job.onIteration([&](const IterationStats &st) {
        comm += toSeconds(st.commDuration);
        total += toSeconds(st.end - st.start);
    });
    job.start();
    cluster.run(opt.pick(minutes(30), seconds(40)));

    Measured m;
    m.samplesPerSec = job.meanSamplesPerSec();
    m.commShare = total > 0.0 ? comm / total : 0.0;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    const std::vector<JobConfig> jobs = {job1(), job2(), job3()};
    const std::vector<const char *> paper = {"+15.95% (74.82 -> 86.76)",
                                             "+14.1% (156.59 -> 178.65)",
                                             "~0%"};

    AsciiTable t({"Job", "Baseline (samples/s)", "C4P (samples/s)",
                  "Gain", "Comm share", "Paper"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Measured base = run(opt, jobs[i], false);
        const Measured c4p = run(opt, jobs[i], true);
        t.addRow({jobs[i].name, AsciiTable::num(base.samplesPerSec),
                  AsciiTable::num(c4p.samplesPerSec),
                  AsciiTable::percent(
                      c4p.samplesPerSec / base.samplesPerSec - 1.0, 1),
                  AsciiTable::percent(base.commShare, 0), paper[i]});
    }
    std::printf("%s\n",
                t.str("Fig. 14: real-job throughput, baseline vs C4P")
                    .c_str());
    std::printf("Jobs 1-2 spend >30%% of each iteration communicating; "
                "Job3's GA=16 amortizes\nthe DP allreduce over 16x "
                "compute, so traffic engineering cannot help it.\n");
    return 0;
}
