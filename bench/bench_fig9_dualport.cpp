/**
 * @file
 * Scenario `fig9_dualport` — Fig. 9: allreduce bus bandwidth with and
 * without C4P's dual-port traffic balance, sweeping 16 -> 128 GPUs
 * (2 -> 16 nodes). Several trials (seeds) per scale average over the
 * stochastic ECMP port draws.
 */

#include <string>
#include <vector>

#include "scenario/registry.h"

namespace {

using namespace c4;
using namespace c4::scenario;

ScenarioSpec
atScale(const RunOptions &opt, int nodes, bool c4p)
{
    ScenarioSpec spec;
    spec.variant = (c4p ? "c4p_n" : "ecmp_n") + std::to_string(nodes);
    spec.features.c4p = c4p;

    AllreduceGroupSpec g;
    g.tasks = 1;
    g.placement = AllreduceGroupSpec::Placement::SpreadAcrossSegments;
    g.nodesPerTask = nodes;
    g.bytes = mib(256);
    g.iterations = opt.pick(25, 3);
    spec.allreduces.push_back(g);
    return spec;
}

const Register reg{{
    .name = "fig9_dualport",
    .title = "Fig. 9: allreduce busbw, dual-port balance (ring, "
             "256 MiB)",
    .description =
        "Allreduce bus bandwidth, baseline ECMP vs C4P dual-port "
        "balance, 2-16 nodes spread across the testbed segments.",
    .notes = "Paper shape: baseline < 240 Gbps in most cases; C4P "
             "close to the 362 Gbps NVLink ceiling (~50% gain).",
    .fullTrials = 8,
    .smokeTrials = 1,
    .seed = 0xF19000,
    .variants =
        [](const RunOptions &opt) {
            std::vector<ScenarioSpec> specs;
            const std::vector<int> nodeCounts =
                opt.pick(std::vector<int>{2, 4, 8, 16},
                         std::vector<int>{2, 4});
            for (int nodes : nodeCounts) {
                specs.push_back(atScale(opt, nodes, false));
                specs.push_back(atScale(opt, nodes, true));
            }
            return specs;
        },
    .summarize = {},
}};

} // namespace
