/**
 * @file
 * Reproduces Fig. 9: allreduce bus bandwidth with and without C4P's
 * dual-port traffic balance, sweeping 16 -> 128 GPUs (2 -> 16 nodes).
 *
 * Paper shape: baseline busbw "lower than 240 Gbps in most test cases";
 * C4P close to the 362 Gbps NVLink ceiling (~50% gain). Several trials
 * (seeds) per scale average over the stochastic ECMP port draws.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/cluster.h"
#include "core/experiment.h"

using namespace c4;
using namespace c4::core;

namespace {

/** Cross-segment node pick: node i of segment (i mod 4). */
std::vector<NodeId>
spreadNodes(const net::Topology &topo, int count)
{
    std::vector<NodeId> nodes;
    const int per_segment = topo.config().nodesPerSegment;
    for (int i = 0; i < count; ++i) {
        const int seg = i % topo.numSegments();
        const int slot = i / topo.numSegments();
        nodes.push_back(static_cast<NodeId>(seg * per_segment + slot));
    }
    return nodes;
}

double
runTrial(const bench::Options &opt, int num_nodes, bool c4p,
         std::uint64_t seed)
{
    ClusterConfig cc;
    cc.topology = paperTestbed();
    cc.enableC4p = c4p;
    cc.seed = seed;
    Cluster cluster(cc);

    AllreduceTaskConfig tc;
    tc.nodes = spreadNodes(cluster.topology(), num_nodes);
    tc.bytes = mib(256);
    tc.iterations = opt.pick(25, 3);
    AllreduceTask task(cluster, tc);
    task.start();
    cluster.run();
    return task.busBwGbps().mean();
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseArgs(argc, argv);
    const int kTrials = opt.pick(8, 1);
    const std::vector<int> node_counts =
        opt.pick(std::vector<int>{2, 4, 8, 16}, std::vector<int>{2, 4});

    AsciiTable t({"GPUs", "Baseline (Gbps)", "C4P (Gbps)", "Gain",
                  "Paper baseline", "Paper C4P"});
    for (int nodes : node_counts) {
        Summary base, c4p;
        for (int trial = 0; trial < kTrials; ++trial) {
            const auto seed = 0xF19000ull + 7919u * trial;
            base.add(runTrial(opt, nodes, false, seed));
            c4p.add(runTrial(opt, nodes, true, seed));
        }
        char gpus[16];
        std::snprintf(gpus, sizeof(gpus), "%d", nodes * 8);
        t.addRow({gpus, AsciiTable::num(base.mean()),
                  AsciiTable::num(c4p.mean()),
                  AsciiTable::percent(c4p.mean() / base.mean() - 1.0, 1),
                  "< 240", "~360"});
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Fig. 9: allreduce busbw, dual-port balance "
                  "(ring, 256 MiB, mean of %d trials)",
                  kTrials);
    std::printf("%s\n", t.str(title).c_str());
    std::printf("NVLink busbw ceiling: 362 Gbps (paper Section IV-B)\n");
    return 0;
}
