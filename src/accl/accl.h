/**
 * @file
 * The simulated collective communication library (ACCL).
 *
 * Collectives are executed as pipelined rounds of point-to-point hops over
 * the communicator's ring (or tree): intra-node hops ride the NVLink plane
 * at the per-GPU NVLink budget, inter-node hops become fabric flows through
 * QPs whose paths come from the pluggable PathPolicy (baseline ECMP or
 * C4P). A round completes when its slowest hop completes — reproducing the
 * paper's observation that "any flow that is throttled can have a ripple
 * effect, hindering the entire communication group".
 *
 * Every layer is instrumented (AcclMonitor), mirroring the paper's
 * communicator/operation/transport telemetry that C4D consumes.
 */

#ifndef C4_ACCL_ACCL_H
#define C4_ACCL_ACCL_H

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "accl/collective.h"
#include "accl/communicator.h"
#include "accl/monitor.h"
#include "accl/path_policy.h"
#include "common/random.h"
#include "common/types.h"
#include "net/fabric.h"
#include "sim/simulator.h"

namespace c4::accl {

/** Library-wide tunables. */
struct AcclConfig
{
    /**
     * Parallel channels per communicator. Channel c's inter-node traffic
     * departs NIC (c mod nics) for node-spanning rings; with the default
     * of 2, a node's boundary traffic exercises one bonded NIC pair —
     * the configuration whose dual-port imbalance Fig. 9 studies.
     */
    int defaultChannels = 2;

    /** QPs per (channel, connection); chunks are split across them. */
    int qpsPerConnection = 1;

    /**
     * Ring rounds simulated per collective. The payload is divided over
     * this many barrier-synchronized rounds; the real round count (2(n-1))
     * is used for bandwidth bookkeeping, so this only sets the temporal
     * resolution at which contention is sampled.
     */
    int maxSimRounds = 8;

    /** Enable the AcclMonitor record streams. */
    bool monitoring = true;

    /** Retained records per monitor stream. */
    std::size_t monitorCapacity = 1u << 20;
};

/** Completion summary delivered to the collective's callback. */
struct CollectiveResult
{
    CommId comm = kInvalidId;
    CollSeq seq = 0;
    CollOp op = CollOp::AllReduce;
    AlgoKind algo = AlgoKind::Ring;
    Bytes bytes = 0;
    int nranks = 0;
    Time postTime = 0;  ///< earliest rank entry
    Time startTime = 0; ///< all ranks ready; data movement begins
    Time endTime = 0;

    /** Data-movement duration (excludes straggler wait). */
    Duration commDuration() const { return endTime - startTime; }

    /** Total duration including the wait for the slowest rank. */
    Duration totalDuration() const { return endTime - postTime; }

    Bandwidth
    algBw() const
    {
        return algBandwidth(bytes, commDuration());
    }

    Bandwidth
    busBw() const
    {
        return busBandwidth(op, nranks, bytes, commDuration());
    }
};

using CollectiveCallback = std::function<void(const CollectiveResult &)>;

/**
 * The library facade: owns communicators, the transport QP cache, and the
 * monitor; executes collectives over a Fabric.
 */
class Accl
{
  public:
    /**
     * @param sim event engine
     * @param fabric network substrate (provides the topology)
     * @param cfg library tunables
     * @param seed RNG stream (baseline policy source ports etc.)
     */
    Accl(Simulator &sim, net::Fabric &fabric, AcclConfig cfg = {},
         std::uint64_t seed = 0xACC1ACC1ull);
    ~Accl();

    Accl(const Accl &) = delete;
    Accl &operator=(const Accl &) = delete;

    /** @name Communicator management @{ */

    /**
     * Create a communicator over @p devices (in ring order).
     * @param channels parallel channels; 0 uses the config default.
     */
    CommId createCommunicator(JobId job, std::vector<DeviceInfo> devices,
                              int channels = 0);

    /** Destroy a communicator, aborting any in-flight collectives. */
    void destroyCommunicator(CommId comm);

    bool hasCommunicator(CommId comm) const;
    const Communicator &communicator(CommId comm) const;
    /** @} */

    /**
     * Install a path policy (non-owning; nullptr restores the built-in
     * ECMP baseline). Existing QPs keep their paths; new QPs consult the
     * new policy.
     */
    void setPathPolicy(PathPolicy *policy);

    /** @name Collectives @{ */

    /**
     * Post a BSP collective: every rank enters at now + rankPostDelays[r]
     * (all zero when empty). Ordered FIFO per communicator.
     *
     * @return the operation's sequence number on this communicator.
     */
    CollSeq postCollective(CommId comm, CollOp op, Bytes bytesPerRank,
                           CollectiveCallback done,
                           std::vector<Duration> rankPostDelays = {},
                           AlgoKind algo = AlgoKind::Ring);

    /** Point-to-point transfer between two ranks of a communicator. */
    CollSeq sendRecv(CommId comm, Rank src, Rank dst, Bytes bytes,
                     CollectiveCallback done);
    /** @} */

    /** @name Fault hooks (used by the fault injector) @{ */

    /**
     * Simulate a fatal worker error on a rank (CUDA/ECC/process death):
     * the rank stops participating, so in-flight collectives on its
     * communicators stall — the paper's "communication hang" syndrome
     * seen by every peer.
     */
    void crashRank(CommId comm, Rank rank);

    bool rankCrashed(CommId comm, Rank rank) const;
    /** @} */

    AcclMonitor &monitor() { return monitor_; }
    const AcclMonitor &monitor() const { return monitor_; }

    Simulator &simulator() { return sim_; }
    net::Fabric &fabric() { return fabric_; }
    const AcclConfig &config() const { return cfg_; }

    std::uint64_t collectivesCompleted() const { return completed_; }
    std::uint64_t collectivesPosted() const { return posted_; }

  private:
    struct Connection;
    struct CommState;
    class Exec;

    Simulator &sim_;
    net::Fabric &fabric_;
    AcclConfig cfg_;
    Rng rng_;

    AcclMonitor monitor_;
    EcmpPathPolicy baselinePolicy_;
    PathPolicy *policy_; // never null; defaults to &baselinePolicy_

    CommId nextCommId_ = 1;
    QpId nextQpId_ = 1;
    std::uint64_t posted_ = 0;
    std::uint64_t completed_ = 0;

    std::unordered_map<CommId, std::unique_ptr<CommState>> comms_;

    CommState &state(CommId comm);
    const CommState &state(CommId comm) const;

    Connection &getConnection(CommState &cs, int channel, Rank src,
                              Rank dst);
    void releaseConnections(CommState &cs);

    void startNext(CommState &cs);
    void finishExec(CommState &cs);
};

} // namespace c4::accl

#endif // C4_ACCL_ACCL_H
