#include "accl/collective.h"

#include <cassert>

namespace c4::accl {

const char *
collOpName(CollOp op)
{
    switch (op) {
      case CollOp::AllReduce:     return "allreduce";
      case CollOp::AllGather:     return "allgather";
      case CollOp::ReduceScatter: return "reducescatter";
      case CollOp::Broadcast:     return "broadcast";
      case CollOp::AllToAll:      return "alltoall";
      case CollOp::SendRecv:      return "sendrecv";
    }
    return "?";
}

const char *
algoKindName(AlgoKind algo)
{
    switch (algo) {
      case AlgoKind::Ring:            return "ring";
      case AlgoKind::Tree:            return "tree";
      case AlgoKind::HalvingDoubling: return "halving-doubling";
    }
    return "?";
}

double
busFactor(CollOp op, int nranks)
{
    assert(nranks >= 1);
    const double n = static_cast<double>(nranks);
    switch (op) {
      case CollOp::AllReduce:
        return nranks == 1 ? 0.0 : 2.0 * (n - 1.0) / n;
      case CollOp::AllGather:
      case CollOp::ReduceScatter:
        return nranks == 1 ? 0.0 : (n - 1.0) / n;
      case CollOp::Broadcast:
        return nranks == 1 ? 0.0 : 1.0;
      case CollOp::AllToAll:
        return nranks == 1 ? 0.0 : (n - 1.0) / n;
      case CollOp::SendRecv:
        return 1.0;
    }
    return 0.0;
}

int
ringRounds(CollOp op, int nranks)
{
    assert(nranks >= 1);
    switch (op) {
      case CollOp::AllReduce:
        return nranks == 1 ? 0 : 2 * (nranks - 1);
      case CollOp::AllGather:
      case CollOp::ReduceScatter:
      case CollOp::Broadcast:
      case CollOp::AllToAll:
        return nranks == 1 ? 0 : nranks - 1;
      case CollOp::SendRecv:
        return 1;
    }
    return 0;
}

Bandwidth
algBandwidth(Bytes bytes, Duration elapsed)
{
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(bytes) * 8.0 / toSeconds(elapsed);
}

Bandwidth
busBandwidth(CollOp op, int nranks, Bytes bytes, Duration elapsed)
{
    return algBandwidth(bytes, elapsed) * busFactor(op, nranks);
}

} // namespace c4::accl
