#include "accl/accl.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "common/log.h"

namespace c4::accl {

namespace {

/** Connection cache key: (channel, srcRank, dstRank). */
std::uint64_t
connKey(int channel, Rank src, Rank dst)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(channel))
            << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 20) |
           static_cast<std::uint32_t>(dst);
}

} // namespace

/** One transport connection: a QP group between two ranks on a channel. */
struct Accl::Connection
{
    std::vector<ConnContext> ctxs;
    std::vector<PathDecision> decisions;
    std::vector<double> weights;
    std::vector<QpId> qpIds;
};

struct PendingOp
{
    CollSeq seq = 0;
    CollOp op = CollOp::AllReduce;
    AlgoKind algo = AlgoKind::Ring;
    Bytes bytes = 0;
    std::vector<Duration> delays;
    CollectiveCallback done;
    Time postedAt = 0;
    Rank p2pSrc = kInvalidId;
    Rank p2pDst = kInvalidId;
};

struct Accl::CommState
{
    std::unique_ptr<Communicator> comm;
    std::unordered_set<Rank> crashed;
    std::unordered_map<std::uint64_t, Connection> conns;
    CollSeq nextSeq = 1;
    std::deque<PendingOp> queue;
    std::unique_ptr<Exec> active;
};

/**
 * Execution state machine for one collective. Channels progress through
 * barrier-synchronized rounds independently; the operation completes when
 * every channel has drained every stage.
 */
class Accl::Exec
{
  public:
    Exec(Accl &lib, CommState &cs, PendingOp op)
        : lib_(lib), cs_(cs), op_(std::move(op)),
          alive_(std::make_shared<bool>(true))
    {
    }

    ~Exec()
    {
        *alive_ = false;
        for (FlowId f : activeFlows_)
            lib_.fabric_.abortFlow(f);
        for (EventId e : pendingEvents_)
            lib_.sim_.cancel(e);
    }

    void
    begin()
    {
        const Communicator &comm = *cs_.comm;
        const int n = comm.size();

        lib_.monitor_.opPosted(comm.id(), op_.seq, op_.op, op_.bytes,
                               op_.postedAt);

        postTimes_.resize(static_cast<std::size_t>(n));
        Time t0 = lib_.sim_.now();
        Time min_post = kTimeNever;
        for (Rank r = 0; r < n; ++r) {
            Duration d = 0;
            if (static_cast<std::size_t>(r) < op_.delays.size())
                d = op_.delays[static_cast<std::size_t>(r)];
            const Time p = op_.postedAt + d;
            postTimes_[static_cast<std::size_t>(r)] = p;
            if (!cs_.crashed.count(r)) {
                t0 = std::max(t0, p);
                min_post = std::min(min_post, p);
            }
        }
        minPost_ = min_post;
        startTime_ = t0;

        buildPlan();

        if (anyCrash()) {
            // A dead rank never enters the collective: the survivors
            // block forever — the paper's non-communication hang. Record
            // that the living ranks did show up, then stall.
            schedule(t0, [this] {
                const Communicator &c = *cs_.comm;
                for (Rank r = 0; r < c.size(); ++r) {
                    if (!cs_.crashed.count(r))
                        lib_.monitor_.heartbeat(c.id(), r,
                                                lib_.sim_.now());
                }
            });
            return;
        }

        schedule(t0, [this] { onAllRanksReady(); });
    }

  private:
    struct Stage
    {
        /** Inter-node hops (rank pairs) active each round. */
        std::vector<Communicator::Boundary> hops;
        /** Nodes with intra-node (NVLink) hops each round. */
        std::vector<NodeId> nvlinkNodes;
        Bytes bytesPerHopPerRound = 0;
        int rounds = 0;
    };

    struct ChannelCursor
    {
        int stage = 0;
        int round = 0;
        int pending = 0;
        bool finished = false;
        std::vector<std::uint64_t> connsUsed; // for post-round rebalance
    };

    Accl &lib_;
    CommState &cs_;
    PendingOp op_;
    std::shared_ptr<bool> alive_;

    std::vector<Time> postTimes_;
    Time minPost_ = 0;
    Time startTime_ = 0;

    std::vector<Stage> stages_;
    int activeChannels_ = 1;
    std::vector<ChannelCursor> cursors_;
    int channelsFinished_ = 0;

    std::unordered_set<FlowId> activeFlows_;
    std::unordered_set<EventId> pendingEvents_;

    void
    schedule(Time when, std::function<void()> fn)
    {
        auto weak = std::weak_ptr<bool>(alive_);
        auto id_holder = std::make_shared<EventId>(kInvalidEvent);
        const EventId id = lib_.sim_.scheduleAt(
            when, [this, weak, id_holder, fn = std::move(fn)] {
                if (auto p = weak.lock(); p && *p) {
                    pendingEvents_.erase(*id_holder);
                    fn();
                }
            });
        *id_holder = id;
        pendingEvents_.insert(id);
    }

    void
    scheduleAfter(Duration d, std::function<void()> fn)
    {
        schedule(lib_.sim_.now() + d, std::move(fn));
    }

    /** Derive the hop structure for the requested op/algo. */
    void
    buildPlan()
    {
        const Communicator &comm = *cs_.comm;
        const int n = comm.size();

        if (op_.op == CollOp::SendRecv) {
            activeChannels_ = 1;
            Stage st;
            st.rounds = 1;
            st.bytesPerHopPerRound = std::max<Bytes>(1, op_.bytes);
            const auto &sd = comm.device(op_.p2pSrc);
            const auto &dd = comm.device(op_.p2pDst);
            if (sd.node == dd.node)
                st.nvlinkNodes.push_back(sd.node);
            else
                st.hops.push_back({op_.p2pSrc, op_.p2pDst});
            stages_.push_back(std::move(st));
            cursors_.resize(1);
            return;
        }

        activeChannels_ = comm.channels();
        const double factor = busFactor(op_.op, n);
        if (factor <= 0.0) {
            cursors_.clear(); // degenerate single-rank op
            return;
        }

        const int real_rounds = ringRounds(op_.op, n);
        const int k =
            std::max(1, std::min(real_rounds, lib_.cfg_.maxSimRounds));
        const auto per_round = static_cast<Bytes>(std::max(
            1.0, static_cast<double>(op_.bytes) * factor /
                     (static_cast<double>(k) * activeChannels_)));

        if (op_.op == CollOp::AllToAll && n > 1) {
            buildAllToAllPlan();
        } else if (op_.algo == AlgoKind::Tree &&
                   op_.op == CollOp::AllReduce && n > 1) {
            buildTreePlan(per_round, k);
        } else if (op_.algo == AlgoKind::HalvingDoubling &&
                   op_.op == CollOp::AllReduce && n > 1 &&
                   (n & (n - 1)) == 0) {
            buildHalvingDoublingPlan();
        } else {
            Stage st;
            st.rounds = k;
            st.bytesPerHopPerRound = per_round;
            st.hops = comm.boundaries();
            // Every participating node forwards each round's chunk
            // through its GPUs' HBM/NVLink plane; this is the resource
            // that caps bus bandwidth at ~362 Gbps on the paper's H800
            // nodes, whether or not the ring has co-located ranks.
            st.nvlinkNodes = comm.nodes();
            stages_.push_back(std::move(st));
        }
        cursors_.resize(static_cast<std::size_t>(activeChannels_));
    }

    /**
     * Shifted-exchange alltoall: in stage s (1..n-1) every rank i sends
     * its block for rank (i+s) mod n. This is the MoE dispatch/combine
     * traffic pattern of expert parallelism (paper Section V).
     */
    void
    buildAllToAllPlan()
    {
        const Communicator &comm = *cs_.comm;
        const int n = comm.size();
        const auto per_hop = static_cast<Bytes>(std::max(
            1.0, static_cast<double>(op_.bytes) /
                     (static_cast<double>(n) * activeChannels_)));

        for (int shift = 1; shift < n; ++shift) {
            Stage st;
            st.rounds = 1;
            st.bytesPerHopPerRound = per_hop;
            for (Rank i = 0; i < n; ++i) {
                const Rank j = static_cast<Rank>((i + shift) % n);
                if (comm.device(i).node != comm.device(j).node)
                    st.hops.push_back({i, j});
            }
            st.nvlinkNodes = comm.nodes();
            stages_.push_back(std::move(st));
        }
    }

    /**
     * Recursive halving (reduce-scatter) then doubling (allgather):
     * log2(n) pairwise-exchange stages each way, with the payload
     * halving per step. Power-of-2 rank counts only.
     */
    void
    buildHalvingDoublingPlan()
    {
        const Communicator &comm = *cs_.comm;
        const int n = comm.size();

        auto make_stage = [&](int mask, Bytes bytes_per_hop) {
            Stage st;
            st.rounds = 1;
            st.bytesPerHopPerRound = std::max<Bytes>(1, bytes_per_hop);
            for (Rank i = 0; i < n; ++i) {
                const Rank j = static_cast<Rank>(i ^ mask);
                if (comm.device(i).node != comm.device(j).node)
                    st.hops.push_back({i, j});
            }
            st.nvlinkNodes = comm.nodes();
            return st;
        };

        // Halving: exchanged payload shrinks by half each step.
        Bytes step_bytes = static_cast<Bytes>(
            static_cast<double>(op_.bytes) / (2.0 * activeChannels_));
        std::vector<Bytes> sizes;
        for (int mask = 1; mask < n; mask <<= 1) {
            sizes.push_back(step_bytes);
            stages_.push_back(make_stage(mask, step_bytes));
            step_bytes = std::max<Bytes>(1, step_bytes / 2);
        }
        // Doubling: mirror order, payload growing back.
        int idx = static_cast<int>(sizes.size()) - 1;
        for (int mask = n >> 1; mask >= 1; mask >>= 1, --idx)
            stages_.push_back(make_stage(mask, sizes[
                static_cast<std::size_t>(idx)]));
    }

    /** Reduce-then-broadcast binary tree (two pipelined stages). */
    void
    buildTreePlan(Bytes per_round, int k)
    {
        const Communicator &comm = *cs_.comm;
        const int n = comm.size();

        // The tree moves the full payload on each edge per direction,
        // i.e. 2x bytes per rank vs the ring's 2(n-1)/n; rescale per-hop
        // bytes so total traffic matches the tree's cost model.
        const double ring_factor = busFactor(CollOp::AllReduce, n);
        const auto tree_per_round = static_cast<Bytes>(std::max(
            1.0, static_cast<double>(per_round) * 1.0 / ring_factor));

        Stage up;
        up.rounds = k;
        up.bytesPerHopPerRound = tree_per_round;
        Stage down = up;

        for (Rank r = 1; r < n; ++r) {
            const Rank parent = (r - 1) / 2;
            const auto &cd = comm.device(r);
            const auto &pd = comm.device(parent);
            if (cd.node != pd.node) {
                up.hops.push_back({r, parent});
                down.hops.push_back({parent, r});
            }
        }
        // As with the ring, every node's HBM/NVLink plane is in the path.
        up.nvlinkNodes = comm.nodes();
        down.nvlinkNodes = comm.nodes();
        stages_.push_back(std::move(up));
        stages_.push_back(std::move(down));
    }

    void
    onAllRanksReady()
    {
        const Communicator &comm = *cs_.comm;
        AcclMonitor &mon = lib_.monitor_;

        mon.opStarted(comm.id(), op_.seq, startTime_);

        for (Rank r = 0; r < comm.size(); ++r) {
            RankWaitRecord w;
            w.comm = comm.id();
            w.seq = op_.seq;
            w.rank = r;
            w.recvWait =
                startTime_ - postTimes_[static_cast<std::size_t>(r)];
            mon.record(w);
            mon.heartbeat(comm.id(), r, startTime_);
        }

        if (cursors_.empty() || stages_.empty()) {
            finish(); // degenerate op (single rank)
            return;
        }
        for (int c = 0; c < activeChannels_; ++c)
            startRound(c);
    }

    void
    startRound(int channel)
    {
        ChannelCursor &cur = cursors_[static_cast<std::size_t>(channel)];
        const Stage &st = stages_[static_cast<std::size_t>(cur.stage)];

        cur.connsUsed.clear();
        cur.pending = 0;

        // NVLink stages: each forwarding GPU moves this round's chunk at
        // its per-channel share of the node's NVLink bus budget.
        const Bandwidth nvl =
            lib_.fabric_.topology().config().nvlinkBusBandwidth /
            static_cast<double>(activeChannels_);
        for (NodeId node : st.nvlinkNodes) {
            ++cur.pending;
            if (nodeCrashed(node))
                continue; // dead workers: this stage never completes
            const Duration d =
                transferTime(st.bytesPerHopPerRound, nvl);
            scheduleAfter(d, [this, channel, node] {
                onNvlinkDone(channel, node);
            });
        }

        for (const auto &hop : st.hops) {
            if (cs_.crashed.count(hop.src) ||
                cs_.crashed.count(hop.dst)) {
                // RDMA sends to/from a dead worker never get an ACK:
                // the hop stays pending forever while healthy peers
                // keep making (one round of) progress — the exact
                // differential the C4D delay/heartbeat analysis uses
                // to localize the culprit.
                ++cur.pending;
                continue;
            }
            launchHop(channel, hop, st.bytesPerHopPerRound);
        }

        if (cur.pending == 0 && !anyCrash()) {
            // Nothing to move on this channel (e.g. empty stage).
            advance(channel);
        }
    }

    bool
    nodeCrashed(NodeId node) const
    {
        for (Rank r : cs_.comm->ranksOnNode(node)) {
            if (cs_.crashed.count(r))
                return true;
        }
        return false;
    }

    bool
    anyCrash() const
    {
        return !cs_.crashed.empty();
    }

    void
    launchHop(int channel, const Communicator::Boundary &hop, Bytes bytes)
    {
        ChannelCursor &cur = cursors_[static_cast<std::size_t>(channel)];

        Connection &conn =
            lib_.getConnection(cs_, channel, hop.src, hop.dst);
        cur.connsUsed.push_back(connKey(channel, hop.src, hop.dst));

        double wsum = 0.0;
        for (double w : conn.weights)
            wsum += std::max(0.0, w);
        if (wsum <= 0.0)
            wsum = 1.0;

        for (std::size_t q = 0; q < conn.ctxs.size(); ++q) {
            const double share = std::max(0.0, conn.weights[q]) / wsum;
            const auto qbytes =
                static_cast<Bytes>(static_cast<double>(bytes) * share);
            if (qbytes <= 0)
                continue;
            ++cur.pending;

            const ConnContext &ctx = conn.ctxs[q];
            // Per-message routing policies (packet spraying) re-roll
            // the path for every chunk; everyone else keeps the QP's
            // long-lived decision.
            if (lib_.policy_->perMessageRouting())
                conn.decisions[q] = lib_.policy_->decide(ctx);
            const PathDecision &dec = conn.decisions[q];
            net::PathRequest req;
            req.srcNode = ctx.srcNode;
            req.srcNic = ctx.srcNic;
            req.dstNode = ctx.dstNode;
            req.dstNic = ctx.dstNic;
            req.txPlane = dec.txPlane;
            req.spine = dec.spine;
            req.rxPlane = dec.rxPlane;
            req.flowLabel = dec.flowLabel;

            auto weak = std::weak_ptr<bool>(alive_);
            const std::size_t qi = q;
            const auto key = connKey(channel, hop.src, hop.dst);
            FlowId fid = lib_.fabric_.startFlow(
                req, qbytes,
                [this, weak, channel, hop, key, qi](
                    const net::FlowEnd &end) {
                    if (auto p = weak.lock(); p && *p)
                        onFlowDone(channel, hop, key, qi, end);
                });
            activeFlows_.insert(fid);

            // Capture the realized path for the telemetry record.
            FlowMeta meta;
            meta.channel = channel;
            meta.hop = hop;
            meta.qp = qi;
            meta.txPlane = dec.txPlane;
            if (const net::Route *route = lib_.fabric_.flowRoute(fid)) {
                meta.spine = route->spine;
                meta.rxPlane = net::planeIndex(route->rxPlane);
            }
            pendingFlowMeta_[fid] = meta;
        }
    }

    struct FlowMeta
    {
        int channel = 0;
        Communicator::Boundary hop;
        std::size_t qp = 0;
        net::Plane txPlane = net::Plane::Left;
        std::int32_t spine = kInvalidId;
        std::int32_t rxPlane = kInvalidId;
    };
    std::unordered_map<FlowId, FlowMeta> pendingFlowMeta_;

    void
    onFlowDone(int channel, const Communicator::Boundary &hop,
               std::uint64_t key, std::size_t qp, const net::FlowEnd &end)
    {
        const Communicator &comm = *cs_.comm;
        activeFlows_.erase(end.id);

        FlowMeta meta;
        if (auto it = pendingFlowMeta_.find(end.id);
            it != pendingFlowMeta_.end()) {
            meta = it->second;
            pendingFlowMeta_.erase(it);
        }

        Connection &conn = cs_.conns.at(key);
        const ConnContext &ctx = conn.ctxs[qp];
        const PathDecision &dec = conn.decisions[qp];

        ConnRecord rec;
        rec.comm = comm.id();
        rec.seq = op_.seq;
        rec.channel = channel;
        rec.qpIndex = static_cast<int>(qp);
        rec.qp = conn.qpIds[qp];
        rec.srcRank = hop.src;
        rec.dstRank = hop.dst;
        rec.srcNode = ctx.srcNode;
        rec.dstNode = ctx.dstNode;
        rec.srcNic = ctx.srcNic;
        rec.txPlane = meta.txPlane;
        rec.spine = meta.spine;
        rec.rxPlane = meta.rxPlane;
        rec.bytes = end.bytes;
        rec.startTime = end.startTime;
        rec.endTime = end.endTime;
        lib_.monitor_.record(rec);
        lib_.monitor_.heartbeat(comm.id(), hop.src, end.endTime);
        lib_.monitor_.heartbeat(comm.id(), hop.dst, end.endTime);

        PathFeedback fb;
        fb.bytes = end.bytes;
        fb.duration = end.duration();
        fb.achievedRate = end.achievedRate();
        lib_.policy_->feedback(ctx, dec, fb);

        hopDone(channel);
    }

    void
    onNvlinkDone(int channel, NodeId node)
    {
        const Communicator &comm = *cs_.comm;
        for (Rank r : comm.ranksOnNode(node))
            lib_.monitor_.heartbeat(comm.id(), r, lib_.sim_.now());
        hopDone(channel);
    }

    void
    hopDone(int channel)
    {
        ChannelCursor &cur = cursors_[static_cast<std::size_t>(channel)];
        assert(cur.pending > 0);
        if (--cur.pending == 0)
            advance(channel);
    }

    void
    advance(int channel)
    {
        ChannelCursor &cur = cursors_[static_cast<std::size_t>(channel)];

        // Give the policy a chance to rebalance the QP groups this round
        // used (C4P's dynamic load balance hook).
        for (std::uint64_t key : cur.connsUsed) {
            Connection &conn = cs_.conns.at(key);
            lib_.policy_->rebalance(conn.ctxs, conn.decisions,
                                    conn.weights);
        }

        ++cur.round;
        if (cur.round >=
            stages_[static_cast<std::size_t>(cur.stage)].rounds) {
            cur.round = 0;
            ++cur.stage;
        }
        if (cur.stage >= static_cast<int>(stages_.size())) {
            cur.finished = true;
            if (++channelsFinished_ ==
                static_cast<int>(cursors_.size())) {
                finish();
            }
            return;
        }
        startRound(channel);
    }

    void
    finish()
    {
        const Communicator &comm = *cs_.comm;
        AcclMonitor &mon = lib_.monitor_;
        const Time end = lib_.sim_.now();

        for (Rank r = 0; r < comm.size(); ++r) {
            CollRecord rec;
            rec.comm = comm.id();
            rec.seq = op_.seq;
            rec.op = op_.op;
            rec.algo = op_.algo;
            rec.rank = r;
            rec.bytes = op_.bytes;
            rec.postTime = postTimes_[static_cast<std::size_t>(r)];
            rec.startTime = startTime_;
            rec.endTime = end;
            mon.record(rec);
            mon.heartbeat(comm.id(), r, end);
        }
        mon.opFinished(comm.id(), op_.seq, end);

        CollectiveResult res;
        res.comm = comm.id();
        res.seq = op_.seq;
        res.op = op_.op;
        res.algo = op_.algo;
        res.bytes = op_.bytes;
        res.nranks = comm.size();
        res.postTime = minPost_;
        res.startTime = startTime_;
        res.endTime = end;

        CollectiveCallback done = std::move(op_.done);
        lib_.finishExec(cs_); // destroys *this; run callback after
        if (done)
            done(res);
    }
};

Accl::Accl(Simulator &sim, net::Fabric &fabric, AcclConfig cfg,
           std::uint64_t seed)
    : sim_(sim), fabric_(fabric), cfg_(cfg), rng_(seed),
      monitor_(cfg.monitoring, cfg.monitorCapacity),
      baselinePolicy_(rng_()), policy_(&baselinePolicy_)
{
    if (cfg_.defaultChannels < 1 || cfg_.qpsPerConnection < 1 ||
        cfg_.maxSimRounds < 1) {
        throw std::invalid_argument("AcclConfig fields must be >= 1");
    }
}

Accl::~Accl() = default;

CommId
Accl::createCommunicator(JobId job, std::vector<DeviceInfo> devices,
                         int channels)
{
    const int ch = channels > 0 ? channels : cfg_.defaultChannels;
    const CommId id = nextCommId_++;
    auto cs = std::make_unique<CommState>();
    cs->comm = std::make_unique<Communicator>(id, job, std::move(devices),
                                              ch);

    CommRecord rec;
    rec.when = sim_.now();
    rec.comm = id;
    rec.job = job;
    rec.nranks = cs->comm->size();
    rec.channels = ch;
    rec.created = true;
    for (const auto &d : cs->comm->devices())
        rec.rankNodes.push_back(d.node);
    monitor_.record(rec);

    comms_.emplace(id, std::move(cs));
    return id;
}

void
Accl::destroyCommunicator(CommId comm)
{
    auto it = comms_.find(comm);
    if (it == comms_.end())
        return;
    CommState &cs = *it->second;

    CommRecord rec;
    rec.when = sim_.now();
    rec.comm = comm;
    rec.job = cs.comm->job();
    rec.nranks = cs.comm->size();
    rec.channels = cs.comm->channels();
    rec.created = false;
    monitor_.record(rec);

    releaseConnections(cs);
    monitor_.commClosed(comm);
    comms_.erase(it); // Exec destructor aborts in-flight flows
}

bool
Accl::hasCommunicator(CommId comm) const
{
    return comms_.count(comm) > 0;
}

const Communicator &
Accl::communicator(CommId comm) const
{
    return *state(comm).comm;
}

void
Accl::setPathPolicy(PathPolicy *policy)
{
    policy_ = policy != nullptr ? policy : &baselinePolicy_;
}

Accl::CommState &
Accl::state(CommId comm)
{
    auto it = comms_.find(comm);
    if (it == comms_.end())
        throw std::out_of_range("unknown communicator");
    return *it->second;
}

const Accl::CommState &
Accl::state(CommId comm) const
{
    auto it = comms_.find(comm);
    if (it == comms_.end())
        throw std::out_of_range("unknown communicator");
    return *it->second;
}

Accl::Connection &
Accl::getConnection(CommState &cs, int channel, Rank src, Rank dst)
{
    const std::uint64_t key = connKey(channel, src, dst);
    auto it = cs.conns.find(key);
    if (it != cs.conns.end())
        return it->second;

    const Communicator &comm = *cs.comm;
    const DeviceInfo &sd = comm.device(src);
    const DeviceInfo &dd = comm.device(dst);

    // Rail selection: a boundary's traffic departs the boundary GPU's
    // rail-affine NIC and lands on the receiving GPU's NIC. All channels
    // share that bonded NIC pair (one plane each by default), which is
    // the dual-port arrangement whose RX imbalance Fig. 9 studies.
    const NicId src_nic = sd.nic;
    const NicId dst_nic = dd.nic;

    Connection conn;
    for (int q = 0; q < cfg_.qpsPerConnection; ++q) {
        ConnContext ctx;
        ctx.job = comm.job();
        ctx.comm = comm.id();
        ctx.channel = channel;
        ctx.qpIndex = q;
        ctx.srcNode = sd.node;
        ctx.srcNic = src_nic;
        ctx.dstNode = dd.node;
        ctx.dstNic = dst_nic;
        conn.ctxs.push_back(ctx);
        conn.decisions.push_back(policy_->decide(ctx));
        conn.weights.push_back(1.0);
        conn.qpIds.push_back(nextQpId_++);
    }
    return cs.conns.emplace(key, std::move(conn)).first->second;
}

void
Accl::releaseConnections(CommState &cs)
{
    for (auto &[key, conn] : cs.conns) {
        for (std::size_t q = 0; q < conn.ctxs.size(); ++q)
            policy_->release(conn.ctxs[q], conn.decisions[q]);
    }
    cs.conns.clear();
}

CollSeq
Accl::postCollective(CommId comm, CollOp op, Bytes bytesPerRank,
                     CollectiveCallback done,
                     std::vector<Duration> rankPostDelays, AlgoKind algo)
{
    assert(bytesPerRank > 0);
    assert(op != CollOp::SendRecv && "use sendRecv()");
    CommState &cs = state(comm);

    PendingOp p;
    p.seq = cs.nextSeq++;
    p.op = op;
    p.algo = algo;
    p.bytes = bytesPerRank;
    p.delays = std::move(rankPostDelays);
    p.done = std::move(done);
    p.postedAt = sim_.now();
    const CollSeq seq = p.seq;
    cs.queue.push_back(std::move(p));
    ++posted_;

    startNext(cs);
    return seq;
}

CollSeq
Accl::sendRecv(CommId comm, Rank src, Rank dst, Bytes bytes,
               CollectiveCallback done)
{
    assert(bytes > 0);
    CommState &cs = state(comm);
    assert(src >= 0 && src < cs.comm->size());
    assert(dst >= 0 && dst < cs.comm->size());

    PendingOp p;
    p.seq = cs.nextSeq++;
    p.op = CollOp::SendRecv;
    p.bytes = bytes;
    p.done = std::move(done);
    p.postedAt = sim_.now();
    p.p2pSrc = src;
    p.p2pDst = dst;
    const CollSeq seq = p.seq;
    cs.queue.push_back(std::move(p));
    ++posted_;

    startNext(cs);
    return seq;
}

void
Accl::crashRank(CommId comm, Rank rank)
{
    CommState &cs = state(comm);
    assert(rank >= 0 && rank < cs.comm->size());
    cs.crashed.insert(rank);
}

bool
Accl::rankCrashed(CommId comm, Rank rank) const
{
    return state(comm).crashed.count(rank) > 0;
}

void
Accl::startNext(CommState &cs)
{
    if (cs.active || cs.queue.empty())
        return;
    PendingOp op = std::move(cs.queue.front());
    cs.queue.pop_front();
    cs.active = std::make_unique<Exec>(*this, cs, std::move(op));
    cs.active->begin();
}

void
Accl::finishExec(CommState &cs)
{
    ++completed_;
    cs.active.reset();
    startNext(cs);
}

} // namespace c4::accl
