/**
 * @file
 * The seam between ACCL's transport layer and traffic engineering.
 *
 * In the paper, ACCL is "enhanced to support issuing path allocation
 * requests for communicating workers and set the source port accordingly"
 * (Section III-B, Fig. 8). PathPolicy is that enhancement point: when the
 * transport creates a QP it asks the policy for a path decision; every
 * message completion is fed back so adaptive policies (C4P's dynamic load
 * balance) can rebalance QP weights and re-pin paths.
 *
 * The baseline policy reproduces stock behaviour: the bonding driver
 * sprays QPs across the NIC's two physical ports and ECMP hashes pick the
 * spine and the landing plane.
 */

#ifndef C4_ACCL_PATH_POLICY_H
#define C4_ACCL_PATH_POLICY_H

#include <cstdint>

#include "common/random.h"
#include "common/types.h"
#include "net/topology.h"

namespace c4::accl {

/** Identity of one QP (transport connection) asking for a path. */
struct ConnContext
{
    JobId job = kInvalidId;
    CommId comm = kInvalidId;
    int channel = 0;
    int qpIndex = 0; ///< index within the connection's QP group
    NodeId srcNode = kInvalidId;
    NicId srcNic = kInvalidId;
    NodeId dstNode = kInvalidId;
    NicId dstNic = kInvalidId;
};

/**
 * A path decision for one QP. Unpinned fields (kInvalidId) defer to ECMP
 * hashing in the fabric; flowLabel models the RDMA source port the
 * decision is realized through.
 */
struct PathDecision
{
    net::Plane txPlane = net::Plane::Left;
    std::int32_t spine = kInvalidId;
    std::int32_t rxPlane = kInvalidId;
    std::uint32_t flowLabel = 0;
};

/** Message-completion feedback handed to the policy. */
struct PathFeedback
{
    Bytes bytes = 0;
    Duration duration = 0;
    Bandwidth achievedRate = 0.0;
};

/**
 * Strategy interface for QP path selection.
 *
 * Implementations must be deterministic given their own RNG streams.
 * decide() is called once per QP at connection setup; feedback() after
 * every message on that QP; rebalance() between collective rounds with
 * the connection's QP group so the policy may adjust traffic weights
 * (returning true if weights changed). release() on teardown.
 */
class PathPolicy
{
  public:
    virtual ~PathPolicy() = default;

    virtual PathDecision decide(const ConnContext &ctx) = 0;

    /**
     * When true, the transport calls decide() for every message instead
     * of once per QP — per-packet/per-message load balancing, i.e. the
     * "adaptive routing / packet spraying" alternative the paper's
     * Related Work discusses. Default: paths are per-QP (RoCE keeps a
     * flow on one path to avoid reordering).
     */
    virtual bool perMessageRouting() const { return false; }

    virtual void
    feedback(const ConnContext &ctx, const PathDecision &decision,
             const PathFeedback &fb)
    {
        (void)ctx;
        (void)decision;
        (void)fb;
    }

    /**
     * Give the policy a chance to re-weight / re-pin a QP group.
     * @param ctxs per-QP contexts (same connection, ascending qpIndex)
     * @param decisions per-QP decisions; may be mutated (re-pinning)
     * @param weights per-QP traffic shares; may be mutated (must stay
     *        non-negative, sum > 0)
     * @return true if anything changed
     */
    virtual bool
    rebalance(const std::vector<ConnContext> &ctxs,
              std::vector<PathDecision> &decisions,
              std::vector<double> &weights)
    {
        (void)ctxs;
        (void)decisions;
        (void)weights;
        return false;
    }

    virtual void
    release(const ConnContext &ctx, const PathDecision &decision)
    {
        (void)ctx;
        (void)decision;
    }
};

/**
 * Stock behaviour without C4P: bonding spreads QPs over the two physical
 * ports round-robin; spine and landing plane are left to ECMP with a
 * random source port drawn at QP creation.
 */
class EcmpPathPolicy : public PathPolicy
{
  public:
    explicit EcmpPathPolicy(std::uint64_t seed = 0xECB0ECB0ull);

    PathDecision decide(const ConnContext &ctx) override;

  private:
    Rng rng_;
};

/**
 * Packet-spraying baseline (paper Section V Related Work): every message
 * re-rolls its path, spreading load statistically instead of planning
 * it. Averages out collisions across rounds, but any given round can
 * still collide — and, as the paper argues, its "efficiency can be
 * compromised by the flows that are deterministically routed" next to
 * it. Included as the third point of comparison for the ablations.
 */
class SprayPathPolicy : public EcmpPathPolicy
{
  public:
    explicit SprayPathPolicy(std::uint64_t seed = 0x5B4A45ull)
        : EcmpPathPolicy(seed)
    {
    }

    bool perMessageRouting() const override { return true; }
};

} // namespace c4::accl

#endif // C4_ACCL_PATH_POLICY_H
