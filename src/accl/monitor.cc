#include "accl/monitor.h"

#include "common/csv.h"

namespace c4::accl {

AcclMonitor::AcclMonitor(bool enabled, std::size_t capacityPerStream)
    : enabled_(enabled), capacity_(capacityPerStream)
{
}

void
AcclMonitor::record(const CommRecord &r)
{
    push(comm_, r);
}

void
AcclMonitor::record(const CollRecord &r)
{
    if (enabled_)
        ++totalColl_;
    push(coll_, r);
}

void
AcclMonitor::record(const RankWaitRecord &r)
{
    push(rankWait_, r);
}

void
AcclMonitor::record(const ConnRecord &r)
{
    if (enabled_)
        ++totalConn_;
    push(conn_, r);
}

void
AcclMonitor::heartbeat(CommId comm, Rank rank, Time when)
{
    if (!enabled_)
        return;
    heartbeats_[key(comm, rank)] = when;
}

Time
AcclMonitor::lastHeartbeat(CommId comm, Rank rank) const
{
    auto it = heartbeats_.find(key(comm, rank));
    return it == heartbeats_.end() ? kTimeNever : it->second;
}

void
AcclMonitor::opPosted(CommId comm, CollSeq seq, CollOp op, Bytes bytes,
                      Time when)
{
    if (!enabled_)
        return;
    OpProgress p;
    p.comm = comm;
    p.seq = seq;
    p.op = op;
    p.bytes = bytes;
    p.postTime = when;
    currentOps_[comm] = p;
}

void
AcclMonitor::opStarted(CommId comm, CollSeq seq, Time when)
{
    if (!enabled_)
        return;
    auto it = currentOps_.find(comm);
    if (it != currentOps_.end() && it->second.seq == seq)
        it->second.startTime = when;
}

void
AcclMonitor::opFinished(CommId comm, CollSeq seq, Time when)
{
    if (!enabled_)
        return;
    auto it = currentOps_.find(comm);
    if (it != currentOps_.end() && it->second.seq == seq)
        it->second.endTime = when;
}

void
AcclMonitor::commClosed(CommId comm)
{
    currentOps_.erase(comm);
    for (auto it = heartbeats_.begin(); it != heartbeats_.end();) {
        if (static_cast<CommId>(it->first >> 20) == comm)
            it = heartbeats_.erase(it);
        else
            ++it;
    }
}

const OpProgress *
AcclMonitor::currentOp(CommId comm) const
{
    auto it = currentOps_.find(comm);
    return it == currentOps_.end() ? nullptr : &it->second;
}

namespace {

template <typename T>
std::vector<T>
drainQueue(std::deque<T> &q)
{
    std::vector<T> out(q.begin(), q.end());
    q.clear();
    return out;
}

} // namespace

std::vector<CommRecord>
AcclMonitor::drainComm()
{
    return drainQueue(comm_);
}

std::vector<CollRecord>
AcclMonitor::drainColl()
{
    return drainQueue(coll_);
}

std::vector<RankWaitRecord>
AcclMonitor::drainRankWait()
{
    return drainQueue(rankWait_);
}

std::vector<ConnRecord>
AcclMonitor::drainConn()
{
    return drainQueue(conn_);
}

void
AcclMonitor::dumpCommCsv(std::ostream &out) const
{
    CsvWriter w(out);
    w.header({"time_ns", "comm", "job", "nranks", "channels", "event"});
    for (const auto &r : comm_) {
        w.cell(r.when)
            .cell(r.comm)
            .cell(r.job)
            .cell(r.nranks)
            .cell(r.channels)
            .cell(r.created ? "create" : "destroy");
        w.endRow();
    }
}

void
AcclMonitor::dumpCollCsv(std::ostream &out) const
{
    CsvWriter w(out);
    w.header({"comm", "seq", "op", "algo", "rank", "bytes", "post_ns",
              "start_ns", "end_ns"});
    for (const auto &r : coll_) {
        w.cell(r.comm)
            .cell(static_cast<std::uint64_t>(r.seq))
            .cell(collOpName(r.op))
            .cell(algoKindName(r.algo))
            .cell(r.rank)
            .cell(r.bytes)
            .cell(r.postTime)
            .cell(r.startTime)
            .cell(r.endTime);
        w.endRow();
    }
}

void
AcclMonitor::dumpRankCsv(std::ostream &out) const
{
    CsvWriter w(out);
    w.header({"comm", "seq", "rank", "recv_wait_ns"});
    for (const auto &r : rankWait_) {
        w.cell(r.comm)
            .cell(static_cast<std::uint64_t>(r.seq))
            .cell(r.rank)
            .cell(r.recvWait);
        w.endRow();
    }
}

void
AcclMonitor::dumpConnCsv(std::ostream &out) const
{
    CsvWriter w(out);
    w.header({"comm", "seq", "channel", "qp_index", "qp", "src_rank",
              "dst_rank", "src_node", "dst_node", "src_nic", "tx_plane",
              "spine", "rx_plane", "bytes", "start_ns", "end_ns"});
    for (const auto &r : conn_) {
        w.cell(r.comm)
            .cell(static_cast<std::uint64_t>(r.seq))
            .cell(r.channel)
            .cell(r.qpIndex)
            .cell(static_cast<std::int64_t>(r.qp))
            .cell(r.srcRank)
            .cell(r.dstRank)
            .cell(r.srcNode)
            .cell(r.dstNode)
            .cell(r.srcNic)
            .cell(net::planeName(r.txPlane))
            .cell(r.spine)
            .cell(r.rxPlane)
            .cell(r.bytes)
            .cell(r.startTime)
            .cell(r.endTime);
        w.endRow();
    }
}

} // namespace c4::accl
