/**
 * @file
 * Collective-operation vocabulary and bandwidth accounting.
 *
 * Bus-bandwidth bookkeeping follows nccl-tests: for an operation moving S
 * bytes per rank in time T, algbw = S*8/T and busbw = algbw * busFactor,
 * where busFactor depends on the operation and rank count (2(n-1)/n for
 * allreduce). The paper reports busbw throughout its C4P evaluation.
 */

#ifndef C4_ACCL_COLLECTIVE_H
#define C4_ACCL_COLLECTIVE_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace c4::accl {

/** Collective operations supported by the simulated library. */
enum class CollOp : std::int8_t {
    AllReduce,
    AllGather,
    ReduceScatter,
    Broadcast,
    AllToAll, ///< expert-parallel token shuffles (MoE dispatch/combine)
    SendRecv, ///< point-to-point (pipeline parallelism stages)
};

const char *collOpName(CollOp op);

/** Algorithm family used to realize a collective. */
enum class AlgoKind : std::int8_t {
    Ring,            ///< ring pipeline; bandwidth optimal, large msgs
    Tree,            ///< binary reduce+broadcast tree; latency optimal
    HalvingDoubling, ///< recursive halving/doubling; power-of-2 ranks
};

const char *algoKindName(AlgoKind algo);

/**
 * Traffic each rank must move through its slowest serial resource,
 * as a multiple of the payload size S (the nccl-tests "bus factor").
 */
double busFactor(CollOp op, int nranks);

/**
 * Number of ring rounds the operation takes with one chunk in flight
 * (allreduce: 2(n-1); gather/scatter: n-1; sendrecv: 1).
 */
int ringRounds(CollOp op, int nranks);

/** Convert an operation duration to algorithm bandwidth in bits/s. */
Bandwidth algBandwidth(Bytes bytes, Duration elapsed);

/** Convert an operation duration to bus bandwidth in bits/s. */
Bandwidth busBandwidth(CollOp op, int nranks, Bytes bytes,
                       Duration elapsed);

/** Identifier of one collective operation instance on a communicator. */
using CollSeq = std::uint64_t;

} // namespace c4::accl

#endif // C4_ACCL_COLLECTIVE_H
