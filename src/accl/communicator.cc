#include "accl/communicator.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace c4::accl {

Communicator::Communicator(CommId id, JobId job,
                           std::vector<DeviceInfo> devices, int channels)
    : id_(id), job_(job), devices_(std::move(devices)), channels_(channels)
{
    if (devices_.empty())
        throw std::invalid_argument("Communicator needs >= 1 device");
    if (channels_ < 1)
        throw std::invalid_argument("Communicator needs >= 1 channel");

    std::unordered_map<NodeId, int> per_node;
    for (const auto &d : devices_) {
        if (per_node.find(d.node) == per_node.end())
            nodes_.push_back(d.node);
        ++per_node[d.node];
    }
    singleNode_ = nodes_.size() == 1;
    for (const auto &[node, count] : per_node)
        maxRanksPerNode_ = std::max(maxRanksPerNode_, count);

    if (!singleNode_) {
        for (Rank r = 0; r < size(); ++r) {
            const Rank nr = nextRank(r);
            if (devices_[static_cast<std::size_t>(r)].node !=
                devices_[static_cast<std::size_t>(nr)].node) {
                boundaries_.push_back(Boundary{r, nr});
            }
        }
    }
}

const DeviceInfo &
Communicator::device(Rank r) const
{
    assert(r >= 0 && r < size());
    return devices_[static_cast<std::size_t>(r)];
}

std::vector<Rank>
Communicator::ranksOnNode(NodeId node) const
{
    std::vector<Rank> out;
    for (Rank r = 0; r < size(); ++r) {
        if (devices_[static_cast<std::size_t>(r)].node == node)
            out.push_back(r);
    }
    return out;
}

std::string
Communicator::str() const
{
    std::ostringstream os;
    os << "comm" << id_ << "[job=" << job_ << " ranks=" << size()
       << " nodes=" << nodes_.size() << " channels=" << channels_
       << " boundaries=" << boundaries_.size() << "]";
    return os.str();
}

} // namespace c4::accl
