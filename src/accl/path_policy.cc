#include "accl/path_policy.h"

#include <vector>

namespace c4::accl {

EcmpPathPolicy::EcmpPathPolicy(std::uint64_t seed) : rng_(seed)
{
}

PathDecision
EcmpPathPolicy::decide(const ConnContext &ctx)
{
    PathDecision d;
    // The bonding driver alternates QPs over the two physical ports;
    // channels sharing a NIC land on alternating planes as well.
    d.txPlane = net::planeFromIndex((ctx.channel + ctx.qpIndex) %
                                    net::kNumPlanes);
    // Spine / landing plane left to the switches' ECMP hash; the random
    // flowLabel stands in for the source port drawn at QP creation.
    d.spine = kInvalidId;
    d.rxPlane = kInvalidId;
    d.flowLabel = static_cast<std::uint32_t>(rng_());
    return d;
}

} // namespace c4::accl
