/**
 * @file
 * ACCL's runtime monitoring enhancement (paper Fig. 5/6).
 *
 * The paper instruments the bottom three ACCL layers and emits four
 * time-series: communicator stats, collective stats, per-rank stats
 * (receiver wait times), and per-connection/QP stats (message completion
 * times). C4 agents (C4a) periodically drain these records and forward
 * them to the C4D master; the same records can be dumped as the CSV files
 * named in the paper (comm-stats.csv, coll-stats.csv, rank-stats.csv,
 * conn-stats.csv).
 */

#ifndef C4_ACCL_MONITOR_H
#define C4_ACCL_MONITOR_H

#include <cstdint>
#include <deque>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "accl/collective.h"
#include "common/types.h"
#include "net/topology.h"

namespace c4::accl {

/** Communicator-layer record: one per communicator creation/destruction. */
struct CommRecord
{
    Time when = 0;
    CommId comm = kInvalidId;
    JobId job = kInvalidId;
    int nranks = 0;
    int channels = 0;
    bool created = true; ///< false on destruction

    /** Node hosting each rank (the "involved devices" of paper Fig. 6). */
    std::vector<NodeId> rankNodes;
};

/** Operation-layer record: one per (collective, rank). */
struct CollRecord
{
    CommId comm = kInvalidId;
    CollSeq seq = 0;
    CollOp op = CollOp::AllReduce;
    AlgoKind algo = AlgoKind::Ring;
    Rank rank = kInvalidId;
    Bytes bytes = 0;     ///< payload per rank
    Time postTime = 0;   ///< when the rank entered the collective
    Time startTime = 0;  ///< when the group's data movement began
    Time endTime = 0;    ///< completion (kTimeNever while in flight)

    bool finished() const { return endTime != kTimeNever; }
};

/**
 * Rank-layer record: the receiver-driven wait each rank imposed on the
 * group (paper: "by comparing the wait time of receivers, we can pinpoint
 * the ranks that are experiencing non-communication slows").
 */
struct RankWaitRecord
{
    CommId comm = kInvalidId;
    CollSeq seq = 0;
    Rank rank = kInvalidId;
    Duration recvWait = 0; ///< how long this rank waited for the group
};

/** Transport-layer record: one per message (QP flow) completion. */
struct ConnRecord
{
    CommId comm = kInvalidId;
    CollSeq seq = 0;
    int channel = 0;
    int qpIndex = 0;
    QpId qp = kInvalidId;
    Rank srcRank = kInvalidId;
    Rank dstRank = kInvalidId;
    NodeId srcNode = kInvalidId;
    NodeId dstNode = kInvalidId;
    NicId srcNic = kInvalidId;
    net::Plane txPlane = net::Plane::Left;
    std::int32_t spine = kInvalidId;
    std::int32_t rxPlane = kInvalidId;
    Bytes bytes = 0;
    Time startTime = 0;
    Time endTime = 0;

    Duration duration() const { return endTime - startTime; }

    Bandwidth
    achievedRate() const
    {
        const Duration d = duration();
        return d > 0
                   ? static_cast<double>(bytes) * 8.0 / toSeconds(d)
                   : 0.0;
    }
};

/**
 * Progress of one collective operation, tracked from posting through
 * start (all ranks entered) to completion. The paper's C4D relies on
 * exactly this: "we track the startup and completion of specific
 * collective operations and assign each operation a sequence".
 */
struct OpProgress
{
    CommId comm = kInvalidId;
    CollSeq seq = 0;
    CollOp op = CollOp::AllReduce;
    Bytes bytes = 0;
    Time postTime = kTimeNever;
    Time startTime = kTimeNever;
    Time endTime = kTimeNever;

    bool posted() const { return postTime != kTimeNever; }
    bool started() const { return startTime != kTimeNever; }
    bool finished() const { return endTime != kTimeNever; }
};

/**
 * In-memory sink for all four record streams plus per-rank progress
 * heartbeats (used by hang detection). Draining consumes records;
 * capacity is bounded so detached (unmonitored) runs don't accumulate.
 */
class AcclMonitor
{
  public:
    /**
     * @param enabled when false, all record() calls are dropped (keeps
     *        baseline runs cheap)
     * @param capacityPerStream max retained records per stream; oldest
     *        are discarded first
     */
    explicit AcclMonitor(bool enabled = true,
                         std::size_t capacityPerStream = 1u << 20);

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** @name Recording (called by the library) @{ */
    void record(const CommRecord &r);
    void record(const CollRecord &r);
    void record(const RankWaitRecord &r);
    void record(const ConnRecord &r);

    /** Note forward progress of a rank (any message/round completion). */
    void heartbeat(CommId comm, Rank rank, Time when);

    /** @name Operation progress tracking @{ */
    void opPosted(CommId comm, CollSeq seq, CollOp op, Bytes bytes,
                  Time when);
    void opStarted(CommId comm, CollSeq seq, Time when);
    void opFinished(CommId comm, CollSeq seq, Time when);
    void commClosed(CommId comm);
    /** @} */
    /** @} */

    /**
     * Progress of the most recent operation on a communicator, or
     * nullptr if none was ever posted (or the comm was closed).
     */
    const OpProgress *currentOp(CommId comm) const;

    /** @name Draining (called by C4 agents); consumes the records @{ */
    std::vector<CommRecord> drainComm();
    std::vector<CollRecord> drainColl();
    std::vector<RankWaitRecord> drainRankWait();
    std::vector<ConnRecord> drainConn();
    /** @} */

    /** Last observed progress time per (comm, rank); kTimeNever if none. */
    Time lastHeartbeat(CommId comm, Rank rank) const;

    /** @name Lifetime counters (not consumed by draining) @{ */
    std::uint64_t totalConnRecords() const { return totalConn_; }
    std::uint64_t totalCollRecords() const { return totalColl_; }
    std::uint64_t droppedRecords() const { return dropped_; }
    /** @} */

    /** @name CSV dumps in the paper's file shapes (Fig. 5) @{ */
    void dumpCommCsv(std::ostream &out) const;
    void dumpCollCsv(std::ostream &out) const;
    void dumpRankCsv(std::ostream &out) const;
    void dumpConnCsv(std::ostream &out) const;
    /** @} */

  private:
    bool enabled_;
    std::size_t capacity_;

    std::deque<CommRecord> comm_;
    std::deque<CollRecord> coll_;
    std::deque<RankWaitRecord> rankWait_;
    std::deque<ConnRecord> conn_;

    // (comm << 20 | rank) -> last progress time
    std::unordered_map<std::uint64_t, Time> heartbeats_;

    // comm -> progress of its most recent operation
    std::unordered_map<CommId, OpProgress> currentOps_;

    std::uint64_t totalConn_ = 0;
    std::uint64_t totalColl_ = 0;
    std::uint64_t dropped_ = 0;

    template <typename T>
    void
    push(std::deque<T> &q, const T &r)
    {
        if (!enabled_)
            return;
        if (q.size() >= capacity_) {
            q.pop_front();
            ++dropped_;
        }
        q.push_back(r);
    }

    static std::uint64_t
    key(CommId comm, Rank rank)
    {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(comm))
                << 20) |
               static_cast<std::uint32_t>(rank);
    }
};

} // namespace c4::accl

#endif // C4_ACCL_MONITOR_H
