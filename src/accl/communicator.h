/**
 * @file
 * Communicators: the groups of devices a collective runs over, mirroring
 * ACCL's communicator layer (paper Fig. 6: communicator IDs, involved
 * devices, device ranks).
 */

#ifndef C4_ACCL_COMMUNICATOR_H
#define C4_ACCL_COMMUNICATOR_H

#include <string>
#include <vector>

#include "common/types.h"

namespace c4::accl {

/** Physical placement of one rank. */
struct DeviceInfo
{
    NodeId node = kInvalidId;
    GpuId gpu = kInvalidId; ///< local GPU index on the node
    NicId nic = kInvalidId; ///< rail-affine NIC (usually == gpu)
};

/**
 * An ordered set of devices participating in collectives together.
 * Rank order defines the ring order; callers are expected to pass
 * topology-sorted device lists (consecutive ranks co-located), exactly
 * as the framework's topology-aware scheduler would (paper III-B).
 */
class Communicator
{
  public:
    /**
     * @param id unique communicator id
     * @param job owning training job (kInvalidId for benchmarks)
     * @param devices placement of each rank, in ring order
     * @param channels parallel channel count (QP groups per connection)
     */
    Communicator(CommId id, JobId job, std::vector<DeviceInfo> devices,
                 int channels);

    CommId id() const { return id_; }
    JobId job() const { return job_; }
    int size() const { return static_cast<int>(devices_.size()); }
    int channels() const { return channels_; }

    const DeviceInfo &device(Rank r) const;
    const std::vector<DeviceInfo> &devices() const { return devices_; }

    Rank
    nextRank(Rank r) const
    {
        return static_cast<Rank>((r + 1) % size());
    }

    Rank
    prevRank(Rank r) const
    {
        return static_cast<Rank>((r + size() - 1) % size());
    }

    /** True if the whole communicator lives on a single node. */
    bool singleNode() const { return singleNode_; }

    /** Ranks hosted on @p node, in rank order. */
    std::vector<Rank> ranksOnNode(NodeId node) const;

    /** Distinct nodes hosting at least one rank, in first-rank order. */
    const std::vector<NodeId> &nodes() const { return nodes_; }

    /** Max number of co-located consecutive ranks on any node. */
    int maxRanksPerNode() const { return maxRanksPerNode_; }

    /**
     * Ring boundaries: (rank, nextRank) pairs whose devices live on
     * different nodes. These are the connections that generate fabric
     * traffic; everything else rides NVLink.
     */
    struct Boundary
    {
        Rank src = kInvalidId;
        Rank dst = kInvalidId;
    };
    const std::vector<Boundary> &boundaries() const { return boundaries_; }

    std::string str() const;

  private:
    CommId id_;
    JobId job_;
    std::vector<DeviceInfo> devices_;
    int channels_;
    bool singleNode_ = true;
    int maxRanksPerNode_ = 0;
    std::vector<NodeId> nodes_;
    std::vector<Boundary> boundaries_;
};

} // namespace c4::accl

#endif // C4_ACCL_COMMUNICATOR_H
