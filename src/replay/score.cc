#include "replay/score.h"

#include <algorithm>
#include <cstdio>

namespace c4::replay {

namespace {

bool
culpritMatches(const IncidentLabel &label,
               const c4d::IncidentVerdict &v)
{
    if (label.culpritNode >= 0)
        return v.node == label.culpritNode;
    if (!label.culpritLinks.empty())
        return std::find(label.culpritLinks.begin(),
                         label.culpritLinks.end(),
                         v.link) != label.culpritLinks.end();
    return true; // kind-only label (e.g. unlocalizable crash)
}

} // namespace

IncidentScore
scoreIncident(const Incident &incident,
              const std::vector<c4d::IncidentVerdict> &verdicts)
{
    const IncidentLabel &label = incident.label;
    IncidentScore s;
    s.name = incident.name;
    s.labelKind = label.rootCause;
    s.verdicts = static_cast<int>(verdicts.size());

    std::size_t matched = verdicts.size(); // sentinel: none
    if (label.rootCause != "none") {
        c4d::IncidentKind want;
        const bool known =
            c4d::incidentKindFromName(label.rootCause, want);
        for (std::size_t i = 0; known && i < verdicts.size(); ++i) {
            const c4d::IncidentVerdict &v = verdicts[i];
            if (v.kind == want && v.detectedAt >= label.tInject &&
                culpritMatches(label, v)) {
                matched = i;
                break;
            }
        }
        s.truePositive = matched < verdicts.size();
        s.falseNegative = !s.truePositive;
        if (s.truePositive) {
            s.ttdSeconds = toSeconds(verdicts[matched].detectedAt -
                                     label.tInject);
        }
    }
    s.falsePositives =
        s.verdicts - (s.truePositive ? 1 : 0);

    if (label.rootCause == "none")
        s.outcome = s.falsePositives == 0 ? "clean" : "noisy";
    else if (s.truePositive)
        s.outcome = s.falsePositives == 0 ? "detected" : "noisy";
    else
        s.outcome = "missed";
    return s;
}

ScoreReport
aggregateScores(std::vector<IncidentScore> scores)
{
    ScoreReport r;
    double ttdSum = 0.0;
    for (const IncidentScore &s : scores) {
        if (s.truePositive) {
            ++r.tp;
            ttdSum += s.ttdSeconds;
            r.maxTtdSeconds = std::max(r.maxTtdSeconds, s.ttdSeconds);
        }
        if (s.falseNegative)
            ++r.fn;
        r.fp += s.falsePositives;
    }
    r.precision =
        r.tp + r.fp > 0
            ? static_cast<double>(r.tp) / static_cast<double>(r.tp + r.fp)
            : 1.0;
    r.recall =
        r.tp + r.fn > 0
            ? static_cast<double>(r.tp) / static_cast<double>(r.tp + r.fn)
            : 1.0;
    r.meanTtdSeconds = r.tp > 0 ? ttdSum / r.tp : 0.0;
    r.incidents = std::move(scores);
    return r;
}

std::string
formatScoreReport(const ScoreReport &report)
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "%-32s %-18s %8s %8s %10s\n",
                  "incident", "label", "verdicts", "outcome", "ttd_s");
    out += line;
    for (const IncidentScore &s : report.incidents) {
        char ttd[32];
        if (s.truePositive)
            std::snprintf(ttd, sizeof(ttd), "%.3f", s.ttdSeconds);
        else
            std::snprintf(ttd, sizeof(ttd), "-");
        std::snprintf(line, sizeof(line), "%-32s %-18s %8d %8s %10s\n",
                      s.name.c_str(), s.labelKind.c_str(), s.verdicts,
                      s.outcome.c_str(), ttd);
        out += line;
    }
    std::snprintf(line, sizeof(line),
                  "\naggregate: tp=%d fp=%d fn=%d precision=%.3f "
                  "recall=%.3f ttd_mean_s=%.3f ttd_max_s=%.3f\n",
                  report.tp, report.fp, report.fn, report.precision,
                  report.recall, report.meanTtdSeconds,
                  report.maxTtdSeconds);
    out += line;
    return out;
}

} // namespace c4::replay
