/**
 * @file
 * Corpus capture: the built-in incident scenarios and the harness that
 * simulates one of them with tracing attached, producing the labeled
 * trace the replay gate commits under tests/incidents/.
 *
 * Each incident is a small declarative ScenarioSpec (scenario/spec.h)
 * plus its ground-truth label. Captures are deterministic: the spec,
 * the seed, and the recording filter fully determine the trace bytes,
 * so `c4replay capture` regenerates the committed corpus bit-for-bit.
 */

#ifndef C4_REPLAY_CAPTURE_H
#define C4_REPLAY_CAPTURE_H

#include <string>
#include <vector>

#include "replay/corpus.h"
#include "trace/trace.h"

namespace c4::replay {

/** One freshly-simulated incident: finished label + recorded events. */
struct CaptureResult
{
    IncidentLabel label;
    std::vector<trace::Event> events;
};

/**
 * The recording filter captures use: every kind except the fabric
 * recompute begin/end spans, which dominate trace volume (one pair per
 * re-filled flow set) and carry nothing the incident analyzer reads.
 */
trace::KindMask captureKindMask();

/** Names of the built-in incidents, in corpus (sorted) order. */
std::vector<std::string> captureIncidentNames();

/**
 * Simulate incident @p name and return its label and event trace.
 * Labels whose culprit is job-relative (the fault spec names a job
 * placement slot, not a node) are resolved from the recorded
 * FaultInjected event, since placement happens at run time.
 * @throws std::invalid_argument for an unknown name.
 */
CaptureResult captureIncident(const std::string &name);

} // namespace c4::replay

#endif // C4_REPLAY_CAPTURE_H
