#include "replay/capture.h"

#include <stdexcept>

#include "net/topology.h"
#include "scenario/options.h"
#include "scenario/workload.h"

namespace c4::replay {

namespace {

using fault::FaultType;
using scenario::AllreduceGroupSpec;
using scenario::FaultSpec;
using scenario::JobSpec;
using scenario::LinkEventSpec;
using scenario::ScenarioSpec;

/** One buildable incident: spec + label + post-run fixup flags. */
struct IncidentPlan
{
    ScenarioSpec spec;
    IncidentLabel label;

    /** Resolve culprit_node from the recorded FaultInjected event
     * (job-relative victims are placed at run time). */
    bool culpritFromTrace = false;
};

/** Cross-segment allreduce load so the fabric has flows to reroute. */
ScenarioSpec
allreduceTraffic(int tasks, int iterations)
{
    ScenarioSpec spec;
    AllreduceGroupSpec g;
    g.tasks = tasks;
    g.placement = AllreduceGroupSpec::Placement::CrossSegmentPairs;
    g.iterations = iterations;
    spec.allreduces.push_back(g);
    return spec;
}

/** A 4-node llama7b training job (TP8 x DP4 on 8-GPU nodes). */
JobSpec
trainingJob()
{
    JobSpec js;
    js.id = 1;
    js.model = "llama7b";
    js.microbatchCompute = milliseconds(800);
    js.parallel = {.tp = 8, .pp = 1, .dp = 4};
    js.initTime = seconds(5);
    js.dpGroupsSimulated = 1;
    return js;
}

/** C4D runtime with warm spares, tuned for seconds-scale reactions. */
void
enableSteering(ScenarioSpec &spec)
{
    spec.features.c4d = true;
    spec.features.evaluatePeriod = seconds(2);
    spec.features.isolateOnSlow = true;
    spec.features.backupNodes = 2;
}

/** Fail one leaf<->spine trunk (both directions) at @p at. */
void
downTrunk(ScenarioSpec &spec, Time at, int spine, bool up = false)
{
    LinkEventSpec le;
    le.at = at;
    le.segment = 0;
    le.plane = net::Plane::Left;
    le.spine = spine;
    le.up = up;
    spec.linkEvents.push_back(le);
}

/** Label the two directed links the trunk event touches as culprits. */
void
labelTrunkCulprits(IncidentPlan &p, int spine)
{
    const net::Topology topo(
        scenario::toClusterConfig(p.spec, p.label.seed).topology);
    const int leaf = topo.leafIndex(0, net::Plane::Left);
    p.label.culpritLinks.push_back(topo.trunkUplink(leaf, spine));
    p.label.culpritLinks.push_back(topo.trunkDownlink(spine, leaf));
}

IncidentPlan
linkFailureSingle()
{
    IncidentPlan p;
    p.spec = allreduceTraffic(4, 2000);
    p.spec.horizon = seconds(14);
    downTrunk(p.spec, seconds(10), /*spine=*/3);
    p.label.rootCause = "link_failure";
    p.label.tInject = seconds(10);
    p.label.seed = 801;
    p.label.notes = "one trunk cable cut under cross-segment load";
    labelTrunkCulprits(p, 3);
    return p;
}

IncidentPlan
linkFailureFlap()
{
    IncidentPlan p;
    p.spec = allreduceTraffic(4, 2000);
    p.spec.horizon = seconds(16);
    downTrunk(p.spec, seconds(10), /*spine=*/5);
    downTrunk(p.spec, seconds(12), /*spine=*/5, /*up=*/true);
    p.label.rootCause = "link_failure";
    p.label.tInject = seconds(10);
    p.label.seed = 802;
    p.label.notes = "trunk flap: down at 10s, restored at 12s; the "
                    "recovery must not count as a second incident";
    labelTrunkCulprits(p, 5);
    return p;
}

IncidentPlan
linkStormCoalesced()
{
    IncidentPlan p;
    p.spec = allreduceTraffic(4, 2000);
    p.spec.horizon = seconds(18);
    p.spec.features.fabricCoalesceWindow = seconds(1);
    downTrunk(p.spec, seconds(10), /*spine=*/1);
    downTrunk(p.spec, milliseconds(11500), /*spine=*/3);
    downTrunk(p.spec, seconds(13), /*spine=*/5);
    downTrunk(p.spec, milliseconds(14500), /*spine=*/7);
    p.label.rootCause = "fault_storm";
    p.label.tInject = seconds(10);
    p.label.seed = 803;
    p.label.notes = "four trunks fail within 5s under fabric "
                    "coalescing; one storm verdict, not four";
    return p;
}

IncidentPlan
portDegradationTx()
{
    IncidentPlan p;
    p.spec = allreduceTraffic(4, 2000);
    p.spec.horizon = seconds(25);
    p.spec.metrics.cnpSamplePeriod = milliseconds(500);
    FaultSpec f;
    f.at = seconds(12);
    f.type = FaultType::SlowNicTx;
    f.node = 5;
    f.allNics = true;
    f.severity = 0.4;
    p.spec.faults.push_back(f);
    p.label.rootCause = "port_degradation";
    p.label.culpritNode = 5;
    p.label.tInject = seconds(12);
    p.label.seed = 804;
    p.label.notes = "node 5 Tx capacity drops to 40% on every NIC";
    return p;
}

IncidentPlan
portDegradationRxSteered()
{
    IncidentPlan p;
    p.spec.jobs.push_back(trainingJob());
    p.spec.horizon = minutes(5);
    enableSteering(p.spec);
    // Wait-pattern floor low enough that a 70% Rx cut stands out of
    // jitter (the ablation_detection calibration), and a short
    // isolation delay so the restart lands well inside the horizon.
    p.spec.features.minWaitForSlow = milliseconds(20);
    p.spec.features.isolationDelay = seconds(5);
    FaultSpec f;
    f.at = seconds(30);
    f.type = FaultType::SlowNicRx;
    f.job = 1;
    f.jobNodeIndex = 2;
    f.allNics = true;
    f.severity = 0.1;
    p.spec.faults.push_back(f);
    p.label.rootCause = "port_degradation";
    p.label.tInject = seconds(30);
    p.label.seed = 805;
    p.label.notes = "job node Rx degraded to 10%; C4D isolates and "
                    "restarts, which must fold into the port verdict";
    p.culpritFromTrace = true;
    return p;
}

IncidentPlan
nodeCrash(const char *notes, FaultType type, int jobNodeIndex,
          Time at, std::uint64_t seed, bool localizable)
{
    IncidentPlan p;
    p.spec.jobs.push_back(trainingJob());
    p.spec.horizon = minutes(3);
    enableSteering(p.spec);
    p.spec.features.hangThreshold = seconds(30);
    p.spec.features.isolationDelay = seconds(10);
    FaultSpec f;
    f.at = at;
    f.type = type;
    f.job = 1;
    f.jobNodeIndex = jobNodeIndex;
    p.spec.faults.push_back(f);
    p.label.rootCause = "node_crash";
    p.label.tInject = at;
    p.label.seed = seed;
    p.label.notes = notes;
    p.culpritFromTrace = localizable;
    return p;
}

IncidentPlan
healthyBaseline()
{
    IncidentPlan p;
    p.spec = allreduceTraffic(4, 2000);
    // The CNP sampler keeps the event queue alive, so healthy runs
    // need an explicit horizon (there is no fault plan to outlast).
    p.spec.horizon = seconds(10);
    p.spec.metrics.cnpSamplePeriod = milliseconds(500);
    p.label.seed = 809;
    p.label.notes = "fault-free cross-segment allreduces; any verdict "
                    "is a false positive";
    return p;
}

IncidentPlan
healthyCongested()
{
    IncidentPlan p;
    p.spec = allreduceTraffic(8, 2000);
    p.spec.horizon = seconds(10);
    p.spec.topology.oversubscription = 2.0;
    p.spec.metrics.cnpSamplePeriod = milliseconds(500);
    p.label.seed = 810;
    p.label.notes = "2:1 oversubscribed fabric, heavy CNP marking but "
                    "no fault; congestion alone must stay silent";
    return p;
}

struct Entry
{
    const char *name;
    IncidentPlan (*build)();
};

IncidentPlan
nodeCrashEcc()
{
    return nodeCrash("GPU memory ECC failure kills a rank; hardware "
                     "logs localize the restart",
                     FaultType::EccError, 1, seconds(30), 806, true);
}

IncidentPlan
nodeCrashNvlink()
{
    return nodeCrash("NVLink error crashes a rank mid-iteration",
                     FaultType::NvlinkError, 3, seconds(25), 807,
                     true);
}

IncidentPlan
nodeCrashCudaSilent()
{
    return nodeCrash("CUDA runtime death leaves no hardware trace; "
                     "the crash is detected but unlocalized",
                     FaultType::CudaError, 2, seconds(30), 808,
                     false);
}

constexpr Entry kIncidents[] = {
    {"healthy_baseline", healthyBaseline},
    {"healthy_congested", healthyCongested},
    {"link_failure_flap", linkFailureFlap},
    {"link_failure_single", linkFailureSingle},
    {"link_storm_coalesced", linkStormCoalesced},
    {"node_crash_cuda_silent", nodeCrashCudaSilent},
    {"node_crash_ecc", nodeCrashEcc},
    {"node_crash_nvlink", nodeCrashNvlink},
    {"port_degradation_rx_steered", portDegradationRxSteered},
    {"port_degradation_tx", portDegradationTx},
};

} // namespace

trace::KindMask
captureKindMask()
{
    return trace::kAllKinds &
           ~(trace::kindBit(trace::EventKind::RecomputeBegin) |
             trace::kindBit(trace::EventKind::RecomputeEnd));
}

std::vector<std::string>
captureIncidentNames()
{
    std::vector<std::string> names;
    for (const Entry &e : kIncidents)
        names.emplace_back(e.name);
    return names;
}

CaptureResult
captureIncident(const std::string &name)
{
    const Entry *entry = nullptr;
    for (const Entry &e : kIncidents) {
        if (name == e.name)
            entry = &e;
    }
    if (entry == nullptr)
        throw std::invalid_argument("unknown incident \"" + name +
                                    "\"");
    IncidentPlan plan = entry->build();
    plan.label.name = entry->name;
    plan.spec.variant = entry->name;

    trace::TraceRecorder recorder(captureKindMask());
    scenario::RunOptions opt;
    scenario::TrialContext ctx(opt, plan.label.seed, 0);
    ctx.tracer = &recorder;
    scenario::runSpecTrial(plan.spec, ctx);

    CaptureResult res;
    res.label = std::move(plan.label);
    res.events = recorder.events();
    if (plan.culpritFromTrace) {
        for (const trace::Event &ev : res.events) {
            if (ev.kind == trace::EventKind::FaultInjected) {
                res.label.culpritNode = ev.node;
                break;
            }
        }
    }
    return res;
}

} // namespace c4::replay
