/**
 * @file
 * Offline trace replay: recorded JSONL event traces fed back through
 * the incident analyzer with no live simulator.
 *
 * A replayed run is three layers:
 *
 *  - ReplayClock: the trace's own timestamps drive a monotonic clock;
 *    a regression in the record stream is a corrupted or hand-edited
 *    trace and aborts with the offending record index.
 *  - dispatchEvent: the adapter decoding each trace::Event (per the
 *    trace.h field-semantics table) into the typed telemetry records
 *    of c4d/telemetry.h.
 *  - replayTrace: clock + adapter + c4d::IncidentAnalyzer end to end,
 *    producing the run's incident verdicts.
 *
 * Because live traces are byte-deterministic and the analyzer is a
 * pure function of the record stream, replaying a file yields verdicts
 * byte-identical to analyzing the live run that wrote it.
 */

#ifndef C4_REPLAY_REPLAY_H
#define C4_REPLAY_REPLAY_H

#include <string>
#include <vector>

#include "c4d/incident.h"
#include "c4d/telemetry.h"
#include "trace/trace.h"

namespace c4::replay {

/** Monotonic clock driven by replayed timestamps. */
class ReplayClock
{
  public:
    Time now() const { return now_; }

    /**
     * Advance to @p when (record index @p index, for diagnostics).
     * @throws std::runtime_error on a time regression.
     */
    void advanceTo(Time when, std::size_t index);

  private:
    Time now_ = 0;
};

/**
 * Decode one recorded event into typed telemetry on @p sink.
 * Unknown PathRealloc detail labels (a newer writer) throw rather
 * than silently dropping telemetry the detectors may rely on.
 */
void dispatchEvent(const trace::Event &ev, c4d::TelemetrySink &sink);

/**
 * Stream a whole trace through @p sink under a ReplayClock.
 * @throws std::runtime_error on time regressions or undecodable
 *         records, naming the 1-based record number.
 */
void feedTrace(const std::vector<trace::Event> &events,
               c4d::TelemetrySink &sink);

/** Load (trace/analyze.h), feed, and diagnose one trace file. */
std::vector<c4d::IncidentVerdict>
replayTrace(const std::vector<trace::Event> &events,
            const c4d::IncidentAnalyzerConfig &cfg = {});

} // namespace c4::replay

#endif // C4_REPLAY_REPLAY_H
