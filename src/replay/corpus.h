/**
 * @file
 * The on-disk incident corpus: labeled trace files + verdict goldens.
 *
 * Corpus layout (tests/incidents/ is the committed instance):
 *
 *     <name>.trace.jsonl   the recorded event trace (trace/export.h)
 *     <name>.label.json    ground truth for scoring:
 *         {
 *           "schema": "c4incident/1",
 *           "name": "link_failure_single",
 *           "root_cause": "link_failure",      // kind name or "none"
 *           "culprit_node": -1,                // -1 = not node-scoped
 *           "culprit_links": [12, 40],         // [] = not link-scoped
 *           "t_inject_ns": 20000000000,        // 0 for "none" labels
 *           "seed": 801,
 *           "notes": "..."
 *         }
 *     golden_verdicts.jsonl  per-incident verdict lines, byte-diffed
 *                            by the `ctest -L replay` gate
 *
 * Verdict rendering is canonical (fixed key order, common/json number
 * formatting), so "byte-identical verdicts" is a plain string compare.
 */

#ifndef C4_REPLAY_CORPUS_H
#define C4_REPLAY_CORPUS_H

#include <string>
#include <vector>

#include "c4d/incident.h"
#include "common/types.h"

namespace c4::replay {

/** Ground truth for one corpus incident. */
struct IncidentLabel
{
    std::string name;
    std::string rootCause = "none"; ///< incident kind name, or "none"
    NodeId culpritNode = kInvalidId;
    std::vector<std::int64_t> culpritLinks;
    Time tInject = 0;
    std::uint64_t seed = 0;
    std::string notes;
};

/** Canonical pretty-printed label JSON (byte-stable). */
std::string writeLabelJson(const IncidentLabel &label);

/**
 * Parse and validate a label document.
 * @throws SpecError on malformed JSON, unknown keys, or an unknown
 *         root_cause name.
 */
IncidentLabel labelFromJson(const std::string &text);

/** One corpus entry: a trace file paired with its label. */
struct Incident
{
    std::string name;
    std::string tracePath;
    IncidentLabel label;
};

/**
 * Scan @p dir for `<name>.trace.jsonl` + `<name>.label.json` pairs,
 * sorted by name for determinism.
 * @throws std::runtime_error when the directory is missing, empty of
 *         incidents, or holds a trace without a label (or vice versa).
 */
std::vector<Incident> collectIncidents(const std::string &dir);

/** @name Small file I/O helpers (throw std::runtime_error) @{ */
std::string readFileOrThrow(const std::string &path);
void writeFileOrThrow(const std::string &path, const std::string &text);
/** @} */

/**
 * Render one incident's verdicts as canonical JSONL: one line per
 * verdict with fixed keys (incident, kind, node, link, t_detect,
 * cause, corroborated, confidence, evidence); a clean run renders as
 * a single `{"incident":...,"verdicts":0}` line so negatives are
 * visible in the golden too.
 */
std::string verdictsToJsonl(const std::string &incident,
                            const std::vector<c4d::IncidentVerdict> &vs);

} // namespace c4::replay

#endif // C4_REPLAY_CORPUS_H
