#include "replay/replay.h"

#include <stdexcept>
#include <string>

namespace c4::replay {

using trace::EventKind;

void
ReplayClock::advanceTo(Time when, std::size_t index)
{
    if (when < now_) {
        throw std::runtime_error(
            "trace time regression at record #" +
            std::to_string(index + 1) + ": t=" + std::to_string(when) +
            " after t=" + std::to_string(now_) +
            " (corrupted or hand-edited trace?)");
    }
    now_ = when;
}

void
dispatchEvent(const trace::Event &ev, c4d::TelemetrySink &sink)
{
    switch (ev.kind) {
      case EventKind::FaultInjected: {
        c4d::FaultRecord rec;
        rec.when = ev.when;
        rec.node = ev.node;
        rec.device = ev.a;
        rec.knownType = fault::faultTypeFromName(ev.detail, rec.type);
        rec.isLocal = ev.b != 0;
        rec.severity = ev.value;
        sink.onFault(rec);
        return;
      }
      case EventKind::FaultRecovered:
        sink.onFaultRecovered(ev.when, ev.node);
        return;
      case EventKind::SteeringDecision: {
        c4d::SteeringRecord rec;
        rec.when = ev.when;
        rec.job = ev.job;
        rec.isolatedNodes = ev.a;
        rec.viaC4d = ev.b != 0;
        rec.recoveryLatencySeconds = ev.value;
        sink.onSteering(rec);
        return;
      }
      case EventKind::PathRealloc: {
        // Three sub-kinds share the wire kind, discriminated by the
        // detail label (see trace.h).
        if (ev.detail == "link_down" || ev.detail == "link_up") {
            c4d::LinkEventRecord rec;
            rec.when = ev.when;
            rec.link = static_cast<LinkId>(ev.a);
            rec.up = ev.detail == "link_up";
            rec.flowsRerouted = static_cast<std::int64_t>(ev.value);
            sink.onLinkEvent(rec);
            return;
        }
        if (ev.detail == "link_scale") {
            c4d::LinkScaleRecord rec;
            rec.when = ev.when;
            rec.link = static_cast<LinkId>(ev.a);
            rec.memberFlows = ev.b;
            rec.scale = ev.value;
            sink.onLinkScale(rec);
            return;
        }
        if (ev.detail == "alloc" || ev.detail == "repin") {
            c4d::PlacementRecord rec;
            rec.when = ev.when;
            rec.job = ev.job;
            rec.node = ev.node;
            rec.spine = ev.a;
            rec.repin = ev.detail == "repin";
            sink.onPlacement(rec);
            return;
        }
        throw std::runtime_error(
            "unknown path_realloc detail \"" + ev.detail + "\"");
      }
      case EventKind::CnpSample: {
        c4d::CnpRecord rec;
        rec.when = ev.when;
        rec.hotNics = ev.a;
        rec.meanKps = ev.value;
        sink.onCnpSample(rec);
        return;
      }
      case EventKind::JobArrival:
      case EventKind::JobDeparture: {
        c4d::JobLifecycleRecord rec;
        rec.when = ev.when;
        rec.job = ev.job;
        rec.nodes = ev.a;
        rec.arrived = ev.kind == EventKind::JobArrival;
        sink.onJobLifecycle(rec);
        return;
      }
      case EventKind::RecomputeBegin:
      case EventKind::RecomputeEnd: {
        c4d::RecomputeRecord rec;
        rec.when = ev.when;
        rec.begin = ev.kind == EventKind::RecomputeBegin;
        rec.a = ev.a;
        rec.b = ev.b;
        rec.value = ev.value;
        sink.onRecompute(rec);
        return;
      }
    }
    throw std::runtime_error("unknown trace event kind " +
                             std::to_string(static_cast<int>(ev.kind)));
}

void
feedTrace(const std::vector<trace::Event> &events,
          c4d::TelemetrySink &sink)
{
    ReplayClock clock;
    for (std::size_t i = 0; i < events.size(); ++i) {
        clock.advanceTo(events[i].when, i);
        try {
            dispatchEvent(events[i], sink);
        } catch (const std::runtime_error &e) {
            throw std::runtime_error("record #" + std::to_string(i + 1) +
                                     ": " + e.what());
        }
    }
}

std::vector<c4d::IncidentVerdict>
replayTrace(const std::vector<trace::Event> &events,
            const c4d::IncidentAnalyzerConfig &cfg)
{
    c4d::IncidentAnalyzer analyzer(cfg);
    feedTrace(events, analyzer);
    return analyzer.finish();
}

} // namespace c4::replay
