#include "replay/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.h"

namespace c4::replay {

namespace fs = std::filesystem;

namespace {

constexpr const char *kLabelSchema = "c4incident/1";
constexpr const char *kTraceSuffix = ".trace.jsonl";
constexpr const char *kLabelSuffix = ".label.json";

Json
makeInt(std::int64_t v)
{
    Json j;
    j.kind = Json::Kind::Int;
    j.integer = v;
    return j;
}

Json
makeDouble(double v)
{
    Json j;
    j.kind = Json::Kind::Double;
    j.number = v;
    return j;
}

Json
makeBool(bool v)
{
    Json j;
    j.kind = Json::Kind::Bool;
    j.boolean = v;
    return j;
}

Json
makeString(std::string s)
{
    Json j;
    j.kind = Json::Kind::String;
    j.string = std::move(s);
    return j;
}

void
addMember(Json &obj, const char *key, Json value)
{
    Json::Member m;
    m.key = key;
    m.value = std::move(value);
    obj.object.push_back(std::move(m));
}

[[noreturn]] void
bindFail(const Json &at, const std::string &what)
{
    throw SpecError(what, at.line, at.column);
}

std::int64_t
bindInt(const Json &v, const char *key)
{
    if (v.kind != Json::Kind::Int)
        bindFail(v, std::string("\"") + key + "\" must be an integer");
    return v.integer;
}

std::string
bindString(const Json &v, const char *key)
{
    if (v.kind != Json::Kind::String)
        bindFail(v, std::string("\"") + key + "\" must be a string");
    return v.string;
}

} // namespace

std::string
writeLabelJson(const IncidentLabel &label)
{
    Json obj;
    obj.kind = Json::Kind::Object;
    addMember(obj, "schema", makeString(kLabelSchema));
    addMember(obj, "name", makeString(label.name));
    addMember(obj, "root_cause", makeString(label.rootCause));
    addMember(obj, "culprit_node", makeInt(label.culpritNode));
    Json links;
    links.kind = Json::Kind::Array;
    for (std::int64_t l : label.culpritLinks)
        links.array.push_back(makeInt(l));
    addMember(obj, "culprit_links", std::move(links));
    addMember(obj, "t_inject_ns", makeInt(label.tInject));
    addMember(obj, "seed",
              makeInt(static_cast<std::int64_t>(label.seed)));
    addMember(obj, "notes", makeString(label.notes));
    return writeJson(obj) + "\n";
}

IncidentLabel
labelFromJson(const std::string &text)
{
    const Json root = parseJson(text);
    if (root.kind != Json::Kind::Object)
        bindFail(root, "label must be a JSON object");
    IncidentLabel label;
    bool haveSchema = false;
    for (const Json::Member &m : root.object) {
        const Json &v = m.value;
        if (m.key == "schema") {
            if (bindString(v, "schema") != kLabelSchema)
                bindFail(v, "unsupported label schema \"" + v.string +
                                "\" (want " + kLabelSchema + ")");
            haveSchema = true;
        } else if (m.key == "name") {
            label.name = bindString(v, "name");
        } else if (m.key == "root_cause") {
            label.rootCause = bindString(v, "root_cause");
            c4d::IncidentKind kind;
            if (label.rootCause != "none" &&
                !c4d::incidentKindFromName(label.rootCause, kind)) {
                bindFail(v, "unknown root_cause \"" + label.rootCause +
                                "\"");
            }
        } else if (m.key == "culprit_node") {
            label.culpritNode =
                static_cast<NodeId>(bindInt(v, "culprit_node"));
        } else if (m.key == "culprit_links") {
            if (v.kind != Json::Kind::Array)
                bindFail(v, "\"culprit_links\" must be an array");
            for (const Json &e : v.array)
                label.culpritLinks.push_back(
                    bindInt(e, "culprit_links"));
        } else if (m.key == "t_inject_ns") {
            label.tInject = bindInt(v, "t_inject_ns");
        } else if (m.key == "seed") {
            label.seed =
                static_cast<std::uint64_t>(bindInt(v, "seed"));
        } else if (m.key == "notes") {
            label.notes = bindString(v, "notes");
        } else {
            throw SpecError("unknown label key \"" + m.key + "\"",
                            m.keyLine, m.keyColumn);
        }
    }
    if (!haveSchema)
        bindFail(root, "label needs a \"schema\" member");
    if (label.name.empty())
        bindFail(root, "label needs a non-empty \"name\"");
    return label;
}

std::string
readFileOrThrow(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        throw std::runtime_error("read error on " + path);
    return ss.str();
}

void
writeFileOrThrow(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << text;
    out.flush();
    if (!out)
        throw std::runtime_error("write error on " + path);
}

std::vector<Incident>
collectIncidents(const std::string &dir)
{
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        throw std::runtime_error(dir + " is not a directory");

    std::vector<std::string> names;
    std::vector<std::string> orphanLabels;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string file = entry.path().filename().string();
        if (file.size() > std::string(kTraceSuffix).size() &&
            file.ends_with(kTraceSuffix)) {
            names.push_back(file.substr(
                0, file.size() - std::string(kTraceSuffix).size()));
        } else if (file.size() > std::string(kLabelSuffix).size() &&
                   file.ends_with(kLabelSuffix)) {
            orphanLabels.push_back(file.substr(
                0, file.size() - std::string(kLabelSuffix).size()));
        }
    }
    std::sort(names.begin(), names.end());
    for (const std::string &l : orphanLabels) {
        if (std::find(names.begin(), names.end(), l) == names.end())
            throw std::runtime_error(dir + ": label " + l +
                                     kLabelSuffix +
                                     " has no matching trace");
    }
    if (names.empty())
        throw std::runtime_error(dir + ": no *.trace.jsonl incidents");

    std::vector<Incident> out;
    out.reserve(names.size());
    for (const std::string &name : names) {
        Incident inc;
        inc.name = name;
        inc.tracePath = (fs::path(dir) / (name + kTraceSuffix)).string();
        const std::string labelPath =
            (fs::path(dir) / (name + kLabelSuffix)).string();
        try {
            inc.label = labelFromJson(readFileOrThrow(labelPath));
        } catch (const SpecError &e) {
            throw std::runtime_error(labelPath + ": " + e.what());
        }
        if (inc.label.name != name) {
            throw std::runtime_error(
                labelPath + ": label name \"" + inc.label.name +
                "\" does not match file name \"" + name + "\"");
        }
        out.push_back(std::move(inc));
    }
    return out;
}

std::string
verdictsToJsonl(const std::string &incident,
                const std::vector<c4d::IncidentVerdict> &vs)
{
    std::string out;
    if (vs.empty()) {
        Json obj;
        obj.kind = Json::Kind::Object;
        addMember(obj, "incident", makeString(incident));
        addMember(obj, "verdicts", makeInt(0));
        out += writeJsonCompact(obj);
        out.push_back('\n');
        return out;
    }
    for (const c4d::IncidentVerdict &v : vs) {
        Json obj;
        obj.kind = Json::Kind::Object;
        addMember(obj, "incident", makeString(incident));
        addMember(obj, "kind",
                  makeString(c4d::incidentKindName(v.kind)));
        addMember(obj, "node", makeInt(v.node));
        addMember(obj, "link", makeInt(v.link));
        addMember(obj, "t_detect", makeInt(v.detectedAt));
        addMember(obj, "cause", makeString(v.cause));
        addMember(obj, "corroborated", makeBool(v.corroborated));
        addMember(obj, "confidence", makeDouble(v.confidence));
        addMember(obj, "evidence", makeString(v.evidence));
        out += writeJsonCompact(obj);
        out.push_back('\n');
    }
    return out;
}

} // namespace c4::replay
