/**
 * @file
 * Detection scoring: verdicts vs ground-truth labels.
 *
 * Matching rule, per incident: a verdict is the label's true positive
 * when its kind equals root_cause, it was detected at or after
 * t_inject_ns, and the culprit matches — node equality when the label
 * is node-scoped (culprit_node >= 0), link membership when it is
 * link-scoped (culprit_links non-empty), kind-only otherwise. The
 * first matching verdict (in detection order) is the TP; every other
 * verdict of the incident is a false positive; a label with no match
 * is a false negative. "none" labels make every verdict an FP.
 *
 * Time-to-detect is the TP's detection time minus t_inject_ns.
 * Aggregate precision = TP/(TP+FP) and recall = TP/(TP+FN), both 1.0
 * when the denominator is empty.
 */

#ifndef C4_REPLAY_SCORE_H
#define C4_REPLAY_SCORE_H

#include <string>
#include <vector>

#include "replay/corpus.h"

namespace c4::replay {

/** One incident's outcome. */
struct IncidentScore
{
    std::string name;
    std::string labelKind;
    int verdicts = 0;
    bool truePositive = false;
    int falsePositives = 0;
    bool falseNegative = false;
    double ttdSeconds = 0.0; ///< valid when truePositive
    std::string outcome;     ///< "detected", "missed", "clean", "noisy"
};

/** Corpus-level rollup. */
struct ScoreReport
{
    std::vector<IncidentScore> incidents;
    int tp = 0;
    int fp = 0;
    int fn = 0;
    double precision = 1.0;
    double recall = 1.0;
    double meanTtdSeconds = 0.0; ///< over true positives
    double maxTtdSeconds = 0.0;
};

/** Score one incident's verdicts against its label. */
IncidentScore
scoreIncident(const Incident &incident,
              const std::vector<c4d::IncidentVerdict> &verdicts);

/** Aggregate per-incident scores into the corpus report. */
ScoreReport aggregateScores(std::vector<IncidentScore> scores);

/** Human-readable report: per-incident table + aggregate block. */
std::string formatScoreReport(const ScoreReport &report);

} // namespace c4::replay

#endif // C4_REPLAY_SCORE_H
