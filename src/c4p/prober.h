/**
 * @file
 * Path probing (paper Section III-B): before allocating paths, the C4P
 * master verifies leaf<->spine path health by full-mesh probing "via
 * randomly selected servers per leaf switch". The prober launches real
 * probe flows through the fabric and classifies each (leaf, spine) trunk
 * pair by whether the probe completed within a deadline — black-holed
 * paths never complete.
 */

#ifndef C4_C4P_PROBER_H
#define C4_C4P_PROBER_H

#include <functional>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace c4::c4p {

/** Health verdicts for every trunk, indexed [leaf][spine]. */
struct ProbeCatalog
{
    int numLeaves = 0;
    int numSpines = 0;
    std::vector<bool> uplinkHealthy;   // [leaf * numSpines + spine]
    std::vector<bool> downlinkHealthy; // [spine * numLeaves + leaf]

    bool
    uplink(int leaf, int spine) const
    {
        return uplinkHealthy[static_cast<std::size_t>(leaf) * numSpines +
                             spine];
    }

    bool
    downlink(int spine, int leaf) const
    {
        return downlinkHealthy[static_cast<std::size_t>(spine) *
                                   numLeaves +
                               leaf];
    }

    /** Spines usable between a pair of leaves. */
    std::vector<int> healthySpines(int txLeaf, int rxLeaf) const;

    std::size_t healthyUplinkCount() const;
};

class PathProber
{
  public:
    /**
     * @param sim event engine
     * @param fabric substrate probes travel through
     * @param probeBytes probe message size (tiny; latency-oriented)
     * @param deadline probe timeout; an unanswered probe marks the path
     *        faulty
     */
    PathProber(Simulator &sim, net::Fabric &fabric,
               Bytes probeBytes = kib(4),
               Duration deadline = milliseconds(50),
               std::uint64_t seed = 0x9120BE12ull);

    /**
     * Probe every (leaf, spine) trunk pair with real flows, invoking
     * @p done with the catalog when all probes resolved (completed or
     * timed out). Each trunk is exercised by routing a probe from a
     * random server under the leaf through the pinned spine and back
     * down to a server under a different leaf.
     */
    void probe(std::function<void(const ProbeCatalog &)> done);

    /**
     * Instantaneous catalog from the management plane (switch/optics
     * telemetry). Probe flows and the management view agree in this
     * simulator; production C4P cross-checks both.
     */
    ProbeCatalog managementView() const;

    std::uint64_t probesSent() const { return probesSent_; }

  private:
    Simulator &sim_;
    net::Fabric &fabric_;
    Bytes probeBytes_;
    Duration deadline_;
    Rng rng_;
    std::uint64_t probesSent_ = 0;

    NodeId randomServerUnder(int segment);
};

} // namespace c4::c4p

#endif // C4_C4P_PROBER_H
