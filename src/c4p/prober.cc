#include "c4p/prober.h"

#include <cassert>
#include <memory>

namespace c4::c4p {

std::vector<int>
ProbeCatalog::healthySpines(int txLeaf, int rxLeaf) const
{
    std::vector<int> out;
    for (int s = 0; s < numSpines; ++s) {
        if (uplink(txLeaf, s) && downlink(s, rxLeaf))
            out.push_back(s);
    }
    return out;
}

std::size_t
ProbeCatalog::healthyUplinkCount() const
{
    std::size_t n = 0;
    for (bool b : uplinkHealthy)
        n += b ? 1 : 0;
    return n;
}

PathProber::PathProber(Simulator &sim, net::Fabric &fabric,
                       Bytes probeBytes, Duration deadline,
                       std::uint64_t seed)
    : sim_(sim), fabric_(fabric), probeBytes_(probeBytes),
      deadline_(deadline), rng_(seed)
{
}

NodeId
PathProber::randomServerUnder(int segment)
{
    const auto &cfg = fabric_.topology().config();
    const int base = segment * cfg.nodesPerSegment;
    const int count = std::min(cfg.nodesPerSegment,
                               cfg.numNodes - base);
    assert(count > 0);
    return static_cast<NodeId>(
        base + rng_.uniformInt(0, count - 1));
}

void
PathProber::probe(std::function<void(const ProbeCatalog &)> done)
{
    const net::Topology &topo = fabric_.topology();
    const int leaves = topo.numLeaves();
    const int spines = topo.numSpines();

    auto catalog = std::make_shared<ProbeCatalog>();
    catalog->numLeaves = leaves;
    catalog->numSpines = spines;
    catalog->uplinkHealthy.assign(
        static_cast<std::size_t>(leaves) * spines, false);
    catalog->downlinkHealthy.assign(
        static_cast<std::size_t>(spines) * leaves, false);

    auto outstanding = std::make_shared<int>(0);
    auto finished = std::make_shared<bool>(false);
    auto maybe_done = [catalog, outstanding, finished, done] {
        if (*outstanding == 0 && !*finished) {
            *finished = true;
            done(*catalog);
        }
    };

    for (int leaf = 0; leaf < leaves; ++leaf) {
        for (int spine = 0; spine < spines; ++spine) {
            // Route: server under `leaf` -> leaf -> spine -> a leaf of
            // the same plane in another segment -> server there. The
            // probe pins the trunks under test; the host hops are
            // assumed healthy (separately monitored).
            const int seg = topo.leafSegment(leaf);
            const net::Plane plane = topo.leafPlane(leaf);
            const int other_seg = (seg + 1) % topo.numSegments();
            const int rx_leaf = topo.leafIndex(other_seg, plane);

            const NodeId src = randomServerUnder(seg);
            const NodeId dst = topo.numSegments() > 1
                                   ? randomServerUnder(other_seg)
                                   : src;
            if (topo.numSegments() == 1) {
                // Degenerate single-segment cluster: trust management
                // telemetry for trunks (no cross-segment traffic).
                catalog->uplinkHealthy[static_cast<std::size_t>(leaf) *
                                           spines +
                                       spine] =
                    topo.link(topo.trunkUplink(leaf, spine)).up;
                catalog->downlinkHealthy[static_cast<std::size_t>(spine) *
                                             leaves +
                                         leaf] =
                    topo.link(topo.trunkDownlink(spine, leaf)).up;
                continue;
            }

            net::Route route;
            route.links = {
                topo.hostUplink(src, 0, plane),
                topo.trunkUplink(leaf, spine),
                topo.trunkDownlink(spine, rx_leaf),
                topo.hostDownlink(dst, 0, plane),
            };
            route.spine = spine;
            route.rxPlane = plane;

            // Dead trunks make the route unusable: model the probe as
            // lost (deadline expiry) rather than rejected.
            const bool routable =
                topo.link(route.links[1]).up &&
                topo.link(route.links[2]).up;

            ++*outstanding;
            ++probesSent_;
            auto answered = std::make_shared<bool>(false);

            if (routable) {
                fabric_.startFlowOnRoute(
                    route, probeBytes_,
                    [catalog, outstanding, answered, leaf, spine,
                     spines, leaves, maybe_done](const net::FlowEnd &) {
                        if (*answered)
                            return;
                        *answered = true;
                        catalog->uplinkHealthy
                            [static_cast<std::size_t>(leaf) * spines +
                             spine] = true;
                        catalog->downlinkHealthy
                            [static_cast<std::size_t>(spine) * leaves +
                             leaf] = true;
                        --*outstanding;
                        maybe_done();
                    });
            }
            sim_.scheduleAfter(
                deadline_,
                [answered, outstanding, maybe_done, routable] {
                    if (*answered)
                        return;
                    *answered = true;
                    --*outstanding;
                    maybe_done();
                });
        }
    }
    // All-degenerate case (single segment): resolve immediately.
    sim_.scheduleAfter(0, [maybe_done] { maybe_done(); });
}

ProbeCatalog
PathProber::managementView() const
{
    const net::Topology &topo = fabric_.topology();
    ProbeCatalog catalog;
    catalog.numLeaves = topo.numLeaves();
    catalog.numSpines = topo.numSpines();
    catalog.uplinkHealthy.resize(
        static_cast<std::size_t>(catalog.numLeaves) * catalog.numSpines);
    catalog.downlinkHealthy.resize(
        static_cast<std::size_t>(catalog.numSpines) * catalog.numLeaves);
    for (int leaf = 0; leaf < catalog.numLeaves; ++leaf) {
        for (int spine = 0; spine < catalog.numSpines; ++spine) {
            catalog.uplinkHealthy[static_cast<std::size_t>(leaf) *
                                      catalog.numSpines +
                                  spine] =
                topo.link(topo.trunkUplink(leaf, spine)).up;
            catalog.downlinkHealthy[static_cast<std::size_t>(spine) *
                                        catalog.numLeaves +
                                    leaf] =
                topo.link(topo.trunkDownlink(spine, leaf)).up;
        }
    }
    return catalog;
}

} // namespace c4::c4p
