#include "c4p/master.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/log.h"

namespace c4::c4p {

using accl::ConnContext;
using accl::PathDecision;
using accl::PathFeedback;

C4pMaster::C4pMaster(Simulator &sim, const net::Topology &topo,
                     C4pConfig cfg, std::uint64_t seed)
    : sim_(sim), topo_(topo), cfg_(cfg), rng_(seed)
{
}

std::uint64_t
C4pMaster::qpKey(const ConnContext &ctx)
{
    std::uint64_t h = 1469598103934665603ull;
    auto fold = [&h](std::uint64_t v) {
        h = (h ^ v) * 1099511628211ull;
    };
    fold(static_cast<std::uint32_t>(ctx.comm));
    fold(static_cast<std::uint32_t>(ctx.channel) + 0x100u);
    fold(static_cast<std::uint32_t>(ctx.qpIndex) + 0x10000u);
    fold(static_cast<std::uint32_t>(ctx.srcNode) + 1u);
    fold(static_cast<std::uint32_t>(ctx.dstNode) + 7u);
    fold(static_cast<std::uint32_t>(ctx.srcNic) + 13u);
    return h;
}

int
C4pMaster::txLeaf(const ConnContext &ctx, net::Plane plane) const
{
    return topo_.leafIndex(topo_.segmentOf(ctx.srcNode), plane);
}

int
C4pMaster::rxLeaf(const ConnContext &ctx, net::Plane plane) const
{
    return topo_.leafIndex(topo_.segmentOf(ctx.dstNode), plane);
}

int
C4pMaster::pickSpine(int tx_leaf, int rx_leaf, int exclude)
{
    std::vector<int> healthy = topo_.healthySpines(tx_leaf, rx_leaf);
    if (healthy.size() > 1 && exclude != kInvalidId) {
        healthy.erase(
            std::remove(healthy.begin(), healthy.end(), exclude),
            healthy.end());
    }
    if (healthy.empty())
        return kInvalidId;

    int best = healthy.front();
    int best_load = std::numeric_limits<int>::max();
    for (int s : healthy) {
        const auto up_it = upLoad_.find(
            static_cast<std::int64_t>(tx_leaf) * topo_.numSpines() + s);
        const auto down_it = downLoad_.find(
            static_cast<std::int64_t>(s) * topo_.numLeaves() + rx_leaf);
        const int load =
            (up_it != upLoad_.end() ? up_it->second : 0) +
            (down_it != downLoad_.end() ? down_it->second : 0);
        if (load < best_load) {
            best_load = load;
            best = s;
        }
    }
    return best;
}

void
C4pMaster::addLoad(int tx_leaf, int rx_leaf, int spine, int delta)
{
    if (spine == kInvalidId)
        return;
    upLoad_[static_cast<std::int64_t>(tx_leaf) * topo_.numSpines() +
            spine] += delta;
    downLoad_[static_cast<std::int64_t>(spine) * topo_.numLeaves() +
              rx_leaf] += delta;
}

PathDecision
C4pMaster::decide(const ConnContext &ctx)
{
    PathDecision d;
    d.txPlane = net::planeFromIndex((ctx.channel + ctx.qpIndex) %
                                    net::kNumPlanes);
    d.flowLabel = static_cast<std::uint32_t>(rng_());

    // Rule 2: left->left, right->right keeps the receiver's bonded
    // ports balanced.
    if (cfg_.balanceDualPort)
        d.rxPlane = net::planeIndex(d.txPlane);

    // Rule 3: place the QP on the least-loaded healthy spine.
    if (cfg_.balanceSpines &&
        topo_.segmentOf(ctx.srcNode) != topo_.segmentOf(ctx.dstNode)) {
        const net::Plane rx_plane =
            d.rxPlane != kInvalidId
                ? net::planeFromIndex(static_cast<int>(d.rxPlane))
                : d.txPlane;
        const int tx = txLeaf(ctx, d.txPlane);
        const int rx = rxLeaf(ctx, rx_plane);
        d.spine = pickSpine(tx, rx);
        addLoad(tx, rx, d.spine, +1);
    }

    ++allocations_;
    trace::TraceScope &tr = sim_.tracer();
    if (tr.wants(trace::EventKind::PathRealloc)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::PathRealloc;
        tev.job = ctx.job;
        tev.node = ctx.srcNode;
        tev.a = d.spine;
        tev.detail = "alloc";
        tr.record(std::move(tev));
    }
    return d;
}

void
C4pMaster::feedback(const ConnContext &ctx, const PathDecision &decision,
                    const PathFeedback &fb)
{
    (void)decision;
    if (!cfg_.dynamicLoadBalance)
        return;
    auto &st = qpState_[qpKey(ctx)];
    if (st.rate.empty())
        st.rate = Ewma(cfg_.rateEwmaAlpha);
    st.rate.add(fb.achievedRate);
}

bool
C4pMaster::rebalance(const std::vector<ConnContext> &ctxs,
                     std::vector<PathDecision> &decisions,
                     std::vector<double> &weights)
{
    if (!cfg_.dynamicLoadBalance || ctxs.empty())
        return false;

    bool changed = false;

    // Current per-QP rates (0 when unobserved).
    std::vector<double> rates(ctxs.size(), 0.0);
    double best_rate = 0.0;
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        auto it = qpState_.find(qpKey(ctxs[i]));
        if (it != qpState_.end() && !it->second.rate.empty())
            rates[i] = it->second.rate.value();
        best_rate = std::max(best_rate, rates[i]);
    }
    if (best_rate <= 0.0)
        return false;

    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        const ConnContext &ctx = ctxs[i];
        PathDecision &d = decisions[i];
        auto &st = qpState_[qpKey(ctx)];

        const bool cross_segment =
            topo_.segmentOf(ctx.srcNode) != topo_.segmentOf(ctx.dstNode);
        if (!cross_segment)
            continue;

        const net::Plane rx_plane =
            d.rxPlane != kInvalidId
                ? net::planeFromIndex(static_cast<int>(d.rxPlane))
                : d.txPlane;
        const int tx = txLeaf(ctx, d.txPlane);
        const int rx = rxLeaf(ctx, rx_plane);

        // Re-pin if the pinned trunk died, or the QP is notably slower
        // than its siblings (congestion / reroute pile-up).
        const bool pin_dead =
            d.spine != kInvalidId &&
            (!topo_.link(topo_.trunkUplink(tx, d.spine)).up ||
             !topo_.link(topo_.trunkDownlink(d.spine, rx)).up);
        const bool slow =
            rates[i] > 0.0 && rates[i] * cfg_.rebalanceRatio < best_rate;

        if ((pin_dead || slow) &&
            (st.lastRepin < 0 ||
             sim_.now() - st.lastRepin >= cfg_.rebalanceCooldown)) {
            addLoad(tx, rx, d.spine, -1);
            const int spine =
                pickSpine(tx, rx, /*exclude=*/slow ? d.spine
                                                   : kInvalidId);
            d.spine = spine;
            addLoad(tx, rx, spine, +1);
            st.lastRepin = sim_.now();
            st.rate.reset();
            ++repins_;
            changed = true;
            trace::TraceScope &tr = sim_.tracer();
            if (tr.wants(trace::EventKind::PathRealloc)) {
                trace::Event tev;
                tev.when = sim_.now();
                tev.kind = trace::EventKind::PathRealloc;
                tev.job = ctx.job;
                tev.node = ctx.srcNode;
                tev.a = spine;
                tev.b = 1; // re-pin, not an initial allocation
                tev.detail = "repin";
                tr.record(std::move(tev));
            }
        }
    }

    // Re-weight chunk splits toward the faster QPs ("ACCL constantly
    // evaluates message completion times and prioritizes the fastest").
    if (weights.size() == rates.size() && weights.size() > 1) {
        for (std::size_t i = 0; i < weights.size(); ++i) {
            const double r = rates[i] > 0.0 ? rates[i] : best_rate;
            const double w = r / best_rate;
            if (std::abs(weights[i] - w) > 1e-9) {
                weights[i] = w;
                changed = true;
            }
        }
    }
    return changed;
}

void
C4pMaster::release(const ConnContext &ctx, const PathDecision &decision)
{
    ++releases_;
    qpState_.erase(qpKey(ctx));
    if (decision.spine == kInvalidId)
        return;
    const net::Plane rx_plane =
        decision.rxPlane != kInvalidId
            ? net::planeFromIndex(static_cast<int>(decision.rxPlane))
            : decision.txPlane;
    addLoad(txLeaf(ctx, decision.txPlane), rxLeaf(ctx, rx_plane),
            decision.spine, -1);
}

int
C4pMaster::uplinkLoad(int leaf, int spine) const
{
    auto it = upLoad_.find(
        static_cast<std::int64_t>(leaf) * topo_.numSpines() + spine);
    return it == upLoad_.end() ? 0 : it->second;
}

} // namespace c4::c4p
