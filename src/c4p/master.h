/**
 * @file
 * The C4P master (paper Fig. 8): a cluster-wide, multi-tenant path
 * allocator implementing ACCL's PathPolicy.
 *
 * Rules, as in the paper:
 *  1. Faulty-link elimination: allocations only use trunks the probe
 *     catalog (and live topology) report healthy.
 *  2. Dual-port RX balance: traffic leaving a NIC's left port lands on
 *     the receiver's left port, and right on right — "forbidding the
 *     paths from left ports to right, and vice versa".
 *  3. Leaf/spine QP balance: the master tracks allocated QPs per trunk
 *     and places each new QP on the least-loaded healthy spine.
 *  4. Dynamic load balance (optional): per-QP message-completion-time
 *     feedback re-pins QPs off paths that became slow (link failures,
 *     congestion), and re-weights chunk splits toward faster QPs.
 */

#ifndef C4_C4P_MASTER_H
#define C4_C4P_MASTER_H

#include <unordered_map>
#include <vector>

#include "accl/path_policy.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/types.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace c4::c4p {

/** Master behaviour switches (for ablations and the paper's modes). */
struct C4pConfig
{
    /** Rule 2: pin the landing plane to the departure plane. */
    bool balanceDualPort = true;

    /** Rule 3: least-loaded spine allocation (vs ECMP hash). */
    bool balanceSpines = true;

    /** Rule 4: feedback-driven re-pinning and re-weighting. */
    bool dynamicLoadBalance = false;

    /** A QP is "slow" when the group's best rate exceeds its by this. */
    double rebalanceRatio = 1.3;

    /** Minimum time between re-pins of the same QP. */
    Duration rebalanceCooldown = milliseconds(200);

    /** EWMA weight for per-QP achieved-rate tracking. */
    double rateEwmaAlpha = 0.4;
};

class C4pMaster : public accl::PathPolicy
{
  public:
    /**
     * @param sim event engine (cooldown clocks)
     * @param topo live topology (health consultation)
     */
    C4pMaster(Simulator &sim, const net::Topology &topo,
              C4pConfig cfg = {}, std::uint64_t seed = 0xC4BC4Bull);

    /** @name accl::PathPolicy @{ */
    accl::PathDecision decide(const accl::ConnContext &ctx) override;
    void feedback(const accl::ConnContext &ctx,
                  const accl::PathDecision &decision,
                  const accl::PathFeedback &fb) override;
    bool rebalance(const std::vector<accl::ConnContext> &ctxs,
                   std::vector<accl::PathDecision> &decisions,
                   std::vector<double> &weights) override;
    void release(const accl::ConnContext &ctx,
                 const accl::PathDecision &decision) override;
    /** @} */

    /** @name Introspection @{ */

    /** Allocated QP count on a trunk uplink. */
    int uplinkLoad(int leaf, int spine) const;

    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t releases() const { return releases_; }
    std::uint64_t repins() const { return repins_; }

    const C4pConfig &config() const { return cfg_; }
    /** @} */

  private:
    struct QpState
    {
        Ewma rate;
        Time lastRepin = -1; ///< -1: never re-pinned

        QpState() : rate(0.4) {}
    };

    Simulator &sim_;
    const net::Topology &topo_;
    C4pConfig cfg_;
    Rng rng_;

    // QP allocation counts per directed trunk.
    std::unordered_map<std::int64_t, int> upLoad_;   // leaf*S + spine
    std::unordered_map<std::int64_t, int> downLoad_; // spine*L + leaf

    // Per-QP feedback state, keyed by connection identity.
    std::unordered_map<std::uint64_t, QpState> qpState_;

    std::uint64_t allocations_ = 0;
    std::uint64_t releases_ = 0;
    std::uint64_t repins_ = 0;

    static std::uint64_t qpKey(const accl::ConnContext &ctx);

    int txLeaf(const accl::ConnContext &ctx, net::Plane plane) const;
    int rxLeaf(const accl::ConnContext &ctx, net::Plane plane) const;

    /**
     * Least-loaded healthy spine for the leaf pair; kInvalidId if none.
     * @param exclude spine to avoid if any alternative exists (used when
     *        moving a QP off a slow path)
     */
    int pickSpine(int txLeaf, int rxLeaf, int exclude = kInvalidId);
    void addLoad(int txLeaf, int rxLeaf, int spine, int delta);
};

} // namespace c4::c4p

#endif // C4_C4P_MASTER_H
