/**
 * @file
 * Campaign failure bundles: when the executor parks a shard as
 * `failed`, it re-runs the shard once with `--trace` and `--metrics`
 * attached — per-trial seeds depend only on (base seed, absolute
 * trial index), so the failure reproduces deterministically — and
 * freezes the evidence under `forensics/<shard.id>/`:
 *
 *     bundle.json    strict byte-stable c4bundle/1 manifest (below)
 *     shard.json     copy of the shard spec that failed
 *     stderr.log     the forensic re-run's stderr
 *     stdout.csv     the forensic re-run's CSV stream
 *     trace/...      per-trial JSONL event traces (trace/export.h)
 *     metrics/...    per-trial c4metrics/1 snapshots (obs/snapshot.h)
 *
 * The bundle travels with the campaign directory: `c4sweep collect`
 * pulls it back from a host copy, and the forensics report streams
 * each bundled trace through the offline incident analyzer
 * (replay/replay.h) so a campaign failure arrives pre-diagnosed.
 *
 * The `c4bundle/1` manifest follows the same contract as the trace
 * and metrics formats: canonical writer (same bytes for the same
 * bundle) and a strict parser — unknown keys, wrong types, and
 * truncated documents are line-numbered errors, never silent
 * acceptance.
 */

#ifndef C4_SWEEP_FORENSICS_H
#define C4_SWEEP_FORENSICS_H

#include <iosfwd>
#include <string>
#include <vector>

namespace c4::sweep {

struct Manifest;
struct Shard;

inline constexpr const char *kBundleSchema = "c4bundle/1";

/** The parsed `bundle.json` of one failure bundle. All file paths are
 * bundle-relative; trace/metrics lists are sorted by path. */
struct BundleManifest
{
    std::string shard;    ///< shard id ("<scenario>.s<k>")
    std::string scenario;
    std::string spec = "shard.json";
    std::string log = "stderr.log";
    std::string csv = "stdout.csv";
    int trialBegin = 0;
    int trialCount = 0;
    int attempts = 0;     ///< attempts burned before the bundle was cut
    int exitCode = 0;     ///< the exit code that parked the shard
    int forensicExit = 0; ///< the traced re-run's exit (0 = did not
                          ///< reproduce)
    std::vector<std::string> traces;
    std::vector<std::string> metrics;
};

/** "forensics/<shardId>" — the bundle dir, campaign-relative. */
std::string bundleDir(const std::string &shardId);

/** Serialize canonically (same bytes for the same bundle). */
std::string writeBundleManifest(const BundleManifest &bundle);

/**
 * Strict parse: schema tag, key set (missing or unknown keys are
 * errors), and types are all checked.
 * @throws std::runtime_error; malformed JSON (any truncation
 *         included) reports the 1-based line and column.
 */
BundleManifest parseBundleManifest(const std::string &text);

/** Read and parse one bundle.json. @throws std::runtime_error. */
BundleManifest loadBundleManifest(const std::string &path);

/** True when `<dir>/forensics/<shardId>/bundle.json` exists. */
bool bundleExists(const std::string &dir, const std::string &shardId);

/**
 * Cut the failure bundle for @p shard: re-run it once through
 * @p bench with `--trace`/`--metrics` pointed into the bundle dir,
 * copy the shard spec in, and write the c4bundle/1 manifest (tmp +
 * rename, so a watching dashboard never reads a torn manifest). An
 * existing bundle for the shard is replaced — the latest failure
 * wins.
 * @return "" on success, otherwise the error; progress to @p diag.
 */
std::string captureBundle(const std::string &dir, const Shard &shard,
                          const std::string &bench, bool smoke,
                          std::ostream &diag);

/**
 * The scored failure report: for every shard with a bundle (manifest
 * order), load the bundle, stream each trace through the incident
 * analyzer, and print the verdicts as canonical JSONL lines plus a
 * per-kind rollup. Deterministic byte-for-byte for the same bundles.
 * A campaign with no bundles prints a one-line note.
 * @return "" on success, otherwise an infrastructure error (a bundle
 *         whose manifest cannot be read at all).
 */
std::string forensicsReport(const std::string &dir,
                            const Manifest &manifest,
                            std::ostream &out);

} // namespace c4::sweep

#endif // C4_SWEEP_FORENSICS_H
