#include "sweep/collect.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "sweep/forensics.h"
#include "sweep/manifest.h"

namespace c4::sweep {

namespace {

/** Where one shard's winning result currently lives. */
struct Winner
{
    const Shard *shard = nullptr; ///< the journal entry to adopt
    std::string dir;              ///< campaign dir holding its files
};

std::string
readFileFully(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "cannot open " + path;
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return "";
}

/**
 * The host manifest must be the same planned campaign: identical
 * version, smoke flag, scenario list, and shard identity fields.
 * Status/attempts/exit are the per-host execution state and are
 * exactly what reconciliation is for.
 * @return "" when structurally identical, else the first mismatch.
 */
std::string
structuralMismatch(const Manifest &primary, const Manifest &host)
{
    if (host.version != primary.version)
        return "manifest version differs";
    if (host.smoke != primary.smoke)
        return "smoke flag differs (campaigns planned differently)";
    if (host.scenarios.size() != primary.scenarios.size())
        return "scenario list differs";
    for (std::size_t i = 0; i < primary.scenarios.size(); ++i) {
        if (host.scenarios[i].name != primary.scenarios[i].name ||
            host.scenarios[i].trials != primary.scenarios[i].trials)
            return "scenario \"" + primary.scenarios[i].name +
                   "\" differs";
    }
    if (host.shards.size() != primary.shards.size())
        return "shard list differs";
    for (std::size_t i = 0; i < primary.shards.size(); ++i) {
        const Shard &p = primary.shards[i];
        const Shard &h = host.shards[i];
        if (h.id != p.id || h.scenario != p.scenario ||
            h.spec != p.spec || h.csv != p.csv || h.log != p.log ||
            h.trialBegin != p.trialBegin ||
            h.trialCount != p.trialCount)
            return "shard \"" + p.id + "\" differs";
    }
    return "";
}

/** Copy one file, creating parent directories. */
std::string
copyFile(const std::string &from, const std::string &to)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(fs::path(to).parent_path(), ec);
    fs::copy_file(from, to, fs::copy_options::overwrite_existing, ec);
    if (ec)
        return "cannot copy " + from + " -> " + to + ": " +
               ec.message();
    return "";
}

/** Recursively copy a directory tree if it exists on the host. */
std::string
copyTree(const std::string &from, const std::string &to)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(from, ec))
        return ""; // nothing to pull
    fs::remove_all(to, ec);
    fs::create_directories(fs::path(to).parent_path(), ec);
    fs::copy(from, to,
             fs::copy_options::recursive |
                 fs::copy_options::overwrite_existing,
             ec);
    if (ec)
        return "cannot copy " + from + " -> " + to + ": " +
               ec.message();
    return "";
}

} // namespace

std::string
collectCampaign(const CollectRequest &request, CollectStats &stats,
                std::ostream &diag)
{
    if (request.hosts.empty())
        return "collect needs at least one host campaign directory";

    Manifest primary;
    try {
        primary = loadManifest(request.dir);
    } catch (const std::exception &e) {
        return e.what();
    }

    // One parsed manifest per host, argument order.
    std::vector<Manifest> hosts;
    for (const std::string &hostDir : request.hosts) {
        if (manifestPath(hostDir) == manifestPath(request.dir)) {
            return "host directory '" + hostDir +
                   "' is the primary campaign itself";
        }
        Manifest m;
        try {
            m = loadManifest(hostDir);
        } catch (const std::exception &e) {
            return e.what();
        }
        const std::string mismatch = structuralMismatch(primary, m);
        if (!mismatch.empty()) {
            return "host '" + hostDir +
                   "' is not a copy of this campaign: " + mismatch;
        }
        hosts.push_back(std::move(m));
    }

    // `--only`: same contract as the executor — every id must exist,
    // and non-selected shards are never touched.
    const std::set<std::string> only(request.only.begin(),
                                     request.only.end());
    std::set<std::string> unknown = only;
    for (const Shard &s : primary.shards)
        unknown.erase(s.id);
    if (!unknown.empty()) {
        return "--only: unknown shard id '" + *unknown.begin() +
               "' (see `c4sweep status`)";
    }
    auto selected = [&](const Shard &s) {
        return only.empty() || only.count(s.id) > 0;
    };

    // Phase 1: decide a winner per shard and validate every rule.
    // Nothing in the primary directory is touched until every shard
    // reconciles cleanly.
    std::vector<Winner> winners(primary.shards.size());
    for (std::size_t i = 0; i < primary.shards.size(); ++i) {
        const Shard &p = primary.shards[i];
        Winner &w = winners[i];
        w.shard = &p;
        w.dir = request.dir;
        if (!selected(p)) {
            ++stats.untouched;
            continue;
        }
        if (p.status == ShardStatus::Running) {
            return p.id + ": `running` in the primary journal — an "
                          "executor is live (or was interrupted); "
                          "`c4sweep run --dir " +
                   request.dir + "` to resume, then collect";
        }
        for (std::size_t h = 0; h < hosts.size(); ++h) {
            const Shard &c = hosts[h].shards[i];
            const std::string &hostDir = request.hosts[h];
            if (c.status == ShardStatus::Running) {
                return c.id + ": `running` in " + hostDir +
                       " — that campaign is live (or was "
                       "interrupted); `c4sweep run --dir " +
                       hostDir + "` to resume, then collect";
            }
            switch (c.status) {
            case ShardStatus::Done:
                if (w.shard->status == ShardStatus::Done) {
                    // Shards are seed-deterministic: two honest
                    // `done` runs are byte-identical. Anything else
                    // means the hosts ran different inputs, and
                    // picking one silently would poison the merge.
                    std::string a, b, ioErr;
                    ioErr = readFileFully(
                        campaignPath(w.dir, w.shard->csv), a);
                    if (ioErr.empty())
                        ioErr = readFileFully(
                            campaignPath(hostDir, c.csv), b);
                    if (!ioErr.empty())
                        return c.id + ": " + ioErr;
                    if (a != b) {
                        return c.id +
                               ": divergent `done` CSVs between " +
                               w.dir + " and " + hostDir +
                               " — refusing to collect (same shard, "
                               "different bytes)";
                    }
                    ++stats.deduped;
                } else {
                    w.shard = &c;
                    w.dir = hostDir;
                }
                break;
            case ShardStatus::Failed:
                if (w.shard->status == ShardStatus::Pending ||
                    (w.shard->status == ShardStatus::Failed &&
                     c.attempts > w.shard->attempts)) {
                    w.shard = &c;
                    w.dir = hostDir;
                }
                break;
            case ShardStatus::Pending:
                break;
            case ShardStatus::Running:
                break; // handled above
            }
        }
    }

    // Phase 2: execute the adoptions, then journal once.
    for (std::size_t i = 0; i < primary.shards.size(); ++i) {
        Shard &p = primary.shards[i];
        const Winner &w = winners[i];
        if (!selected(p))
            continue;
        if (w.dir != request.dir) {
            const Shard &c = *w.shard;
            std::string err;
            if (c.status == ShardStatus::Done) {
                err = copyFile(campaignPath(w.dir, c.csv),
                               campaignPath(request.dir, p.csv));
            }
            if (err.empty()) {
                // Logs may be absent (a host that never started the
                // shard has none); tolerate that, not copy errors.
                std::error_code ec;
                if (std::filesystem::is_regular_file(
                        campaignPath(w.dir, c.log), ec)) {
                    err = copyFile(campaignPath(w.dir, c.log),
                                   campaignPath(request.dir, p.log));
                }
            }
            if (err.empty())
                err = copyTree(
                    campaignPath(w.dir, "metrics/" + p.id),
                    campaignPath(request.dir, "metrics/" + p.id));
            if (err.empty())
                err = copyTree(
                    campaignPath(w.dir, bundleDir(p.id)),
                    campaignPath(request.dir, bundleDir(p.id)));
            if (!err.empty())
                return p.id + ": " + err;
            p.status = c.status;
            p.attempts = c.attempts;
            p.exitCode = c.exitCode;
            ++stats.adopted;
            diag << p.id << ": adopted `"
                 << shardStatusName(c.status) << "` from " << w.dir
                 << "\n";
        }
        if (p.status == ShardStatus::Failed)
            ++stats.failures;
        if (bundleExists(request.dir, p.id))
            ++stats.bundles;
    }

    try {
        saveManifest(request.dir, primary);
    } catch (const std::exception &e) {
        return e.what();
    }

    diag << "collect: " << stats.adopted << " adopted, "
         << stats.deduped << " identical on both sides, "
         << stats.failures << " failed, " << stats.bundles
         << " forensics bundle(s), " << stats.untouched
         << " untouched (--only)\n";
    return "";
}

} // namespace c4::sweep
