#include "sweep/merge.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/csv.h"
#include "specio/specio.h"
#include "sweep/manifest.h"

namespace c4::sweep {

namespace {

std::string
readFile(const std::string &path, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return "";
    }
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Split into physical lines, each keeping its trailing newline. */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size() - 1;
        lines.push_back(text.substr(start, end - start + 1));
        start = end + 1;
    }
    return lines;
}

} // namespace

std::string
mergeCampaign(const std::string &dir, const std::string &outCsv,
              std::ostream &diag)
{
    Manifest manifest;
    try {
        manifest = loadManifest(dir);
    } catch (const std::exception &e) {
        return e.what();
    }

    std::string header;
    std::string merged;
    std::size_t totalRows = 0;

    for (const ScenarioEntry &scenario : manifest.scenarios) {
        std::vector<const Shard *> shards;
        for (const Shard &s : manifest.shards) {
            if (s.scenario == scenario.name)
                shards.push_back(&s);
        }
        if (shards.empty()) {
            return "scenario '" + scenario.name +
                   "' has no shards in the manifest";
        }
        std::sort(shards.begin(), shards.end(),
                  [](const Shard *a, const Shard *b) {
                      return a->trialBegin < b->trialBegin;
                  });

        // The shard set must be a completed, exact partition of the
        // sweep — anything else cannot reproduce the single-process
        // file.
        int cursor = 0;
        for (const Shard *s : shards) {
            if (s->status != ShardStatus::Done) {
                return "shard " + s->id + " is " +
                       shardStatusName(s->status) +
                       "; run `c4sweep run " + dir + "` first";
            }
            if (s->trialBegin < cursor) {
                return "shards of '" + scenario.name +
                       "' overlap at trial " +
                       std::to_string(s->trialBegin);
            }
            if (s->trialBegin > cursor) {
                return "no shard of '" + scenario.name +
                       "' covers trials [" + std::to_string(cursor) +
                       ", " + std::to_string(s->trialBegin) + ")";
            }
            cursor += s->trialCount;
        }
        if (cursor != scenario.trials) {
            return "shards of '" + scenario.name + "' cover " +
                   std::to_string(cursor) + " of " +
                   std::to_string(scenario.trials) + " trials";
        }

        // Variant emission order, from the shard spec the workers ran
        // — the same order the single-process runner uses.
        std::vector<std::string> variantOrder;
        try {
            const specio::SpecFile file = specio::loadSpecFile(
                campaignPath(dir, shards.front()->spec));
            for (const auto &v : file.variants)
                variantOrder.push_back(v.variant);
        } catch (const std::exception &e) {
            return e.what();
        }

        // variant label -> raw CSV lines, per shard (shard order ==
        // trial order after the sort above).
        std::vector<std::map<std::string, std::string>> shardRows(
            shards.size());
        for (std::size_t i = 0; i < shards.size(); ++i) {
            const Shard &s = *shards[i];
            std::string error;
            const std::string text =
                readFile(campaignPath(dir, s.csv), error);
            if (!error.empty())
                return error + " (shard " + s.id + ")";
            const std::vector<std::string> lines = splitLines(text);
            if (lines.empty())
                return "shard " + s.id + " CSV is empty";
            if (header.empty())
                header = lines.front();
            if (lines.front() != header) {
                return "shard " + s.id +
                       " CSV header differs from the campaign's";
            }
            for (std::size_t l = 1; l < lines.size(); ++l) {
                const std::string &line = lines[l];
                if (std::count(line.begin(), line.end(), '"') % 2) {
                    return "shard " + s.id + " line " +
                           std::to_string(l + 1) +
                           ": embedded newlines in CSV fields are "
                           "not supported by the merger";
                }
                const auto rows = parseCsv(line);
                if (rows.size() != 1 || rows[0].size() != 6) {
                    return "shard " + s.id + " line " +
                           std::to_string(l + 1) +
                           ": expected 6 CSV fields";
                }
                const std::vector<std::string> &fields = rows[0];
                if (fields[0] != scenario.name) {
                    return "shard " + s.id + " line " +
                           std::to_string(l + 1) +
                           ": row belongs to scenario '" + fields[0] +
                           "', not '" + scenario.name + "'";
                }
                if (std::find(variantOrder.begin(),
                              variantOrder.end(),
                              fields[1]) == variantOrder.end()) {
                    return "shard " + s.id + " line " +
                           std::to_string(l + 1) +
                           ": unknown variant '" + fields[1] + "'";
                }
                char *end = nullptr;
                const long trial =
                    std::strtol(fields[2].c_str(), &end, 10);
                if (end == fields[2].c_str() || *end != '\0') {
                    return "shard " + s.id + " line " +
                           std::to_string(l + 1) +
                           ": unparseable trial field '" + fields[2] +
                           "'";
                }
                if (trial < s.trialBegin ||
                    trial >= s.trialBegin + s.trialCount) {
                    return "shard " + s.id + " line " +
                           std::to_string(l + 1) + ": trial " +
                           fields[2] + " outside the shard's range";
                }
                shardRows[i][fields[1]] += line;
                ++totalRows;
            }
        }

        // Interleave variant-major: all shards' rows of variant 0 (in
        // trial order), then variant 1, ... — the single-process
        // emission order.
        for (const std::string &variant : variantOrder) {
            for (auto &rowsByVariant : shardRows) {
                const auto it = rowsByVariant.find(variant);
                if (it != rowsByVariant.end())
                    merged += it->second;
            }
        }
    }

    if (header.empty())
        return "campaign has no shard CSVs to merge";
    const std::string output = header + merged;

    if (outCsv == "-") {
        std::cout << output;
        std::cout.flush();
    } else {
        std::ofstream out(outCsv, std::ios::binary | std::ios::trunc);
        if (!out)
            return "cannot write " + outCsv;
        out << output;
        out.flush();
        if (!out)
            return "short write to " + outCsv;
    }
    diag << "merged " << totalRows << " row(s) from "
         << manifest.shards.size() << " shard(s)";
    if (outCsv != "-")
        diag << " into " << outCsv;
    diag << "\n";
    return "";
}

} // namespace c4::sweep
