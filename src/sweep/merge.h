/**
 * @file
 * Deterministic CSV merge: stitch the shard CSVs of a completed
 * campaign into output byte-identical to what one
 * `c4bench <scenarios...> --threads 1 --csv out.csv` process would
 * have written.
 *
 * The single-process CSV is one header plus, per scenario in run
 * order, rows in variant-major order (all trials of variant 0, then
 * variant 1, ...). Each shard CSV holds the same variant-major order
 * restricted to its trial range, so the merge interleaves: for every
 * variant (order read from the shard spec file — the same order the
 * runner used), concatenate each shard's rows for that variant with
 * shards sorted by trial range. Raw CSV lines are copied through
 * untouched; the merger parses fields only to classify rows, never to
 * re-format them.
 *
 * The merge refuses to run on anything questionable: shards not done,
 * ranges that overlap or leave trials uncovered, mismatched headers,
 * or rows naming an unknown variant.
 */

#ifndef C4_SWEEP_MERGE_H
#define C4_SWEEP_MERGE_H

#include <iosfwd>
#include <string>

namespace c4::sweep {

/**
 * Merge the campaign in @p dir into @p outCsv ("-" = stdout).
 * @return "" on success, otherwise the error; progress to @p diag.
 */
std::string mergeCampaign(const std::string &dir,
                          const std::string &outCsv,
                          std::ostream &diag);

} // namespace c4::sweep

#endif // C4_SWEEP_MERGE_H
