#include "sweep/manifest.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/table.h"
#include "specio/json.h"

namespace c4::sweep {

using specio::Json;

namespace {

constexpr const char *kStatusNames[] = {"pending", "running", "done",
                                        "failed"};

Json
jsonString(const std::string &s)
{
    Json v;
    v.kind = Json::Kind::String;
    v.string = s;
    return v;
}

Json
jsonInt(std::int64_t i)
{
    Json v;
    v.kind = Json::Kind::Int;
    v.integer = i;
    return v;
}

Json
jsonBool(bool b)
{
    Json v;
    v.kind = Json::Kind::Bool;
    v.boolean = b;
    return v;
}

void
add(Json &obj, const char *key, Json value)
{
    Json::Member m;
    m.key = key;
    m.value = std::move(value);
    obj.object.push_back(std::move(m));
}

Json
emptyObject()
{
    Json v;
    v.kind = Json::Kind::Object;
    return v;
}

[[noreturn]] void
bad(const std::string &what)
{
    throw std::runtime_error("manifest: " + what);
}

const Json &
need(const Json &obj, const char *key, Json::Kind kind)
{
    const Json::Member *m = obj.find(key);
    if (!m)
        bad(std::string("missing key \"") + key + "\"");
    if (m->value.kind != kind) {
        bad(std::string("\"") + key + "\" must be a " +
            Json::kindName(kind) + ", not " +
            Json::kindName(m->value.kind));
    }
    return m->value;
}

std::string
needString(const Json &obj, const char *key)
{
    return need(obj, key, Json::Kind::String).string;
}

int
needInt(const Json &obj, const char *key)
{
    return static_cast<int>(need(obj, key, Json::Kind::Int).integer);
}

} // namespace

const char *
shardStatusName(ShardStatus status)
{
    return kStatusNames[static_cast<int>(status)];
}

bool
shardStatusFromName(const std::string &name, ShardStatus &out)
{
    for (int i = 0; i < 4; ++i) {
        if (name == kStatusNames[i]) {
            out = static_cast<ShardStatus>(i);
            return true;
        }
    }
    return false;
}

std::string
manifestPath(const std::string &dir)
{
    return campaignPath(dir, "manifest.json");
}

std::string
campaignPath(const std::string &dir, const std::string &relative)
{
    if (!relative.empty() && relative.front() == '/')
        return relative;
    if (dir.empty() || dir == ".")
        return relative;
    if (dir.back() == '/')
        return dir + relative;
    return dir + "/" + relative;
}

std::string
writeManifest(const Manifest &manifest)
{
    Json doc = emptyObject();
    add(doc, "version", jsonInt(manifest.version));
    add(doc, "smoke", jsonBool(manifest.smoke));

    Json scenarios;
    scenarios.kind = Json::Kind::Array;
    for (const ScenarioEntry &s : manifest.scenarios) {
        Json o = emptyObject();
        add(o, "name", jsonString(s.name));
        add(o, "trials", jsonInt(s.trials));
        scenarios.array.push_back(std::move(o));
    }
    add(doc, "scenarios", std::move(scenarios));

    Json shards;
    shards.kind = Json::Kind::Array;
    for (const Shard &s : manifest.shards) {
        Json o = emptyObject();
        add(o, "id", jsonString(s.id));
        add(o, "scenario", jsonString(s.scenario));
        add(o, "spec", jsonString(s.spec));
        add(o, "csv", jsonString(s.csv));
        add(o, "log", jsonString(s.log));
        add(o, "trial_begin", jsonInt(s.trialBegin));
        add(o, "trial_count", jsonInt(s.trialCount));
        add(o, "status", jsonString(shardStatusName(s.status)));
        add(o, "attempts", jsonInt(s.attempts));
        add(o, "exit_code", jsonInt(s.exitCode));
        shards.array.push_back(std::move(o));
    }
    add(doc, "shards", std::move(shards));
    return specio::writeJson(doc);
}

Manifest
parseManifest(const std::string &text)
{
    Json doc;
    try {
        doc = specio::parseJson(text);
    } catch (const specio::SpecError &e) {
        bad(e.what());
    }
    if (doc.kind != Json::Kind::Object)
        bad("document must be an object");

    Manifest m;
    m.version = needInt(doc, "version");
    if (m.version != 1)
        bad("unsupported version " + std::to_string(m.version));
    m.smoke = need(doc, "smoke", Json::Kind::Bool).boolean;

    for (const Json &s : need(doc, "scenarios", Json::Kind::Array).array) {
        if (s.kind != Json::Kind::Object)
            bad("\"scenarios\" entries must be objects");
        ScenarioEntry entry;
        entry.name = needString(s, "name");
        entry.trials = needInt(s, "trials");
        if (entry.trials < 1)
            bad("scenario \"" + entry.name + "\" has trials < 1");
        m.scenarios.push_back(std::move(entry));
    }

    for (const Json &s : need(doc, "shards", Json::Kind::Array).array) {
        if (s.kind != Json::Kind::Object)
            bad("\"shards\" entries must be objects");
        Shard shard;
        shard.id = needString(s, "id");
        shard.scenario = needString(s, "scenario");
        shard.spec = needString(s, "spec");
        shard.csv = needString(s, "csv");
        shard.log = needString(s, "log");
        shard.trialBegin = needInt(s, "trial_begin");
        shard.trialCount = needInt(s, "trial_count");
        const std::string status = needString(s, "status");
        if (!shardStatusFromName(status, shard.status))
            bad("shard \"" + shard.id + "\" has unknown status \"" +
                status + "\"");
        shard.attempts = needInt(s, "attempts");
        shard.exitCode = needInt(s, "exit_code");
        if (shard.trialBegin < 0 || shard.trialCount < 1)
            bad("shard \"" + shard.id + "\" has a bad trial range");
        m.shards.push_back(std::move(shard));
    }
    return m;
}

Manifest
loadManifest(const std::string &dir)
{
    const std::string path = manifestPath(dir);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        bad("cannot open " + path +
            " (not a planned campaign directory?)");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseManifest(text.str());
}

void
saveManifest(const std::string &dir, const Manifest &manifest)
{
    const std::string path = manifestPath(dir);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            bad("cannot write " + tmp);
        out << writeManifest(manifest);
        out.flush();
        if (!out)
            bad("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        bad("cannot rename " + tmp + " over " + path);
}

bool
campaignComplete(const Manifest &manifest)
{
    for (const Shard &s : manifest.shards) {
        if (s.status != ShardStatus::Done)
            return false;
    }
    return true;
}

void
printStatus(const Manifest &manifest, std::ostream &out)
{
    AsciiTable table(
        {"shard", "trials", "status", "attempts", "exit"});
    int done = 0, failed = 0, pending = 0;
    for (const Shard &s : manifest.shards) {
        switch (s.status) {
        case ShardStatus::Done:
            ++done;
            break;
        case ShardStatus::Failed:
            ++failed;
            break;
        default:
            ++pending;
            break;
        }
        table.addRow({s.id,
                      "[" + std::to_string(s.trialBegin) + ", " +
                          std::to_string(s.trialBegin + s.trialCount) +
                          ")",
                      shardStatusName(s.status),
                      std::to_string(s.attempts),
                      s.attempts > 0 ? std::to_string(s.exitCode)
                                     : "-"});
    }
    out << table.str("campaign: " +
                     std::to_string(manifest.scenarios.size()) +
                     " scenario(s), " +
                     std::to_string(manifest.shards.size()) +
                     " shard(s)" +
                     (manifest.smoke ? ", smoke mode" : ""));
    out << done << " done, " << failed << " failed, " << pending
        << " pending";
    if (failed > 0)
        out << " — see the shard logs, then `c4sweep run --retries "
               "N` (N higher than the attempts used) to re-try";
    else if (pending > 0)
        out << " — `c4sweep run` to execute";
    else
        out << " — ready to `c4sweep merge`";
    out << "\n";
}

} // namespace c4::sweep
