#include "sweep/watch.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "common/table.h"
#include "obs/analyze.h"
#include "sweep/forensics.h"
#include "sweep/manifest.h"

namespace c4::sweep {

namespace {

/** What one shard's snapshot directory currently holds. */
struct ShardPulse
{
    bool present = false;  ///< any *.jsonl under metrics/<id>/
    bool midWrite = false; ///< a file failed to parse (child writing)
    int files = 0;
    double lastSeconds = 0.0; ///< latest sample tick seen
    double samplesPerSec = 0.0; ///< latest jobs.samples_per_sec gauge
};

/**
 * Read whatever snapshots the shard child has written so far. A shard
 * that is mid-write (or has not started) is a normal dashboard state,
 * never an error.
 */
ShardPulse
readPulse(const std::string &dir, const Shard &shard)
{
    ShardPulse pulse;
    const std::string metricsDir =
        campaignPath(dir, "metrics/" + shard.id);
    std::vector<std::string> files;
    try {
        files = obs::collectSnapshotFiles(metricsDir);
    } catch (const std::exception &) {
        return pulse; // nothing written yet
    }
    pulse.present = true;
    pulse.files = static_cast<int>(files.size());
    for (const std::string &file : files) {
        obs::SnapshotFile snap;
        try {
            snap = obs::loadSnapshotFile(file);
        } catch (const std::exception &) {
            pulse.midWrite = true;
            continue;
        }
        for (const obs::Sample &s : snap.samples) {
            const double sec =
                static_cast<double>(s.when) * 1e-9;
            if (sec > pulse.lastSeconds)
                pulse.lastSeconds = sec;
            if (s.name == "jobs.samples_per_sec")
                pulse.samplesPerSec = s.value;
        }
    }
    return pulse;
}

/**
 * Forensics column: "bundle" once the bundle.json landed (it is
 * written via tmp+rename, so existence means complete), "(cutting)"
 * while the executor's traced re-run is still filling the directory,
 * "-" otherwise. Pure reader — mid-capture is a normal state.
 */
std::string
describeForensics(const std::string &dir, const Shard &shard)
{
    if (bundleExists(dir, shard.id))
        return "bundle";
    std::error_code ec;
    if (std::filesystem::is_directory(
            campaignPath(dir, bundleDir(shard.id)), ec))
        return "(cutting)";
    return "-";
}

std::string
describePulse(const ShardPulse &pulse)
{
    if (!pulse.present)
        return "-";
    if (pulse.midWrite)
        return "(mid-write)";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "t=%.1fs %.1f samp/s",
                  pulse.lastSeconds, pulse.samplesPerSec);
    return buf;
}

/** Render one dashboard frame. @return true when complete. */
bool
renderFrame(const std::string &dir, const Manifest &manifest,
            int tick, std::ostream &out)
{
    int done = 0, failed = 0, runningCount = 0, pending = 0;
    int retriesBurned = 0;
    // Per-scenario rollup: shards done / total, summed latest
    // throughput across shards with snapshots.
    std::map<std::string, std::pair<int, int>> coverage;
    std::map<std::string, double> throughput;

    AsciiTable table({"shard", "trials", "status", "attempts", "exit",
                      "metrics", "forensic"});
    std::vector<std::string> bundlePaths;
    for (const Shard &s : manifest.shards) {
        switch (s.status) {
        case ShardStatus::Done: ++done; break;
        case ShardStatus::Failed: ++failed; break;
        case ShardStatus::Running: ++runningCount; break;
        case ShardStatus::Pending: ++pending; break;
        }
        if (s.attempts > 1)
            retriesBurned += s.attempts - 1;
        ++coverage[s.scenario].second;
        if (s.status == ShardStatus::Done)
            ++coverage[s.scenario].first;

        const ShardPulse pulse = readPulse(dir, s);
        if (pulse.present && !pulse.midWrite)
            throughput[s.scenario] += pulse.samplesPerSec;
        const std::string forensic = describeForensics(dir, s);
        if (forensic == "bundle")
            bundlePaths.push_back(campaignPath(dir, bundleDir(s.id)));
        table.addRow({s.id,
                      "[" + std::to_string(s.trialBegin) + ", " +
                          std::to_string(s.trialBegin +
                                         s.trialCount) +
                          ")",
                      shardStatusName(s.status),
                      AsciiTable::integer(s.attempts),
                      s.attempts > 0
                          ? AsciiTable::integer(s.exitCode)
                          : "-",
                      describePulse(pulse), forensic});
    }

    out << table.str("campaign " + dir + " — tick " +
                     std::to_string(tick));
    out << done << " done, " << runningCount << " running, "
        << failed << " failed, " << pending
        << " pending; retry budget burned: " << retriesBurned
        << "\n";
    if (!bundlePaths.empty()) {
        out << "forensics bundles (score with `c4sweep forensics`):\n";
        for (const std::string &path : bundlePaths)
            out << "  " << path << "\n";
    }
    if (!throughput.empty()) {
        AsciiTable hi({"scenario", "shards done", "samples/s"});
        for (const auto &[scenario, cover] : coverage) {
            const auto it = throughput.find(scenario);
            hi.addRow({scenario,
                       std::to_string(cover.first) + "/" +
                           std::to_string(cover.second),
                       AsciiTable::num(
                           it != throughput.end() ? it->second
                                                  : 0.0,
                           1)});
        }
        out << hi.str();
    }

    const bool complete = campaignComplete(manifest);
    if (complete)
        out << "campaign complete\n";
    out << "\n";
    out.flush();
    return complete;
}

} // namespace

int
watchCampaign(const std::string &dir, const WatchOptions &opt,
              std::ostream &out)
{
    for (int tick = 1;; ++tick) {
        Manifest manifest;
        try {
            manifest = loadManifest(dir);
        } catch (const std::exception &e) {
            out << e.what() << "\n";
            return 2;
        }
        if (renderFrame(dir, manifest, tick, out))
            return 0;
        if (opt.maxTicks > 0 && tick >= opt.maxTicks)
            return 1;
        if (opt.intervalSeconds > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(opt.intervalSeconds));
        }
    }
}

} // namespace c4::sweep
