#include "sweep/forensics.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "c4d/incident.h"
#include "replay/corpus.h"
#include "replay/replay.h"
#include "specio/json.h"
#include "sweep/manifest.h"
#include "trace/analyze.h"

namespace c4::sweep {

using specio::Json;

namespace {

Json
jsonString(const std::string &s)
{
    Json v;
    v.kind = Json::Kind::String;
    v.string = s;
    return v;
}

Json
jsonInt(std::int64_t i)
{
    Json v;
    v.kind = Json::Kind::Int;
    v.integer = i;
    return v;
}

void
add(Json &obj, const char *key, Json value)
{
    Json::Member m;
    m.key = key;
    m.value = std::move(value);
    obj.object.push_back(std::move(m));
}

Json
emptyObject()
{
    Json v;
    v.kind = Json::Kind::Object;
    return v;
}

Json
stringArray(const std::vector<std::string> &items)
{
    Json v;
    v.kind = Json::Kind::Array;
    for (const std::string &s : items)
        v.array.push_back(jsonString(s));
    return v;
}

[[noreturn]] void
bad(const std::string &what)
{
    throw std::runtime_error("bundle: " + what);
}

const Json &
need(const Json &obj, const char *key, Json::Kind kind)
{
    const Json::Member *m = obj.find(key);
    if (!m)
        bad(std::string("missing key \"") + key + "\"");
    if (m->value.kind != kind) {
        bad(std::string("\"") + key + "\" must be a " +
            Json::kindName(kind) + ", not " +
            Json::kindName(m->value.kind));
    }
    return m->value;
}

std::string
needString(const Json &obj, const char *key)
{
    return need(obj, key, Json::Kind::String).string;
}

int
needInt(const Json &obj, const char *key)
{
    return static_cast<int>(need(obj, key, Json::Kind::Int).integer);
}

std::vector<std::string>
needStringArray(const Json &obj, const char *key)
{
    std::vector<std::string> out;
    for (const Json &v : need(obj, key, Json::Kind::Array).array) {
        if (v.kind != Json::Kind::String) {
            bad(std::string("\"") + key +
                "\" entries must be strings");
        }
        out.push_back(v.string);
    }
    return out;
}

/** Every *.jsonl under `<root>/<sub>`, root-relative and sorted. */
std::vector<std::string>
scanJsonl(const std::filesystem::path &root, const char *sub)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    std::error_code ec;
    const fs::path base = root / sub;
    if (!fs::is_directory(base, ec))
        return out;
    for (fs::recursive_directory_iterator it(base, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        if (it->path().extension() != ".jsonl")
            continue;
        out.push_back(
            fs::relative(it->path(), root, ec).generic_string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

std::string
bundleDir(const std::string &shardId)
{
    return "forensics/" + shardId;
}

std::string
writeBundleManifest(const BundleManifest &bundle)
{
    Json doc = emptyObject();
    add(doc, "schema", jsonString(kBundleSchema));
    add(doc, "shard", jsonString(bundle.shard));
    add(doc, "scenario", jsonString(bundle.scenario));
    add(doc, "spec", jsonString(bundle.spec));
    add(doc, "log", jsonString(bundle.log));
    add(doc, "csv", jsonString(bundle.csv));
    add(doc, "trial_begin", jsonInt(bundle.trialBegin));
    add(doc, "trial_count", jsonInt(bundle.trialCount));
    add(doc, "attempts", jsonInt(bundle.attempts));
    add(doc, "exit_code", jsonInt(bundle.exitCode));
    add(doc, "forensic_exit", jsonInt(bundle.forensicExit));
    add(doc, "traces", stringArray(bundle.traces));
    add(doc, "metrics", stringArray(bundle.metrics));
    return specio::writeJson(doc);
}

BundleManifest
parseBundleManifest(const std::string &text)
{
    Json doc;
    try {
        doc = specio::parseJson(text);
    } catch (const specio::SpecError &e) {
        bad(e.what());
    }
    if (doc.kind != Json::Kind::Object)
        bad("document must be an object");

    // Strict key set: a misspelled or future key is an error, never
    // silently ignored — a bundle is evidence, and evidence that
    // parses differently on two hosts is worse than none.
    static const std::set<std::string> kKnown = {
        "schema",      "shard",       "scenario", "spec",
        "log",         "csv",         "trial_begin", "trial_count",
        "attempts",    "exit_code",   "forensic_exit", "traces",
        "metrics"};
    for (const Json::Member &m : doc.object) {
        if (kKnown.count(m.key) == 0)
            bad("unknown key \"" + m.key + "\"");
    }

    const std::string schema = needString(doc, "schema");
    if (schema != kBundleSchema) {
        bad("unsupported schema \"" + schema + "\" (want " +
            kBundleSchema + ")");
    }

    BundleManifest b;
    b.shard = needString(doc, "shard");
    b.scenario = needString(doc, "scenario");
    b.spec = needString(doc, "spec");
    b.log = needString(doc, "log");
    b.csv = needString(doc, "csv");
    b.trialBegin = needInt(doc, "trial_begin");
    b.trialCount = needInt(doc, "trial_count");
    b.attempts = needInt(doc, "attempts");
    b.exitCode = needInt(doc, "exit_code");
    b.forensicExit = needInt(doc, "forensic_exit");
    b.traces = needStringArray(doc, "traces");
    b.metrics = needStringArray(doc, "metrics");
    if (b.shard.empty())
        bad("\"shard\" must not be empty");
    if (b.trialBegin < 0 || b.trialCount < 1)
        bad("bundle for \"" + b.shard + "\" has a bad trial range");
    return b;
}

BundleManifest
loadBundleManifest(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        bad("cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseBundleManifest(text.str());
}

bool
bundleExists(const std::string &dir, const std::string &shardId)
{
    std::error_code ec;
    return std::filesystem::is_regular_file(
        campaignPath(dir, bundleDir(shardId) + "/bundle.json"), ec);
}

std::string
captureBundle(const std::string &dir, const Shard &shard,
              const std::string &bench, bool smoke,
              std::ostream &diag)
{
    namespace fs = std::filesystem;
    const std::string rel = bundleDir(shard.id);
    const fs::path root = campaignPath(dir, rel);
    std::error_code ec;
    fs::remove_all(root, ec); // the latest failure wins
    fs::create_directories(root, ec);
    if (ec) {
        return "cannot create bundle directory '" + root.string() +
               "': " + ec.message();
    }

    // Strings the child needs, built pre-fork: after fork() only
    // async-signal-safe calls are allowed until exec.
    const std::string spec = campaignPath(dir, shard.spec);
    const std::string csv = (root / "stdout.csv").string();
    const std::string log = (root / "stderr.log").string();
    const std::string traceDir = (root / "trace").string();
    const std::string metricsDir = (root / "metrics").string();

    diag << shard.id
         << ": cutting failure bundle (traced re-run) under "
         << root.string() << "\n";

    const pid_t pid = fork();
    if (pid < 0)
        return std::string("fork: ") + std::strerror(errno);
    if (pid == 0) {
        // Child. Only async-signal-safe calls until exec.
        const int csvFd =
            open(csv.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        const int logFd =
            open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (csvFd < 0 || logFd < 0 ||
            dup2(csvFd, STDOUT_FILENO) < 0 ||
            dup2(logFd, STDERR_FILENO) < 0) {
            if (csvFd >= 0)
                close(csvFd);
            if (logFd >= 0)
                close(logFd);
            _exit(126);
        }
        close(csvFd);
        close(logFd);
        const char *argv[] = {bench.c_str(),
                              "--spec",
                              spec.c_str(),
                              "--csv",
                              "-",
                              "--trace",
                              traceDir.c_str(),
                              "--metrics",
                              metricsDir.c_str(),
                              smoke ? "--smoke" : nullptr,
                              nullptr};
        execv(bench.c_str(), const_cast<char *const *>(argv));
        _exit(127);
    }

    int status = 0;
    for (;;) {
        if (waitpid(pid, &status, 0) >= 0)
            break;
        if (errno == EINTR)
            continue;
        return std::string("waitpid: ") + std::strerror(errno);
    }
    const int code = WIFEXITED(status) ? WEXITSTATUS(status)
                                       : 128 + WTERMSIG(status);
    if (code == 126 || code == 127) {
        return "forensic re-run of " + shard.id +
               " could not start (exit " + std::to_string(code) +
               ")";
    }

    fs::copy_file(spec, root / "shard.json",
                  fs::copy_options::overwrite_existing, ec);
    if (ec) {
        return "cannot copy shard spec into bundle: " + ec.message();
    }

    BundleManifest bundle;
    bundle.shard = shard.id;
    bundle.scenario = shard.scenario;
    bundle.trialBegin = shard.trialBegin;
    bundle.trialCount = shard.trialCount;
    bundle.attempts = shard.attempts;
    bundle.exitCode = shard.exitCode;
    bundle.forensicExit = code;
    bundle.traces = scanJsonl(root, "trace");
    bundle.metrics = scanJsonl(root, "metrics");

    // tmp + rename, like the campaign manifest: a watcher polling the
    // bundle never reads a torn bundle.json.
    const fs::path path = root / "bundle.json";
    const fs::path tmp = root / "bundle.json.tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return "cannot write " + tmp.string();
        out << writeBundleManifest(bundle);
        out.flush();
        if (!out)
            return "short write to " + tmp.string();
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return "cannot rename " + tmp.string() + " over " +
               path.string();

    if (code == 0) {
        diag << shard.id
             << ": traced re-run exited 0 — the failure did not "
                "reproduce (bundle kept for the record)\n";
    } else {
        diag << shard.id << ": bundle captured ("
             << bundle.traces.size() << " trace(s), "
             << bundle.metrics.size() << " metric snapshot(s))\n";
    }
    return "";
}

std::string
forensicsReport(const std::string &dir, const Manifest &manifest,
                std::ostream &out)
{
    int bundles = 0;
    for (const Shard &s : manifest.shards) {
        if (!bundleExists(dir, s.id))
            continue;
        ++bundles;
        const std::string rel = bundleDir(s.id);
        BundleManifest b;
        try {
            b = loadBundleManifest(
                campaignPath(dir, rel + "/bundle.json"));
        } catch (const std::exception &e) {
            return s.id + ": " + e.what();
        }

        out << "== " << b.shard << " (" << b.scenario << ", trials ["
            << b.trialBegin << ", " << b.trialBegin + b.trialCount
            << "), " << b.attempts << " attempt(s), exit "
            << b.exitCode << ")\n";
        out << "   bundle: " << campaignPath(dir, rel) << "\n";
        if (b.forensicExit == 0) {
            out << "   note: the traced re-run exited 0 — the "
                   "failure did not reproduce deterministically\n";
        }
        if (b.traces.empty())
            out << "   no traces captured\n";

        std::map<std::string, int> kinds;
        for (const std::string &t : b.traces) {
            out << " - " << t << ": ";
            try {
                const trace::TraceFile tf = trace::loadTraceFile(
                    campaignPath(dir, rel + "/" + t));
                const std::vector<c4d::IncidentVerdict> verdicts =
                    replay::replayTrace(tf.events);
                out << tf.events.size() << " event(s), "
                    << verdicts.size() << " verdict(s)\n";
                out << replay::verdictsToJsonl(b.shard + "/" + t,
                                               verdicts);
                for (const c4d::IncidentVerdict &v : verdicts)
                    ++kinds[c4d::incidentKindName(v.kind)];
            } catch (const std::exception &e) {
                // A single unreadable trace must not hide the rest
                // of the report.
                out << "replay failed: " << e.what() << "\n";
            }
        }
        if (!kinds.empty()) {
            out << "   verdict kinds:";
            for (const auto &[kind, count] : kinds)
                out << " " << kind << "=" << count;
            out << "\n";
        }
    }
    if (bundles == 0) {
        out << "no failure bundles (no shard has exhausted its "
               "attempt budget)\n";
    }
    return "";
}

} // namespace c4::sweep
