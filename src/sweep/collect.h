/**
 * @file
 * Multi-host campaign collection: pull shard results back from
 * per-host copies of one planned campaign and reconcile the journals,
 * so `c4sweep merge` afterwards produces the byte-identical campaign
 * CSV a single-process run would have.
 *
 * The intended flow is
 *
 *     c4sweep plan  DIR ...              # once, on the primary
 *     cp -r DIR host1:/...; cp -r DIR host2:/...
 *     c4sweep run --dir DIR --only A,B   # one --only set per host
 *     c4sweep run --dir DIR --only C,D
 *     c4sweep collect DIR HOST1_DIR HOST2_DIR
 *     c4sweep merge --dir DIR
 *
 * Reconciliation is journal-driven and refuses ambiguity instead of
 * guessing:
 *
 *  - `done` beats `pending`/`failed`: the CSV, log, metrics tree, and
 *    forensics bundle are copied back and the journal entry adopted.
 *  - two `done` entries for one shard must have byte-identical CSVs
 *    (shards are seed-deterministic, so anything else means the hosts
 *    ran different inputs) — divergence is a hard error naming the
 *    shard, and nothing is modified.
 *  - a `running` entry on either side is a hard error with a resume
 *    hint: that campaign is either live or interrupted, and collecting
 *    from it would race or lose work.
 *  - `failed` beats `pending` (the log and forensics bundle travel);
 *    between two `failed` entries the higher attempt count wins.
 *
 * All validation happens before any file is touched: an error leaves
 * the primary directory byte-for-byte unchanged.
 */

#ifndef C4_SWEEP_COLLECT_H
#define C4_SWEEP_COLLECT_H

#include <iosfwd>
#include <string>
#include <vector>

namespace c4::sweep {

/** What `c4sweep collect` collected from its command line. */
struct CollectRequest
{
    std::string dir; ///< the primary campaign directory (updated)

    /** Per-host campaign copies to pull results from, in argument
     * order (later hosts reconcile against the running winner). */
    std::vector<std::string> hosts;

    /** Restrict collection to these shard ids (empty = all). Ids must
     * exist in the manifest; non-selected shards are untouched. */
    std::vector<std::string> only;
};

/** What one `c4sweep collect` invocation did. */
struct CollectStats
{
    int adopted = 0;   ///< shards whose result came from a host copy
    int deduped = 0;   ///< done-on-both shards with identical CSVs
    int failures = 0;  ///< shards still failed after reconciliation
    int bundles = 0;   ///< forensics bundles present after collection
    int untouched = 0; ///< shards excluded by --only
};

/**
 * Reconcile @p request.hosts into the primary campaign.
 * @return "" on success, otherwise the error (journal conflict,
 *         structural mismatch, or I/O failure); the primary journal
 *         is only rewritten on success. Progress goes to @p diag.
 */
std::string collectCampaign(const CollectRequest &request,
                            CollectStats &stats, std::ostream &diag);

} // namespace c4::sweep

#endif // C4_SWEEP_COLLECT_H
