/**
 * @file
 * The campaign executor: runs the pending shards of a planned
 * campaign as child `c4bench --spec shard.json --csv -` processes
 * (stdout redirected into the shard CSV, stderr into the shard log)
 * under a fixed-size worker pool.
 *
 * Every state transition is journaled to the manifest before and
 * after the child runs, so killing the executor mid-campaign loses at
 * most the in-flight shards: a re-run resets interrupted `running`
 * shards to `pending` and skips everything already `done`. A non-zero
 * child is retried up to the attempt budget, then parked as `failed`
 * with its log intact.
 */

#ifndef C4_SWEEP_EXEC_H
#define C4_SWEEP_EXEC_H

#include <iosfwd>
#include <string>
#include <vector>

namespace c4::sweep {

/** What `c4sweep run` collected from its command line. */
struct ExecRequest
{
    std::string dir;   ///< planned campaign directory
    std::string bench; ///< c4bench to exec; empty = sibling of c4sweep

    /** Concurrent shard children. Each child additionally runs its
     * own trial-sweep threads; 1 is the safe default on small CI
     * boxes. */
    int workers = 1;

    /** Total executions allowed per shard (first run + retries). */
    int maxAttempts = 2;

    /** Execute at most this many shards this invocation (0 = all) —
     * incremental campaigns and deterministic resume testing. */
    int maxShards = 0;

    /**
     * `--only id1,id2`: restrict this invocation to the named shards
     * (manifest ids like "fig9_dualport.s0"). Empty = all. Every id
     * must exist in the manifest — an unknown id is a hard error, not
     * a silent no-op — and non-selected shards are left untouched
     * (their journal state included), so disjoint `--only` sets can
     * be handed to different hosts over copies of one planned
     * campaign and the CSVs collected back for a single merge.
     */
    std::vector<std::string> only;

    /**
     * `--metrics`: each shard child additionally writes c4metrics/1
     * snapshots under `<dir>/metrics/<shard.id>/`, which `c4sweep
     * status --watch` polls for per-scenario highlights.
     */
    bool metrics = false;

    /**
     * When a shard exhausts its attempt budget, re-run it once with
     * `--trace`/`--metrics` attached and freeze the evidence under
     * `forensics/<shard.id>/` (sweep/forensics.h). Trials are
     * seed-deterministic, so the re-run reproduces the failure.
     * `--no-forensics` opts out.
     */
    bool forensics = true;
};

/** What one `c4sweep run` invocation did. */
struct ExecStats
{
    int executed = 0;  ///< shards brought to done this invocation
    int skipped = 0;   ///< shards already done at load
    int failed = 0;    ///< shards parked as failed
    int remaining = 0; ///< shards still pending on exit
    int bundles = 0;   ///< failure bundles captured for parked shards
};

/**
 * Execute the campaign's pending shards.
 * @return "" on success (even with failed shards — see @p stats),
 *         otherwise an infrastructure error (missing manifest or
 *         bench binary); progress goes to @p diag.
 */
std::string runCampaign(const ExecRequest &request, ExecStats &stats,
                        std::ostream &diag);

/** `<dir-of-this-executable>/c4bench` — the build-tree default. */
std::string siblingBenchPath();

} // namespace c4::sweep

#endif // C4_SWEEP_EXEC_H
