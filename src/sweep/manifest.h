/**
 * @file
 * The campaign manifest: one JSON file (`manifest.json` in the
 * campaign directory) that is the single journaled source of truth for
 * a distributed sweep. `c4sweep plan` writes it next to the per-shard
 * spec files; `c4sweep run` re-writes it (atomically, via tmp+rename)
 * after every shard state transition so a killed campaign resumes
 * exactly where it stopped; `c4sweep merge` reads it to stitch the
 * shard CSVs back together in the deterministic single-process order.
 *
 * All paths inside the manifest are relative to the campaign
 * directory, so a planned campaign can be shipped to another host (or
 * split across hosts by handing each a subset of the shard list) and
 * run there unchanged.
 */

#ifndef C4_SWEEP_MANIFEST_H
#define C4_SWEEP_MANIFEST_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace c4::sweep {

/** Lifecycle of one shard, journaled in the manifest. */
enum class ShardStatus {
    Pending, ///< not yet executed (or queued for retry)
    Running, ///< a worker owns it; seen at load = interrupted campaign
    Done,    ///< child exited 0; its CSV is final
    Failed,  ///< exhausted its attempts; log holds the evidence
};

/** Manifest string for @p status ("pending", "running", ...). */
const char *shardStatusName(ShardStatus status);

/** @return false when @p name is not a known status string. */
bool shardStatusFromName(const std::string &name, ShardStatus &out);

/** One unit of campaign work: a trial range of one scenario. */
struct Shard
{
    std::string id;       ///< "<scenario>.s<k>", stable across runs
    std::string scenario; ///< scenario the shard belongs to
    std::string spec;     ///< shard spec file, relative to the dir
    std::string csv;      ///< shard CSV the child writes
    std::string log;      ///< child stderr (and table) capture
    int trialBegin = 0;
    int trialCount = 0;
    ShardStatus status = ShardStatus::Pending;
    int attempts = 0; ///< completed executions, success or failure
    int exitCode = 0; ///< last child exit code (when attempts > 0)
};

/** Per-scenario campaign facts; the vector order is the merge order. */
struct ScenarioEntry
{
    std::string name;
    int trials = 0; ///< total sweep width the shards must cover
};

/** The whole campaign. */
struct Manifest
{
    int version = 1;
    bool smoke = false; ///< shards run with --smoke (plan-time flag)
    std::vector<ScenarioEntry> scenarios;
    std::vector<Shard> shards;
};

/** `<dir>/manifest.json`. */
std::string manifestPath(const std::string &dir);

/** Resolve a manifest-relative path against the campaign dir. */
std::string campaignPath(const std::string &dir,
                         const std::string &relative);

/** Serialize canonically (same bytes for the same manifest). */
std::string writeManifest(const Manifest &manifest);

/** @throws std::runtime_error on malformed or mistyped input. */
Manifest parseManifest(const std::string &text);

/** Load `<dir>/manifest.json`. @throws std::runtime_error. */
Manifest loadManifest(const std::string &dir);

/**
 * Journal the manifest: write `<dir>/manifest.json.tmp`, then rename
 * over the real file, so a crash mid-write never truncates the
 * campaign state. @throws std::runtime_error on I/O failure.
 */
void saveManifest(const std::string &dir, const Manifest &manifest);

/** Human-readable campaign state (the `c4sweep status` output). */
void printStatus(const Manifest &manifest, std::ostream &out);

/** True when every shard is Done. */
bool campaignComplete(const Manifest &manifest);

} // namespace c4::sweep

#endif // C4_SWEEP_MANIFEST_H
