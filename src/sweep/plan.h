/**
 * @file
 * The shard planner: splits the trial sweeps of registered scenarios
 * (and/or spec files from disk) into per-shard spec files plus a
 * campaign manifest.
 *
 * A shard is a contiguous trial range of one scenario, frozen as a
 * complete spec file (variants evaluated under the planned --smoke /
 * --trials / --seed, both trial counts pinned to the planned sweep
 * width, `trial_begin`/`trial_count` marking the range). Because
 * per-trial seeds depend only on (base seed, absolute trial index),
 * any process — this host or another — that runs
 * `c4bench --spec shard.json --csv shard.csv` produces exactly the
 * rows the unsharded run would have produced for those trials, which
 * is what lets `c4sweep merge` reassemble a byte-identical CSV.
 *
 * Balanced partitioning: trials split as evenly as possible across the
 * requested shard count (the first `trials % shards` shards take one
 * extra trial), the classic static load-balance for embarrassingly
 * parallel sweeps.
 */

#ifndef C4_SWEEP_PLAN_H
#define C4_SWEEP_PLAN_H

#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/options.h"

namespace c4::sweep {

/** What `c4sweep plan` collected from its command line. */
struct PlanRequest
{
    /** Registered scenario names, or `.json` spec-file paths (loaded
     * and registered exactly like `c4bench --spec`). */
    std::vector<std::string> targets;

    /** Campaign directory to create (shards/, csv/, logs/, and
     * manifest.json live under it). */
    std::string dir;

    /** Shards per scenario; trimmed when a scenario has fewer trials
     * than shards. Ignored when trialsPerShard is set. */
    int shards = 4;

    /** Alternative sizing: fixed trials per shard (last one ragged). */
    int trialsPerShard = 0;

    /** Options frozen into every shard spec (--smoke/--trials/--seed).
     * threads is deliberately NOT recorded: shard output is
     * byte-identical for any worker-thread count. */
    scenario::RunOptions opt;
};

/**
 * Plan a campaign: write the `<dir>/shards/` spec files and
 * `<dir>/manifest.json`. Scenarios with a custom (code-defined)
 * executor cannot run from spec files and are rejected.
 * @return "" on success, otherwise the error; progress goes to @p diag.
 */
std::string planCampaign(const PlanRequest &request,
                         std::ostream &diag);

} // namespace c4::sweep

#endif // C4_SWEEP_PLAN_H
