/**
 * @file
 * `c4sweep status --watch`: a polling campaign dashboard. Re-reads
 * the journaled manifest on a fixed cadence and renders a live view —
 * shards done/running/failed, retry budget burned, and (when the
 * campaign runs with `--metrics`) per-scenario throughput highlights
 * pulled from each shard's latest c4metrics/1 snapshot.
 *
 * The watcher is a pure reader: it never writes the manifest, so it
 * is safe to run alongside an executor (even one on another host over
 * a shared filesystem). Snapshot files mid-write by a shard child are
 * tolerated and shown as such, not treated as errors.
 */

#ifndef C4_SWEEP_WATCH_H
#define C4_SWEEP_WATCH_H

#include <iosfwd>
#include <string>

namespace c4::sweep {

/** What `c4sweep status --watch` collected from its command line. */
struct WatchOptions
{
    /** Seconds between manifest polls (0 = poll back-to-back, for
     * tests). */
    double intervalSeconds = 2.0;

    /** Stop after this many polls even if the campaign is still
     * incomplete (0 = watch until complete). */
    int maxTicks = 0;
};

/**
 * Poll `<dir>/manifest.json` and render the dashboard to @p out after
 * every poll.
 * @return 0 once the campaign completes, 1 when the tick budget runs
 *         out with the campaign incomplete, 2 on a load error.
 */
int watchCampaign(const std::string &dir, const WatchOptions &opt,
                  std::ostream &out);

} // namespace c4::sweep

#endif // C4_SWEEP_WATCH_H
