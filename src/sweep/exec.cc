#include "sweep/exec.h"

#include <cerrno>
#include <cstring>
#include <ostream>
#include <set>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sweep/forensics.h"
#include "sweep/manifest.h"

namespace c4::sweep {

namespace {

/** One in-flight shard child. */
struct Child
{
    pid_t pid = -1;
    std::size_t shard = 0;
};

/**
 * fork/exec one shard worker: `bench --spec <spec> --csv -` with
 * stdout redirected into the shard CSV and stderr into the shard log
 * (both truncated — a retry starts clean). A non-empty @p metricsDir
 * adds `--metrics <metricsDir>`; the string is built by the caller
 * because the child may only use async-signal-safe calls before exec.
 * @return child pid, or -1 with @p error set.
 */
pid_t
spawnShard(const std::string &bench, const std::string &spec,
           const std::string &csv, const std::string &log,
           const std::string &metricsDir, bool smoke,
           std::string &error)
{
    const pid_t pid = fork();
    if (pid < 0) {
        error = std::string("fork: ") + std::strerror(errno);
        return -1;
    }
    if (pid > 0)
        return pid;

    // Child. Only async-signal-safe calls until exec.
    const int csvFd =
        open(csv.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    const int logFd =
        open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (csvFd < 0 || logFd < 0 || dup2(csvFd, STDOUT_FILENO) < 0 ||
        dup2(logFd, STDERR_FILENO) < 0) {
        // Close whichever side did open before bailing: _exit skips
        // atexit handlers but not the kernel's view of an fd leaked
        // into a failed setup path.
        if (csvFd >= 0)
            close(csvFd);
        if (logFd >= 0)
            close(logFd);
        _exit(126);
    }
    close(csvFd);
    close(logFd);

    std::vector<const char *> argv;
    argv.push_back(bench.c_str());
    argv.push_back("--spec");
    argv.push_back(spec.c_str());
    argv.push_back("--csv");
    argv.push_back("-");
    if (!metricsDir.empty()) {
        argv.push_back("--metrics");
        argv.push_back(metricsDir.c_str());
    }
    if (smoke)
        argv.push_back("--smoke");
    argv.push_back(nullptr);
    execv(bench.c_str(), const_cast<char *const *>(argv.data()));
    _exit(127);
}

} // namespace

std::string
siblingBenchPath()
{
    char buf[4096];
    const ssize_t n =
        readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "c4bench";
    buf[n] = '\0';
    std::string path(buf);
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos)
        return "c4bench";
    return path.substr(0, slash + 1) + "c4bench";
}

std::string
runCampaign(const ExecRequest &request, ExecStats &stats,
            std::ostream &diag)
{
    Manifest manifest;
    try {
        manifest = loadManifest(request.dir);
    } catch (const std::exception &e) {
        return e.what();
    }
    if (request.workers < 1)
        return "--workers must be >= 1";
    if (request.maxAttempts < 1)
        return "the attempt budget must be >= 1";

    const std::string bench =
        request.bench.empty() ? siblingBenchPath() : request.bench;
    if (access(bench.c_str(), X_OK) != 0) {
        return "cannot execute bench binary '" + bench +
               "': " + std::strerror(errno) + " (pass --bench)";
    }

    // `--only`: validate every id against the manifest up front — a
    // typo must fail loudly, not silently run nothing — then build
    // the selection predicate. Non-selected shards are never touched,
    // not even their journal state: on a multi-host split, this
    // host's view of a peer's shard is stale by construction.
    const std::set<std::string> only(request.only.begin(),
                                     request.only.end());
    std::set<std::string> unknown = only;
    for (const Shard &s : manifest.shards)
        unknown.erase(s.id);
    if (!unknown.empty()) {
        return "--only: unknown shard id '" + *unknown.begin() +
               "' (see `c4sweep status`)";
    }
    auto selected = [&](const Shard &s) {
        return only.empty() || only.count(s.id) > 0;
    };

    // Crash recovery: a `running` shard at load means a previous
    // executor died (or was killed) mid-shard. Its CSV may be
    // truncated; the execution never journaled a result, so it does
    // not consume an attempt — just re-queue it.
    bool dirty = false;
    for (Shard &s : manifest.shards) {
        if (!selected(s)) {
            if (s.status == ShardStatus::Done)
                ++stats.skipped;
            continue;
        }
        if (s.status == ShardStatus::Running) {
            diag << s.id
                 << ": interrupted by a previous run; re-queuing\n";
            s.status = ShardStatus::Pending;
            dirty = true;
        } else if (s.status == ShardStatus::Failed &&
                   s.attempts < request.maxAttempts) {
            // A raised attempt budget re-opens previously parked
            // shards.
            diag << s.id << ": re-queuing failed shard (attempt "
                 << s.attempts + 1 << "/" << request.maxAttempts
                 << ")\n";
            s.status = ShardStatus::Pending;
            dirty = true;
        } else if (s.status == ShardStatus::Done) {
            ++stats.skipped;
        }
    }
    if (dirty)
        saveManifest(request.dir, manifest);

    std::vector<Child> running;
    std::set<std::size_t> launched; // distinct shards, for --max-shards

    // Journal one reaped child. Shared by the main loop and the
    // error-path drain below.
    auto finishChild = [&](pid_t pid, int status) {
        auto it = running.begin();
        for (; it != running.end(); ++it) {
            if (it->pid == pid)
                break;
        }
        if (it == running.end())
            return; // not one of ours
        Shard &shard = manifest.shards[it->shard];
        running.erase(it);

        const int code = WIFEXITED(status)
                             ? WEXITSTATUS(status)
                             : 128 + WTERMSIG(status);
        // The child reserves 126 for "setup failed before exec"
        // (could not open/redirect the CSV or log) and 127 for "could
        // not exec the bench" — distinct from the bench itself
        // exiting non-zero, which is what the shard log explains.
        const char *why = code == 126
                              ? " (child setup failed: could not "
                                "open or redirect the shard CSV/log)"
                              : code == 127
                                    ? " (cannot exec the bench "
                                      "binary)"
                                    : "";
        ++shard.attempts;
        shard.exitCode = code;
        if (code == 0) {
            shard.status = ShardStatus::Done;
            ++stats.executed;
            diag << shard.id << ": done\n";
        } else if (shard.attempts < request.maxAttempts) {
            shard.status = ShardStatus::Pending;
            diag << shard.id << ": exit " << code << why
                 << "; retrying (" << shard.attempts << "/"
                 << request.maxAttempts << " attempts used)\n";
        } else {
            shard.status = ShardStatus::Failed;
            ++stats.failed;
            diag << shard.id << ": exit " << code << why
                 << "; out of attempts — see "
                 << campaignPath(request.dir, shard.log) << "\n";
        }
        saveManifest(request.dir, manifest);

        // Budget exhausted: cut the failure bundle while the loss is
        // fresh. Best-effort — a bundle that cannot be captured must
        // not turn a journaled shard failure into a campaign error.
        if (shard.status == ShardStatus::Failed && request.forensics) {
            const std::string bundleError = captureBundle(
                request.dir, shard, bench, manifest.smoke, diag);
            if (bundleError.empty())
                ++stats.bundles;
            else
                diag << shard.id
                     << ": forensics capture failed: " << bundleError
                     << "\n";
        }
    };

    // Before returning an infrastructure error, wait for every
    // in-flight child and journal its result — abandoning live
    // children would leave them writing shard CSVs that a resumed
    // campaign could re-queue and write concurrently.
    auto drainAndFail = [&](std::string error) {
        while (!running.empty()) {
            int status = 0;
            const pid_t pid = waitpid(-1, &status, 0);
            if (pid < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            finishChild(pid, status);
        }
        return error;
    };

    auto nextPending = [&]() -> std::ptrdiff_t {
        for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
            if (manifest.shards[i].status != ShardStatus::Pending)
                continue;
            if (!selected(manifest.shards[i]))
                continue;
            if (request.maxShards > 0 && launched.count(i) == 0 &&
                static_cast<int>(launched.size()) >=
                    request.maxShards) {
                continue; // budget spent; retries of launched ok
            }
            return static_cast<std::ptrdiff_t>(i);
        }
        return -1;
    };

    for (;;) {
        while (static_cast<int>(running.size()) < request.workers) {
            const std::ptrdiff_t idx = nextPending();
            if (idx < 0)
                break;
            Shard &shard = manifest.shards[idx];
            shard.status = ShardStatus::Running;
            saveManifest(request.dir, manifest);
            std::string spawnError;
            // Per-shard snapshot directory, built pre-fork (the child
            // is restricted to async-signal-safe calls). c4bench
            // creates the directory tree itself.
            const std::string metricsDir =
                request.metrics
                    ? campaignPath(request.dir, "metrics/" + shard.id)
                    : std::string();
            const pid_t pid = spawnShard(
                bench, campaignPath(request.dir, shard.spec),
                campaignPath(request.dir, shard.csv),
                campaignPath(request.dir, shard.log), metricsDir,
                manifest.smoke, spawnError);
            if (pid < 0) {
                shard.status = ShardStatus::Pending;
                saveManifest(request.dir, manifest);
                return drainAndFail(spawnError);
            }
            launched.insert(static_cast<std::size_t>(idx));
            diag << shard.id << ": started (trials ["
                 << shard.trialBegin << ", "
                 << shard.trialBegin + shard.trialCount << "), pid "
                 << pid << ")\n";
            running.push_back(
                {pid, static_cast<std::size_t>(idx)});
        }
        if (running.empty())
            break;

        int status = 0;
        const pid_t pid = waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            return std::string("waitpid: ") + std::strerror(errno);
        }
        finishChild(pid, status);
    }

    for (const Shard &s : manifest.shards) {
        if (s.status == ShardStatus::Pending)
            ++stats.remaining;
    }
    diag << "run: " << stats.executed << " executed, "
         << stats.skipped << " skipped (already done), "
         << stats.failed << " failed, " << stats.remaining
         << " still pending";
    if (stats.bundles > 0)
        diag << ", " << stats.bundles << " failure bundle(s) under "
             << campaignPath(request.dir, "forensics");
    diag << "\n";
    return "";
}

} // namespace c4::sweep
