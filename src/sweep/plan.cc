#include "sweep/plan.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "scenario/cli.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "specio/specio.h"
#include "sweep/manifest.h"

namespace c4::sweep {

namespace {

std::string
writeFileOrError(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return "cannot write " + path;
    out << text;
    out.flush();
    if (!out)
        return "short write to " + path;
    return "";
}

} // namespace

std::string
planCampaign(const PlanRequest &request, std::ostream &diag)
{
    namespace fs = std::filesystem;

    if (request.targets.empty())
        return "plan needs at least one scenario or spec file";
    if (request.trialsPerShard < 0)
        return "--trials-per-shard must be >= 1";
    if (request.trialsPerShard == 0 && request.shards < 1)
        return "--shards must be >= 1";

    // A campaign directory is a journal; silently re-planning over one
    // would discard completed-shard state.
    std::error_code ec;
    if (fs::exists(manifestPath(request.dir), ec)) {
        return manifestPath(request.dir) +
               " already exists; refusing to overwrite a planned "
               "campaign (remove the directory to re-plan)";
    }

    // Resolve targets against the registry, loading spec files the
    // same way `c4bench --spec` does (a file naming a registered
    // scenario replaces it). Only names are kept: registering a spec
    // file may reallocate the registry, so Scenario pointers are
    // looked up fresh when each one is planned.
    scenario::Registry &registry = scenario::Registry::instance();
    std::vector<std::string> names;
    for (const std::string &target : request.targets) {
        std::string name = target;
        if (scenario::looksLikeSpecPath(target.c_str())) {
            try {
                specio::SpecFile file = specio::loadSpecFile(target);
                name = file.name;
                if (registry.addOrReplace(
                        specio::scenarioFromSpec(file))) {
                    diag << "note: spec file '" << target
                         << "' replaces registered scenario '" << name
                         << "'\n";
                }
            } catch (const std::exception &e) {
                return e.what();
            }
        }
        if (!registry.find(name))
            return "unknown scenario '" + name + "' (try --list)";
        if (std::find(names.begin(), names.end(), name) !=
            names.end()) {
            return "scenario '" + name + "' given twice";
        }
        names.push_back(name);
    }

    for (const char *sub : {"shards", "csv", "logs"}) {
        fs::create_directories(fs::path(request.dir) / sub, ec);
        if (ec) {
            return "cannot create " + request.dir + "/" + sub + ": " +
                   ec.message();
        }
    }

    Manifest manifest;
    manifest.smoke = request.opt.smoke;

    for (const std::string &name : names) {
        const scenario::Scenario *s = registry.find(name);
        if (s->trialBegin != 0 || s->trialCount != 0) {
            return "scenario '" + s->name +
                   "' is itself a shard (trial_begin/trial_count "
                   "set); plan from the unsharded scenario";
        }

        // Freeze the scenario under the RESOLVED options — the same
        // options the single-process reference run hands to the
        // variants factory — so a factory that reads trials/seed
        // still freezes the shape the merge will be compared against.
        // The dump IS the work-item format: everything a worker
        // needs, no code.
        const scenario::RunOptions resolved =
            scenario::ScenarioRunner(request.opt).resolved(*s);
        const int total = resolved.trials;
        specio::SpecFile file =
            specio::specFromScenario(*s, resolved);
        for (const scenario::ScenarioSpec &spec : file.variants) {
            if (spec.custom) {
                return "scenario '" + s->name + "' variant '" +
                       spec.variant +
                       "' uses a custom (code-defined) executor and "
                       "cannot run from a spec file; it cannot be "
                       "sharded";
            }
        }
        // Pin BOTH trial counts to the planned sweep width so the
        // shard resolves to the same total whether or not the worker
        // passes --smoke.
        file.fullTrials = total;
        file.smokeTrials = total;

        // Balanced partition: with --shards N the first total%N
        // shards take one extra trial (3,3,2,2 — not 3,3,3,1); with
        // --trials-per-shard the chunks are fixed and the last one is
        // ragged. Scenarios with fewer trials than shards simply get
        // fewer shards.
        std::vector<int> counts;
        if (request.trialsPerShard > 0) {
            for (int left = total; left > 0;
                 left -= request.trialsPerShard) {
                counts.push_back(
                    std::min(request.trialsPerShard, left));
            }
        } else {
            const int shards = std::min(request.shards, total);
            const int base = total / shards;
            for (int k = 0; k < shards; ++k)
                counts.push_back(base + (k < total % shards ? 1 : 0));
        }
        ScenarioEntry entry;
        entry.name = s->name;
        entry.trials = total;
        manifest.scenarios.push_back(entry);

        int shardIndex = 0;
        int begin = 0;
        for (const int count : counts) {
            file.trialBegin = begin;
            file.trialCount = count;

            Shard shard;
            shard.id = s->name + ".s" + std::to_string(shardIndex);
            shard.scenario = s->name;
            shard.spec = "shards/" + shard.id + ".json";
            shard.csv = "csv/" + shard.id + ".csv";
            shard.log = "logs/" + shard.id + ".log";
            shard.trialBegin = begin;
            shard.trialCount = count;

            const std::string err = writeFileOrError(
                campaignPath(request.dir, shard.spec),
                specio::writeSpecFile(file));
            if (!err.empty())
                return err;
            manifest.shards.push_back(std::move(shard));
            ++shardIndex;
            begin += count;
        }
        diag << "planned " << s->name << ": " << total
             << " trial(s) across " << shardIndex << " shard(s)\n";
    }

    try {
        saveManifest(request.dir, manifest);
    } catch (const std::exception &e) {
        return e.what();
    }
    diag << "campaign: " << manifest.shards.size()
         << " shard(s) in " << request.dir << " — next: c4sweep run "
         << request.dir << "\n";
    return "";
}

} // namespace c4::sweep
