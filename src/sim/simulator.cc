#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace c4 {

EventId
Simulator::scheduleAt(Time when, Callback fn)
{
    assert(fn);
    if (when < now_)
        when = now_; // clamp: events cannot fire in the past
    const EventId id = nextId_++;
    queue_.push(Entry{when, nextSeq_++, id});
    live_.emplace(id, std::move(fn));
    return id;
}

EventId
Simulator::scheduleAfter(Duration delay, Callback fn)
{
    assert(delay >= 0);
    // Saturate instead of overflowing for "never"-ish delays.
    const Time when =
        delay >= kTimeNever - now_ ? kTimeNever : now_ + delay;
    return scheduleAt(when, std::move(fn));
}

bool
Simulator::cancel(EventId id)
{
    return live_.erase(id) > 0;
}

bool
Simulator::pending(EventId id) const
{
    return live_.count(id) > 0;
}

std::size_t
Simulator::pendingCount() const
{
    return live_.size();
}

bool
Simulator::step()
{
    while (!queue_.empty()) {
        Entry top = queue_.top();
        queue_.pop();
        auto it = live_.find(top.id);
        if (it == live_.end())
            continue; // cancelled; skip tombstone
        Callback fn = std::move(it->second);
        live_.erase(it);
        now_ = top.when;
        ++executed_;
        fn();
        return true;
    }
    return false;
}

std::uint64_t
Simulator::run(Time until)
{
    std::uint64_t n = 0;
    while (!queue_.empty()) {
        // Peek past tombstones to find the next live event time.
        while (!queue_.empty() && !live_.count(queue_.top().id))
            queue_.pop();
        if (queue_.empty())
            break;
        if (queue_.top().when > until)
            break;
        if (step())
            ++n;
    }
    if (until != kTimeNever && now_ < until)
        now_ = until;
    return n;
}

void
Simulator::clear()
{
    queue_ = {};
    live_.clear();
}

PeriodicTask::PeriodicTask(Simulator &sim, Duration period, Callback fn)
    : sim_(sim), period_(period), fn_(std::move(fn))
{
    assert(period_ > 0);
    assert(fn_);
}

PeriodicTask::~PeriodicTask()
{
    stop();
}

void
PeriodicTask::start()
{
    if (running_)
        return;
    running_ = true;
    pendingEvent_ = sim_.scheduleAfter(period_, [this] { fire(); });
}

void
PeriodicTask::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.cancel(pendingEvent_);
    pendingEvent_ = kInvalidEvent;
}

void
PeriodicTask::fire()
{
    if (!running_)
        return;
    ++invocations_;
    fn_();
    if (running_)
        pendingEvent_ = sim_.scheduleAfter(period_, [this] { fire(); });
}

} // namespace c4
