#include "sim/simulator.h"

#include <algorithm>

namespace c4 {

Simulator::~Simulator()
{
    clear();
}

Simulator::Slot &
Simulator::slotRef(std::uint32_t idx)
{
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
}

const Simulator::Slot &
Simulator::slotRef(std::uint32_t idx) const
{
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
}

std::uint32_t
Simulator::allocSlot()
{
    if (freeHead_ != kNoSlot) {
        const std::uint32_t idx = freeHead_;
        freeHead_ = slotRef(idx).nextFree;
        return idx;
    }
    if (slotCount_ % kChunkSlots == 0)
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
    return slotCount_++;
}

void
Simulator::compactFar()
{
    Time minWhen = kTimeNever;
    std::size_t w = 0;
    for (const HeapEntry &e : far_) {
        if (slotRef(e.slot).gen != e.gen)
            continue;
        if (e.when < minWhen)
            minWhen = e.when;
        far_[w++] = e;
    }
    far_.resize(w);
    deadInFar_ = 0;
    farMin_ = minWhen;
}

void
Simulator::markDead(Slot &s)
{
    s.ops = nullptr;
    // Generation 0 is reserved so no valid EventId is ever 0
    // (kInvalidEvent); skip it on wrap.
    if (++s.gen == 0)
        s.gen = 1;
}

void
Simulator::pushFree(Slot &s, std::uint32_t idx)
{
    s.heap = nullptr;
    s.nextFree = freeHead_;
    freeHead_ = idx;
}

void
Simulator::destroySlot(std::uint32_t idx)
{
    Slot &s = slotRef(idx);
    if (s.heap)
        s.ops->destroy(s.heap, true);
    else if (!s.ops->trivialDtor)
        s.ops->destroy(s.inlineBuf, false);
    markDead(s);
    pushFree(s, idx);
}

EventId
Simulator::finishSchedule(Time when, std::uint32_t slot)
{
    if (when < now_)
        when = now_; // clamp: events cannot fire in the past
    Slot &s = slotRef(slot);
    s.when = when;
    const HeapEntry e{when, nextSeq_++, slot, s.gen};
    if (when <= horizon_) {
        heapPush(e);
    } else {
        if (when < farMin_)
            farMin_ = when;
        far_.push_back(e);
    }
    ++liveCount_;
    return makeId(slot, s.gen);
}

void
Simulator::beginBatch(std::size_t n)
{
    // Worst case every entry lands in one band; reserving both keeps
    // the batch loop itself allocation-free after this point.
    heap_.reserve(heap_.size() + n);
    far_.reserve(far_.size() + n);
}

EventId
Simulator::batchSchedule(Time when, std::uint32_t slot, bool &nearAdded)
{
    if (when < now_)
        when = now_; // clamp: events cannot fire in the past
    Slot &s = slotRef(slot);
    s.when = when;
    const HeapEntry e{when, nextSeq_++, slot, s.gen};
    if (when <= horizon_) {
        heap_.push_back(e); // raw append; heapifyNear() restores order
        nearAdded = true;
    } else {
        if (when < farMin_)
            farMin_ = when;
        far_.push_back(e);
    }
    ++liveCount_;
    return makeId(slot, s.gen);
}

void
Simulator::heapifyNear()
{
    // Same Floyd rebuild as compact()/promote(): pop order depends only
    // on entryBefore's (when, seq) total order, not heap layout, so a
    // batch is indistinguishable from n individual heapPush calls.
    for (std::size_t i = (heap_.size() + 2) / 4; i-- > 0;)
        siftDown(i);
}

void
Simulator::heapPush(const HeapEntry &e)
{
    // Sift-up through the 4-ary heap, moving holes instead of swapping.
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (!entryBefore(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

void
Simulator::siftDown(std::size_t i)
{
    const HeapEntry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (entryBefore(heap_[c], heap_[best]))
                best = c;
        }
        if (!entryBefore(heap_[best], e))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = e;
}

void
Simulator::heapPopTop()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
}

bool
Simulator::cancel(EventId id)
{
    if (!pending(id))
        return false;
    const std::uint32_t slot = slotOf(id);
    // The entry stays behind as a tombstone; compact once dead entries
    // outnumber live ones (more than half the container). Far entries
    // are always > horizon_ (promote() maintains this), so the slot's
    // stored deadline tells us which container holds the tombstone.
    const bool inFar = slotRef(slot).when > horizon_;
    destroySlot(slot);
    --liveCount_;
    if (inFar) {
        if (++deadInFar_ * 2 > far_.size())
            compactFar();
    } else if (++deadInHeap_ * 2 > heap_.size()) {
        compact();
    }
    return true;
}

bool
Simulator::pending(EventId id) const
{
    const std::uint32_t slot = slotOf(id);
    if (slot >= slotCount_)
        return false;
    const Slot &s = slotRef(slot);
    return s.ops != nullptr && s.gen == genOf(id);
}

void
Simulator::compact()
{
    std::erase_if(heap_, [this](const HeapEntry &e) {
        return slotRef(e.slot).gen != e.gen;
    });
    // Floyd heapify from the last parent, (size-2)/4, down to the
    // root; the pop order is layout-independent (entryBefore is a
    // strict total order), so rebuilding cannot reorder events.
    for (std::size_t i = (heap_.size() + 2) / 4; i-- > 0;)
        siftDown(i);
    deadInHeap_ = 0;
}

void
Simulator::promote()
{
    ++promotions_;
    // Pass 1: earliest deadline in the far band, tombstones included —
    // a pure sequential scan with no slot touches. A tombstone can
    // only pull the horizon lower (promote fewer), never reorder
    // anything; if the whole batch turns out stale, the partition pass
    // below scrubs every tombstone and the caller retries once against
    // a clean band.
    Time minWhen = far_.front().when;
    for (const HeapEntry &e : far_) {
        if (e.when < minWhen)
            minWhen = e.when;
    }
    horizon_ = minWhen >= kTimeNever - bandWidth_ ? kTimeNever
                                                  : minWhen + bandWidth_;
    // Pass 2: partition — drop stale entries, move the new band into
    // the empty heap, keep the rest (tracking their exact minimum).
    // Then Floyd-heapify (pop order is layout-independent, see
    // entryBefore).
    std::size_t w = 0;
    Time keptMin = kTimeNever;
    for (const HeapEntry &e : far_) {
        if (slotRef(e.slot).gen != e.gen)
            continue;
        if (e.when <= horizon_) {
            heap_.push_back(e);
        } else {
            if (e.when < keptMin)
                keptMin = e.when;
            far_[w++] = e;
        }
    }
    far_.resize(w);
    deadInFar_ = 0;
    farMin_ = keptMin;
    for (std::size_t i = (heap_.size() + 2) / 4; i-- > 0;)
        siftDown(i);
    // Adapt the horizon step toward a batch that is a fixed fraction
    // of the band (so a burst of n far events drains in O(1) scans per
    // event, never O(n) scans of n) with an absolute floor (so small
    // simulations widen until the band never engages and pay nothing
    // over a single heap) and an absolute ceiling on how small the
    // batch may be forced (keeping the near heap, and its sift depth,
    // shallow in steady state).
    const std::size_t promoted = heap_.size();
    const std::size_t total = promoted + w;
    if ((promoted < 128 || promoted * 8 < total) &&
        bandWidth_ < (kTimeNever >> 2))
        bandWidth_ *= 2;
    else if (promoted > 256 && promoted * 2 > total && bandWidth_ > 1)
        bandWidth_ /= 2;
}

bool
Simulator::fireNext(Time until)
{
    for (;;) {
        if (heap_.empty()) {
            // farMin_ is a conservative lower bound (cancellations can
            // leave it low, never high), so this skip is always safe —
            // it keeps sliced run(until) calls from rescanning a far
            // band whose earliest deadline is beyond the slice.
            if (far_.empty() || farMin_ > until)
                return false;
            promote();
            continue; // all-stale band leaves both empty; recheck
        }
        const HeapEntry top = heap_.front();
        Slot &s = slotRef(top.slot);
        if (s.gen != top.gen) { // cancelled; drop the tombstone
            heapPopTop();
            --deadInHeap_;
            continue;
        }
        if (top.when > until)
            return false;
        heapPopTop();
        // Fire in place. Mark the slot dead first so the callback sees
        // its own event as no longer pending (and a clear() from
        // inside it skips this slot); recycle the slot only after the
        // call returns, so a schedule from the callback cannot reuse
        // the storage the callable still occupies.
        const CallbackOps *ops = s.ops;
        void *heapPtr = s.heap;
        void *p = heapPtr ? heapPtr : s.inlineBuf;
        markDead(s);
        --liveCount_;
        now_ = top.when;
        ++executed_;
        struct FireGuard
        {
            Simulator *sim;
            Slot *s;
            const CallbackOps *ops;
            void *p;
            void *heapPtr;
            std::uint32_t slot;
            ~FireGuard()
            {
                if (heapPtr)
                    ops->destroy(heapPtr, true);
                else if (!ops->trivialDtor)
                    ops->destroy(p, false);
                sim->pushFree(*s, slot);
            }
        } guard{this, &s, ops, p, heapPtr, top.slot};
        ops->invoke(p);
        return true;
    }
}

bool
Simulator::step()
{
    return fireNext(kTimeNever);
}

std::uint64_t
Simulator::run(Time until)
{
    std::uint64_t n = 0;
    while (fireNext(until))
        ++n;
    if (until != kTimeNever && now_ < until)
        now_ = until;
    return n;
}

void
Simulator::clear()
{
    // Every live event has exactly one entry in one band; destroy
    // those callables, then drop both bands wholesale. now_, executed_
    // and nextSeq_ survive (see the header contract).
    for (const HeapEntry &e : heap_) {
        if (slotRef(e.slot).gen == e.gen)
            destroySlot(e.slot);
    }
    for (const HeapEntry &e : far_) {
        if (slotRef(e.slot).gen == e.gen)
            destroySlot(e.slot);
    }
    heap_.clear();
    deadInHeap_ = 0;
    far_.clear();
    deadInFar_ = 0;
    farMin_ = kTimeNever;
    liveCount_ = 0;
}

PeriodicTask::PeriodicTask(Simulator &sim, Duration period, Callback fn)
    : sim_(sim), period_(period), fn_(std::move(fn))
{
    assert(period_ > 0);
    assert(fn_);
}

PeriodicTask::~PeriodicTask()
{
    stop();
}

void
PeriodicTask::start()
{
    if (running_)
        return;
    running_ = true;
    pendingEvent_ = sim_.scheduleAfter(period_, [this] { fire(); });
}

void
PeriodicTask::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.cancel(pendingEvent_);
    pendingEvent_ = kInvalidEvent;
}

void
PeriodicTask::fire()
{
    if (!running_)
        return;
    ++invocations_;
    fn_();
    if (running_)
        pendingEvent_ = sim_.scheduleAfter(period_, [this] { fire(); });
}

} // namespace c4
