/**
 * @file
 * Discrete-event simulation engine.
 *
 * Every dynamic component of the reproduction (fabric flow completions,
 * collective rounds, fault arrivals, C4D polling, checkpoint timers) is an
 * event on a single Simulator. Events at equal timestamps fire in
 * scheduling order, which keeps runs deterministic for a given seed.
 *
 * The kernel is a pooled, intrusive event store built for zero
 * steady-state allocation:
 *
 *  - Callbacks live in a free-list slab of fixed slots, grown in
 *    never-moved chunks. Each slot has an inline small-buffer
 *    (kInlineCallbackBytes) sized for the codebase's capture patterns
 *    (`[this]`, `[this, id, epoch]`, a std::function plus bookkeeping
 *    pointers); only oversized captures fall back to one heap
 *    allocation.
 *  - An EventId encodes {slot index, generation}; cancel() and
 *    pending() are O(1) array probes, no hash map. The generation
 *    bumps every time a slot is freed, so a stale handle for a reused
 *    slot can never cancel its successor (the 32-bit generation would
 *    have to wrap exactly 2^32 times between issue and use).
 *  - Ordering is two-banded. Events due soon (when <= horizon_) sit in
 *    a 4-ary min-heap; events beyond the horizon sit in an unsorted
 *    far band with O(1) append. When the heap drains, the horizon
 *    advances (by an adaptive step) and the next band is bulk-loaded
 *    with one Floyd heapify — so each event pays at most one heapify,
 *    on a heap that only ever holds the near band. Far-future timers
 *    that are cancelled before they come due (watchdogs, failure
 *    timeouts) never touch the heap at all.
 *  - Heap and band entries carry the slot index and its generation, so
 *    tombstone skipping is one integer compare. Cancelled events stay
 *    behind as tombstones; when dead entries exceed half of either
 *    container, it is compacted in one O(n) sweep (amortized O(1) per
 *    cancel) — the far band without any heap rebuild.
 *  - Callbacks fire in place: the slot is marked dead before the call
 *    (so pending()/cancel() on the firing event read false, and a
 *    clear() from inside the callback skips it) and recycled after,
 *    with no intermediate move of the callable.
 *
 * The external contract — the (when, seq) FIFO tie-break among
 * equal-time events — is identical to the original
 * priority_queue + unordered_map kernel, so every seeded run, golden
 * CSV, and event trace is byte-identical. `c4bench --perf` measures
 * the kernels side by side (see perf/).
 */

#ifndef C4_SIM_SIMULATOR_H
#define C4_SIM_SIMULATOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "trace/trace.h"

namespace c4 {

/** Opaque handle identifying a scheduled event, used for cancellation. */
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

/**
 * The event-driven simulation kernel.
 *
 * Not thread-safe by design: a simulation run is a single logical timeline.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    /** Inline callback storage per event slot; larger captures take one
     * heap allocation. 80 bytes covers every capture pattern in the
     * tree, including accl's {this, weak_ptr, shared_ptr, function}. */
    static constexpr std::size_t kInlineCallbackBytes = 80;

    Simulator() = default;
    ~Simulator();
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when (>= now; earlier
     * times clamp to now). Accepts any nullary callable; it is moved
     * into pooled storage (inline when it fits kInlineCallbackBytes).
     * @return a handle that can be passed to cancel().
     */
    template <typename F>
    EventId
    scheduleAt(Time when, F fn)
    {
        const std::uint32_t slot = storeCallback(std::move(fn));
        return finishSchedule(when, slot);
    }

    /** Schedule @p fn to run @p delay after now. */
    template <typename F>
    EventId
    scheduleAfter(Duration delay, F fn)
    {
        assert(delay >= 0);
        // Saturate instead of overflowing for "never"-ish delays.
        const Time when =
            delay >= kTimeNever - now_ ? kTimeNever : now_ + delay;
        return scheduleAt(when, std::move(fn));
    }

    /**
     * Schedule a batch of (delay, callback) pairs in one pass: all
     * slots are reserved up front, near-band entries are appended
     * without per-event sift-up, and the near heap is rebuilt with a
     * single Floyd heapify at the end (far-band entries stay O(1)
     * appends as always). Sequence numbers are assigned in array
     * order, so the fire order — including ties — is byte-identical
     * to calling scheduleAfter() once per pair in the same order; the
     * only difference is cost: one O(n) heapify instead of n
     * O(log n) sift-ups. Built for collective fan-outs (one NVLink
     * round scheduling every peer copy at once) and campaign
     * pre-scheduling.
     *
     * @param items (delay, callable) pairs, consumed by move.
     * @return one EventId per pair, in input order.
     */
    template <typename F>
    std::vector<EventId>
    scheduleBatchAfter(std::vector<std::pair<Duration, F>> items)
    {
        std::vector<EventId> ids;
        ids.reserve(items.size());
        beginBatch(items.size());
        bool nearAdded = false;
        for (auto &[delay, fn] : items) {
            assert(delay >= 0);
            const Time when =
                delay >= kTimeNever - now_ ? kTimeNever : now_ + delay;
            const std::uint32_t slot = storeCallback(std::move(fn));
            ids.push_back(batchSchedule(when, slot, nearAdded));
        }
        if (nearAdded)
            heapifyNear();
        return ids;
    }

    /**
     * Cancel a pending event. Cancelling an already-fired, cleared, or
     * invalid handle is a harmless no-op (O(1) either way).
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** True if the event is still pending. */
    bool pending(EventId id) const;

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingCount() const { return liveCount_; }

    /**
     * Run until the queue is empty or @p until is reached. Events scheduled
     * exactly at @p until are executed. Advances now() to the later of the
     * last event time and @p until (when until is bounded).
     * @return number of events executed.
     */
    std::uint64_t run(Time until = kTimeNever);

    /**
     * Execute exactly the next event, if any.
     * @return true if an event was executed.
     */
    bool step();

    /**
     * Drop all pending events without running them; their callbacks are
     * destroyed, never invoked. The clock (now()), executedCount(), and
     * the FIFO sequence counter are all preserved: events scheduled
     * after a clear() fire at their requested times in scheduling
     * order, exactly as if the dropped events had never existed. Safe
     * to call from inside an executing callback (the firing event is
     * already unlinked from the pool and completes normally; anything
     * it schedules after the clear() survives).
     */
    void clear();

    /** Total events executed over the simulator's lifetime. */
    std::uint64_t executedCount() const { return executed_; }

    /** @name Event tracing
     * The simulator carries the run's TraceScope because every layer
     * above already holds a Simulator reference: attaching a recorder
     * here instruments the whole stack without further plumbing.
     * Detached (the default), emitting is a single null check.
     * @{ */
    trace::TraceScope &tracer() { return tracer_; }
    void setTracer(trace::TraceScope scope) { tracer_ = scope; }
    /** @} */

    /** @name Live metrics
     * The simulator carries the run's MetricsScope for the same reason
     * it carries the TraceScope: every instrumented layer already holds
     * a Simulator reference. Detached (the default), emitting is a
     * single null check.
     * @{ */
    obs::MetricsScope &metrics() { return metrics_; }
    void setMetrics(obs::MetricsScope scope) { metrics_ = scope; }
    /** @} */

    /** @name Event-kernel introspection
     * Pure reads over the pooled two-band store, safe to pull from a
     * metrics sampler at any point (no lazy recompute, no RNG).
     * @{ */
    /** Far-band -> near-heap promotion scans performed so far. */
    std::uint64_t promoteCount() const { return promotions_; }
    /** Event slots ever materialized in the pool slab. */
    std::uint32_t poolSlotCount() const { return slotCount_; }
    /** Entries in the near heap (live + tombstones). */
    std::size_t nearBandSize() const { return heap_.size(); }
    /** Entries in the far band (live + tombstones). */
    std::size_t farBandSize() const { return far_.size(); }
    /** @} */

  private:
    /** Type-erased operations for a stored callback type F. */
    struct CallbackOps
    {
        void (*invoke)(void *p);
        /** ~F() in place, or `delete` when @p onHeap. */
        void (*destroy)(void *p, bool onHeap);
        /** Skip the inline destructor call entirely (most captures). */
        bool trivialDtor;
    };

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    static constexpr std::uint32_t kChunkSlots = 256; // power of two

    /** One pooled event slot. `ops` null <=> slot is on the free list.
     * Metadata leads so it shares a cache line with small captures. */
    struct Slot
    {
        const CallbackOps *ops = nullptr;
        void *heap = nullptr; ///< non-null: callable lives on the heap
        Time when = 0;        ///< deadline; > horizon_ <=> entry in far_
        std::uint32_t gen = 1;
        std::uint32_t nextFree = kNoSlot;
        alignas(std::max_align_t)
            unsigned char inlineBuf[kInlineCallbackBytes];

        void *callable() { return heap ? heap : inlineBuf; }
    };

    /** Heap entry; stale (tombstone) iff the slot's generation moved on. */
    struct HeapEntry
    {
        Time when;
        std::uint64_t seq; // tie-break: FIFO among same-time events
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** Strict total order: (when, seq) lexicographic. Because seq is
     * unique, the pop sequence is fully determined by this order — the
     * heap's arity and internal layout cannot affect event ordering. */
    static bool
    entryBefore(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    template <typename F>
    static void
    invokeImpl(void *p)
    {
        (*static_cast<F *>(p))();
    }

    template <typename F>
    static void
    destroyImpl(void *p, bool onHeap)
    {
        if (onHeap)
            delete static_cast<F *>(p);
        else
            static_cast<F *>(p)->~F();
    }

    template <typename F>
    static const CallbackOps &
    opsFor()
    {
        static constexpr CallbackOps table{
            &invokeImpl<F>, &destroyImpl<F>,
            std::is_trivially_destructible_v<F>};
        return table;
    }

    static constexpr EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(gen) << 32) | slot;
    }
    static constexpr std::uint32_t
    slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id);
    }
    static constexpr std::uint32_t
    genOf(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    Slot &slotRef(std::uint32_t idx);
    const Slot &slotRef(std::uint32_t idx) const;
    std::uint32_t allocSlot();

    /** Move @p fn into a freshly allocated slot (inline when it fits)
     * and install its type-erased ops. Returns the slot index. */
    template <typename F>
    std::uint32_t
    storeCallback(F fn)
    {
        static_assert(std::is_invocable_v<F &>,
                      "event callbacks take no arguments");
        if constexpr (std::is_constructible_v<bool, const F &>)
            assert(static_cast<bool>(fn));
        const std::uint32_t slot = allocSlot();
        Slot &s = slotRef(slot);
        constexpr bool fitsInline =
            sizeof(F) <= kInlineCallbackBytes &&
            alignof(F) <= alignof(std::max_align_t);
        if constexpr (fitsInline) {
            ::new (static_cast<void *>(s.inlineBuf)) F(std::move(fn));
            s.heap = nullptr;
        } else {
            s.heap = new F(std::move(fn));
        }
        s.ops = &opsFor<F>();
        return slot;
    }
    /** Bump the slot's generation and clear its vtable, so every
     * outstanding EventId and heap entry for it reads as dead. */
    void markDead(Slot &s);
    /** Put a dead slot on the free list. */
    void pushFree(Slot &s, std::uint32_t idx);
    /** Destroy the callable in @p idx, then mark dead + free. */
    void destroySlot(std::uint32_t idx);
    EventId finishSchedule(Time when, std::uint32_t slot);
    /** @name Batch scheduling (see scheduleBatchAfter) @{ */
    /** Reserve container capacity for @p n upcoming batchSchedule calls. */
    void beginBatch(std::size_t n);
    /** finishSchedule minus the sift-up: near entries are appended raw
     * and flagged via @p nearAdded for one deferred heapifyNear(). */
    EventId batchSchedule(Time when, std::uint32_t slot, bool &nearAdded);
    /** Floyd-heapify the near band after raw batch appends. */
    void heapifyNear();
    /** @} */
    /** @name 4-ary min-heap on entryBefore (half the depth of a binary
     * heap; pop order is layout-independent, see entryBefore) @{ */
    void heapPush(const HeapEntry &e);
    void heapPopTop();
    void siftDown(std::size_t i);
    /** @} */
    /** Drop tombstones, then fire the next event with when <= @p until.
     * Each popped entry is examined exactly once. */
    bool fireNext(Time until);
    /** Sweep stale entries out of the heap and re-heapify. */
    void compact();
    /** Sweep stale entries out of the far band (no heap rebuild). */
    void compactFar();
    /** Advance horizon_ past the earliest far deadline and move the new
     * band into the (empty) near heap. */
    void promote();

    trace::TraceScope tracer_;
    obs::MetricsScope metrics_;
    Time now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t promotions_ = 0; ///< far->near promotion scans

    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::uint32_t freeHead_ = kNoSlot;
    std::uint32_t slotCount_ = 0; ///< slots ever materialized
    std::size_t liveCount_ = 0;   ///< pending (schedulable) events

    /** Near band: min-heap over entries with when <= horizon_. */
    std::vector<HeapEntry> heap_;
    std::size_t deadInHeap_ = 0; ///< near tombstones awaiting compaction

    /** Far band: unsorted entries with when > horizon_. Scheduling and
     * cancelling here never touch the heap; promote() moves each entry
     * into the heap at most once. horizon_ only ever advances. */
    std::vector<HeapEntry> far_;
    std::size_t deadInFar_ = 0; ///< far tombstones awaiting compaction
    Time horizon_ = 0; ///< inclusive upper bound of the near band
    Duration bandWidth_ = 1 << 20; ///< adaptive horizon step (see promote)
    /** Conservative lower bound on the earliest far deadline (stale
     * tombstones can hold it low, never high): lets sliced run(until)
     * calls skip the band without scanning it. */
    Time farMin_ = kTimeNever;
};

/**
 * Helper that reschedules itself at a fixed period until stopped; used by
 * the C4 agents (stats export) and the C4D master (health evaluation).
 */
class PeriodicTask
{
  public:
    using Callback = std::function<void()>;

    /**
     * @param sim simulator to schedule on (must outlive the task)
     * @param period interval between invocations
     * @param fn callback invoked every period
     */
    PeriodicTask(Simulator &sim, Duration period, Callback fn);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    /** Begin firing, first invocation one period from now. */
    void start();

    /** Stop firing; may be restarted. */
    void stop();

    bool running() const { return running_; }
    std::uint64_t invocations() const { return invocations_; }

  private:
    Simulator &sim_;
    Duration period_;
    Callback fn_;
    EventId pendingEvent_ = kInvalidEvent;
    bool running_ = false;
    std::uint64_t invocations_ = 0;

    void fire();
};

} // namespace c4

#endif // C4_SIM_SIMULATOR_H
