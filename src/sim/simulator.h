/**
 * @file
 * Discrete-event simulation engine.
 *
 * Every dynamic component of the reproduction (fabric flow completions,
 * collective rounds, fault arrivals, C4D polling, checkpoint timers) is an
 * event on a single Simulator. Events at equal timestamps fire in
 * scheduling order, which keeps runs deterministic for a given seed.
 */

#ifndef C4_SIM_SIMULATOR_H
#define C4_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "trace/trace.h"

namespace c4 {

/** Opaque handle identifying a scheduled event, used for cancellation. */
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

/**
 * The event-driven simulation kernel.
 *
 * Not thread-safe by design: a simulation run is a single logical timeline.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when (>= now).
     * @return a handle that can be passed to cancel().
     */
    EventId scheduleAt(Time when, Callback fn);

    /** Schedule @p fn to run @p delay after now. */
    EventId scheduleAfter(Duration delay, Callback fn);

    /**
     * Cancel a pending event. Cancelling an already-fired or invalid
     * handle is a harmless no-op.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** True if the event is still pending. */
    bool pending(EventId id) const;

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingCount() const;

    /**
     * Run until the queue is empty or @p until is reached. Events scheduled
     * exactly at @p until are executed. Advances now() to the later of the
     * last event time and @p until (when until is bounded).
     * @return number of events executed.
     */
    std::uint64_t run(Time until = kTimeNever);

    /**
     * Execute exactly the next event, if any.
     * @return true if an event was executed.
     */
    bool step();

    /** Drop all pending events without running them. */
    void clear();

    /** Total events executed over the simulator's lifetime. */
    std::uint64_t executedCount() const { return executed_; }

    /** @name Event tracing
     * The simulator carries the run's TraceScope because every layer
     * above already holds a Simulator reference: attaching a recorder
     * here instruments the whole stack without further plumbing.
     * Detached (the default), emitting is a single null check.
     * @{ */
    trace::TraceScope &tracer() { return tracer_; }
    void setTracer(trace::TraceScope scope) { tracer_ = scope; }
    /** @} */

  private:
    struct Entry
    {
        Time when;
        std::uint64_t seq; // tie-break: FIFO among same-time events
        EventId id;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    trace::TraceScope tracer_;
    Time now_ = 0;
    std::uint64_t nextSeq_ = 1;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        queue_;
    // id -> callback for live events; absence means cancelled/fired.
    std::unordered_map<EventId, Callback> live_;
};

/**
 * Helper that reschedules itself at a fixed period until stopped; used by
 * the C4 agents (stats export) and the C4D master (health evaluation).
 */
class PeriodicTask
{
  public:
    using Callback = std::function<void()>;

    /**
     * @param sim simulator to schedule on (must outlive the task)
     * @param period interval between invocations
     * @param fn callback invoked every period
     */
    PeriodicTask(Simulator &sim, Duration period, Callback fn);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    /** Begin firing, first invocation one period from now. */
    void start();

    /** Stop firing; may be restarted. */
    void stop();

    bool running() const { return running_; }
    std::uint64_t invocations() const { return invocations_; }

  private:
    Simulator &sim_;
    Duration period_;
    Callback fn_;
    EventId pendingEvent_ = kInvalidEvent;
    bool running_ = false;
    std::uint64_t invocations_ = 0;

    void fire();
};

} // namespace c4

#endif // C4_SIM_SIMULATOR_H
