#include "train/parallel.h"

#include <cassert>
#include <stdexcept>

namespace c4::train {

std::string
ParallelismSpec::validate(int gpusPerNode, int numNodes) const
{
    if (tp < 1 || pp < 1 || dp < 1 || ep < 1)
        return "parallel degrees must be >= 1";
    if (ep != 1 && ep != dp)
        return "ep must be 1 (dense) or equal to dp (experts sharded "
               "across the data-parallel group)";
    if (gradientAccumulation < 1)
        return "gradientAccumulation must be >= 1";
    if (zeroStage < 0 || zeroStage > 3)
        return "zeroStage must be in [0, 3]";
    if (tp > gpusPerNode)
        return "tp must not exceed gpusPerNode (TP must be node-local)";
    if (gpusPerNode % tp != 0)
        return "tp must divide gpusPerNode";
    if (worldSize() % gpusPerNode != 0)
        return "worldSize must be a whole number of nodes";
    if (worldSize() / gpusPerNode > numNodes)
        return "not enough nodes for worldSize";
    return {};
}

ParallelLayout::ParallelLayout(const ParallelismSpec &spec,
                               std::vector<NodeId> nodes, int gpusPerNode)
    : spec_(spec), nodes_(std::move(nodes)), gpusPerNode_(gpusPerNode)
{
    const std::string err =
        spec_.validate(gpusPerNode_, static_cast<int>(nodes_.size()));
    if (!err.empty())
        throw std::invalid_argument("ParallelismSpec: " + err);
}

accl::DeviceInfo
ParallelLayout::deviceOf(int globalRank) const
{
    assert(globalRank >= 0 && globalRank < worldSize());
    accl::DeviceInfo d;
    const int node_idx = globalRank / gpusPerNode_;
    d.node = nodes_[static_cast<std::size_t>(node_idx)];
    d.gpu = static_cast<GpuId>(globalRank % gpusPerNode_);
    d.nic = static_cast<NicId>(d.gpu);
    return d;
}

int
ParallelLayout::tpIndex(int globalRank) const
{
    return globalRank % spec_.tp;
}

int
ParallelLayout::ppIndex(int globalRank) const
{
    return (globalRank / spec_.tp) % spec_.pp;
}

int
ParallelLayout::dpIndex(int globalRank) const
{
    return globalRank / (spec_.tp * spec_.pp);
}

std::vector<std::vector<int>>
ParallelLayout::tpGroups() const
{
    std::vector<std::vector<int>> groups;
    for (int dp = 0; dp < spec_.dp; ++dp) {
        for (int pp = 0; pp < spec_.pp; ++pp) {
            std::vector<int> g;
            for (int tp = 0; tp < spec_.tp; ++tp)
                g.push_back((dp * spec_.pp + pp) * spec_.tp + tp);
            groups.push_back(std::move(g));
        }
    }
    return groups;
}

std::vector<std::vector<int>>
ParallelLayout::dpGroups() const
{
    std::vector<std::vector<int>> groups;
    for (int pp = 0; pp < spec_.pp; ++pp) {
        for (int tp = 0; tp < spec_.tp; ++tp) {
            std::vector<int> g;
            for (int dp = 0; dp < spec_.dp; ++dp)
                g.push_back((dp * spec_.pp + pp) * spec_.tp + tp);
            groups.push_back(std::move(g));
        }
    }
    return groups;
}

std::vector<std::vector<int>>
ParallelLayout::ppGroups() const
{
    std::vector<std::vector<int>> groups;
    for (int dp = 0; dp < spec_.dp; ++dp) {
        for (int tp = 0; tp < spec_.tp; ++tp) {
            std::vector<int> g;
            for (int pp = 0; pp < spec_.pp; ++pp)
                g.push_back((dp * spec_.pp + pp) * spec_.tp + tp);
            groups.push_back(std::move(g));
        }
    }
    return groups;
}

std::vector<accl::DeviceInfo>
ParallelLayout::devicesFor(const std::vector<int> &globalRanks) const
{
    std::vector<accl::DeviceInfo> out;
    out.reserve(globalRanks.size());
    for (int r : globalRanks)
        out.push_back(deviceOf(r));
    return out;
}

} // namespace c4::train
