#include "train/model.h"

#include <algorithm>
#include <cassert>

namespace c4::train {

ModelConfig
gpt22b()
{
    ModelConfig m;
    m.name = "GPT-22B";
    m.params = 22e9;
    m.microbatchCompute = milliseconds(4200);
    m.activationBytes = mib(64);
    m.tpBytesPerMicrobatch = mib(512);
    return m;
}

ModelConfig
gpt175b()
{
    ModelConfig m;
    m.name = "GPT-175B";
    m.params = 175e9;
    m.microbatchCompute = milliseconds(33000);
    m.activationBytes = mib(128);
    m.tpBytesPerMicrobatch = mib(1024);
    return m;
}

ModelConfig
llama7b()
{
    ModelConfig m;
    m.name = "Llama-7B";
    m.params = 7e9;
    m.microbatchCompute = milliseconds(1350);
    m.activationBytes = mib(32);
    m.tpBytesPerMicrobatch = mib(256);
    return m;
}

ModelConfig
llama13b()
{
    ModelConfig m;
    m.name = "Llama-13B";
    m.params = 13e9;
    m.microbatchCompute = milliseconds(2500);
    m.activationBytes = mib(48);
    m.tpBytesPerMicrobatch = mib(384);
    return m;
}

Duration
microbatchComputeTime(const ModelConfig &model, int tp, int pp)
{
    assert(tp >= 1 && pp >= 1);
    const double scale = static_cast<double>(tp) * pp;
    return std::max<Duration>(
        milliseconds(1),
        static_cast<Duration>(
            static_cast<double>(model.microbatchCompute) / scale));
}

} // namespace c4::train
