/**
 * @file
 * The BSP training-job model.
 *
 * A job owns its communicators and cycles through iterations: a compute
 * phase (gradient-accumulated microbatches), a tensor-parallel collective,
 * a pipeline send chain, then the data-parallel gradient allreduce that
 * synchronizes every replica. Periodic checkpoints cost time; a hang
 * watchdog models the PyTorch elastic agent that kills a stalled job
 * after a timeout (the paper's 30-minute crash-detection cost in the
 * pre-C4D world).
 *
 * Faults surface exactly as they do in production: a crashed node makes
 * the in-flight collective stall (peers hang); a straggler node delays
 * its ranks' entry to the allreduce; NIC degradation shows up through the
 * fabric. The job itself never "knows" — detection is C4D's business.
 */

#ifndef C4_TRAIN_JOB_H
#define C4_TRAIN_JOB_H

#include <functional>
#include <unordered_map>
#include <vector>

#include "accl/accl.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "train/model.h"
#include "train/parallel.h"

namespace c4::train {

/** Everything needed to run one training job. */
struct JobConfig
{
    JobId id = 1;
    std::string name = "job";
    ModelConfig model;
    ParallelismSpec parallel;
    std::vector<NodeId> nodes;
    int gpusPerNode = 8;

    /** Samples per microbatch per data-parallel replica. */
    int microBatch = 1;

    /** Coefficient of variation of per-iteration compute jitter. */
    double computeJitterCv = 0.01;

    /** Non-hidden data-loading time per iteration. */
    Duration dataLoadPerIter = 0;

    /** Representative DP rings simulated (of the tp*pp real ones). */
    int dpGroupsSimulated = 2;

    /** Simulate the TP collective / PP send chain per iteration. */
    bool simulateTp = true;
    bool simulatePp = true;

    /**
     * Coefficient of variation of per-rank expert load (MoE token
     * routing skew). The skew re-rolls every iteration — transient
     * imbalance, not a persistent straggler — which is exactly the
     * distinction the paper says C4D must smooth over (Section V).
     */
    double epLoadImbalanceCv = 0.3;

    /** Checkpoint cadence in iterations (0 disables) and unit cost. */
    int checkpointIntervalIters = 0;
    Duration checkpointCost = seconds(30);

    /** Startup / re-initialization time (scheduling, NCCL init, load). */
    Duration initTime = minutes(2);

    /** Elastic-agent hang kill timeout. */
    Duration hangWatchdogTimeout = minutes(30);

    std::uint64_t seed = 0x10B10Bull;

    /** Samples contributed by one completed iteration. */
    std::int64_t
    samplesPerIteration() const
    {
        return static_cast<std::int64_t>(parallel.dp) * microBatch *
               parallel.gradientAccumulation;
    }
};

/** Per-iteration timing delivered to the iteration callback. */
struct IterationStats
{
    std::uint64_t index = 0;
    Time start = 0;
    Time end = 0;
    Duration computeDuration = 0;
    Duration commDuration = 0; ///< slowest simulated DP allreduce
    double samplesPerSec = 0.0;
    Bandwidth dpBusBw = 0.0; ///< of the slowest DP group
};

/**
 * Executable training job. Driven entirely by simulator events; all
 * methods are to be called from event context (or before running).
 */
class TrainingJob
{
  public:
    enum class State {
        Idle,         ///< created, not started
        Initializing, ///< startup / re-init in progress
        Running,      ///< iterating (possibly silently hung)
        Failed,       ///< watchdog killed a hung run
        Stopped,      ///< stopped by caller / steering
    };

    using IterationCallback = std::function<void(const IterationStats &)>;
    using FailureCallback = std::function<void()>;

    /**
     * Startup validator: called when initialization completes, with
     * the placement. Returning false models a start failure (defective
     * node, bad configuration — paper Fig. 2's "Startup Failure"),
     * which C4D cannot see because no collectives ran yet.
     */
    using StartValidator =
        std::function<bool(const std::vector<NodeId> &)>;

    TrainingJob(Simulator &sim, accl::Accl &accl, JobConfig cfg);
    ~TrainingJob();

    TrainingJob(const TrainingJob &) = delete;
    TrainingJob &operator=(const TrainingJob &) = delete;

    /** Begin: init for cfg.initTime, then iterate until stopped. */
    void start();

    /** Tear down communicators and stop iterating. */
    void stop();

    /**
     * Restart on a (possibly new) node set — what the job-steering
     * service does after isolating a faulty node. Pays initTime again.
     */
    void restart(std::vector<NodeId> nodes);

    /** @name Fault interface (used by the injector) @{ */

    /** Kill the worker processes on a node: collectives stall. */
    void crashNode(NodeId node);

    /** Make a node's compute slower by @p scale (>= 1; 1 clears). */
    void setNodeComputeScale(NodeId node, double scale);
    /** @} */

    /** @name Introspection @{ */
    State state() const { return state_; }
    const char *stateName() const;
    JobId id() const { return cfg_.id; }
    const JobConfig &config() const { return cfg_; }
    const std::vector<NodeId> &nodes() const { return cfg_.nodes; }

    std::uint64_t iterationsCompleted() const { return itersDone_; }
    const Summary &iterationSeconds() const { return iterSeconds_; }
    const Summary &dpBusBwGbps() const { return dpBusBw_; }

    /** Mean samples/sec over completed iterations (0 if none). */
    double meanSamplesPerSec() const;

    /** Time and iteration index of the last completed checkpoint. */
    Time lastCheckpointTime() const { return lastCkptTime_; }
    std::uint64_t lastCheckpointIteration() const { return lastCkptIter_; }

    /** DP communicators currently live (what C4D agents watch). */
    const std::vector<CommId> &dpComms() const { return dpComms_; }
    CommId tpComm() const { return tpComm_; }
    CommId ppComm() const { return ppComm_; }
    CommId epComm() const { return epComm_; }
    /** @} */

    void onIteration(IterationCallback cb) { iterCb_ = std::move(cb); }
    void onWatchdogKill(FailureCallback cb) { failCb_ = std::move(cb); }
    void setStartValidator(StartValidator v) { validator_ = std::move(v); }

    /** Start failures observed over the job's lifetime. */
    std::uint64_t startFailures() const { return startFailures_; }

  private:
    Simulator &sim_;
    accl::Accl &accl_;
    JobConfig cfg_;
    Rng rng_;

    State state_ = State::Idle;
    std::uint64_t itersDone_ = 0;
    Summary iterSeconds_;
    Summary dpBusBw_;
    Time lastCkptTime_ = 0;
    std::uint64_t lastCkptIter_ = 0;

    std::vector<CommId> dpComms_;
    CommId tpComm_ = kInvalidId;
    CommId ppComm_ = kInvalidId;
    CommId epComm_ = kInvalidId;

    std::unordered_map<NodeId, double> computeScale_;

    IterationCallback iterCb_;
    FailureCallback failCb_;
    StartValidator validator_;
    std::uint64_t startFailures_ = 0;

    // Per-iteration transient state.
    Time iterStart_ = 0;
    Duration iterCompute_ = 0;
    int dpPending_ = 0;
    Duration worstDpComm_ = 0;
    Bandwidth worstDpBusBw_ = 0.0;
    EventId watchdog_ = kInvalidEvent;
    EventId phaseEvent_ = kInvalidEvent;
    std::uint64_t epoch_ = 0; ///< invalidates stale callbacks

    void setupComms();
    void teardownComms();

    void beginIteration();
    void computeDone();
    void afterTp();
    void runEpAllToAll(int remaining);
    void runPpChain(int hopsLeft, Rank stage);
    void postDpAllReduces();
    void onDpGroupDone(std::uint64_t epoch,
                       const accl::CollectiveResult &res);
    void finishIteration();
    void armWatchdog();
    void onWatchdog(std::uint64_t epoch);

    double nodeScale(NodeId node) const;
    Duration computePhaseDuration();
};

} // namespace c4::train

#endif // C4_TRAIN_JOB_H
