/**
 * @file
 * Parallelism layout: how a job's global ranks map to GPUs and how the
 * TP / DP / PP communicator groups are formed (Megatron-style ordering:
 * TP fastest-varying and node-local, then PP, then DP).
 */

#ifndef C4_TRAIN_PARALLEL_H
#define C4_TRAIN_PARALLEL_H

#include <string>
#include <vector>

#include "accl/communicator.h"
#include "common/types.h"

namespace c4::train {

/** Degrees of each parallelism dimension plus optimizer settings. */
struct ParallelismSpec
{
    int tp = 1; ///< tensor parallel (must divide gpusPerNode)
    int pp = 1; ///< pipeline parallel
    int dp = 1; ///< data parallel
    /**
     * Expert parallel degree (MoE): experts sharded across the ranks of
     * a data-parallel group. 1 = dense model; otherwise must equal dp
     * (the common Megatron/GShard configuration, and what the paper's
     * Section V discusses for C4D applicability).
     */
    int ep = 1;
    int gradientAccumulation = 1;
    int zeroStage = 0; ///< DeepSpeed ZeRO stage (affects DP traffic shape)

    int worldSize() const { return tp * pp * dp; }

    /** Validate against a node shape; empty string when OK. */
    std::string validate(int gpusPerNode, int numNodes) const;
};

/**
 * Immutable mapping of global ranks to devices and parallel groups.
 *
 * Rank order: global = ((dpIdx * pp) + ppIdx) * tp + tpIdx. Consecutive
 * global ranks fill a node's GPUs before moving on, so TP groups are
 * node-local whenever tp <= gpusPerNode — the topology-aware placement
 * the paper relies on (Section III-B).
 */
class ParallelLayout
{
  public:
    /**
     * @param spec parallelism degrees (worldSize must fit the nodes)
     * @param nodes nodes assigned to the job, in placement order
     * @param gpusPerNode GPUs (and NICs) per node
     */
    ParallelLayout(const ParallelismSpec &spec, std::vector<NodeId> nodes,
                   int gpusPerNode);

    const ParallelismSpec &spec() const { return spec_; }
    int worldSize() const { return spec_.worldSize(); }
    const std::vector<NodeId> &nodes() const { return nodes_; }

    /** Placement of a global rank. */
    accl::DeviceInfo deviceOf(int globalRank) const;

    /** @name Index decomposition @{ */
    int tpIndex(int globalRank) const;
    int ppIndex(int globalRank) const;
    int dpIndex(int globalRank) const;
    /** @} */

    /**
     * All TP groups: one per (dp, pp) pair, each a list of global ranks.
     */
    std::vector<std::vector<int>> tpGroups() const;

    /** All DP groups: one per (tp, pp) pair. */
    std::vector<std::vector<int>> dpGroups() const;

    /** All PP groups: one per (tp, dp) pair. */
    std::vector<std::vector<int>> ppGroups() const;

    /** Devices (ring order) for a list of global ranks. */
    std::vector<accl::DeviceInfo>
    devicesFor(const std::vector<int> &globalRanks) const;

  private:
    ParallelismSpec spec_;
    std::vector<NodeId> nodes_;
    int gpusPerNode_;
};

} // namespace c4::train

#endif // C4_TRAIN_PARALLEL_H
