/**
 * @file
 * Analytic LLM model descriptions.
 *
 * The reproduction does not execute models; it needs only the quantities
 * that determine iteration timing: gradient volume (data-parallel
 * allreduce payload), activation volume (pipeline sends), tensor-parallel
 * collective volume, and per-GPU compute time. Presets cover the models
 * the paper evaluates (GPT-22B, Llama-7B/13B, GPT-175B).
 */

#ifndef C4_TRAIN_MODEL_H
#define C4_TRAIN_MODEL_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace c4::train {

/** Static properties of a model being trained. */
struct ModelConfig
{
    std::string name = "model";

    /** Parameter count. */
    double params = 0.0;

    /** Bytes per gradient element (fp16/bf16 training). */
    int gradientElementBytes = 2;

    /**
     * Per-GPU compute time for one microbatch at TP=1 (scaled by the
     * job's parallelism at runtime). Derived from 6*params flops per
     * sample against an effective-throughput GPU model, but kept as a
     * plain duration so benches can calibrate.
     */
    Duration microbatchCompute = 0;

    /** Activation payload of one pipeline-stage boundary send. */
    Bytes activationBytes = 0;

    /** Tensor-parallel collective payload per microbatch (aggregate). */
    Bytes tpBytesPerMicrobatch = 0;

    /**
     * Expert-parallel alltoall payload per microbatch per direction
     * (MoE token dispatch/combine); 0 for dense models.
     */
    Bytes epBytesPerMicrobatch = 0;

    /** Full-model gradient volume in bytes. */
    Bytes
    gradientBytes() const
    {
        return static_cast<Bytes>(params) * gradientElementBytes;
    }
};

/** @name Paper workload presets (Table II) @{ */
ModelConfig gpt22b();
ModelConfig gpt175b();
ModelConfig llama7b();
ModelConfig llama13b();
/** @} */

/**
 * Effective per-GPU compute duration for a microbatch given the model and
 * the tensor/pipeline split (compute shrinks with TP and PP).
 */
Duration microbatchComputeTime(const ModelConfig &model, int tp, int pp);

} // namespace c4::train

#endif // C4_TRAIN_MODEL_H
