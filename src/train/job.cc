#include "train/job.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/log.h"

namespace c4::train {

using accl::CollOp;
using accl::CollectiveResult;

TrainingJob::TrainingJob(Simulator &sim, accl::Accl &accl, JobConfig cfg)
    : sim_(sim), accl_(accl), cfg_(std::move(cfg)), rng_(cfg_.seed)
{
    const std::string err = cfg_.parallel.validate(
        cfg_.gpusPerNode, static_cast<int>(cfg_.nodes.size()));
    if (!err.empty())
        throw std::invalid_argument("JobConfig: " + err);
    if (cfg_.dpGroupsSimulated < 1)
        throw std::invalid_argument("dpGroupsSimulated must be >= 1");
}

TrainingJob::~TrainingJob()
{
    stop();
}

const char *
TrainingJob::stateName() const
{
    switch (state_) {
      case State::Idle:         return "idle";
      case State::Initializing: return "initializing";
      case State::Running:      return "running";
      case State::Failed:       return "failed";
      case State::Stopped:      return "stopped";
    }
    return "?";
}

void
TrainingJob::start()
{
    assert(state_ == State::Idle || state_ == State::Stopped ||
           state_ == State::Failed);
    state_ = State::Initializing;
    const std::uint64_t epoch = ++epoch_;
    phaseEvent_ = sim_.scheduleAfter(cfg_.initTime, [this, epoch] {
        if (epoch != epoch_)
            return;
        if (validator_ && !validator_(cfg_.nodes)) {
            // Startup failure: initialization never reaches the first
            // collective, so C4D is blind to it (paper Section V); the
            // job framework's own error path reports it instead.
            ++startFailures_;
            ++epoch_;
            state_ = State::Failed;
            logInfo("job", "job %d start failure", cfg_.id);
            if (failCb_)
                failCb_();
            return;
        }
        setupComms();
        state_ = State::Running;
        // A fresh start counts as a checkpoint baseline: nothing to lose.
        lastCkptTime_ = sim_.now();
        lastCkptIter_ = itersDone_;
        beginIteration();
    });
}

void
TrainingJob::stop()
{
    ++epoch_; // invalidate in-flight callbacks
    sim_.cancel(watchdog_);
    sim_.cancel(phaseEvent_);
    watchdog_ = kInvalidEvent;
    phaseEvent_ = kInvalidEvent;
    teardownComms();
    if (state_ != State::Idle)
        state_ = State::Stopped;
}

void
TrainingJob::restart(std::vector<NodeId> nodes)
{
    stop();
    cfg_.nodes = std::move(nodes);
    const std::string err = cfg_.parallel.validate(
        cfg_.gpusPerNode, static_cast<int>(cfg_.nodes.size()));
    if (!err.empty())
        throw std::invalid_argument("restart: " + err);
    start();
}

void
TrainingJob::setupComms()
{
    ParallelLayout layout(cfg_.parallel, cfg_.nodes, cfg_.gpusPerNode);

    const auto dp_groups = layout.dpGroups();
    const int simulated = std::min<int>(
        cfg_.dpGroupsSimulated, static_cast<int>(dp_groups.size()));
    for (int g = 0; g < simulated; ++g) {
        dpComms_.push_back(accl_.createCommunicator(
            cfg_.id, layout.devicesFor(dp_groups[
                static_cast<std::size_t>(g)])));
    }

    if (cfg_.simulateTp && cfg_.parallel.tp > 1) {
        tpComm_ = accl_.createCommunicator(
            cfg_.id, layout.devicesFor(layout.tpGroups().front()));
    }
    if (cfg_.simulatePp && cfg_.parallel.pp > 1) {
        ppComm_ = accl_.createCommunicator(
            cfg_.id, layout.devicesFor(layout.ppGroups().front()));
    }
    if (cfg_.parallel.ep > 1 && cfg_.model.epBytesPerMicrobatch > 0) {
        // Experts are sharded across the DP group: the alltoall runs
        // over the same ranks as the representative DP ring.
        epComm_ = accl_.createCommunicator(
            cfg_.id, layout.devicesFor(layout.dpGroups().front()));
    }
}

void
TrainingJob::teardownComms()
{
    for (CommId c : dpComms_)
        accl_.destroyCommunicator(c);
    dpComms_.clear();
    if (tpComm_ != kInvalidId) {
        accl_.destroyCommunicator(tpComm_);
        tpComm_ = kInvalidId;
    }
    if (ppComm_ != kInvalidId) {
        accl_.destroyCommunicator(ppComm_);
        ppComm_ = kInvalidId;
    }
    if (epComm_ != kInvalidId) {
        accl_.destroyCommunicator(epComm_);
        epComm_ = kInvalidId;
    }
}

double
TrainingJob::nodeScale(NodeId node) const
{
    auto it = computeScale_.find(node);
    return it == computeScale_.end() ? 1.0 : it->second;
}

Duration
TrainingJob::computePhaseDuration()
{
    const Duration micro = microbatchComputeTime(
        cfg_.model, cfg_.parallel.tp, cfg_.parallel.pp);
    double total = static_cast<double>(micro) *
                   cfg_.parallel.gradientAccumulation;
    total += static_cast<double>(cfg_.dataLoadPerIter);
    if (cfg_.computeJitterCv > 0.0) {
        total *= std::max(
            0.5, rng_.normal(1.0, cfg_.computeJitterCv));
    }
    return static_cast<Duration>(total);
}

void
TrainingJob::beginIteration()
{
    iterStart_ = sim_.now();
    worstDpComm_ = 0;
    worstDpBusBw_ = 0.0;
    armWatchdog();

    iterCompute_ = computePhaseDuration();
    const std::uint64_t epoch = epoch_;
    phaseEvent_ = sim_.scheduleAfter(iterCompute_, [this, epoch] {
        if (epoch != epoch_)
            return;
        computeDone();
    });
}

void
TrainingJob::computeDone()
{
    // Tensor-parallel collective: node-local, on the critical path.
    if (tpComm_ != kInvalidId) {
        const Bytes tp_bytes =
            std::max<Bytes>(1, cfg_.model.tpBytesPerMicrobatch *
                                   cfg_.parallel.gradientAccumulation);
        const std::uint64_t epoch = epoch_;
        accl_.postCollective(
            tpComm_, CollOp::AllReduce, tp_bytes,
            [this, epoch](const CollectiveResult &) {
                if (epoch != epoch_)
                    return;
                afterTp();
            });
    } else {
        afterTp();
    }
}

void
TrainingJob::afterTp()
{
    if (epComm_ != kInvalidId) {
        // MoE token dispatch + combine per iteration.
        runEpAllToAll(2);
        return;
    }
    if (ppComm_ != kInvalidId) {
        // Forward + backward activation handoffs along the pipeline.
        runPpChain(2 * (cfg_.parallel.pp - 1), 0);
    } else {
        postDpAllReduces();
    }
}

void
TrainingJob::runEpAllToAll(int remaining)
{
    if (remaining <= 0) {
        if (ppComm_ != kInvalidId)
            runPpChain(2 * (cfg_.parallel.pp - 1), 0);
        else
            postDpAllReduces();
        return;
    }

    const Bytes bytes =
        std::max<Bytes>(1, cfg_.model.epBytesPerMicrobatch *
                               cfg_.parallel.gradientAccumulation);
    const auto &c = accl_.communicator(epComm_);

    // Token-routing skew: each rank's expert batch differs this
    // iteration, delaying its entry into the alltoall. The skew
    // re-rolls per iteration, so it is transient — C4D's windowed wait
    // analysis must not mistake it for a persistent straggler.
    std::vector<Duration> delays(static_cast<std::size_t>(c.size()), 0);
    if (cfg_.epLoadImbalanceCv > 0.0) {
        const double base =
            static_cast<double>(iterCompute_) * 0.25;
        for (auto &d : delays) {
            const double skew = std::max(
                0.0, rng_.normal(0.0, cfg_.epLoadImbalanceCv));
            d = static_cast<Duration>(base * skew);
        }
    }

    const std::uint64_t epoch = epoch_;
    accl_.postCollective(
        epComm_, accl::CollOp::AllToAll, bytes,
        [this, epoch, remaining](const CollectiveResult &) {
            if (epoch != epoch_)
                return;
            runEpAllToAll(remaining - 1);
        },
        std::move(delays));
}

void
TrainingJob::runPpChain(int hopsLeft, Rank stage)
{
    if (hopsLeft <= 0) {
        postDpAllReduces();
        return;
    }
    const int pp = cfg_.parallel.pp;
    const Rank next = static_cast<Rank>((stage + 1) % pp);
    const std::uint64_t epoch = epoch_;
    accl_.sendRecv(ppComm_, stage, next, cfg_.model.activationBytes,
                   [this, epoch, hopsLeft, next](
                       const CollectiveResult &) {
                       if (epoch != epoch_)
                           return;
                       runPpChain(hopsLeft - 1, next);
                   });
}

void
TrainingJob::postDpAllReduces()
{
    const Bytes dp_bytes = std::max<Bytes>(
        1, cfg_.model.gradientBytes() /
               (static_cast<Bytes>(cfg_.parallel.tp) * cfg_.parallel.pp));

    dpPending_ = static_cast<int>(dpComms_.size());
    if (dpPending_ == 0) {
        finishIteration();
        return;
    }

    const std::uint64_t epoch = epoch_;
    for (CommId comm : dpComms_) {
        // Per-rank entry skew: straggler nodes hold their rank back by
        // the extra compute they needed; small jitter for the rest.
        const auto &c = accl_.communicator(comm);
        std::vector<Duration> delays(
            static_cast<std::size_t>(c.size()), 0);
        for (Rank r = 0; r < c.size(); ++r) {
            const double scale = nodeScale(c.device(r).node);
            double d = (scale - 1.0) *
                       static_cast<double>(iterCompute_);
            d += std::abs(rng_.normal(0.0, 1e-4)) *
                 static_cast<double>(iterCompute_);
            delays[static_cast<std::size_t>(r)] =
                static_cast<Duration>(d);
        }
        accl_.postCollective(
            comm, CollOp::AllReduce, dp_bytes,
            [this, epoch](const CollectiveResult &res) {
                onDpGroupDone(epoch, res);
            },
            std::move(delays));
    }
}

void
TrainingJob::onDpGroupDone(std::uint64_t epoch,
                           const CollectiveResult &res)
{
    if (epoch != epoch_)
        return;
    worstDpComm_ = std::max(worstDpComm_, res.totalDuration());
    worstDpBusBw_ = worstDpBusBw_ == 0.0
                        ? res.busBw()
                        : std::min(worstDpBusBw_, res.busBw());
    if (--dpPending_ == 0)
        finishIteration();
}

void
TrainingJob::finishIteration()
{
    sim_.cancel(watchdog_);
    watchdog_ = kInvalidEvent;

    ++itersDone_;
    const Time end = sim_.now();
    const Duration dur = end - iterStart_;
    iterSeconds_.add(toSeconds(dur));
    if (worstDpBusBw_ > 0.0)
        dpBusBw_.add(toGbps(worstDpBusBw_));

    IterationStats st;
    st.index = itersDone_;
    st.start = iterStart_;
    st.end = end;
    st.computeDuration = iterCompute_;
    st.commDuration = worstDpComm_;
    st.samplesPerSec =
        dur > 0 ? static_cast<double>(cfg_.samplesPerIteration()) /
                      toSeconds(dur)
                : 0.0;
    st.dpBusBw = worstDpBusBw_;
    if (iterCb_)
        iterCb_(st);

    Duration pause = 0;
    if (cfg_.checkpointIntervalIters > 0 &&
        itersDone_ % static_cast<std::uint64_t>(
                         cfg_.checkpointIntervalIters) ==
            0) {
        pause = cfg_.checkpointCost;
        lastCkptTime_ = end + pause;
        lastCkptIter_ = itersDone_;
    }

    const std::uint64_t epoch = epoch_;
    phaseEvent_ = sim_.scheduleAfter(pause, [this, epoch] {
        if (epoch != epoch_)
            return;
        beginIteration();
    });
}

void
TrainingJob::armWatchdog()
{
    sim_.cancel(watchdog_);
    const std::uint64_t epoch = epoch_;
    watchdog_ = sim_.scheduleAfter(
        cfg_.hangWatchdogTimeout,
        [this, epoch] { onWatchdog(epoch); });
}

void
TrainingJob::onWatchdog(std::uint64_t epoch)
{
    if (epoch != epoch_ || state_ != State::Running)
        return;
    // The elastic agent kills the stalled processes; the job is dead
    // until something (user or steering service) restarts it.
    logInfo("job", "job %d watchdog kill after hang", cfg_.id);
    ++epoch_;
    sim_.cancel(phaseEvent_);
    phaseEvent_ = kInvalidEvent;
    teardownComms();
    state_ = State::Failed;
    if (failCb_)
        failCb_();
}

void
TrainingJob::crashNode(NodeId node)
{
    auto crash_in = [&](CommId comm) {
        if (comm == kInvalidId)
            return;
        const auto &c = accl_.communicator(comm);
        for (Rank r : c.ranksOnNode(node))
            accl_.crashRank(comm, r);
    };
    for (CommId c : dpComms_)
        crash_in(c);
    crash_in(tpComm_);
    crash_in(ppComm_);
    crash_in(epComm_);
}

void
TrainingJob::setNodeComputeScale(NodeId node, double scale)
{
    assert(scale >= 1.0);
    if (scale <= 1.0)
        computeScale_.erase(node);
    else
        computeScale_[node] = scale;
}

double
TrainingJob::meanSamplesPerSec() const
{
    if (iterSeconds_.empty())
        return 0.0;
    return static_cast<double>(cfg_.samplesPerIteration()) /
           iterSeconds_.mean();
}

} // namespace c4::train
