#include "core/placement.h"

#include <algorithm>
#include <set>

namespace c4::core {

const char *
placementStrategyName(PlacementStrategy s)
{
    return s == PlacementStrategy::Packed ? "packed" : "scattered";
}

std::vector<NodeId>
choosePlacement(const net::Topology &topo, const std::vector<bool> &used,
                int count, PlacementStrategy strategy)
{
    std::vector<NodeId> out;
    if (count <= 0)
        return out;

    auto free = [&](NodeId n) {
        return n < topo.numNodes() &&
               !used[static_cast<std::size_t>(n)];
    };

    if (strategy == PlacementStrategy::Packed) {
        // Prefer segments with the most free capacity so jobs span as
        // few leaf pairs as possible.
        struct Seg
        {
            int id;
            std::vector<NodeId> nodes;
        };
        std::vector<Seg> segments;
        for (int s = 0; s < topo.numSegments(); ++s)
            segments.push_back({s, {}});
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            if (free(n))
                segments[static_cast<std::size_t>(topo.segmentOf(n))]
                    .nodes.push_back(n);
        }
        std::stable_sort(segments.begin(), segments.end(),
                         [](const Seg &a, const Seg &b) {
                             return a.nodes.size() > b.nodes.size();
                         });
        for (const Seg &seg : segments) {
            for (NodeId n : seg.nodes) {
                if (static_cast<int>(out.size()) == count)
                    return out;
                out.push_back(n);
            }
        }
    } else {
        // Round-robin over segments: consecutive ranks land under
        // different leaves, maximizing spine exposure.
        std::vector<std::vector<NodeId>> per_segment(
            static_cast<std::size_t>(topo.numSegments()));
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            if (free(n))
                per_segment[static_cast<std::size_t>(topo.segmentOf(n))]
                    .push_back(n);
        }
        std::vector<std::size_t> cursor(per_segment.size(), 0);
        bool progress = true;
        while (static_cast<int>(out.size()) < count && progress) {
            progress = false;
            for (std::size_t s = 0; s < per_segment.size() &&
                                    static_cast<int>(out.size()) < count;
                 ++s) {
                if (cursor[s] < per_segment[s].size()) {
                    out.push_back(per_segment[s][cursor[s]++]);
                    progress = true;
                }
            }
        }
    }

    if (static_cast<int>(out.size()) < count)
        out.clear(); // pool short: all-or-nothing
    return out;
}

int
segmentsSpanned(const net::Topology &topo,
                const std::vector<NodeId> &nodes)
{
    std::set<int> segments;
    for (NodeId n : nodes)
        segments.insert(topo.segmentOf(n));
    return static_cast<int>(segments.size());
}

} // namespace c4::core
