/**
 * @file
 * The cluster runtime: one object owning the whole stack — event engine,
 * topology, fabric, ACCL, fault injection, and (optionally) the C4D and
 * C4P subsystems — wired the way the paper deploys them (Fig. 4/8).
 *
 * This is the public entry point a downstream user instantiates; the
 * examples and benches are all built on it.
 */

#ifndef C4_CORE_CLUSTER_H
#define C4_CORE_CLUSTER_H

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "accl/accl.h"
#include "c4d/agent.h"
#include "c4d/downtime.h"
#include "c4d/master.h"
#include "c4d/rca.h"
#include "c4d/steering.h"
#include "core/placement.h"
#include "c4p/master.h"
#include "c4p/prober.h"
#include "common/types.h"
#include "fault/injector.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "train/job.h"

namespace c4::core {

/** Aggregate configuration for a cluster instance. */
struct ClusterConfig
{
    net::TopologyConfig topology;
    net::FabricConfig fabric;
    accl::AcclConfig accl;

    /** Deploy C4D (agents + master + steering). */
    bool enableC4d = false;
    c4d::C4dConfig c4d;
    c4d::SteeringConfig steering;
    Duration agentPeriod = seconds(2);

    /** Deploy C4P (path allocation policy installed into ACCL). */
    bool enableC4p = false;
    c4p::C4pConfig c4p;

    std::uint64_t seed = 0xC4C10C4Dull;
};

class Cluster
{
  public:
    explicit Cluster(ClusterConfig cfg);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** @name Layer access @{ */
    Simulator &sim() { return sim_; }
    net::Topology &topology() { return topo_; }
    net::Fabric &fabric() { return *fabric_; }
    accl::Accl &accl() { return *accl_; }
    fault::FaultInjector &faults() { return *injector_; }

    /** Non-null only when enableC4d. */
    c4d::C4dMaster *c4dMaster() { return c4dMaster_.get(); }
    c4d::JobSteeringService *steering() { return steering_.get(); }
    c4d::C4Agent *agent() { return agent_.get(); }
    c4d::RootCauseAnalyzer *rca() { return rca_.get(); }

    /** Non-null only when enableC4p. */
    c4p::C4pMaster *c4pMaster() { return c4pMaster_.get(); }
    /** @} */

    /** @name Node pool @{ */

    /**
     * Reserve @p count free nodes under the given placement strategy
     * (Packed = topology-aware, the production default).
     * @throws std::runtime_error when the pool is exhausted.
     */
    std::vector<NodeId>
    allocateNodes(int count,
                  PlacementStrategy strategy = PlacementStrategy::Packed);

    /**
     * Reserve @p count nodes as warm backups for the steering pool.
     * The accumulated count becomes the backup *reserve size*:
     * removeJob refills the pool back up to it from freed healthy
     * nodes.
     */
    void provisionBackupNodes(int count);

    /** Warm-standby target established by provisionBackupNodes. */
    int backupReserve() const { return backupReserve_; }

    int freeNodes() const;

    /**
     * Nodes with unrepaired fatal hardware faults. A job initializing
     * on a broken node suffers a *start failure* (paper Fig. 2) — C4D
     * cannot see it (no collectives ran), so recovery goes through the
     * manual-diagnosis path.
     */
    bool isNodeBroken(NodeId node) const;
    std::size_t brokenNodeCount() const { return broken_.size(); }

    /** Repair a node (hardware replacement / burn-in passed). */
    void repairNode(NodeId node);
    /** @} */

    /** @name Jobs @{ */

    /**
     * Create and register a training job. If cfg.nodes is empty, nodes
     * are allocated from the pool automatically. The job is managed by
     * the steering service when C4D is enabled, and the fault applier
     * routes node faults into it.
     */
    train::TrainingJob &addJob(train::JobConfig cfg);

    train::TrainingJob *job(JobId id);
    std::size_t jobCount() const { return jobs_.size(); }

    /**
     * Stop and deregister a job, returning its nodes to the free pool.
     * Broken nodes return too but stay masked out of allocation until
     * repaired; steering-isolated nodes stay out entirely. While the
     * steering service's warm-standby queue sits below the configured
     * reserve (provisionBackupNodes), freed healthy nodes refill it —
     * the swapped-in backup a departing job hands back becomes the
     * next job's warm spare instead of leaking into the general pool.
     * No-op on an unknown id.
     * @return true if the job existed.
     */
    bool removeJob(JobId id);
    /** @} */

    /**
     * Start the C4 runtime (agents + master evaluation loops). Jobs are
     * started individually via TrainingJob::start().
     */
    void startRuntime();

    /** Run the simulation until @p until (or queue exhaustion). */
    std::uint64_t run(Time until = kTimeNever) { return sim_.run(until); }

    const ClusterConfig &config() const { return cfg_; }

  private:
    ClusterConfig cfg_;
    Simulator sim_;
    net::Topology topo_;
    std::unique_ptr<net::Fabric> fabric_;
    std::unique_ptr<accl::Accl> accl_;
    std::unique_ptr<fault::FaultInjector> injector_;

    std::unique_ptr<c4p::C4pMaster> c4pMaster_;
    std::unique_ptr<c4d::C4dMaster> c4dMaster_;
    std::unique_ptr<c4d::C4Agent> agent_;
    std::unique_ptr<c4d::JobSteeringService> steering_;
    std::unique_ptr<c4d::RootCauseAnalyzer> rca_;

    std::unordered_map<JobId, std::unique_ptr<train::TrainingJob>> jobs_;
    std::vector<bool> nodeUsed_;
    std::unordered_set<NodeId> broken_;
    int backupReserve_ = 0;

    void applyFault(const fault::FaultEvent &ev);
    train::TrainingJob *jobOnNode(NodeId node);
};

/** The paper's controlled testbed (Section IV-A): 16 nodes x 8 H800,
 * dual-port 200 Gbps NICs, 8 leaves (4 segments x 2 planes), 8 spines. */
net::TopologyConfig paperTestbed(double oversubscription = 1.0);

/** A larger production-style pod for scaling studies (Fig. 3). */
net::TopologyConfig productionPod(int numNodes,
                                  double oversubscription = 1.0);

} // namespace c4::core

#endif // C4_CORE_CLUSTER_H
