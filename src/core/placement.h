/**
 * @file
 * Node placement strategies. The paper's stack "utilize[s]
 * topology-aware scheduling techniques to ensure that the two ranks
 * needing to communicate are as close as possible within the network"
 * (Section III-B): packing a job into as few leaf segments as possible
 * keeps ring traffic leaf-local and off the spines.
 */

#ifndef C4_CORE_PLACEMENT_H
#define C4_CORE_PLACEMENT_H

#include <vector>

#include "common/types.h"
#include "net/topology.h"

namespace c4::core {

enum class PlacementStrategy {
    /** Topology-aware: fill whole segments first (fewest spanned). */
    Packed,
    /** Topology-oblivious: round-robin across segments (worst case). */
    Scattered,
};

const char *placementStrategyName(PlacementStrategy s);

/**
 * Choose @p count free nodes under the given strategy.
 *
 * @param topo cluster wiring (segment structure)
 * @param used per-node occupancy; chosen nodes are NOT marked here
 * @param count nodes required
 * @return chosen nodes, or an empty vector if the pool is short
 */
std::vector<NodeId> choosePlacement(const net::Topology &topo,
                                    const std::vector<bool> &used,
                                    int count, PlacementStrategy strategy);

/** Number of distinct segments a placement spans. */
int segmentsSpanned(const net::Topology &topo,
                    const std::vector<NodeId> &nodes);

} // namespace c4::core

#endif // C4_CORE_PLACEMENT_H
