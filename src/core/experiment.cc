#include "core/experiment.h"

#include <cassert>
#include <stdexcept>

namespace c4::core {

AllreduceTask::AllreduceTask(Cluster &cluster, AllreduceTaskConfig cfg)
    : cluster_(cluster), cfg_(std::move(cfg))
{
    assert(!cfg_.nodes.empty());
    assert(cfg_.iterations > 0);

    std::vector<accl::DeviceInfo> devices;
    for (NodeId n : cfg_.nodes) {
        for (int g = 0; g < cluster_.topology().gpusPerNode(); ++g) {
            devices.push_back({n, static_cast<GpuId>(g),
                               static_cast<NicId>(g)});
        }
    }
    comm_ = cluster_.accl().createCommunicator(cfg_.job,
                                               std::move(devices));
}

AllreduceTask::~AllreduceTask()
{
    if (comm_ != kInvalidId && cluster_.accl().hasCommunicator(comm_))
        cluster_.accl().destroyCommunicator(comm_);
}

void
AllreduceTask::start()
{
    postNext();
}

void
AllreduceTask::postNext()
{
    cluster_.accl().postCollective(
        comm_, accl::CollOp::AllReduce, cfg_.bytes,
        [this](const accl::CollectiveResult &res) {
            const double bw = toGbps(res.busBw());
            busBw_.add(bw);
            series_.push_back(bw);
            ++iter_;
            if (cb_)
                cb_(iter_, bw);
            if (iter_ >= cfg_.iterations) {
                done_ = true;
                return;
            }
            if (cfg_.gap > 0) {
                cluster_.sim().scheduleAfter(cfg_.gap,
                                             [this] { postNext(); });
            } else {
                postNext();
            }
        });
}

std::vector<std::vector<NodeId>>
crossSegmentPairs(const net::Topology &topo, int numTasks)
{
    const int segments = topo.numSegments();
    if (segments < 2)
        throw std::invalid_argument(
            "crossSegmentPairs needs >= 2 segments");
    const int per_segment = topo.config().nodesPerSegment;

    std::vector<std::vector<NodeId>> tasks;
    std::vector<int> used(static_cast<std::size_t>(segments), 0);
    for (int t = 0; t < numTasks; ++t) {
        const int seg_a = t % segments;
        // Offset in [1, segments-1] keeps the pair cross-segment for
        // any segment count.
        const int offset = 1 + (t / segments) % (segments - 1);
        const int seg_b = (seg_a + offset) % segments;
        const int slot_a = used[static_cast<std::size_t>(seg_a)]++;
        const int slot_b = used[static_cast<std::size_t>(seg_b)]++;
        const NodeId a =
            static_cast<NodeId>(seg_a * per_segment + slot_a);
        const NodeId b =
            static_cast<NodeId>(seg_b * per_segment + slot_b);
        if (slot_a >= per_segment || slot_b >= per_segment ||
            a >= topo.numNodes() || b >= topo.numNodes()) {
            throw std::invalid_argument(
                "not enough nodes for the requested task count");
        }
        tasks.push_back({a, b});
    }
    return tasks;
}

std::vector<NodeId>
spreadAcrossSegments(const net::Topology &topo, int count)
{
    const int segments = topo.numSegments();
    const int per_segment = topo.config().nodesPerSegment;
    std::vector<NodeId> nodes;
    nodes.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const int seg = i % segments;
        const int slot = i / segments;
        const NodeId n = static_cast<NodeId>(seg * per_segment + slot);
        if (slot >= per_segment || n >= topo.numNodes()) {
            throw std::invalid_argument(
                "not enough nodes to spread across segments");
        }
        nodes.push_back(n);
    }
    return nodes;
}

} // namespace c4::core
