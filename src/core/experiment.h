/**
 * @file
 * Experiment harness helpers shared by the benches: nccl-test-style
 * repeated-allreduce tasks (the paper's busbw benchmarks) and placement
 * utilities reproducing the evaluation setups.
 */

#ifndef C4_CORE_EXPERIMENT_H
#define C4_CORE_EXPERIMENT_H

#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "core/cluster.h"

namespace c4::core {

/** Configuration of one nccl-test-style allreduce benchmark task. */
struct AllreduceTaskConfig
{
    JobId job = 1;
    std::vector<NodeId> nodes;
    Bytes bytes = mib(256);
    int iterations = 50;
    /** Idle gap between iterations (0 = back to back). */
    Duration gap = 0;
};

/**
 * Repeatedly runs ring allreduce over all GPUs of the given nodes and
 * records per-operation bus bandwidth — the measurement loop behind
 * Figs. 9, 10 and 12.
 */
class AllreduceTask
{
  public:
    using IterationCallback =
        std::function<void(int iteration, double busBwGbps)>;

    AllreduceTask(Cluster &cluster, AllreduceTaskConfig cfg);
    ~AllreduceTask();

    AllreduceTask(const AllreduceTask &) = delete;
    AllreduceTask &operator=(const AllreduceTask &) = delete;

    void start();

    bool finished() const { return done_; }
    int iterationsCompleted() const { return iter_; }

    /** Bus bandwidth samples in Gbps. */
    const Summary &busBwGbps() const { return busBw_; }
    const std::vector<double> &series() const { return series_; }

    void onIteration(IterationCallback cb) { cb_ = std::move(cb); }

  private:
    Cluster &cluster_;
    AllreduceTaskConfig cfg_;
    CommId comm_ = kInvalidId;
    int iter_ = 0;
    bool done_ = false;
    Summary busBw_;
    std::vector<double> series_;
    IterationCallback cb_;

    void postNext();
};

/**
 * Pair up nodes across segments: task i gets one node from segment
 * (i mod S) and one from a different segment, forcing its traffic over
 * the spines — the Fig. 10 placement ("two servers connected to
 * distinct groups of leaf switches").
 */
std::vector<std::vector<NodeId>>
crossSegmentPairs(const net::Topology &topo, int numTasks);

/**
 * Spread @p count nodes round-robin across the segments (node i of
 * segment i mod S): every ring boundary crosses the spines — the
 * Fig. 9 placement.
 */
std::vector<NodeId> spreadAcrossSegments(const net::Topology &topo,
                                         int count);

} // namespace c4::core

#endif // C4_CORE_EXPERIMENT_H
