#include "core/cluster.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"

namespace c4::core {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(std::move(cfg)), topo_(cfg_.topology)
{
    Rng seeds(cfg_.seed);

    fabric_ = std::make_unique<net::Fabric>(sim_, topo_, cfg_.fabric,
                                            seeds());
    accl_ = std::make_unique<accl::Accl>(sim_, *fabric_, cfg_.accl,
                                         seeds());
    injector_ =
        std::make_unique<fault::FaultInjector>(sim_, seeds());
    injector_->setApplier(
        [this](const fault::FaultEvent &ev) { applyFault(ev); });

    if (cfg_.enableC4p) {
        c4pMaster_ = std::make_unique<c4p::C4pMaster>(sim_, topo_,
                                                      cfg_.c4p, seeds());
        accl_->setPathPolicy(c4pMaster_.get());
    }
    if (cfg_.enableC4d) {
        c4dMaster_ = std::make_unique<c4d::C4dMaster>(sim_, cfg_.c4d);
        agent_ = std::make_unique<c4d::C4Agent>(sim_, accl_->monitor(),
                                                *c4dMaster_,
                                                cfg_.agentPeriod);
        steering_ = std::make_unique<c4d::JobSteeringService>(
            sim_, cfg_.steering, seeds());
        c4dMaster_->onEvent([this](const c4d::C4dEvent &ev) {
            steering_->handleEvent(ev);
        });
        // Manual diagnosis (watchdog / start-failure path) eventually
        // identifies broken hardware offline.
        steering_->setCulpritOracle([this](JobId id) {
            std::vector<NodeId> culprits;
            if (train::TrainingJob *j = job(id)) {
                for (NodeId n : j->nodes()) {
                    if (broken_.count(n))
                        culprits.push_back(n);
                }
            }
            return culprits;
        });
        // The background RCA system watches the hardware monitors: any
        // fault class with an out-of-band trace lands in its log.
        rca_ = std::make_unique<c4d::RootCauseAnalyzer>();
        injector_->addObserver([this](const fault::FaultEvent &ev) {
            if (!c4d::faultVisibleInHardwareLogs(ev.type))
                return;
            c4d::HardwareLogEntry entry;
            entry.when = ev.when;
            entry.node = ev.node;
            entry.type = ev.type;
            entry.detail = ev.str();
            rca_->ingestHardwareEvent(entry);
        });
    }

    nodeUsed_.assign(static_cast<std::size_t>(topo_.numNodes()), false);
}

Cluster::~Cluster()
{
    // Jobs must release communicators before ACCL goes away.
    jobs_.clear();
}

std::vector<NodeId>
Cluster::allocateNodes(int count, PlacementStrategy strategy)
{
    // Unrepaired hardware is masked out of the pool: a broken node in
    // the free list would hand every new job a start failure.
    std::vector<bool> unavailable = nodeUsed_;
    for (NodeId n : broken_)
        unavailable[static_cast<std::size_t>(n)] = true;
    std::vector<NodeId> out =
        choosePlacement(topo_, unavailable, count, strategy);
    if (out.empty() && count > 0)
        throw std::runtime_error("node pool exhausted");
    for (NodeId n : out)
        nodeUsed_[static_cast<std::size_t>(n)] = true;
    return out;
}

void
Cluster::provisionBackupNodes(int count)
{
    if (!steering_)
        throw std::runtime_error("backup nodes need C4D enabled");
    steering_->addBackupNodes(allocateNodes(count));
    backupReserve_ += count;
}

int
Cluster::freeNodes() const
{
    int free = 0;
    for (bool used : nodeUsed_)
        free += used ? 0 : 1;
    return free;
}

train::TrainingJob &
Cluster::addJob(train::JobConfig jc)
{
    if (jobs_.count(jc.id))
        throw std::invalid_argument("duplicate job id");
    jc.gpusPerNode = topo_.gpusPerNode();
    if (jc.nodes.empty()) {
        const int needed =
            jc.parallel.worldSize() / topo_.gpusPerNode();
        jc.nodes = allocateNodes(needed);
    }
    auto job =
        std::make_unique<train::TrainingJob>(sim_, *accl_, std::move(jc));
    train::TrainingJob &ref = *job;
    // Initialization on a broken node is a start failure (Fig. 2).
    ref.setStartValidator([this](const std::vector<NodeId> &nodes) {
        for (NodeId n : nodes) {
            if (broken_.count(n))
                return false;
        }
        return true;
    });
    jobs_.emplace(ref.id(), std::move(job));
    if (steering_)
        steering_->manageJob(ref);
    trace::TraceScope &tr = sim_.tracer();
    if (tr.wants(trace::EventKind::JobArrival)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::JobArrival;
        tev.job = ref.id();
        tev.a = static_cast<std::int64_t>(ref.nodes().size());
        tev.detail = ref.config().name;
        tr.record(std::move(tev));
    }
    return ref;
}

bool
Cluster::isNodeBroken(NodeId node) const
{
    return broken_.count(node) > 0;
}

void
Cluster::repairNode(NodeId node)
{
    if (broken_.erase(node) == 0)
        return;
    trace::TraceScope &tr = sim_.tracer();
    if (tr.wants(trace::EventKind::FaultRecovered)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::FaultRecovered;
        tev.node = node;
        tr.record(std::move(tev));
    }
}

train::TrainingJob *
Cluster::job(JobId id)
{
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
}

bool
Cluster::removeJob(JobId id)
{
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    train::TrainingJob &j = *it->second;
    trace::TraceScope &tr = sim_.tracer();
    if (tr.wants(trace::EventKind::JobDeparture)) {
        trace::Event tev;
        tev.when = sim_.now();
        tev.kind = trace::EventKind::JobDeparture;
        tev.job = id;
        tev.a = static_cast<std::int64_t>(j.nodes().size());
        tr.record(std::move(tev));
    }
    // Unmanage first so an in-flight steering recovery cannot touch
    // the job after teardown.
    if (steering_)
        steering_->unmanageJob(id);
    j.stop();
    // Broken nodes return to the pool too — allocateNodes masks them
    // until repaired — but steering-isolated nodes stay out (that is
    // the steering service's lifecycle, not the allocator's). Healthy
    // nodes refill the warm-standby queue up to the configured
    // reserve before any reach the general pool; they stay marked
    // used, exactly like the nodes provisionBackupNodes reserved.
    for (NodeId n : j.nodes()) {
        if (steering_ && steering_->isolatedNodes().count(n))
            continue;
        if (steering_ && !broken_.count(n) &&
            steering_->backupsAvailable() <
                static_cast<std::size_t>(backupReserve_)) {
            steering_->addBackupNodes({n});
            continue;
        }
        nodeUsed_[static_cast<std::size_t>(n)] = false;
    }
    jobs_.erase(it);
    return true;
}

void
Cluster::startRuntime()
{
    if (c4dMaster_) {
        c4dMaster_->start();
        agent_->start();
    }
}

train::TrainingJob *
Cluster::jobOnNode(NodeId node)
{
    for (auto &[id, job] : jobs_) {
        const auto &nodes = job->nodes();
        if (std::find(nodes.begin(), nodes.end(), node) != nodes.end())
            return job.get();
    }
    return nullptr;
}

void
Cluster::applyFault(const fault::FaultEvent &ev)
{
    using fault::FaultType;
    switch (ev.type) {
      case FaultType::CudaError:
      case FaultType::EccError:
      case FaultType::NvlinkError:
      case FaultType::NcclTimeout:
      case FaultType::AckTimeout:
      case FaultType::NetworkOther: {
        // Hardware faults with a defective component stay broken until
        // repaired; transient software/stack faults do not.
        if (ev.isLocal &&
            (ev.type == FaultType::EccError ||
             ev.type == FaultType::NvlinkError)) {
            broken_.insert(ev.node);
        }
        if (train::TrainingJob *j = jobOnNode(ev.node))
            j->crashNode(ev.node);
        break;
      }
      case FaultType::SlowNode: {
        if (train::TrainingJob *j = jobOnNode(ev.node))
            j->setNodeComputeScale(ev.node, 1.0 / ev.severity);
        break;
      }
      case FaultType::SlowNicTx: {
        for (int p = 0; p < net::kNumPlanes; ++p) {
            fabric_->setLinkCapacityScale(
                topo_.hostUplink(ev.node, ev.nic, net::planeFromIndex(p)),
                ev.severity);
        }
        break;
      }
      case FaultType::SlowNicRx: {
        for (int p = 0; p < net::kNumPlanes; ++p) {
            fabric_->setLinkCapacityScale(
                topo_.hostDownlink(ev.node, ev.nic,
                                   net::planeFromIndex(p)),
                ev.severity);
        }
        break;
      }
      case FaultType::LinkDown: {
        // ev.link is a trunk index: leaf * numSpines + spine. A cable
        // failure kills both directions.
        const int spines = topo_.numSpines();
        const int leaf = static_cast<int>(ev.link) / spines;
        const int spine = static_cast<int>(ev.link) % spines;
        if (leaf < topo_.numLeaves()) {
            fabric_->setLinkUp(topo_.trunkUplink(leaf, spine), false);
            fabric_->setLinkUp(topo_.trunkDownlink(spine, leaf), false);
        }
        break;
      }
    }
}

net::TopologyConfig
paperTestbed(double oversubscription)
{
    net::TopologyConfig tc;
    tc.numNodes = 16;
    tc.gpusPerNode = 8;
    tc.nicsPerNode = 8;
    tc.nodesPerSegment = 4;
    tc.numSpines = 8;
    tc.portBandwidth = gbps(200);
    tc.oversubscription = oversubscription;
    tc.nvlinkBusBandwidth = gbps(362);
    return tc;
}

net::TopologyConfig
productionPod(int numNodes, double oversubscription)
{
    net::TopologyConfig tc = paperTestbed(oversubscription);
    tc.numNodes = numNodes;
    tc.nodesPerSegment = 4;
    tc.numSpines = 8;
    return tc;
}

} // namespace c4::core
