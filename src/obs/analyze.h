/**
 * @file
 * Offline analysis over recorded metric snapshots — the engine behind
 * the `c4stat` CLI (summary / tail / diff), the metrics twin of
 * trace/analyze.h.
 */

#ifndef C4_OBS_ANALYZE_H
#define C4_OBS_ANALYZE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/snapshot.h"

namespace c4::obs {

/** One loaded snapshot file. */
struct SnapshotFile {
    std::string path;
    SnapshotMeta meta;
    std::vector<Sample> samples;
};

/**
 * Expand one CLI path argument into snapshot file paths: a directory
 * yields every `*.jsonl` under it (recursively, sorted); a file yields
 * itself. @throws std::runtime_error when nothing is found.
 */
std::vector<std::string> collectSnapshotFiles(const std::string &path);

/** Load and parse one file. @throws std::runtime_error on bad input. */
SnapshotFile loadSnapshotFile(const std::string &path);

/**
 * Per-metric rollup across all files: kind, sampling ticks, last
 * value, and window percentiles where applicable.
 */
void printSummary(const std::vector<SnapshotFile> &files,
                  std::ostream &out);

/**
 * The last @p ticks sampling ticks of each file, one line per sample,
 * newest last — `tail -f` for a finished run.
 */
void printTail(const std::vector<SnapshotFile> &files, int ticks,
               std::ostream &out);

/**
 * Line-by-line byte comparison of two snapshot files. Prints the first
 * divergence with @p context preceding lines.
 * @return 0 when identical, 1 when different (the determinism
 *         debugger's exit-code contract, like `c4trace diff`).
 */
int diffSnapshots(const std::string &pathA, const std::string &pathB,
                  std::ostream &out, int context = 3);

} // namespace c4::obs

#endif // C4_OBS_ANALYZE_H
