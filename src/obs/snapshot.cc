#include "obs/snapshot.h"

namespace c4::obs {

namespace {

Json
makeInt(std::int64_t v)
{
    Json j;
    j.kind = Json::Kind::Int;
    j.integer = v;
    return j;
}

Json
makeDouble(double v)
{
    Json j;
    j.kind = Json::Kind::Double;
    j.number = v;
    return j;
}

Json
makeString(std::string s)
{
    Json j;
    j.kind = Json::Kind::String;
    j.string = std::move(s);
    return j;
}

void
addMember(Json &obj, const char *key, Json value)
{
    Json::Member m;
    m.key = key;
    m.value = std::move(value);
    obj.object.push_back(std::move(m));
}

[[noreturn]] void
bindFail(const Json &at, const std::string &what)
{
    throw SpecError(what, at.line, at.column);
}

std::int64_t
bindInt(const Json &v, const char *key)
{
    if (v.kind != Json::Kind::Int)
        bindFail(v, std::string("\"") + key + "\" must be an integer");
    return v.integer;
}

double
bindNumber(const Json &v, const char *key)
{
    if (v.kind == Json::Kind::Int)
        return static_cast<double>(v.integer);
    if (v.kind == Json::Kind::Double)
        return v.number;
    bindFail(v, std::string("\"") + key + "\" must be a number");
}

std::string
bindString(const Json &v, const char *key)
{
    if (v.kind != Json::Kind::String)
        bindFail(v, std::string("\"") + key + "\" must be a string");
    return v.string;
}

} // namespace

std::string
metaToJsonLine(const SnapshotMeta &meta)
{
    Json obj;
    obj.kind = Json::Kind::Object;
    addMember(obj, "schema", makeString(kSnapshotSchema));
    addMember(obj, "scenario", makeString(meta.scenario));
    addMember(obj, "variant", makeString(meta.variant));
    addMember(obj, "trial", makeInt(meta.trial));
    addMember(obj, "period_ns", makeInt(meta.periodNs));
    return writeJsonCompact(obj);
}

std::string
sampleToJsonLine(const Sample &sample)
{
    Json obj;
    obj.kind = Json::Kind::Object;
    addMember(obj, "t", makeInt(sample.when));
    addMember(obj, "n", makeString(sample.name));
    addMember(obj, "k", makeString(kindName(sample.kind)));
    if (sample.count != 0)
        addMember(obj, "c", makeInt(sample.count));
    if (sample.value != 0.0)
        addMember(obj, "v", makeDouble(sample.value));
    if (sample.min != 0.0)
        addMember(obj, "min", makeDouble(sample.min));
    if (sample.p50 != 0.0)
        addMember(obj, "p50", makeDouble(sample.p50));
    if (sample.p90 != 0.0)
        addMember(obj, "p90", makeDouble(sample.p90));
    if (sample.p99 != 0.0)
        addMember(obj, "p99", makeDouble(sample.p99));
    if (sample.max != 0.0)
        addMember(obj, "max", makeDouble(sample.max));
    return writeJsonCompact(obj);
}

SnapshotMeta
metaFromJson(const Json &value)
{
    if (value.kind != Json::Kind::Object)
        bindFail(value, "snapshot header must be a JSON object");
    SnapshotMeta meta;
    bool haveSchema = false;
    for (const Json::Member &m : value.object) {
        const Json &v = m.value;
        if (m.key == "schema") {
            const std::string schema = bindString(v, "schema");
            if (schema != kSnapshotSchema) {
                bindFail(v, "unknown snapshot schema \"" + schema +
                                "\" (expected \"" +
                                std::string(kSnapshotSchema) + "\")");
            }
            haveSchema = true;
        } else if (m.key == "scenario") {
            meta.scenario = bindString(v, "scenario");
        } else if (m.key == "variant") {
            meta.variant = bindString(v, "variant");
        } else if (m.key == "trial") {
            meta.trial = static_cast<int>(bindInt(v, "trial"));
        } else if (m.key == "period_ns") {
            meta.periodNs = bindInt(v, "period_ns");
        } else {
            throw SpecError("unknown snapshot header key \"" + m.key +
                                "\"",
                            m.keyLine, m.keyColumn);
        }
    }
    if (!haveSchema)
        bindFail(value, "snapshot header needs \"schema\"");
    return meta;
}

Sample
sampleFromJson(const Json &value)
{
    if (value.kind != Json::Kind::Object)
        bindFail(value, "metric record must be a JSON object");
    Sample s;
    bool haveWhen = false, haveName = false, haveKind = false;
    for (const Json::Member &m : value.object) {
        const Json &v = m.value;
        if (m.key == "t") {
            s.when = bindInt(v, "t");
            haveWhen = true;
        } else if (m.key == "n") {
            s.name = bindString(v, "n");
            haveName = true;
        } else if (m.key == "k") {
            if (v.kind != Json::Kind::String ||
                !kindFromName(v.string, s.kind)) {
                bindFail(v, "\"k\" must name a known metric kind");
            }
            haveKind = true;
        } else if (m.key == "c") {
            s.count = bindInt(v, "c");
        } else if (m.key == "v") {
            s.value = bindNumber(v, "v");
        } else if (m.key == "min") {
            s.min = bindNumber(v, "min");
        } else if (m.key == "p50") {
            s.p50 = bindNumber(v, "p50");
        } else if (m.key == "p90") {
            s.p90 = bindNumber(v, "p90");
        } else if (m.key == "p99") {
            s.p99 = bindNumber(v, "p99");
        } else if (m.key == "max") {
            s.max = bindNumber(v, "max");
        } else {
            throw SpecError("unknown metric record key \"" + m.key +
                                "\"",
                            m.keyLine, m.keyColumn);
        }
    }
    if (!haveWhen || !haveName || !haveKind)
        bindFail(value, "metric record needs \"t\", \"n\", and \"k\"");
    return s;
}

std::string
writeSnapshot(const SnapshotMeta &meta,
              const std::vector<Sample> &samples)
{
    std::string out = metaToJsonLine(meta);
    out.push_back('\n');
    for (const Sample &s : samples) {
        out += sampleToJsonLine(s);
        out.push_back('\n');
    }
    return out;
}

void
parseSnapshot(const std::string &text, SnapshotMeta &meta,
              std::vector<Sample> &samples)
{
    meta = SnapshotMeta{};
    samples.clear();
    std::size_t start = 0;
    int lineNo = 0;
    bool haveHeader = false;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        const std::size_t end = nl == std::string::npos ? text.size()
                                                        : nl;
        ++lineNo;
        const std::string line = text.substr(start, end - start);
        // A record without its terminating newline is a truncated
        // write (writeSnapshot always newline-terminates): even when
        // the visible prefix happens to parse, trailing fields of the
        // record may be missing, so reject instead of silently
        // keeping a plausible-looking half sample.
        if (nl == std::string::npos && !line.empty()) {
            throw SpecError("record on line " + std::to_string(lineNo) +
                                ": truncated record (missing final "
                                "newline; incomplete write?)",
                            0, 0);
        }
        if (!line.empty()) {
            try {
                const Json parsed = parseJson(line);
                if (!haveHeader) {
                    meta = metaFromJson(parsed);
                    haveHeader = true;
                } else {
                    samples.push_back(sampleFromJson(parsed));
                }
            } catch (const SpecError &e) {
                throw SpecError("record on line " +
                                    std::to_string(lineNo) + ": " +
                                    e.what(),
                                0, 0);
            }
        }
        if (nl == std::string::npos)
            break;
        start = nl + 1;
    }
    if (!haveHeader && !text.empty()) {
        throw SpecError("snapshot has no c4metrics/1 header line", 0,
                        0);
    }
}

std::string
sanitizeFileComponent(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    // "." and ".." are path traversal, not names: a spec file can put
    // anything in its scenario name, and `--metrics DIR` must never
    // write outside DIR.
    if (out.empty() || out == "." || out == "..")
        return std::string(out.empty() ? 1 : out.size(), '_');
    return out;
}

} // namespace c4::obs
