#include "obs/analyze.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/table.h"

namespace c4::obs {

namespace {

namespace fs = std::filesystem;

std::string
readFile(const std::string &path)
{
    // An ifstream on a directory opens fine but reads zero bytes,
    // which would make `diff <dir> <dir>` report "identical: 0
    // lines" instead of failing.
    if (!fs::is_regular_file(path))
        throw std::runtime_error("'" + path +
                                 "' is not a snapshot file");
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        const std::size_t end =
            nl == std::string::npos ? text.size() : nl;
        lines.push_back(text.substr(start, end - start));
        if (nl == std::string::npos)
            break;
        start = nl + 1;
    }
    return lines;
}

std::string
formatTime(Time when)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9f",
                  static_cast<double>(when) / 1e9);
    return buf;
}

/** Short tag for multi-file listings: the file name sans .jsonl. */
std::string
fileTag(const std::string &path)
{
    std::string name = fs::path(path).filename().string();
    const std::string suffix = ".jsonl";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        name.resize(name.size() - suffix.size());
    }
    return name;
}

void
describeSample(const Sample &s, std::ostream &out)
{
    out << s.name << " (" << kindName(s.kind) << ")";
    switch (s.kind) {
    case MetricKind::Counter:
        out << " c=" << s.count;
        break;
    case MetricKind::Gauge:
        out << " v=" << formatJsonDouble(s.value);
        break;
    case MetricKind::Window:
        out << " c=" << s.count
            << " p50=" << formatJsonDouble(s.p50)
            << " p99=" << formatJsonDouble(s.p99)
            << " max=" << formatJsonDouble(s.max);
        break;
    }
}

} // namespace

std::vector<std::string>
collectSnapshotFiles(const std::string &path)
{
    std::vector<std::string> files;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (const auto &entry :
             fs::recursive_directory_iterator(path)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".jsonl") {
                files.push_back(entry.path().string());
            }
        }
        std::sort(files.begin(), files.end());
        if (files.empty()) {
            throw std::runtime_error(
                "no *.jsonl snapshot files under '" + path + "'");
        }
    } else if (fs::is_regular_file(path, ec)) {
        files.push_back(path);
    } else {
        throw std::runtime_error(
            "no snapshot file or directory at '" + path + "'");
    }
    return files;
}

SnapshotFile
loadSnapshotFile(const std::string &path)
{
    SnapshotFile sf;
    sf.path = path;
    try {
        parseSnapshot(readFile(path), sf.meta, sf.samples);
    } catch (const SpecError &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
    return sf;
}

void
printSummary(const std::vector<SnapshotFile> &files, std::ostream &out)
{
    // Per-metric rollup in first-appearance order across files.
    struct Roll {
        MetricKind kind = MetricKind::Counter;
        std::uint64_t ticks = 0;
        Sample last; ///< the latest sample seen (files are sorted)
    };
    std::vector<std::string> order;
    std::map<std::string, Roll> rolls;
    std::size_t total = 0;
    for (const SnapshotFile &sf : files) {
        total += sf.samples.size();
        for (const Sample &s : sf.samples) {
            auto it = rolls.find(s.name);
            if (it == rolls.end()) {
                order.push_back(s.name);
                it = rolls.emplace(s.name, Roll{}).first;
                it->second.kind = s.kind;
            }
            ++it->second.ticks;
            it->second.last = s;
        }
    }

    out << files.size() << " snapshot file(s), " << total
        << " sample(s)\n\n";
    AsciiTable t({"metric", "kind", "ticks", "last", "p50", "p99"});
    for (const std::string &name : order) {
        const Roll &r = rolls[name];
        std::string last, p50, p99;
        switch (r.kind) {
        case MetricKind::Counter:
            last = AsciiTable::integer(r.last.count);
            p50 = p99 = "-";
            break;
        case MetricKind::Gauge:
            last = formatJsonDouble(r.last.value);
            p50 = p99 = "-";
            break;
        case MetricKind::Window:
            last = AsciiTable::integer(r.last.count);
            p50 = formatJsonDouble(r.last.p50);
            p99 = formatJsonDouble(r.last.p99);
            break;
        }
        t.addRow({name, kindName(r.kind),
                  AsciiTable::integer(static_cast<std::int64_t>(
                      r.ticks)),
                  last, p50, p99});
    }
    out << t.str();
}

void
printTail(const std::vector<SnapshotFile> &files, int ticks,
          std::ostream &out)
{
    const bool tagged = files.size() > 1;
    for (const SnapshotFile &sf : files) {
        // Samples are tick-major in emission order; find where the
        // last `ticks` sampling timestamps begin.
        std::size_t from = sf.samples.size();
        int seen = 0;
        Time lastWhen = 0;
        while (from > 0) {
            const Time when = sf.samples[from - 1].when;
            if (seen == 0 || when != lastWhen) {
                if (seen == ticks)
                    break;
                ++seen;
                lastWhen = when;
            }
            --from;
        }
        if (tagged)
            out << "== " << fileTag(sf.path) << " ==\n";
        for (std::size_t i = from; i < sf.samples.size(); ++i) {
            const Sample &s = sf.samples[i];
            out << "t=" << formatTime(s.when) << "s  ";
            describeSample(s, out);
            out << "\n";
        }
    }
}

int
diffSnapshots(const std::string &pathA, const std::string &pathB,
              std::ostream &out, int context)
{
    const std::vector<std::string> a = splitLines(readFile(pathA));
    const std::vector<std::string> b = splitLines(readFile(pathB));
    const std::size_t n = std::min(a.size(), b.size());
    std::size_t div = n;
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i]) {
            div = i;
            break;
        }
    }
    if (div == n && a.size() == b.size()) {
        out << "identical: " << a.size() << " snapshot line(s)\n";
        return 0;
    }

    out << "snapshots diverge at line " << div + 1 << "\n";
    const std::size_t from =
        div > static_cast<std::size_t>(context)
            ? div - static_cast<std::size_t>(context)
            : 0;
    for (std::size_t i = from; i < div; ++i)
        out << "  " << i + 1 << "   " << a[i] << "\n";
    if (div < a.size())
        out << "< " << div + 1 << "   " << a[div] << "\n";
    else
        out << "< " << div + 1 << "   <end of " << pathA << ">\n";
    if (div < b.size())
        out << "> " << div + 1 << "   " << b[div] << "\n";
    else
        out << "> " << div + 1 << "   <end of " << pathB << ">\n";
    return 1;
}

} // namespace c4::obs
