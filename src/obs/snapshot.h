/**
 * @file
 * Metric-snapshot serialization: the `c4metrics/1` JSONL format.
 *
 * A snapshot file is one header line naming the schema, scenario,
 * variant, trial, and sampling period, followed by one compact JSON
 * object per Sample. Like trace JSONL it is byte-deterministic: fixed
 * key order, default-valued fields omitted, timestamps as exact
 * integer nanoseconds, doubles in shortest round-trip form.
 * writeSnapshot(parseSnapshot(text)) == text for any text
 * writeSnapshot produced — the property `c4stat diff` and the
 * 1-vs-N-thread byte-equality gate rely on.
 */

#ifndef C4_OBS_SNAPSHOT_H
#define C4_OBS_SNAPSHOT_H

#include <string>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"

namespace c4::obs {

/** Current snapshot schema tag, the header line's `schema` value. */
inline constexpr const char *kSnapshotSchema = "c4metrics/1";

/** Identity of one snapshot stream (the header line's payload). */
struct SnapshotMeta {
    std::string scenario;
    std::string variant;
    int trial = 0;
    Duration periodNs = 0;

    bool operator==(const SnapshotMeta &) const = default;
};

/** The header as a compact one-line JSON object (no newline). */
std::string metaToJsonLine(const SnapshotMeta &meta);

/** One sample as a compact one-line JSON object (no newline). */
std::string sampleToJsonLine(const Sample &sample);

/**
 * Bind one parsed header record back to a SnapshotMeta. Unknown keys,
 * mistyped values, and unknown schema tags are errors.
 * @throws SpecError
 */
SnapshotMeta metaFromJson(const Json &value);

/**
 * Bind one parsed sample record back to a Sample. Unknown keys and
 * mistyped values are errors (schema drift must not pass silently).
 * @throws SpecError
 */
Sample sampleFromJson(const Json &value);

/** Header plus all samples, one line each, newline-terminated. */
std::string writeSnapshot(const SnapshotMeta &meta,
                          const std::vector<Sample> &samples);

/**
 * Parse a snapshot document produced by writeSnapshot. The first
 * non-empty line must be a `c4metrics/1` header.
 *
 * Strict by design: malformed records, unknown kinds/keys, and
 * truncated input all throw — a final record without its terminating
 * newline is rejected as a truncated write even when the visible
 * prefix parses, because writeSnapshot always newline-terminates and
 * a mid-line EOF may have silently dropped trailing fields.
 * @throws SpecError with the 1-based line number of the bad record.
 */
void parseSnapshot(const std::string &text, SnapshotMeta &meta,
                   std::vector<Sample> &samples);

/**
 * Make a scenario/variant label safe as a file-name component:
 * characters outside [A-Za-z0-9._-] become '_'. Callers must still
 * namespace by index when two labels could collide after mapping.
 */
std::string sanitizeFileComponent(const std::string &label);

} // namespace c4::obs

#endif // C4_OBS_SNAPSHOT_H
