/**
 * @file
 * Deterministic live-metrics registry: named counters, gauges, and
 * sliding-window histograms, sampled on a simulated-time cadence.
 *
 * The registry is the live half of the observability story (traces are
 * the forensic half): instrumented code pushes counter bumps and window
 * observations through a nullable MetricsScope handle — the exact
 * pattern of trace::TraceScope, zero overhead when detached — and a
 * per-trial sampler pulls gauge state and appends one Sample per metric
 * per tick. Everything is keyed on simulated time and plain data, so
 * snapshots are byte-identical across `--threads` values.
 */

#ifndef C4_OBS_METRICS_H
#define C4_OBS_METRICS_H

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace c4::obs {

enum class MetricKind : std::uint8_t {
    Counter, ///< monotonic (or externally-set) integer total
    Gauge,   ///< last-write-wins instantaneous value
    Window,  ///< sliding-window quantile histogram over observations
};

/** Stable short name, used in the c4metrics/1 JSONL `k` field. */
const char *kindName(MetricKind kind);

/** Inverse of kindName(); false when @p text names no kind. */
bool kindFromName(const std::string &text, MetricKind &out);

/**
 * One metric's state captured at one sampling tick. Counter samples
 * carry `count`; gauge samples carry `value`; window samples carry
 * `count` (observations ever) plus the window min/p50/p90/p99/max.
 */
struct Sample {
    Time when = 0;
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::int64_t count = 0;
    double value = 0.0;
    double min = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;

    bool operator==(const Sample &) const = default;
};

/**
 * Registry of named metrics plus the samples collected so far. Metrics
 * are created on first touch and iterated in first-registration order,
 * so snapshot output depends only on the instrumented code path — never
 * on hash-map iteration order. Re-using a name with a different kind is
 * a programming error and throws std::logic_error.
 */
class MetricRegistry
{
  public:
    /** @param windowCapacity ring size for every Window metric. */
    explicit MetricRegistry(std::size_t windowCapacity = 512);

    /** Bump a counter by @p delta (creating it at zero). */
    void addCounter(const std::string &name, std::int64_t delta = 1);
    /** Overwrite a counter with an externally-tracked absolute total. */
    void setCounter(const std::string &name, std::int64_t absolute);
    void setGauge(const std::string &name, double v);
    /** Feed one observation into a sliding-window histogram. */
    void observe(const std::string &name, double v);

    /** Append one Sample per registered metric, stamped @p now. */
    void snapshot(Time now);

    std::size_t metricCount() const { return metrics_.size(); }
    const std::vector<Sample> &samples() const { return samples_; }

  private:
    struct Metric {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        std::int64_t counter = 0;
        double gauge = 0.0;
        WindowedQuantile window;

        Metric(std::string n, MetricKind k, std::size_t windowCapacity)
            : name(std::move(n)), kind(k), window(windowCapacity)
        {
        }
    };

    // Deque for stable addresses + deterministic registration order;
    // the unordered_map is lookup-only and never iterated.
    std::deque<Metric> metrics_;
    std::unordered_map<std::string, std::size_t> index_;
    std::vector<Sample> samples_;
    std::size_t windowCapacity_;

    Metric &metricFor(const std::string &name, MetricKind kind);
};

/**
 * Nullable, copyable handle to a MetricRegistry — the metrics twin of
 * trace::TraceScope. Instrumented code holds a scope by value and calls
 * the emitters unconditionally; a detached scope (the default) makes
 * every emitter a cheap no-op, so production paths carry no metrics
 * cost unless a registry is attached.
 */
class MetricsScope
{
  public:
    MetricsScope() = default;
    explicit MetricsScope(MetricRegistry *registry) : registry_(registry)
    {
    }

    bool attached() const { return registry_ != nullptr; }
    MetricRegistry *registry() const { return registry_; }

    void count(const std::string &name, std::int64_t delta = 1)
    {
        if (registry_ != nullptr)
            registry_->addCounter(name, delta);
    }

    void set(const std::string &name, std::int64_t absolute)
    {
        if (registry_ != nullptr)
            registry_->setCounter(name, absolute);
    }

    void gauge(const std::string &name, double v)
    {
        if (registry_ != nullptr)
            registry_->setGauge(name, v);
    }

    void observe(const std::string &name, double v)
    {
        if (registry_ != nullptr)
            registry_->observe(name, v);
    }

  private:
    MetricRegistry *registry_ = nullptr;
};

} // namespace c4::obs

#endif // C4_OBS_METRICS_H
