#include "obs/metrics.h"

#include <stdexcept>

namespace c4::obs {

const char *
kindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter:
        return "counter";
    case MetricKind::Gauge:
        return "gauge";
    case MetricKind::Window:
        return "window";
    }
    return "unknown";
}

bool
kindFromName(const std::string &text, MetricKind &out)
{
    if (text == "counter") {
        out = MetricKind::Counter;
        return true;
    }
    if (text == "gauge") {
        out = MetricKind::Gauge;
        return true;
    }
    if (text == "window") {
        out = MetricKind::Window;
        return true;
    }
    return false;
}

MetricRegistry::MetricRegistry(std::size_t windowCapacity)
    : windowCapacity_(windowCapacity == 0 ? 1 : windowCapacity)
{
}

MetricRegistry::Metric &
MetricRegistry::metricFor(const std::string &name, MetricKind kind)
{
    auto it = index_.find(name);
    if (it != index_.end()) {
        Metric &m = metrics_[it->second];
        if (m.kind != kind) {
            throw std::logic_error(
                "metric '" + name + "' registered as " +
                kindName(m.kind) + ", touched as " + kindName(kind));
        }
        return m;
    }
    index_.emplace(name, metrics_.size());
    metrics_.emplace_back(name, kind, windowCapacity_);
    return metrics_.back();
}

void
MetricRegistry::addCounter(const std::string &name, std::int64_t delta)
{
    metricFor(name, MetricKind::Counter).counter += delta;
}

void
MetricRegistry::setCounter(const std::string &name, std::int64_t absolute)
{
    metricFor(name, MetricKind::Counter).counter = absolute;
}

void
MetricRegistry::setGauge(const std::string &name, double v)
{
    metricFor(name, MetricKind::Gauge).gauge = v;
}

void
MetricRegistry::observe(const std::string &name, double v)
{
    metricFor(name, MetricKind::Window).window.add(v);
}

void
MetricRegistry::snapshot(Time now)
{
    for (const Metric &m : metrics_) {
        Sample s;
        s.when = now;
        s.name = m.name;
        s.kind = m.kind;
        switch (m.kind) {
        case MetricKind::Counter:
            s.count = m.counter;
            break;
        case MetricKind::Gauge:
            s.value = m.gauge;
            break;
        case MetricKind::Window:
            s.count = static_cast<std::int64_t>(m.window.count());
            s.min = m.window.min();
            s.p50 = m.window.percentile(50.0);
            s.p90 = m.window.percentile(90.0);
            s.p99 = m.window.percentile(99.0);
            s.max = m.window.max();
            break;
        }
        samples_.push_back(std::move(s));
    }
}

} // namespace c4::obs
