#include "trace/trace.h"

namespace c4::trace {

namespace {

const char *const kKindNames[kNumEventKinds] = {
    "fault_injected",    // FaultInjected
    "fault_recovered",   // FaultRecovered
    "steering_decision", // SteeringDecision
    "path_realloc",      // PathRealloc
    "cnp_sample",        // CnpSample
    "job_arrival",       // JobArrival
    "job_departure",     // JobDeparture
    "recompute_begin",   // RecomputeBegin
    "recompute_end",     // RecomputeEnd
};

std::string
knownKindList()
{
    std::string out;
    for (int k = 0; k < kNumEventKinds; ++k) {
        if (k > 0)
            out += ", ";
        out += kKindNames[k];
    }
    return out;
}

} // namespace

const char *
eventKindName(EventKind kind)
{
    const int k = static_cast<int>(kind);
    return k >= 0 && k < kNumEventKinds ? kKindNames[k] : "?";
}

bool
eventKindFromName(const std::string &name, EventKind &out)
{
    for (int k = 0; k < kNumEventKinds; ++k) {
        if (name == kKindNames[k]) {
            out = static_cast<EventKind>(k);
            return true;
        }
    }
    return false;
}

std::string
parseKindFilter(const std::string &list, KindMask &out)
{
    KindMask mask = 0;
    std::size_t start = 0;
    bool any = false;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > start) {
            const std::string token =
                list.substr(start, end - start);
            EventKind kind;
            if (!eventKindFromName(token, kind)) {
                return "unknown trace event kind '" + token +
                       "' (known: " + knownKindList() + ")";
            }
            mask |= kindBit(kind);
            any = true;
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (!any)
        return "empty trace filter (known kinds: " + knownKindList() +
               ")";
    out = mask;
    return "";
}

} // namespace c4::trace
