/**
 * @file
 * Deterministic per-trial event tracing.
 *
 * A TraceRecorder collects typed events — fault injections and
 * recoveries, steering decisions, path (re)allocations, CNP samples,
 * job arrivals/departures, fabric recompute begin/end — from every
 * layer of the stack during one simulated trial. Events carry
 * *simulated* timestamps only (never wall clock), and each trial runs
 * on one thread with its own Simulator, so a trial's trace is
 * byte-identical across `--threads 1` vs `--threads N` and across
 * reruns with the same seed: the same determinism contract the CSV
 * path guarantees, extended to everything that happens *during* the
 * trial.
 *
 * Layers emit through a TraceScope, a nullable handle carried by the
 * Simulator. Detached (the default), wants() is a null-pointer check
 * and no Event is ever constructed — tracing costs nothing unless a
 * recorder is attached:
 *
 *     trace::TraceScope &tr = sim_.tracer();
 *     if (tr.wants(trace::EventKind::FaultInjected)) {
 *         trace::Event ev;
 *         ev.when = sim_.now();
 *         ev.kind = trace::EventKind::FaultInjected;
 *         ...
 *         tr.record(std::move(ev));
 *     }
 */

#ifndef C4_TRACE_TRACE_H
#define C4_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace c4::trace {

/**
 * Event taxonomy. Field semantics per kind (see the README "Tracing"
 * schema table):
 *
 *   FaultInjected     node=victim, a=NIC (or trunk index for
 *                     link_down), b=isLocal, value=severity,
 *                     detail=fault type name
 *   FaultRecovered    node=repaired node
 *   SteeringDecision  job, a=#isolated nodes, b=via C4D (1) or the
 *                     manual/watchdog path (0), value=recovery
 *                     latency in seconds, detail="restart"
 *   PathRealloc       C4P QP placement: job, node=src node, a=spine,
 *                     b=1 for a re-pin (0 initial), detail="alloc"/
 *                     "repin"; fabric link events: a=link id, b=up,
 *                     value=#flows rerouted, detail="link_up"/
 *                     "link_down"; capacity scaling: a=link id,
 *                     b=#flows routed over the link, value=scale,
 *                     detail="link_scale"
 *   CnpSample         a=#NICs with a nonzero rate this tick,
 *                     value=mean kp/s over them
 *   JobArrival        job, a=#nodes, detail=job name
 *   JobDeparture      job, a=#nodes
 *   RecomputeBegin    a=#admitted flows, b=#dirty links seeding the
 *                     incremental component search
 *   RecomputeEnd      a=#re-filled (runnable component) flows,
 *                     b=#active component links,
 *                     value=progressive-filling work (ops)
 */
enum class EventKind : std::uint8_t {
    FaultInjected = 0,
    FaultRecovered,
    SteeringDecision,
    PathRealloc,
    CnpSample,
    JobArrival,
    JobDeparture,
    RecomputeBegin,
    RecomputeEnd,
};

constexpr int kNumEventKinds = 9;

/** Stable snake_case name ("fault_injected", ...). */
const char *eventKindName(EventKind kind);

/** @return false when @p name is not a known kind name. */
bool eventKindFromName(const std::string &name, EventKind &out);

/** Bitmask over EventKind, for recording filters. */
using KindMask = std::uint32_t;
constexpr KindMask kAllKinds = (KindMask{1} << kNumEventKinds) - 1;

constexpr KindMask
kindBit(EventKind kind)
{
    return KindMask{1} << static_cast<int>(kind);
}

/**
 * Parse a comma-separated kind list ("fault_injected,recompute_end")
 * into a mask. @return "" on success, else an error naming the bad
 * token and the valid kinds.
 */
std::string parseKindFilter(const std::string &list, KindMask &out);

/** One recorded occurrence. Field use is per-kind; see EventKind. */
struct Event
{
    Time when = 0; ///< simulated nanoseconds (never wall clock)
    EventKind kind = EventKind::FaultInjected;
    JobId job = kInvalidId;
    NodeId node = kInvalidId;
    std::int64_t a = 0; ///< kind-specific counter/id
    std::int64_t b = 0; ///< kind-specific counter/flag
    double value = 0.0; ///< kind-specific measurement
    std::string detail; ///< short stable label; never free-form text

    bool operator==(const Event &) const = default;
};

/**
 * Collects one trial's events in emission order (which, per the
 * determinism contract, is a pure function of the trial seed).
 */
class TraceRecorder
{
  public:
    explicit TraceRecorder(KindMask filter = kAllKinds)
        : filter_(filter)
    {
    }

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    bool
    wants(EventKind kind) const
    {
        return (filter_ & kindBit(kind)) != 0;
    }

    /** Append @p ev (the caller already checked wants()). */
    void
    record(Event ev)
    {
        events_.push_back(std::move(ev));
    }

    const std::vector<Event> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    KindMask filter() const { return filter_; }

  private:
    KindMask filter_;
    std::vector<Event> events_;
};

/**
 * The nullable handle layers emit through. Copyable and cheap; the
 * recorder (when any) must outlive every scope pointing at it.
 */
class TraceScope
{
  public:
    TraceScope() = default;
    explicit TraceScope(TraceRecorder *recorder) : recorder_(recorder)
    {
    }

    bool attached() const { return recorder_ != nullptr; }

    /** Gate event construction on this: detached = one null check. */
    bool
    wants(EventKind kind) const
    {
        return recorder_ != nullptr && recorder_->wants(kind);
    }

    void
    record(Event ev)
    {
        if (recorder_ != nullptr && recorder_->wants(ev.kind))
            recorder_->record(std::move(ev));
    }

  private:
    TraceRecorder *recorder_ = nullptr;
};

} // namespace c4::trace

#endif // C4_TRACE_TRACE_H
