#include "trace/analyze.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/stats.h"
#include "trace/export.h"

namespace c4::trace {

namespace {

namespace fs = std::filesystem;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        const std::size_t end =
            nl == std::string::npos ? text.size() : nl;
        lines.push_back(text.substr(start, end - start));
        if (nl == std::string::npos)
            break;
        start = nl + 1;
    }
    return lines;
}

std::string
formatTime(Time when)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9f",
                  static_cast<double>(when) / 1e9);
    return buf;
}

/** Short tag for interleaved timelines: the file name sans .jsonl. */
std::string
fileTag(const std::string &path)
{
    std::string name = fs::path(path).filename().string();
    const std::string suffix = ".jsonl";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        name.resize(name.size() - suffix.size());
    }
    return name;
}

void
describeEvent(const Event &ev, std::ostream &out)
{
    out << eventKindName(ev.kind);
    if (ev.job != kInvalidId)
        out << " job=" << ev.job;
    if (ev.node != kInvalidId)
        out << " node=" << ev.node;
    if (ev.a != 0)
        out << " a=" << ev.a;
    if (ev.b != 0)
        out << " b=" << ev.b;
    if (ev.value != 0.0)
        out << " v=" << formatJsonDouble(ev.value);
    if (!ev.detail.empty())
        out << " [" << ev.detail << "]";
}

} // namespace

std::vector<std::string>
collectTraceFiles(const std::string &path)
{
    std::vector<std::string> files;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (const auto &entry :
             fs::recursive_directory_iterator(path)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".jsonl") {
                files.push_back(entry.path().string());
            }
        }
        std::sort(files.begin(), files.end());
        if (files.empty()) {
            throw std::runtime_error("no *.jsonl trace files under '" +
                                     path + "'");
        }
    } else if (fs::is_regular_file(path, ec)) {
        files.push_back(path);
    } else {
        throw std::runtime_error("no trace file or directory at '" +
                                 path + "'");
    }
    return files;
}

TraceFile
loadTraceFile(const std::string &path)
{
    TraceFile tf;
    tf.path = path;
    try {
        tf.events = parseJsonl(readFile(path));
    } catch (const SpecError &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
    return tf;
}

void
printSummary(const std::vector<TraceFile> &traces, std::ostream &out)
{
    std::uint64_t counts[kNumEventKinds] = {};
    Summary values[kNumEventKinds];
    std::size_t total = 0;

    // (cost, when, file) triples of recompute_end events.
    struct Cost
    {
        double ops;
        Time when;
        const std::string *path;
    };
    std::vector<Cost> recomputes;

    for (const TraceFile &tf : traces) {
        total += tf.events.size();
        for (const Event &ev : tf.events) {
            const int k = static_cast<int>(ev.kind);
            ++counts[k];
            values[k].add(ev.value);
            if (ev.kind == EventKind::RecomputeEnd)
                recomputes.push_back({ev.value, ev.when, &tf.path});
        }
    }

    out << traces.size() << " trace file(s), " << total
        << " event(s)\n\n";
    out << "  kind                    count     v_mean      v_max\n";
    for (int k = 0; k < kNumEventKinds; ++k) {
        if (counts[k] == 0)
            continue;
        char line[128];
        std::snprintf(line, sizeof(line),
                      "  %-20s %8llu %10.4g %10.4g\n",
                      eventKindName(static_cast<EventKind>(k)),
                      static_cast<unsigned long long>(counts[k]),
                      values[k].mean(), values[k].max());
        out << line;
    }

    // Per-kind value distribution for the measurement-carrying kinds.
    for (int k = 0; k < kNumEventKinds; ++k) {
        const Summary &s = values[k];
        if (counts[k] < 8 || s.min() == s.max())
            continue;
        // Buckets cover [lo, hi): nudge hi up so max-valued samples
        // land in the last bucket instead of the overflow bin.
        Histogram h(s.min(),
                    std::nextafter(s.max(),
                                   std::numeric_limits<double>::max()),
                    8);
        for (double v : s.samples())
            h.add(v);
        out << "\n  " << eventKindName(static_cast<EventKind>(k))
            << " value distribution (p50="
            << formatJsonDouble(s.median())
            << ", p95=" << formatJsonDouble(s.percentile(95))
            << "):\n";
        std::istringstream bars(h.str(30));
        std::string barLine;
        while (std::getline(bars, barLine))
            out << "    " << barLine << "\n";
    }

    if (!recomputes.empty()) {
        std::stable_sort(recomputes.begin(), recomputes.end(),
                         [](const Cost &x, const Cost &y) {
                             return x.ops > y.ops;
                         });
        out << "\n  costliest fabric recomputes (filling ops):\n";
        const std::size_t n =
            std::min<std::size_t>(5, recomputes.size());
        for (std::size_t i = 0; i < n; ++i) {
            out << "    t=" << formatTime(recomputes[i].when)
                << "s ops=" << formatJsonDouble(recomputes[i].ops)
                << "  (" << fileTag(*recomputes[i].path) << ")\n";
        }
    }
}

void
printTimeline(const std::vector<TraceFile> &traces, std::ostream &out)
{
    // K-way stable merge by (simulated time, file order): events
    // inside one trace are already in emission order.
    std::vector<std::size_t> cursor(traces.size(), 0);
    const bool tagged = traces.size() > 1;
    for (;;) {
        std::size_t best = traces.size();
        for (std::size_t f = 0; f < traces.size(); ++f) {
            if (cursor[f] >= traces[f].events.size())
                continue;
            if (best == traces.size() ||
                traces[f].events[cursor[f]].when <
                    traces[best].events[cursor[best]].when) {
                best = f;
            }
        }
        if (best == traces.size())
            break;
        const Event &ev = traces[best].events[cursor[best]++];
        out << "t=" << formatTime(ev.when) << "s  ";
        if (tagged)
            out << "[" << fileTag(traces[best].path) << "] ";
        describeEvent(ev, out);
        out << "\n";
    }
}

int
diffTraces(const std::string &pathA, const std::string &pathB,
           std::ostream &out, int context)
{
    const std::vector<std::string> a = splitLines(readFile(pathA));
    const std::vector<std::string> b = splitLines(readFile(pathB));
    const std::size_t n = std::min(a.size(), b.size());
    std::size_t div = n;
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i]) {
            div = i;
            break;
        }
    }
    if (div == n && a.size() == b.size()) {
        out << "identical: " << a.size() << " event line(s)\n";
        return 0;
    }

    out << "traces diverge at line " << div + 1 << "\n";
    const std::size_t from =
        div > static_cast<std::size_t>(context)
            ? div - static_cast<std::size_t>(context)
            : 0;
    for (std::size_t i = from; i < div; ++i)
        out << "  " << i + 1 << "   " << a[i] << "\n";
    if (div < a.size())
        out << "< " << div + 1 << "   " << a[div] << "\n";
    else
        out << "< " << div + 1 << "   <end of " << pathA << ">\n";
    if (div < b.size())
        out << "> " << div + 1 << "   " << b[div] << "\n";
    else
        out << "> " << div + 1 << "   <end of " << pathB << ">\n";
    return 1;
}

} // namespace c4::trace
