/**
 * @file
 * Trace serialization: JSONL (the canonical on-disk form, one compact
 * JSON object per event line) and the Chrome `trace_event` format
 * (load into chrome://tracing or Perfetto).
 *
 * JSONL is byte-deterministic: fixed key order, default-valued fields
 * omitted, timestamps as exact integer nanoseconds, doubles in
 * shortest round-trip form. writeJsonl(parseJsonl(text)) == text for
 * any text writeJsonl produced — the property `c4trace diff` and the
 * 1-vs-N-thread byte-equality gate rely on.
 */

#ifndef C4_TRACE_EXPORT_H
#define C4_TRACE_EXPORT_H

#include <string>
#include <vector>

#include "common/json.h"
#include "trace/trace.h"

namespace c4::trace {

/** One event as a compact one-line JSON object (no newline). */
std::string eventToJsonLine(const Event &event);

/**
 * Bind one parsed JSONL record back to an Event. Unknown keys and
 * mistyped values are errors (schema drift must not pass silently).
 * @throws SpecError
 */
Event eventFromJson(const Json &value);

/** All events, one line each, newline-terminated. */
std::string writeJsonl(const std::vector<Event> &events);

/**
 * Parse a JSONL document produced by writeJsonl.
 *
 * Strict by design (the incident corpus depends on it): malformed
 * records, unknown kinds/keys, and truncated input all throw — a
 * final record without its terminating newline is rejected as a
 * truncated write even when the visible prefix parses, because
 * writeJsonl always newline-terminates and a mid-line EOF may have
 * silently dropped trailing fields of the record.
 * @throws SpecError with the 1-based line number of the bad record.
 */
std::vector<Event> parseJsonl(const std::string &text);

/**
 * One track of a Chrome trace: the events of one (variant, trial),
 * rendered as process @p pid / thread @p tid with human-readable
 * metadata names.
 */
struct ChromeTrack
{
    std::string processName; ///< e.g. the variant label
    std::string threadName;  ///< e.g. "trial 3"
    int pid = 0;
    int tid = 0;
    const std::vector<Event> *events = nullptr;
};

/**
 * Render tracks as one Chrome trace_event JSON document. Recompute
 * begin/end pairs become duration (B/E) slices named "recompute";
 * everything else is an instant event. Timestamps are microseconds
 * (the format's unit), derived exactly from the nanosecond values.
 */
std::string writeChromeTrace(const std::vector<ChromeTrack> &tracks);

/**
 * Make a scenario/variant label safe as a file-name component:
 * characters outside [A-Za-z0-9._-] become '_'. Callers must still
 * namespace by index when two labels could collide after mapping.
 */
std::string sanitizeFileComponent(const std::string &label);

} // namespace c4::trace

#endif // C4_TRACE_EXPORT_H
