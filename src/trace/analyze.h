/**
 * @file
 * Trace analysis: the logic behind the `c4trace` tool.
 *
 *  - summary:  per-kind counts and value statistics (over
 *              common/stats), plus the costliest fabric recomputes —
 *              the Fig. 3 profiling substrate.
 *  - timeline: a human-readable log; multiple trial traces are
 *              interleaved by simulated time.
 *  - diff:     byte-level comparison of two trial traces, reporting
 *              the first divergence with context — the determinism
 *              debugging tool (a nondeterministic change shows up as
 *              a first-divergent-line long before it shows in a CSV).
 *
 * Everything here works on JSONL trace files as written by the
 * scenario runner's `--trace` output (trace/export.h).
 */

#ifndef C4_TRACE_ANALYZE_H
#define C4_TRACE_ANALYZE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace c4::trace {

/** One loaded trial trace. */
struct TraceFile
{
    std::string path;
    std::vector<Event> events;
};

/**
 * Expand @p path: a .jsonl file stands alone; a directory yields every
 * *.jsonl under it (recursively), sorted by path for determinism.
 * @throws std::runtime_error when the path does not exist or yields
 *         no trace files.
 */
std::vector<std::string> collectTraceFiles(const std::string &path);

/** Read and parse one JSONL trace. @throws on I/O or parse failure. */
TraceFile loadTraceFile(const std::string &path);

/** Per-kind counts, value stats/histograms, top recompute costs. */
void printSummary(const std::vector<TraceFile> &traces,
                  std::ostream &out);

/** Interleave all traces by simulated time into a readable log. */
void printTimeline(const std::vector<TraceFile> &traces,
                   std::ostream &out);

/**
 * Byte-compare two JSONL traces line by line; on divergence print the
 * first differing line of each with @p context preceding lines.
 * @return 0 identical, 1 divergent.
 */
int diffTraces(const std::string &pathA, const std::string &pathB,
               std::ostream &out, int context = 3);

} // namespace c4::trace

#endif // C4_TRACE_ANALYZE_H
