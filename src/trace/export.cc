#include "trace/export.h"

namespace c4::trace {

namespace {

Json
makeInt(std::int64_t v)
{
    Json j;
    j.kind = Json::Kind::Int;
    j.integer = v;
    return j;
}

Json
makeDouble(double v)
{
    Json j;
    j.kind = Json::Kind::Double;
    j.number = v;
    return j;
}

Json
makeString(std::string s)
{
    Json j;
    j.kind = Json::Kind::String;
    j.string = std::move(s);
    return j;
}

void
addMember(Json &obj, const char *key, Json value)
{
    Json::Member m;
    m.key = key;
    m.value = std::move(value);
    obj.object.push_back(std::move(m));
}

[[noreturn]] void
bindFail(const Json &at, const std::string &what)
{
    throw SpecError(what, at.line, at.column);
}

std::int64_t
bindInt(const Json &v, const char *key)
{
    if (v.kind != Json::Kind::Int)
        bindFail(v, std::string("\"") + key + "\" must be an integer");
    return v.integer;
}

} // namespace

std::string
eventToJsonLine(const Event &event)
{
    Json obj;
    obj.kind = Json::Kind::Object;
    addMember(obj, "t", makeInt(event.when));
    addMember(obj, "k", makeString(eventKindName(event.kind)));
    if (event.job != kInvalidId)
        addMember(obj, "job", makeInt(event.job));
    if (event.node != kInvalidId)
        addMember(obj, "node", makeInt(event.node));
    if (event.a != 0)
        addMember(obj, "a", makeInt(event.a));
    if (event.b != 0)
        addMember(obj, "b", makeInt(event.b));
    if (event.value != 0.0)
        addMember(obj, "v", makeDouble(event.value));
    if (!event.detail.empty())
        addMember(obj, "d", makeString(event.detail));
    return writeJsonCompact(obj);
}

Event
eventFromJson(const Json &value)
{
    if (value.kind != Json::Kind::Object)
        bindFail(value, "trace record must be a JSON object");
    Event ev;
    bool haveWhen = false, haveKind = false;
    for (const Json::Member &m : value.object) {
        const Json &v = m.value;
        if (m.key == "t") {
            ev.when = bindInt(v, "t");
            haveWhen = true;
        } else if (m.key == "k") {
            if (v.kind != Json::Kind::String ||
                !eventKindFromName(v.string, ev.kind)) {
                bindFail(v, "\"k\" must name a known event kind");
            }
            haveKind = true;
        } else if (m.key == "job") {
            ev.job = static_cast<JobId>(bindInt(v, "job"));
        } else if (m.key == "node") {
            ev.node = static_cast<NodeId>(bindInt(v, "node"));
        } else if (m.key == "a") {
            ev.a = bindInt(v, "a");
        } else if (m.key == "b") {
            ev.b = bindInt(v, "b");
        } else if (m.key == "v") {
            if (v.kind == Json::Kind::Int)
                ev.value = static_cast<double>(v.integer);
            else if (v.kind == Json::Kind::Double)
                ev.value = v.number;
            else
                bindFail(v, "\"v\" must be a number");
        } else if (m.key == "d") {
            if (v.kind != Json::Kind::String)
                bindFail(v, "\"d\" must be a string");
            ev.detail = v.string;
        } else {
            throw SpecError("unknown trace record key \"" + m.key +
                                "\"",
                            m.keyLine, m.keyColumn);
        }
    }
    if (!haveWhen || !haveKind)
        bindFail(value, "trace record needs \"t\" and \"k\"");
    return ev;
}

std::string
writeJsonl(const std::vector<Event> &events)
{
    std::string out;
    for (const Event &ev : events) {
        out += eventToJsonLine(ev);
        out.push_back('\n');
    }
    return out;
}

std::vector<Event>
parseJsonl(const std::string &text)
{
    std::vector<Event> out;
    std::size_t start = 0;
    int lineNo = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        const std::size_t end = nl == std::string::npos ? text.size()
                                                        : nl;
        ++lineNo;
        const std::string line = text.substr(start, end - start);
        // A record without its terminating newline is a truncated
        // write (writeJsonl always newline-terminates): even when the
        // visible prefix happens to parse, trailing fields of the
        // record may be missing, so reject instead of silently
        // keeping a plausible-looking half event.
        if (nl == std::string::npos && !line.empty()) {
            throw SpecError("record on line " + std::to_string(lineNo) +
                                ": truncated record (missing final "
                                "newline; incomplete write?)",
                            0, 0);
        }
        if (!line.empty()) {
            try {
                out.push_back(eventFromJson(parseJson(line)));
            } catch (const SpecError &e) {
                throw SpecError("record on line " +
                                    std::to_string(lineNo) + ": " +
                                    e.what(),
                                0, 0);
            }
        }
        if (nl == std::string::npos)
            break;
        start = nl + 1;
    }
    return out;
}

std::string
writeChromeTrace(const std::vector<ChromeTrack> &tracks)
{
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    auto push = [&](const Json &obj) {
        if (!first)
            out += ",\n";
        first = false;
        out += writeJsonCompact(obj);
    };

    for (const ChromeTrack &track : tracks) {
        Json pname;
        pname.kind = Json::Kind::Object;
        addMember(pname, "name", makeString("process_name"));
        addMember(pname, "ph", makeString("M"));
        addMember(pname, "pid", makeInt(track.pid));
        Json pargs;
        pargs.kind = Json::Kind::Object;
        addMember(pargs, "name", makeString(track.processName));
        addMember(pname, "args", std::move(pargs));
        push(pname);

        Json tname;
        tname.kind = Json::Kind::Object;
        addMember(tname, "name", makeString("thread_name"));
        addMember(tname, "ph", makeString("M"));
        addMember(tname, "pid", makeInt(track.pid));
        addMember(tname, "tid", makeInt(track.tid));
        Json targs;
        targs.kind = Json::Kind::Object;
        addMember(targs, "name", makeString(track.threadName));
        addMember(tname, "args", std::move(targs));
        push(tname);

        if (track.events == nullptr)
            continue;
        // Recompute begin/end render as a B/E slice pair only when
        // the track holds both kinds; a filter that kept one side
        // would otherwise emit unbalanced duration events, which
        // Chrome/Perfetto discard as malformed.
        bool hasBegin = false, hasEnd = false;
        for (const Event &ev : *track.events) {
            hasBegin |= ev.kind == EventKind::RecomputeBegin;
            hasEnd |= ev.kind == EventKind::RecomputeEnd;
        }
        const bool paired = hasBegin && hasEnd;
        for (const Event &ev : *track.events) {
            Json obj;
            obj.kind = Json::Kind::Object;
            const bool begin =
                paired && ev.kind == EventKind::RecomputeBegin;
            const bool end =
                paired && ev.kind == EventKind::RecomputeEnd;
            addMember(obj, "name",
                      makeString(begin || end
                                     ? "recompute"
                                     : eventKindName(ev.kind)));
            addMember(obj, "ph",
                      makeString(begin ? "B" : end ? "E" : "i"));
            if (!begin && !end)
                addMember(obj, "s", makeString("t"));
            // trace_event timestamps are microseconds; keep them
            // exact (ns/1000 may not be integral).
            addMember(obj, "ts",
                      makeDouble(static_cast<double>(ev.when) /
                                 1000.0));
            addMember(obj, "pid", makeInt(track.pid));
            addMember(obj, "tid", makeInt(track.tid));
            Json args;
            args.kind = Json::Kind::Object;
            if (ev.job != kInvalidId)
                addMember(args, "job", makeInt(ev.job));
            if (ev.node != kInvalidId)
                addMember(args, "node", makeInt(ev.node));
            if (ev.a != 0)
                addMember(args, "a", makeInt(ev.a));
            if (ev.b != 0)
                addMember(args, "b", makeInt(ev.b));
            if (ev.value != 0.0)
                addMember(args, "v", makeDouble(ev.value));
            if (!ev.detail.empty())
                addMember(args, "d", makeString(ev.detail));
            if (!args.object.empty())
                addMember(obj, "args", std::move(args));
            push(obj);
        }
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

std::string
sanitizeFileComponent(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    // "." and ".." are path traversal, not names: a spec file can put
    // anything in its scenario name, and `--trace DIR` must never
    // write outside DIR.
    if (out.empty() || out == "." || out == "..")
        return std::string(out.empty() ? 1 : out.size(), '_');
    return out;
}

} // namespace c4::trace
