#include "c4d/analyzer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <sstream>

namespace c4::c4d {

DelayMatrix::DelayMatrix(int nranks)
    : n_(nranks),
      sumDelay_(static_cast<std::size_t>(nranks) * nranks, 0.0),
      count_(static_cast<std::size_t>(nranks) * nranks, 0)
{
    assert(nranks >= 1);
}

void
DelayMatrix::add(Rank src, Rank dst, Bytes bytes, Duration duration)
{
    assert(src >= 0 && src < n_ && dst >= 0 && dst < n_);
    if (bytes <= 0 || duration <= 0)
        return;
    sumDelay_[idx(src, dst)] +=
        toSeconds(duration) / static_cast<double>(bytes);
    ++count_[idx(src, dst)];
}

DelayMatrix
DelayMatrix::build(int nranks,
                   const std::vector<accl::ConnRecord> &records)
{
    DelayMatrix m(nranks);
    for (const auto &r : records) {
        if (r.srcRank >= 0 && r.srcRank < nranks && r.dstRank >= 0 &&
            r.dstRank < nranks) {
            m.add(r.srcRank, r.dstRank, r.bytes, r.duration());
        }
    }
    return m;
}

double
DelayMatrix::at(Rank src, Rank dst) const
{
    const std::size_t i = idx(src, dst);
    return count_[i] > 0 ? sumDelay_[i] / count_[i] : -1.0;
}

int
DelayMatrix::samples(Rank src, Rank dst) const
{
    return count_[idx(src, dst)];
}

double
DelayMatrix::medianDelay() const
{
    std::vector<double> cells;
    for (Rank s = 0; s < n_; ++s) {
        for (Rank d = 0; d < n_; ++d) {
            const double v = at(s, d);
            if (v >= 0.0)
                cells.push_back(v);
        }
    }
    if (cells.empty())
        return -1.0;
    std::sort(cells.begin(), cells.end());
    return cells[cells.size() / 2];
}

std::string
DelayMatrix::str() const
{
    std::ostringstream os;
    char buf[32];
    for (Rank s = 0; s < n_; ++s) {
        for (Rank d = 0; d < n_; ++d) {
            const double v = at(s, d);
            if (v < 0.0)
                os << "      .  ";
            else {
                std::snprintf(buf, sizeof(buf), "%8.2e ", v);
                os << buf;
            }
        }
        os << '\n';
    }
    return os.str();
}

const char *
commSlowKindName(CommSlowKind kind)
{
    switch (kind) {
      case CommSlowKind::None:       return "none";
      case CommSlowKind::Connection: return "connection-slow";
      case CommSlowKind::SourceTx:   return "source-tx-slow";
      case CommSlowKind::DestRx:     return "dest-rx-slow";
    }
    return "?";
}

std::string
CommSlowFinding::str() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s src=%d dst=%d ratio=%.2f",
                  commSlowKindName(kind), src, dst, ratio);
    return buf;
}

CommSlowFinding
analyzeCommSlow(const DelayMatrix &matrix, const AnalyzerConfig &cfg)
{
    CommSlowFinding finding;
    const double median = matrix.medianDelay();
    if (median <= 0.0)
        return finding;
    const int n = matrix.size();
    const double cutoff = median * cfg.slowRatio;

    // Collect outlier cells.
    struct Cell
    {
        Rank src, dst;
        double ratio;
    };
    std::vector<Cell> outliers;
    std::vector<int> row_present(static_cast<std::size_t>(n), 0);
    std::vector<int> row_out(static_cast<std::size_t>(n), 0);
    std::vector<int> col_present(static_cast<std::size_t>(n), 0);
    std::vector<int> col_out(static_cast<std::size_t>(n), 0);

    for (Rank s = 0; s < n; ++s) {
        for (Rank d = 0; d < n; ++d) {
            if (matrix.samples(s, d) < cfg.minSamplesPerCell)
                continue;
            const double v = matrix.at(s, d);
            ++row_present[static_cast<std::size_t>(s)];
            ++col_present[static_cast<std::size_t>(d)];
            if (v > cutoff) {
                outliers.push_back({s, d, v / median});
                ++row_out[static_cast<std::size_t>(s)];
                ++col_out[static_cast<std::size_t>(d)];
            }
        }
    }
    if (outliers.empty())
        return finding;

    // A mostly-outlying row blames the source; a column the destination.
    for (Rank s = 0; s < n; ++s) {
        const auto si = static_cast<std::size_t>(s);
        if (row_present[si] >= 2 &&
            static_cast<double>(row_out[si]) >=
                cfg.rowColumnFraction * row_present[si]) {
            finding.kind = CommSlowKind::SourceTx;
            finding.src = s;
            double worst = 0.0;
            for (const auto &c : outliers) {
                if (c.src == s)
                    worst = std::max(worst, c.ratio);
            }
            finding.ratio = worst;
            return finding;
        }
    }
    for (Rank d = 0; d < n; ++d) {
        const auto di = static_cast<std::size_t>(d);
        if (col_present[di] >= 2 &&
            static_cast<double>(col_out[di]) >=
                cfg.rowColumnFraction * col_present[di]) {
            finding.kind = CommSlowKind::DestRx;
            finding.dst = d;
            double worst = 0.0;
            for (const auto &c : outliers) {
                if (c.dst == d)
                    worst = std::max(worst, c.ratio);
            }
            finding.ratio = worst;
            return finding;
        }
    }

    const auto worst = std::max_element(
        outliers.begin(), outliers.end(),
        [](const Cell &a, const Cell &b) { return a.ratio < b.ratio; });
    finding.kind = CommSlowKind::Connection;
    finding.src = worst->src;
    finding.dst = worst->dst;
    finding.ratio = worst->ratio;
    return finding;
}

std::string
NonCommSlowFinding::str() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "straggler rank=%d medianWait=%s stragglerWait=%s",
                  rank, formatDuration(medianWait).c_str(),
                  formatDuration(stragglerWait).c_str());
    return buf;
}

NonCommSlowFinding
analyzeNonCommSlow(int nranks,
                   const std::vector<accl::RankWaitRecord> &waits,
                   const AnalyzerConfig &cfg)
{
    NonCommSlowFinding finding;
    if (nranks < 2 || waits.empty())
        return finding;

    std::vector<double> sum(static_cast<std::size_t>(nranks), 0.0);
    std::vector<int> count(static_cast<std::size_t>(nranks), 0);
    // Per-operation minimum-wait rank, for the consistency test.
    std::map<accl::CollSeq, std::pair<Rank, Duration>> op_min;
    for (const auto &w : waits) {
        if (w.rank >= 0 && w.rank < nranks) {
            sum[static_cast<std::size_t>(w.rank)] +=
                static_cast<double>(w.recvWait);
            ++count[static_cast<std::size_t>(w.rank)];
            auto it = op_min.find(w.seq);
            if (it == op_min.end() || w.recvWait < it->second.second)
                op_min[w.seq] = {w.rank, w.recvWait};
        }
    }

    std::vector<double> means;
    for (int r = 0; r < nranks; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        if (count[ri] == 0)
            return finding; // need full coverage to judge
        means.push_back(sum[ri] / count[ri]);
    }

    std::vector<double> sorted = means;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    if (median < static_cast<double>(cfg.minWaitForSlow))
        return finding; // waits are just noise

    const auto min_it = std::min_element(means.begin(), means.end());
    const double straggler_wait = *min_it;
    if (straggler_wait * cfg.waitRatio > median)
        return finding; // no rank stands out

    // Consistency: a real straggler is the per-op minimum nearly every
    // time; rotating load skew moves the minimum around the group.
    const auto candidate =
        static_cast<Rank>(std::distance(means.begin(), min_it));
    if (!op_min.empty()) {
        int hits = 0;
        for (const auto &[seq, entry] : op_min)
            hits += entry.first == candidate ? 1 : 0;
        const double consistency =
            static_cast<double>(hits) /
            static_cast<double>(op_min.size());
        if (consistency < cfg.stragglerConsistency)
            return finding; // transient imbalance, not a straggler
    }

    finding.found = true;
    finding.rank = candidate;
    finding.medianWait = static_cast<Duration>(median);
    finding.stragglerWait = static_cast<Duration>(straggler_wait);
    return finding;
}

const char *
hangKindName(HangKind kind)
{
    switch (kind) {
      case HangKind::None:        return "none";
      case HangKind::NonCommHang: return "non-comm-hang";
      case HangKind::CommHang:    return "comm-hang";
    }
    return "?";
}

HangFinding
analyzeHang(const accl::OpProgress &op,
            const std::vector<Time> &lastHeartbeat, Time now,
            Duration threshold)
{
    HangFinding finding;
    finding.seq = op.seq;
    if (!op.posted() || op.finished())
        return finding;

    if (!op.started()) {
        // Someone never showed up at the synchronization point.
        if (now - op.postTime < threshold)
            return finding;
        finding.kind = HangKind::NonCommHang;
    } else {
        // Started: judge by progress silence across the group.
        Time newest = 0;
        for (Time t : lastHeartbeat) {
            if (t != kTimeNever)
                newest = std::max(newest, t);
        }
        if (now - std::max(newest, op.startTime) < threshold)
            return finding;
        finding.kind = HangKind::CommHang;
    }

    // Suspects: the ranks with the stalest progress (never beats any
    // timestamp; ties within a small epsilon are all suspects).
    Time oldest = kTimeNever;
    bool has_never = false;
    for (Time t : lastHeartbeat) {
        if (t == kTimeNever)
            has_never = true;
        else
            oldest = std::min(oldest == kTimeNever ? t : oldest, t);
    }
    const Duration eps = microseconds(1);
    for (std::size_t r = 0; r < lastHeartbeat.size(); ++r) {
        const Time t = lastHeartbeat[r];
        if (has_never ? t == kTimeNever
                      : (oldest != kTimeNever && t <= oldest + eps)) {
            finding.suspects.push_back(static_cast<Rank>(r));
        }
    }
    return finding;
}

} // namespace c4::c4d
