#include "c4d/metrics_sink.h"

namespace c4::c4d {

void
MetricsTelemetrySink::onFault(const FaultRecord &)
{
    registry_.addCounter("c4d.faults_observed");
}

void
MetricsTelemetrySink::onLinkEvent(const LinkEventRecord &rec)
{
    registry_.addCounter(rec.up ? "c4d.link_up_events"
                                : "c4d.link_down_events");
}

void
MetricsTelemetrySink::onCnpSample(const CnpRecord &rec)
{
    registry_.setGauge("c4d.cnp_mean_kps", rec.meanKps);
    registry_.setGauge("c4d.cnp_hot_nics",
                       static_cast<double>(rec.hotNics));
    registry_.observe("c4d.cnp_kps", rec.meanKps);
}

void
MetricsTelemetrySink::onSteering(const SteeringRecord &rec)
{
    registry_.addCounter("c4d.restarts");
    if (rec.viaC4d)
        registry_.addCounter("c4d.restarts_via_c4d");
    // Detection latency: C4D event (or watchdog kill) to restart.
    registry_.setGauge("c4d.recovery_latency_s",
                       rec.recoveryLatencySeconds);
    registry_.observe("c4d.recovery_latency_window_s",
                      rec.recoveryLatencySeconds);
}

} // namespace c4::c4d
