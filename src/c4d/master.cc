#include "c4d/master.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.h"

namespace c4::c4d {

const char *
c4dEventKindName(C4dEventKind kind)
{
    switch (kind) {
      case C4dEventKind::CommHang:    return "comm-hang";
      case C4dEventKind::NonCommHang: return "non-comm-hang";
      case C4dEventKind::CommSlow:    return "comm-slow";
      case C4dEventKind::NonCommSlow: return "non-comm-slow";
    }
    return "?";
}

bool
c4dEventIsFatal(C4dEventKind kind)
{
    return kind == C4dEventKind::CommHang ||
           kind == C4dEventKind::NonCommHang;
}

std::string
C4dEvent::str() const
{
    std::ostringstream os;
    os << c4dEventKindName(kind) << " job=" << job << " comm=" << comm
       << " nodes=[";
    for (std::size_t i = 0; i < suspectNodes.size(); ++i)
        os << (i ? "," : "") << suspectNodes[i];
    os << "] " << detail;
    return os.str();
}

C4dMaster::C4dMaster(Simulator &sim, C4dConfig cfg)
    : sim_(sim), cfg_(cfg),
      ticker_(sim, cfg.evaluatePeriod, [this] { evaluate(); })
{
}

void
C4dMaster::registerComm(const accl::CommRecord &rec)
{
    CommHealth health;
    health.job = rec.job;
    health.nranks = rec.nranks;
    health.rankNodes = rec.rankNodes;
    health.heartbeats.assign(static_cast<std::size_t>(rec.nranks),
                             kTimeNever);
    comms_[rec.comm] = std::move(health);
}

void
C4dMaster::deregisterComm(CommId comm)
{
    comms_.erase(comm);
}

void
C4dMaster::ingest(const std::vector<accl::ConnRecord> &records)
{
    for (const auto &r : records) {
        auto it = comms_.find(r.comm);
        if (it == comms_.end())
            continue;
        auto &q = it->second.conns;
        if (q.size() >= cfg_.connWindow)
            q.pop_front();
        q.push_back(r);
    }
}

void
C4dMaster::ingest(const std::vector<accl::RankWaitRecord> &records)
{
    for (const auto &r : records) {
        auto it = comms_.find(r.comm);
        if (it == comms_.end())
            continue;
        auto &q = it->second.waits;
        if (q.size() >= cfg_.waitWindow)
            q.pop_front();
        q.push_back(r);
    }
}

void
C4dMaster::updateProgress(CommId comm, const accl::OpProgress &op,
                          std::vector<Time> heartbeats)
{
    auto it = comms_.find(comm);
    if (it == comms_.end())
        return;
    it->second.progress = op;
    it->second.heartbeats = std::move(heartbeats);
}

void
C4dMaster::start()
{
    ticker_.start();
}

void
C4dMaster::stop()
{
    ticker_.stop();
}

void
C4dMaster::evaluate()
{
    ++evaluations_;
    for (auto &[comm, health] : comms_)
        evaluateComm(comm, health);
}

std::vector<NodeId>
C4dMaster::nodesOf(const CommHealth &health,
                   const std::vector<Rank> &ranks) const
{
    std::vector<NodeId> nodes;
    for (Rank r : ranks) {
        if (r >= 0 &&
            static_cast<std::size_t>(r) < health.rankNodes.size()) {
            const NodeId n = health.rankNodes[static_cast<std::size_t>(r)];
            if (std::find(nodes.begin(), nodes.end(), n) == nodes.end())
                nodes.push_back(n);
        }
    }
    return nodes;
}

bool
C4dMaster::cooldownOk(CommHealth &health, C4dEventKind kind)
{
    auto it = health.lastFinding.find(static_cast<int>(kind));
    if (it != health.lastFinding.end() &&
        sim_.now() - it->second < cfg_.findingCooldown) {
        return false;
    }
    health.lastFinding[static_cast<int>(kind)] = sim_.now();
    return true;
}

void
C4dMaster::emit(C4dEvent event, CommHealth &health)
{
    event.when = sim_.now();
    if (c4dEventIsFatal(event.kind))
        health.flaggedFatal = true;
    ++emitted_;
    logInfo("c4d", "event: %s", event.str().c_str());
    eventLog_.push_back(event);
    for (const auto &cb : callbacks_)
        cb(event);
}

void
C4dMaster::evaluateComm(CommId comm, CommHealth &health)
{
    if (health.flaggedFatal)
        return; // already escalated; steering will tear this job down

    // 1. Hang detection (fatal).
    const HangFinding hang = analyzeHang(
        health.progress, health.heartbeats, sim_.now(),
        cfg_.hangThreshold);
    if (hang.found()) {
        C4dEvent ev;
        ev.kind = hang.kind == HangKind::NonCommHang
                      ? C4dEventKind::NonCommHang
                      : C4dEventKind::CommHang;
        ev.job = health.job;
        ev.comm = comm;
        ev.suspectRanks = hang.suspects;
        ev.suspectNodes = nodesOf(health, hang.suspects);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "seq=%llu",
                      static_cast<unsigned long long>(hang.seq));
        ev.detail = buf;
        emit(std::move(ev), health);
        return;
    }

    // 2. Communication slow (delay-matrix localization, Fig. 7).
    if (!health.conns.empty()) {
        std::vector<accl::ConnRecord> window(health.conns.begin(),
                                             health.conns.end());
        const DelayMatrix matrix =
            DelayMatrix::build(health.nranks, window);
        const CommSlowFinding slow =
            analyzeCommSlow(matrix, cfg_.analyzer);
        if (slow.found() && cooldownOk(health, C4dEventKind::CommSlow)) {
            C4dEvent ev;
            ev.kind = C4dEventKind::CommSlow;
            ev.job = health.job;
            ev.comm = comm;
            switch (slow.kind) {
              case CommSlowKind::SourceTx:
                ev.suspectRanks = {slow.src};
                break;
              case CommSlowKind::DestRx:
                ev.suspectRanks = {slow.dst};
                break;
              default:
                ev.suspectRanks = {slow.src, slow.dst};
            }
            ev.suspectNodes = nodesOf(health, ev.suspectRanks);
            ev.detail = slow.str();
            emit(std::move(ev), health);
        }
    }

    // 3. Non-communication slow (receiver wait chain).
    if (!health.waits.empty()) {
        std::vector<accl::RankWaitRecord> window(health.waits.begin(),
                                                 health.waits.end());
        const NonCommSlowFinding straggler =
            analyzeNonCommSlow(health.nranks, window, cfg_.analyzer);
        if (straggler.found &&
            cooldownOk(health, C4dEventKind::NonCommSlow)) {
            C4dEvent ev;
            ev.kind = C4dEventKind::NonCommSlow;
            ev.job = health.job;
            ev.comm = comm;
            ev.suspectRanks = {straggler.rank};
            ev.suspectNodes = nodesOf(health, ev.suspectRanks);
            ev.detail = straggler.str();
            emit(std::move(ev), health);
        }
    }
}

} // namespace c4::c4d
