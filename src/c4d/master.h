/**
 * @file
 * The C4D master: aggregates telemetry forwarded by C4 agents, evaluates
 * the health of every live communicator on a fixed cadence, and emits
 * classified events (hang / slow, communication / non-communication)
 * with suspected culprit nodes — the input to the job steering service
 * (paper Fig. 4/5).
 */

#ifndef C4_C4D_MASTER_H
#define C4_C4D_MASTER_H

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "accl/monitor.h"
#include "c4d/analyzer.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace c4::c4d {

/** Master tunables. */
struct C4dConfig
{
    /** Health-evaluation cadence. */
    Duration evaluatePeriod = seconds(5);

    /** Progress silence that qualifies as a hang. */
    Duration hangThreshold = seconds(30);

    /** Slow-analysis thresholds. */
    AnalyzerConfig analyzer;

    /** Suppress duplicate findings per (comm, kind) for this long. */
    Duration findingCooldown = minutes(2);

    /** Telemetry window sizes per communicator. */
    std::size_t connWindow = 8192;
    std::size_t waitWindow = 2048;
};

/** Kinds of events the master emits. */
enum class C4dEventKind {
    CommHang,
    NonCommHang,
    CommSlow,
    NonCommSlow,
};

const char *c4dEventKindName(C4dEventKind kind);

/** True for events that require isolation + restart (fatal). */
bool c4dEventIsFatal(C4dEventKind kind);

/** A classified anomaly with localization. */
struct C4dEvent
{
    Time when = 0;
    C4dEventKind kind = C4dEventKind::CommHang;
    JobId job = kInvalidId;
    CommId comm = kInvalidId;
    std::vector<Rank> suspectRanks;
    std::vector<NodeId> suspectNodes;
    std::string detail;

    std::string str() const;
};

using C4dEventCallback = std::function<void(const C4dEvent &)>;

class C4dMaster
{
  public:
    explicit C4dMaster(Simulator &sim, C4dConfig cfg = {});

    C4dMaster(const C4dMaster &) = delete;
    C4dMaster &operator=(const C4dMaster &) = delete;

    /** Subscribe to emitted events (steering service, loggers). */
    void onEvent(C4dEventCallback cb) { callbacks_.push_back(std::move(cb)); }

    /** @name Agent-facing ingestion @{ */
    void registerComm(const accl::CommRecord &rec);
    void deregisterComm(CommId comm);
    void ingest(const std::vector<accl::ConnRecord> &records);
    void ingest(const std::vector<accl::RankWaitRecord> &records);

    /** Latest operation progress + per-rank heartbeats for a comm. */
    void updateProgress(CommId comm, const accl::OpProgress &op,
                        std::vector<Time> heartbeats);
    /** @} */

    /** Begin periodic evaluation. */
    void start();
    void stop();

    /** Run one evaluation pass immediately (also used by tests). */
    void evaluate();

    /** @name Introspection @{ */
    std::size_t liveComms() const { return comms_.size(); }
    std::uint64_t evaluations() const { return evaluations_; }
    std::uint64_t eventsEmitted() const { return emitted_; }
    const std::vector<C4dEvent> &eventLog() const { return eventLog_; }
    const C4dConfig &config() const { return cfg_; }
    /** @} */

  private:
    struct CommHealth
    {
        JobId job = kInvalidId;
        int nranks = 0;
        std::vector<NodeId> rankNodes;
        std::deque<accl::ConnRecord> conns;
        std::deque<accl::RankWaitRecord> waits;
        accl::OpProgress progress;
        std::vector<Time> heartbeats;
        bool flaggedFatal = false;
        std::unordered_map<int, Time> lastFinding; // kind -> time
    };

    Simulator &sim_;
    C4dConfig cfg_;
    std::vector<C4dEventCallback> callbacks_;
    std::unordered_map<CommId, CommHealth> comms_;
    PeriodicTask ticker_;
    std::uint64_t evaluations_ = 0;
    std::uint64_t emitted_ = 0;
    std::vector<C4dEvent> eventLog_;

    void evaluateComm(CommId comm, CommHealth &health);
    bool cooldownOk(CommHealth &health, C4dEventKind kind);
    void emit(C4dEvent event, CommHealth &health);
    std::vector<NodeId> nodesOf(const CommHealth &health,
                                const std::vector<Rank> &ranks) const;
};

} // namespace c4::c4d

#endif // C4_C4D_MASTER_H
