#include "c4d/downtime.h"

#include <cassert>

namespace c4::c4d {

using fault::FaultType;

const char *
causeGroupName(CauseGroup g)
{
    switch (g) {
      case CauseGroup::EccNvlink:  return "ECC/NVLink Error";
      case CauseGroup::Cuda:       return "CUDA Error";
      case CauseGroup::CclTimeout: return "CCL Timeout";
      case CauseGroup::AckTimeout: return "ACK Timeout";
      case CauseGroup::Unknown:    return "Unknown";
    }
    return "?";
}

CauseGroup
causeGroupOf(FaultType t)
{
    switch (t) {
      case FaultType::EccError:
      case FaultType::NvlinkError:
        return CauseGroup::EccNvlink;
      case FaultType::CudaError:
        return CauseGroup::Cuda;
      case FaultType::NcclTimeout:
        return CauseGroup::CclTimeout;
      case FaultType::AckTimeout:
        return CauseGroup::AckTimeout;
      default:
        return CauseGroup::Unknown;
    }
}

RecoveryPolicy
RecoveryPolicy::june2023()
{
    RecoveryPolicy p;
    p.name = "Jun 2023 (pre-C4D)";
    p.c4dEnabled = false;
    // Users checkpointed sparsely, "not anticipating high error rates".
    p.checkpointInterval = hours(4.5);
    p.checkpointCost = minutes(5);
    p.reinitTime = minutes(11);
    return p;
}

RecoveryPolicy
RecoveryPolicy::december2023()
{
    RecoveryPolicy p;
    p.name = "Dec 2023 (C4D deployed)";
    p.c4dEnabled = true;
    p.c4dDetection = seconds(20);
    p.c4dCoverage = 0.92;
    p.steeringDelay = minutes(2.5);
    // Frequent checkpointing on the fast in-memory checkpoint path
    // [Gemini-style]: the blocking cost per save is about a second.
    p.checkpointInterval = minutes(10);
    p.checkpointCost = seconds(1);
    // Re-init path streamlined alongside (paper: 0.6% -> 0.15% while
    // event count fell 3.33x, i.e. per-event cost slightly lower).
    p.reinitTime = minutes(9);
    // Offline root-cause tooling improved for the residual manual cases.
    p.manualScale = 0.55;
    return p;
}

DowntimeModel::DowntimeModel(RecoveryPolicy policy, fault::FaultRates rates,
                             int numGpus, Duration makespan,
                             std::uint64_t seed)
    : policy_(std::move(policy)), rates_(rates), numGpus_(numGpus),
      makespan_(makespan), rng_(seed)
{
    assert(numGpus_ > 0 && makespan_ > 0);
}

DowntimeBreakdown
DowntimeModel::runOnce()
{
    DowntimeBreakdown out;
    const double months =
        toSeconds(makespan_) / toSeconds(days(30));
    const double gpu_k = static_cast<double>(numGpus_) / 1000.0;
    const double span = static_cast<double>(makespan_);

    static constexpr FaultType fatal_types[] = {
        FaultType::CudaError,    FaultType::EccError,
        FaultType::NvlinkError,  FaultType::NcclTimeout,
        FaultType::AckTimeout,   FaultType::NetworkOther,
    };

    // Baseline overhead of writing checkpoints themselves (part of the
    // post-checkpoint row: the price of the protection).
    const double saves =
        span / static_cast<double>(policy_.checkpointInterval);
    out.postCheckpoint +=
        saves * static_cast<double>(policy_.checkpointCost) / span;

    for (FaultType type : fatal_types) {
        const double mean = rates_[type] * gpu_k * months;
        const std::int64_t count = rng_.poisson(mean);
        const CauseGroup group = causeGroupOf(type);
        out.eventsByCause[static_cast<int>(group)] +=
            static_cast<double>(count);

        for (std::int64_t i = 0; i < count; ++i) {
            const bool local =
                rng_.chance(fault::faultLocalityPrior(type));

            // --- post-checkpoint loss: work since the last save.
            const double lost =
                rng_.uniform() *
                static_cast<double>(policy_.checkpointInterval);
            out.postCheckpoint += lost / span;

            // --- detection.
            double detect;
            const bool caught = policy_.c4dEnabled && local &&
                                rng_.chance(policy_.c4dCoverage);
            if (caught) {
                detect = static_cast<double>(policy_.c4dDetection) *
                         rng_.uniform(0.7, 1.5);
            } else if (policy_.c4dEnabled) {
                // C4D missed it; the watchdog still fires, and a human
                // reacts with modern alerting.
                detect = static_cast<double>(policy_.watchdogTimeout) +
                         rng_.lognormal(
                             static_cast<double>(
                                 policy_.humanReactionMedian) * 0.5,
                             policy_.humanReactionSigma);
            } else {
                detect = static_cast<double>(policy_.watchdogTimeout) +
                         rng_.lognormal(
                             static_cast<double>(
                                 policy_.humanReactionMedian),
                             policy_.humanReactionSigma);
            }
            out.detection += detect / span;

            // --- diagnosis & isolation.
            double diag;
            if (caught) {
                diag = static_cast<double>(policy_.steeringDelay) *
                       rng_.uniform(0.7, 1.6);
            } else {
                diag = rng_.lognormal(
                    static_cast<double>(
                        policy_.manualDiagnosisMedian[
                            static_cast<int>(group)]) *
                        policy_.manualScale,
                    policy_.manualDiagnosisSigma);
            }
            out.diagnosisByCause[static_cast<int>(group)] += diag / span;

            // --- re-initialization.
            const double reinit =
                static_cast<double>(policy_.reinitTime) *
                rng_.uniform(0.8, 1.3);
            out.reinit += reinit / span;
        }
    }
    return out;
}

DowntimeBreakdown
DowntimeModel::run(int trials)
{
    assert(trials > 0);
    DowntimeBreakdown acc;
    for (int t = 0; t < trials; ++t) {
        const DowntimeBreakdown one = runOnce();
        acc.postCheckpoint += one.postCheckpoint;
        acc.detection += one.detection;
        acc.reinit += one.reinit;
        for (int g = 0; g < kNumCauseGroups; ++g) {
            acc.diagnosisByCause[g] += one.diagnosisByCause[g];
            acc.eventsByCause[g] += one.eventsByCause[g];
        }
    }
    const double inv = 1.0 / trials;
    acc.postCheckpoint *= inv;
    acc.detection *= inv;
    acc.reinit *= inv;
    for (int g = 0; g < kNumCauseGroups; ++g) {
        acc.diagnosisByCause[g] *= inv;
        acc.eventsByCause[g] *= inv;
    }
    return acc;
}

} // namespace c4::c4d
