/**
 * @file
 * The job steering service (paper Fig. 4): consumes C4D events, isolates
 * suspected nodes, swaps in warm backups (the paper provisions 64 backup
 * GPUs per 1024), and restarts the affected job from its last checkpoint.
 * Also provides the fallback path for jobs killed by the elastic-agent
 * watchdog when C4D missed the root cause (non-localized faults).
 */

#ifndef C4_C4D_STEERING_H
#define C4_C4D_STEERING_H

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "c4d/master.h"
#include "c4d/telemetry.h"
#include "common/random.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "train/job.h"

namespace c4::c4d {

/** Steering-service tunables. */
struct SteeringConfig
{
    /** Node isolation + rescheduling latency before the restart begins
     * ("additional minutes are still required by the steering service"). */
    Duration isolationDelay = minutes(2);

    /** Whether non-fatal slow findings also trigger isolation+restart
     * (the paper: non-critical failures "addressed using the same
     * strategy as critical errors"). */
    bool isolateOnSlow = true;

    /** Manual recovery time when a watchdog kill arrives with no C4D
     * localization: median of a heavy-tailed human diagnosis process. */
    Duration manualDiagnosisMedian = hours(4);
    double manualDiagnosisSigma = 0.8;
};

/** One completed recovery, for downtime accounting. */
struct RecoveryRecord
{
    Time eventTime = 0;    ///< detection (C4D event or watchdog kill)
    Time restartTime = 0;  ///< when the job began re-initializing
    JobId job = kInvalidId;
    bool viaC4d = false;   ///< false = manual/watchdog path
    std::vector<NodeId> isolated;

    Duration recoveryLatency() const { return restartTime - eventTime; }
};

class JobSteeringService
{
  public:
    /**
     * Oracle consulted during *manual* recovery (no C4D localization):
     * models the offline diagnosis eventually identifying the defective
     * nodes of a job (hardware burn-in tests, log trawling). Returns
     * the nodes to isolate.
     */
    using CulpritOracle = std::function<std::vector<NodeId>(JobId)>;

    JobSteeringService(Simulator &sim, SteeringConfig cfg = {},
                       std::uint64_t seed = 0x57EE57EEull);

    JobSteeringService(const JobSteeringService &) = delete;
    JobSteeringService &operator=(const JobSteeringService &) = delete;

    /**
     * Manage a job: its watchdog-kill callback is chained into the
     * manual recovery path. The job must outlive the service or be
     * unmanaged first.
     */
    void manageJob(train::TrainingJob &job);
    void unmanageJob(JobId id);

    /** Provision warm standby nodes. */
    void addBackupNodes(const std::vector<NodeId> &nodes);
    std::size_t backupsAvailable() const { return backups_.size(); }

    /** Entry point wired to C4dMaster::onEvent. */
    void handleEvent(const C4dEvent &event);

    /** Install the manual-diagnosis culprit oracle. */
    void setCulpritOracle(CulpritOracle oracle)
    {
        oracle_ = std::move(oracle);
    }

    /**
     * Attach a telemetry sink notified of every completed restart
     * (the same seam replay's trace adapter feeds, so metrics stay
     * decoupled from the detectors). Nullable; must outlive the
     * service or be detached first.
     */
    void setTelemetrySink(TelemetrySink *sink) { telemetry_ = sink; }

    /** @name Introspection @{ */
    const std::unordered_set<NodeId> &isolatedNodes() const
    {
        return isolated_;
    }
    const std::vector<RecoveryRecord> &recoveries() const
    {
        return recoveries_;
    }
    std::uint64_t restartsIssued() const { return restarts_; }
    /** @} */

  private:
    Simulator &sim_;
    SteeringConfig cfg_;
    Rng rng_;
    CulpritOracle oracle_;

    std::unordered_map<JobId, train::TrainingJob *> jobs_;
    /** Bumped on (un)manage; stale recovery timers check it so a job
     * re-registered under a reused id is not acted on by a timer
     * scheduled for its predecessor. */
    std::unordered_map<JobId, std::uint64_t> manageEpoch_;
    std::deque<NodeId> backups_;
    std::unordered_set<NodeId> isolated_;
    std::unordered_set<JobId> restartPending_;
    std::vector<RecoveryRecord> recoveries_;
    std::uint64_t restarts_ = 0;
    TelemetrySink *telemetry_ = nullptr;

    void scheduleRestart(train::TrainingJob &job, Duration delay,
                         std::vector<NodeId> toIsolate, Time eventTime,
                         bool viaC4d);
    void onWatchdogKill(JobId id);

    /** Swap isolated nodes out of a placement using the backup pool. */
    std::vector<NodeId> replaceNodes(const std::vector<NodeId> &placement,
                                     const std::vector<NodeId> &bad);
};

} // namespace c4::c4d

#endif // C4_C4D_STEERING_H
