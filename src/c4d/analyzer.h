/**
 * @file
 * C4D's analysis layer: pure functions from drained ACCL telemetry to
 * findings, implementing Section III-A of the paper.
 *
 * - Communication-slow localization (Fig. 7): message delays between
 *   worker pairs form a matrix; a single hot cell is a slow connection,
 *   a hot row is a slow sender (Tx), a hot column a slow receiver (Rx).
 * - Non-communication-slow localization: the receiver-driven schedule
 *   means everyone waits for the straggler, so the rank with the
 *   *smallest* wait at the synchronization point is the culprit.
 * - Hang detection: an operation that was posted but never started is a
 *   non-communication hang (a rank never showed up); one that started
 *   but stopped making progress is a communication hang.
 */

#ifndef C4_C4D_ANALYZER_H
#define C4_C4D_ANALYZER_H

#include <string>
#include <vector>

#include "accl/monitor.h"
#include "common/types.h"

namespace c4::c4d {

/**
 * Normalized pairwise delay matrix: mean transfer time per byte between
 * (srcRank, dstRank) pairs that exchanged messages in the window.
 */
class DelayMatrix
{
  public:
    explicit DelayMatrix(int nranks);

    /** Accumulate one message observation. */
    void add(Rank src, Rank dst, Bytes bytes, Duration duration);

    /** Build directly from a batch of connection records. */
    static DelayMatrix build(int nranks,
                             const std::vector<accl::ConnRecord> &records);

    int size() const { return n_; }

    /** Mean seconds-per-byte for the pair; <0 when no samples. */
    double at(Rank src, Rank dst) const;

    /** Number of message samples for the pair. */
    int samples(Rank src, Rank dst) const;

    /** Median of all present cells; <0 when the matrix is empty. */
    double medianDelay() const;

    /** Multi-line rendering (row = source, column = destination). */
    std::string str() const;

  private:
    int n_;
    std::vector<double> sumDelay_; // seconds-per-byte sums
    std::vector<int> count_;

    std::size_t
    idx(Rank src, Rank dst) const
    {
        return static_cast<std::size_t>(src) * n_ +
               static_cast<std::size_t>(dst);
    }
};

/** What a communication-slow analysis concluded. */
enum class CommSlowKind {
    None,       ///< nothing abnormal
    Connection, ///< one src->dst path is slow (congested link)
    SourceTx,   ///< a whole row is slow: sender-side (NIC Tx) issue
    DestRx,     ///< a whole column is slow: receiver-side (NIC Rx) issue
};

const char *commSlowKindName(CommSlowKind kind);

struct CommSlowFinding
{
    CommSlowKind kind = CommSlowKind::None;
    Rank src = kInvalidId; ///< Connection / SourceTx
    Rank dst = kInvalidId; ///< Connection / DestRx
    double ratio = 0.0;    ///< outlier delay / matrix median

    bool found() const { return kind != CommSlowKind::None; }
    std::string str() const;
};

/** Tunables of the slow analyses. */
struct AnalyzerConfig
{
    /** Cell counts as an outlier above ratio x matrix median. */
    double slowRatio = 2.0;

    /** Minimum samples per cell before it is judged. */
    int minSamplesPerCell = 2;

    /**
     * Fraction of a row/column that must be outlying to blame the
     * endpoint rather than a single connection.
     */
    double rowColumnFraction = 0.6;

    /** Ignore wait patterns whose median is below this (normal jitter). */
    Duration minWaitForSlow = milliseconds(100);

    /** Straggler must beat the median wait by this factor. */
    double waitRatio = 4.0;

    /**
     * Fraction of operations in the window where the suspected
     * straggler must be the minimum-wait rank. A *persistent* straggler
     * is the minimum nearly every time; rotating skew (e.g. MoE expert
     * load imbalance, paper Section V) shifts the minimum around, so a
     * consistency floor suppresses those false positives — the paper's
     * planned "incorporate load variation into C4D" refinement.
     */
    double stragglerConsistency = 0.6;
};

/**
 * Localize communication slowness from a delay matrix (paper Fig. 7).
 */
CommSlowFinding analyzeCommSlow(const DelayMatrix &matrix,
                                const AnalyzerConfig &cfg = {});

struct NonCommSlowFinding
{
    bool found = false;
    Rank rank = kInvalidId; ///< the straggler
    Duration medianWait = 0;
    Duration stragglerWait = 0;

    std::string str() const;
};

/**
 * Localize a non-communication straggler from receiver wait times: in a
 * receiver-driven collective, the rank everybody waited for shows a
 * near-zero wait while its peers' waits are large.
 *
 * @param nranks communicator size
 * @param waits wait records over the analysis window (>= 1 op)
 */
NonCommSlowFinding
analyzeNonCommSlow(int nranks,
                   const std::vector<accl::RankWaitRecord> &waits,
                   const AnalyzerConfig &cfg = {});

/** Hang classification of one communicator's current operation. */
enum class HangKind {
    None,
    NonCommHang, ///< posted, never started: a rank never arrived
    CommHang,    ///< started, progress stopped mid-operation
};

const char *hangKindName(HangKind kind);

struct HangFinding
{
    HangKind kind = HangKind::None;
    accl::CollSeq seq = 0;
    /** Ranks whose progress is stalest (suspected culprits). */
    std::vector<Rank> suspects;

    bool found() const { return kind != HangKind::None; }
};

/**
 * Detect and classify a hang from operation progress plus per-rank
 * heartbeat times.
 *
 * @param op progress of the communicator's current operation
 * @param lastHeartbeat per-rank last progress time (kTimeNever = never)
 * @param now current time
 * @param threshold silence longer than this is a hang
 */
HangFinding analyzeHang(const accl::OpProgress &op,
                        const std::vector<Time> &lastHeartbeat, Time now,
                        Duration threshold);

} // namespace c4::c4d

#endif // C4_C4D_ANALYZER_H
