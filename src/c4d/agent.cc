#include "c4d/agent.h"

namespace c4::c4d {

C4Agent::C4Agent(Simulator &sim, accl::AcclMonitor &monitor,
                 C4dMaster &master, Duration period)
    : sim_(sim), monitor_(monitor), master_(master),
      ticker_(sim, period, [this] { collectOnce(); })
{
}

void
C4Agent::start()
{
    ticker_.start();
}

void
C4Agent::stop()
{
    ticker_.stop();
}

void
C4Agent::collectOnce()
{
    ++collections_;

    // Communicator lifecycle first so record routing finds the comms.
    for (const auto &rec : monitor_.drainComm()) {
        if (rec.created) {
            live_[rec.comm] = rec.nranks;
            master_.registerComm(rec);
        } else {
            live_.erase(rec.comm);
            master_.deregisterComm(rec.comm);
        }
    }

    master_.ingest(monitor_.drainConn());
    master_.ingest(monitor_.drainRankWait());
    monitor_.drainColl(); // consumed; the master keys off OpProgress

    // Progress snapshots: current operation + per-rank heartbeats.
    for (const auto &[comm, nranks] : live_) {
        const accl::OpProgress *op = monitor_.currentOp(comm);
        if (op == nullptr)
            continue;
        std::vector<Time> heartbeats(static_cast<std::size_t>(nranks),
                                     kTimeNever);
        for (Rank r = 0; r < nranks; ++r)
            heartbeats[static_cast<std::size_t>(r)] =
                monitor_.lastHeartbeat(comm, r);
        master_.updateProgress(comm, *op, std::move(heartbeats));
    }
}

} // namespace c4::c4d
