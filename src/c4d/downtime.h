/**
 * @file
 * Error-induced downtime accounting (paper Table III).
 *
 * A Monte-Carlo month of operation for one large job: fault events arrive
 * per-category at calibrated rates; each event costs
 *
 *   post-checkpoint loss  (work since the last checkpoint, re-done)
 * + detection             (crash -> someone notices)
 * + diagnosis & isolation (find the culprit node, take it out)
 * + re-initialization     (restart the job to the training loop)
 *
 * The recovery policy captures the difference between June 2023 (no C4D:
 * 30-min watchdog + human diagnosis taking hours-to-days, sparse
 * checkpoints) and December 2023 (C4D detection in tens of seconds,
 * automated isolation, 10-minute checkpoints, hardened hardware).
 */

#ifndef C4_C4D_DOWNTIME_H
#define C4_C4D_DOWNTIME_H

#include <array>
#include <string>

#include "common/random.h"
#include "common/types.h"
#include "fault/fault_types.h"

namespace c4::c4d {

/** Root-cause groups used by Table III's diagnosis breakdown. */
enum class CauseGroup : std::int8_t {
    EccNvlink = 0,
    Cuda,
    CclTimeout,
    AckTimeout,
    Unknown,
};

constexpr int kNumCauseGroups = 5;

const char *causeGroupName(CauseGroup g);

/** Map a fatal fault type to its Table III cause group. */
CauseGroup causeGroupOf(fault::FaultType t);

/** Recovery-process parameters for one operating regime. */
struct RecoveryPolicy
{
    std::string name = "policy";

    /** C4D online detection active? */
    bool c4dEnabled = false;

    /** @name Detection @{ */
    /** Elastic-agent hang timeout (baseline detection floor). */
    Duration watchdogTimeout = minutes(30);
    /** Median extra time until a human reacts (lognormal). */
    Duration humanReactionMedian = minutes(20);
    double humanReactionSigma = 0.6;
    /** C4D detection latency ("mere tens of seconds"). */
    Duration c4dDetection = seconds(20);
    /**
     * Probability C4D detects & localizes a given fault, conditioned on
     * the fault's locality prior (non-localized faults need humans).
     */
    double c4dCoverage = 0.9;
    /** @} */

    /** @name Diagnosis & isolation @{ */
    /** Automated steering: isolate + reschedule. */
    Duration steeringDelay = minutes(2);
    /** Median manual diagnosis per cause group (lognormal). */
    std::array<Duration, kNumCauseGroups> manualDiagnosisMedian{
        hours(6.7), hours(7.4), hours(3.3), hours(1.45), hours(4.0)};
    double manualDiagnosisSigma = 0.8;
    /** Scale on manual medians (offline tooling improvements). */
    double manualScale = 1.0;
    /** @} */

    /** @name Checkpointing @{ */
    Duration checkpointInterval = hours(4.5);
    Duration checkpointCost = minutes(5); ///< per save (overhead share)
    /** @} */

    /** Job re-initialization time. */
    Duration reinitTime = minutes(10);

    /** June 2023: pre-C4D operation. */
    static RecoveryPolicy june2023();

    /** December 2023: C4D + frequent checkpoints + faster re-init. */
    static RecoveryPolicy december2023();
};

/** Aggregated downtime as fractions of the makespan. */
struct DowntimeBreakdown
{
    double postCheckpoint = 0.0;
    double detection = 0.0;
    std::array<double, kNumCauseGroups> diagnosisByCause{};
    double reinit = 0.0;

    /** Crash events per cause group (mean over trials). */
    std::array<double, kNumCauseGroups> eventsByCause{};

    double
    diagnosisTotal() const
    {
        double t = 0.0;
        for (double d : diagnosisByCause)
            t += d;
        return t;
    }

    double
    total() const
    {
        return postCheckpoint + detection + diagnosisTotal() + reinit;
    }

    double
    totalEvents() const
    {
        double t = 0.0;
        for (double e : eventsByCause)
            t += e;
        return t;
    }
};

/**
 * The Monte-Carlo downtime model for one job over a makespan.
 */
class DowntimeModel
{
  public:
    /**
     * @param policy recovery regime
     * @param rates fault arrival rates (per 1000 GPUs per 30 days)
     * @param numGpus job scale (the paper's study job uses 2400)
     * @param makespan accounted period (one month in the paper)
     */
    DowntimeModel(RecoveryPolicy policy, fault::FaultRates rates,
                  int numGpus, Duration makespan,
                  std::uint64_t seed = 0xD02D02ull);

    /** Run @p trials independent months and average the fractions. */
    DowntimeBreakdown run(int trials = 64);

    const RecoveryPolicy &policy() const { return policy_; }

  private:
    RecoveryPolicy policy_;
    fault::FaultRates rates_;
    int numGpus_;
    Duration makespan_;
    Rng rng_;

    DowntimeBreakdown runOnce();
};

} // namespace c4::c4d

#endif // C4_C4D_DOWNTIME_H
