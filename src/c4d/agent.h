/**
 * @file
 * C4a — the C4 agent (paper Fig. 4/5): the intermediary that periodically
 * collects ACCL's runtime stats from the workers and forwards them to the
 * C4D master. In the simulator a single agent drains the library-wide
 * monitor; sharding across agents would change nothing observable.
 */

#ifndef C4_C4D_AGENT_H
#define C4_C4D_AGENT_H

#include <unordered_map>

#include "accl/monitor.h"
#include "c4d/master.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace c4::c4d {

class C4Agent
{
  public:
    /**
     * @param sim event engine
     * @param monitor the ACCL monitor to drain (must outlive the agent)
     * @param master destination for telemetry
     * @param period collection cadence (the paper operates at seconds)
     */
    C4Agent(Simulator &sim, accl::AcclMonitor &monitor, C4dMaster &master,
            Duration period = seconds(2));

    C4Agent(const C4Agent &) = delete;
    C4Agent &operator=(const C4Agent &) = delete;

    void start();
    void stop();

    /** One collection pass (also usable directly from tests). */
    void collectOnce();

    std::uint64_t collections() const { return collections_; }

  private:
    Simulator &sim_;
    accl::AcclMonitor &monitor_;
    C4dMaster &master_;
    PeriodicTask ticker_;
    std::uint64_t collections_ = 0;

    /** Live communicators: id -> rank count (from CommRecords). */
    std::unordered_map<CommId, int> live_;
};

} // namespace c4::c4d

#endif // C4_C4D_AGENT_H
