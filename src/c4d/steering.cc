#include "c4d/steering.h"

#include <algorithm>

#include "common/log.h"

namespace c4::c4d {

JobSteeringService::JobSteeringService(Simulator &sim, SteeringConfig cfg,
                                       std::uint64_t seed)
    : sim_(sim), cfg_(cfg), rng_(seed)
{
}

void
JobSteeringService::manageJob(train::TrainingJob &job)
{
    jobs_[job.id()] = &job;
    const JobId id = job.id();
    ++manageEpoch_[id];
    job.onWatchdogKill([this, id] { onWatchdogKill(id); });
}

void
JobSteeringService::unmanageJob(JobId id)
{
    jobs_.erase(id);
    restartPending_.erase(id);
    ++manageEpoch_[id];
}

void
JobSteeringService::addBackupNodes(const std::vector<NodeId> &nodes)
{
    for (NodeId n : nodes)
        backups_.push_back(n);
}

std::vector<NodeId>
JobSteeringService::replaceNodes(const std::vector<NodeId> &placement,
                                 const std::vector<NodeId> &bad)
{
    std::vector<NodeId> out = placement;
    for (NodeId b : bad) {
        auto it = std::find(out.begin(), out.end(), b);
        if (it == out.end())
            continue;
        if (backups_.empty()) {
            logWarn("steering", "backup pool exhausted; node %d stays in "
                    "job placement", b);
            continue;
        }
        *it = backups_.front();
        backups_.pop_front();
    }
    return out;
}

void
JobSteeringService::scheduleRestart(train::TrainingJob &job,
                                    Duration delay,
                                    std::vector<NodeId> toIsolate,
                                    Time eventTime, bool viaC4d)
{
    if (restartPending_.count(job.id()))
        return; // a recovery is already in flight for this job
    restartPending_.insert(job.id());

    const JobId id = job.id();
    const std::uint64_t epoch = manageEpoch_[id];
    sim_.scheduleAfter(delay, [this, id, epoch, toIsolate, eventTime,
                               viaC4d] {
        // A stale timer (the job was unmanaged or re-registered since)
        // must not touch the new incarnation's state — not even its
        // restartPending_ flag.
        if (manageEpoch_[id] != epoch)
            return;
        restartPending_.erase(id);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return;
        train::TrainingJob &j = *it->second;

        for (NodeId n : toIsolate)
            isolated_.insert(n);
        const std::vector<NodeId> nodes =
            replaceNodes(j.nodes(), toIsolate);

        RecoveryRecord rec;
        rec.eventTime = eventTime;
        rec.restartTime = sim_.now();
        rec.job = id;
        rec.viaC4d = viaC4d;
        rec.isolated = toIsolate;
        recoveries_.push_back(rec);
        ++restarts_;

        trace::TraceScope &tr = sim_.tracer();
        if (tr.wants(trace::EventKind::SteeringDecision)) {
            trace::Event tev;
            tev.when = sim_.now();
            tev.kind = trace::EventKind::SteeringDecision;
            tev.job = id;
            tev.a = static_cast<std::int64_t>(toIsolate.size());
            tev.b = viaC4d ? 1 : 0;
            tev.value = toSeconds(rec.recoveryLatency());
            tev.detail = "restart";
            tr.record(std::move(tev));
        }

        if (telemetry_ != nullptr) {
            SteeringRecord srec;
            srec.when = sim_.now();
            srec.job = id;
            srec.isolatedNodes =
                static_cast<std::int64_t>(toIsolate.size());
            srec.viaC4d = viaC4d;
            srec.recoveryLatencySeconds =
                toSeconds(rec.recoveryLatency());
            telemetry_->onSteering(srec);
        }

        logInfo("steering", "restarting job %d (isolated %zu nodes, "
                "via %s)", id, toIsolate.size(),
                viaC4d ? "c4d" : "manual");
        j.restart(nodes);
    });
}

void
JobSteeringService::handleEvent(const C4dEvent &event)
{
    auto it = jobs_.find(event.job);
    if (it == jobs_.end())
        return;
    train::TrainingJob &job = *it->second;

    const bool fatal = c4dEventIsFatal(event.kind);
    if (!fatal && !cfg_.isolateOnSlow)
        return;

    // Only isolate nodes that are actually part of the job's placement.
    std::vector<NodeId> bad;
    for (NodeId n : event.suspectNodes) {
        if (std::find(job.nodes().begin(), job.nodes().end(), n) !=
            job.nodes().end()) {
            bad.push_back(n);
        }
    }

    scheduleRestart(job, cfg_.isolationDelay, std::move(bad), event.when,
                    /*viaC4d=*/true);
}

void
JobSteeringService::onWatchdogKill(JobId id)
{
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    // No localization available: a human (or offline tooling) has to
    // find the culprit before the job can be restarted. Heavy-tailed.
    // If the culprit oracle is installed, the manual diagnosis does
    // eventually identify the defective nodes and isolates them.
    const Duration manual = static_cast<Duration>(rng_.lognormal(
        static_cast<double>(cfg_.manualDiagnosisMedian),
        cfg_.manualDiagnosisSigma));
    std::vector<NodeId> culprits;
    if (oracle_)
        culprits = oracle_(id);
    scheduleRestart(*it->second, manual, std::move(culprits), sim_.now(),
                    /*viaC4d=*/false);
}

} // namespace c4::c4d
