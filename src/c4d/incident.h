/**
 * @file
 * Incident-level diagnosis over a telemetry stream.
 *
 * Where analyzer.h localizes one syndrome inside one collective and
 * rca.h explains one C4D event, this module works at the granularity
 * the replay corpus is labeled at: it consumes a whole run's telemetry
 * (live or replayed — see telemetry.h) and emits one verdict per
 * distinct incident it can defend. Verdicts are deterministic pure
 * functions of the record stream, so replaying a recorded trace yields
 * byte-identical output to the live run that produced it.
 *
 * Detection sources, per kind:
 *  - LinkFailure: switch telemetry (link-down reroute events), the two
 *    directions of a cable grouped into one incident by time.
 *  - FaultStorm: >= stormMinLinks link-failure groups inside
 *    stormWindow collapse into one storm verdict (the fabric's
 *    coalescing case), detected when the Nth group arrives.
 *  - PortDegradation: link capacity-scale telemetry, localized to a
 *    node via the RCA hardware log when a Slow* entry corroborates,
 *    with CNP elevation after onset as supporting evidence.
 *  - NodeCrash: a steering decision (job restart) whose RCA window
 *    holds a fatal hardware entry — or, with silent logs, the
 *    syndrome prior (runtime death, unlocalized, low confidence).
 */

#ifndef C4_C4D_INCIDENT_H
#define C4_C4D_INCIDENT_H

#include <string>
#include <vector>

#include "c4d/rca.h"
#include "c4d/telemetry.h"
#include "common/types.h"

namespace c4::c4d {

/** Incident categories the corpus labels use. */
enum class IncidentKind : std::int8_t {
    LinkFailure = 0,
    PortDegradation,
    NodeCrash,
    FaultStorm,
};

/** Stable wire name ("link_failure", ...) used in labels/verdicts. */
const char *incidentKindName(IncidentKind k);

/** @return true and set @p out if @p name is a known kind name. */
bool incidentKindFromName(const std::string &name, IncidentKind &out);

/** One detected incident. */
struct IncidentVerdict
{
    IncidentKind kind = IncidentKind::LinkFailure;
    NodeId node = kInvalidId;    ///< culprit node, or -1 if unlocalized
    std::int64_t link = -1;      ///< culprit link id, or -1
    Time detectedAt = 0;         ///< when the detector could first call it
    std::string cause;           ///< fault-type name, or "unknown"
    bool corroborated = false;   ///< hardware log backed the call
    double confidence = 0.0;
    std::string evidence;        ///< compact human-readable support
};

struct IncidentAnalyzerConfig
{
    /** Link-down events closer than this form one incident (the two
     * directions of a cable, plus the immediate reroute cascade). */
    Duration linkGroupWindow = milliseconds(50);

    /** Link-failure groups within this span merge into a storm. */
    Duration stormWindow = seconds(30);

    /** Minimum groups for a storm verdict. */
    int stormMinLinks = 3;

    /** CNP comparison span on each side of a degradation onset. */
    Duration cnpWindow = seconds(60);

    /** after/before mean-CNP ratio that counts as corroborating. */
    double cnpSpikeRatio = 1.5;

    /** Steering decisions for one job within this span are one
     * incident (a restart retry is not a second crash). */
    Duration syndromeCooldown = minutes(5);

    RcaConfig rca;
};

/**
 * Streaming incident detector: feed records via the TelemetrySink
 * interface in timestamp order, then call finish() once for the
 * run's verdicts (sorted by detection time, stream order on ties).
 */
class IncidentAnalyzer final : public TelemetrySink
{
  public:
    explicit IncidentAnalyzer(IncidentAnalyzerConfig cfg = {});

    void onFault(const FaultRecord &rec) override;
    void onLinkEvent(const LinkEventRecord &rec) override;
    void onLinkScale(const LinkScaleRecord &rec) override;
    void onCnpSample(const CnpRecord &rec) override;
    void onSteering(const SteeringRecord &rec) override;

    /** Close open groups, resolve syndromes against the now-complete
     * hardware log, and return the run's verdicts. Call once. */
    std::vector<IncidentVerdict> finish();

    /** The hardware-log model fed by onFault (visible classes only). */
    const RootCauseAnalyzer &rca() const { return rca_; }

  private:
    /** Link-down (or capacity-scale) events coalesced in time. */
    struct EventGroup
    {
        Time start = 0;
        Time last = 0;
        std::int64_t minLink = -1;
        int count = 0;
        std::int64_t flows = 0; ///< link-down: reroutes; scale: members
        double minScale = 1.0;  ///< scale groups only
    };

    IncidentAnalyzerConfig cfg_;
    RootCauseAnalyzer rca_;
    std::vector<EventGroup> downGroups_;
    std::vector<EventGroup> scaleGroups_;
    std::vector<CnpRecord> cnp_;
    std::vector<SteeringRecord> steerings_;
    bool finished_ = false;

    static void addToGroups(std::vector<EventGroup> &groups,
                            Duration window, Time when,
                            std::int64_t link, std::int64_t flows,
                            double scale);
    void emitLinkVerdicts(std::vector<IncidentVerdict> &out) const;
    void emitScaleVerdicts(std::vector<IncidentVerdict> &out) const;
    void emitSyndromeVerdicts(std::vector<IncidentVerdict> &out) const;
    bool cnpElevatedAround(Time onset) const;
};

} // namespace c4::c4d

#endif // C4_C4D_INCIDENT_H
