/**
 * @file
 * Background root-cause analysis (paper Fig. 4).
 *
 * C4D's job is fast *localization* — find the node, isolate, restart —
 * while "in-depth root cause analysis [is deferred] to offline
 * processing". This module is that offline stage: it correlates C4D
 * events with the hardware telemetry streams (the figure's "Server
 * Monitor" and "Network Monitor") and, failing a corroborating log
 * entry, falls back to syndrome priors (a non-comm hang on a node whose
 * GPU threw no XID is most likely a CUDA/runtime death; a hot
 * delay-matrix column is an Rx-side NIC issue; and so on).
 */

#ifndef C4_C4D_RCA_H
#define C4_C4D_RCA_H

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "c4d/master.h"
#include "common/types.h"
#include "fault/fault_types.h"

namespace c4::c4d {

/**
 * One entry from the out-of-band hardware monitors (GPU XID logs,
 * switch syslog, NIC counters). The simulator's fault injector doubles
 * as these monitors for fault classes that leave hardware traces.
 */
struct HardwareLogEntry
{
    Time when = 0;
    NodeId node = kInvalidId;
    fault::FaultType type = fault::FaultType::CudaError;
    std::string detail;
};

/** True if this fault class leaves an out-of-band hardware trace. */
bool faultVisibleInHardwareLogs(fault::FaultType type);

/** RCA verdict for one C4D event. */
struct RootCauseReport
{
    C4dEvent event;
    fault::FaultType probableCause = fault::FaultType::CudaError;
    double confidence = 0.0;
    bool corroborated = false; ///< matched a hardware log entry
    std::string rationale;
};

struct RcaConfig
{
    /** Hardware log entries this far before (or shortly after) the
     * C4D event, on a suspect node, corroborate the cause. */
    Duration correlationWindow = minutes(10);

    /** Slack after the event (monitor batching). */
    Duration postEventSlack = seconds(30);

    /** Retained hardware log entries. */
    std::size_t logCapacity = 1u << 16;
};

/** Which hardware-log fault classes a syndrome query should match. */
enum class SyndromeClass : std::int8_t {
    Fatal,       ///< worker-killing faults (ECC, NVLink, ...)
    Degradation, ///< Slow* performance faults
    Fabric,      ///< LinkDown
    Any,
};

class RootCauseAnalyzer
{
  public:
    explicit RootCauseAnalyzer(RcaConfig cfg = {});

    /** Feed a hardware monitor entry. */
    void ingestHardwareEvent(const HardwareLogEntry &entry);

    /**
     * Window query underpinning replayed-telemetry diagnosis: the
     * latest log entry of @p cls within [when - correlationWindow,
     * when + postEventSlack], with no node filter — for syndromes
     * (e.g. a recorded steering decision) where only the job, not a
     * suspect-node list, is known. Same window arithmetic as the
     * suspect-node corroboration used by analyze().
     * @return the entry, or nullptr when the window is silent.
     */
    const HardwareLogEntry *explainSyndrome(Time when,
                                            SyndromeClass cls) const;

    /** Analyze a single C4D event against the log + priors. */
    RootCauseReport analyze(const C4dEvent &event) const;

    /** Batch analysis (the nightly offline pass). */
    std::vector<RootCauseReport>
    analyzeAll(const std::vector<C4dEvent> &events) const;

    /** Cause histogram over reports (the Table-I style rollup). */
    static std::map<fault::FaultType, int>
    histogram(const std::vector<RootCauseReport> &reports);

    std::size_t logSize() const { return log_.size(); }

  private:
    RcaConfig cfg_;
    std::deque<HardwareLogEntry> log_;

    const HardwareLogEntry *findCorroboration(const C4dEvent &ev) const;
    static RootCauseReport syndromePrior(const C4dEvent &ev);
    /** True when @p entry is within the correlation window of an event
     * at @p when (shared by corroboration and syndrome queries). */
    bool inWindow(const HardwareLogEntry &entry, Time when) const;
    static bool matchesClass(fault::FaultType type, SyndromeClass cls);
};

} // namespace c4::c4d

#endif // C4_C4D_RCA_H
