#include "c4d/incident.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>

namespace c4::c4d {

using fault::FaultType;

const char *
incidentKindName(IncidentKind k)
{
    switch (k) {
      case IncidentKind::LinkFailure:     return "link_failure";
      case IncidentKind::PortDegradation: return "port_degradation";
      case IncidentKind::NodeCrash:       return "node_crash";
      case IncidentKind::FaultStorm:      return "fault_storm";
    }
    return "?";
}

bool
incidentKindFromName(const std::string &name, IncidentKind &out)
{
    for (int k = 0; k < 4; ++k) {
        const auto kind = static_cast<IncidentKind>(k);
        if (name == incidentKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

IncidentAnalyzer::IncidentAnalyzer(IncidentAnalyzerConfig cfg)
    : cfg_(cfg), rca_(cfg.rca)
{
}

void
IncidentAnalyzer::onFault(const FaultRecord &rec)
{
    // The anti-cheating seam (see telemetry.h): injected faults model
    // the out-of-band hardware monitors, so only classes that leave a
    // hardware trace may enter the log the detectors consult.
    if (!rec.knownType || !faultVisibleInHardwareLogs(rec.type))
        return;
    HardwareLogEntry entry;
    entry.when = rec.when;
    entry.node = rec.node;
    entry.type = rec.type;
    entry.detail = fault::faultTypeName(rec.type);
    rca_.ingestHardwareEvent(entry);
}

void
IncidentAnalyzer::addToGroups(std::vector<EventGroup> &groups,
                              Duration window, Time when,
                              std::int64_t link, std::int64_t flows,
                              double scale)
{
    if (groups.empty() || when - groups.back().last > window) {
        EventGroup g;
        g.start = g.last = when;
        g.minLink = link;
        g.count = 1;
        g.flows = flows;
        g.minScale = scale;
        groups.push_back(g);
        return;
    }
    EventGroup &g = groups.back();
    g.last = when;
    if (link >= 0 && (g.minLink < 0 || link < g.minLink))
        g.minLink = link;
    ++g.count;
    g.flows += flows;
    g.minScale = std::min(g.minScale, scale);
}

void
IncidentAnalyzer::onLinkEvent(const LinkEventRecord &rec)
{
    if (rec.up)
        return; // recoveries close an incident, they don't open one
    addToGroups(downGroups_, cfg_.linkGroupWindow, rec.when, rec.link,
                rec.flowsRerouted, 1.0);
}

void
IncidentAnalyzer::onLinkScale(const LinkScaleRecord &rec)
{
    if (rec.scale >= 1.0)
        return; // restoration to nominal
    addToGroups(scaleGroups_, cfg_.linkGroupWindow, rec.when, rec.link,
                rec.memberFlows, rec.scale);
}

void
IncidentAnalyzer::onCnpSample(const CnpRecord &rec)
{
    cnp_.push_back(rec);
}

void
IncidentAnalyzer::onSteering(const SteeringRecord &rec)
{
    steerings_.push_back(rec);
}

bool
IncidentAnalyzer::cnpElevatedAround(Time onset) const
{
    double beforeSum = 0.0, afterSum = 0.0;
    int beforeN = 0, afterN = 0;
    for (const CnpRecord &s : cnp_) {
        if (s.when < onset && onset - s.when <= cfg_.cnpWindow) {
            beforeSum += s.meanKps;
            ++beforeN;
        } else if (s.when >= onset && s.when - onset <= cfg_.cnpWindow) {
            afterSum += s.meanKps;
            ++afterN;
        }
    }
    if (beforeN == 0 || afterN == 0)
        return false;
    const double beforeMean = beforeSum / beforeN;
    const double afterMean = afterSum / afterN;
    return afterMean > 0.0 && afterMean >= cfg_.cnpSpikeRatio * beforeMean;
}

void
IncidentAnalyzer::emitLinkVerdicts(std::vector<IncidentVerdict> &out) const
{
    const std::size_t n = downGroups_.size();
    std::size_t i = 0;
    while (i < n) {
        // Extend the run while groups keep landing inside stormWindow
        // of the run's first group.
        std::size_t j = i;
        while (j + 1 < n && downGroups_[j + 1].start -
                                    downGroups_[i].start <=
                                cfg_.stormWindow)
            ++j;
        const std::size_t run = j - i + 1;
        if (run >= static_cast<std::size_t>(cfg_.stormMinLinks)) {
            IncidentVerdict v;
            v.kind = IncidentKind::FaultStorm;
            // Callable as a storm the moment the Nth distinct link
            // drops — that is the detection latency, not run end.
            v.detectedAt =
                downGroups_[i + cfg_.stormMinLinks - 1].start;
            v.cause = "link-down";
            v.corroborated = rca_.explainSyndrome(
                                 v.detectedAt, SyndromeClass::Fabric) !=
                             nullptr;
            v.confidence = 0.9;
            std::int64_t flows = 0;
            for (std::size_t g = i; g <= j; ++g)
                flows += downGroups_[g].flows;
            v.evidence = "links=" + std::to_string(run) +
                         " reroutes=" + std::to_string(flows);
            out.push_back(std::move(v));
        } else {
            for (std::size_t g = i; g <= j; ++g) {
                const EventGroup &grp = downGroups_[g];
                IncidentVerdict v;
                v.kind = IncidentKind::LinkFailure;
                v.link = grp.minLink;
                v.detectedAt = grp.start;
                v.cause = "link-down";
                v.corroborated =
                    rca_.explainSyndrome(grp.start,
                                         SyndromeClass::Fabric) !=
                    nullptr;
                // Reroutes mean live flows crossed the link — direct
                // impact evidence; a dark link is softer.
                v.confidence = grp.flows > 0 ? 0.95 : 0.8;
                v.evidence = "links=" + std::to_string(grp.count) +
                             " reroutes=" + std::to_string(grp.flows);
                out.push_back(std::move(v));
            }
        }
        i = j + 1;
    }
}

void
IncidentAnalyzer::emitScaleVerdicts(std::vector<IncidentVerdict> &out) const
{
    for (const EventGroup &grp : scaleGroups_) {
        IncidentVerdict v;
        v.kind = IncidentKind::PortDegradation;
        v.link = grp.minLink;
        v.detectedAt = grp.start;
        if (const HardwareLogEntry *hw = rca_.explainSyndrome(
                grp.start, SyndromeClass::Degradation)) {
            v.node = hw->node;
            v.cause = fault::faultTypeName(hw->type);
            v.corroborated = true;
            v.confidence = 0.9;
        } else {
            v.cause = "network-other";
            v.confidence = 0.6;
        }
        char scale[32];
        std::snprintf(scale, sizeof(scale), "%.2f", grp.minScale);
        v.evidence = "ports=" + std::to_string(grp.count) +
                     " scale=" + scale;
        if (cnpElevatedAround(grp.start)) {
            v.evidence += "+cnp";
            v.confidence = std::min(0.99, v.confidence + 0.05);
        }
        out.push_back(std::move(v));
    }
}

void
IncidentAnalyzer::emitSyndromeVerdicts(
    std::vector<IncidentVerdict> &out) const
{
    std::map<JobId, Time> lastForJob;
    for (const SteeringRecord &s : steerings_) {
        const auto it = lastForJob.find(s.job);
        if (it != lastForJob.end() &&
            s.when - it->second < cfg_.syndromeCooldown)
            continue; // restart retry, not a second incident
        lastForJob[s.job] = s.when;
        const std::string via =
            std::string("restart via=") + (s.viaC4d ? "c4d" : "watchdog");

        if (const HardwareLogEntry *hw = rca_.explainSyndrome(
                s.when, SyndromeClass::Fatal)) {
            IncidentVerdict v;
            v.kind = IncidentKind::NodeCrash;
            v.node = hw->node;
            v.detectedAt = s.when;
            v.cause = fault::faultTypeName(hw->type);
            v.corroborated = true;
            v.confidence = 0.95;
            v.evidence = via;
            out.push_back(std::move(v));
            continue;
        }
        if (const HardwareLogEntry *hw = rca_.explainSyndrome(
                s.when, SyndromeClass::Degradation)) {
            // A restart triggered by a degraded port: if the port
            // telemetry already produced the verdict, the restart is
            // extra evidence for it, not a second incident.
            auto dup = std::find_if(
                out.begin(), out.end(),
                [&](const IncidentVerdict &v) {
                    return v.kind == IncidentKind::PortDegradation &&
                           v.node == hw->node;
                });
            if (dup != out.end()) {
                dup->evidence += "+steered";
                continue;
            }
            IncidentVerdict v;
            v.kind = IncidentKind::PortDegradation;
            v.node = hw->node;
            v.detectedAt = s.when;
            v.cause = fault::faultTypeName(hw->type);
            v.corroborated = true;
            v.confidence = 0.85;
            v.evidence = via;
            out.push_back(std::move(v));
            continue;
        }
        if (rca_.explainSyndrome(s.when, SyndromeClass::Fabric))
            continue; // the link verdict already owns this incident

        // Silent hardware logs + a dead job: the rca.h syndrome prior —
        // process death in user/runtime space, unlocalized.
        IncidentVerdict v;
        v.kind = IncidentKind::NodeCrash;
        v.detectedAt = s.when;
        v.cause = fault::faultTypeName(FaultType::CudaError);
        v.confidence = s.viaC4d ? 0.6 : 0.4;
        v.evidence = "silent-logs " + via;
        out.push_back(std::move(v));
    }
}

std::vector<IncidentVerdict>
IncidentAnalyzer::finish()
{
    assert(!finished_ && "finish() is single-shot");
    finished_ = true;
    std::vector<IncidentVerdict> out;
    emitLinkVerdicts(out);
    emitScaleVerdicts(out);
    emitSyndromeVerdicts(out);
    // Stable: ties keep emission order (link, scale, syndrome), which
    // is itself deterministic, so the verdict list is reproducible
    // byte for byte.
    std::stable_sort(out.begin(), out.end(),
                     [](const IncidentVerdict &a,
                        const IncidentVerdict &b) {
                         return a.detectedAt < b.detectedAt;
                     });
    return out;
}

} // namespace c4::c4d
