/**
 * @file
 * Cluster-independent telemetry stream for offline diagnosis.
 *
 * The live C4D path is wired straight into the running Cluster; this
 * header is the decoupling seam: every observable the detectors need is
 * expressed as a typed record, and a TelemetrySink consumes them in
 * timestamp order with no Simulator or Cluster in sight. The records
 * map 1:1 onto what the PR-5 trace subsystem captures, so the same
 * analyzer runs identically on a live run (records synthesized as the
 * simulation emits trace events) and on a replayed JSONL file
 * (records decoded by replay::dispatch) — the property the
 * live-vs-replay byte-identity gate in test_replay.cc pins.
 *
 * Anti-cheating contract: FaultRecord mirrors the out-of-band hardware
 * monitors of rca.h ("the simulator's fault injector doubles as these
 * monitors") and must only be surfaced to detectors for fault classes
 * where faultVisibleInHardwareLogs() is true. Everything else a
 * detector concludes has to come from the observable streams: link
 * events, CNP samples, steering decisions, job lifecycle.
 */

#ifndef C4_C4D_TELEMETRY_H
#define C4_C4D_TELEMETRY_H

#include <string>

#include "common/types.h"
#include "fault/fault_types.h"

namespace c4::c4d {

/** Out-of-band monitor record of an injected fault (see contract
 * above: only hardware-visible classes may reach detectors). */
struct FaultRecord
{
    Time when = 0;
    NodeId node = kInvalidId;
    std::int64_t device = -1; ///< NIC index, or trunk index for link-down
    fault::FaultType type = fault::FaultType::CudaError;
    bool knownType = true; ///< false: trace carried an unknown name
    bool isLocal = true;
    double severity = 1.0;
};

/** A fabric link changing operational state (switch telemetry). */
struct LinkEventRecord
{
    Time when = 0;
    LinkId link = kInvalidId;
    bool up = false;
    std::int64_t flowsRerouted = 0;
};

/** A link's capacity scaled (degradation / recovery), with the member
 * flows re-fair-shared. */
struct LinkScaleRecord
{
    Time when = 0;
    LinkId link = kInvalidId;
    std::int64_t memberFlows = 0;
    double scale = 1.0; ///< remaining fraction of nominal bandwidth
};

/** Periodic congestion sample (CNP rate across the cluster). */
struct CnpRecord
{
    Time when = 0;
    std::int64_t hotNics = 0;
    double meanKps = 0.0;
};

/** A job restart decision taken by the steering service. */
struct SteeringRecord
{
    Time when = 0;
    JobId job = kInvalidId;
    std::int64_t isolatedNodes = 0;
    bool viaC4d = false;
    double recoveryLatencySeconds = 0.0;
};

/** Job lifecycle edge. */
struct JobLifecycleRecord
{
    Time when = 0;
    JobId job = kInvalidId;
    std::int64_t nodes = 0;
    bool arrived = false; ///< false: departure
};

/** C4P placement action (alloc or repin) for one QP. */
struct PlacementRecord
{
    Time when = 0;
    JobId job = kInvalidId;
    NodeId node = kInvalidId;
    std::int64_t spine = -1;
    bool repin = false;
};

/** Fabric fair-share recompute span. */
struct RecomputeRecord
{
    Time when = 0;
    bool begin = false;
    std::int64_t a = 0; ///< kind-specific (see trace.h)
    std::int64_t b = 0;
    double value = 0.0;
};

/**
 * Consumer of the telemetry stream. Records arrive in nondecreasing
 * timestamp order (ties in stream order); unimplemented channels
 * default to no-ops so sinks override only what they diagnose with.
 */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    virtual void onFault(const FaultRecord &) {}
    virtual void onFaultRecovered(Time /*when*/, NodeId /*node*/) {}
    virtual void onLinkEvent(const LinkEventRecord &) {}
    virtual void onLinkScale(const LinkScaleRecord &) {}
    virtual void onCnpSample(const CnpRecord &) {}
    virtual void onSteering(const SteeringRecord &) {}
    virtual void onJobLifecycle(const JobLifecycleRecord &) {}
    virtual void onPlacement(const PlacementRecord &) {}
    virtual void onRecompute(const RecomputeRecord &) {}
};

} // namespace c4::c4d

#endif // C4_C4D_TELEMETRY_H
