/**
 * @file
 * TelemetrySink that folds the C4D observable stream into a live
 * MetricRegistry — CNP-rate gauges, restart counters, and the
 * detection-to-restart recovery-latency window. Reuses the replay
 * seam (telemetry.h), so the detectors never learn that metrics
 * exist; anything that feeds a sink feeds the dashboard.
 */

#ifndef C4_C4D_METRICS_SINK_H
#define C4_C4D_METRICS_SINK_H

#include "c4d/telemetry.h"
#include "obs/metrics.h"

namespace c4::c4d {

class MetricsTelemetrySink final : public TelemetrySink
{
  public:
    explicit MetricsTelemetrySink(obs::MetricRegistry &registry)
        : registry_(registry)
    {
    }

    void onFault(const FaultRecord &rec) override;
    void onLinkEvent(const LinkEventRecord &rec) override;
    void onCnpSample(const CnpRecord &rec) override;
    void onSteering(const SteeringRecord &rec) override;

  private:
    obs::MetricRegistry &registry_;
};

} // namespace c4::c4d

#endif // C4_C4D_METRICS_SINK_H
