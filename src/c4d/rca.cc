#include "c4d/rca.h"

#include <algorithm>

namespace c4::c4d {

using fault::FaultType;

bool
faultVisibleInHardwareLogs(FaultType type)
{
    switch (type) {
      case FaultType::EccError:    // GPU XID in dmesg / DCGM
      case FaultType::NvlinkError: // NVLink fatal XID
      case FaultType::LinkDown:    // switch syslog / optics telemetry
      case FaultType::SlowNicTx:   // NIC PHY counters
      case FaultType::SlowNicRx:
        return true;
      case FaultType::CudaError:   // process-local; no HW trace
      case FaultType::NcclTimeout:
      case FaultType::AckTimeout:
      case FaultType::NetworkOther:
      case FaultType::SlowNode:
        return false;
    }
    return false;
}

RootCauseAnalyzer::RootCauseAnalyzer(RcaConfig cfg) : cfg_(cfg)
{
}

void
RootCauseAnalyzer::ingestHardwareEvent(const HardwareLogEntry &entry)
{
    if (log_.size() >= cfg_.logCapacity)
        log_.pop_front();
    log_.push_back(entry);
}

bool
RootCauseAnalyzer::inWindow(const HardwareLogEntry &entry, Time when) const
{
    return entry.when <= when + cfg_.postEventSlack &&
           when - entry.when <= cfg_.correlationWindow;
}

bool
RootCauseAnalyzer::matchesClass(FaultType type, SyndromeClass cls)
{
    switch (cls) {
      case SyndromeClass::Fatal:
        return fault::faultIsFatal(type);
      case SyndromeClass::Degradation:
        return type == FaultType::SlowNode ||
               type == FaultType::SlowNicTx ||
               type == FaultType::SlowNicRx;
      case SyndromeClass::Fabric:
        return type == FaultType::LinkDown;
      case SyndromeClass::Any:
        return true;
    }
    return false;
}

const HardwareLogEntry *
RootCauseAnalyzer::explainSyndrome(Time when, SyndromeClass cls) const
{
    const HardwareLogEntry *best = nullptr;
    for (const auto &entry : log_) {
        if (!inWindow(entry, when) || !matchesClass(entry.type, cls))
            continue;
        // Latest matching entry wins (closest to the syndrome).
        if (best == nullptr || entry.when > best->when)
            best = &entry;
    }
    return best;
}

const HardwareLogEntry *
RootCauseAnalyzer::findCorroboration(const C4dEvent &ev) const
{
    const HardwareLogEntry *best = nullptr;
    for (const auto &entry : log_) {
        if (!inWindow(entry, ev.when))
            continue;
        const bool on_suspect =
            std::find(ev.suspectNodes.begin(), ev.suspectNodes.end(),
                      entry.node) != ev.suspectNodes.end();
        const bool fabric_event =
            entry.type == FaultType::LinkDown &&
            ev.kind == C4dEventKind::CommSlow;
        if (!on_suspect && !fabric_event)
            continue;
        // Latest matching entry wins (closest to the syndrome).
        if (best == nullptr || entry.when > best->when)
            best = &entry;
    }
    return best;
}

RootCauseReport
RootCauseAnalyzer::syndromePrior(const C4dEvent &ev)
{
    RootCauseReport report;
    report.event = ev;
    switch (ev.kind) {
      case C4dEventKind::NonCommHang:
        // A rank never reached the sync point and the hardware logs are
        // silent: process death in user/runtime space.
        report.probableCause = FaultType::CudaError;
        report.confidence = 0.6;
        report.rationale = "rank never entered collective; no HW trace";
        break;
      case C4dEventKind::CommHang:
        // Transport stopped mid-operation without an XID: lost ACKs.
        report.probableCause = FaultType::AckTimeout;
        report.confidence = 0.5;
        report.rationale = "progress stalled mid-op; no HW trace";
        break;
      case C4dEventKind::CommSlow:
        report.probableCause =
            ev.detail.find("tx") != std::string::npos
                ? FaultType::SlowNicTx
                : FaultType::SlowNicRx;
        report.confidence = 0.55;
        report.rationale = "delay-matrix anomaly; NIC-side degradation";
        break;
      case C4dEventKind::NonCommSlow:
        report.probableCause = FaultType::SlowNode;
        report.confidence = 0.7;
        report.rationale = "receiver wait-chain straggler";
        break;
    }
    return report;
}

RootCauseReport
RootCauseAnalyzer::analyze(const C4dEvent &event) const
{
    if (const HardwareLogEntry *hw = findCorroboration(event)) {
        RootCauseReport report;
        report.event = event;
        report.probableCause = hw->type;
        report.confidence = 0.95;
        report.corroborated = true;
        report.rationale =
            std::string("hardware log: ") + fault::faultTypeName(hw->type) +
            " on node " + std::to_string(hw->node);
        return report;
    }
    return syndromePrior(event);
}

std::vector<RootCauseReport>
RootCauseAnalyzer::analyzeAll(const std::vector<C4dEvent> &events) const
{
    std::vector<RootCauseReport> reports;
    reports.reserve(events.size());
    for (const auto &ev : events)
        reports.push_back(analyze(ev));
    return reports;
}

std::map<FaultType, int>
RootCauseAnalyzer::histogram(const std::vector<RootCauseReport> &reports)
{
    std::map<FaultType, int> out;
    for (const auto &r : reports)
        ++out[r.probableCause];
    return out;
}

} // namespace c4::c4d
